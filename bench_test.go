package xbar_test

import (
	"fmt"
	"testing"

	"xbar/internal/admission"
	"xbar/internal/clos"
	"xbar/internal/core"
	"xbar/internal/grid"
	"xbar/internal/hotspot"
	"xbar/internal/inputq"
	"xbar/internal/ipp"
	"xbar/internal/link"
	"xbar/internal/minnet"
	"xbar/internal/network"
	"xbar/internal/overflow"
	"xbar/internal/retrial"
	"xbar/internal/sim"
	"xbar/internal/slotted"
	"xbar/internal/statespace"
	"xbar/internal/traffic"
	"xbar/internal/transient"
	"xbar/internal/wdm"
	"xbar/internal/workload"
)

// Each benchmark regenerates one published table or figure (or one of
// the reproduction's own ablations); `go test -bench .` is therefore
// the full evaluation harness, and `make bench` renders its output to
// BENCH_<n>.json (see docs/PERFORMANCE.md). Every benchmark reports
// allocations and resets the timer after fixture setup so the JSON
// trajectory measures the loop, not the fixtures. The sink variables
// keep the compiler from eliding the work.

var (
	sinkSeries []workload.Series
	sinkRows   []workload.Table2Row
	sinkT1     []workload.Table1Row
	sinkRes    *core.Result
	sinkF      float64
)

func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := workload.Figure1(workload.FigureNs())
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries = s
	}
}

func BenchmarkFigure2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := workload.Figure2(workload.FigureNs())
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries = s
	}
}

func BenchmarkFigure3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := workload.Figure3(workload.FigureNs())
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries = s
	}
}

func BenchmarkFigure4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := workload.Figure4(workload.Figure4Ns())
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries = s
	}
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkT1 = workload.Table1(workload.Figure4Ns())
	}
}

func BenchmarkTable2(b *testing.B) {
	// One parameter set per sub-benchmark; each row includes the
	// central-difference bursty gradient (two extra full solves through
	// the recycled scratch solver).
	for _, set := range workload.Table2Sets() {
		set := set
		b.Run(fmt.Sprintf("set%d", set.Set), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := workload.Table2(set, workload.Table2Ns())
				if err != nil {
					b.Fatal(err)
				}
				sinkRows = rows
			}
		})
	}
}

// BenchmarkSweep is the amortization ablation: one max-size lattice
// fill serving every sub-size through core.SweepSolver, against a
// fresh per-size solve of the same fixed per-route model (the
// re-solve pattern the sweep layer replaced).
func BenchmarkSweep(b *testing.B) {
	classes := []core.Class{
		{Name: "p", A: 1, Alpha: 0.001, Mu: 1},
		{Name: "b", A: 1, Alpha: 0.001, Beta: 0.0005, Mu: 1},
	}
	const maxN = 64
	b.Run("amortized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep, err := core.NewSweepSolver(core.Switch{N1: maxN, N2: maxN, Classes: classes})
			if err != nil {
				b.Fatal(err)
			}
			for n := 1; n <= maxN; n++ {
				sinkF = sweep.ResultAt(n, n).Blocking[0]
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for n := 1; n <= maxN; n++ {
				res, err := core.Solve(core.Switch{N1: n, N2: n, Classes: classes})
				if err != nil {
					b.Fatal(err)
				}
				sinkF = res.Blocking[0]
			}
		}
	})
}

// gridFigurePoints builds a figure-style batch in per-route units: each
// curve holds its per-route class fixed while the size axis sweeps, so
// every curve is ONE canonical model and the whole curve reads off one
// max-size lattice. (The published figures use aggregate units, whose
// C(N2,a) normalization makes every size a distinct per-route model;
// per-route grids are where the class-factored engine earns its keep.)
func gridFigurePoints(seriesClasses [][]core.Class, ns []int) []core.Switch {
	var points []core.Switch
	for _, classes := range seriesClasses {
		for _, n := range ns {
			points = append(points, core.Switch{N1: n, N2: n, Classes: classes})
		}
	}
	return points
}

func denseNs(lo, hi, step int) []int {
	var ns []int
	for n := lo; n <= hi; n += step {
		ns = append(ns, n)
	}
	return ns
}

// benchGridAB runs the engine/fresh ablation over one batch: a cold
// grid.Engine per iteration (the measured win is batch grouping, not
// cross-call memo warmth) against the per-point re-solve pattern the
// engine replaced.
func benchGridAB(b *testing.B, points []core.Switch) {
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := grid.New(grid.Options{})
			res, err := eng.Solve(points)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res[len(res)-1].Blocking[0]
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sw := range points {
				res, err := core.Solve(sw)
				if err != nil {
					b.Fatal(err)
				}
				sinkF = res.Blocking[0]
			}
		}
	})
}

// BenchmarkGridFigure2Style is a Figure 2-shaped grid (four burstiness
// curves over a dense size axis) on the batched engine versus fresh
// per-point solves. Each curve collapses to one 64x64 fill.
func BenchmarkGridFigure2Style(b *testing.B) {
	var series [][]core.Class
	for _, bt := range []float64{0, 0.0005, 0.001, 0.002} {
		series = append(series, []core.Class{{Name: "peaky", A: 1, Alpha: 0.001, Beta: bt, Mu: 1}})
	}
	benchGridAB(b, gridFigurePoints(series, denseNs(4, 64, 4)))
}

// BenchmarkGridFigure4Style is a Figure 4-shaped grid (bandwidth a=1
// versus a=2 at fixed per-route load, dense sizes) on the batched
// engine versus fresh per-point solves.
func BenchmarkGridFigure4Style(b *testing.B) {
	series := [][]core.Class{
		{{Name: "a1", A: 1, Alpha: 0.002, Mu: 1}},
		{{Name: "a2", A: 2, Alpha: 0.0008, Mu: 1}},
	}
	benchGridAB(b, gridFigurePoints(series, denseNs(4, 64, 4)))
}

// BenchmarkGridFixedPoint measures the delta-aware fixed point on a
// symmetric eight-switch ring: every iteration produces eight bitwise
// identical thinned operating points, which the batched engine
// collapses to one lattice fill ("memo") while the ablation solves all
// eight ("fresh").
func BenchmarkGridFixedPoint(b *testing.B) {
	const ringN = 8
	var net network.Network
	for i := 0; i < ringN; i++ {
		net.Switches = append(net.Switches, network.Dim{N1: 32, N2: 32})
	}
	for i := 0; i < ringN; i++ {
		net.Routes = append(net.Routes, network.Route{
			Name: fmt.Sprintf("local%d", i), Path: []int{i}, Rate: 2.4, Mu: 1,
		})
	}
	for i := 0; i < ringN; i++ {
		net.Routes = append(net.Routes, network.Route{
			Name: fmt.Sprintf("hop%d", i), Path: []int{i, (i + 1) % ringN}, Rate: 1.6, Mu: 1,
		})
	}
	for _, mode := range []struct {
		name   string
		noMemo bool
	}{{"memo", false}, {"fresh", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fp, err := network.FixedPointWith(net, network.FPConfig{
					Tol: 1e-10, MaxIter: 500, NoMemo: mode.noMemo,
				})
				if err != nil {
					b.Fatal(err)
				}
				sinkF = fp.RouteBlocking[0]
			}
		})
	}
}

// BenchmarkSimValidation is the "compare with simulation" experiment
// at one Figure 1 operating point, sized for benchmarking rather than
// tight confidence intervals.
func BenchmarkSimValidation(b *testing.B) {
	sw := core.NewSwitch(16, 16,
		core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0024, Mu: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Switch: sw, Seed: uint64(i + 1), Warmup: 500, Horizon: 10000,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.Classes[0].CallBlocking.Mean
	}
}

// BenchmarkAlg1VsAlg2 is the runtime half of Ablation A: the scaled
// convolution recursion against the mean-value recursion across
// system sizes (accuracy is covered by tests).
func BenchmarkAlg1VsAlg2(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		sw := core.NewSwitch(n, n,
			core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0012, Mu: 1},
			core.AggregateClass{Name: "b", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
		)
		b.Run(fmt.Sprintf("alg1/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(sw)
				if err != nil {
					b.Fatal(err)
				}
				sinkRes = res
			}
		})
		b.Run(fmt.Sprintf("alg2/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.SolveMVA(sw)
				if err != nil {
					b.Fatal(err)
				}
				sinkRes = res
			}
		})
	}
	// The exponential-cost ground-truth evaluators, at a size they can
	// still handle, for scale.
	small := core.NewSwitch(12, 12,
		core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0012, Mu: 1},
		core.AggregateClass{Name: "b", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
	)
	b.Run("direct/N=12", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.SolveDirect(small)
			if err != nil {
				b.Fatal(err)
			}
			sinkRes = res
		}
	})
	b.Run("convolution/N=12", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.SolveConvolution(small)
			if err != nil {
				b.Fatal(err)
			}
			sinkRes = res
		}
	})
}

// BenchmarkAsymptoticVsExact is the dispatch-tier crossover
// measurement behind docs/PERFORMANCE.md §9: the O(R) saddle-point
// expansion against the O(N1*N2) exact lattice fill, per traffic type
// (pure Poisson and a bursty BPP mix), at sizes bracketing the default
// dispatch cutoff. The exact arm stops at N=1024 — one 4096x4096 fill
// is minutes of wall clock, which is precisely the regime the
// asymptotic tier exists for.
func BenchmarkAsymptoticVsExact(b *testing.B) {
	mixes := []struct {
		name    string
		classes func(n int) core.Switch
	}{
		{"poisson", func(n int) core.Switch {
			return core.NewSwitch(n, n,
				core.AggregateClass{Name: "p", A: 1, AlphaTilde: 1.12, Mu: 1})
		}},
		{"bpp", func(n int) core.Switch {
			return core.NewSwitch(n, n,
				core.AggregateClass{Name: "b1", A: 1, AlphaTilde: 0.56, BetaTilde: 0.28, Mu: 1},
				core.AggregateClass{Name: "b2", A: 2, AlphaTilde: 0.28, BetaTilde: 0.14, Mu: 0.5})
		}},
	}
	for _, mix := range mixes {
		for _, n := range []int{256, 1024, 4096} {
			sw := mix.classes(n)
			b.Run(fmt.Sprintf("%s/N=%d/asym", mix.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.SolveAsymptotic(sw)
					if err != nil {
						b.Fatal(err)
					}
					sinkRes = res
				}
			})
			if n > 1024 {
				continue
			}
			b.Run(fmt.Sprintf("%s/N=%d/exact", mix.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.Solve(sw, core.Parallel(0, 0))
					if err != nil {
						b.Fatal(err)
					}
					sinkRes = res
				}
			})
		}
	}
}

// BenchmarkCrossCheckAllocs pins the allocation behavior of the exact
// cross-check evaluators after the coefficient-buffer reuse: the
// direct state sum at its feasible scale and the convolution evaluator
// at a production size (its cost is polynomial, so N=64 is cheap). The
// allocs/op column is the guarded quantity — each solve now recycles
// its Phi/Psi tables and convolution vectors internally instead of
// allocating per class.
func BenchmarkCrossCheckAllocs(b *testing.B) {
	classes := []core.AggregateClass{
		{Name: "p", A: 1, AlphaTilde: 0.0012, Mu: 1},
		{Name: "b", A: 2, AlphaTilde: 0.0008, BetaTilde: 0.0004, Mu: 1},
	}
	b.Run("direct/N=12", func(b *testing.B) {
		sw := core.NewSwitch(12, 12, classes...)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.SolveDirect(sw)
			if err != nil {
				b.Fatal(err)
			}
			sinkRes = res
		}
	})
	b.Run("convolution/N=64", func(b *testing.B) {
		sw := core.NewSwitch(64, 64, classes...)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.SolveConvolution(sw)
			if err != nil {
				b.Fatal(err)
			}
			sinkRes = res
		}
	})
}

// BenchmarkParallelFill measures the lattice fill proper across system
// sizes and worker counts — the scaling table of docs/PERFORMANCE.md
// §5. The solver is built once and recycled with Reuse, so an
// iteration is exactly one Q/W (or F/D) fill: no per-op lattice
// allocation and no GC tax, unlike the fresh-solver numbers of
// BenchmarkAlg1VsAlg2. Worker counts above the host's core count
// measure scheduling overhead, not speedup.
func BenchmarkParallelFill(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		sw := core.NewSwitch(n, n,
			core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0012, Mu: 1},
			core.AggregateClass{Name: "b", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
		)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("alg1/N=%d/w%d", n, w), func(b *testing.B) {
				s, err := core.NewSolver(sw, core.Parallel(w, 0))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.Reuse(sw); err != nil {
						b.Fatal(err)
					}
				}
				sinkRes = s.Result()
			})
		}
	}
	sw := core.NewSwitch(256, 256,
		core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0012, Mu: 1},
		core.AggregateClass{Name: "b", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
	)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("alg2/N=256/w%d", w), func(b *testing.B) {
			s, err := core.NewMVASolver(sw, core.Parallel(w, 0))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Reuse(sw); err != nil {
					b.Fatal(err)
				}
			}
			sinkRes = s.Result()
		})
	}
}

// BenchmarkBaselines is Ablation B: the pooled link, the slotted
// crossbar and the MIN against the asynchronous crossbar.
func BenchmarkBaselines(b *testing.B) {
	b.Run("link", func(b *testing.B) {
		l := link.Link{C: 32, Classes: []link.Class{{A: 1, Alpha: 9.6, Mu: 1}}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := link.Solve(l)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.Blocking[0]
		}
	})
	b.Run("crossbar", func(b *testing.B) {
		l := link.Link{C: 32, Classes: []link.Class{{A: 1, Alpha: 9.6, Mu: 1}}}
		sw := l.CrossbarEquivalent()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Solve(sw)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.Blocking[0]
		}
	})
	b.Run("slotted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := slotted.Simulate(16, 16, 0.9, 2000, uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.PerOutput.Mean
		}
	})
	b.Run("minnet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := minnet.Simulate(16, 1.0, 2000, uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.PerOutput.Mean
		}
	})
}

// BenchmarkNetwork is the source-routed optical network extension:
// fixed point and simulation of a three-hop tandem.
func BenchmarkNetwork(b *testing.B) {
	net := network.Network{
		Switches: []network.Dim{{N1: 8, N2: 8}, {N1: 8, N2: 8}, {N1: 8, N2: 8}},
		Routes: []network.Route{
			{Name: "3-hop", Path: []int{0, 1, 2}, Rate: 1.2, Mu: 1},
			{Name: "left", Path: []int{0}, Rate: 1.6, Mu: 1},
			{Name: "right", Path: []int{2}, Rate: 1.6, Mu: 1},
		},
	}
	b.Run("fixedpoint", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fp, err := network.FixedPoint(net, 1e-10, 500)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = fp.RouteBlocking[0]
		}
	})
	b.Run("simulate", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := network.Simulate(net, network.SimConfig{
				Seed: uint64(i + 1), Warmup: 200, Horizon: 5000,
			})
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.RouteBlocking[0].Mean
		}
	})
}

// BenchmarkAdmission is the trunk-reservation sweep: |Gamma| exact
// CTMC solves per limit value.
func BenchmarkAdmission(b *testing.B) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{Name: "gold", A: 1, Alpha: 0.05, Mu: 1},
		{Name: "lead", A: 1, Alpha: 0.08, Mu: 1},
	}}
	weights := []float64{1.0, 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, _, err := admission.OptimizeReservation(sw, weights, 1, 100000)
		if err != nil {
			b.Fatal(err)
		}
		sinkF = best.Revenue
	}
}

// BenchmarkIPP is the bursty-approximation experiment: one on/off
// fabric simulation plus the BPP-fit analytic solve. ipp.Design is
// fixture setup and stays outside the timed region.
func BenchmarkIPP(b *testing.B) {
	src, err := ipp.Design(1.5, 1.6, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ipp.SimulateCrossbar(6, 6, src, 1, ipp.SimConfig{
			Seed: uint64(i + 1), Warmup: 200, Horizon: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		approx, err := ipp.BPPApprox(6, 6, src, 1)
		if err != nil {
			b.Fatal(err)
		}
		sinkF = approx.Blocking[0] - (1 - res.TimeNonBlocking.Mean)
	}
}

// BenchmarkClos simulates the strict-sense nonblocking configuration.
func BenchmarkClos(b *testing.B) {
	net := clos.Network{M: 15, N: 8, R: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := clos.Simulate(net, clos.SimConfig{
			PerInputLoad: 0.6, Mu: 1, Policy: clos.RandomAvailable,
			Seed: uint64(i + 1), Warmup: 100, Horizon: 3000,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.CallBlocking.Mean
	}
}

// BenchmarkTransient uniformizes a cold-start trajectory on a
// Table 2 switch.
func BenchmarkTransient(b *testing.B) {
	sw := workload.Table2Switch(workload.Table2Sets()[0], 8)
	chain, err := statespace.NewChain(sw, 100000)
	if err != nil {
		b.Fatal(err)
	}
	pi0, err := transient.EmptyStart(chain)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{0.5, 1, 2, 4, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traj, err := transient.BlockingTrajectory(chain, pi0, 0, times, transient.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = traj[len(traj)-1]
	}
}

// BenchmarkHotspot solves and simulates the non-uniform access model.
func BenchmarkHotspot(b *testing.B) {
	m := hotspot.Model{N1: 8, N2: 8, Lambda: 4, Mu: 1, HotFraction: 0.4}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := hotspot.Solve(m)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.HotNonBlocking
		}
	})
	b.Run("simulate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := hotspot.Simulate(m, hotspot.SimConfig{
				Seed: uint64(i + 1), Warmup: 200, Horizon: 5000,
			})
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.HotBlocking.Mean
		}
	})
}

// BenchmarkWDM measures the wavelength-continuity path simulation.
func BenchmarkWDM(b *testing.B) {
	p := wdm.Path{L: 4, W: 8, Rate: 2, CrossRate: 2.5, Mu: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wdm.Simulate(p, wdm.SimConfig{
			Seed: uint64(i + 1), Warmup: 200, Horizon: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.EndToEndBlocking.Mean
	}
}

// BenchmarkRetrial simulates the retry-feedback model.
func BenchmarkRetrial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := retrial.Run(retrial.Config{
			N1: 6, N2: 6, Lambda: 4, Mu: 1,
			MaxAttempts: 4, RetryRate: 2,
			Seed: uint64(i + 1), Warmup: 200, Horizon: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.Abandonment.Mean
	}
}

// BenchmarkTraffic runs the Sinkhorn balancing plus a matrix-weighted
// simulation.
func BenchmarkTraffic(b *testing.B) {
	skewed := traffic.NewUniform(8, 8)
	for j := 0; j < 8; j++ {
		skewed[0][j] += 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balanced, err := skewed.Sinkhorn(1e-10, 100000)
		if err != nil {
			b.Fatal(err)
		}
		res, err := traffic.Simulate(balanced, traffic.SimConfig{
			Lambda: 7, Mu: 1, Seed: uint64(i + 1), Warmup: 200, Horizon: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.Blocking.Mean
	}
}

// BenchmarkOverflow runs the two-stage overflow system.
func BenchmarkOverflow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := overflow.Run(overflow.Config{
			PrimaryN: 3, SecondaryN: 6, Lambda: 1.5, Mu: 1,
			Seed: uint64(i + 1), Warmup: 200, Horizon: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.SecondaryBlocking.Mean
	}
}

// BenchmarkInputQueued measures the slotted HOL-contention simulator.
func BenchmarkInputQueued(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ci, err := inputq.SaturationThroughput(16, 5000, inputq.InputQueued, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		sinkF = ci.Mean
	}
}
