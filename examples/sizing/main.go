// Sizing a very large optical fabric: the exact algorithms cost
// O(N^2) lattice work per evaluation, which is fine up to a few
// hundred ports but not for sweeping thousands. The endpoint
// fixed-point approximation (internal/approx) answers in microseconds,
// is exact in the N -> infinity limit, and comes with a closed-form
// asymptote — enough to bracket a design before confirming the final
// candidate with the exact mean-value algorithm.
//
// Run with: go run ./examples/sizing
package main

import (
	"fmt"
	"log"
	"time"

	"xbar/internal/approx"
	"xbar/internal/core"
)

func main() {
	// Demand: a metro fabric must terminate 2000 erlangs of single-rate
	// circuit traffic with specific-route blocking under 2%.
	const (
		demand = 2000.0 // erlangs, total
		target = 0.02
	)

	// Specific-route blocking is endpoint-bound (B ~ 2 x port
	// utilization), so a 2% target forces ~1% port utilization: the
	// fabric must be two orders of magnitude larger than the demand.
	// Only the O(R) method can sweep these sizes.
	fmt.Println("bracketing with the O(R) endpoint fixed point:")
	var chosen int
	for _, n := range []int{25_000, 50_000, 100_000, 200_000, 400_000} {
		sw := core.Switch{N1: n, N2: n, Classes: []core.Class{{
			Name: "metro", A: 1,
			Alpha: demand / float64(n) / float64(n) / 1.0, // per ordered route
			Mu:    1,
		}}}
		t0 := time.Now()
		res, err := approx.Solve(sw, 1e-12, 10000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%5d: blocking %.5f, port util %.4f  (%v)\n",
			n, res.Blocking[0], res.InputUtilization, time.Since(t0).Round(time.Microsecond))
		if res.Blocking[0] < target && chosen == 0 {
			chosen = n
		}
	}
	if chosen == 0 {
		log.Fatal("no candidate met the target")
	}
	fmt.Printf("\ncandidate: N = %d\n", chosen)

	// The asymptote tells us what blocking a fabric of ANY size pays at
	// a given per-input intensity: useful as the floor for "can this
	// demand density ever meet the target".
	alphaTilde := demand / float64(chosen)
	floor, err := approx.AsymptoticBlocking(alphaTilde)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asymptotic blocking at this per-input intensity: %.5f\n", floor)

	// Confirm the candidate with the exact mean-value algorithm
	// (Algorithm 2 — numerically stable at any size, O(N^2) lattice).
	confirmN := 512 // exact confirmation at a scaled-down pilot size,
	// same per-input intensity as the candidate
	pilot := core.Switch{N1: confirmN, N2: confirmN, Classes: []core.Class{{
		Name: "metro", A: 1,
		Alpha: alphaTilde / float64(confirmN),
		Mu:    1,
	}}}
	t0 := time.Now()
	exact, err := core.SolveMVA(pilot)
	if err != nil {
		log.Fatal(err)
	}
	ap, err := approx.Solve(pilot, 1e-12, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact pilot check at N=%d (same per-input intensity): blocking %.5f (%v)\n",
		confirmN, exact.Blocking[0], time.Since(t0).Round(time.Millisecond))
	fmt.Printf("approximation at the pilot size:                    blocking %.5f\n", ap.Blocking[0])
	fmt.Println("\nreading: the fixed point brackets the design instantly; the exact")
	fmt.Println("algorithm confirms it, and the two agree to a fraction of a percent")
	fmt.Println("at pilot scale — the approximation only gets better at full scale.")
}
