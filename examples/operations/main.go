// Operations: running one switch like an operator — when can the
// steady-state formulas be trusted after a restart (transient
// analysis), and what admission policy maximizes revenue once there
// (exact policy CTMC)? Everything here is computed, not simulated.
//
// Run with: go run ./examples/operations
package main

import (
	"fmt"
	"log"

	"xbar/internal/admission"
	"xbar/internal/core"
	"xbar/internal/statespace"
	"xbar/internal/transient"
)

func main() {
	// A congested 4x4 edge switch: premium traffic worth 1.0 per
	// carried connection and scavenger traffic worth 0.01.
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{Name: "premium", A: 1, Alpha: 0.05, Mu: 1},
		{Name: "scavenger", A: 1, Alpha: 0.08, Mu: 1},
	}}
	weights := []float64{1.0, 0.01}

	// 1. After a restart, how long until the stationary numbers apply?
	chain, err := statespace.NewChain(sw, 100000)
	if err != nil {
		log.Fatal(err)
	}
	pi0, err := transient.EmptyStart(chain)
	if err != nil {
		log.Fatal(err)
	}
	times := []float64{0.5, 1, 2, 4, 8}
	traj, err := transient.BlockingTrajectory(chain, pi0, 0, times, transient.Options{})
	if err != nil {
		log.Fatal(err)
	}
	stat, err := chain.Stationary()
	if err != nil {
		log.Fatal(err)
	}
	target := chain.Measures(stat).Blocking[0]
	fmt.Println("cold-start premium blocking trajectory:")
	for i, tt := range times {
		fmt.Printf("  t = %4.1f holding times: %.4f (%.0f%% of stationary %.4f)\n",
			tt, traj[i], 100*traj[i]/target, target)
	}
	relax, err := transient.RelaxationTime(chain, 0.01, 50, transient.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady-state formulas valid (within 1%%) after %.1f holding times\n\n", relax)

	// 2. Should the scavenger class be admitted at all? Exact sweep of
	// the trunk-reservation limit.
	best, sweep, err := admission.OptimizeReservation(sw, weights, 1, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue by scavenger admission limit (exact CTMC):")
	for t, ev := range sweep {
		marker := ""
		if ev.Limits[1] == best.Limits[1] {
			marker = "   <- optimal"
		}
		fmt.Printf("  limit %d: W = %.4f, premium blocking %.3f%s\n",
			t, ev.Revenue, ev.CallBlocking[0], marker)
	}
	uncontrolled := sweep[len(sweep)-1]
	fmt.Printf("\ndecision: cap scavenger occupancy at %d (revenue %+.1f%% vs no control)\n",
		best.Limits[1],
		100*(best.Revenue-uncontrolled.Revenue)/uncontrolled.Revenue)
	fmt.Println("the paper's Section 4 shadow-cost test predicts this: the scavenger's")
	fmt.Println("w is far below the revenue its connections displace.")
}
