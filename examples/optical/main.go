// Optical backbone: a source-routed circuit-switching network of
// asynchronous crossbars (the application the paper's introduction
// sketches). Connection requests carry their whole path; intermediate
// crossbars do no computation — they either have the ports idle or the
// request clears end-to-end. Compares the Erlang fixed-point
// approximation against an exact event-driven simulation.
//
// Run with: go run ./examples/optical
package main

import (
	"fmt"
	"log"

	"xbar/internal/network"
)

func main() {
	// A five-node line-plus-shortcut topology of 16x16 crossbars:
	//
	//	0 -- 1 -- 2 -- 3 -- 4
	//	      \____2____/        (node 2 also bridges 1 and 3)
	net := network.Network{
		Switches: []network.Dim{
			{N1: 16, N2: 16}, {N1: 16, N2: 16}, {N1: 16, N2: 16},
			{N1: 16, N2: 16}, {N1: 16, N2: 16},
		},
		Routes: []network.Route{
			{Name: "metro-west", Path: []int{0, 1}, Rate: 0.9, Mu: 1},
			{Name: "metro-east", Path: []int{3, 4}, Rate: 0.9, Mu: 1},
			{Name: "transit", Path: []int{0, 1, 2, 3, 4}, Rate: 0.3, Mu: 1},
			{Name: "regional", Path: []int{1, 2, 3}, Rate: 0.45, Mu: 1},
		},
	}

	fp, err := network.FixedPoint(net, 1e-10, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced-load fixed point converged in %d iterations\n\n", fp.Iterations)
	fmt.Println("per-switch thinned load and blocking:")
	for s := range net.Switches {
		fmt.Printf("  switch %d: load %6.3f erl, hop blocking %.5f\n",
			s, fp.SwitchLoad[s], fp.SwitchBlocking[s])
	}

	sim, err := network.Simulate(net, network.SimConfig{
		Seed: 42, Warmup: 20000, Horizon: 200000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nend-to-end blocking (fixed point vs %d-event simulation):\n", sim.Events)
	for i, r := range net.Routes {
		fmt.Printf("  %-11s %d hops: %.5f approx vs %.5f ± %.5f simulated\n",
			r.Name, len(r.Path), fp.RouteBlocking[i],
			sim.RouteBlocking[i].Mean, sim.RouteBlocking[i].HalfWidth)
	}
	fmt.Println("\nreading: the transit route pays for every hop it crosses; the")
	fmt.Println("independence approximation tracks the simulation to a few percent.")
}
