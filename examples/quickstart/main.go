// Quickstart: model one asynchronous crossbar carrying two traffic
// classes and read off the paper's performance measures.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xbar"
)

func main() {
	// A 64x64 all-optical crossbar carrying two classes, specified in
	// the paper's aggregate units (intensity per input set over all
	// output sets):
	//
	//   - "calls": regular (Poisson) traffic, one connection each;
	//   - "bulk":  peaky (Pascal) traffic that books two inputs and
	//     two outputs per transfer, with a slower holding rate.
	// (a=2 intensities are per PAIR of inputs, so a comparable load is
	// roughly a factor C(N,2)/N smaller than an a=1 intensity.)
	sw := xbar.NewSwitch(64, 64,
		xbar.AggregateClass{Name: "calls", A: 1, AlphaTilde: 0.0024, Mu: 1},
		xbar.AggregateClass{Name: "bulk", A: 2, AlphaTilde: 2.4e-6, BetaTilde: 1.2e-6, Mu: 0.5},
	)

	// Algorithm 1 (the paper's scaled lattice recursion). SolveMVA,
	// SolveDirect and SolveConvolution compute the same measures by
	// independent routes.
	res, err := xbar.Solve(sw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("switch: %dx%d, utilization %.4f\n", sw.N1, sw.N2, res.Utilization())
	for i, c := range sw.Classes {
		fmt.Printf("%-6s a=%d  peakedness Z=%.5f\n", c.Name, c.A, c.BPP().Peakedness())
		fmt.Printf("       blocking     %.6f  (prob. a particular route is busy)\n", res.Blocking[i])
		fmt.Printf("       concurrency  %.6f  (mean connections in progress)\n", res.Concurrency[i])
		fmt.Printf("       throughput   %.6f  (completions per unit time)\n", res.Throughput(i))
	}

	// The same switch via the numerically stable mean-value recursion
	// (Algorithm 2) — identical answers, plain float64 inside.
	mva, err := xbar.SolveMVA(sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalgorithm 2 cross-check: blocking diff = %.2e, %.2e\n",
		res.Blocking[0]-mva.Blocking[0], res.Blocking[1]-mva.Blocking[1])
}
