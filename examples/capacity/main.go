// Capacity planning with the revenue model (paper Section 4):
// given two classes with very different revenue rates, find the switch
// size that meets a blocking target, read the shadow costs, and decide
// which traffic is worth growing.
//
// Run with: go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"xbar/internal/core"
	"xbar/internal/revenue"
)

func main() {
	// Total demand is fixed (Figure 4's normalization: aggregate
	// intensity per input set scales as 1/N for a=1 and as
	// a/C(N,a) for a=2, keeping the offered erlangs constant), so a
	// bigger switch trunks the same traffic with less contention.
	// Premium interactive traffic pays 1.0 per carried connection and
	// needs one port pair; best-effort bulk pays 0.02, is peaky
	// (Z > 1) and books two port pairs per transfer.
	const (
		tauPremium = 0.10 // erlangs of premium demand
		tauBulk    = 0.03 // erlangs of bulk demand (in connections)
	)
	build := func(n int) core.Switch {
		return core.NewSwitch(n, n,
			core.AggregateClass{Name: "premium", A: 1,
				AlphaTilde: tauPremium / (2 * float64(n)), Mu: 1},
			core.AggregateClass{Name: "bulk", A: 2,
				AlphaTilde: tauBulk * 2 / (float64(n) * float64(n-1)),
				BetaTilde:  tauBulk / (float64(n) * float64(n-1)), Mu: 1},
		)
	}
	weights := []float64{1.0, 0.02}

	// 1. Size the switch: smallest N with premium blocking under 0.5%.
	const target = 0.005
	var chosen int
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		res, err := core.Solve(build(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N=%3d  premium blocking %.5f  bulk blocking %.5f\n",
			n, res.Blocking[0], res.Blocking[1])
		if res.Blocking[0] < target && chosen == 0 {
			chosen = n
		}
	}
	if chosen == 0 {
		log.Fatal("no size met the target; raise the sweep")
	}
	fmt.Printf("\nsmallest N meeting %.1f%% premium blocking: %d\n\n", target*100, chosen)

	// 2. Economics on today's congested small switch (N=4), before the
	// upgrade: shadow costs decide what to admit.
	const today = 4
	an, err := revenue.New(build(today), weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("economics at today's congested N=%d:\n", today)
	fmt.Printf("revenue W(N) = %.6f\n", an.W())
	for i, name := range []string{"premium", "bulk"} {
		fmt.Printf("%-8s w=%.3f  shadow cost %.5f  profitable to grow: %v\n",
			name, weights[i], an.ShadowCost(i), an.Profitable(i))
	}

	// 3. Sensitivity: what does one more unit of load do to revenue?
	fmt.Printf("\ndW/d rho(premium)    = %+.4f  (closed form)\n", an.GradientRhoClosed(0))
	fmt.Printf("dW/d rho(bulk)       = %+.4f  (central difference)\n", an.GradientRho(1, 1e-6))
	fmt.Printf("dW/d (beta/mu)(bulk) = %+.5f  (burstiness sensitivity)\n", an.GradientBetaMu(1, 1e-4))
	fmt.Println("\nreading: on the congested switch a bulk transfer earns 0.02 but")
	fmt.Println("displaces ~0.03 of premium revenue (its two port pairs), so growing")
	fmt.Println("bulk — or letting it get burstier — loses money; the upgrade to the")
	fmt.Println("chosen size is what makes both classes worth carrying.")
}
