// Burstiness study: the two headline statistical claims of the paper,
// observed in the fabric-level simulator rather than the formulas.
//
//  1. Peakedness matters: smooth (Bernoulli), regular (Poisson) and
//     peaky (Pascal) sources with the SAME mean offered load produce
//     ordered blocking, and for non-Poisson sources the blocking an
//     arriving request experiences (call congestion) splits away from
//     the time-average view (no PASTA).
//  2. Holding times do not: the measures are insensitive to the
//     holding-time distribution given its mean.
//
// Run with: go run ./examples/burstiness
package main

import (
	"fmt"
	"log"

	"xbar/internal/core"
	"xbar/internal/dist"
	"xbar/internal/rng"
	"xbar/internal/sim"
)

func main() {
	const (
		n       = 8
		mean    = 1.6 // mean offered connections (infinite-server sense)
		horizon = 150000.0
	)

	fmt.Println("-- 1. peakedness sweep at constant mean load --")
	fmt.Printf("%-18s %-6s %-22s %-12s %-12s\n",
		"traffic", "Z", "blocking (analytic)", "time B (sim)", "call B (sim)")
	// Z = 0.9 gives a Bernoulli source population of
	// M/(1-Z) = 16 >= N, satisfying the paper's validity constraint;
	// stronger smoothing at this mean would need a bigger population
	// than an 8x8 switch admits.
	for _, z := range []float64{0.9, 1.0, 2.0, 4.0} {
		// Fit the switch-total BPP process to (mean, Z), then spread
		// the intensity uniformly over the N*N routes; the population
		// ratio alpha/beta — and hence the validity constraint — is
		// unchanged by the split.
		src, err := dist.FitMeanPeakedness(mean, z, 1)
		if err != nil {
			log.Fatal(err)
		}
		routes := float64(n * n)
		sw := core.Switch{N1: n, N2: n, Classes: []core.Class{{
			Name: src.Traffic().String(), A: 1,
			Alpha: src.Alpha / routes, Beta: src.Beta / routes, Mu: src.Mu,
		}}}
		analytic, err := core.Solve(sw)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Switch: sw, Seed: uint64(100 * z), Warmup: horizon / 10, Horizon: horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
		c := res.Classes[0]
		fmt.Printf("%-18s %-6.2f %-22.6f %-12.6f %-12.6f\n",
			src.Traffic(), z, analytic.Blocking[0],
			1-c.TimeNonBlocking.Mean, c.CallBlocking.Mean)
	}
	fmt.Println("\nreading: at FIXED MEAN load, peakier traffic leaves the switch")
	fmt.Println("idler on time average (bursts waste capacity, so time congestion")
	fmt.Println("falls) while the blocking an arriving request actually experiences")
	fmt.Println("(call congestion) climbs — peaky arrivals show up exactly when the")
	fmt.Println("switch is full. The paper's Figure 2, which fixes alpha~ instead and")
	fmt.Println("lets the mean grow with beta~, sees both measures rise.")

	fmt.Println("\n-- 2. insensitivity to the holding-time distribution --")
	sw := core.Switch{N1: n, N2: n, Classes: []core.Class{{
		Name: "peaky", A: 1, Alpha: 0.8 / float64(n*n), Beta: 0.5 / float64(n*n), Mu: 1,
	}}}
	analytic, err := core.Solve(sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic blocking %.6f, concurrency %.6f\n",
		analytic.Blocking[0], analytic.Concurrency[0])
	hyper, err := rng.BalancedHyperExp2(1, 4)
	if err != nil {
		log.Fatal(err)
	}
	pareto, err := rng.ParetoWithMean(1, 2.5)
	if err != nil {
		log.Fatal(err)
	}
	services := []rng.ServiceDist{
		rng.Exponential{M: 1},
		rng.Deterministic{M: 1},
		rng.Erlang{K: 4, M: 1},
		hyper,
		pareto,
	}
	for i, d := range services {
		res, err := sim.Run(sim.Config{
			Switch: sw, Seed: uint64(7 + i), Warmup: horizon / 10, Horizon: horizon,
			Service: []rng.ServiceDist{d},
		})
		if err != nil {
			log.Fatal(err)
		}
		c := res.Classes[0]
		fmt.Printf("%-14s time B %.6f ± %.6f   E %.5f ± %.5f\n",
			d.Name(), 1-c.TimeNonBlocking.Mean, c.TimeNonBlocking.HalfWidth,
			c.Concurrency.Mean, c.Concurrency.HalfWidth)
	}
	fmt.Println("\nreading: five very different holding-time shapes, one steady state —")
	fmt.Println("the product form depends on service only through its mean.")
}
