# Convenience targets for the reproduction. Everything is stdlib-only
# Go; no external dependencies.

GO ?= go

.PHONY: all build vet lint test test-race test-short cover bench experiments examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (docs/STATIC_ANALYSIS.md).
lint:
	$(GO) run ./cmd/xbarlint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerates every paper table and figure plus the validation,
# ablation and extension studies into results/.
experiments:
	$(GO) run ./cmd/experiments -run all

experiments-quick:
	$(GO) run ./cmd/experiments -run all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacity
	$(GO) run ./examples/burstiness
	$(GO) run ./examples/optical
	$(GO) run ./examples/operations
	$(GO) run ./examples/sizing

clean:
	rm -f cover.out test_output.txt bench_output.txt
