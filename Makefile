# Convenience targets for the reproduction. Everything is stdlib-only
# Go; no external dependencies. Run `make help` for a summary.

GO ?= go
# Sequence number of the BENCH_<n>.json trajectory point `make bench`
# writes (docs/PERFORMANCE.md); bump per PR.
BENCH_N ?= 10
# Total-coverage floor `make cover` enforces (docs/PERFORMANCE.md
# records how it was set; CI's coverage job gates on it).
COVER_MIN ?= 86.5
# Per-target budget of `make fuzz-short` (CI's fuzz-short job).
FUZZTIME ?= 60s

.PHONY: all help build vet lint test test-race test-short cover bench bench-short profile serve smoke cluster-smoke sim-validate conformance fuzz-short experiments experiments-quick examples clean

all: build vet lint test

help:
	@echo "Targets:"
	@echo "  all          build + vet + lint + test"
	@echo "  build        go build ./..."
	@echo "  vet          go vet ./..."
	@echo "  lint         go vet + project static analysis (cmd/xbarlint, docs/STATIC_ANALYSIS.md)"
	@echo "  test         go test ./..."
	@echo "  test-short   go test -short ./..."
	@echo "  test-race    go test -race ./..."
	@echo "  cover        coverage summary; fails below COVER_MIN=$(COVER_MIN)%"
	@echo "  bench        run benchmarks and write BENCH_$(BENCH_N).json (ns/op, B/op, allocs/op;"
	@echo "               set BENCH_N=<n> for the trajectory point, see docs/PERFORMANCE.md)"
	@echo "  bench-short  one-iteration benchmark smoke run, JSON to bench_short.json"
	@echo "  profile      CPU-profile the N=256 lattice fill and print the hot functions"
	@echo "  serve        run the xbard HTTP daemon (API :8480, pprof 127.0.0.1:8481)"
	@echo "  smoke        xbard end-to-end smoke test (scripts/smoke.sh; CI's smoke job)"
	@echo "  cluster-smoke 3-node sharded-cluster smoke test: forwarding, single fleet"
	@echo "               fill, owner-kill failover (scripts/cluster-smoke.sh; CI job)"
	@echo "  sim-validate farm-vs-analytic 3-sigma sweep (scripts/simvalidate.sh; CI's sim-validate job)"
	@echo "  conformance  scenario corpus through scenario.Evaluate, bit-identical to the"
	@echo "               legacy entry points; writes conformance-report.json (CI job)"
	@echo "  fuzz-short   native fuzzing, FUZZTIME=$(FUZZTIME) per target (CI's fuzz-short job)"
	@echo "  experiments  regenerate every paper table/figure into results/"
	@echo "  examples     run the example programs"
	@echo "  clean        remove generated files"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet first (stdlib checks), then the
# project-specific checks (docs/STATIC_ANALYSIS.md).
lint: vet
	$(GO) run ./cmd/xbarlint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# Coverage with a floor: the build fails when total coverage drops
# below COVER_MIN (set from the measured total minus two points; see
# docs/PERFORMANCE.md).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub(/%/,"",$$NF); print $$NF}'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t + 0 < min + 0) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, min; exit 1 } \
		printf "coverage %.1f%% meets the %.1f%% floor\n", t, min }'

# Full benchmark run rendered to the machine-readable trajectory file
# BENCH_<n>.json (cmd/benchjson). Text output is kept in
# bench_output.txt for eyeballing.
bench:
	$(GO) test -bench . -benchmem ./... | tee bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -o BENCH_$(BENCH_N).json
	@echo "wrote BENCH_$(BENCH_N).json"

# Smoke run: every benchmark executes exactly once (CI's bench-short
# job); the JSON artifact proves the harness still parses.
bench-short:
	$(GO) test -bench . -benchtime 1x -benchmem -short ./... | tee bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -o bench_short.json
	@echo "wrote bench_short.json"

# CPU-profiles the N=256 Algorithm 1 fill (the hot path every tuning
# PR targets, docs/PERFORMANCE.md) and prints the top hot functions.
profile:
	$(GO) test -run XXX -bench 'BenchmarkParallelFill/alg1/N=256/w1' -benchtime 200x -cpuprofile cpu.prof -o xbar.test .
	$(GO) tool pprof -top -nodecount 10 xbar.test cpu.prof

# Runs the xbard HTTP daemon with the pprof/metrics debug mux on
# loopback (docs/SERVER.md).
serve:
	$(GO) run ./cmd/xbard -addr :8480 -debug-addr 127.0.0.1:8481

# End-to-end daemon smoke test: build, serve, golden-check /v1/blocking
# against results/figure1.csv, scrape /metrics, SIGTERM, clean drain.
smoke:
	./scripts/smoke.sh

# 3-node cluster smoke test: consistent-hash forwarding serves every
# node's request from the key's owner with exactly one fleet-wide
# lattice fill, killing the owner degrades to local compute, and the
# /v1/cluster rollup lands in cluster-rollup.json (docs/CLUSTER.md;
# CI's cluster-smoke job uploads it as an artifact).
cluster-smoke:
	./scripts/cluster-smoke.sh

# Farm-vs-analytic validation: replication farms on representative
# switches gated within 3 sigma of the product-form solution, with
# fixed seeds so a failure is a regression, never a flake
# (docs/SIMULATOR.md).
sim-validate:
	./scripts/simvalidate.sh

# Conformance gate: every testdata/scenarios corpus spec through the
# unified scenario engine, asserted bit-identical to the legacy entry
# points, with the per-scenario comparison written to
# conformance-report.json (docs/SCENARIOS.md; CI's scenario-conformance
# job uploads the report as an artifact).
conformance:
	$(GO) test ./internal/scenario -run TestCorpusConformance -conformance-report "$(CURDIR)/conformance-report.json"
	@echo "wrote conformance-report.json"

# Short native fuzzing pass, one budget per target: the scenario-spec
# round trip (decode -> validate -> evaluate) and the event-queue heap
# property. Crashers land under the package's testdata/fuzz directory.
fuzz-short:
	$(GO) test ./internal/scenario -run '^$$' -fuzz FuzzSpec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/eventq -run '^$$' -fuzz FuzzHeapProperty -fuzztime $(FUZZTIME)

# Regenerates every paper table and figure plus the validation,
# ablation and extension studies into results/.
experiments:
	$(GO) run ./cmd/experiments -run all

experiments-quick:
	$(GO) run ./cmd/experiments -run all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacity
	$(GO) run ./examples/burstiness
	$(GO) run ./examples/optical
	$(GO) run ./examples/operations
	$(GO) run ./examples/sizing

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_short.json cpu.prof xbar.test conformance-report.json cluster-rollup.json
