package xbar_test

import (
	"math"
	"testing"

	"xbar"
)

// TestFacadeEndToEnd drives the public API exactly as a downstream
// module would: build, solve with both algorithms, simulate, and run
// the revenue analysis.
func TestFacadeEndToEnd(t *testing.T) {
	sw := xbar.NewSwitch(8, 8,
		xbar.AggregateClass{Name: "calls", A: 1, AlphaTilde: 0.01, Mu: 1},
		xbar.AggregateClass{Name: "bulk", A: 2, AlphaTilde: 0.0005, BetaTilde: 0.0002, Mu: 0.5},
	)
	a1, err := xbar.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := xbar.SolveMVA(sw)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := xbar.SolveDirect(sw)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := xbar.SolveConvolution(sw)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		for _, other := range []*xbar.Result{a2, direct, conv} {
			if math.Abs(other.Blocking[r]-a1.Blocking[r]) > 1e-9 {
				t.Errorf("%s blocking[%d] %v != alg1 %v", other.Method, r, other.Blocking[r], a1.Blocking[r])
			}
		}
	}
	if conv.Occupancy == nil {
		t.Error("convolution result lacks occupancy distribution")
	}

	res, err := xbar.Simulate(xbar.SimConfig{
		Switch: sw, Seed: 1, Warmup: 1000, Horizon: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Classes[0].Concurrency.Mean-a1.Concurrency[0]) > 2*res.Classes[0].Concurrency.HalfWidth {
		t.Errorf("simulated E %v inconsistent with analytic %v",
			res.Classes[0].Concurrency, a1.Concurrency[0])
	}

	an, err := xbar.NewRevenueAnalysis(sw, []float64{1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	want := a1.Concurrency[0] + 0.2*a1.Concurrency[1]
	if math.Abs(an.W()-want) > 1e-12 {
		t.Errorf("W = %v, want %v", an.W(), want)
	}
}

// TestFacadePerRouteUnits builds a switch in per-route units directly.
func TestFacadePerRouteUnits(t *testing.T) {
	sw := xbar.Switch{N1: 3, N2: 3, Classes: []xbar.Class{
		{Name: "x", A: 1, Alpha: 0.1, Mu: 1},
	}}
	res, err := xbar.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocking[0] <= 0 || res.Blocking[0] >= 1 {
		t.Errorf("blocking %v", res.Blocking[0])
	}
	if res.Utilization() <= 0 {
		t.Errorf("utilization %v", res.Utilization())
	}
	if res.Throughput(0) <= 0 {
		t.Errorf("throughput %v", res.Throughput(0))
	}
}
