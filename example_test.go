package xbar_test

import (
	"fmt"

	"xbar"
)

// The canonical workflow: describe the switch in the paper's aggregate
// units, solve, read the measures.
func ExampleSolve() {
	sw := xbar.NewSwitch(16, 16,
		xbar.AggregateClass{Name: "voice", A: 1, AlphaTilde: 0.0024, Mu: 1},
	)
	res, err := xbar.Solve(sw)
	if err != nil {
		panic(err)
	}
	fmt.Printf("blocking    %.6f\n", res.Blocking[0])
	fmt.Printf("concurrency %.6f\n", res.Concurrency[0])
	// Output:
	// blocking    0.004623
	// concurrency 0.038222
}

// Revenue analysis: shadow costs decide whether growing a class pays.
func ExampleNewRevenueAnalysis() {
	sw := xbar.Switch{N1: 3, N2: 3, Classes: []xbar.Class{
		{Name: "gold", A: 1, Alpha: 0.3, Mu: 1},
		{Name: "lead", A: 1, Alpha: 0.3, Mu: 1},
	}}
	an, err := xbar.NewRevenueAnalysis(sw, []float64{10, 0.001})
	if err != nil {
		panic(err)
	}
	fmt.Printf("grow gold: %v\n", an.Profitable(0))
	fmt.Printf("grow lead: %v\n", an.Profitable(1))
	// Output:
	// grow gold: true
	// grow lead: false
}
