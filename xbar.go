// Package xbar is a production-quality Go reproduction of
// "Performance Analysis of an Asynchronous Multi-rate Crossbar with
// Bursty Traffic" (Stirpe & Pinsky, SIGCOMM 1992): the product-form
// model of an N1 x N2 asynchronous, unbuffered, circuit-switched
// crossbar carrying multi-rate Bernoulli–Poisson–Pascal traffic, the
// paper's two recursive algorithms, the revenue analysis, and the
// simulation and baseline machinery around them.
//
// This package is the public face of the library: it re-exports the
// model types and the main entry points from the internal packages so
// downstream modules can depend on a single import path.
//
//	sw := xbar.NewSwitch(64, 64,
//	    xbar.AggregateClass{Name: "calls", A: 1, AlphaTilde: 0.0024, Mu: 1})
//	res, err := xbar.Solve(sw)
//
// The full machinery — exact CTMC, trunk reservation, transient
// analysis, baselines — lives in the internal packages and is driven
// through the cmd/ binaries; see README.md for the map.
package xbar

import (
	"xbar/internal/core"
	"xbar/internal/revenue"
	"xbar/internal/rng"
	"xbar/internal/sim"
	"xbar/internal/stats"
)

// Model types (see internal/core for full documentation).
type (
	// Switch is an N1 x N2 asynchronous crossbar with traffic classes
	// in per-route units.
	Switch = core.Switch
	// Class is one traffic class: bandwidth A, BPP intensity
	// Alpha + Beta*k per ordered route, service rate Mu.
	Class = core.Class
	// AggregateClass specifies a class in the paper's per-input-set
	// ("tilde") units.
	AggregateClass = core.AggregateClass
	// Result holds blocking, concurrency and the derived measures.
	Result = core.Result
)

// NewSwitch builds a switch from aggregate ("tilde") classes.
func NewSwitch(n1, n2 int, classes ...AggregateClass) Switch {
	return core.NewSwitch(n1, n2, classes...)
}

// Solve evaluates the switch with the paper's Algorithm 1 (the scaled
// lattice recursion).
func Solve(sw Switch) (*Result, error) { return core.Solve(sw) }

// SolveMVA evaluates the switch with the paper's Algorithm 2 (the
// numerically stable mean-value recursion).
func SolveMVA(sw Switch) (*Result, error) { return core.SolveMVA(sw) }

// SolveDirect evaluates by literal state-space summation (small
// systems; ground truth).
func SolveDirect(sw Switch) (*Result, error) { return core.SolveDirect(sw) }

// SolveConvolution evaluates by occupancy convolution and additionally
// fills Result.Occupancy.
func SolveConvolution(sw Switch) (*Result, error) { return core.SolveConvolution(sw) }

// Simulation types (see internal/sim).
type (
	// SimConfig parameterizes a discrete-event fabric simulation.
	SimConfig = sim.Config
	// SimResult reports simulation estimates with confidence
	// intervals.
	SimResult = sim.Result
	// ServiceDist is a holding-time distribution for insensitivity
	// experiments.
	ServiceDist = rng.ServiceDist
	// CI is a confidence interval.
	CI = stats.CI
)

// Simulate runs the event-driven fabric simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// RevenueAnalysis evaluates Section 4's weighted-throughput measures.
type RevenueAnalysis = revenue.Analysis

// NewRevenueAnalysis builds a revenue analysis with one weight per
// class.
func NewRevenueAnalysis(sw Switch, weights []float64) (*RevenueAnalysis, error) {
	return revenue.New(sw, weights)
}
