#!/usr/bin/env bash
# Farm-vs-analytic validation sweep: run the replication farm on
# representative switches — Poisson narrowband, bursty (Pascal),
# smooth (Bernoulli), and a multi-rate mix — and gate every pooled
# estimate within 3 sigma of the product-form solution (xbarsim
# -validate, internal/sim.Validate). Seeds are fixed, so each gate is
# deterministic: a failure is a real estimator or engine regression,
# never a flake. CI runs this as the sim-validate job; locally:
# `make sim-validate`.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="$(mktemp -d)/xbarsim"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/xbarsim

run() {
    echo "== xbarsim -validate $*"
    "$bin" -validate -max-z 3 -reps 8 -warmup 2000 -horizon 20000 "$@"
    echo
}

# Poisson narrowband: the Erlang regime, PASTA makes call and time
# congestion coincide.
run -seed 101 -n1 16 -n2 16 -class poisson:1:0.03:0:1

# Bursty (Pascal, beta > 0): peaked traffic, call congestion above
# time congestion.
run -seed 102 -n1 16 -n2 16 -class bursty:1:0.012:0.012:1

# Smooth (Bernoulli, beta < 0): finite sources, call congestion below
# time congestion.
run -seed 103 -n1 12 -n2 12 -class smooth:1:0.06:-0.002:1

# Multi-rate mix: narrowband Poisson against a wideband a=2 class on
# an asymmetric fabric.
run -seed 104 -n1 8 -n2 12 -class narrow:1:0.04:0:1 -class wide:2:0.004:0:0.5

echo "sim-validate: all sweeps within 3 sigma"
