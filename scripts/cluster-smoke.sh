#!/usr/bin/env bash
# End-to-end smoke test for the xbard cluster layer (`make
# cluster-smoke`, CI's cluster-smoke job): build xbard, start a 3-node
# cluster on loopback ports, and check the sharded-cache contract:
#
#   1. every node answers the same request with identical measures,
#      all served by the key's ring owner (X-Xbar-Node), and the fleet
#      fills the lattice exactly once (fleet cache_misses == 1 in the
#      /v1/cluster rollup);
#   2. killing the owner degrades to local compute on the survivors
#      (HTTP 200, same blocking value, failovers counted) — never a
#      client-facing error;
#   3. the /v1/cluster rollup keeps answering with the dead member
#      marked unreachable; the final rollup is written to
#      $CLUSTER_ROLLUP (default cluster-rollup.json) for CI artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_PORT="${XBARD_CLUSTER_PORT:-8483}"
ROLLUP="${CLUSTER_ROLLUP:-cluster-rollup.json}"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "${PIDS[@]}"; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "cluster-smoke: building xbard"
go build -o "$WORK/xbard" ./cmd/xbard

IDS=(n1 n2 n3)
PEERS=""
for i in 0 1 2; do
    PEERS="${PEERS:+$PEERS,}${IDS[$i]}=http://127.0.0.1:$((BASE_PORT + i))"
done
for i in 0 1 2; do
    "$WORK/xbard" -addr "127.0.0.1:$((BASE_PORT + i))" -drain 10s \
        -node-id "${IDS[$i]}" -peers "$PEERS" \
        2>"$WORK/xbard-${IDS[$i]}.log" &
    PIDS+=($!)
done

url() { echo "http://127.0.0.1:$((BASE_PORT + $1))"; }

# Readiness gate on every node, bounded by a deadline.
DEADLINE=$(( $(date +%s) + 20 ))
for i in 0 1 2; do
    ok=
    while [ "$(date +%s)" -lt "$DEADLINE" ]; do
        if curl -fsS "$(url $i)/readyz" >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.1
    done
    if [ -z "$ok" ]; then
        echo "cluster-smoke: ${IDS[$i]} not ready; log:" >&2
        cat "$WORK/xbard-${IDS[$i]}.log" >&2
        exit 1
    fi
done
echo "cluster-smoke: 3 nodes ready"

BODY='{"n1":16,"n2":16,"classes":[{"name":"smooth","a":1,"alpha":0.0024,"mu":1}]}'
served_by() { grep -i '^x-xbar-node:' "$1" | tr -d '\r' | awk '{print $2}'; }
# Cached flips false->true after the owner's first fill; strip it so
# the measure bytes can be compared directly.
norm() { sed 's/"cached":true/"cached":false/' "$1"; }

# The same request through every node: one owner serves all three,
# byte-identical measures, one fleet-wide fill.
for i in 0 1 2; do
    curl -fsS -D "$WORK/hdr$i.txt" -X POST -d "$BODY" \
        "$(url $i)/v1/blocking" >"$WORK/resp$i.json"
done
OWNER="$(served_by "$WORK/hdr0.txt")"
case " ${IDS[*]} " in
    *" $OWNER "*) ;;
    *) echo "cluster-smoke: X-Xbar-Node header '$OWNER' names no member" >&2; exit 1 ;;
esac
for i in 1 2; do
    SB="$(served_by "$WORK/hdr$i.txt")"
    if [ "$SB" != "$OWNER" ]; then
        echo "cluster-smoke: node ${IDS[$i]} request served by '$SB', want owner '$OWNER'" >&2
        exit 1
    fi
    if [ "$(norm "$WORK/resp$i.json")" != "$(norm "$WORK/resp0.json")" ]; then
        echo "cluster-smoke: node ${IDS[$i]} response differs from node ${IDS[0]}" >&2
        exit 1
    fi
done
echo "cluster-smoke: all 3 nodes served by owner $OWNER, responses identical"

curl -fsS "$(url 0)/v1/cluster" >"$WORK/rollup1.json"
grep -q '"cache_misses":1' "$WORK/rollup1.json" || {
    echo "cluster-smoke: fleet cache_misses != 1; rollup:" >&2
    cat "$WORK/rollup1.json" >&2
    exit 1
}
echo "cluster-smoke: fleet-wide cache_misses == 1"

# Kill the owner; a survivor must fail over to local compute with the
# same answer.
for i in 0 1 2; do
    if [ "${IDS[$i]}" = "$OWNER" ]; then
        OWNER_IDX=$i
    fi
done
SURVIVOR_IDX=$(( (OWNER_IDX + 1) % 3 ))
kill -TERM "${PIDS[$OWNER_IDX]}"
wait "${PIDS[$OWNER_IDX]}" || {
    echo "cluster-smoke: owner exited non-zero; log:" >&2
    cat "$WORK/xbard-$OWNER.log" >&2
    exit 1
}
echo "cluster-smoke: owner $OWNER drained cleanly"

curl -fsS -D "$WORK/hdr-failover.txt" -X POST -d "$BODY" \
    "$(url $SURVIVOR_IDX)/v1/blocking" >"$WORK/resp-failover.json"
SB="$(served_by "$WORK/hdr-failover.txt")"
if [ "$SB" != "${IDS[$SURVIVOR_IDX]}" ]; then
    echo "cluster-smoke: failover served by '$SB', want local ${IDS[$SURVIVOR_IDX]}" >&2
    exit 1
fi
B0="$(grep -o '"blocking":[0-9.eE+-]*' "$WORK/resp0.json" | head -1)"
BF="$(grep -o '"blocking":[0-9.eE+-]*' "$WORK/resp-failover.json" | head -1)"
if [ "$B0" != "$BF" ]; then
    echo "cluster-smoke: failover blocking $BF differs from owner's $B0" >&2
    exit 1
fi
curl -fsS "$(url $SURVIVOR_IDX)/metrics" >"$WORK/metrics-failover.json"
grep -q '"failovers":1' "$WORK/metrics-failover.json" || {
    echo "cluster-smoke: survivor counted no failover; metrics:" >&2
    cat "$WORK/metrics-failover.json" >&2
    exit 1
}
echo "cluster-smoke: failover to local compute ok (bit-identical blocking)"

# The rollup survives the dead member and is kept as the CI artifact.
curl -fsS "$(url $SURVIVOR_IDX)/v1/cluster" >"$ROLLUP"
grep -q '"reachable":2' "$ROLLUP" || {
    echo "cluster-smoke: rollup does not report 2 reachable members:" >&2
    cat "$ROLLUP" >&2
    exit 1
}
echo "cluster-smoke: rollup written to $ROLLUP"

# Clean drain for the two survivors.
for i in 0 1 2; do
    [ "$i" -eq "$OWNER_IDX" ] && continue
    kill -TERM "${PIDS[$i]}"
    wait "${PIDS[$i]}" || {
        echo "cluster-smoke: ${IDS[$i]} exited non-zero; log:" >&2
        cat "$WORK/xbard-${IDS[$i]}.log" >&2
        exit 1
    }
    grep -q "drained cleanly" "$WORK/xbard-${IDS[$i]}.log"
done
PIDS=()
echo "cluster-smoke: clean drain on survivors, all checks passed"
