#!/usr/bin/env bash
# End-to-end smoke test for the xbard daemon (`make smoke`, CI's smoke
# job): build it, start it, wait for readiness on /readyz (bounded by
# a deadline), hit /healthz, check /v1/blocking against the committed
# results/figure1.csv value to 1e-9, run two scenario specs through
# /v1/scenario (plus its 422 contract), scrape /metrics, then SIGTERM
# and require a clean drain with exit code 0.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${XBARD_PORT:-8482}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "smoke: building xbard"
go build -o "$WORK/xbard" ./cmd/xbard

"$WORK/xbard" -addr "127.0.0.1:$PORT" -drain 10s 2>"$WORK/xbard.log" &
PID=$!

# Readiness gate: poll /readyz (not /healthz — a live node may not be
# ready yet) under a hard deadline.
READY_DEADLINE_S="${XBARD_READY_DEADLINE_S:-15}"
DEADLINE=$(( $(date +%s) + READY_DEADLINE_S ))
ok=
while [ "$(date +%s)" -lt "$DEADLINE" ]; do
    if curl -fsS "$BASE/readyz" >"$WORK/readyz.json" 2>/dev/null; then
        ok=1
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "smoke: xbard exited before serving; log:" >&2
        cat "$WORK/xbard.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "smoke: xbard not ready on /readyz within ${READY_DEADLINE_S}s; log:" >&2
    cat "$WORK/xbard.log" >&2
    exit 1
fi
grep -q '"status":"ready"' "$WORK/readyz.json"
echo "smoke: /readyz ready"

curl -fsS "$BASE/healthz" >"$WORK/healthz.json"
grep -q '"status":"ok"' "$WORK/healthz.json"
echo "smoke: /healthz ok"

# Figure 1 operating point at N=16: single Bernoulli class, a=1,
# alpha~=.0024, mu=1. The served blocking must match the committed
# results/figure1.csv beta~=0 column to 1e-9.
GOLDEN="$(awk -F, '$1 == 16 { print $2; exit }' results/figure1.csv)"
curl -fsS -X POST -d '{"n1":16,"n2":16,"classes":[{"name":"smooth","a":1,"alpha":0.0024,"mu":1}]}' \
    "$BASE/v1/blocking" >"$WORK/blocking.json"
GOT="$(grep -o '"blocking":[0-9.eE+-]*' "$WORK/blocking.json" | head -1 | cut -d: -f2)"
awk -v got="$GOT" -v want="$GOLDEN" 'BEGIN {
    d = got - want; if (d < 0) d = -d
    printf "smoke: /v1/blocking = %s, results/figure1.csv = %s, |diff| = %.3g\n", got, want, d
    exit !(d <= 1e-9)
}'

# The asymptotic dispatch tier: a 4096-port switch no lattice fill
# could serve, answered from the saddle-point expansion. The answer
# must carry the tier and a positive error bound, and arrive fast —
# the tier is O(R), so 100ms wall clock (including curl) is generous.
START_NS="$(date +%s%N)"
curl -fsS -X POST -d '{"n1":4096,"n2":4096,"dispatch":"auto","classes":[{"name":"bulk","a":1,"alpha":1.12,"mu":1}]}' \
    "$BASE/v1/blocking" >"$WORK/asym.json"
ELAPSED_MS=$(( ($(date +%s%N) - START_NS) / 1000000 ))
grep -q '"tier":"asymptotic"' "$WORK/asym.json"
grep -qo '"error_bound":[0-9.eE+-]*' "$WORK/asym.json"
if [ "$ELAPSED_MS" -ge 100 ]; then
    echo "smoke: asymptotic /v1/blocking took ${ELAPSED_MS}ms, want < 100ms" >&2
    exit 1
fi
echo "smoke: asymptotic dispatch at 4096 ok (${ELAPSED_MS}ms)"

# The unified scenario endpoint: one analytic slotted spec and one
# analytic WDM spec through POST /v1/scenario (docs/SCENARIOS.md). The
# slotted repeat must come back from the result cache.
curl -fsS -X POST -d '{"discipline":"slotted","topology":{"n1":16,"n2":16},"params":{"load":0.8}}' \
    "$BASE/v1/scenario" >"$WORK/scenario1.json"
grep -q '"discipline":"slotted"' "$WORK/scenario1.json"
grep -q '"name":"throughput"' "$WORK/scenario1.json"
grep -q '"cached":false' "$WORK/scenario1.json"
curl -fsS -X POST -d '{"discipline":"slotted","topology":{"n1":16,"n2":16},"params":{"load":0.8}}' \
    "$BASE/v1/scenario" >"$WORK/scenario2.json"
grep -q '"cached":true' "$WORK/scenario2.json"
curl -fsS -X POST -d '{"discipline":"wdm","topology":{"l":3,"w":8},"params":{"rate":4,"cross_rate":1,"mu":1}}' \
    "$BASE/v1/scenario" >"$WORK/scenario3.json"
grep -q '"name":"conversion_gain"' "$WORK/scenario3.json"
# The error contract: an unknown discipline is a 422, never a 200.
CODE="$(curl -sS -o "$WORK/scenario4.json" -w '%{http_code}' -X POST -d '{"discipline":"quantum"}' "$BASE/v1/scenario")"
if [ "$CODE" != "422" ]; then
    echo "smoke: unknown discipline returned HTTP $CODE, want 422" >&2
    exit 1
fi
echo "smoke: /v1/scenario ok"

curl -fsS "$BASE/metrics" >"$WORK/metrics.json"
grep -q '"misses":1' "$WORK/metrics.json"
grep -q '"requests":2' "$WORK/metrics.json"
grep -q '"scenario_cache":{"hits":1,"misses":2' "$WORK/metrics.json"
echo "smoke: /metrics ok"

kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "smoke: xbard exited $rc after SIGTERM; log:" >&2
    cat "$WORK/xbard.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$WORK/xbard.log"
echo "smoke: clean drain, exit 0"
