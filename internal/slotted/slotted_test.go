package slotted

import (
	"math"
	"testing"
)

func TestThroughputClosedForm(t *testing.T) {
	// 1x1 at p=1: exactly one packet, always accepted.
	if got := Throughput(1, 1, 1); got != 1 {
		t.Errorf("Throughput(1,1,1) = %v", got)
	}
	// Zero load: zero throughput.
	if got := Throughput(8, 8, 0); got != 0 {
		t.Errorf("Throughput at p=0 = %v", got)
	}
	// Saturated large switch approaches 1 - 1/e ~ 0.632.
	if got := Throughput(1024, 1024, 1); math.Abs(got-(1-1/math.E)) > 1e-3 {
		t.Errorf("saturated throughput %v, want ~%v", got, 1-1/math.E)
	}
	// Monotone in p.
	prev := -1.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		s := Throughput(16, 16, p)
		if s <= prev {
			t.Errorf("throughput not increasing at p=%v", p)
		}
		prev = s
	}
}

func TestAcceptanceProbability(t *testing.T) {
	if got := AcceptanceProbability(8, 8, 0); got != 1 {
		t.Errorf("acceptance at p=0 = %v, want 1", got)
	}
	// Acceptance falls with load.
	if !(AcceptanceProbability(8, 8, 0.9) < AcceptanceProbability(8, 8, 0.1)) {
		t.Error("acceptance should fall with load")
	}
	// More outputs than inputs raises acceptance.
	if !(AcceptanceProbability(8, 32, 0.9) > AcceptanceProbability(8, 8, 0.9)) {
		t.Error("wider switch should accept more")
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	cases := []struct {
		n, m int
		p    float64
	}{
		{8, 8, 0.5},
		{16, 16, 0.9},
		{8, 16, 0.7},
		{16, 4, 0.3},
	}
	for _, c := range cases {
		res, err := Simulate(c.n, c.m, c.p, 40000, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := Throughput(c.n, c.m, c.p)
		if math.Abs(res.PerOutput.Mean-want) > 2*res.PerOutput.HalfWidth+1e-4 {
			t.Errorf("%dx%d p=%v: simulated %v, analytic %v", c.n, c.m, c.p, res.PerOutput, want)
		}
		wantAcc := AcceptanceProbability(c.n, c.m, c.p)
		if math.Abs(res.Acceptance.Mean-wantAcc) > 2*res.Acceptance.HalfWidth+1e-3 {
			t.Errorf("%dx%d p=%v: acceptance %v, analytic %v", c.n, c.m, c.p, res.Acceptance, wantAcc)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(0, 4, 0.5, 1000, 1); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := Simulate(4, 4, 1.5, 1000, 1); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := Simulate(4, 4, 0.5, 5, 1); err == nil {
		t.Error("too few slots accepted")
	}
}

func TestThroughputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid size did not panic")
		}
	}()
	Throughput(0, 4, 0.5)
}
