package slotted

import (
	"math"
	"testing"
)

// throughput is a test helper that fails on validation errors.
func throughput(t *testing.T, n, m int, p float64) float64 {
	t.Helper()
	s, err := Throughput(n, m, p)
	if err != nil {
		t.Fatalf("Throughput(%d, %d, %v): %v", n, m, p, err)
	}
	return s
}

func acceptance(t *testing.T, n, m int, p float64) float64 {
	t.Helper()
	a, err := AcceptanceProbability(n, m, p)
	if err != nil {
		t.Fatalf("AcceptanceProbability(%d, %d, %v): %v", n, m, p, err)
	}
	return a
}

func TestThroughputClosedForm(t *testing.T) {
	// 1x1 at p=1: exactly one packet, always accepted.
	if got := throughput(t, 1, 1, 1); got != 1 {
		t.Errorf("Throughput(1,1,1) = %v", got)
	}
	// Zero load: zero throughput.
	if got := throughput(t, 8, 8, 0); got != 0 {
		t.Errorf("Throughput at p=0 = %v", got)
	}
	// Saturated large switch approaches 1 - 1/e ~ 0.632.
	if got := throughput(t, 1024, 1024, 1); math.Abs(got-(1-1/math.E)) > 1e-3 {
		t.Errorf("saturated throughput %v, want ~%v", got, 1-1/math.E)
	}
	// Monotone in p.
	prev := -1.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		s := throughput(t, 16, 16, p)
		if s <= prev {
			t.Errorf("throughput not increasing at p=%v", p)
		}
		prev = s
	}
}

func TestAcceptanceProbability(t *testing.T) {
	if got := acceptance(t, 8, 8, 0); got != 1 {
		t.Errorf("acceptance at p=0 = %v, want 1", got)
	}
	// A load below the zero tolerance behaves like zero rather than
	// falling into the cancellation-prone closed form.
	if got := acceptance(t, 8, 8, 1e-300); got != 1 {
		t.Errorf("acceptance at p=1e-300 = %v, want 1", got)
	}
	// Acceptance falls with load.
	if !(acceptance(t, 8, 8, 0.9) < acceptance(t, 8, 8, 0.1)) {
		t.Error("acceptance should fall with load")
	}
	// More outputs than inputs raises acceptance.
	if !(acceptance(t, 8, 32, 0.9) > acceptance(t, 8, 8, 0.9)) {
		t.Error("wider switch should accept more")
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	cases := []struct {
		n, m int
		p    float64
	}{
		{8, 8, 0.5},
		{16, 16, 0.9},
		{8, 16, 0.7},
		{16, 4, 0.3},
	}
	for _, c := range cases {
		res, err := Simulate(c.n, c.m, c.p, 40000, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := throughput(t, c.n, c.m, c.p)
		if math.Abs(res.PerOutput.Mean-want) > 2*res.PerOutput.HalfWidth+1e-4 {
			t.Errorf("%dx%d p=%v: simulated %v, analytic %v", c.n, c.m, c.p, res.PerOutput, want)
		}
		wantAcc := acceptance(t, c.n, c.m, c.p)
		if math.Abs(res.Acceptance.Mean-wantAcc) > 2*res.Acceptance.HalfWidth+1e-3 {
			t.Errorf("%dx%d p=%v: acceptance %v, analytic %v", c.n, c.m, c.p, res.Acceptance, wantAcc)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(0, 4, 0.5, 1000, 1); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := Simulate(4, 4, 1.5, 1000, 1); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := Simulate(4, 4, 0.5, 5, 1); err == nil {
		t.Error("too few slots accepted")
	}
}

func TestThroughputValidation(t *testing.T) {
	if _, err := Throughput(0, 4, 0.5); err == nil {
		t.Error("invalid size accepted")
	}
	if _, err := Throughput(4, 4, -0.1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := AcceptanceProbability(0, 4, 0.5); err == nil {
		t.Error("AcceptanceProbability accepted invalid size")
	}
}
