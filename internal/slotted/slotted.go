// Package slotted implements the synchronous (slotted) crossbar the
// paper contrasts its asynchronous model against (Section 1 and
// Patel [26]). In the synchronous model, time is divided into slots;
// at each slot boundary every input independently holds a packet with
// probability p, destined to a uniformly random output; an output
// accepts exactly one of the packets that request it and the rest are
// dropped. This is packet-mode operation — there is no holding time —
// so its natural figure of merit is per-slot throughput rather than
// call blocking, which is exactly why the paper's circuit-switched
// asynchronous model needs its own analysis.
package slotted

import (
	"fmt"
	"math"

	"xbar/internal/floats"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Throughput returns Patel's closed-form per-output acceptance rate of
// an n x m synchronous crossbar with per-input load p: the probability
// that a given output is requested by at least one input in a slot,
//
//	S_out = 1 - (1 - p/m)^n .
//
// The normalized per-input throughput is (m/n) S_out and the
// acceptance probability of an offered packet is S_out * m/(n p).
// The switch dimensions must be positive and p must lie in [0, 1];
// both come straight from user scenario parameters, so violations are
// reported as errors rather than panics.
func Throughput(n, m int, p float64) (float64, error) {
	if n < 1 || m < 1 {
		return 0, fmt.Errorf("slotted: Throughput(%d, %d): dimensions must be positive", n, m)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("slotted: load %v outside [0,1]", p)
	}
	return 1 - math.Pow(1-p/float64(m), float64(n)), nil
}

// AcceptanceProbability returns the probability that an offered packet
// wins its output in a slot. A load within rounding noise of zero
// offers no packets, so (in the limit) every offered packet is
// accepted; treating tiny p as zero also avoids the catastrophic
// cancellation of 1 - (1-p/m)^n when p/m underflows the float64
// mantissa.
func AcceptanceProbability(n, m int, p float64) (float64, error) {
	if floats.Zero(p) {
		return 1, nil
	}
	t, err := Throughput(n, m, p)
	if err != nil {
		return 0, err
	}
	return t * float64(m) / (float64(n) * p), nil
}

// Result summarizes a slotted simulation.
type Result struct {
	// PerOutput is the measured per-output throughput with CI,
	// comparable to Throughput.
	PerOutput stats.CI
	// Acceptance is the measured per-packet acceptance probability.
	Acceptance stats.CI
	// Offered counts offered packets.
	Offered int64
}

// Simulate runs a Monte-Carlo slotted crossbar for the given number of
// slots, batched for confidence intervals.
func Simulate(n, m int, p float64, slots int, seed uint64) (*Result, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("slotted: %dx%d crossbar", n, m)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("slotted: load %v outside [0,1]", p)
	}
	const batches = 20
	if slots < batches {
		return nil, fmt.Errorf("slotted: need at least %d slots, got %d", batches, slots)
	}
	stream := rng.NewStream(seed)
	perBatch := slots / batches
	var outB, accB []float64
	requested := make([]int, m)
	var offeredTotal int64
	for b := 0; b < batches; b++ {
		var accepted, offered int64
		for s := 0; s < perBatch; s++ {
			for j := range requested {
				requested[j] = 0
			}
			for i := 0; i < n; i++ {
				if stream.Float64() < p {
					offered++
					requested[stream.Intn(m)]++
				}
			}
			for _, c := range requested {
				if c > 0 {
					accepted++
				}
			}
		}
		outB = append(outB, float64(accepted)/float64(perBatch)/float64(m))
		if offered > 0 {
			accB = append(accB, float64(accepted)/float64(offered))
		}
		offeredTotal += offered
	}
	res := &Result{
		PerOutput: stats.BatchMeans(outB, 0.95),
		Offered:   offeredTotal,
	}
	if len(accB) >= 2 {
		res.Acceptance = stats.BatchMeans(accB, 0.95)
	} else {
		res.Acceptance = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
	}
	return res, nil
}
