// This file implements the farm-vs-analytic validation harness: run a
// replication farm and score every simulated measure against the
// product-form solver's exact answer as a z-statistic. It is the
// standing safety net the CI sim-validate job runs — the check that
// the fast engine still simulates the model the paper solves.

package sim

import (
	"math"

	"xbar/internal/core"
)

// ValidationMeasure is one simulated-vs-analytic comparison.
type ValidationMeasure struct {
	// Class indexes the switch class, or -1 for switch-level measures.
	Class int
	// Name identifies the measure ("concurrency", "time non-blocking",
	// "call blocking", "mean occupancy").
	Name string
	// Sim and SE are the farm's pooled estimate and its standard
	// error; Analytic is the exact product-form value.
	Sim, SE, Analytic float64
	// Z is the studentized discrepancy (Sim - Analytic) / SE.
	Z float64
}

// Validation is the outcome of one farm-vs-analytic sweep.
type Validation struct {
	// Farm is the pooled simulation result the measures were read from.
	Farm *FarmResult
	// Analytic is the product-form solution they were scored against.
	Analytic *core.Result
	// Measures lists every comparison.
	Measures []ValidationMeasure
	// MaxAbsZ is the largest |Z| over Measures — the single number a
	// gate thresholds (3 would flag a 3-sigma disagreement).
	MaxAbsZ float64
}

// Validate runs the replication farm for fc and scores it against
// core.Solve on the same switch. Per class it compares the
// Rao-Blackwellized time congestion against B_r(N) and the mean
// concurrency against E_r(N); for Poisson classes it additionally
// compares call congestion (PASTA makes it equal time congestion);
// switch-wide it compares mean occupancy against sum_r a_r E_r(N).
//
// An estimator with a degenerate (zero or non-finite) standard error
// scores Z = 0 when it agrees exactly with the analytic value and
// +Inf otherwise, so a silent all-zero simulation cannot pass.
func Validate(fc FarmConfig) (*Validation, error) {
	analytic, err := core.Solve(fc.Switch)
	if err != nil {
		return nil, err
	}
	farm, err := Farm(fc)
	if err != nil {
		return nil, err
	}
	v := &Validation{Farm: farm, Analytic: analytic}
	add := func(class int, name string, sim, se, want float64) {
		z := zScore(sim, se, want)
		v.Measures = append(v.Measures, ValidationMeasure{
			Class: class, Name: name, Sim: sim, SE: se, Analytic: want, Z: z,
		})
		if az := math.Abs(z); az > v.MaxAbsZ {
			v.MaxAbsZ = az
		}
	}
	sumAE := 0.0
	for r, c := range fc.Switch.Classes {
		cr := farm.Classes[r]
		sumAE += float64(c.A) * analytic.Concurrency[r]
		if c.A > fc.Switch.MinN() {
			// Zero candidate routes: the class never offers traffic
			// and every estimator is identically zero, matching the
			// model's E_r = 0. Nothing to studentize.
			continue
		}
		add(r, "time non-blocking", cr.TimeNonBlocking.Mean, cr.TimeNonBlocking.SE, analytic.NonBlocking[r])
		add(r, "concurrency", cr.Concurrency.Mean, cr.Concurrency.SE, analytic.Concurrency[r])
		if c.IsPoisson() {
			add(r, "call blocking", cr.CallBlocking.Mean, cr.CallBlocking.SE, analytic.Blocking[r])
		}
	}
	add(-1, "mean occupancy", farm.MeanOccupancy.Mean, farm.MeanOccupancy.SE, sumAE)
	return v, nil
}

// zScore studentizes sim against want, handling degenerate standard
// errors: exact agreement scores 0, disagreement without a usable
// error estimate scores +Inf (it can never pass a gate).
func zScore(sim, se, want float64) float64 {
	if se > 0 && !math.IsInf(se, 1) && !math.IsNaN(sim) {
		return (sim - want) / se
	}
	if sim == want { //lint:allow floatcmp degenerate-SE escape hatch: exact agreement is the only pass
		return 0
	}
	return math.Inf(1)
}
