package sim

import (
	"math"
	"testing"

	"xbar/internal/core"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// covers asserts that a confidence interval is statistically consistent
// with a target value, allowing twice the half-width: batch-means
// intervals are mildly optimistic for strongly autocorrelated
// processes, and strict containment would make the suite flaky at
// roughly the nominal miss rate per assertion.
func covers(t *testing.T, what string, ci stats.CI, want float64) {
	t.Helper()
	if math.Abs(ci.Mean-want) > 2*ci.HalfWidth {
		t.Errorf("%s: estimate %v is inconsistent with %v", what, ci, want)
	}
}

// runFor is a test helper with sane defaults.
func runFor(t *testing.T, sw core.Switch, seed uint64, horizon float64, service []rng.ServiceDist) *Result {
	t.Helper()
	res, err := Run(Config{
		Switch:  sw,
		Seed:    seed,
		Warmup:  horizon / 10,
		Horizon: horizon,
		Service: service,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPoissonMatchesAnalytic: with Poisson arrivals the simulator's
// time congestion, call congestion and concurrency must all agree with
// the analytical model (PASTA makes the two congestions coincide).
func TestPoissonMatchesAnalytic(t *testing.T) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{Name: "x", A: 1, Alpha: 0.05, Mu: 1},
		{Name: "y", A: 2, Alpha: 0.01, Mu: 2},
	}}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	res := runFor(t, sw, 1, 30000, nil)
	for r := range sw.Classes {
		c := res.Classes[r]
		covers(t, "time non-blocking", c.TimeNonBlocking, want.NonBlocking[r])
		covers(t, "concurrency", c.Concurrency, want.Concurrency[r])
		// PASTA: call congestion equals time congestion.
		covers(t, "call blocking", c.CallBlocking, want.Blocking[r])
		if c.Offered == 0 {
			t.Errorf("class %d: no offered traffic", r)
		}
	}
	if res.Utilization <= 0 || res.Utilization >= 1 {
		t.Errorf("utilization %v out of (0,1)", res.Utilization)
	}
}

// TestFixedRouteEstimatorAgrees: the raw fixed-route idle indicator and
// the Rao-Blackwellized estimator target the same quantity.
func TestFixedRouteEstimatorAgrees(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{
		{A: 1, Alpha: 0.15, Mu: 1},
	}}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	res := runFor(t, sw, 2, 30000, nil)
	c := res.Classes[0]
	covers(t, "fixed-route idle", c.FixedRouteIdle, want.NonBlocking[0])
	// The RB estimator should be tighter than the raw indicator.
	if c.TimeNonBlocking.HalfWidth > c.FixedRouteIdle.HalfWidth {
		t.Errorf("RB estimator wider (%v) than raw (%v)",
			c.TimeNonBlocking.HalfWidth, c.FixedRouteIdle.HalfWidth)
	}
}

// TestBurstyMatchesAnalyticTimeCongestion: for Pascal traffic the
// simulator's time congestion matches B_r(N) while call congestion is
// strictly worse — arriving bursts see a busier switch than a random
// observer (no PASTA). The exact arrival-weighted value is also
// checked: sum_k pi_a(k) [1 - ((N-k)/N)^2] with pi_a ~ lambda(k) pi(k).
func TestBurstyMatchesAnalyticTimeCongestion(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{
		{A: 1, Alpha: 0.04, Beta: 0.5, Mu: 1},
	}}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	res := runFor(t, sw, 3, 120000, nil)
	c := res.Classes[0]
	covers(t, "time non-blocking", c.TimeNonBlocking, want.NonBlocking[0])
	covers(t, "concurrency", c.Concurrency, want.Concurrency[0])
	timeBlocking := 1 - c.TimeNonBlocking.Mean
	if c.CallBlocking.Mean <= timeBlocking {
		t.Errorf("peaky traffic: call blocking %v should exceed time blocking %v",
			c.CallBlocking.Mean, timeBlocking)
	}
	// Exact call congestion via the arrival-weighted distribution.
	wantCall := analyticCallBlocking(sw)
	covers(t, "call blocking", c.CallBlocking, wantCall)
}

// analyticCallBlocking computes the exact call congestion for a
// single-class a=1 switch: the lambda(k)-weighted average of the
// blocking probability seen at arrival instants.
func analyticCallBlocking(sw core.Switch) float64 {
	cl := sw.Classes[0]
	n := float64(sw.N1)
	// Unnormalized product form over k.
	maxK := sw.MinN()
	w := make([]float64, maxK+1)
	w[0] = 1
	for k := 1; k <= maxK; k++ {
		w[k] = w[k-1] * cl.Rate(k-1) / (float64(k) * cl.Mu) *
			float64(sw.N1-k+1) * float64(sw.N2-k+1)
	}
	num, den := 0.0, 0.0
	for k := 0; k <= maxK; k++ {
		free := (n - float64(k)) / n
		pBlock := 1 - free*free
		num += w[k] * cl.Rate(k) * pBlock
		den += w[k] * cl.Rate(k)
	}
	return num / den
}

// TestSmoothTrafficCallBlockingBelowTime: smooth (Bernoulli) sources
// see the opposite bias — a source holding connections arrives less
// often, so arrivals see a less busy switch.
func TestSmoothTrafficCallBlockingBelowTime(t *testing.T) {
	// Population 5 sources, strong smoothing.
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{
		{A: 1, Alpha: 1.0, Beta: -0.2, Mu: 1},
	}}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	res := runFor(t, sw, 4, 60000, nil)
	c := res.Classes[0]
	covers(t, "time non-blocking", c.TimeNonBlocking, want.NonBlocking[0])
	timeBlocking := 1 - c.TimeNonBlocking.Mean
	if c.CallBlocking.Mean >= timeBlocking {
		t.Errorf("smooth traffic: call blocking %v should be below time blocking %v",
			c.CallBlocking.Mean, timeBlocking)
	}
}

// TestInsensitivity: the product form depends on holding times only
// through the mean [7]; deterministic, Erlang, hyperexponential and
// Pareto service with the same mean must reproduce the same measures.
func TestInsensitivity(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{
		{A: 1, Alpha: 0.12, Beta: 0.1, Mu: 2},
	}}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	hyper, err := rng.BalancedHyperExp2(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	pareto, err := rng.ParetoWithMean(0.5, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	dists := []rng.ServiceDist{
		rng.Deterministic{M: 0.5},
		rng.Erlang{K: 4, M: 0.5},
		hyper,
		pareto,
	}
	for i, d := range dists {
		res := runFor(t, sw, 100+uint64(i), 60000, []rng.ServiceDist{d})
		c := res.Classes[0]
		covers(t, d.Name()+" time non-blocking", c.TimeNonBlocking, want.NonBlocking[0])
		covers(t, d.Name()+" concurrency", c.Concurrency, want.Concurrency[0])
	}
}

// TestServiceMeanMismatchRejected: a service distribution whose mean
// contradicts 1/mu is a config bug, not a valid experiment.
func TestServiceMeanMismatchRejected(t *testing.T) {
	sw := core.Switch{N1: 2, N2: 2, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 2}}}
	_, err := Run(Config{
		Switch: sw, Horizon: 10,
		Service: []rng.ServiceDist{rng.Exponential{M: 3}},
	})
	if err == nil {
		t.Error("mismatched service mean accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	sw := core.Switch{N1: 2, N2: 2, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	if _, err := Run(Config{Switch: sw, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(Config{Switch: sw, Horizon: 10, Warmup: -1}); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := Run(Config{Switch: sw, Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch accepted")
	}
	if _, err := Run(Config{Switch: core.Switch{N1: 0, N2: 1}, Horizon: 10}); err == nil {
		t.Error("invalid switch accepted")
	}
	if _, err := Run(Config{Switch: sw, Horizon: 10,
		Service: []rng.ServiceDist{rng.Exponential{M: 1}, rng.Exponential{M: 1}}}); err == nil {
		t.Error("mismatched service slice length accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 1, Alpha: 0.2, Mu: 1}}}
	a := runFor(t, sw, 7, 2000, nil)
	b := runFor(t, sw, 7, 2000, nil)
	if a.Events != b.Events {
		t.Fatalf("same seed, different event counts: %d vs %d", a.Events, b.Events)
	}
	if a.Classes[0].Offered != b.Classes[0].Offered ||
		a.Classes[0].Blocked != b.Classes[0].Blocked ||
		a.Classes[0].Concurrency.Mean != b.Classes[0].Concurrency.Mean {
		t.Error("same seed produced different statistics")
	}
	c := runFor(t, sw, 8, 2000, nil)
	if a.Classes[0].Offered == c.Classes[0].Offered && a.Classes[0].Concurrency.Mean == c.Classes[0].Concurrency.Mean {
		t.Error("different seeds produced identical statistics")
	}
}

// TestMaxEventsGuard: the runaway protection fires.
func TestMaxEventsGuard(t *testing.T) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{{A: 1, Alpha: 10, Mu: 1}}}
	_, err := Run(Config{Switch: sw, Horizon: 1e9, MaxEvents: 1000})
	if err == nil {
		t.Error("event cap not enforced")
	}
}

// TestClassWiderThanFabric: a class that cannot fit has zero candidate
// routes, so its arrival intensity is zero and it never offers traffic
// — consistent with the model's zero acceptance intensity.
func TestClassWiderThanFabric(t *testing.T) {
	sw := core.Switch{N1: 2, N2: 2, Classes: []core.Class{
		{A: 1, Alpha: 0.1, Mu: 1},
		{A: 3, Alpha: 0.1, Mu: 1},
	}}
	res := runFor(t, sw, 9, 5000, nil)
	wide := res.Classes[1]
	if wide.Offered != 0 {
		t.Errorf("wide class offered %d requests, want 0 (zero route count)", wide.Offered)
	}
	if got := wide.Concurrency.Mean; got != 0 {
		t.Errorf("wide class concurrency %v, want 0", got)
	}
}

// TestMultiRateContention reproduces the Figure 4 mechanism in the
// fabric: at equal per-connection load, a=2 requests block more than
// a=1 requests.
func TestMultiRateContention(t *testing.T) {
	n := 6
	swNarrow := core.Switch{N1: n, N2: n, Classes: []core.Class{{A: 1, Alpha: 0.03, Mu: 1}}}
	swWide := core.Switch{N1: n, N2: n, Classes: []core.Class{{A: 2, Alpha: 0.03, Mu: 1}}}
	resNarrow := runFor(t, swNarrow, 10, 30000, nil)
	resWide := runFor(t, swWide, 11, 30000, nil)
	bNarrow := 1 - resNarrow.Classes[0].TimeNonBlocking.Mean
	bWide := 1 - resWide.Classes[0].TimeNonBlocking.Mean
	if bWide <= bNarrow {
		t.Errorf("a=2 blocking %v should exceed a=1 blocking %v", bWide, bNarrow)
	}
}

func TestOccupancyConservation(t *testing.T) {
	// Mean occupancy equals sum a_r E_r.
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{A: 1, Alpha: 0.1, Mu: 1},
		{A: 2, Alpha: 0.02, Mu: 1},
	}}
	res := runFor(t, sw, 12, 30000, nil)
	want := res.Classes[0].Concurrency.Mean + 2*res.Classes[1].Concurrency.Mean
	if math.Abs(res.MeanOccupancy-want) > 1e-9 {
		t.Errorf("occupancy %v != sum a_r E_r %v", res.MeanOccupancy, want)
	}
}

// TestOccupancyDistributionMatchesConvolution: the simulator's
// time-fraction occupancy histogram agrees bin-by-bin with the
// convolution evaluator's analytic distribution.
func TestOccupancyDistributionMatchesConvolution(t *testing.T) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{A: 1, Alpha: 0.08, Mu: 1},
		{A: 2, Alpha: 0.02, Beta: 0.01, Mu: 1},
	}}
	want, err := core.SolveConvolution(sw)
	if err != nil {
		t.Fatal(err)
	}
	res := runFor(t, sw, 21, 120000, nil)
	if len(res.Occupancy) != len(want.Occupancy) {
		t.Fatalf("histogram has %d bins, want %d", len(res.Occupancy), len(want.Occupancy))
	}
	sum := 0.0
	for s, p := range res.Occupancy {
		sum += p
		if math.Abs(p-want.Occupancy[s]) > 0.01+0.05*want.Occupancy[s] {
			t.Errorf("occupancy[%d] = %v, analytic %v", s, p, want.Occupancy[s])
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sums to %v", sum)
	}
}
