// This file holds runFast, the fused event loop behind the engine's
// headline throughput. It is a transcription of runGeneric +
// arrive/depart + the flush helpers into one function whose entire
// mutable state lives in locals, so the compiler can keep the hot
// variables (clock, batch cursor, schedule argmin, occupancy) in
// registers instead of reloading state fields around every call.
// Correctness contract: for the same Config and stream, runFast and
// runGeneric must produce bit-identical trajectories — same draws in
// the same order, same statistics. TestRunFastMatchesGeneric pins
// this; any change here must be mirrored in the generic path (or vice
// versa).

package sim

import (
	"fmt"
	"math"
	"math/bits"

	"xbar/internal/rng"
)

// runFast draws exponentials by transcribing rng.(*Stream).ExpUnit at
// each call site: the ziggurat fast path inline (so the ~98.9% common
// case costs one Uint64 and two array lookups with no call — a call
// would spill the loop's register-resident locals) with the slow path
// delegated to the shared rng.ExpUnitTail on a cold branch. Draws are
// bit-identical to ExpUnit; a helper can't express this because the
// tail call alone puts it over the compiler's inlining budget.

// runFast is the fused hot loop. Preconditions (checked by run):
// flat departure schedule (useFlat) and no admission policy.
func (s *state) runFast(maxEvents int64) error {
	var (
		stream   = s.rng
		classes  = s.classes
		nextArr  = s.nextArr
		k        = s.k
		kSince   = s.kSince
		kTW      = s.kTW
		offered  = s.offered
		blocked  = s.blocked
		occTime  = s.occTime
		fixTime  = s.fixTime
		ports    = s.ports
		free     = s.free
		depAt    = s.depAt
		depC     = s.depC
		pickIn   = s.pickIn
		pickOut  = s.pickOut
		pairDraw = s.pairDraw
		mask1    = s.mask1
		mask2    = s.mask2
		n1       = s.sw.N1
		n2       = s.sw.N2
		stride   = s.stride
		maxFix   = s.maxFix
		batches  = s.batches
		batchLen = s.batchLen
		start    = s.start
		end      = s.end
		now      = s.now
		occ      = s.occ
		occSince = s.occSince
		fixSince = s.fixSince
		fixState = s.fixState
		curB     = s.curB
		curB0    = s.curB0
		curB1    = s.curB1
		depMin   = s.depMin
		events   = s.events
	)
	var runErr error

	// Port busy state as 64-bit masks (run requires N1, N2 <= 64), so
	// occupancy tests, sets and clears are register operations with no
	// memory traffic, and the fixed-route prefix recompute is a single
	// trailing-zeros count instead of a scan. Built from the bool
	// arrays at entry and synced back at exit so the generic path and
	// extract always see consistent state.
	var busyInM, busyOutM uint64
	for i, b := range s.busyIn {
		if b {
			busyInM |= 1 << uint(i)
		}
	}
	for i, b := range s.busyOut {
		if b {
			busyOutM |= 1 << uint(i)
		}
	}
	lowMask := uint64(1)<<uint(maxFix) - 1

	// Cached top-2 of the class arrival clocks. Most events resample
	// only the currently-minimal clock (the firing class), so the next
	// minimum is decided by one compare against the second-smallest
	// time; a full rescan runs only when the cache is invalid
	// (naR0 < 0). The rescan's strict < comparisons reproduce the
	// lowest-index-wins tie-break of a left-to-right argmin scan, and
	// the fast path falls back to a rescan on exact ties, so the event
	// order matches runGeneric's plain scan bit for bit.
	naT0 := math.Inf(1) // smallest arrival time
	naT1 := math.Inf(1) // second-smallest arrival time
	naR0 := -1          // class holding naT0; < 0 means rescan

loop:
	for {
		if naR0 < 0 {
			naT0, naT1 = math.Inf(1), math.Inf(1)
			for r, ta := range nextArr {
				if ta < naT0 {
					naT1 = naT0
					naT0, naR0 = ta, r
				} else if ta < naT1 {
					naT1 = ta
				}
			}
			if naR0 < 0 && len(depAt) == 0 {
				break loop
			}
		}
		// Next event: earliest departure (cached argmin of the flat
		// schedule, rescanned only after a pop) or the cached minimal
		// arrival. The departure scan updates its minimum with the min
		// builtin and a compare-guarded index store — branchless
		// (MINSD + CMOV), so the data-random comparisons cost latency,
		// not mispredicts. Ties between a departure and an arrival go
		// to the departure, as in runGeneric.
		var t float64
		kind := -1 // -1 none, -2 departure, r >= 0 arrival of class r
		if depMin >= 0 {
			t = depAt[depMin]
			kind = -2
		} else if len(depAt) > 0 {
			m := 0
			best := depAt[0]
			for i, at := range depAt {
				if at < best {
					m = i
				}
				best = min(best, at)
			}
			depMin = m
			t = best
			kind = -2
		} else {
			t = math.Inf(1)
		}
		if naT0 < t {
			kind = naR0
			t = naT0
		}
		if kind == -1 || t >= end {
			break loop
		}
		now = t
		if t >= curB1 {
			// Batch crossings are rare (at most batches per run):
			// sync the cursor through the shared helper.
			s.curB, s.curB0, s.curB1 = curB, curB0, curB1
			s.advanceBatch(t)
			curB, curB0, curB1 = s.curB, s.curB0, s.curB1
		}
		events++
		if events > maxEvents {
			runErr = fmt.Errorf("sim: exceeded %d events before horizon; load too high for the configured horizon", maxEvents)
			break loop
		}

		if kind == -2 {
			// ---- departure ----
			m := depMin
			d := depC[m]
			n := len(depAt) - 1
			depAt[m] = depAt[n]
			depC[m] = depC[n]
			depAt = depAt[:n]
			depC = depC[:n]
			depMin = -1
			r := int(d.class)
			cs := &classes[r]
			a := cs.a
			base := int(d.slot) * stride
			low := false
			for i := 0; i < a; i++ {
				in := ports[base+i]
				out := ports[base+a+i]
				busyInM &^= 1 << uint(in)
				busyOutM &^= 1 << uint(out)
				if int(in) < maxFix || int(out) < maxFix {
					low = true
				}
			}
			free = append(free, d.slot)
			// flushOcc
			if occSince >= curB0 {
				occTime[occ*batches+curB] += now - occSince
			} else {
				accumulate(occTime[occ*batches:(occ+1)*batches], start, batchLen, batches, occSince, now, 1)
			}
			occSince = now
			occ -= a
			// flushK(r)
			if kSince[r] >= curB0 {
				kTW[r*batches+curB] += float64(k[r]) * (now - kSince[r])
			} else {
				accumulate(kTW[r*batches:(r+1)*batches], start, batchLen, batches, kSince[r], now, float64(k[r]))
			}
			kSince[r] = now
			k[r]--
			if low {
				// flushFix + recomputeFix
				if fixSince >= curB0 {
					fixTime[fixState*batches+curB] += now - fixSince
				} else {
					accumulate(fixTime[fixState*batches:(fixState+1)*batches], start, batchLen, batches, fixSince, now, 1)
				}
				fixSince = now
				// recomputeFix: lowest busy port below maxFix.
				if m := (busyInM | busyOutM) & lowMask; m != 0 {
					fixState = bits.TrailingZeros64(m)
				} else {
					fixState = maxFix
				}
			}
			if cs.kDep {
				if inv := cs.invRate[k[r]]; inv < 0 {
					nextArr[r] = math.Inf(1)
				} else {
					u := stream.Uint64()
					zi := u & 255
					zj := u >> 11
					e := float64(zj) * rng.ZigWE[zi]
					if zj >= rng.ZigKE[zi] {
						e = stream.ExpUnitTail(zi, e)
					}
					nextArr[r] = now + e*inv
				}
				naR0 = -1 // any clock moved: rebuild the top-2 cache
			}
			continue
		}

		// ---- arrival of class kind ----
		r := kind
		cs := &classes[r]
		a := cs.a
		b := -1
		if now >= start {
			b = curB
			offered[r*batches+b]++
		}
		var in0, out0 int
		ok := true
		if a == 1 {
			// pickOne, inlined.
			if pairDraw {
				u := stream.Uint64()
				in0 = int(u) & mask1
				out0 = int(u>>32) & mask2
			} else {
				in0 = stream.Intn(n1)
				out0 = stream.Intn(n2)
			}
			ok = (busyInM>>uint(in0)|busyOutM>>uint(out0))&1 == 0
		} else {
			sampleDistinct(stream, n1, a, pickIn)
			sampleDistinct(stream, n2, a, pickOut)
			for i := 0; i < a; i++ {
				if (busyInM>>uint(pickIn[i])|busyOutM>>uint(pickOut[i]))&1 != 0 {
					ok = false
					break
				}
			}
		}
		if !ok {
			if b >= 0 {
				blocked[r*batches+b]++
			}
			// Blocked-and-cleared: redraw the class clock past now.
			// r is the cached minimum (it just fired): the new draw
			// keeps r minimal iff it beats the second-smallest time.
			if inv := cs.invRate[k[r]]; inv < 0 {
				nextArr[r] = math.Inf(1)
				naR0 = -1
			} else {
				u := stream.Uint64()
				zi := u & 255
				zj := u >> 11
				e := float64(zj) * rng.ZigWE[zi]
				if zj >= rng.ZigKE[zi] {
					e = stream.ExpUnitTail(zi, e)
				}
				v := now + e*inv
				nextArr[r] = v
				if v < naT1 {
					naT0 = v
				} else {
					naR0 = -1
				}
			}
			continue
		}
		slot := free[len(free)-1]
		free = free[:len(free)-1]
		base := int(slot) * stride
		low := false
		if a == 1 {
			ports[base] = int32(in0)
			ports[base+1] = int32(out0)
			busyInM |= 1 << uint(in0)
			busyOutM |= 1 << uint(out0)
			low = in0 < maxFix || out0 < maxFix
		} else {
			for i := 0; i < a; i++ {
				in := pickIn[i]
				out := pickOut[i]
				ports[base+i] = int32(in)
				ports[base+a+i] = int32(out)
				busyInM |= 1 << uint(in)
				busyOutM |= 1 << uint(out)
				if in < maxFix || out < maxFix {
					low = true
				}
			}
		}
		// flushOcc
		if occSince >= curB0 {
			occTime[occ*batches+curB] += now - occSince
		} else {
			accumulate(occTime[occ*batches:(occ+1)*batches], start, batchLen, batches, occSince, now, 1)
		}
		occSince = now
		occ += a
		// flushK(r)
		if kSince[r] >= curB0 {
			kTW[r*batches+curB] += float64(k[r]) * (now - kSince[r])
		} else {
			accumulate(kTW[r*batches:(r+1)*batches], start, batchLen, batches, kSince[r], now, float64(k[r]))
		}
		kSince[r] = now
		k[r]++
		if low {
			// flushFix + recomputeFix
			if fixSince >= curB0 {
				fixTime[fixState*batches+curB] += now - fixSince
			} else {
				accumulate(fixTime[fixState*batches:(fixState+1)*batches], start, batchLen, batches, fixSince, now, 1)
			}
			fixSince = now
			// recomputeFix: lowest busy port below maxFix.
			if m := (busyInM | busyOutM) & lowMask; m != 0 {
				fixState = bits.TrailingZeros64(m)
			} else {
				fixState = maxFix
			}
		}
		var hold float64
		if cs.expMean > 0 {
			u := stream.Uint64()
			zi := u & 255
			zj := u >> 11
			e := float64(zj) * rng.ZigWE[zi]
			if zj >= rng.ZigKE[zi] {
				e = stream.ExpUnitTail(zi, e)
			}
			hold = e * cs.expMean
		} else {
			hold = cs.service.Sample(stream)
		}
		// flatPush
		at := now + hold
		if m := depMin; m >= 0 && at < depAt[m] {
			depMin = len(depAt)
		}
		depAt = append(depAt, at)
		depC = append(depC, conn{class: int32(r), slot: slot})
		// Resample the firing class's clock at its new count. As on
		// the blocked path, r is the cached minimum.
		if inv := cs.invRate[k[r]]; inv < 0 {
			nextArr[r] = math.Inf(1)
			naR0 = -1
		} else {
			u := stream.Uint64()
			zi := u & 255
			zj := u >> 11
			e := float64(zj) * rng.ZigWE[zi]
			if zj >= rng.ZigKE[zi] {
				e = stream.ExpUnitTail(zi, e)
			}
			v := now + e*inv
			nextArr[r] = v
			if v < naT1 {
				naT0 = v
			} else {
				naR0 = -1
			}
		}
	}

	if runErr == nil {
		// Horizon reached: final flushes, forced through the clipping
		// slow path (the last spans may cross any number of batches).
		now = end
		curB0 = math.Inf(1)
		accumulate(occTime[occ*batches:(occ+1)*batches], start, batchLen, batches, occSince, now, 1)
		occSince = now
		accumulate(fixTime[fixState*batches:(fixState+1)*batches], start, batchLen, batches, fixSince, now, 1)
		fixSince = now
		for r := range classes {
			accumulate(kTW[r*batches:(r+1)*batches], start, batchLen, batches, kSince[r], now, float64(k[r]))
			kSince[r] = now
		}
	}

	for i := range s.busyIn {
		s.busyIn[i] = busyInM&(1<<uint(i)) != 0
	}
	for i := range s.busyOut {
		s.busyOut[i] = busyOutM&(1<<uint(i)) != 0
	}
	s.now, s.occ, s.occSince, s.fixSince, s.fixState = now, occ, occSince, fixSince, fixState
	s.curB, s.curB0, s.curB1 = curB, curB0, curB1
	s.depMin, s.depAt, s.depC = depMin, depAt, depC
	s.free = free
	s.events = events
	return runErr
}
