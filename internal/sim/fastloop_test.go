package sim

import (
	"reflect"
	"testing"

	"xbar/internal/core"
	"xbar/internal/rng"
)

// fastLoopConfigs spans the regimes runFast specializes: single-slot
// and multi-slot classes, Poisson and bursty arrivals, power-of-two
// and non-power-of-two port counts, one batch and many.
func fastLoopConfigs() []Config {
	return []Config{
		{Switch: benchSwitch(), Seed: 7, Warmup: 50, Horizon: 800},
		{Switch: benchSwitch(), Seed: 11, Warmup: 0, Horizon: 500, Batches: 2},
		{Switch: core.Switch{N1: 5, N2: 9, Classes: []core.Class{
			{Name: "p", A: 1, Alpha: 0.09, Mu: 1},
			{Name: "b", A: 2, Alpha: 0.004, Beta: 0.006, Mu: 0.5},
		}}, Seed: 3, Warmup: 20, Horizon: 600, Batches: 7},
		{Switch: core.Switch{N1: 4, N2: 4, Classes: []core.Class{
			{Name: "hot", A: 1, Alpha: 1.5, Mu: 1},
		}}, Seed: 19, Warmup: 10, Horizon: 300},
	}
}

// TestRunFastMatchesGeneric pins the fused loop's correctness
// contract: for the same Config and stream, runFast and runGeneric
// must produce bit-identical trajectories — same draws in the same
// order, same statistics, down to floating-point summation order.
func TestRunFastMatchesGeneric(t *testing.T) {
	for ci, cfg := range fastLoopConfigs() {
		p, err := prepare(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		fast := newState(p, cfg)
		gen := newState(p, cfg)
		if !fast.useFlat {
			t.Fatalf("config %d: expected the flat schedule (runFast precondition)", ci)
		}

		fast.reset(rng.NewStream(cfg.Seed))
		if err := fast.runFast(p.maxEvents); err != nil {
			t.Fatalf("config %d: runFast: %v", ci, err)
		}
		gen.reset(rng.NewStream(cfg.Seed))
		if err := gen.runGeneric(p.maxEvents); err != nil {
			t.Fatalf("config %d: runGeneric: %v", ci, err)
		}

		if fast.events != gen.events {
			t.Fatalf("config %d: runFast processed %d events, runGeneric %d", ci, fast.events, gen.events)
		}
		rf, rg := fast.extract(), gen.extract()
		if !reflect.DeepEqual(rf, rg) {
			t.Errorf("config %d: raw records differ between runFast and runGeneric:\nfast: %+v\ngeneric: %+v", ci, rf, rg)
		}
		// The reusable mid-run state must agree too, or a farm mixing
		// paths across replications would diverge after reset.
		if fast.occ != gen.occ || fast.fixState != gen.fixState {
			t.Errorf("config %d: final state differs: occ %d/%d fix %d/%d",
				ci, fast.occ, gen.occ, fast.fixState, gen.fixState)
		}
		if !reflect.DeepEqual(fast.busyIn, gen.busyIn) || !reflect.DeepEqual(fast.busyOut, gen.busyOut) {
			t.Errorf("config %d: busy port state differs", ci)
		}
		if !reflect.DeepEqual(fast.k, gen.k) {
			t.Errorf("config %d: class counts differ: %v vs %v", ci, fast.k, gen.k)
		}
	}
}

// TestRunFastMatchesGenericOnError pins that both loops fail the
// runaway-event guard identically: same error, same truncated state.
func TestRunFastMatchesGenericOnError(t *testing.T) {
	cfg := Config{Switch: benchSwitch(), Seed: 5, Warmup: 100, Horizon: 5000}
	p, err := prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.maxEvents = 1000
	fast := newState(p, cfg)
	gen := newState(p, cfg)
	fast.reset(rng.NewStream(cfg.Seed))
	errFast := fast.runFast(p.maxEvents)
	gen.reset(rng.NewStream(cfg.Seed))
	errGen := gen.runGeneric(p.maxEvents)
	if errFast == nil || errGen == nil {
		t.Fatalf("expected both loops to hit the event cap; fast=%v generic=%v", errFast, errGen)
	}
	if errFast.Error() != errGen.Error() {
		t.Errorf("error text differs: %q vs %q", errFast, errGen)
	}
	if fast.events != gen.events || fast.now != gen.now {
		t.Errorf("truncated state differs: events %d/%d now %v/%v",
			fast.events, gen.events, fast.now, gen.now)
	}
}

// TestRunDispatchesWidePortsToGeneric pins the dispatcher gate: port
// counts beyond the 64-bit busy masks must take the generic loop (and
// still produce a valid run).
func TestRunDispatchesWidePortsToGeneric(t *testing.T) {
	sw := core.Switch{N1: 80, N2: 16, Classes: []core.Class{
		{Name: "p", A: 1, Alpha: 0.02, Mu: 1},
	}}
	cfg := Config{Switch: sw, Seed: 2, Warmup: 10, Horizon: 200}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("no events simulated on a wide-port fabric")
	}
}
