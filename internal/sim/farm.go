// This file implements the replication farm: R independent
// replications of one Config on W workers, with deterministic
// per-replication RNG substreams and pooled batch-means intervals.
// Results are a pure function of (Config, Reps): bit-identical across
// worker counts, scheduling, and repeated runs.

package sim

import (
	"fmt"
	"math"

	"xbar/internal/parallel"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// FarmConfig parameterizes a replication farm run.
type FarmConfig struct {
	// Config is the per-replication simulation setup. Config.Seed
	// seeds the farm: replication i runs on Substream(i) of a stream
	// built from it, so no two replications share or correlate
	// streams, and replication i's stream does not depend on which
	// worker runs it.
	Config
	// Reps is the number of independent replications (>= 1).
	Reps int
	// Workers caps the worker goroutines; <= 0 selects GOMAXPROCS.
	// The worker count affects wall-clock time only, never results.
	Workers int
}

// FarmResult pools the estimates of all replications. Batch means
// from every replication are pooled into one sample per measure
// (Reps x Batches values), which is what tightens the intervals by
// ~sqrt(Reps) over a single run.
type FarmResult struct {
	// Reps is the number of replications pooled.
	Reps int
	// Classes holds pooled per-class estimates; Offered/Blocked are
	// summed over replications.
	Classes []ClassResult
	// MeanOccupancy is the pooled time-average number of busy inputs,
	// now with a confidence interval.
	MeanOccupancy stats.CI
	// Utilization is MeanOccupancy.Mean over min(N1,N2).
	Utilization float64
	// Occupancy[s] is the pooled time fraction with s busy inputs.
	Occupancy []float64
	// Events is the total processed in all measured phases.
	Events int64
}

// Farm runs fc.Reps independent replications on up to fc.Workers
// workers and pools their batch means. Each worker owns one
// simulator state, reset per replication, so a farm of any size
// performs a constant number of allocations per worker — not per
// replication, and not per event.
func Farm(fc FarmConfig) (*FarmResult, error) {
	if fc.Reps < 1 {
		return nil, fmt.Errorf("sim: farm needs at least 1 replication, got %d", fc.Reps)
	}
	p, err := prepare(fc.Config)
	if err != nil {
		return nil, err
	}
	base := rng.NewStream(fc.Seed)
	workers := parallel.Workers(fc.Workers)
	states := make([]*state, workers)
	raws := make([]*raw, fc.Reps)
	err = parallel.ForEachWorker(fc.Workers, fc.Reps, func(w, i int) error {
		st := states[w]
		if st == nil {
			st = newState(p, fc.Config)
			states[w] = st
		}
		st.reset(base.Substream(uint64(i)))
		if err := st.run(p.maxEvents); err != nil {
			return fmt.Errorf("replication %d: %w", i, err)
		}
		raws[i] = st.extract()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pool(raws, p, fc.Reps), nil
}

// pool merges per-replication records in replication order — the
// deterministic merge that makes farm output independent of worker
// count — and builds pooled intervals.
func pool(raws []*raw, p runParams, reps int) *FarmResult {
	batches := p.batches
	minN := p.sw.MinN()
	nClasses := len(p.sw.Classes)
	res := &FarmResult{Reps: reps}

	occB := make([]float64, 0, reps*batches)
	occHist := make([]float64, minN+1)
	for _, w := range raws {
		res.Events += w.events
		occB = append(occB, w.occB...)
		for s, v := range w.occHist {
			occHist[s] += v
		}
	}
	res.MeanOccupancy = stats.BatchMeans(occB, p.level)
	res.Utilization = res.MeanOccupancy.Mean / float64(minN)
	total := 0.0
	for _, v := range occHist {
		total += v
	}
	if total > 0 {
		res.Occupancy = make([]float64, minN+1)
		for s, v := range occHist {
			res.Occupancy[s] = v / total
		}
	}

	kB := make([]float64, 0, reps*batches)
	rbB := make([]float64, 0, reps*batches)
	fxB := make([]float64, 0, reps*batches)
	var blockB []float64
	for r := 0; r < nClasses; r++ {
		kB, rbB, fxB, blockB = kB[:0], rbB[:0], fxB[:0], blockB[:0]
		var offered, blocked int64
		for _, w := range raws {
			rc := &w.classes[r]
			kB = append(kB, rc.kB...)
			rbB = append(rbB, rc.rbB...)
			fxB = append(fxB, rc.fxB...)
			for b := 0; b < batches; b++ {
				offered += rc.offered[b]
				blocked += rc.blocked[b]
				if rc.offered[b] > 0 {
					blockB = append(blockB, float64(rc.blocked[b])/float64(rc.offered[b]))
				}
			}
		}
		cr := ClassResult{
			Offered:         offered,
			Blocked:         blocked,
			Concurrency:     stats.BatchMeans(kB, p.level),
			TimeNonBlocking: stats.BatchMeans(rbB, p.level),
			FixedRouteIdle:  stats.BatchMeans(fxB, p.level),
		}
		if len(blockB) >= 2 {
			cr.CallBlocking = stats.BatchMeans(blockB, p.level)
		} else {
			cr.CallBlocking = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), SE: math.Inf(1), Level: p.level}
		}
		res.Classes = append(res.Classes, cr)
	}
	return res
}
