package sim

import (
	"fmt"
	"testing"

	"xbar/internal/core"
	"xbar/internal/rng"
)

// benchSwitch is the standing throughput workload: a 16x16 fabric
// offered a Poisson narrowband class, a bursty (Pascal) class, and a
// multi-rate a=2 class, running near 60% port occupancy so arrivals,
// departures and blocking all exercise their paths.
func benchSwitch() core.Switch {
	return core.Switch{N1: 16, N2: 16, Classes: []core.Class{
		{Name: "p1", A: 1, Alpha: 0.0234, Mu: 1},
		{Name: "b1", A: 1, Alpha: 0.002, Beta: 0.002, Mu: 1},
		{Name: "w2", A: 2, Alpha: 2.6e-5, Mu: 1},
	}}
}

// BenchmarkSimEvents is the canonical events-per-second measurement
// of the rebuilt engine (docs/PERFORMANCE.md tracks it across PRs;
// the seed engine measured 5.4M events/s on this exact workload).
// The state is constructed once and reset per iteration, so the
// reported allocs/op is the engine's true steady-state allocation
// count: zero.
func BenchmarkSimEvents(b *testing.B) {
	benchEvents(b, Config{Switch: benchSwitch(), Seed: 42, Warmup: 200, Horizon: 5000})
}

// BenchmarkSimEventsCalendar is the same workload on the calendar
// departure queue.
func BenchmarkSimEventsCalendar(b *testing.B) {
	benchEvents(b, Config{Switch: benchSwitch(), Seed: 42, Warmup: 200, Horizon: 5000,
		CalendarQueue: true})
}

// BenchmarkSimEventsLarge scales the fabric to 128x128 with ~80
// concurrent connections — the regime where the calendar queue's
// O(1) schedule beats the heap's O(log n).
func BenchmarkSimEventsLarge(b *testing.B) {
	sw := core.Switch{N1: 128, N2: 128, Classes: []core.Class{
		{Name: "p1", A: 1, Alpha: 0.0043, Mu: 1},
		{Name: "w2", A: 2, Alpha: 3.1e-7, Mu: 1},
	}}
	for _, cal := range []bool{false, true} {
		name := "heap"
		if cal {
			name = "calendar"
		}
		b.Run(name, func(b *testing.B) {
			benchEvents(b, Config{Switch: sw, Seed: 42, Warmup: 100, Horizon: 500,
				CalendarQueue: cal})
		})
	}
}

func benchEvents(b *testing.B, cfg Config) {
	b.Helper()
	p, err := prepare(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := newState(p, cfg)
	stream := rng.NewStream(cfg.Seed)
	b.ReportAllocs()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reseed(cfg.Seed)
		s.reset(stream)
		if err := s.run(p.maxEvents); err != nil {
			b.Fatal(err)
		}
		events += s.events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkFarm measures replication-farm scaling by worker count on
// the standing workload (8 replications of a short horizon).
func BenchmarkFarm(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Farm(FarmConfig{
					Config:  Config{Switch: benchSwitch(), Seed: 42, Warmup: 100, Horizon: 1000},
					Reps:    8,
					Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
