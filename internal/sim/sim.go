// Package sim is a discrete-event simulator of the asynchronous,
// unbuffered N1 x N2 crossbar the paper models analytically — the
// "compare with simulation" item in the paper's future work, and this
// reproduction's substitute for a physical optical switch fabric.
//
// Unlike the analytical model, the simulator represents the fabric
// explicitly: each input and output port is tracked individually, a
// class-r request draws a_r distinct inputs and a_r distinct outputs
// uniformly at random at its (unslotted, asynchronous) arrival instant,
// is accepted only if every port is idle, and is cleared otherwise.
// Arrivals follow the state-dependent BPP intensity
// lambda_r(k_r) = alpha_r + beta_r k_r per ordered route — implemented
// exactly, by resampling the class's exponential arrival clock whenever
// k_r changes. Holding times come from any rng.ServiceDist, which is
// what makes the insensitivity experiments possible.
//
// Two blocking measures are reported, because they genuinely differ for
// bursty traffic (no PASTA without Poisson arrivals):
//
//   - time congestion: the time-average probability that a randomly
//     chosen candidate route is idle — the quantity the paper's
//     B_r(N) = G(N-a_r I)/G(N) computes. Estimated two ways: by the
//     conditional-expectation (Rao-Blackwellized) estimator
//     P(N1-occ,a) P(N2-occ,a) / (P(N1,a) P(N2,a)), and by the raw
//     idle-indicator of one fixed route.
//   - call congestion: the fraction of offered class-r requests that
//     are blocked, which is what a user of the switch experiences.
package sim

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/core"
	"xbar/internal/eventq"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Config parameterizes one simulation run.
type Config struct {
	// Switch is the model to simulate (per-route class units, exactly
	// as the analytical solvers take it).
	Switch core.Switch
	// Seed makes the run reproducible.
	Seed uint64
	// Warmup is the simulated time discarded before measurement.
	Warmup float64
	// Horizon is the measured simulated time after warmup.
	Horizon float64
	// Batches divides the horizon for batch-means confidence
	// intervals; 0 defaults to 20.
	Batches int
	// Service optionally overrides the holding-time distribution per
	// class; nil entries (or a nil slice) default to exponential with
	// mean 1/mu_r. Means must equal 1/mu_r — Run enforces this so a
	// config cannot silently diverge from the model it claims to
	// simulate.
	Service []rng.ServiceDist
	// Level is the confidence level (default 0.95).
	Level float64
	// MaxEvents caps the event count as a runaway guard; 0 means
	// 50 million.
	MaxEvents int64
	// Admit, when non-nil, is an admission policy evaluated at each
	// arrival before port selection: a rejected request is counted as
	// blocked and cleared. The slice passed is the live class-count
	// vector; policies must not retain or modify it.
	Admit AdmitFunc
}

// AdmitFunc decides whether a class arrival may enter the fabric given
// the current class-count vector (mirrors
// statespace.AdmissionPolicy).
type AdmitFunc func(k []int, class int) bool

// ClassResult aggregates the per-class estimates of one run.
type ClassResult struct {
	// Offered and Blocked count measured class arrivals.
	Offered, Blocked int64
	// CallBlocking is the blocked fraction of offered requests.
	CallBlocking stats.CI
	// TimeNonBlocking is the Rao-Blackwellized estimate of B_r(N).
	TimeNonBlocking stats.CI
	// FixedRouteIdle is the raw idle-time fraction of one fixed
	// candidate route — an unbiased but higher-variance estimate of
	// the same B_r(N).
	FixedRouteIdle stats.CI
	// Concurrency is the time-average number of class connections,
	// estimating E_r(N).
	Concurrency stats.CI
}

// Result is the outcome of a run.
type Result struct {
	Classes []ClassResult
	// Utilization is the time-average busy fraction of min(N1,N2)
	// occupancy capacity.
	Utilization float64
	// MeanOccupancy is the time-average number of busy inputs.
	MeanOccupancy float64
	// Occupancy[s] is the measured time fraction with exactly s busy
	// inputs — directly comparable to the convolution evaluator's
	// analytic occupancy distribution.
	Occupancy []float64
	// Events is the number of processed events in the measured phase.
	Events int64
}

const defaultMaxEvents = 50_000_000

// Run simulates the configured switch and returns estimates with
// confidence intervals.
func Run(cfg Config) (*Result, error) {
	sw := cfg.Switch
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("sim: negative warmup %v", cfg.Warmup)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("sim: need at least 2 batches, got %d", batches)
	}
	level := cfg.Level
	if level == 0 { //lint:allow floatcmp zero value of Config.Level selects the default (Go zero-value idiom)
		level = 0.95
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = defaultMaxEvents
	}
	if cfg.Service != nil && len(cfg.Service) != len(sw.Classes) {
		return nil, fmt.Errorf("sim: %d service distributions for %d classes",
			len(cfg.Service), len(sw.Classes))
	}
	service := make([]rng.ServiceDist, len(sw.Classes))
	for r, c := range sw.Classes {
		if cfg.Service != nil && cfg.Service[r] != nil {
			service[r] = cfg.Service[r]
			if m := service[r].Mean(); math.Abs(m-1/c.Mu) > 1e-9*math.Max(m, 1/c.Mu) {
				return nil, fmt.Errorf("sim: class %d service mean %v != 1/mu = %v", r, m, 1/c.Mu)
			}
		} else {
			service[r] = rng.Exponential{M: 1 / c.Mu}
		}
	}

	s := newState(sw, cfg.Seed, service, cfg.Warmup, cfg.Horizon, batches)
	s.admit = cfg.Admit
	if err := s.run(maxEvents); err != nil {
		return nil, err
	}
	return s.results(level), nil
}

// departure is a scheduled connection teardown.
type departure struct {
	class   int
	inputs  []int
	outputs []int
}

type classSim struct {
	class   core.Class
	routes  float64 // P(N1,a) P(N2,a): ordered candidate routes
	service rng.ServiceDist
	nextArr float64
	// Per-batch accumulators: arrival counters, time-weighted class
	// count (kTW), Rao-Blackwellized route-idle probability (rbTW),
	// and the raw idle indicator of the canonical fixed route —
	// inputs 0..a-1, outputs 0..a-1 (fixTW).
	offered, blocked []int64
	kTW, rbTW, fixTW []batchTW
}

// batchTW is a minimal time-weighted accumulator for one batch.
type batchTW struct{ area float64 }

type state struct {
	sw       core.Switch
	rng      *rng.Stream
	classes  []classSim
	busyIn   []bool
	busyOut  []bool
	occ      int // busy inputs (= busy outputs)
	k        []int
	deps     eventq.Queue[departure]
	now      float64
	start    float64 // measurement start (= warmup)
	end      float64
	batchLen float64
	batches  int
	occTW    []batchTW
	// occHist[s] accumulates measured time with occupancy s.
	occHist []float64
	// scratch buffers for route sampling
	pickIn, pickOut []int
	events          int64
	admit           AdmitFunc
}

func newState(sw core.Switch, seed uint64, service []rng.ServiceDist, warmup, horizon float64, batches int) *state {
	s := &state{
		sw:       sw,
		rng:      rng.NewStream(seed),
		busyIn:   make([]bool, sw.N1),
		busyOut:  make([]bool, sw.N2),
		k:        make([]int, len(sw.Classes)),
		start:    warmup,
		end:      warmup + horizon,
		batchLen: horizon / float64(batches),
		batches:  batches,
		occTW:    make([]batchTW, batches),
		occHist:  make([]float64, sw.MinN()+1),
	}
	maxA := 0
	for r, c := range sw.Classes {
		cs := classSim{
			class:   c,
			routes:  combin.Perm(sw.N1, c.A) * combin.Perm(sw.N2, c.A),
			service: service[r],
			offered: make([]int64, batches),
			blocked: make([]int64, batches),
			kTW:     make([]batchTW, batches),
			rbTW:    make([]batchTW, batches),
			fixTW:   make([]batchTW, batches),
		}
		cs.nextArr = s.sampleArrival(0, &cs, 0)
		s.classes = append(s.classes, cs)
		if c.A > maxA {
			maxA = c.A
		}
	}
	s.pickIn = make([]int, maxA)
	s.pickOut = make([]int, maxA)
	return s
}

// sampleArrival draws the next class arrival time from t given count k.
func (s *state) sampleArrival(t float64, cs *classSim, k int) float64 {
	rate := cs.class.Rate(k) * cs.routes
	if rate <= 0 {
		return math.Inf(1)
	}
	return t + s.rng.Exp(rate)
}

// accumulate adds value*dt over [t0, t1) to the per-batch areas,
// clipping to the measurement window and splitting across batch
// boundaries.
func accumulate(tws []batchTW, start, batchLen float64, batches int, t0, t1, value float64) {
	if value == 0 { //lint:allow floatcmp skips exactly-zero accumulation; tiny areas must still integrate
		return
	}
	end := start + batchLen*float64(batches)
	if t0 < start {
		t0 = start
	}
	if t1 > end {
		t1 = end
	}
	for t0 < t1 {
		b := int((t0 - start) / batchLen)
		if b >= batches {
			return
		}
		bEnd := start + batchLen*float64(b+1)
		seg := t1
		if bEnd < seg {
			seg = bEnd
		}
		tws[b].area += value * (seg - t0)
		t0 = seg
	}
}

// advance integrates all time-weighted statistics from s.now to t.
func (s *state) advance(t float64) {
	if t <= s.now {
		s.now = math.Max(s.now, t)
		return
	}
	accumulate(s.occTW, s.start, s.batchLen, s.batches, s.now, t, float64(s.occ))
	// Occupancy histogram over the measurement window.
	if hi, lo := math.Min(t, s.end), math.Max(s.now, s.start); hi > lo {
		s.occHist[s.occ] += hi - lo
	}
	for r := range s.classes {
		cs := &s.classes[r]
		a := cs.class.A
		accumulate(cs.kTW, s.start, s.batchLen, s.batches, s.now, t, float64(s.k[r]))
		if a <= s.sw.MinN() {
			rb := combin.Perm(s.sw.N1-s.occ, a) * combin.Perm(s.sw.N2-s.occ, a) / cs.routes
			accumulate(cs.rbTW, s.start, s.batchLen, s.batches, s.now, t, rb)
			if s.fixedRouteIdle(a) {
				accumulate(cs.fixTW, s.start, s.batchLen, s.batches, s.now, t, 1)
			}
		}
	}
	s.now = t
}

// fixedRouteIdle reports whether inputs 0..a-1 and outputs 0..a-1 are
// all idle.
func (s *state) fixedRouteIdle(a int) bool {
	for i := 0; i < a; i++ {
		if s.busyIn[i] || s.busyOut[i] {
			return false
		}
	}
	return true
}

// batchOf returns the measurement batch index for time t, or -1.
func (s *state) batchOf(t float64) int {
	if t < s.start || t >= s.end {
		return -1
	}
	b := int((t - s.start) / s.batchLen)
	if b >= s.batches {
		b = s.batches - 1
	}
	return b
}

func (s *state) run(maxEvents int64) error {
	for {
		// Next event: earliest departure or class arrival.
		t := math.Inf(1)
		kind := -1 // -1 none, -2 departure, r >= 0 arrival of class r
		if at, ok := s.deps.PeekTime(); ok {
			t = at
			kind = -2
		}
		for r := range s.classes {
			if s.classes[r].nextArr < t {
				t = s.classes[r].nextArr
				kind = r
			}
		}
		if kind == -1 || t >= s.end {
			s.advance(s.end)
			return nil
		}
		s.advance(t)
		s.events++
		if s.events > maxEvents {
			return fmt.Errorf("sim: exceeded %d events before horizon; load too high for the configured horizon", maxEvents)
		}
		if kind == -2 {
			s.depart()
		} else {
			s.arrive(kind)
		}
	}
}

func (s *state) depart() {
	_, d := s.deps.Pop()
	for _, i := range d.inputs {
		s.busyIn[i] = false
	}
	for _, j := range d.outputs {
		s.busyOut[j] = false
	}
	s.occ -= len(d.inputs)
	s.k[d.class]--
	// The class arrival rate changed with k: resample its clock.
	cs := &s.classes[d.class]
	cs.nextArr = s.sampleArrival(s.now, cs, s.k[d.class])
}

func (s *state) arrive(r int) {
	cs := &s.classes[r]
	a := cs.class.A
	if b := s.batchOf(s.now); b >= 0 {
		cs.offered[b]++
	}
	// Admission policy first, then draw a_r distinct inputs and
	// outputs uniformly.
	ok := a <= s.sw.N1 && a <= s.sw.N2
	if ok && s.admit != nil && !s.admit(s.k, r) {
		ok = false
	}
	if ok {
		sampleDistinct(s.rng, s.sw.N1, a, s.pickIn)
		sampleDistinct(s.rng, s.sw.N2, a, s.pickOut)
		for i := 0; i < a; i++ {
			if s.busyIn[s.pickIn[i]] || s.busyOut[s.pickOut[i]] {
				ok = false
				break
			}
		}
	}
	if !ok {
		if b := s.batchOf(s.now); b >= 0 {
			cs.blocked[b]++
		}
		// Blocked-and-cleared: k unchanged, clock rate unchanged, but
		// the exponential clock must still be redrawn past now.
		cs.nextArr = s.sampleArrival(s.now, cs, s.k[r])
		return
	}
	inputs := make([]int, a)
	outputs := make([]int, a)
	copy(inputs, s.pickIn[:a])
	copy(outputs, s.pickOut[:a])
	for i := 0; i < a; i++ {
		s.busyIn[inputs[i]] = true
		s.busyOut[outputs[i]] = true
	}
	s.occ += a
	s.k[r]++
	s.deps.Push(s.now+cs.service.Sample(s.rng), departure{
		class:   r,
		inputs:  inputs,
		outputs: outputs,
	})
	cs.nextArr = s.sampleArrival(s.now, cs, s.k[r])
}

// sampleDistinct fills out[:a] with a distinct uniform indices from
// [0, n) by rejection, which is fast because a << n in every sensible
// configuration.
func sampleDistinct(stream *rng.Stream, n, a int, out []int) {
	for i := 0; i < a; i++ {
	redraw:
		for {
			v := stream.Intn(n)
			for j := 0; j < i; j++ {
				if out[j] == v {
					continue redraw
				}
			}
			out[i] = v
			break
		}
	}
}

func (s *state) results(level float64) *Result {
	res := &Result{Events: s.events}
	occBatches := make([]float64, s.batches)
	for b := range occBatches {
		occBatches[b] = s.occTW[b].area / s.batchLen
	}
	occCI := stats.BatchMeans(occBatches, level)
	res.MeanOccupancy = occCI.Mean
	res.Utilization = occCI.Mean / float64(s.sw.MinN())
	total := 0.0
	for _, v := range s.occHist {
		total += v
	}
	if total > 0 {
		res.Occupancy = make([]float64, len(s.occHist))
		for i, v := range s.occHist {
			res.Occupancy[i] = v / total
		}
	}

	for r := range s.classes {
		cs := &s.classes[r]
		kb := make([]float64, s.batches)
		rb := make([]float64, s.batches)
		fx := make([]float64, s.batches)
		var blockBatches []float64
		var offered, blocked int64
		for b := 0; b < s.batches; b++ {
			kb[b] = cs.kTW[b].area / s.batchLen
			rb[b] = cs.rbTW[b].area / s.batchLen
			fx[b] = cs.fixTW[b].area / s.batchLen
			offered += cs.offered[b]
			blocked += cs.blocked[b]
			if cs.offered[b] > 0 {
				blockBatches = append(blockBatches, float64(cs.blocked[b])/float64(cs.offered[b]))
			}
		}
		cr := ClassResult{
			Offered:         offered,
			Blocked:         blocked,
			Concurrency:     stats.BatchMeans(kb, level),
			TimeNonBlocking: stats.BatchMeans(rb, level),
			FixedRouteIdle:  stats.BatchMeans(fx, level),
		}
		if len(blockBatches) >= 2 {
			cr.CallBlocking = stats.BatchMeans(blockBatches, level)
		} else {
			cr.CallBlocking = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: level}
		}
		res.Classes = append(res.Classes, cr)
	}
	return res
}
