// Package sim is a discrete-event simulator of the asynchronous,
// unbuffered N1 x N2 crossbar the paper models analytically — the
// "compare with simulation" item in the paper's future work, and this
// reproduction's substitute for a physical optical switch fabric.
//
// Unlike the analytical model, the simulator represents the fabric
// explicitly: each input and output port is tracked individually, a
// class-r request draws a_r distinct inputs and a_r distinct outputs
// uniformly at random at its (unslotted, asynchronous) arrival instant,
// is accepted only if every port is idle, and is cleared otherwise.
// Arrivals follow the state-dependent BPP intensity
// lambda_r(k_r) = alpha_r + beta_r k_r per ordered route — implemented
// exactly, by resampling the class's exponential arrival clock whenever
// k_r changes. Holding times come from any rng.ServiceDist, which is
// what makes the insensitivity experiments possible.
//
// Two blocking measures are reported, because they genuinely differ for
// bursty traffic (no PASTA without Poisson arrivals):
//
//   - time congestion: the time-average probability that a randomly
//     chosen candidate route is idle — the quantity the paper's
//     B_r(N) = G(N-a_r I)/G(N) computes. Estimated two ways: by the
//     conditional-expectation (Rao-Blackwellized) estimator
//     P(N1-occ,a) P(N2-occ,a) / (P(N1,a) P(N2,a)), and by the raw
//     idle-indicator of one fixed route.
//   - call congestion: the fraction of offered class-r requests that
//     are blocked, which is what a user of the switch experiences.
//
// The engine is built for event throughput (docs/SIMULATOR.md): live
// connections occupy slots of a pre-sized port arena recycled through
// a free list, departures carry only an 8-byte (class, slot) record
// through the event queue, and every time-weighted statistic is a
// flat per-batch array updated incrementally — occupancy and
// fixed-route state as time-in-state histograms folded against the
// measure tables once per run, per-class concurrency lazily on k_r
// changes. Steady-state operation performs zero allocations per
// event, and state objects are Reset-recyclable so the replication
// farm (Farm) reuses one state per worker across replications.
package sim

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/core"
	"xbar/internal/eventq"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Config parameterizes one simulation run.
type Config struct {
	// Switch is the model to simulate (per-route class units, exactly
	// as the analytical solvers take it).
	Switch core.Switch
	// Seed makes the run reproducible.
	Seed uint64
	// Warmup is the simulated time discarded before measurement.
	Warmup float64
	// Horizon is the measured simulated time after warmup.
	Horizon float64
	// Batches divides the horizon for batch-means confidence
	// intervals; 0 defaults to 20.
	Batches int
	// Service optionally overrides the holding-time distribution per
	// class; nil entries (or a nil slice) default to exponential with
	// mean 1/mu_r. Means must equal 1/mu_r — Run enforces this so a
	// config cannot silently diverge from the model it claims to
	// simulate.
	Service []rng.ServiceDist
	// Level is the confidence level (default 0.95).
	Level float64
	// MaxEvents caps the event count as a runaway guard; 0 means
	// 50 million.
	MaxEvents int64
	// Admit, when non-nil, is an admission policy evaluated at each
	// arrival before port selection: a rejected request is counted as
	// blocked and cleared. The slice passed is the live class-count
	// vector; policies must not retain or modify it. Under Farm the
	// policy is called from multiple replications concurrently, so it
	// must be safe for concurrent use (a pure function of its
	// arguments is).
	Admit AdmitFunc
	// CalendarQueue selects the bucketed calendar queue for the
	// departure schedule instead of the default 4-ary heap — O(1)
	// amortized instead of O(log n), worthwhile for switches with
	// hundreds of concurrent connections. Results are identical to
	// the heap's whenever no two departures are scheduled at exactly
	// the same instant, which holds almost surely for continuous
	// holding-time distributions.
	CalendarQueue bool
}

// AdmitFunc decides whether a class arrival may enter the fabric given
// the current class-count vector (mirrors
// statespace.AdmissionPolicy).
type AdmitFunc func(k []int, class int) bool

// ClassResult aggregates the per-class estimates of one run.
type ClassResult struct {
	// Offered and Blocked count measured class arrivals.
	Offered, Blocked int64
	// CallBlocking is the blocked fraction of offered requests.
	CallBlocking stats.CI
	// TimeNonBlocking is the Rao-Blackwellized estimate of B_r(N).
	TimeNonBlocking stats.CI
	// FixedRouteIdle is the raw idle-time fraction of one fixed
	// candidate route — an unbiased but higher-variance estimate of
	// the same B_r(N).
	FixedRouteIdle stats.CI
	// Concurrency is the time-average number of class connections,
	// estimating E_r(N).
	Concurrency stats.CI
}

// Result is the outcome of a run.
type Result struct {
	Classes []ClassResult
	// Utilization is the time-average busy fraction of min(N1,N2)
	// occupancy capacity.
	Utilization float64
	// MeanOccupancy is the time-average number of busy inputs.
	MeanOccupancy float64
	// Occupancy[s] is the measured time fraction with exactly s busy
	// inputs — directly comparable to the convolution evaluator's
	// analytic occupancy distribution.
	Occupancy []float64
	// Events is the number of processed events in the measured phase.
	Events int64
}

const defaultMaxEvents = 50_000_000

// runParams is a validated, defaulted Config shared by Run and Farm.
type runParams struct {
	sw        core.Switch
	service   []rng.ServiceDist
	batches   int
	level     float64
	maxEvents int64
}

// prepare validates the config and resolves defaults.
func prepare(cfg Config) (runParams, error) {
	var p runParams
	p.sw = cfg.Switch
	if err := p.sw.Validate(); err != nil {
		return p, err
	}
	if cfg.Horizon <= 0 {
		return p, fmt.Errorf("sim: horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.Warmup < 0 {
		return p, fmt.Errorf("sim: negative warmup %v", cfg.Warmup)
	}
	p.batches = cfg.Batches
	if p.batches == 0 {
		p.batches = 20
	}
	if p.batches < 2 {
		return p, fmt.Errorf("sim: need at least 2 batches, got %d", p.batches)
	}
	p.level = cfg.Level
	if p.level == 0 { //lint:allow floatcmp zero value of Config.Level selects the default (Go zero-value idiom)
		p.level = 0.95
	}
	p.maxEvents = cfg.MaxEvents
	if p.maxEvents == 0 {
		p.maxEvents = defaultMaxEvents
	}
	if cfg.Service != nil && len(cfg.Service) != len(p.sw.Classes) {
		return p, fmt.Errorf("sim: %d service distributions for %d classes",
			len(cfg.Service), len(p.sw.Classes))
	}
	p.service = make([]rng.ServiceDist, len(p.sw.Classes))
	for r, c := range p.sw.Classes {
		if cfg.Service != nil && cfg.Service[r] != nil {
			p.service[r] = cfg.Service[r]
			if m := p.service[r].Mean(); math.Abs(m-1/c.Mu) > 1e-9*math.Max(m, 1/c.Mu) {
				return p, fmt.Errorf("sim: class %d service mean %v != 1/mu = %v", r, m, 1/c.Mu)
			}
		} else {
			p.service[r] = rng.Exponential{M: 1 / c.Mu}
		}
	}
	return p, nil
}

// Run simulates the configured switch and returns estimates with
// confidence intervals.
func Run(cfg Config) (*Result, error) {
	p, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	s := newState(p, cfg)
	s.reset(rng.NewStream(cfg.Seed))
	if err := s.run(p.maxEvents); err != nil {
		return nil, err
	}
	return finalize(s.extract(), p.level, p.batches), nil
}

// conn is the compact departure record carried through the event
// queue: the connection's class and its slot in the port arena.
type conn struct {
	class int32
	slot  int32
}

type classSim struct {
	a      int
	routes float64 // P(N1,a) P(N2,a): ordered candidate routes
	// invRate[k] is 1 / (routes * (alpha + beta k)), the mean
	// inter-arrival time at class count k, precomputed so the hot path
	// never divides; a negative entry marks rate <= 0 (no arrivals).
	// k never exceeds MinN, so the table covers every reachable count.
	invRate []float64
	// expMean > 0 devirtualizes the common exponential holding time:
	// sample as ExpUnit()*expMean instead of an interface call.
	expMean float64
	// kDep marks beta != 0: the arrival rate depends on k, so the
	// class clock must be resampled whenever k changes. Poisson
	// classes (beta == 0) keep their clock across k changes — exact by
	// memorylessness, and it saves a draw per departure.
	kDep    bool
	service rng.ServiceDist
}

type state struct {
	sw      core.Switch
	rng     *rng.Stream
	classes []classSim
	// nextArr[r] is class r's next arrival instant, kept out of
	// classSim so the per-event earliest-arrival scan walks a
	// contiguous float64 array.
	nextArr []float64
	busyIn  []bool
	busyOut []bool
	occ     int // busy inputs (= busy outputs)
	k       []int

	// Connection arena: slot i's ports live at ports[i*stride :
	// i*stride+2a] (a inputs then a outputs); free is the stack of
	// recyclable slots. Capacity is MinN slots — every connection
	// seizes at least one input, so no more can be live at once.
	stride int
	ports  []int32
	free   []int32

	// Departure schedule: exactly one of heap/cal is non-nil, unless
	// useFlat selects the flat cached-min schedule below.
	heap *eventq.Queue[conn]
	cal  *eventq.Calendar[conn]

	// Flat departure schedule, used for small fabrics (minN <=
	// flatScheduleMax) instead of the heap: an unordered array with a
	// cached argmin. A heap's sift comparisons are data-random and
	// mispredict ~half the time; a linear min-scan's running-min
	// branch is taken only O(log n) times in expectation, so for small
	// n the scan is substantially faster per event. The cache makes it
	// one scan per departure: pushes keep the cached min up to date,
	// only popping it invalidates.
	useFlat bool
	depAt   []float64
	depC    []conn
	depMin  int // cached argmin of depAt, -1 when invalid

	now         float64
	start       float64 // measurement start (= warmup)
	end         float64
	batchLen    float64
	invBatchLen float64
	batches     int

	// Current measurement batch, advanced monotonically by the run
	// loop: curB is the batch index of s.now, valid on [curB0, curB1).
	// flush needs one comparison against curB0 to place the common
	// within-batch span — no float->int conversion on the hot path.
	// curB0 starts at the warmup boundary (so warmup spans take the
	// clipping slow path) and is forced to +Inf for the final flushes.
	curB         int
	curB0, curB1 float64

	// Time-in-state histograms, flat [state*batches + b]: occTime by
	// occupancy (minN+1 states), fixTime by fixed-route idle prefix
	// (maxFix+1 states, fixState = largest a with inputs 0..a-1 and
	// outputs 0..a-1 all idle, capped at maxFix). Both accumulate
	// lazily: occSince/fixSince record when the current state was
	// entered, and flushOcc/flushFix integrate the elapsed span only
	// when the state actually changes (and once at the end of the run).
	// Every occupancy- or route-dependent measure is recovered from the
	// histograms after the run.
	occTime  []float64
	fixTime  []float64
	occSince float64
	fixSince float64
	fixState int
	maxFix   int

	// Lazy per-class concurrency accumulation, flat [r*batches + b]:
	// class r's row is only touched when k_r changes (flushK), not on
	// every event. kSince[r] is the time k_r took its current value.
	kTW    []float64
	kSince []float64

	// Arrival counters, flat [r*batches + b].
	offered []int64
	blocked []int64

	// scratch buffers for route sampling
	pickIn, pickOut []int
	// pairDraw marks both port counts as powers of two: a single-route
	// pick then uses disjoint bit fields of one 64-bit draw (low bits
	// for the input, bits 32+ for the output) instead of two draws.
	pairDraw     bool
	mask1, mask2 int
	events       int64
	admit        AdmitFunc
}

// newState builds a state for the prepared config. The state carries
// no randomness yet: call reset with a stream before run. One state
// is reusable across any number of reset/run cycles — construction
// is the only allocation site.
func newState(p runParams, cfg Config) *state {
	sw := p.sw
	minN := sw.MinN()
	batches := p.batches
	s := &state{
		sw:       sw,
		nextArr:  make([]float64, len(sw.Classes)),
		busyIn:   make([]bool, sw.N1),
		busyOut:  make([]bool, sw.N2),
		k:        make([]int, len(sw.Classes)),
		start:    cfg.Warmup,
		end:      cfg.Warmup + cfg.Horizon,
		batchLen: cfg.Horizon / float64(batches),
		batches:  batches,
		kSince:   make([]float64, len(sw.Classes)),
		kTW:      make([]float64, len(sw.Classes)*batches),
		offered:  make([]int64, len(sw.Classes)*batches),
		blocked:  make([]int64, len(sw.Classes)*batches),
		occTime:  make([]float64, (minN+1)*batches),
		admit:    cfg.Admit,
	}
	s.invBatchLen = 1 / s.batchLen
	maxA := 0
	meanMax := 0.0
	for r, c := range sw.Classes {
		routes := combin.Perm(sw.N1, c.A) * combin.Perm(sw.N2, c.A)
		cs := classSim{
			a:       c.A,
			routes:  routes,
			kDep:    c.Beta != 0, //lint:allow floatcmp beta exactly zero selects the Poisson fast path
			service: p.service[r],
		}
		cs.invRate = make([]float64, minN+1)
		for k := range cs.invRate {
			rate := routes * (c.Alpha + c.Beta*float64(k))
			if rate > 0 {
				cs.invRate[k] = 1 / rate
			} else {
				cs.invRate[k] = -1
			}
		}
		if e, ok := cs.service.(rng.Exponential); ok {
			cs.expMean = e.M
		}
		if m := cs.service.Mean(); m > meanMax {
			meanMax = m
		}
		s.classes = append(s.classes, cs)
		if c.A > maxA {
			maxA = c.A
		}
	}
	s.maxFix = maxA
	if s.maxFix > minN {
		s.maxFix = minN
	}
	s.fixTime = make([]float64, (s.maxFix+1)*batches)
	s.pickIn = make([]int, maxA)
	s.pickOut = make([]int, maxA)
	s.pairDraw = sw.N1&(sw.N1-1) == 0 && sw.N2&(sw.N2-1) == 0
	s.mask1 = sw.N1 - 1
	s.mask2 = sw.N2 - 1
	s.stride = 2 * maxA
	s.ports = make([]int32, minN*s.stride)
	s.free = make([]int32, 0, minN)
	switch {
	case cfg.CalendarQueue:
		// Bucket width ~ the mean gap between departures at full
		// occupancy; window ~ 4 mean holding times.
		width := meanMax / float64(max(minN, 1))
		if width <= 0 {
			width = 1
		}
		s.cal = eventq.NewCalendar[conn](width, 4*minN+8)
	case minN <= flatScheduleMax:
		s.useFlat = true
		s.depAt = make([]float64, 0, minN)
		s.depC = make([]conn, 0, minN)
		s.depMin = -1
	default:
		s.heap = eventq.New[conn](minN)
	}
	return s
}

// flatScheduleMax is the largest min(N1, N2) for which the flat
// cached-min departure schedule beats the 4-ary heap; beyond it the
// O(n) min-scan loses to the heap's O(log n) sift.
const flatScheduleMax = 64

// flatPeek returns the earliest scheduled departure, rescanning only
// when the cached argmin was invalidated by a pop.
func (s *state) flatPeek() (float64, bool) {
	if len(s.depAt) == 0 {
		return 0, false
	}
	m := s.depMin
	if m < 0 {
		m = 0
		for i, at := range s.depAt {
			if at < s.depAt[m] {
				m = i
			}
		}
		s.depMin = m
	}
	return s.depAt[m], true
}

// flatPop removes and returns the earliest scheduled departure.
func (s *state) flatPop() conn {
	if s.depMin < 0 {
		s.flatPeek()
	}
	m := s.depMin
	v := s.depC[m]
	n := len(s.depAt) - 1
	s.depAt[m] = s.depAt[n]
	s.depC[m] = s.depC[n]
	s.depAt = s.depAt[:n]
	s.depC = s.depC[:n]
	s.depMin = -1
	return v
}

// flatPush schedules a departure, keeping the cached argmin valid.
func (s *state) flatPush(at float64, c conn) {
	if m := s.depMin; m >= 0 && at < s.depAt[m] {
		s.depMin = len(s.depAt)
	}
	s.depAt = append(s.depAt, at)
	s.depC = append(s.depC, c)
}

// reset rewinds the state to time zero with a fresh random stream,
// zeroing every accumulator while keeping all backing arrays.
func (s *state) reset(stream *rng.Stream) {
	s.rng = stream
	clear(s.busyIn)
	clear(s.busyOut)
	clear(s.k)
	clear(s.kSince)
	clear(s.kTW)
	clear(s.offered)
	clear(s.blocked)
	clear(s.occTime)
	clear(s.fixTime)
	s.occ = 0
	s.now = 0
	s.occSince = 0
	s.fixSince = 0
	s.events = 0
	s.fixState = s.maxFix
	s.curB = 0
	s.curB0 = s.start
	s.curB1 = s.start + s.batchLen
	if s.batches == 1 {
		s.curB1 = math.Inf(1)
	}
	s.free = s.free[:0]
	for i := len(s.ports)/max(s.stride, 1) - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	switch {
	case s.cal != nil:
		s.cal.Reset()
	case s.useFlat:
		s.depAt = s.depAt[:0]
		s.depC = s.depC[:0]
		s.depMin = -1
	default:
		s.heap.Reset()
	}
	for r := range s.classes {
		s.nextArr[r] = s.sampleArrival(0, &s.classes[r], 0)
	}
}

// sampleArrival draws the next class arrival time from t given count k.
func (s *state) sampleArrival(t float64, cs *classSim, k int) float64 {
	inv := cs.invRate[k]
	if inv < 0 {
		return math.Inf(1)
	}
	return t + s.rng.ExpUnit()*inv
}

// accumulate adds value*dt over [t0, t1) to the per-batch areas in
// out, clipping to the measurement window [start, start +
// batchLen*batches) and splitting across batch boundaries. The
// overwhelmingly common case — both endpoints inside one batch — is a
// single add; only spans that actually cross boundaries pay the
// splitting loop, which is O(spanned batches).
func accumulate(out []float64, start, batchLen float64, batches int, t0, t1, value float64) {
	if value == 0 { //lint:allow floatcmp skips exactly-zero accumulation; tiny areas must still integrate
		return
	}
	end := start + batchLen*float64(batches)
	if t0 < start {
		t0 = start
	}
	if t1 > end {
		t1 = end
	}
	if t0 >= t1 {
		return
	}
	b := int((t0 - start) / batchLen)
	if b >= batches {
		return
	}
	bEnd := start + batchLen*float64(b+1)
	if t1 <= bEnd {
		// Fast path: the whole span falls in batch b.
		out[b] += value * (t1 - t0)
		return
	}
	for {
		seg := t1
		if bEnd < seg {
			seg = bEnd
		}
		out[b] += value * (seg - t0)
		t0 = seg
		if t0 >= t1 {
			return
		}
		b++
		if b >= batches {
			return
		}
		bEnd = start + batchLen*float64(b+1)
	}
}

// flush adds value*dt over [t0, s.now) to the per-batch areas in out
// (one contiguous histogram row), clipping to the measurement window.
// The overwhelmingly common case — a span inside the current batch —
// is one comparison and one add; warmup spans and batch-crossing
// spans fall through to accumulate, which clips and splits.
func (s *state) flush(out []float64, t0, value float64) {
	if t0 >= s.curB0 {
		// s.now < s.curB1 by the run-loop invariant, so the whole
		// span lies in batch curB.
		out[s.curB] += value * (s.now - t0)
		return
	}
	accumulate(out, s.start, s.batchLen, s.batches, t0, s.now, value)
}

// advanceBatch moves the current-batch window forward to contain t.
// Called only when t crossed curB1 — at most batches times per run.
func (s *state) advanceBatch(t float64) {
	for t >= s.curB1 && s.curB < s.batches-1 {
		s.curB++
		s.curB0 = s.curB1
		s.curB1 += s.batchLen
	}
	if s.curB == s.batches-1 {
		// Last batch: everything up to the horizon lands here, and
		// rounding drift in the repeated += must not re-trigger the
		// crossing test every event.
		s.curB1 = math.Inf(1)
	}
}

// flushOcc integrates the current occupancy's time-in-state row over
// [occSince, now). Call immediately before changing s.occ, and once at
// the end of the run.
func (s *state) flushOcc() {
	b := s.batches
	s.flush(s.occTime[s.occ*b:(s.occ+1)*b], s.occSince, 1)
	s.occSince = s.now
}

// flushFix integrates the current fixed-route prefix's time-in-state
// row over [fixSince, now). Call immediately before recomputeFix, and
// once at the end of the run.
func (s *state) flushFix() {
	b := s.batches
	s.flush(s.fixTime[s.fixState*b:(s.fixState+1)*b], s.fixSince, 1)
	s.fixSince = s.now
}

// flushK integrates class r's concurrency at its current value over
// [kSince[r], now). Call immediately before changing k[r], and once
// at the end of the run.
func (s *state) flushK(r int) {
	s.flush(s.kTW[r*s.batches:(r+1)*s.batches], s.kSince[r], float64(s.k[r]))
	s.kSince[r] = s.now
}

// recomputeFix rescans the fixed-route prefix: fixState becomes the
// largest a (capped at maxFix) with inputs 0..a-1 and outputs 0..a-1
// all idle. Called only when a port below maxFix toggled.
func (s *state) recomputeFix() {
	f := s.maxFix
	for i := 0; i < s.maxFix; i++ {
		if s.busyIn[i] || s.busyOut[i] {
			f = i
			break
		}
	}
	s.fixState = f
}

// run dispatches to the fused fast loop when its preconditions hold
// (flat departure schedule, no admission policy, and port counts that
// fit the loop's 64-bit busy bitmasks), else to the generic loop.
// Both produce bit-identical trajectories for the same stream:
// runFast is a register-allocated transcription of runGeneric, pinned
// by TestRunFastMatchesGeneric.
func (s *state) run(maxEvents int64) error {
	if s.useFlat && s.admit == nil && s.sw.N1 <= 64 && s.sw.N2 <= 64 {
		return s.runFast(maxEvents)
	}
	return s.runGeneric(maxEvents)
}

func (s *state) runGeneric(maxEvents int64) error {
	for {
		// Next event: earliest departure or class arrival.
		var t float64
		var ok bool
		switch {
		case s.useFlat:
			t, ok = s.flatPeek()
		case s.cal != nil:
			t, ok = s.cal.PeekTime()
		default:
			t, ok = s.heap.PeekTime()
		}
		kind := -1 // -1 none, -2 departure, r >= 0 arrival of class r
		if ok {
			kind = -2
		} else {
			t = math.Inf(1)
		}
		for r, ta := range s.nextArr {
			if ta < t {
				t = ta
				kind = r
			}
		}
		if kind == -1 || t >= s.end {
			s.now = s.end
			// Force the final flushes through the clipping slow path:
			// the last spans may cross any number of batches.
			s.curB0 = math.Inf(1)
			s.flushOcc()
			s.flushFix()
			for r := range s.classes {
				s.flushK(r)
			}
			return nil
		}
		// Event times are monotone (departures are scheduled in the
		// future, arrival clocks are resampled past now), so advancing
		// the clock is a plain store; all time-weighted statistics
		// integrate lazily when their state next changes.
		s.now = t
		if t >= s.curB1 {
			s.advanceBatch(t)
		}
		s.events++
		if s.events > maxEvents {
			return fmt.Errorf("sim: exceeded %d events before horizon; load too high for the configured horizon", maxEvents)
		}
		if kind == -2 {
			s.depart()
		} else {
			s.arrive(kind)
		}
	}
}

func (s *state) depart() {
	var d conn
	switch {
	case s.useFlat:
		d = s.flatPop()
	case s.cal != nil:
		_, d = s.cal.Pop()
	default:
		_, d = s.heap.Pop()
	}
	r := int(d.class)
	cs := &s.classes[r]
	a := cs.a
	base := int(d.slot) * s.stride
	low := false
	for i := 0; i < a; i++ {
		in := s.ports[base+i]
		out := s.ports[base+a+i]
		s.busyIn[in] = false
		s.busyOut[out] = false
		if int(in) < s.maxFix || int(out) < s.maxFix {
			low = true
		}
	}
	s.free = append(s.free, d.slot)
	s.flushOcc()
	s.occ -= a
	s.flushK(r)
	s.k[r]--
	if low {
		s.flushFix()
		s.recomputeFix()
	}
	// The class arrival rate changed with k: resample its clock.
	// Poisson classes keep theirs — the rate did not change, and the
	// exponential residual is memoryless.
	if cs.kDep {
		s.nextArr[r] = s.sampleArrival(s.now, cs, s.k[r])
	}
}

func (s *state) arrive(r int) {
	cs := &s.classes[r]
	a := cs.a
	// Measurement batch of this arrival instant, read off the run
	// loop's current-batch cursor; -1 during warmup (s.now < s.end
	// always holds for events).
	b := -1
	if s.now >= s.start {
		b = s.curB
		s.offered[r*s.batches+b]++
	}
	// Admission policy first, then draw a_r distinct inputs and
	// outputs uniformly. The arrival clock only fires for classes
	// with routes > 0, so a fits the fabric here.
	ok := true
	if s.admit != nil && !s.admit(s.k, r) {
		ok = false
	}
	if ok {
		if a == 1 {
			in, out := s.pickOne()
			s.pickIn[0] = in
			s.pickOut[0] = out
			ok = !s.busyIn[in] && !s.busyOut[out]
		} else {
			sampleDistinct(s.rng, s.sw.N1, a, s.pickIn)
			sampleDistinct(s.rng, s.sw.N2, a, s.pickOut)
			for i := 0; i < a; i++ {
				if s.busyIn[s.pickIn[i]] || s.busyOut[s.pickOut[i]] {
					ok = false
					break
				}
			}
		}
	}
	if !ok {
		if b >= 0 {
			s.blocked[r*s.batches+b]++
		}
		// Blocked-and-cleared: k unchanged, clock rate unchanged, but
		// the exponential clock must still be redrawn past now.
		s.nextArr[r] = s.sampleArrival(s.now, cs, s.k[r])
		return
	}
	slot := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	base := int(slot) * s.stride
	low := false
	for i := 0; i < a; i++ {
		in := s.pickIn[i]
		out := s.pickOut[i]
		s.ports[base+i] = int32(in)
		s.ports[base+a+i] = int32(out)
		s.busyIn[in] = true
		s.busyOut[out] = true
		if in < s.maxFix || out < s.maxFix {
			low = true
		}
	}
	s.flushOcc()
	s.occ += a
	s.flushK(r)
	s.k[r]++
	if low {
		s.flushFix()
		s.recomputeFix()
	}
	var hold float64
	if cs.expMean > 0 {
		hold = s.rng.ExpUnit() * cs.expMean
	} else {
		hold = cs.service.Sample(s.rng)
	}
	d := conn{class: int32(r), slot: slot}
	switch {
	case s.useFlat:
		s.flatPush(s.now+hold, d)
	case s.cal != nil:
		s.cal.Push(s.now+hold, d)
	default:
		s.heap.Push(s.now+hold, d)
	}
	s.nextArr[r] = s.sampleArrival(s.now, cs, s.k[r])
}

// pickOne draws one input and one output port index for a
// single-route (a = 1) arrival. Power-of-two fabrics pay one 64-bit
// draw for both picks; others pay two rejection draws. runFast
// inlines exactly this logic — the two paths must stay draw-for-draw
// identical (TestRunFastMatchesGeneric pins it).
func (s *state) pickOne() (in, out int) {
	if s.pairDraw {
		u := s.rng.Uint64()
		return int(u) & s.mask1, int(u>>32) & s.mask2
	}
	return s.rng.Intn(s.sw.N1), s.rng.Intn(s.sw.N2)
}

// sampleDistinct fills out[:a] with a distinct uniform indices from
// [0, n) by rejection, which is fast because a << n in every sensible
// configuration.
func sampleDistinct(stream *rng.Stream, n, a int, out []int) {
	for i := 0; i < a; i++ {
	redraw:
		for {
			v := stream.Intn(n)
			for j := 0; j < i; j++ {
				if out[j] == v {
					continue redraw
				}
			}
			out[i] = v
			break
		}
	}
}

// rawClass is one replication's per-batch record for one class.
type rawClass struct {
	offered, blocked []int64
	// Per-batch batch means: concurrency, Rao-Blackwellized route
	// idle probability, fixed-route idle fraction.
	kB, rbB, fxB []float64
}

// raw is one replication's per-batch record, the mergeable unit the
// farm pools across replications before interval construction.
type raw struct {
	events  int64
	occB    []float64 // per-batch mean occupancy
	occHist []float64 // time with occupancy s, unnormalized
	classes []rawClass
}

// extract folds the time-in-state histograms against the per-class
// measure tables and snapshots every per-batch series. The returned
// raw is independent of the state, which may be reset and reused.
func (s *state) extract() *raw {
	b := s.batches
	minN := s.sw.MinN()
	out := &raw{
		events:  s.events,
		occB:    make([]float64, b),
		occHist: make([]float64, minN+1),
		classes: make([]rawClass, len(s.classes)),
	}
	inv := 1 / s.batchLen
	for st := 0; st <= minN; st++ {
		row := s.occTime[st*b : (st+1)*b]
		tot := 0.0
		for i, v := range row {
			out.occB[i] += float64(st) * v * inv
			tot += v
		}
		out.occHist[st] = tot
	}
	for r := range s.classes {
		cs := &s.classes[r]
		rc := &out.classes[r]
		rc.offered = append([]int64(nil), s.offered[r*b:(r+1)*b]...)
		rc.blocked = append([]int64(nil), s.blocked[r*b:(r+1)*b]...)
		rc.kB = make([]float64, b)
		for i, v := range s.kTW[r*b : (r+1)*b] {
			rc.kB[i] = v * inv
		}
		// Rao-Blackwellized route idle probability: a function of the
		// occupancy alone, recovered from the occupancy-time rows.
		rc.rbB = make([]float64, b)
		if cs.routes > 0 {
			for st := 0; st <= minN; st++ {
				rb := combin.Perm(s.sw.N1-st, cs.a) * combin.Perm(s.sw.N2-st, cs.a) / cs.routes
				if rb == 0 { //lint:allow floatcmp exact zero above full occupancy; skips the row fold
					continue
				}
				row := s.occTime[st*b : (st+1)*b]
				for i, v := range row {
					rc.rbB[i] += rb * v * inv
				}
			}
		}
		// Fixed-route idle: time with idle prefix >= a.
		rc.fxB = make([]float64, b)
		if cs.a <= s.maxFix {
			for f := cs.a; f <= s.maxFix; f++ {
				row := s.fixTime[f*b : (f+1)*b]
				for i, v := range row {
					rc.fxB[i] += v * inv
				}
			}
		}
	}
	return out
}

// finalize builds the reported Result from one replication's record.
func finalize(w *raw, level float64, batches int) *Result {
	res := &Result{Events: w.events}
	occCI := stats.BatchMeans(w.occB, level)
	res.MeanOccupancy = occCI.Mean
	res.Utilization = occCI.Mean / float64(len(w.occHist)-1)
	total := 0.0
	for _, v := range w.occHist {
		total += v
	}
	if total > 0 {
		res.Occupancy = make([]float64, len(w.occHist))
		for i, v := range w.occHist {
			res.Occupancy[i] = v / total
		}
	}
	for r := range w.classes {
		rc := &w.classes[r]
		var blockBatches []float64
		var offered, blocked int64
		for b := 0; b < batches; b++ {
			offered += rc.offered[b]
			blocked += rc.blocked[b]
			if rc.offered[b] > 0 {
				blockBatches = append(blockBatches, float64(rc.blocked[b])/float64(rc.offered[b]))
			}
		}
		cr := ClassResult{
			Offered:         offered,
			Blocked:         blocked,
			Concurrency:     stats.BatchMeans(rc.kB, level),
			TimeNonBlocking: stats.BatchMeans(rc.rbB, level),
			FixedRouteIdle:  stats.BatchMeans(rc.fxB, level),
		}
		if len(blockBatches) >= 2 {
			cr.CallBlocking = stats.BatchMeans(blockBatches, level)
		} else {
			cr.CallBlocking = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), SE: math.Inf(1), Level: level}
		}
		res.Classes = append(res.Classes, cr)
	}
	return res
}
