package sim

import (
	"math"
	"testing"

	"xbar/internal/rng"
)

// accumulateRef is the obvious O(batches) reference: intersect [t0,t1)
// with every batch window independently.
func accumulateRef(out []float64, start, batchLen float64, batches int, t0, t1, value float64) {
	for b := 0; b < batches; b++ {
		lo := math.Max(t0, start+float64(b)*batchLen)
		hi := math.Min(t1, start+float64(b+1)*batchLen)
		if hi > lo {
			out[b] += value * (hi - lo)
		}
	}
}

// TestAccumulateMatchesReference drives accumulate with random spans —
// before the window, inside one batch, across several, past the end —
// and checks the per-batch areas against the naive reference.
func TestAccumulateMatchesReference(t *testing.T) {
	const (
		start    = 10.0
		batchLen = 5.0
		batches  = 8
	)
	s := rng.NewStream(77)
	for trial := 0; trial < 2000; trial++ {
		a := s.Float64()*60 - 5
		b := s.Float64()*60 - 5
		t0, t1 := math.Min(a, b), math.Max(a, b)
		value := 1 + s.Float64()
		got := make([]float64, batches)
		want := make([]float64, batches)
		accumulate(got, start, batchLen, batches, t0, t1, value)
		accumulateRef(want, start, batchLen, batches, t0, t1, value)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d span [%g,%g): batch %d got %g want %g", trial, t0, t1, i, got[i], want[i])
			}
		}
	}
}

// TestAccumulateConservesArea checks the invariant the estimators rely
// on: the batch areas of a span clipped to the window sum to the
// clipped span length times the value.
func TestAccumulateConservesArea(t *testing.T) {
	const (
		start    = 0.0
		batchLen = 2.5
		batches  = 4
	)
	end := start + batchLen*float64(batches)
	spans := [][2]float64{{-3, -1}, {-1, 1}, {0.5, 0.6}, {1, 9}, {-2, 14}, {9.9, 12}, {10, 12}}
	for _, sp := range spans {
		out := make([]float64, batches)
		accumulate(out, start, batchLen, batches, sp[0], sp[1], 2)
		sum := 0.0
		for _, v := range out {
			sum += v
		}
		want := 2 * math.Max(0, math.Min(sp[1], end)-math.Max(sp[0], start))
		if math.Abs(sum-want) > 1e-12 {
			t.Errorf("span [%g,%g): total area %g want %g", sp[0], sp[1], sum, want)
		}
	}
}
