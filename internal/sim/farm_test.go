package sim

import (
	"reflect"
	"testing"

	"xbar/internal/core"
)

func farmSwitch() core.Switch {
	return core.Switch{N1: 8, N2: 8, Classes: []core.Class{
		{Name: "p1", A: 1, Alpha: 0.08, Mu: 1},
		{Name: "b1", A: 1, Alpha: 0.01, Beta: 0.01, Mu: 1},
		{Name: "w2", A: 2, Alpha: 0.001, Mu: 1},
	}}
}

// TestFarmDeterministicAcrossWorkers pins the farm's headline
// guarantee: for a fixed (Config, Reps), the pooled result is
// bit-identical regardless of worker count — replication i's
// substream and the merge order never depend on scheduling.
func TestFarmDeterministicAcrossWorkers(t *testing.T) {
	fc := FarmConfig{
		Config: Config{Switch: farmSwitch(), Seed: 99, Warmup: 50, Horizon: 600},
		Reps:   6,
	}
	var ref *FarmResult
	for _, w := range []int{1, 2, 3, 6, 16} {
		fc.Workers = w
		res, err := Farm(fc)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("workers=%d: farm result differs from workers=1 result", w)
		}
	}
}

// TestFarmDeterministicAcrossRuns pins run-to-run reproducibility of
// both Run and Farm for a fixed seed.
func TestFarmDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Switch: farmSwitch(), Seed: 4, Warmup: 50, Horizon: 600}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("Run is not reproducible for a fixed seed")
	}
	fc := FarmConfig{Config: cfg, Reps: 4, Workers: 4}
	f1, err := Farm(fc)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Farm(fc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Error("Farm is not reproducible for a fixed seed")
	}
}

// TestFarmPoolsEveryReplication checks the pooled event count and
// interval tightening: R replications pool R*Batches batch means, so
// the standard error must shrink against a single replication's.
func TestFarmPoolsEveryReplication(t *testing.T) {
	cfg := Config{Switch: farmSwitch(), Seed: 21, Warmup: 50, Horizon: 600}
	single, err := Farm(FarmConfig{Config: cfg, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Farm(FarmConfig{Config: cfg, Reps: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Events <= single.Events {
		t.Errorf("pooled farm events %d not above single replication %d", pooled.Events, single.Events)
	}
	if s, p := single.MeanOccupancy.SE, pooled.MeanOccupancy.SE; !(p < s) {
		t.Errorf("pooling 16 replications did not tighten SE: single %g pooled %g", s, p)
	}
}

func TestFarmRejectsBadReps(t *testing.T) {
	_, err := Farm(FarmConfig{Config: Config{Switch: farmSwitch(), Horizon: 10}, Reps: 0})
	if err == nil {
		t.Fatal("Farm accepted Reps=0")
	}
}

// TestValidateAgainstAnalytic is the farm-vs-analytic safety net: on
// a moderate fabric every pooled estimate must sit within 4 sigma of
// the product-form solution (the CI job gates at 3 sigma with more
// replications; 4 keeps this unit test's false-failure rate
// negligible while still catching any real estimator bug, which
// shows up tens of sigma out).
func TestValidateAgainstAnalytic(t *testing.T) {
	v, err := Validate(FarmConfig{
		Config: Config{Switch: farmSwitch(), Seed: 12, Warmup: 100, Horizon: 2000},
		Reps:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Measures) == 0 {
		t.Fatal("validation produced no measures")
	}
	if v.MaxAbsZ > 4 {
		for _, m := range v.Measures {
			t.Logf("class %d %s: sim %.6g analytic %.6g z %.2f", m.Class, m.Name, m.Sim, m.Analytic, m.Z)
		}
		t.Errorf("max |z| = %.2f exceeds 4", v.MaxAbsZ)
	}
}

// TestCalendarQueueMatchesDefault pins that the calendar departure
// schedule reproduces the default schedule's results exactly on both
// the flat-schedule regime and the heap regime.
func TestCalendarQueueMatchesDefault(t *testing.T) {
	configs := []Config{
		{Switch: farmSwitch(), Seed: 31, Warmup: 50, Horizon: 600},
		{Switch: core.Switch{N1: 96, N2: 96, Classes: []core.Class{
			{Name: "p", A: 1, Alpha: 0.006, Mu: 1},
		}}, Seed: 31, Warmup: 20, Horizon: 200},
	}
	for ci, cfg := range configs {
		def, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		cfg.CalendarQueue = true
		cal, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d (calendar): %v", ci, err)
		}
		if !reflect.DeepEqual(def, cal) {
			t.Errorf("config %d: calendar-queue result differs from default schedule", ci)
		}
	}
}
