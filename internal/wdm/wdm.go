// Package wdm models wavelength-division multiplexed all-optical
// paths — the transmission layer beneath the paper's optical crossbar
// vision. A lightpath crosses L links, each carrying W wavelengths.
// Without wavelength converters at intermediate nodes, the SAME
// wavelength index must be idle on every hop (the wavelength
// continuity constraint, the optical analogue of the paper's
// "no buffering, no conversion at intermediate nodes" stance); with
// converters, each hop independently needs any free wavelength and
// every link behaves as a W-server Erlang loss group.
//
// The package provides the two classical analytical treatments — the
// per-link Erlang-B bound for converter-equipped paths and the
// Barry–Humblet independence approximation for continuity-constrained
// paths — plus an exact event-driven simulator with first-fit and
// random wavelength assignment, so the conversion gain and the
// assignment-policy gap can be measured rather than assumed.
package wdm

import (
	"fmt"
	"math"

	"xbar/internal/eventq"
	"xbar/internal/floats"
	"xbar/internal/link"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Path is a chain of L links with W wavelengths each, offered one
// Poisson stream of lightpath requests end to end plus independent
// Poisson cross-traffic on each link.
type Path struct {
	// L is the number of hops.
	L int
	// W is the number of wavelengths per link.
	W int
	// Rate is the Poisson arrival rate of end-to-end requests.
	Rate float64
	// CrossRate is the arrival rate of single-hop cross-traffic on
	// each link (independent per link), competing for wavelengths.
	CrossRate float64
	// Mu is the teardown rate of every circuit.
	Mu float64
}

// Validate checks the path.
func (p Path) Validate() error {
	if p.L < 1 || p.W < 1 {
		return fmt.Errorf("wdm: path needs L >= 1, W >= 1, got L=%d W=%d", p.L, p.W)
	}
	if p.Rate <= 0 || p.Mu <= 0 {
		return fmt.Errorf("wdm: rate %v, mu %v", p.Rate, p.Mu)
	}
	if p.CrossRate < 0 {
		return fmt.Errorf("wdm: negative cross rate %v", p.CrossRate)
	}
	return nil
}

// LinkUtilization returns the approximate busy fraction p of one
// wavelength on one link, from the per-link carried load under an
// Erlang-B thinning of both streams (used by the analytical
// approximations).
func (p Path) LinkUtilization() float64 {
	offered := (p.Rate + p.CrossRate) / p.Mu
	b := link.ErlangB(p.W, offered)
	return offered * (1 - b) / float64(p.W)
}

// ConversionBlocking returns the end-to-end blocking of a
// converter-equipped path under the standard independence
// (reduced-load-free, single pass) approximation: each link blocks a
// request with its Erlang-B probability, independently,
//
//	B = 1 - (1 - E_B(W, rho_link))^L .
func (p Path) ConversionBlocking() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	rho := (p.Rate + p.CrossRate) / p.Mu
	bl := link.ErlangB(p.W, rho)
	return 1 - math.Pow(1-bl, float64(p.L)), nil
}

// ContinuityBlocking returns the Barry–Humblet independence
// approximation for a path WITHOUT converters: a given wavelength is
// free on one link with probability 1-p (p the link utilization), so
// it is free end-to-end with probability (1-p)^L, and the request
// blocks when no wavelength survives:
//
//	B = (1 - (1-p)^L)^W .
func (p Path) ContinuityBlocking() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	u := p.LinkUtilization()
	free := math.Pow(1-u, float64(p.L))
	return math.Pow(1-free, float64(p.W)), nil
}

// Assignment is the wavelength selection policy for continuity paths.
type Assignment int

const (
	// FirstFit picks the lowest-indexed wavelength free on every hop —
	// the packing policy that concentrates load on low indices.
	FirstFit Assignment = iota
	// RandomFit picks uniformly among the end-to-end free wavelengths.
	RandomFit
)

func (a Assignment) String() string {
	switch a {
	case FirstFit:
		return "first-fit"
	case RandomFit:
		return "random-fit"
	default:
		return fmt.Sprintf("Assignment(%d)", int(a))
	}
}

// SimConfig parameterizes a simulation run.
type SimConfig struct {
	// Converters, when true, relaxes wavelength continuity: each hop
	// independently uses any free wavelength.
	Converters bool
	// Assignment selects the wavelength policy (continuity mode; with
	// converters each hop is assigned independently by the same rule).
	Assignment Assignment
	Seed       uint64
	Warmup     float64
	Horizon    float64
	Batches    int
}

// Result reports a simulation.
type Result struct {
	// EndToEndBlocking is the blocking of the full-path stream.
	EndToEndBlocking stats.CI
	// CrossBlocking is the blocking of the single-hop cross-traffic
	// (averaged over links).
	CrossBlocking stats.CI
	// Utilization is the time-average busy fraction of all
	// wavelength-link pairs.
	Utilization float64
	// Offered counts measured end-to-end requests.
	Offered int64
	// Events counts processed events.
	Events int64
}

type teardown struct {
	// hops and lambdas record the (link, wavelength) pairs held
	// (single entry for cross traffic).
	hops      []int
	lambdas   []int
	crossLink int // -1 for end-to-end circuits
}

// Simulate runs the path at event level.
func Simulate(p Path, cfg SimConfig) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("wdm: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("wdm: need >= 2 batches")
	}
	if cfg.Assignment != FirstFit && cfg.Assignment != RandomFit {
		return nil, fmt.Errorf("wdm: unknown assignment %v", cfg.Assignment)
	}

	stream := rng.NewStream(cfg.Seed)
	// busy[l][w]: wavelength w on link l in use.
	busy := make([][]bool, p.L)
	for l := range busy {
		busy[l] = make([]bool, p.W)
	}
	busyCount := 0

	start, end := cfg.Warmup, cfg.Warmup+cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	type counts struct{ offered, blocked int64 }
	e2e := make([]counts, batches)
	cross := make([]counts, batches)
	utilArea := make([]float64, batches)
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}

	var deps eventq.Queue[teardown]
	now := 0.0
	var events int64
	nextE2E := stream.Exp(p.Rate)
	nextCross := math.Inf(1)
	if p.CrossRate > 0 {
		nextCross = stream.Exp(p.CrossRate * float64(p.L))
	}
	advance := func(t float64) {
		t1 := math.Min(t, end)
		if t1 > now && now < end {
			util := float64(busyCount) / float64(p.L*p.W)
			for cur := math.Max(now, start); cur < t1; {
				b := int((cur - start) / batchLen)
				if b < 0 || b >= batches {
					break
				}
				bEnd := start + batchLen*float64(b+1)
				seg := math.Min(t1, bEnd)
				utilArea[b] += util * (seg - cur)
				cur = seg
			}
		}
		now = t
	}

	freeScratch := make([]int, 0, p.W)
	pickWavelength := func(l int) int {
		// One hop, any free wavelength under the assignment rule.
		freeScratch = freeScratch[:0]
		for w := 0; w < p.W; w++ {
			if !busy[l][w] {
				freeScratch = append(freeScratch, w)
			}
		}
		if len(freeScratch) == 0 {
			return -1
		}
		if cfg.Assignment == FirstFit {
			return freeScratch[0]
		}
		return freeScratch[stream.Intn(len(freeScratch))]
	}

	for {
		t := nextE2E
		kind := 0 // 0 e2e arrival, 1 cross arrival, 2 teardown
		if nextCross < t {
			t, kind = nextCross, 1
		}
		if at, ok := deps.PeekTime(); ok && at < t {
			t, kind = at, 2
		}
		if t >= end {
			advance(end)
			break
		}
		advance(t)
		events++
		switch kind {
		case 2:
			_, d := deps.Pop()
			for i, l := range d.hops {
				busy[l][d.lambdas[i]] = false
			}
			busyCount -= len(d.hops)
		case 1:
			nextCross = now + stream.Exp(p.CrossRate*float64(p.L))
			l := stream.Intn(p.L)
			b := batchOf(now)
			if b >= 0 {
				cross[b].offered++
			}
			w := pickWavelength(l)
			if w < 0 {
				if b >= 0 {
					cross[b].blocked++
				}
				continue
			}
			busy[l][w] = true
			busyCount++
			deps.Push(now+stream.Exp(p.Mu), teardown{
				hops: []int{l}, lambdas: []int{w}, crossLink: l,
			})
		case 0:
			nextE2E = now + stream.Exp(p.Rate)
			b := batchOf(now)
			if b >= 0 {
				e2e[b].offered++
			}
			hops := make([]int, p.L)
			lambdas := make([]int, p.L)
			ok := true
			if cfg.Converters {
				// Per-hop independent assignment; the setup is atomic,
				// so tentative marks are rolled back on failure.
				marked := 0
				for l := 0; l < p.L; l++ {
					w := pickWavelength(l)
					if w < 0 {
						ok = false
						break
					}
					hops[l] = l
					lambdas[l] = w
					busy[l][w] = true
					marked++
				}
				if !ok {
					for l := 0; l < marked; l++ {
						busy[l][lambdas[l]] = false
					}
				}
			} else {
				// Continuity: wavelength free on every hop.
				freeScratch = freeScratch[:0]
				for w := 0; w < p.W; w++ {
					freeAll := true
					for l := 0; l < p.L; l++ {
						if busy[l][w] {
							freeAll = false
							break
						}
					}
					if freeAll {
						freeScratch = append(freeScratch, w)
					}
				}
				if len(freeScratch) == 0 {
					ok = false
				} else {
					var w int
					if cfg.Assignment == FirstFit {
						w = freeScratch[0]
					} else {
						w = freeScratch[stream.Intn(len(freeScratch))]
					}
					for l := 0; l < p.L; l++ {
						hops[l] = l
						lambdas[l] = w
						busy[l][w] = true
					}
				}
			}
			if !ok {
				if b >= 0 {
					e2e[b].blocked++
				}
				continue
			}
			busyCount += p.L
			deps.Push(now+stream.Exp(p.Mu), teardown{
				hops: hops, lambdas: lambdas, crossLink: -1,
			})
		}
	}

	ratioCI := func(cs []counts) stats.CI {
		var ratios []float64
		for _, c := range cs {
			if c.offered > 0 {
				ratios = append(ratios, float64(c.blocked)/float64(c.offered))
			}
		}
		if len(ratios) < 2 {
			return stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
		}
		return stats.BatchMeans(ratios, 0.95)
	}
	utilB := make([]float64, batches)
	var offered int64
	for b := 0; b < batches; b++ {
		utilB[b] = utilArea[b] / batchLen
		offered += e2e[b].offered
	}
	return &Result{
		EndToEndBlocking: ratioCI(e2e),
		CrossBlocking:    ratioCI(cross),
		Utilization:      stats.BatchMeans(utilB, 0.95).Mean,
		Offered:          offered,
		Events:           events,
	}, nil
}

// ConversionGain returns the ratio of continuity-constrained blocking
// to converter-equipped blocking under the analytical approximations —
// the classical measure of what converters buy.
func ConversionGain(p Path) (float64, error) {
	nc, err := p.ContinuityBlocking()
	if err != nil {
		return 0, err
	}
	c, err := p.ConversionBlocking()
	if err != nil {
		return 0, err
	}
	if floats.Zero(c) {
		return math.Inf(1), nil
	}
	return nc / c, nil
}
