package wdm

import (
	"math"
	"testing"

	"xbar/internal/link"
)

func TestValidate(t *testing.T) {
	good := Path{L: 3, W: 8, Rate: 1, Mu: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Path{
		{L: 0, W: 8, Rate: 1, Mu: 1},
		{L: 3, W: 0, Rate: 1, Mu: 1},
		{L: 3, W: 8, Rate: 0, Mu: 1},
		{L: 3, W: 8, Rate: 1, Mu: 0},
		{L: 3, W: 8, Rate: 1, Mu: 1, CrossRate: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid path accepted", i)
		}
	}
}

// TestSingleHopEqualsErlangB: on one hop both modes are a plain
// W-server loss group, and the simulated blocking matches Erlang-B.
func TestSingleHopEqualsErlangB(t *testing.T) {
	p := Path{L: 1, W: 6, Rate: 4, Mu: 1}
	want := link.ErlangB(6, 4)
	cb, err := p.ConversionBlocking()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cb-want) > 1e-12 {
		t.Errorf("conversion analytic %v, Erlang-B %v", cb, want)
	}
	for _, conv := range []bool{false, true} {
		res, err := Simulate(p, SimConfig{
			Converters: conv, Seed: 1, Warmup: 1000, Horizon: 40000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.EndToEndBlocking.Mean-want) > 2*res.EndToEndBlocking.HalfWidth {
			t.Errorf("converters=%v: simulated %v vs Erlang-B %v",
				conv, res.EndToEndBlocking, want)
		}
	}
}

// TestConvertersHelp: on a multi-hop path with cross traffic, the
// continuity constraint blocks strictly more than conversion, in both
// the approximations and the simulation.
func TestConvertersHelp(t *testing.T) {
	p := Path{L: 4, W: 8, Rate: 2, CrossRate: 2.5, Mu: 1}
	nc, err := p.ContinuityBlocking()
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.ConversionBlocking()
	if err != nil {
		t.Fatal(err)
	}
	if nc <= c {
		t.Errorf("analytic: continuity %v should exceed conversion %v", nc, c)
	}
	gain, err := ConversionGain(p)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 1 {
		t.Errorf("conversion gain %v, want > 1", gain)
	}
	simNC, err := Simulate(p, SimConfig{Seed: 2, Warmup: 2000, Horizon: 60000})
	if err != nil {
		t.Fatal(err)
	}
	simC, err := Simulate(p, SimConfig{Converters: true, Seed: 3, Warmup: 2000, Horizon: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if simNC.EndToEndBlocking.Mean <= simC.EndToEndBlocking.Mean {
		t.Errorf("simulated: continuity %v should exceed conversion %v",
			simNC.EndToEndBlocking.Mean, simC.EndToEndBlocking.Mean)
	}
}

// TestBarryHumbletTracksSimulation: the independence approximation is
// in the right regime (same order) for a moderately loaded path with
// random-fit assignment (first-fit packs wavelengths and beats the
// approximation).
func TestBarryHumbletTracksSimulation(t *testing.T) {
	p := Path{L: 3, W: 8, Rate: 1.5, CrossRate: 3.0, Mu: 1}
	want, err := p.ContinuityBlocking()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(p, SimConfig{
		Assignment: RandomFit, Seed: 5, Warmup: 2000, Horizon: 120000,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.EndToEndBlocking.Mean
	if got > 4*want || got < want/4 {
		t.Errorf("simulated %v vs Barry-Humblet %v: more than 4x apart", got, want)
	}
}

// TestFirstFitBeatsRandom: wavelength packing reduces continuity
// blocking — the classical first-fit result.
func TestFirstFitBeatsRandom(t *testing.T) {
	p := Path{L: 4, W: 8, Rate: 1.5, CrossRate: 3.0, Mu: 1}
	ff, err := Simulate(p, SimConfig{Assignment: FirstFit, Seed: 6, Warmup: 2000, Horizon: 120000})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Simulate(p, SimConfig{Assignment: RandomFit, Seed: 7, Warmup: 2000, Horizon: 120000})
	if err != nil {
		t.Fatal(err)
	}
	if ff.EndToEndBlocking.Mean >= rf.EndToEndBlocking.Mean {
		t.Errorf("first-fit %v should block less than random %v",
			ff.EndToEndBlocking.Mean, rf.EndToEndBlocking.Mean)
	}
}

// TestLongerPathsBlockMore under continuity.
func TestLongerPathsBlockMore(t *testing.T) {
	prevAnalytic, prevSim := -1.0, -1.0
	for _, l := range []int{1, 2, 4} {
		p := Path{L: l, W: 6, Rate: 1, CrossRate: 2, Mu: 1}
		a, err := p.ContinuityBlocking()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(p, SimConfig{Seed: uint64(l), Warmup: 1000, Horizon: 40000})
		if err != nil {
			t.Fatal(err)
		}
		if a <= prevAnalytic {
			t.Errorf("L=%d: analytic blocking %v not increasing", l, a)
		}
		if res.EndToEndBlocking.Mean <= prevSim {
			t.Errorf("L=%d: simulated blocking %v not increasing", l, res.EndToEndBlocking.Mean)
		}
		prevAnalytic, prevSim = a, res.EndToEndBlocking.Mean
	}
}

// TestMoreWavelengthsReduceBlocking.
func TestMoreWavelengthsReduceBlocking(t *testing.T) {
	prev := 2.0
	for _, w := range []int{4, 8, 16} {
		p := Path{L: 3, W: w, Rate: 2, CrossRate: 2, Mu: 1}
		b, err := p.ContinuityBlocking()
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Errorf("W=%d: blocking %v not decreasing", w, b)
		}
		prev = b
	}
}

func TestSimulateValidation(t *testing.T) {
	p := Path{L: 2, W: 4, Rate: 1, Mu: 1}
	if _, err := Simulate(p, SimConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Simulate(p, SimConfig{Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch accepted")
	}
	if _, err := Simulate(p, SimConfig{Horizon: 10, Assignment: Assignment(9)}); err == nil {
		t.Error("unknown assignment accepted")
	}
	if _, err := Simulate(Path{}, SimConfig{Horizon: 10}); err == nil {
		t.Error("invalid path accepted")
	}
}

func TestAssignmentString(t *testing.T) {
	if FirstFit.String() != "first-fit" || RandomFit.String() != "random-fit" {
		t.Error("assignment names wrong")
	}
	if Assignment(9).String() != "Assignment(9)" {
		t.Error("unknown assignment name wrong")
	}
}

func TestDeterminismAndConservation(t *testing.T) {
	p := Path{L: 3, W: 4, Rate: 1.5, CrossRate: 1, Mu: 1}
	cfg := SimConfig{Seed: 9, Warmup: 500, Horizon: 20000}
	a, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Offered != b.Offered {
		t.Error("same seed diverged")
	}
	if a.Utilization <= 0 || a.Utilization >= 1 {
		t.Errorf("utilization %v out of (0,1)", a.Utilization)
	}
}
