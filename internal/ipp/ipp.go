// Package ipp implements the Interrupted Poisson Process — the
// canonical "real" bursty source of teletraffic practice (Kuczura's
// overflow model, in the lineage of Wilkinson [33] that the paper
// cites as the motivation for peaky traffic) — and the moment-matching
// step that approximates it by a BPP stream.
//
// An IPP alternates between an ON phase (exponential sojourn, Poisson
// arrivals at rate Lambda) and a silent OFF phase (exponential
// sojourn). It is bursty by construction rather than by a
// state-dependent rate law, so it is exactly the kind of traffic the
// BPP family is meant to approximate: match the mean and the
// peakedness (variance-to-mean of busy servers on an infinite group)
// and compare blocking. The package provides the analytics, the
// matching, and a full-fabric crossbar simulator driven by an IPP so
// the approximation can be judged against the paper's model.
package ipp

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/core"
	"xbar/internal/dist"
	"xbar/internal/eventq"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Source is an interrupted Poisson process.
type Source struct {
	// Lambda is the arrival rate during the ON phase.
	Lambda float64
	// OnToOff is the rate of leaving ON (mean ON duration 1/OnToOff).
	OnToOff float64
	// OffToOn is the rate of leaving OFF (mean OFF duration 1/OffToOn).
	OffToOn float64
}

// Validate checks the rates.
func (s Source) Validate() error {
	if s.Lambda <= 0 || s.OnToOff <= 0 || s.OffToOn <= 0 {
		return fmt.Errorf("ipp: rates must be positive: %+v", s)
	}
	return nil
}

// POn returns the stationary probability of the ON phase.
func (s Source) POn() float64 { return s.OffToOn / (s.OnToOff + s.OffToOn) }

// MeanRate returns the long-run arrival rate Lambda * P(on).
func (s Source) MeanRate() float64 { return s.Lambda * s.POn() }

// Peakedness returns the variance-to-mean ratio of the number of busy
// servers when the source is offered to an infinite server group with
// service rate mu (Kuczura):
//
//	Z = 1 + Lambda * c1 / ((c1 + c2) (mu + c1 + c2)),
//
// with c1 = OnToOff, c2 = OffToOn. Z > 1 always: an IPP is peaky.
func (s Source) Peakedness(mu float64) float64 {
	c1, c2 := s.OnToOff, s.OffToOn
	return 1 + s.Lambda*c1/((c1+c2)*(mu+c1+c2))
}

// FitBPP returns the BPP source with the same infinite-server mean and
// peakedness under service rate mu — the paper's recipe for feeding
// real bursty traffic into the product-form model.
func (s Source) FitBPP(mu float64) (dist.BPP, error) {
	if err := s.Validate(); err != nil {
		return dist.BPP{}, err
	}
	m := s.MeanRate() / mu
	z := s.Peakedness(mu)
	return dist.FitMeanPeakedness(m, z, mu)
}

// Design builds an IPP with the given mean busy-server count m > 0 and
// peakedness z > 1 under service rate mu, using a symmetric phase
// split (equal mean ON and OFF sojourns), for which
//
//	c1 = c2 = c,  Lambda = 2 m mu,  Z = 1 + Lambda / (2 (mu + 2c)),
//
// so c is determined by z. The symmetric split reaches any
// 1 < z < 1 + m (tighter bursts need an asymmetric split).
func Design(m, z, mu float64) (Source, error) {
	if m <= 0 || z <= 1 || mu <= 0 {
		return Source{}, fmt.Errorf("ipp: Design(m=%v, z=%v, mu=%v): need m>0, z>1, mu>0", m, z, mu)
	}
	lambda := 2 * m * mu
	denom := lambda/(2*(z-1)) - mu
	if denom <= 0 {
		return Source{}, fmt.Errorf("ipp: Design: z=%v unreachable at m=%v (needs z < 1 + m)", z, m)
	}
	c := denom / 2
	return Source{Lambda: lambda, OnToOff: c, OffToOn: c}, nil
}

// Result reports a crossbar-under-IPP simulation.
type Result struct {
	// TimeNonBlocking estimates the probability a particular route is
	// idle (Rao-Blackwellized over occupancy).
	TimeNonBlocking stats.CI
	// CallBlocking is the fraction of arrivals cleared.
	CallBlocking stats.CI
	// Concurrency is the time-average number of connections.
	Concurrency stats.CI
	// Offered counts arrivals in the measured window.
	Offered int64
	// Events counts processed events.
	Events int64
}

// SimulateCrossbar drives an N1 x N2 crossbar with a single-rate
// (a = 1) IPP source: arrivals pick a uniform input and output and are
// cleared if either is busy; holding times are exponential with rate
// mu. It is the ground truth the BPP approximation is judged against.
func SimulateCrossbar(n1, n2 int, src Source, mu float64, cfg SimConfig) (*Result, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if n1 < 1 || n2 < 1 {
		return nil, fmt.Errorf("ipp: %dx%d crossbar", n1, n2)
	}
	if mu <= 0 {
		return nil, fmt.Errorf("ipp: mu = %v", mu)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("ipp: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("ipp: need >= 2 batches")
	}

	stream := rng.NewStream(cfg.Seed)
	busyIn := make([]bool, n1)
	busyOut := make([]bool, n2)
	occ := 0
	on := stream.Float64() < src.POn() // start in stationary phase mix

	start, end := cfg.Warmup, cfg.Warmup+cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	rbArea := make([]float64, batches)
	kArea := make([]float64, batches)
	offered := make([]int64, batches)
	blocked := make([]int64, batches)

	// Event clocks: next arrival (only meaningful when ON), next phase
	// flip, and a departure heap.
	var deps eventq.Queue[departure]
	nextFlip := 0.0
	if on {
		nextFlip = stream.Exp(src.OnToOff)
	} else {
		nextFlip = stream.Exp(src.OffToOn)
	}
	nextArr := math.Inf(1)
	if on {
		nextArr = stream.Exp(src.Lambda)
	}

	now := 0.0
	var events int64
	advance := func(t float64) {
		if t <= now {
			return
		}
		t0, t1 := now, math.Min(t, end)
		if t1 > start && t0 < end {
			lo := math.Max(t0, start)
			rb := float64(n1-occ) * float64(n2-occ) / (float64(n1) * float64(n2))
			for cur := lo; cur < t1; {
				b := int((cur - start) / batchLen)
				if b >= batches {
					break
				}
				bEnd := start + batchLen*float64(b+1)
				seg := math.Min(t1, bEnd)
				rbArea[b] += rb * (seg - cur)
				kArea[b] += float64(occ) * (seg - cur)
				cur = seg
			}
		}
		now = t
	}
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}

	for {
		t := nextFlip
		kind := 0 // 0 flip, 1 arrival, 2 departure
		if nextArr < t {
			t, kind = nextArr, 1
		}
		if at, ok := deps.PeekTime(); ok && at < t {
			t, kind = at, 2
		}
		if t >= end {
			advance(end)
			break
		}
		advance(t)
		events++
		switch kind {
		case 0:
			on = !on
			if on {
				nextFlip = now + stream.Exp(src.OnToOff)
				nextArr = now + stream.Exp(src.Lambda)
			} else {
				nextFlip = now + stream.Exp(src.OffToOn)
				nextArr = math.Inf(1)
			}
		case 1:
			nextArr = now + stream.Exp(src.Lambda)
			if b := batchOf(now); b >= 0 {
				offered[b]++
			}
			in := stream.Intn(n1)
			out := stream.Intn(n2)
			if busyIn[in] || busyOut[out] {
				if b := batchOf(now); b >= 0 {
					blocked[b]++
				}
				continue
			}
			busyIn[in] = true
			busyOut[out] = true
			occ++
			deps.Push(now+stream.Exp(mu), departure{in: in, out: out})
		case 2:
			_, d := deps.Pop()
			busyIn[d.in] = false
			busyOut[d.out] = false
			occ--
		}
	}

	res := &Result{Events: events}
	rbB := make([]float64, batches)
	kB := make([]float64, batches)
	var ratios []float64
	for b := 0; b < batches; b++ {
		rbB[b] = rbArea[b] / batchLen
		kB[b] = kArea[b] / batchLen
		res.Offered += offered[b]
		if offered[b] > 0 {
			ratios = append(ratios, float64(blocked[b])/float64(offered[b]))
		}
	}
	res.TimeNonBlocking = stats.BatchMeans(rbB, 0.95)
	res.Concurrency = stats.BatchMeans(kB, 0.95)
	if len(ratios) >= 2 {
		res.CallBlocking = stats.BatchMeans(ratios, 0.95)
	} else {
		res.CallBlocking = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
	}
	return res, nil
}

// SimConfig parameterizes SimulateCrossbar.
type SimConfig struct {
	Seed    uint64
	Warmup  float64
	Horizon float64
	Batches int
}

type departure struct{ in, out int }

// BPPApprox solves the crossbar analytically with the fitted BPP in
// per-route units, returning the approximation the paper's model would
// give for this IPP.
func BPPApprox(n1, n2 int, src Source, mu float64) (*core.Result, error) {
	b, err := src.FitBPP(mu)
	if err != nil {
		return nil, err
	}
	routes := combin.Perm(n1, 1) * combin.Perm(n2, 1)
	sw := core.Switch{N1: n1, N2: n2, Classes: []core.Class{{
		Name: "ipp-fit", A: 1, Alpha: b.Alpha / routes, Beta: b.Beta / routes, Mu: mu,
	}}}
	return core.Solve(sw)
}
