package ipp

import (
	"math"
	"testing"

	"xbar/internal/rng"
)

func TestSourceBasics(t *testing.T) {
	s := Source{Lambda: 2, OnToOff: 0.5, OffToOn: 1.5}
	if got, want := s.POn(), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("POn = %v, want %v", got, want)
	}
	if got, want := s.MeanRate(), 1.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate = %v, want %v", got, want)
	}
	if z := s.Peakedness(1); z <= 1 {
		t.Errorf("IPP peakedness %v, must exceed 1", z)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Source{Lambda: 0, OnToOff: 1, OffToOn: 1}).Validate(); err == nil {
		t.Error("zero lambda accepted")
	}
}

// TestPeakednessAgainstInfiniteServerSim validates the Kuczura
// peakedness formula with a direct infinite-server simulation: busy
// count mean and variance at stationarity.
func TestPeakednessAgainstInfiniteServerSim(t *testing.T) {
	s := Source{Lambda: 4, OnToOff: 0.8, OffToOn: 1.2}
	const mu = 1.0
	wantMean := s.MeanRate() / mu
	wantZ := s.Peakedness(mu)

	// Event-driven M(t)/M/inf: phase flips, arrivals while ON,
	// exponential departures. Time-average busy count and its second
	// moment.
	stream := rng.NewStream(5)
	on := true
	busy := 0
	var deps []float64 // departure times, scanned linearly (small k)
	nextFlip := stream.Exp(s.OnToOff)
	nextArr := stream.Exp(s.Lambda)
	now := 0.0
	const horizon = 300000.0
	var area, area2, measured float64
	const warmup = 1000.0
	for now < horizon {
		t := nextFlip
		kind := 0
		if on && nextArr < t {
			t, kind = nextArr, 1
		}
		// earliest departure
		di := -1
		for i, d := range deps {
			if d < t {
				t, kind, di = d, 2, i
			}
		}
		if t > horizon {
			t = horizon
			kind = -1
		}
		if now >= warmup {
			dt := t - now
			area += float64(busy) * dt
			area2 += float64(busy) * float64(busy) * dt
			measured += dt
		}
		now = t
		switch kind {
		case -1:
		case 0:
			on = !on
			if on {
				nextFlip = now + stream.Exp(s.OnToOff)
				nextArr = now + stream.Exp(s.Lambda)
			} else {
				nextFlip = now + stream.Exp(s.OffToOn)
				nextArr = math.Inf(1)
			}
		case 1:
			nextArr = now + stream.Exp(s.Lambda)
			busy++
			deps = append(deps, now+stream.Exp(mu))
		case 2:
			deps[di] = deps[len(deps)-1]
			deps = deps[:len(deps)-1]
			busy--
		}
	}
	mean := area / measured
	variance := area2/measured - mean*mean
	z := variance / mean
	if math.Abs(mean-wantMean) > 0.03*wantMean {
		t.Errorf("infinite-server mean %v, formula %v", mean, wantMean)
	}
	if math.Abs(z-wantZ) > 0.05*wantZ {
		t.Errorf("infinite-server peakedness %v, formula %v", z, wantZ)
	}
}

func TestDesignRoundTrip(t *testing.T) {
	for _, c := range []struct{ m, z float64 }{{1, 1.3}, {2, 1.8}, {0.5, 1.2}} {
		s, err := Design(c.m, c.z, 1)
		if err != nil {
			t.Fatalf("Design(%v, %v): %v", c.m, c.z, err)
		}
		if got := s.MeanRate(); math.Abs(got-c.m) > 1e-9 {
			t.Errorf("Design(%v, %v): mean rate %v", c.m, c.z, got)
		}
		if got := s.Peakedness(1); math.Abs(got-c.z) > 1e-9 {
			t.Errorf("Design(%v, %v): peakedness %v", c.m, c.z, got)
		}
	}
	if _, err := Design(1, 3, 1); err == nil {
		t.Error("unreachable z accepted")
	}
	if _, err := Design(1, 0.5, 1); err == nil {
		t.Error("z <= 1 accepted")
	}
}

func TestFitBPPMatchesMoments(t *testing.T) {
	s := Source{Lambda: 3, OnToOff: 1, OffToOn: 1}
	b, err := s.FitBPP(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Mean()-s.MeanRate()) > 1e-9 {
		t.Errorf("fitted mean %v, want %v", b.Mean(), s.MeanRate())
	}
	if math.Abs(b.Peakedness()-s.Peakedness(1)) > 1e-9 {
		t.Errorf("fitted Z %v, want %v", b.Peakedness(), s.Peakedness(1))
	}
}

// TestBPPApproximationQuality is the experiment the BPP family exists
// for: blocking of a crossbar under a genuine on/off bursty source vs
// the product-form model with moment-matched BPP traffic. The
// approximation should land within a few percent on time congestion.
func TestBPPApproximationQuality(t *testing.T) {
	src, err := Design(1.5, 1.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	approx, err := BPPApprox(n, n, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateCrossbar(n, n, src, 1, SimConfig{Seed: 9, Warmup: 5000, Horizon: 200000})
	if err != nil {
		t.Fatal(err)
	}
	simB := 1 - res.TimeNonBlocking.Mean
	if rel := math.Abs(simB-approx.Blocking[0]) / approx.Blocking[0]; rel > 0.10 {
		t.Errorf("BPP approximation off by %.1f%%: sim %v vs BPP %v",
			rel*100, simB, approx.Blocking[0])
	}
	if math.Abs(res.Concurrency.Mean-approx.Concurrency[0]) > 0.1*approx.Concurrency[0] {
		t.Errorf("concurrency: sim %v vs BPP %v", res.Concurrency.Mean, approx.Concurrency[0])
	}
	if res.Offered == 0 {
		t.Error("no offered traffic")
	}
}

// TestSimulateCrossbarPoissonLimit: with a nearly always-ON source the
// IPP degenerates to Poisson and must match the product form tightly.
func TestSimulateCrossbarPoissonLimit(t *testing.T) {
	src := Source{Lambda: 1.01, OnToOff: 0.01, OffToOn: 1000}
	// P(on) ~ 0.99999, mean rate ~ 1.01 -> ~Poisson(1.01).
	approx, err := BPPApprox(5, 5, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateCrossbar(5, 5, src, 1, SimConfig{Seed: 2, Warmup: 2000, Horizon: 100000})
	if err != nil {
		t.Fatal(err)
	}
	simB := 1 - res.TimeNonBlocking.Mean
	if math.Abs(simB-approx.Blocking[0]) > 2*res.TimeNonBlocking.HalfWidth+0.01*approx.Blocking[0] {
		t.Errorf("Poisson limit: sim %v vs analytic %v", simB, approx.Blocking[0])
	}
}

func TestSimulateValidation(t *testing.T) {
	good := Source{Lambda: 1, OnToOff: 1, OffToOn: 1}
	if _, err := SimulateCrossbar(0, 4, good, 1, SimConfig{Horizon: 10}); err == nil {
		t.Error("bad dims accepted")
	}
	if _, err := SimulateCrossbar(4, 4, good, 0, SimConfig{Horizon: 10}); err == nil {
		t.Error("bad mu accepted")
	}
	if _, err := SimulateCrossbar(4, 4, good, 1, SimConfig{Horizon: 0}); err == nil {
		t.Error("bad horizon accepted")
	}
	if _, err := SimulateCrossbar(4, 4, good, 1, SimConfig{Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch accepted")
	}
	if _, err := SimulateCrossbar(4, 4, Source{}, 1, SimConfig{Horizon: 10}); err == nil {
		t.Error("invalid source accepted")
	}
}

func TestCallCongestionExceedsTimeCongestion(t *testing.T) {
	src, err := Design(1.5, 1.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateCrossbar(5, 5, src, 1, SimConfig{Seed: 3, Warmup: 3000, Horizon: 120000})
	if err != nil {
		t.Fatal(err)
	}
	if res.CallBlocking.Mean <= 1-res.TimeNonBlocking.Mean {
		t.Errorf("bursty arrivals should see more blocking: call %v vs time %v",
			res.CallBlocking.Mean, 1-res.TimeNonBlocking.Mean)
	}
}
