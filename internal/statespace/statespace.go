// Package statespace builds the exact continuous-time Markov chain
// underlying the crossbar model and solves it numerically, with no
// recourse to the product form. It is the independent ground truth the
// analytical evaluators in internal/core are validated against, and it
// verifies the structural claims of Section 2 of the paper: that the
// process is reversible (detailed balance holds) and that the
// product-form pi satisfies global balance.
//
// The chain's state is k = (k_1, ..., k_R) with k.A <= min(N1, N2).
// Transition intensities (paper Section 2):
//
//	q(k, k + 1_r) = P(N1 - k.A, a_r) P(N2 - k.A, a_r) lambda_r(k_r)
//	q(k, k - 1_r) = k_r mu_r
//
// where the permutation factors count the ordered routes that do not
// interfere with connections in progress. (For a_r = 1 this is the
// paper's (N1 - k.A)(N2 - k.A) lambda_r.)
package statespace

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/core"
)

// AdmissionPolicy decides whether a class-r request arriving in state
// k may enter the fabric (it is evaluated before port availability).
// A nil policy admits everything — the paper's model. Policies break
// reversibility in general, which is exactly why this package solves
// the global balance equations instead of assuming the product form.
type AdmissionPolicy func(k []int, r int) bool

// Chain is the explicit CTMC for a switch.
type Chain struct {
	Switch core.Switch
	// Policy, when non-nil, gates class arrivals (trunk reservation
	// and similar admission controls).
	Policy AdmissionPolicy
	// States enumerates Gamma(N) in lexicographic order.
	States [][]int
	// Index maps a state (encoded by stateKey) to its position in
	// States.
	index map[string]int
}

// NewChain enumerates the state space. It returns an error for invalid
// switches or state spaces larger than maxStates (guarding against
// accidentally exponential inputs).
func NewChain(sw core.Switch, maxStates int) (*Chain, error) {
	return NewChainWithPolicy(sw, maxStates, nil)
}

// NewChainWithPolicy enumerates the state space of a switch operated
// under an admission policy. The state space is unchanged (states the
// policy makes unreachable simply carry zero probability).
func NewChainWithPolicy(sw core.Switch, maxStates int, policy AdmissionPolicy) (*Chain, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	if n := sw.StateCount(); n > int64(maxStates) {
		return nil, fmt.Errorf("statespace: %d states exceeds limit %d", n, maxStates)
	}
	c := &Chain{Switch: sw, Policy: policy, index: make(map[string]int)}
	sw.WalkStates(func(k []int) {
		kk := make([]int, len(k))
		copy(kk, k)
		c.index[stateKey(kk)] = len(c.States)
		c.States = append(c.States, kk)
	})
	return c, nil
}

func stateKey(k []int) string {
	b := make([]byte, 0, len(k)*3)
	for _, v := range k {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

// StateIndex returns the position of state k in States, or -1 if k is
// not feasible.
func (c *Chain) StateIndex(k []int) int {
	if i, ok := c.index[stateKey(k)]; ok {
		return i
	}
	return -1
}

// Rate returns the transition intensity from state k for class r in
// direction dir (+1 arrival acceptance, -1 departure), or 0 when the
// destination is infeasible.
func (c *Chain) Rate(k []int, r, dir int) float64 {
	sw := c.Switch
	cl := sw.Classes[r]
	switch dir {
	case +1:
		if c.Policy != nil && !c.Policy(k, r) {
			return 0
		}
		occ := sw.OccupancyOf(k)
		if occ+cl.A > sw.MinN() {
			return 0
		}
		free := combin.Perm(sw.N1-occ, cl.A) * combin.Perm(sw.N2-occ, cl.A)
		return free * cl.Rate(k[r])
	case -1:
		if k[r] == 0 {
			return 0
		}
		return float64(k[r]) * cl.Mu
	default:
		//lint:allow libpanic exhaustive switch over the internal +1/-1 direction enum
		panic(fmt.Sprintf("statespace: Rate direction %d", dir))
	}
}

// Generator returns the dense infinitesimal generator matrix Q
// (row-major, size n x n with n = len(States)): Q[i][j] is the
// intensity from state i to state j, and rows sum to zero.
func (c *Chain) Generator() [][]float64 {
	n := len(c.States)
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for i, k := range c.States {
		dest := make([]int, len(k))
		for r := range c.Switch.Classes {
			for _, dir := range []int{+1, -1} {
				rate := c.Rate(k, r, dir)
				if rate == 0 { //lint:allow floatcmp a structurally absent transition has exactly zero rate
					continue
				}
				copy(dest, k)
				dest[r] += dir
				j := c.StateIndex(dest)
				if j < 0 {
					continue
				}
				q[i][j] += rate
				q[i][i] -= rate
			}
		}
	}
	return q
}

// Stationary solves pi Q = 0, sum pi = 1 by dense Gaussian elimination
// with partial pivoting, replacing the last balance equation with the
// normalization row. The result is the exact steady-state distribution
// with no product-form assumption.
func (c *Chain) Stationary() ([]float64, error) {
	n := len(c.States)
	q := c.Generator()
	// Build A^T x = b from x Q = 0: columns of Q become rows.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = q[j][i]
		}
	}
	// Replace the last equation by normalization.
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1
	pi, err := solveDense(a, b)
	if err != nil {
		return nil, err
	}
	for i, p := range pi {
		if p < -1e-9 {
			return nil, fmt.Errorf("statespace: negative stationary probability %v at state %v", p, c.States[i])
		}
		if p < 0 {
			pi[i] = 0
		}
	}
	return pi, nil
}

// SolveLinear performs Gaussian elimination with partial pivoting on
// the system a x = b, destroying a and b. Exported for the other
// exact-chain packages (hotspot) that build their own generators.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	return solveDense(a, b)
}

// solveDense performs Gaussian elimination with partial pivoting on the
// augmented system a x = b, destroying a and b.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[p][col]) {
				p = row
			}
		}
		if a[p][col] == 0 { //lint:allow floatcmp structural singularity test after partial pivoting; conditioning is the caller's concern
			return nil, fmt.Errorf("statespace: singular system at column %d", col)
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		// Eliminate below.
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			if f == 0 { //lint:allow floatcmp skips exactly-zero elimination work
				continue
			}
			for j := col; j < n; j++ {
				a[row][j] -= f * a[col][j]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		s := b[row]
		for j := row + 1; j < n; j++ {
			s -= a[row][j] * x[j]
		}
		x[row] = s / a[row][row]
	}
	return x, nil
}

// Measures computes the performance measures from an explicit
// stationary distribution: E_r as the pi-weighted mean of k_r, and the
// non-blocking probability as the pi-weighted probability that a
// particular candidate class-r route is idle,
// P(N1-k.A, a) P(N2-k.A, a) / (P(N1,a) P(N2,a)).
func (c *Chain) Measures(pi []float64) *core.Result {
	sw := c.Switch
	res := &core.Result{
		Switch:      sw,
		Method:      "ctmc",
		NonBlocking: make([]float64, len(sw.Classes)),
		Blocking:    make([]float64, len(sw.Classes)),
		Concurrency: make([]float64, len(sw.Classes)),
	}
	for i, k := range c.States {
		occ := sw.OccupancyOf(k)
		for r, cl := range sw.Classes {
			res.Concurrency[r] += float64(k[r]) * pi[i]
			if cl.A <= sw.MinN() {
				idle := combin.Perm(sw.N1-occ, cl.A) * combin.Perm(sw.N2-occ, cl.A) /
					(combin.Perm(sw.N1, cl.A) * combin.Perm(sw.N2, cl.A))
				res.NonBlocking[r] += idle * pi[i]
			}
		}
	}
	for r, nb := range res.NonBlocking {
		res.Blocking[r] = 1 - nb
	}
	return res
}

// CallBlocking returns, per class, the probability that an arriving
// request is lost — rejected by the admission policy or cleared by
// port contention. Arrivals are weighted by the state-dependent
// intensity lambda_r(k_r), so the result is exact for BPP classes as
// well (for Poisson classes it reduces to the PASTA time average).
func (c *Chain) CallBlocking(pi []float64) []float64 {
	sw := c.Switch
	out := make([]float64, len(sw.Classes))
	for r, cl := range sw.Classes {
		num, den := 0.0, 0.0
		for i, k := range c.States {
			w := pi[i] * cl.Rate(k[r])
			if w <= 0 {
				continue
			}
			den += w
			carried := 0.0
			if (c.Policy == nil || c.Policy(k, r)) && cl.A <= sw.MinN() {
				occ := sw.OccupancyOf(k)
				carried = combin.Perm(sw.N1-occ, cl.A) * combin.Perm(sw.N2-occ, cl.A) /
					(combin.Perm(sw.N1, cl.A) * combin.Perm(sw.N2, cl.A))
			}
			num += w * (1 - carried)
		}
		if den == 0 { //lint:allow floatcmp combinatorial weights are exactly zero only when no state admits class r
			out[r] = 1
			continue
		}
		out[r] = num / den
	}
	return out
}

// DetailedBalanceResidual returns the largest relative violation of
// pi(k) q(k, k') = pi(k') q(k', k) over all transition pairs — the
// reversibility claim of Section 2 (Kelly [19] Theorem 1.3).
func (c *Chain) DetailedBalanceResidual(pi []float64) float64 {
	worst := 0.0
	dest := make([]int, len(c.Switch.Classes))
	for i, k := range c.States {
		for r := range c.Switch.Classes {
			up := c.Rate(k, r, +1)
			if up == 0 { //lint:allow floatcmp a structurally absent transition has exactly zero rate
				continue
			}
			copy(dest, k)
			dest[r]++
			j := c.StateIndex(dest)
			if j < 0 {
				continue
			}
			down := c.Rate(dest, r, -1)
			flowUp := pi[i] * up
			flowDown := pi[j] * down
			den := math.Max(math.Abs(flowUp), math.Abs(flowDown))
			if den == 0 { //lint:allow floatcmp both detailed-balance flows exactly zero: nothing to compare
				continue
			}
			if rel := math.Abs(flowUp-flowDown) / den; rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// GlobalBalanceResidual returns max_j |sum_i pi(i) Q(i,j)| normalized
// by the largest flow, i.e. how far pi is from solving pi Q = 0.
func (c *Chain) GlobalBalanceResidual(pi []float64) float64 {
	q := c.Generator()
	n := len(pi)
	worst := 0.0
	for j := 0; j < n; j++ {
		s, scale := 0.0, 0.0
		for i := 0; i < n; i++ {
			t := pi[i] * q[i][j]
			s += t
			if a := math.Abs(t); a > scale {
				scale = a
			}
		}
		if scale == 0 { //lint:allow floatcmp a row of exact zeros has no residual to normalize
			continue
		}
		if rel := math.Abs(s) / scale; rel > worst {
			worst = rel
		}
	}
	return worst
}

// ProductForm returns the paper's product-form distribution Eq. 2
// evaluated over States, for comparison with Stationary.
func (c *Chain) ProductForm() []float64 {
	sw := c.Switch
	n := len(c.States)
	w := make([]float64, n)
	logs := make([]float64, n)
	maxLog := math.Inf(-1)
	for i, k := range c.States {
		occ := sw.OccupancyOf(k)
		lg := combin.LogPerm(sw.N1, occ) + combin.LogPerm(sw.N2, occ)
		for r, cl := range sw.Classes {
			for l := 1; l <= k[r]; l++ {
				lg += math.Log(cl.Rate(l-1)) - math.Log(float64(l)*cl.Mu)
			}
		}
		logs[i] = lg
		if lg > maxLog {
			maxLog = lg
		}
	}
	sum := 0.0
	for i := range w {
		w[i] = math.Exp(logs[i] - maxLog)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
