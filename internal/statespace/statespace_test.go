package statespace

import (
	"math"
	"math/rand"
	"testing"

	"xbar/internal/core"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*s || diff <= tol*1e-3
}

func smallSwitch() core.Switch {
	return core.Switch{N1: 4, N2: 3, Classes: []core.Class{
		{A: 1, Alpha: 0.3, Mu: 1},
		{A: 2, Alpha: 0.1, Beta: 0.04, Mu: 0.8},
	}}
}

func TestStateEnumeration(t *testing.T) {
	sw := smallSwitch()
	c, err := NewChain(sw, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(c.States)) != sw.StateCount() {
		t.Fatalf("enumerated %d states, StateCount says %d", len(c.States), sw.StateCount())
	}
	// min(N1,N2)=3, a=(1,2): states k1 + 2 k2 <= 3:
	// (0,0),(1,0),(2,0),(3,0),(0,1),(1,1) = 6 states.
	if len(c.States) != 6 {
		t.Fatalf("got %d states, want 6", len(c.States))
	}
	for i, k := range c.States {
		if c.StateIndex(k) != i {
			t.Errorf("StateIndex(%v) = %d, want %d", k, c.StateIndex(k), i)
		}
	}
	if c.StateIndex([]int{9, 9}) != -1 {
		t.Error("infeasible state found in index")
	}
}

func TestStateLimit(t *testing.T) {
	if _, err := NewChain(smallSwitch(), 3); err == nil {
		t.Error("state limit not enforced")
	}
}

func TestGeneratorRowsSumToZero(t *testing.T) {
	c, err := NewChain(smallSwitch(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	q := c.Generator()
	for i, row := range q {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
		if q[i][i] > 0 {
			t.Errorf("diagonal %d is positive", i)
		}
	}
}

func TestArrivalRateMatchesPaper(t *testing.T) {
	// For a_r = 1 the acceptance intensity is (N1-k.A)(N2-k.A) lambda.
	sw := core.Switch{N1: 5, N2: 4, Classes: []core.Class{{A: 1, Alpha: 0.7, Beta: 0.1, Mu: 1}}}
	c, err := NewChain(sw, 1000)
	if err != nil {
		t.Fatal(err)
	}
	k := []int{2}
	want := float64(5-2) * float64(4-2) * (0.7 + 0.1*2)
	if got := c.Rate(k, 0, +1); !almostEqual(got, want, 1e-12) {
		t.Errorf("Rate up = %v, want %v", got, want)
	}
	if got := c.Rate(k, 0, -1); got != 2 {
		t.Errorf("Rate down = %v, want 2", got)
	}
	if got := c.Rate([]int{0}, 0, -1); got != 0 {
		t.Error("departure from empty state should be 0")
	}
	if got := c.Rate([]int{4}, 0, +1); got != 0 {
		t.Error("arrival beyond capacity should be 0")
	}
}

// TestStationaryEqualsProductForm is the reproduction's deepest check:
// the numerically solved pi Q = 0 equals the paper's Eq. 2 product
// form, state by state, over randomized models.
func TestStationaryEqualsProductForm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		sw := randomSmallSwitch(rng)
		c, err := NewChain(sw, 20000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pi, err := c.Stationary()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pf := c.ProductForm()
		for i := range pi {
			if !almostEqual(pi[i], pf[i], 1e-7) {
				t.Errorf("trial %d state %v: solved %v product-form %v (switch %+v)",
					trial, c.States[i], pi[i], pf[i], sw)
			}
		}
		if t.Failed() {
			return
		}
	}
}

// TestReversibility verifies detailed balance under the product form
// (Section 2's reversibility claim) and global balance under the
// solved distribution.
func TestReversibility(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		sw := randomSmallSwitch(rng)
		c, err := NewChain(sw, 20000)
		if err != nil {
			t.Fatal(err)
		}
		pf := c.ProductForm()
		if res := c.DetailedBalanceResidual(pf); res > 1e-10 {
			t.Errorf("trial %d: detailed balance residual %v (switch %+v)", trial, res, sw)
		}
		if res := c.GlobalBalanceResidual(pf); res > 1e-9 {
			t.Errorf("trial %d: global balance residual %v (switch %+v)", trial, res, sw)
		}
	}
}

// TestMeasuresMatchCore closes the loop: CTMC-derived measures equal
// the analytical evaluators'.
func TestMeasuresMatchCore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		sw := randomSmallSwitch(rng)
		c, err := NewChain(sw, 20000)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := c.Stationary()
		if err != nil {
			t.Fatal(err)
		}
		got := c.Measures(pi)
		want, err := core.Solve(sw)
		if err != nil {
			t.Fatal(err)
		}
		for r := range sw.Classes {
			if !almostEqual(got.NonBlocking[r], want.NonBlocking[r], 1e-7) {
				t.Errorf("trial %d: NonBlocking[%d] ctmc %v core %v (switch %+v)",
					trial, r, got.NonBlocking[r], want.NonBlocking[r], sw)
			}
			if !almostEqual(got.Concurrency[r], want.Concurrency[r], 1e-7) {
				t.Errorf("trial %d: Concurrency[%d] ctmc %v core %v (switch %+v)",
					trial, r, got.Concurrency[r], want.Concurrency[r], sw)
			}
		}
		if t.Failed() {
			return
		}
	}
}

func randomSmallSwitch(rng *rand.Rand) core.Switch {
	n1 := 2 + rng.Intn(4)
	n2 := 2 + rng.Intn(4)
	maxN := n1
	if n2 > maxN {
		maxN = n2
	}
	nClasses := 1 + rng.Intn(2)
	var classes []core.Class
	for i := 0; i < nClasses; i++ {
		a := 1 + rng.Intn(2)
		mu := 0.5 + rng.Float64()
		alpha := (0.05 + rng.Float64()*0.4) * mu
		var beta float64
		switch rng.Intn(3) {
		case 0:
		case 1:
			beta = rng.Float64() * 0.5 * mu
		case 2:
			pop := float64(maxN + 1 + rng.Intn(50))
			beta = -alpha / pop
			alpha = pop * (-beta)
		}
		classes = append(classes, core.Class{A: a, Alpha: alpha, Beta: beta, Mu: mu})
	}
	return core.Switch{N1: n1, N2: n2, Classes: classes}
}

func TestSolveDenseSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solveDense(a, b); err == nil {
		t.Error("singular system accepted")
	}
}

func TestSolveDenseKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

// TestCallBlockingPASTA: with Poisson classes call blocking equals the
// route-idle time congestion; the CallBlocking helper must agree with
// Measures.
func TestCallBlockingPASTA(t *testing.T) {
	sw := smallSwitch()
	c, err := NewChain(sw, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Make both classes Poisson for the PASTA identity.
	for i := range sw.Classes {
		sw.Classes[i].Beta = 0
	}
	c, err = NewChain(sw, 10000)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	call := c.CallBlocking(pi)
	meas := c.Measures(pi)
	for r := range sw.Classes {
		if !almostEqual(call[r], meas.Blocking[r], 1e-9) {
			t.Errorf("class %d: call blocking %v != time blocking %v", r, call[r], meas.Blocking[r])
		}
	}
}

// TestCallBlockingBurstyGap: for a peaky class the call blocking
// exceeds the time blocking.
func TestCallBlockingBurstyGap(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{
		{A: 1, Alpha: 0.04, Beta: 0.5, Mu: 1},
	}}
	c, err := NewChain(sw, 10000)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	call := c.CallBlocking(pi)
	meas := c.Measures(pi)
	if call[0] <= meas.Blocking[0] {
		t.Errorf("peaky call blocking %v should exceed time blocking %v", call[0], meas.Blocking[0])
	}
}

// TestSolveLinearExported: the exported wrapper behaves like the
// internal solver.
func TestSolveLinearExported(t *testing.T) {
	a := [][]float64{{3, 0}, {0, 2}}
	b := []float64{6, 4}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Errorf("x = %v", x)
	}
}
