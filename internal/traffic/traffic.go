// Package traffic generalizes the uniform-access assumption of the
// paper (and the single-hot-output model of the companion paper [28])
// to an arbitrary traffic matrix: request (i, j) arrives with
// probability proportional to W[i][j]. Non-uniform matrices break the
// product form, so evaluation is by fabric simulation; the package
// also provides Sinkhorn-Knopp balancing — the classical iterative
// scaling that turns a positive matrix doubly stochastic — to quantify
// how much blocking is attributable to imbalance rather than to total
// load.
package traffic

import (
	"fmt"
	"math"

	"xbar/internal/eventq"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Matrix is a non-negative N1 x N2 weight matrix; W[i][j] is the
// relative arrival intensity of requests from input i to output j.
type Matrix [][]float64

// NewUniform returns the all-ones matrix.
func NewUniform(n1, n2 int) Matrix {
	m := make(Matrix, n1)
	for i := range m {
		m[i] = make([]float64, n2)
		for j := range m[i] {
			m[i][j] = 1
		}
	}
	return m
}

// Validate checks shape and non-negativity, requiring at least one
// positive weight in every row and column (otherwise a port is dead
// and the dimensions lie).
func (m Matrix) Validate() error {
	if len(m) == 0 || len(m[0]) == 0 {
		return fmt.Errorf("traffic: empty matrix")
	}
	n2 := len(m[0])
	colSum := make([]float64, n2)
	for i, row := range m {
		if len(row) != n2 {
			return fmt.Errorf("traffic: ragged matrix at row %d", i)
		}
		rowSum := 0.0
		for j, w := range row {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("traffic: weight [%d][%d] = %v", i, j, w)
			}
			rowSum += w
			colSum[j] += w
		}
		if rowSum == 0 { //lint:allow floatcmp structural validation: exactly zero weight means the row is absent; tiny weights are legitimate load
			return fmt.Errorf("traffic: row %d has no traffic", i)
		}
	}
	for j, s := range colSum {
		if s == 0 { //lint:allow floatcmp structural validation, as for the row sums above
			return fmt.Errorf("traffic: column %d has no traffic", j)
		}
	}
	return nil
}

// Dims returns (N1, N2).
func (m Matrix) Dims() (int, int) {
	if len(m) == 0 {
		return 0, 0
	}
	return len(m), len(m[0])
}

// RowSums and ColSums return the marginal weights.
func (m Matrix) RowSums() []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		for _, w := range row {
			out[i] += w
		}
	}
	return out
}

// ColSums returns the per-column totals.
func (m Matrix) ColSums() []float64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]float64, len(m[0]))
	for _, row := range m {
		for j, w := range row {
			out[j] += w
		}
	}
	return out
}

// Imbalance returns max(marginal)/mean(marginal) over rows and
// columns: 1 for perfectly balanced load.
func (m Matrix) Imbalance() float64 {
	worst := 1.0
	for _, sums := range [][]float64{m.RowSums(), m.ColSums()} {
		mean, max := 0.0, 0.0
		for _, s := range sums {
			mean += s
			if s > max {
				max = s
			}
		}
		mean /= float64(len(sums))
		if mean > 0 && max/mean > worst {
			worst = max / mean
		}
	}
	return worst
}

// Sinkhorn returns the Sinkhorn-Knopp balancing of m: alternately
// normalizing rows and columns until every marginal is within tol of
// uniform, so the returned matrix's row sums equal N2/N1-consistent
// constants (each row sums to 1, each column to N1/N2). The zero
// pattern is preserved; a matrix whose support does not admit a
// doubly stochastic scaling (e.g. a zero block too large) fails to
// converge and returns an error.
func (m Matrix) Sinkhorn(tol float64, maxIter int) (Matrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 || maxIter < 1 {
		return nil, fmt.Errorf("traffic: Sinkhorn(tol=%v, maxIter=%d)", tol, maxIter)
	}
	n1, n2 := m.Dims()
	out := make(Matrix, n1)
	for i := range out {
		out[i] = append([]float64(nil), m[i]...)
	}
	rowTarget := 1.0
	colTarget := float64(n1) / float64(n2)
	for iter := 0; iter < maxIter; iter++ {
		for i := range out {
			s := 0.0
			for _, w := range out[i] {
				s += w
			}
			for j := range out[i] {
				out[i][j] *= rowTarget / s
			}
		}
		worst := 0.0
		col := out.ColSums()
		for j := range col {
			if col[j] == 0 { //lint:allow floatcmp scaling preserves exact zeros; losing all weight is structural
				return nil, fmt.Errorf("traffic: column %d lost all weight", j)
			}
			for i := range out {
				out[i][j] *= colTarget / col[j]
			}
		}
		// Convergence: row sums after the column step.
		for _, s := range out.RowSums() {
			if d := math.Abs(s - rowTarget); d > worst {
				worst = d
			}
		}
		if worst < tol {
			return out, nil
		}
	}
	return nil, fmt.Errorf("traffic: Sinkhorn did not converge in %d iterations", maxIter)
}

// SimConfig parameterizes a matrix-weighted crossbar simulation.
type SimConfig struct {
	// Lambda is the total Poisson request rate.
	Lambda float64
	// Mu is the holding-time rate.
	Mu      float64
	Seed    uint64
	Warmup  float64
	Horizon float64
	Batches int
}

// Result reports the simulation.
type Result struct {
	// Blocking is the overall request blocking (call congestion).
	Blocking stats.CI
	// Concurrency is the time-average number of connections.
	Concurrency stats.CI
	// Offered counts measured requests; Events counts processed
	// events.
	Offered, Events int64
}

type departure struct{ in, out int }

// Simulate runs the fabric under matrix-weighted arrivals with
// blocked-calls-cleared.
func Simulate(m Matrix, cfg SimConfig) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.Lambda <= 0 || cfg.Mu <= 0 {
		return nil, fmt.Errorf("traffic: lambda %v, mu %v", cfg.Lambda, cfg.Mu)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("traffic: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("traffic: need >= 2 batches")
	}
	n1, n2 := m.Dims()

	// Flattened cumulative weights for route sampling by binary
	// search.
	cum := make([]float64, n1*n2)
	total := 0.0
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			total += m[i][j]
			cum[i*n2+j] = total
		}
	}

	stream := rng.NewStream(cfg.Seed)
	busyIn := make([]bool, n1)
	busyOut := make([]bool, n2)
	connected := 0
	start, end := cfg.Warmup, cfg.Warmup+cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	offered := make([]int64, batches)
	blocked := make([]int64, batches)
	connArea := make([]float64, batches)
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}

	var deps eventq.Queue[departure]
	nextArr := stream.Exp(cfg.Lambda)
	now := 0.0
	var events int64
	advance := func(t float64) {
		t1 := math.Min(t, end)
		if t1 > now && now < end {
			for cur := math.Max(now, start); cur < t1; {
				b := int((cur - start) / batchLen)
				if b < 0 || b >= batches {
					break
				}
				bEnd := start + batchLen*float64(b+1)
				seg := math.Min(t1, bEnd)
				connArea[b] += float64(connected) * (seg - cur)
				cur = seg
			}
		}
		now = t
	}

	for {
		t := nextArr
		isDep := false
		if at, ok := deps.PeekTime(); ok && at < t {
			t, isDep = at, true
		}
		if t >= end {
			advance(end)
			break
		}
		advance(t)
		events++
		if isDep {
			_, d := deps.Pop()
			busyIn[d.in] = false
			busyOut[d.out] = false
			connected--
			continue
		}
		nextArr = now + stream.Exp(cfg.Lambda)
		b := batchOf(now)
		if b >= 0 {
			offered[b]++
		}
		// Sample (i, j) ~ W by binary search on the cumulative sums.
		u := stream.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		in, out := lo/n2, lo%n2
		if busyIn[in] || busyOut[out] {
			if b >= 0 {
				blocked[b]++
			}
			continue
		}
		busyIn[in] = true
		busyOut[out] = true
		connected++
		deps.Push(now+stream.Exp(cfg.Mu), departure{in: in, out: out})
	}

	res := &Result{Events: events}
	var ratios, connB []float64
	for b := 0; b < batches; b++ {
		res.Offered += offered[b]
		connB = append(connB, connArea[b]/batchLen)
		if offered[b] > 0 {
			ratios = append(ratios, float64(blocked[b])/float64(offered[b]))
		}
	}
	if len(ratios) >= 2 {
		res.Blocking = stats.BatchMeans(ratios, 0.95)
	} else {
		res.Blocking = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
	}
	res.Concurrency = stats.BatchMeans(connB, 0.95)
	return res, nil
}
