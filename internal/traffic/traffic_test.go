package traffic

import (
	"math"
	"testing"

	"xbar/internal/core"
	"xbar/internal/hotspot"
)

func TestValidate(t *testing.T) {
	if err := NewUniform(4, 6).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Matrix{
		{},
		{{1, 2}, {1}},     // ragged
		{{1, -1}, {1, 1}}, // negative
		{{0, 0}, {1, 1}},  // dead row
		{{1, 0}, {1, 0}},  // dead column
		{{math.NaN(), 1}, {1, 1}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid matrix accepted", i)
		}
	}
}

func TestMarginalsAndImbalance(t *testing.T) {
	m := Matrix{{1, 3}, {2, 2}}
	rs := m.RowSums()
	cs := m.ColSums()
	if rs[0] != 4 || rs[1] != 4 || cs[0] != 3 || cs[1] != 5 {
		t.Errorf("marginals: rows %v cols %v", rs, cs)
	}
	if got := NewUniform(3, 3).Imbalance(); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform imbalance %v, want 1", got)
	}
	if got := m.Imbalance(); math.Abs(got-5.0/4) > 1e-12 {
		t.Errorf("imbalance %v, want 1.25", got)
	}
}

// TestSinkhornBalances: marginals become uniform, zeros are preserved,
// and an already-balanced matrix is a fixed point.
func TestSinkhornBalances(t *testing.T) {
	m := Matrix{
		{5, 1, 0},
		{1, 1, 1},
		{0, 2, 8},
	}
	out, err := m.Sinkhorn(1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out.RowSums() {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
	for j, s := range out.ColSums() {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("col %d sums to %v", j, s)
		}
	}
	if out[0][2] != 0 || out[2][0] != 0 {
		t.Error("Sinkhorn did not preserve the zero pattern")
	}
	if got := out.Imbalance(); math.Abs(got-1) > 1e-6 {
		t.Errorf("balanced imbalance %v", got)
	}
	// Idempotence on the uniform matrix (up to overall scale).
	u, err := NewUniform(3, 3).Sinkhorn(1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u {
		for j := range u[i] {
			if math.Abs(u[i][j]-1.0/3) > 1e-9 {
				t.Errorf("uniform Sinkhorn[%d][%d] = %v", i, j, u[i][j])
			}
		}
	}
}

func TestSinkhornRectangular(t *testing.T) {
	m := Matrix{{2, 1, 1, 4}, {1, 5, 1, 1}}
	out, err := m.Sinkhorn(1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out.RowSums() {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
	for j, s := range out.ColSums() {
		if math.Abs(s-0.5) > 1e-9 { // N1/N2 = 2/4
			t.Errorf("col %d sums to %v", j, s)
		}
	}
}

func TestSinkhornArgs(t *testing.T) {
	if _, err := NewUniform(2, 2).Sinkhorn(0, 10); err == nil {
		t.Error("zero tol accepted")
	}
	if _, err := NewUniform(2, 2).Sinkhorn(1e-9, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := (Matrix{{1, -1}, {1, 1}}).Sinkhorn(1e-9, 10); err == nil {
		t.Error("invalid matrix accepted")
	}
}

// TestUniformMatrixMatchesProductForm: the matrix simulator under a
// uniform matrix reproduces the paper's model.
func TestUniformMatrixMatchesProductForm(t *testing.T) {
	const n, lambda = 5, 3.0
	want, err := core.Solve(core.Switch{N1: n, N2: n, Classes: []core.Class{{
		A: 1, Alpha: lambda / (n * n), Mu: 1,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(NewUniform(n, n), SimConfig{
		Lambda: lambda, Mu: 1, Seed: 1, Warmup: 2000, Horizon: 60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Blocking.Mean-want.Blocking[0]) > 2*res.Blocking.HalfWidth {
		t.Errorf("blocking %v vs product form %v", res.Blocking, want.Blocking[0])
	}
	if math.Abs(res.Concurrency.Mean-want.Concurrency[0]) > 2*res.Concurrency.HalfWidth {
		t.Errorf("concurrency %v vs product form %v", res.Concurrency, want.Concurrency[0])
	}
}

// TestHotColumnMatchesHotspotChain: a matrix with one heavy column is
// exactly the hotspot model, cross-validating two independent
// implementations.
func TestHotColumnMatchesHotspotChain(t *testing.T) {
	const (
		n      = 6
		lambda = 4.0
		p      = 0.4
	)
	// Column 0 carries fraction p; others split 1-p evenly.
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][0] = p / n
		for j := 1; j < n; j++ {
			m[i][j] = (1 - p) / float64(n*(n-1))
		}
	}
	want, err := hotspot.Solve(hotspot.Model{
		N1: n, N2: n, Lambda: lambda, Mu: 1, HotFraction: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, SimConfig{
		Lambda: lambda, Mu: 1, Seed: 2, Warmup: 2000, Horizon: 80000,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBlocking := 1 - want.NonBlocking
	if math.Abs(res.Blocking.Mean-wantBlocking) > 2*res.Blocking.HalfWidth {
		t.Errorf("matrix sim blocking %v vs hotspot exact %v", res.Blocking, wantBlocking)
	}
	if math.Abs(res.Concurrency.Mean-want.MeanBusy) > 2*res.Concurrency.HalfWidth {
		t.Errorf("matrix sim busy %v vs hotspot exact %v", res.Concurrency, want.MeanBusy)
	}
}

// TestSinkhornReducesBlocking: balancing a skewed matrix at the same
// total load lowers the overall blocking — the load-balancing dividend
// quantified.
func TestSinkhornReducesBlocking(t *testing.T) {
	const n, lambda = 6, 5.0
	skewed := make(Matrix, n)
	for i := range skewed {
		skewed[i] = make([]float64, n)
		for j := range skewed[i] {
			skewed[i][j] = 0.2
		}
	}
	// Two heavy rows and one heavy column.
	for j := 0; j < n; j++ {
		skewed[0][j] += 3
	}
	for i := 0; i < n; i++ {
		skewed[i][1] += 3
	}
	balanced, err := skewed.Sinkhorn(1e-10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	resSkewed, err := Simulate(skewed, SimConfig{
		Lambda: lambda, Mu: 1, Seed: 3, Warmup: 2000, Horizon: 80000,
	})
	if err != nil {
		t.Fatal(err)
	}
	resBalanced, err := Simulate(balanced, SimConfig{
		Lambda: lambda, Mu: 1, Seed: 4, Warmup: 2000, Horizon: 80000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resBalanced.Blocking.Mean >= resSkewed.Blocking.Mean {
		t.Errorf("balanced blocking %v should be below skewed %v",
			resBalanced.Blocking.Mean, resSkewed.Blocking.Mean)
	}
}

func TestSimulateValidation(t *testing.T) {
	u := NewUniform(3, 3)
	if _, err := Simulate(u, SimConfig{Lambda: 0, Mu: 1, Horizon: 10}); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := Simulate(u, SimConfig{Lambda: 1, Mu: 0, Horizon: 10}); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := Simulate(u, SimConfig{Lambda: 1, Mu: 1, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Simulate(u, SimConfig{Lambda: 1, Mu: 1, Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch accepted")
	}
	if _, err := Simulate(Matrix{}, SimConfig{Lambda: 1, Mu: 1, Horizon: 10}); err == nil {
		t.Error("invalid matrix accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := SimConfig{Lambda: 2, Mu: 1, Seed: 7, Warmup: 100, Horizon: 5000}
	a, err := Simulate(NewUniform(4, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(NewUniform(4, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Offered != b.Offered {
		t.Error("same seed diverged")
	}
}
