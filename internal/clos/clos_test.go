package clos

import (
	"math"
	"testing"
)

func TestValidateAndGeometry(t *testing.T) {
	c := Network{M: 5, N: 3, R: 4}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Ports() != 12 {
		t.Errorf("Ports = %d, want 12", c.Ports())
	}
	// 2 n m r + m r^2 = 2*3*5*4 + 5*16 = 120 + 80 = 200.
	if c.Crosspoints() != 200 {
		t.Errorf("Crosspoints = %d, want 200", c.Crosspoints())
	}
	if c.CrossbarCrosspoints() != 144 {
		t.Errorf("CrossbarCrosspoints = %d, want 144", c.CrossbarCrosspoints())
	}
	if err := (Network{M: 0, N: 1, R: 1}).Validate(); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestClosSavesCrosspointsAtScale(t *testing.T) {
	// n = r = sqrt(N), m = 2n-1: the classical N^(3/2) construction
	// undercuts N^2 once N is large enough.
	c := Network{N: 16, R: 16, M: 31}
	if c.Crosspoints() >= c.CrossbarCrosspoints() {
		t.Errorf("Clos %d crosspoints should undercut crossbar %d",
			c.Crosspoints(), c.CrossbarCrosspoints())
	}
}

func TestStrictSenseCondition(t *testing.T) {
	if !(Network{M: 5, N: 3, R: 4}).StrictSenseNonblocking() {
		t.Error("m = 2n-1 should be strict-sense nonblocking")
	}
	if (Network{M: 4, N: 3, R: 4}).StrictSenseNonblocking() {
		t.Error("m = 2n-2 should not be strict-sense nonblocking")
	}
}

func TestLeeBlockingBasics(t *testing.T) {
	c := Network{M: 4, N: 4, R: 4}
	b0, err := c.LeeBlocking(0)
	if err != nil || b0 != 0 {
		t.Errorf("Lee blocking at zero load = %v, %v", b0, err)
	}
	b1, err := c.LeeBlocking(1)
	if err != nil || b1 != 1 {
		// p = a n/m = 1 -> every path busy.
		t.Errorf("Lee blocking at unit load = %v, %v", b1, err)
	}
	// Monotone in load.
	prev := -1.0
	for _, a := range []float64{0.1, 0.3, 0.5, 0.8} {
		b, err := c.LeeBlocking(a)
		if err != nil {
			t.Fatal(err)
		}
		if b <= prev {
			t.Errorf("Lee blocking not increasing at a=%v", a)
		}
		prev = b
	}
	// More middle switches always help.
	richer := Network{M: 6, N: 4, R: 4}
	bRich, _ := richer.LeeBlocking(0.5)
	bPoor, _ := c.LeeBlocking(0.5)
	if bRich >= bPoor {
		t.Errorf("m=6 blocking %v should be below m=4's %v", bRich, bPoor)
	}
	if _, err := c.LeeBlocking(1.5); err == nil {
		t.Error("load > 1 accepted")
	}
}

// TestClosTheoremInSimulation: with m = 2n-1 and any work-conserving
// path policy, a request with free external ports is NEVER internally
// blocked — the Clos strict-sense nonblocking theorem, verified on the
// event stream.
func TestClosTheoremInSimulation(t *testing.T) {
	c := Network{M: 2*4 - 1, N: 4, R: 5}
	for _, pol := range []Policy{RandomAvailable, FirstFit} {
		res, err := Simulate(c, SimConfig{
			PerInputLoad: 0.9, Mu: 1, Policy: pol,
			Seed: 3, Warmup: 500, Horizon: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.InternallyBlocked != 0 {
			t.Errorf("%v: %d internal blocks on a strict-sense nonblocking network",
				pol, res.InternallyBlocked)
		}
		if res.Offered == 0 {
			t.Error("no traffic")
		}
	}
}

// TestInternalBlockingAppearsBelowClosBound: with m < 2n-1 internal
// blocking is possible and observed at high load.
func TestInternalBlockingAppearsBelowClosBound(t *testing.T) {
	c := Network{M: 3, N: 4, R: 5}
	res, err := Simulate(c, SimConfig{
		PerInputLoad: 0.9, Mu: 1, Policy: RandomAvailable,
		Seed: 4, Warmup: 500, Horizon: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InternallyBlocked == 0 {
		t.Error("expected internal blocking below the Clos bound at high load")
	}
}

// TestLeeIsAPessimisticBound: against a path-searching policy, Lee's
// independence formula upper-bounds the observed internal blocking
// (the n circuits of a switch occupy n distinct links, a negative
// correlation the formula ignores), and both rise with load.
func TestLeeIsAPessimisticBound(t *testing.T) {
	c := Network{M: 6, N: 6, R: 8}
	prevSim, prevLee := -1.0, -1.0
	for _, load := range []float64{0.4, 0.55, 0.7} {
		lee, err := c.LeeBlocking(load)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(c, SimConfig{
			PerInputLoad: load, Mu: 1, Policy: RandomAvailable,
			Seed: 7, Warmup: 2000, Horizon: 40000,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := res.InternalBlocking.Mean
		if got > lee {
			t.Errorf("load %v: simulated internal blocking %v exceeds Lee bound %v", load, got, lee)
		}
		if got <= prevSim || lee <= prevLee {
			t.Errorf("load %v: blocking not increasing (sim %v vs %v, lee %v vs %v)",
				load, got, prevSim, lee, prevLee)
		}
		prevSim, prevLee = got, lee
	}
}

// TestPolicyOrdering: random-try (single probe) blocks more than
// random-available (full search).
func TestPolicyOrdering(t *testing.T) {
	c := Network{M: 6, N: 6, R: 6}
	run := func(p Policy) float64 {
		res, err := Simulate(c, SimConfig{
			PerInputLoad: 0.6, Mu: 1, Policy: p,
			Seed: 11, Warmup: 1000, Horizon: 40000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.CallBlocking.Mean
	}
	if bTry, bAvail := run(RandomTry), run(RandomAvailable); bTry <= bAvail {
		t.Errorf("random-try blocking %v should exceed random-available %v", bTry, bAvail)
	}
}

func TestSimulateValidation(t *testing.T) {
	c := Network{M: 3, N: 2, R: 2}
	if _, err := Simulate(c, SimConfig{PerInputLoad: 2, Mu: 1, Horizon: 10}); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := Simulate(c, SimConfig{PerInputLoad: 0.5, Mu: 0, Horizon: 10}); err == nil {
		t.Error("mu = 0 accepted")
	}
	if _, err := Simulate(c, SimConfig{PerInputLoad: 0.5, Mu: 1, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Simulate(c, SimConfig{PerInputLoad: 0.5, Mu: 1, Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch accepted")
	}
	if _, err := Simulate(Network{}, SimConfig{PerInputLoad: 0.5, Mu: 1, Horizon: 10}); err == nil {
		t.Error("invalid network accepted")
	}
	if _, err := Simulate(c, SimConfig{PerInputLoad: 0, Mu: 1, Horizon: 10}); err == nil {
		t.Error("zero load accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if RandomAvailable.String() != "random-available" ||
		FirstFit.String() != "first-fit" ||
		RandomTry.String() != "random-try" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestDeterminism(t *testing.T) {
	c := Network{M: 4, N: 3, R: 3}
	cfg := SimConfig{PerInputLoad: 0.5, Mu: 1, Seed: 5, Warmup: 100, Horizon: 5000}
	a, err := Simulate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Offered != b.Offered {
		t.Error("same seed diverged")
	}
	if math.IsNaN(a.CallBlocking.Mean) {
		t.Error("no call blocking estimate")
	}
}
