// Package clos implements a three-stage Clos circuit-switching network
// C(m, n, r) — r ingress switches of size n x m, m middle switches of
// size r x r, and r egress switches of size m x n — the classical
// answer to the crossbar's O(N^2) crosspoint growth and the concrete
// form of the "multi-stage networks" the paper defers to future work.
//
// Three evaluations are provided:
//
//   - the Clos strict-sense nonblocking condition m >= 2n - 1, as both
//     a predicate and a simulation-verified theorem;
//   - Lee's link-independence approximation of internal blocking;
//   - an exact event-driven simulation with pluggable middle-stage
//     routing policies.
//
// Crosspoint accounting quantifies the trade the introduction
// discusses: a Clos network reaches N = n r ports with
// 2 n m r + m r^2 crosspoints against the crossbar's N^2.
package clos

import (
	"fmt"
	"math"

	"xbar/internal/eventq"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Network describes a symmetric three-stage Clos network C(m, n, r).
type Network struct {
	// M is the number of middle-stage switches (paths per ingress /
	// egress pair).
	M int
	// N is the number of external ports per ingress (and egress)
	// switch.
	N int
	// R is the number of ingress (and egress) switches.
	R int
}

// Validate checks the dimensions.
func (c Network) Validate() error {
	if c.M < 1 || c.N < 1 || c.R < 1 {
		return fmt.Errorf("clos: C(m=%d, n=%d, r=%d): all dimensions must be >= 1", c.M, c.N, c.R)
	}
	return nil
}

// Ports returns the total number of external input ports N = n r.
func (c Network) Ports() int { return c.N * c.R }

// StrictSenseNonblocking reports the Clos condition m >= 2n - 1: a
// request between a free ingress port and a free egress port can
// always be routed, no matter the existing circuits.
func (c Network) StrictSenseNonblocking() bool { return c.M >= 2*c.N-1 }

// Crosspoints returns the total crosspoint count
// 2 n m r + m r^2 of the Clos network.
func (c Network) Crosspoints() int {
	return 2*c.N*c.M*c.R + c.M*c.R*c.R
}

// CrossbarCrosspoints returns the crosspoints of the equivalent
// single-stage (n r) x (n r) crossbar.
func (c Network) CrossbarCrosspoints() int {
	p := c.Ports()
	return p * p
}

// LeeBlocking returns Lee's approximation of the internal blocking
// probability for a fresh request when each external input carries a
// erlangs (0 <= a <= 1): each of the m two-link paths is independently
// busy with probability 1 - (1-p)^2, p = a n / m,
//
//	B = (1 - (1-p)^2)^m .
//
// Lee's independence assumption ignores that a switch's n circuits
// occupy n DISTINCT links (strong negative correlation), so against a
// path-searching policy the formula is a pessimistic bound — often by
// orders of magnitude at moderate load, as the simulation comparison
// in the tests shows. It remains the standard quick sizing rule and is
// exact in its own random-occupancy model.
func (c Network) LeeBlocking(a float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if a < 0 || a > 1 {
		return 0, fmt.Errorf("clos: per-input load %v outside [0,1]", a)
	}
	p := a * float64(c.N) / float64(c.M)
	if p > 1 {
		p = 1
	}
	q := 1 - (1-p)*(1-p)
	return math.Pow(q, float64(c.M)), nil
}

// Policy selects the middle switch for a new circuit.
type Policy int

const (
	// RandomAvailable picks uniformly among middle switches with both
	// links free; blocks only when none exists.
	RandomAvailable Policy = iota
	// FirstFit always scans middle switches in index order — the
	// packing policy that keeps later switches free.
	FirstFit
	// RandomTry draws one middle switch blindly and blocks if either
	// of its links is busy — the cheapest (single-probe) control.
	RandomTry
)

func (p Policy) String() string {
	switch p {
	case RandomAvailable:
		return "random-available"
	case FirstFit:
		return "first-fit"
	case RandomTry:
		return "random-try"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// SimConfig parameterizes a Clos simulation.
type SimConfig struct {
	// PerInputLoad is the offered erlangs per external input port; the
	// network-wide Poisson arrival rate is PerInputLoad * n * r * Mu.
	PerInputLoad float64
	// Mu is the circuit teardown rate.
	Mu float64
	// Policy is the middle-stage routing policy.
	Policy Policy
	// Seed, Warmup, Horizon, Batches as in the other simulators.
	Seed    uint64
	Warmup  float64
	Horizon float64
	Batches int
}

// Result reports a Clos simulation.
type Result struct {
	// CallBlocking is the fraction of offered circuits rejected for
	// any reason (no free ingress/egress port, or internal blocking).
	CallBlocking stats.CI
	// InternalBlocking is the fraction of offered circuits that had
	// free external ports on both sides but no middle path — the
	// quantity Lee approximates and the Clos theorem bounds.
	InternalBlocking stats.CI
	// LinkUtilization is the time-average busy fraction of
	// ingress-to-middle links.
	LinkUtilization float64
	// Offered counts measured arrivals; InternallyBlocked counts the
	// internal-blocking events among them.
	Offered, InternallyBlocked int64
	// Events counts processed events.
	Events int64
}

type circuit struct {
	in, out int // ingress and egress switch indices
	mid     int
	portIn  int // ingress external port
	portOut int
}

// Simulate runs the event-driven Clos network: circuits arrive Poisson
// between a uniform ingress port and a uniform egress port, hold both
// external ports plus one two-link middle path for an exponential
// time, and are cleared when no path exists under the chosen policy.
func Simulate(c Network, cfg SimConfig) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if cfg.PerInputLoad < 0 || cfg.PerInputLoad > 1 {
		return nil, fmt.Errorf("clos: per-input load %v outside [0,1]", cfg.PerInputLoad)
	}
	if cfg.Mu <= 0 {
		return nil, fmt.Errorf("clos: mu = %v", cfg.Mu)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("clos: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("clos: need >= 2 batches")
	}

	stream := rng.NewStream(cfg.Seed)
	// Link occupancy: inLink[i][k] = ingress i to middle k;
	// outLink[k][j] = middle k to egress j.
	inLink := make([][]bool, c.R)
	outLink := make([][]bool, c.M)
	for i := range inLink {
		inLink[i] = make([]bool, c.M)
	}
	for k := range outLink {
		outLink[k] = make([]bool, c.R)
	}
	// External port occupancy per ingress/egress switch.
	portIn := make([][]bool, c.R)
	portOut := make([][]bool, c.R)
	for i := 0; i < c.R; i++ {
		portIn[i] = make([]bool, c.N)
		portOut[i] = make([]bool, c.N)
	}
	busyLinks := 0

	totalPorts := c.Ports()
	arrivalRate := cfg.PerInputLoad * float64(totalPorts) * cfg.Mu
	if arrivalRate <= 0 {
		return nil, fmt.Errorf("clos: zero arrival rate")
	}

	start, end := cfg.Warmup, cfg.Warmup+cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	offered := make([]int64, batches)
	blockedAll := make([]int64, batches)
	blockedInternal := make([]int64, batches)
	eligible := make([]int64, batches) // arrivals with free external ports
	utilArea := make([]float64, batches)
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}

	var deps eventq.Queue[circuit]
	nextArr := stream.Exp(arrivalRate)
	now := 0.0
	var events int64
	advance := func(t float64) {
		t1 := math.Min(t, end)
		if t1 > now && now < end {
			lo := math.Max(now, start)
			util := float64(busyLinks) / float64(c.R*c.M)
			for cur := lo; cur < t1; {
				b := int((cur - start) / batchLen)
				if b < 0 || b >= batches {
					break
				}
				bEnd := start + batchLen*float64(b+1)
				seg := math.Min(t1, bEnd)
				utilArea[b] += util * (seg - cur)
				cur = seg
			}
		}
		now = t
	}

	scratch := make([]int, 0, c.M)
	for {
		t := nextArr
		isDep := false
		if at, ok := deps.PeekTime(); ok && at < t {
			t = at
			isDep = true
		}
		if t >= end {
			advance(end)
			break
		}
		advance(t)
		events++
		if isDep {
			_, d := deps.Pop()
			inLink[d.in][d.mid] = false
			outLink[d.mid][d.out] = false
			portIn[d.in][d.portIn] = false
			portOut[d.out][d.portOut] = false
			busyLinks--
			continue
		}
		nextArr = now + stream.Exp(arrivalRate)
		b := batchOf(now)
		if b >= 0 {
			offered[b]++
		}
		// Uniform external input and output ports.
		pin := stream.Intn(totalPorts)
		pout := stream.Intn(totalPorts)
		i, pi := pin/c.N, pin%c.N
		j, pj := pout/c.N, pout%c.N
		if portIn[i][pi] || portOut[j][pj] {
			if b >= 0 {
				blockedAll[b]++
			}
			continue
		}
		if b >= 0 {
			eligible[b]++
		}
		// Middle-stage selection.
		mid := -1
		switch cfg.Policy {
		case RandomAvailable:
			scratch = scratch[:0]
			for k := 0; k < c.M; k++ {
				if !inLink[i][k] && !outLink[k][j] {
					scratch = append(scratch, k)
				}
			}
			if len(scratch) > 0 {
				mid = scratch[stream.Intn(len(scratch))]
			}
		case FirstFit:
			for k := 0; k < c.M; k++ {
				if !inLink[i][k] && !outLink[k][j] {
					mid = k
					break
				}
			}
		case RandomTry:
			k := stream.Intn(c.M)
			if !inLink[i][k] && !outLink[k][j] {
				mid = k
			}
		default:
			return nil, fmt.Errorf("clos: unknown policy %v", cfg.Policy)
		}
		if mid < 0 {
			if b >= 0 {
				blockedAll[b]++
				blockedInternal[b]++
			}
			continue
		}
		inLink[i][mid] = true
		outLink[mid][j] = true
		portIn[i][pi] = true
		portOut[j][pj] = true
		busyLinks++
		deps.Push(now+stream.Exp(cfg.Mu), circuit{
			in: i, out: j, mid: mid, portIn: pi, portOut: pj,
		})
	}

	res := &Result{Events: events}
	var callB, intB []float64
	var utilB []float64
	for b := 0; b < batches; b++ {
		res.Offered += offered[b]
		res.InternallyBlocked += blockedInternal[b]
		if offered[b] > 0 {
			callB = append(callB, float64(blockedAll[b])/float64(offered[b]))
		}
		if eligible[b] > 0 {
			intB = append(intB, float64(blockedInternal[b])/float64(eligible[b]))
		}
		utilB = append(utilB, utilArea[b]/batchLen)
	}
	if len(callB) >= 2 {
		res.CallBlocking = stats.BatchMeans(callB, 0.95)
	} else {
		res.CallBlocking = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
	}
	if len(intB) >= 2 {
		res.InternalBlocking = stats.BatchMeans(intB, 0.95)
	} else {
		res.InternalBlocking = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
	}
	res.LinkUtilization = stats.BatchMeans(utilB, 0.95).Mean
	return res, nil
}
