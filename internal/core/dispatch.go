package core

import (
	"fmt"

	"xbar/internal/asymptotic"
)

// Dispatch selects which solver tier answers a model: the exact
// lattice recursions (Algorithms 1/2, O(N1*N2*R)) or the saddle-point
// asymptotic expansion (internal/asymptotic, O(R) with a computable
// error bound). The zero value is DispatchAuto.
type Dispatch int

const (
	// DispatchAuto picks the tier per model: exact at or below the
	// size cutoff, asymptotic above it when its self-reported error
	// bound meets the tolerance, exact again as the fallback.
	DispatchAuto Dispatch = iota
	// DispatchExact always uses the lattice recursions.
	DispatchExact
	// DispatchAsymptotic always uses the expansion, whatever the
	// bound; callers inspect Result.ErrorBound themselves.
	DispatchAsymptotic
)

// String returns the wire name of the policy ("auto", "exact",
// "asymptotic"), the same vocabulary ParseDispatch accepts.
func (d Dispatch) String() string {
	switch d {
	case DispatchExact:
		return "exact"
	case DispatchAsymptotic:
		return "asymptotic"
	default:
		return "auto"
	}
}

// ParseDispatch maps the wire name of a policy to its value. The
// empty string parses as DispatchAuto so absent request fields keep
// the default behavior.
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "", "auto":
		return DispatchAuto, nil
	case "exact":
		return DispatchExact, nil
	case "asymptotic":
		return DispatchAsymptotic, nil
	}
	return DispatchAuto, fmt.Errorf("core: unknown dispatch policy %q (want auto, exact or asymptotic)", s)
}

// Result.Tier values.
const (
	// TierExact marks a Result computed by the lattice recursions.
	TierExact = "exact"
	// TierAsymptotic marks a Result computed by the saddle-point
	// expansion; Result.ErrorBound holds its per-class bounds.
	TierAsymptotic = "asymptotic"
)

// DefaultDispatchCutoff is the largest max(N1, N2) DispatchAuto still
// solves exactly without consulting the expansion. At 512 the exact
// fill is single-digit milliseconds (docs/PERFORMANCE.md), cheap
// enough that the expansion's bound is not worth checking below it.
const DefaultDispatchCutoff = 512

// DefaultTolerance is the relative-error tolerance DispatchAuto holds
// the asymptotic tier to when DispatchOptions.Tolerance is unset.
const DefaultTolerance = 1e-2

// DispatchOptions configures SolveAuto and TryAsymptotic. The zero
// value is the default auto policy: DefaultDispatchCutoff,
// DefaultTolerance, auto fill schedule for the exact tier.
type DispatchOptions struct {
	// Policy selects the tier (the zero value is DispatchAuto).
	Policy Dispatch
	// Tolerance is the largest per-class relative-error bound an
	// asymptotic answer may carry under DispatchAuto; a larger bound
	// falls back to the exact tier. <= 0 means DefaultTolerance.
	Tolerance float64
	// Cutoff is the max(N1, N2) at and below which DispatchAuto
	// solves exactly without trying the expansion. <= 0 means
	// DefaultDispatchCutoff.
	Cutoff int
	// Fill configures the exact tier's lattice fill schedule; it is
	// passed to Solve unchanged, keeping SolveAuto bit-identical to
	// Solve(sw, Fill) whenever the exact tier answers.
	Fill Options
}

// tolerance resolves the effective tolerance.
func (o DispatchOptions) tolerance() float64 {
	if o.Tolerance <= 0 {
		return DefaultTolerance
	}
	return o.Tolerance
}

// cutoff resolves the effective size cutoff.
func (o DispatchOptions) cutoff() int {
	if o.Cutoff <= 0 {
		return DefaultDispatchCutoff
	}
	return o.Cutoff
}

// asymClasses converts a validated switch to the expansion's
// canonical per-route form.
func asymClasses(sw Switch) []asymptotic.Class {
	out := make([]asymptotic.Class, len(sw.Classes))
	for i, c := range sw.Classes {
		out[i] = asymptotic.Class{A: c.A, Rho: c.Rho()}
		if !c.IsPoisson() {
			out[i].BetaMu = c.BetaMu()
		}
	}
	return out
}

// SolveAsymptotic evaluates the switch with the saddle-point
// expansion alone: O(R) work independent of N1 and N2. The Result
// carries Tier = TierAsymptotic and per-class relative-error bounds
// in ErrorBound; callers that need a guarantee should check them (or
// use SolveAuto, which does).
func SolveAsymptotic(sw Switch) (*Result, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	est, err := asymptotic.Solve(sw.N1, sw.N2, asymClasses(sw))
	if err != nil {
		return nil, err
	}
	return &Result{
		Switch:      sw,
		Method:      "asymptotic",
		Tier:        TierAsymptotic,
		NonBlocking: est.NonBlocking,
		Blocking:    est.Blocking,
		Concurrency: est.Concurrency,
		ErrorBound:  est.Bound,
		LogG:        est.LogG,
	}, nil
}

// TryAsymptotic applies the dispatch policy and, when it routes to
// the expansion, solves there. It returns (nil, false, nil) when the
// policy routes to the exact tier — because the policy is
// DispatchExact, the model is at or below the cutoff, or the
// expansion's bound exceeds the tolerance (DispatchAuto's fallback).
// Under DispatchAsymptotic a failed expansion is an error; under
// DispatchAuto it is a fallback.
func TryAsymptotic(sw Switch, opt DispatchOptions) (*Result, bool, error) {
	switch opt.Policy {
	case DispatchExact:
		return nil, false, nil
	case DispatchAsymptotic:
		res, err := SolveAsymptotic(sw)
		if err != nil {
			return nil, false, err
		}
		return res, true, nil
	}
	if max(sw.N1, sw.N2) <= opt.cutoff() {
		return nil, false, nil
	}
	res, err := SolveAsymptotic(sw)
	if err != nil || res.MaxErrorBound() > opt.tolerance() {
		return nil, false, nil
	}
	return res, true, nil
}

// SolveAuto evaluates the switch through the dispatch policy: the
// asymptotic tier when TryAsymptotic accepts the model, otherwise
// Solve(sw, opt.Fill) bit-identically, with Result.Tier recording
// which tier answered.
func SolveAuto(sw Switch, opt DispatchOptions) (*Result, error) {
	if res, ok, err := TryAsymptotic(sw, opt); err != nil || ok {
		return res, err
	}
	res, err := Solve(sw, opt.Fill)
	if err != nil {
		return nil, err
	}
	res.Tier = TierExact
	return res, nil
}
