package core

import "fmt"

// The sweep solvers amortize one lattice fill over many reads. Both
// Algorithm 1 and Algorithm 2 retain their full recursion grids, and
// the Eq. 10 / Eq. 12-20 recursions are lower-triangular: the value at
// (n1, n2) depends only on lattice points below it. A sub-lattice of
// one big fill is therefore bit-identical to a fresh fill of the
// smaller switch with the same per-route classes, so a single
// O(N^2 R) solve at the maximum size serves exact results for every
// sub-size — the "compute once, read many" structure the figures'
// size sweeps and the revenue differences W(N) - W(N - a_r I) want.
//
// The one semantic caveat: ResultAt(n1, n2) is the switch (n1, n2)
// with the SAME per-route classes as the full switch. The paper's
// figure axes normalize aggregate (tilde) intensities per size —
// AggregateClass.PerRoute(n) divides by C(n, a) — so each point of
// those sweeps is a different per-route model and must be solved
// fresh; see docs/PERFORMANCE.md. Fixed-per-route sweeps and the
// in-lattice revenue reads (shadow costs, closed-form gradients,
// Table 2's GradRho1 column) are exactly what the sweep solvers are
// for.

// latticeResulter is the read interface the two sweep caches share.
type latticeResulter interface {
	ResultAt(n1, n2 int) *Result
}

// sweepCache memoizes ResultAt reads off a retained lattice. Computing
// a Result from the lattice is O(R (n/a)) (the concurrency chains) and
// allocates; the cache makes repeated reads of the same point O(1).
type sweepCache struct {
	sw    Switch
	lat   latticeResulter
	cache []*Result
}

func newSweepCache(sw Switch, lat latticeResulter) sweepCache {
	return sweepCache{
		sw:    sw,
		lat:   lat,
		cache: make([]*Result, (sw.N1+1)*(sw.N2+1)),
	}
}

// reset re-points the cache at a freshly filled lattice, recycling the
// memo slice whenever its capacity allows.
func (s *sweepCache) reset(sw Switch, lat latticeResulter) {
	s.sw = sw
	s.lat = lat
	size := (sw.N1 + 1) * (sw.N2 + 1)
	if cap(s.cache) >= size {
		s.cache = s.cache[:size]
		clear(s.cache)
	} else {
		s.cache = make([]*Result, size)
	}
}

// Switch returns the full-size switch the lattice was solved for.
func (s *sweepCache) Switch() Switch { return s.sw }

// Result returns the measures at the full switch size.
func (s *sweepCache) Result() *Result { return s.ResultAt(s.sw.N1, s.sw.N2) }

// ResultAt returns the measures for the sub-switch (n1, n2) with the
// same per-route classes, computed from the retained lattice on first
// read and served from the cache afterwards. The returned Result is
// shared across calls and must not be mutated. Panics outside the
// solved lattice, same contract as the underlying solvers. Not safe
// for concurrent use; shard sweeps across solvers instead.
func (s *sweepCache) ResultAt(n1, n2 int) *Result {
	if n1 < 1 || n2 < 1 || n1 > s.sw.N1 || n2 > s.sw.N2 {
		// Delegate so the panic message names the concrete solver.
		return s.lat.ResultAt(n1, n2)
	}
	i := n1*(s.sw.N2+1) + n2
	if r := s.cache[i]; r != nil {
		return r
	}
	r := s.lat.ResultAt(n1, n2)
	s.cache[i] = r
	return r
}

// WAt returns the average revenue W(n1, n2) = sum_r w_r E_r for the
// sub-switch, with the paper's convention W = 0 once either dimension
// reaches zero (E_r(0) = 0).
func (s *sweepCache) WAt(weights []float64, n1, n2 int) float64 {
	if n1 < 1 || n2 < 1 {
		return 0
	}
	return s.ResultAt(n1, n2).Revenue(weights)
}

// ShadowCost returns DeltaW_r(N) = W(N) - W(N - a_r I), the revenue
// displaced by dedicating a_r inputs and outputs to one class-r
// connection — a pure lattice read, no re-solve.
func (s *sweepCache) ShadowCost(weights []float64, r int) float64 {
	if r < 0 || r >= len(s.sw.Classes) {
		//lint:allow libpanic class index out of range is a caller bug, same contract as slice indexing
		panic(fmt.Sprintf("core: ShadowCost class %d of %d", r, len(s.sw.Classes)))
	}
	a := s.sw.Classes[r].A
	return s.WAt(weights, s.sw.N1, s.sw.N2) - s.WAt(weights, s.sw.N1-a, s.sw.N2-a)
}

// SweepSolver is the Algorithm 1 sweep layer: one Eq. 10 lattice fill
// at the full size, memoized ResultAt reads for every sub-size.
type SweepSolver struct {
	sweepCache
	solver *Solver
}

// NewSweepSolver validates sw, fills the Algorithm 1 lattice once, and
// returns the memoizing read layer. An optional Options argument
// selects the fill schedule (see Parallel).
func NewSweepSolver(sw Switch, opts ...Options) (*SweepSolver, error) {
	solver, err := NewSolver(sw, opts...)
	if err != nil {
		return nil, err
	}
	return &SweepSolver{sweepCache: newSweepCache(solver.sw, solver), solver: solver}, nil
}

// Reuse re-points the sweep solver at sw, refilling the retained
// Algorithm 1 lattice through Solver.Reuse (recycling the Q/W buffers)
// and resetting the memoized reads. The zero value of SweepSolver is
// ready for Reuse, mirroring Solver — the admission-control server's
// solver cache recycles evicted sweep solvers this way instead of
// allocating fresh lattices per cache miss.
//
//lint:pooled recv — refilling invalidates Results previously read off this solver
func (s *SweepSolver) Reuse(sw Switch, opts ...Options) error {
	if s.solver == nil {
		s.solver = &Solver{}
	}
	if err := s.solver.Reuse(sw, opts...); err != nil {
		return err
	}
	s.sweepCache.reset(s.solver.sw, s.solver)
	return nil
}

// MVASweepSolver is the Algorithm 2 twin: one ratio-lattice fill,
// memoized ResultAt reads. Same semantics as SweepSolver with
// Algorithm 2's plain-float64 numerics.
type MVASweepSolver struct {
	sweepCache
	solver *MVASolver
}

// NewMVASweepSolver validates sw, fills the Algorithm 2 ratio lattices
// once, and returns the memoizing read layer. An optional Options
// argument selects the fill schedule (see Parallel).
func NewMVASweepSolver(sw Switch, opts ...Options) (*MVASweepSolver, error) {
	solver, err := NewMVASolver(sw, opts...)
	if err != nil {
		return nil, err
	}
	return &MVASweepSolver{sweepCache: newSweepCache(solver.sw, solver), solver: solver}, nil
}

// Reuse re-points the sweep solver at sw, refilling the retained ratio
// lattices through MVASolver.Reuse and resetting the memoized reads.
// The zero value of MVASweepSolver is ready for Reuse, same contract
// as SweepSolver.Reuse.
//
//lint:pooled recv — refilling invalidates Results previously read off this solver
func (s *MVASweepSolver) Reuse(sw Switch, opts ...Options) error {
	if s.solver == nil {
		s.solver = &MVASolver{}
	}
	if err := s.solver.Reuse(sw, opts...); err != nil {
		return err
	}
	s.sweepCache.reset(s.solver.sw, s.solver)
	return nil
}
