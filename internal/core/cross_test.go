package core

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*s || diff <= tol*1e-3
}

// erlangSwitch is the hand-checkable 1x1 case: states {0, 1},
// G = 1 + rho, non-blocking 1/(1+rho), E = rho/(1+rho).
func TestOneByOnePoisson(t *testing.T) {
	rho := 0.37
	sw := Switch{N1: 1, N2: 1, Classes: []Class{{A: 1, Alpha: rho, Mu: 1}}}
	for _, solve := range []struct {
		name string
		fn   func(Switch) (*Result, error)
	}{
		{"direct", SolveDirect},
		{"convolution", SolveConvolution},
		{"algorithm1", noOpts(Solve)},
		{"unscaled", SolveUnscaled},
	} {
		res, err := solve.fn(sw)
		if err != nil {
			t.Fatalf("%s: %v", solve.name, err)
		}
		if got, want := res.NonBlocking[0], 1/(1+rho); !almostEqual(got, want, 1e-12) {
			t.Errorf("%s: NonBlocking = %v, want %v", solve.name, got, want)
		}
		if got, want := res.Concurrency[0], rho/(1+rho); !almostEqual(got, want, 1e-12) {
			t.Errorf("%s: Concurrency = %v, want %v", solve.name, got, want)
		}
		if got, want := res.LogG, math.Log(1+rho); !almostEqual(got, want, 1e-12) {
			t.Errorf("%s: LogG = %v, want %v", solve.name, got, want)
		}
	}
}

// TestPaperTable2SmallN reproduces the N=1 and N=2 rows of Table 2
// (first parameter set) exactly: the only published closed numbers in
// the paper that pin down every convention at once (tilde conversion,
// blocking-vs-non-blocking, revenue weighting).
func TestPaperTable2SmallN(t *testing.T) {
	build := func(n int) Switch {
		return NewSwitch(n, n,
			AggregateClass{Name: "poisson", A: 1, AlphaTilde: 0.0012, Mu: 1},
			AggregateClass{Name: "bursty", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
		)
	}
	weights := []float64{1.0, 0.0001}

	for _, solve := range []struct {
		name string
		fn   func(Switch) (*Result, error)
	}{
		{"direct", SolveDirect},
		{"convolution", SolveConvolution},
		{"algorithm1", noOpts(Solve)},
	} {
		res1, err := solve.fn(build(1))
		if err != nil {
			t.Fatalf("%s N=1: %v", solve.name, err)
		}
		if got, want := res1.Blocking[0], 0.00239425; !almostEqual(got, want, 1e-5) {
			t.Errorf("%s N=1: blocking = %.8f, want %v", solve.name, got, want)
		}
		if got, want := res1.Revenue(weights), 0.00119725; !almostEqual(got, want, 1e-5) {
			t.Errorf("%s N=1: W = %.8f, want %v", solve.name, got, want)
		}

		res2, err := solve.fn(build(2))
		if err != nil {
			t.Fatalf("%s N=2: %v", solve.name, err)
		}
		// Beyond N=1 the paper's printed Table 2 values deviate from
		// the derived model by a slowly growing margin (~0.02% here;
		// see EXPERIMENTS.md "Table 2 deviations"): the paper's N=2
		// entry equals the model with the bursty slope dropped, which
		// no stated convention produces. We pin our exact closed-form
		// value (hand-derived: 1 - G(1,1)/G(2,2) with
		// G(1,1) = 1.0012, G(2,2) = 1.0048036) and require closeness
		// to the paper's number.
		if got, want := res2.Blocking[0], 0.0036036/1.0048036; !almostEqual(got, want, 1e-9) {
			t.Errorf("%s N=2: blocking = %.10f, want exact %v", solve.name, got, want)
		}
		if got, paper := res2.Blocking[0], 0.00358566; !almostEqual(got, paper, 5e-3) {
			t.Errorf("%s N=2: blocking = %.8f, too far from paper %v", solve.name, got, paper)
		}
		if got, paper := res2.Revenue(weights), 0.00239163; !almostEqual(got, paper, 5e-3) {
			t.Errorf("%s N=2: W = %.8f, too far from paper %v", solve.name, got, paper)
		}
	}
}

// randomSwitch draws a small random model mixing Poisson, smooth and
// peaky classes with multi-rate bandwidths.
func randomSwitch(rng *rand.Rand) Switch {
	n1 := 1 + rng.Intn(7)
	n2 := 1 + rng.Intn(7)
	nClasses := 1 + rng.Intn(3)
	maxN := n1
	if n2 > maxN {
		maxN = n2
	}
	var classes []Class
	for i := 0; i < nClasses; i++ {
		a := 1 + rng.Intn(3)
		mu := 0.5 + rng.Float64()*2
		alpha := (0.01 + rng.Float64()*0.5) * mu
		var beta float64
		switch rng.Intn(3) {
		case 0: // Poisson
		case 1: // peaky
			beta = rng.Float64() * 0.8 * mu
		case 2: // smooth, integer population >= maxN
			pop := float64(maxN + 1 + rng.Intn(100))
			beta = -alpha / pop
			alpha = pop * (-beta) // keep exact integer ratio
		}
		classes = append(classes, Class{A: a, Alpha: alpha, Beta: beta, Mu: mu})
	}
	return Switch{N1: n1, N2: n2, Classes: classes}
}

// TestCrossValidation drives randomized models through the independent
// evaluators and requires agreement on every measure — the core
// correctness property of the reproduction.
func TestCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		sw := randomSwitch(rng)
		direct, err := SolveDirect(sw)
		if err != nil {
			t.Fatalf("trial %d: direct: %v (switch %+v)", trial, err, sw)
		}
		conv, err := SolveConvolution(sw)
		if err != nil {
			t.Fatalf("trial %d: convolution: %v", trial, err)
		}
		alg1, err := Solve(sw)
		if err != nil {
			t.Fatalf("trial %d: algorithm1: %v", trial, err)
		}
		for _, other := range []*Result{conv, alg1} {
			if !almostEqual(other.LogG, direct.LogG, 1e-9) {
				t.Errorf("trial %d: %s LogG = %v, direct = %v (switch %+v)",
					trial, other.Method, other.LogG, direct.LogG, sw)
			}
			for r := range sw.Classes {
				if !almostEqual(other.NonBlocking[r], direct.NonBlocking[r], 1e-9) {
					t.Errorf("trial %d: %s NonBlocking[%d] = %v, direct = %v (switch %+v)",
						trial, other.Method, r, other.NonBlocking[r], direct.NonBlocking[r], sw)
				}
				if !almostEqual(other.Concurrency[r], direct.Concurrency[r], 1e-9) {
					t.Errorf("trial %d: %s Concurrency[%d] = %v, direct = %v (switch %+v)",
						trial, other.Method, r, other.Concurrency[r], direct.Concurrency[r], sw)
				}
			}
		}
		if t.Failed() {
			return
		}
	}
}

// TestOccupancySumsToOne checks the convolution evaluator's occupancy
// distribution is a distribution and consistent with utilization.
func TestOccupancySumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		sw := randomSwitch(rng)
		res, err := SolveConvolution(sw)
		if err != nil {
			t.Fatal(err)
		}
		sum, mean := 0.0, 0.0
		for s, p := range res.Occupancy {
			if p < -1e-15 {
				t.Fatalf("negative occupancy probability %v", p)
			}
			sum += p
			mean += float64(s) * p
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Errorf("occupancy sums to %v", sum)
		}
		busy := 0.0
		for r, c := range sw.Classes {
			busy += float64(c.A) * res.Concurrency[r]
		}
		if !almostEqual(mean, busy, 1e-9) {
			t.Errorf("occupancy mean %v != sum a_r E_r %v", mean, busy)
		}
	}
}

// TestNonSquareSwitch checks a rectangular crossbar where
// min(N1,N2) != max and the two lattice directions differ.
func TestNonSquareSwitch(t *testing.T) {
	sw := Switch{N1: 3, N2: 6, Classes: []Class{
		{A: 1, Alpha: 0.2, Mu: 1},
		{A: 2, Alpha: 0.05, Beta: 0.02, Mu: 0.7},
	}}
	direct, err := SolveDirect(sw)
	if err != nil {
		t.Fatal(err)
	}
	alg1, err := Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if !almostEqual(alg1.NonBlocking[r], direct.NonBlocking[r], 1e-10) {
			t.Errorf("NonBlocking[%d]: alg1 %v direct %v", r, alg1.NonBlocking[r], direct.NonBlocking[r])
		}
		if !almostEqual(alg1.Concurrency[r], direct.Concurrency[r], 1e-10) {
			t.Errorf("Concurrency[%d]: alg1 %v direct %v", r, alg1.Concurrency[r], direct.Concurrency[r])
		}
	}
}

// TestClassWiderThanSwitch: a class whose bandwidth exceeds the switch
// carries nothing and blocks always.
func TestClassWiderThanSwitch(t *testing.T) {
	sw := Switch{N1: 2, N2: 2, Classes: []Class{
		{A: 1, Alpha: 0.3, Mu: 1},
		{A: 3, Alpha: 0.1, Mu: 1},
	}}
	for _, fn := range []func(Switch) (*Result, error){SolveDirect, SolveConvolution, noOpts(Solve)} {
		res, err := fn(sw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Blocking[1] != 1 || res.Concurrency[1] != 0 {
			t.Errorf("%s: wide class B=%v E=%v, want 1 and 0", res.Method, res.Blocking[1], res.Concurrency[1])
		}
	}
}

// TestUnscaledMatchesScaledSmall verifies the raw-float64 Algorithm 1
// agrees with the scaled version while it still fits in range.
func TestUnscaledMatchesScaledSmall(t *testing.T) {
	sw := NewSwitch(16, 16,
		AggregateClass{A: 1, AlphaTilde: 0.0024, Mu: 1},
		AggregateClass{A: 1, AlphaTilde: 0.001, BetaTilde: 0.002, Mu: 1},
	)
	u, err := SolveUnscaled(sw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if !almostEqual(u.NonBlocking[r], s.NonBlocking[r], 1e-9) {
			t.Errorf("NonBlocking[%d]: unscaled %v scaled %v", r, u.NonBlocking[r], s.NonBlocking[r])
		}
	}
}

// TestUnscaledUnderflowsLarge demonstrates the Section 6 motivation:
// raw float64 loses Q(N) for N >~ 85 while the scaled solver keeps
// going.
func TestUnscaledUnderflowsLarge(t *testing.T) {
	sw := NewSwitch(128, 128, AggregateClass{A: 1, AlphaTilde: 0.0024, Mu: 1})
	if _, err := SolveUnscaled(sw); err == nil {
		t.Fatal("unscaled Algorithm 1 at N=128 unexpectedly survived; expected underflow")
	}
	res, err := Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocking[0] <= 0 || res.Blocking[0] >= 1 {
		t.Errorf("scaled solver blocking = %v, want in (0,1)", res.Blocking[0])
	}
}

// TestResultAtMatchesFreshSolve: sub-switch measures read from a big
// solver's lattice equal a fresh solve of the smaller switch.
func TestResultAtMatchesFreshSolve(t *testing.T) {
	sw := Switch{N1: 10, N2: 8, Classes: []Class{
		{A: 1, Alpha: 0.1, Mu: 1},
		{A: 2, Alpha: 0.03, Beta: 0.01, Mu: 1},
	}}
	solver, err := NewSolver(sw)
	if err != nil {
		t.Fatal(err)
	}
	sub := solver.ResultAt(5, 7)
	fresh, err := Solve(Switch{N1: 5, N2: 7, Classes: sw.Classes})
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if !almostEqual(sub.NonBlocking[r], fresh.NonBlocking[r], 1e-12) {
			t.Errorf("NonBlocking[%d]: lattice %v fresh %v", r, sub.NonBlocking[r], fresh.NonBlocking[r])
		}
		if !almostEqual(sub.Concurrency[r], fresh.Concurrency[r], 1e-12) {
			t.Errorf("Concurrency[%d]: lattice %v fresh %v", r, sub.Concurrency[r], fresh.Concurrency[r])
		}
	}
}

// TestStateDependentServiceEquivalence checks the Section 2 duality:
// Poisson arrivals at unit rate with state-dependent service
// mu(k) = k mu / (v + delta k) yield the same steady state as BPP
// arrivals lambda(k) = (v + delta) + delta*k ... — precisely, the
// paper states equality when alpha = v + delta and beta = delta with
// the service-rate form mu_r(k) = k mu_r/(v_r + delta_r k).
func TestStateDependentServiceEquivalence(t *testing.T) {
	const (
		v     = 0.4
		delta = 0.2
		mu    = 1.3
	)
	sw := Switch{N1: 5, N2: 4, Classes: []Class{{A: 1, Alpha: 1, Mu: 1}}}

	// Model A: unit-rate Poisson arrivals, state-dependent service.
	birthA := []RateFunc{func(k int) float64 { return 1 }}
	deathA := []RateFunc{func(k int) float64 {
		return float64(k) * mu / (v + delta*float64(k))
	}}
	resA, err := SolveDirectRates(sw, birthA, deathA)
	if err != nil {
		t.Fatal(err)
	}

	// Model B: BPP arrivals alpha = v + delta, beta = delta, constant
	// service mu.
	birthB := []RateFunc{func(k int) float64 { return (v + delta) + delta*float64(k) }}
	deathB := []RateFunc{func(k int) float64 { return float64(k) * mu }}
	resB, err := SolveDirectRates(sw, birthB, deathB)
	if err != nil {
		t.Fatal(err)
	}

	if !almostEqual(resA.NonBlocking[0], resB.NonBlocking[0], 1e-10) {
		t.Errorf("NonBlocking: state-dep service %v, BPP %v", resA.NonBlocking[0], resB.NonBlocking[0])
	}
	if !almostEqual(resA.Concurrency[0], resB.Concurrency[0], 1e-10) {
		t.Errorf("Concurrency: state-dep service %v, BPP %v", resA.Concurrency[0], resB.Concurrency[0])
	}
	if !almostEqual(resA.LogG-resB.LogG, resA.LogG-resB.LogG, 1) {
		t.Error("unreachable")
	}
}

// TestMonotonicity: blocking grows with offered load and shrinks with
// switch size.
func TestMonotonicity(t *testing.T) {
	base := func(rho float64, n int) float64 {
		sw := Switch{N1: n, N2: n, Classes: []Class{{A: 1, Alpha: rho, Mu: 1}}}
		res, err := Solve(sw)
		if err != nil {
			t.Fatal(err)
		}
		return res.Blocking[0]
	}
	prev := -1.0
	for _, rho := range []float64{0.001, 0.01, 0.1, 0.5} {
		b := base(rho, 4)
		if b <= prev {
			t.Errorf("blocking not increasing in load: rho=%v b=%v prev=%v", rho, b, prev)
		}
		prev = b
	}
}

// TestValidation exercises the error paths of Switch.Validate via the
// solver entry points.
func TestValidation(t *testing.T) {
	bad := []Switch{
		{N1: 0, N2: 4, Classes: []Class{{A: 1, Alpha: 1, Mu: 1}}},
		{N1: 4, N2: 4},
		{N1: 4, N2: 4, Classes: []Class{{A: 0, Alpha: 1, Mu: 1}}},
		{N1: 4, N2: 4, Classes: []Class{{A: 1, Alpha: -1, Mu: 1}}},
		{N1: 4, N2: 4, Classes: []Class{{A: 1, Alpha: 1, Mu: 0}}},
		{N1: 4, N2: 4, Classes: []Class{{A: 1, Alpha: 1, Beta: 2, Mu: 1}}},
	}
	for i, sw := range bad {
		if _, err := Solve(sw); err == nil {
			t.Errorf("case %d: invalid switch accepted: %+v", i, sw)
		}
		if _, err := SolveDirect(sw); err == nil {
			t.Errorf("case %d: invalid switch accepted by direct: %+v", i, sw)
		}
	}
}

// TestClassMarginals: each per-class marginal is a distribution whose
// mean matches E_r and whose full shape matches direct state-space
// enumeration.
func TestClassMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		sw := randomSwitch(rng)
		conv, err := SolveConvolution(sw)
		if err != nil {
			t.Fatal(err)
		}
		// Direct marginals by enumeration.
		direct := make([][]float64, len(sw.Classes))
		for r := range sw.Classes {
			direct[r] = make([]float64, sw.maxCount(r)+1)
		}
		chainSum := 0.0
		birth := make([]RateFunc, len(sw.Classes))
		death := make([]RateFunc, len(sw.Classes))
		for i, c := range sw.Classes {
			c := c
			birth[i] = c.Rate
			death[i] = func(k int) float64 { return float64(k) * c.Mu }
		}
		phi, err := phiTables(sw, birth, death)
		if err != nil {
			t.Fatal(err)
		}
		psi := psiTableInto(nil, sw)
		sw.WalkStates(func(k []int) {
			w := stateWeightPsi(sw, psi, phi, k).Float64()
			chainSum += w
			for r, kr := range k {
				direct[r][kr] += w
			}
		})
		for r := range sw.Classes {
			sum := 0.0
			for j, p := range conv.ClassMarginals[r] {
				sum += p
				want := direct[r][j] / chainSum
				if !almostEqual(p, want, 1e-8) {
					t.Errorf("trial %d class %d: P(k=%d) = %v, direct %v (switch %+v)",
						trial, r, j, p, want, sw)
				}
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("trial %d class %d: marginal sums to %v", trial, r, sum)
			}
		}
		if t.Failed() {
			return
		}
	}
}

// TestCarriedPeakednessBelowOffered: blocking truncates the busy
// distribution, so carried traffic is smoother than offered — for a
// Poisson source the carried Z drops below 1 (the classical smoothing
// of carried traffic; its overflow complement is Wilkinson's peaky
// traffic [33]).
func TestCarriedPeakednessBelowOffered(t *testing.T) {
	sw := Switch{N1: 4, N2: 4, Classes: []Class{{A: 1, Alpha: 0.5, Mu: 1}}}
	res, err := SolveConvolution(sw)
	if err != nil {
		t.Fatal(err)
	}
	z := res.CarriedPeakedness(0)
	if z >= 1 || z <= 0 {
		t.Errorf("carried peakedness %v, want in (0,1) for blocked Poisson traffic", z)
	}
}

// TestCarriedPeakednessPanicsWithoutMarginals.
func TestCarriedPeakednessPanicsWithoutMarginals(t *testing.T) {
	sw := Switch{N1: 2, N2: 2, Classes: []Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	res, err := Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("CarriedPeakedness on algorithm1 result did not panic")
		}
	}()
	res.CarriedPeakedness(0)
}

// TestResultAccessors covers the derived-measure helpers.
func TestResultAccessors(t *testing.T) {
	sw := Switch{N1: 3, N2: 4, Classes: []Class{
		{Name: "v", A: 1, Alpha: 0.2, Mu: 2},
		{A: 2, Alpha: 0.05, Mu: 1},
	}}
	res, err := Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Throughput(0), res.Concurrency[0]*2; !almostEqual(got, want, 1e-12) {
		t.Errorf("Throughput = %v, want %v", got, want)
	}
	wantUtil := (res.Concurrency[0] + 2*res.Concurrency[1]) / 3
	if got := res.Utilization(); !almostEqual(got, wantUtil, 1e-12) {
		t.Errorf("Utilization = %v, want %v", got, wantUtil)
	}
	s := res.String()
	if s == "" || !containsAll(s, "3x4", "algorithm1", "v{", "class2{") {
		t.Errorf("String = %q", s)
	}
	if got, want := sw.StateCount(), int64(0); got == want {
		t.Error("StateCount returned 0")
	}
	if got := sw.OccupancyOf([]int{1, 1}); got != 3 {
		t.Errorf("OccupancyOf = %d, want 3", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestRevenuePanicsOnBadWeights covers the Result.Revenue guard.
func TestRevenuePanicsOnBadWeights(t *testing.T) {
	sw := Switch{N1: 2, N2: 2, Classes: []Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	res, err := Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Revenue with wrong weight count did not panic")
		}
	}()
	res.Revenue([]float64{1, 2})
}

// TestSolveDirectRatesValidation covers the error paths of the
// generalized direct evaluator.
func TestSolveDirectRatesValidation(t *testing.T) {
	sw := Switch{N1: 2, N2: 2, Classes: []Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	unit := []RateFunc{func(int) float64 { return 1 }}
	if _, err := SolveDirectRates(Switch{N1: 0, N2: 2}, unit, unit); err == nil {
		t.Error("bad dims accepted")
	}
	if _, err := SolveDirectRates(sw, nil, unit); err == nil {
		t.Error("mismatched rate slices accepted")
	}
	negBirth := []RateFunc{func(int) float64 { return -1 }}
	if _, err := SolveDirectRates(sw, negBirth, unit); err == nil {
		t.Error("negative birth rate accepted")
	}
	zeroDeath := []RateFunc{func(int) float64 { return 0 }}
	if _, err := SolveDirectRates(sw, unit, zeroDeath); err == nil {
		t.Error("zero death rate accepted")
	}
}

// TestPerRouteOversizedClass: converting an aggregate class wider than
// the switch keeps intensities finite (the state space then carries
// nothing).
func TestPerRouteOversizedClass(t *testing.T) {
	ac := AggregateClass{Name: "wide", A: 5, AlphaTilde: 0.1, Mu: 1}
	c := ac.PerRoute(3) // C(3,5) = 0
	if c.Alpha != 0.1 || c.A != 5 {
		t.Errorf("PerRoute with zero binom: %+v", c)
	}
}

// TestStateDependentServiceConstructor: the Section 2 dual — unit-rate
// Poisson arrivals with service mu(k) = k mu/(v + delta k) — solved
// through the BPP constructor equals the literal state-dependent-rates
// evaluation.
func TestStateDependentServiceConstructor(t *testing.T) {
	const (
		v     = 0.6
		delta = 0.3
		mu    = 1.1
	)
	sw := Switch{N1: 4, N2: 5, Classes: []Class{
		StateDependentServiceClass("dual", 1, v, delta, mu),
	}}
	viaBPP, err := SolveDirect(sw)
	if err != nil {
		t.Fatal(err)
	}
	literal, err := SolveDirectRates(sw,
		[]RateFunc{func(int) float64 { return 1 }},
		[]RateFunc{func(k int) float64 {
			return float64(k) * mu / (v + delta*float64(k))
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(viaBPP.NonBlocking[0], literal.NonBlocking[0], 1e-10) {
		t.Errorf("NonBlocking: BPP dual %v, literal %v", viaBPP.NonBlocking[0], literal.NonBlocking[0])
	}
	if !almostEqual(viaBPP.Concurrency[0], literal.Concurrency[0], 1e-10) {
		t.Errorf("Concurrency: BPP dual %v, literal %v", viaBPP.Concurrency[0], literal.Concurrency[0])
	}
}
