package core

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/parallel"
	"xbar/internal/scale"
)

// Solver runs the paper's Algorithm 1: the two-dimensional lattice
// recursion (Eq. 10) on the normalized constant Q(n) = G(n)/(n1! n2!),
//
//	Q(n + 1_i) = [ Q(n)
//	             + sum_{r in R1} a_r rho_r Q(n + 1_i - a_r I)
//	             + sum_{r in R2} a_r rho_r V(n + 1_i, r) ] / (n_i + 1),
//	V(m, r)    = Q(m - a_r I) + (beta_r/mu_r) V(m - a_r I, r),
//
// with Q = 0 off the non-negative lattice and Q(0) = 1. The whole grid
// is retained, so measures are available for every sub-switch
// (n1, n2) <= (N1, N2) — which is what the revenue analysis and the
// bursty-class concurrency recursion need.
//
// Arithmetic uses the scale package: this is the dynamic scaling of
// Section 6 applied at every step, letting the recursion run far past
// the N ~ 85 point where raw float64 underflows (Q(N) ~ 1/(N1! N2!)).
type Solver struct {
	sw  Switch
	opt Options
	// q holds Q on the (N1+1) x (N2+1) lattice, row-major by n1.
	q []scale.Number
	// poisson and bursty hold the per-class recursion constants,
	// hoisted out of the fill loops (one Frexp per class per solve
	// instead of several per cell).
	poisson []poissonTerm
	bursty  []burstyTerm
	// maxA is the largest class rate a_r, the boundary band width: at
	// cells with n1 >= maxA and n2 >= maxA every class displacement
	// lands on the lattice and the fill can skip the per-class guards.
	maxA int
	// wScratch recycles the bursty W lattices across Reuse calls.
	wScratch [][]scale.Acc
	// inv caches 1/n for n = 1..max(N1, N2): the fill multiplies by
	// the reciprocal of the cell count (scale.Acc.MulNorm) instead of
	// dividing, one rounding more than the exact division and ~15
	// cycles less per cell.
	inv []float64
}

// poissonTerm is one R1 class's hoisted fill constants.
type poissonTerm struct {
	a    int
	off  int          // lattice offset of the (a, a) displacement
	coef scale.Number // a_r * rho_r
}

// burstyTerm is one R2 class's hoisted fill constants plus its retained
// W lattice, the Eq. 9 V lattice pre-scaled by the class coefficient:
//
//	W(m, r) = a_r rho_r V(m, r)
//	        = a_r rho_r Q(m - a_r I) + (beta_r/mu_r) W(m - a_r I, r).
//
// Pre-scaling folds the a_r rho_r multiply of Eq. 10's class term into
// the W recursion itself, where it rides the Q(m - a_r I) product that
// is computed anyway; the Q accumulation then adds W verbatim. The
// cells are stored as raw scale.Acc working values — never normalized,
// which the fill's hot path is allowed because a W chain grows by at
// most one binary order per diagonal step (see scale.Acc).
type burstyTerm struct {
	a      int
	off    int          // lattice offset of the (a, a) displacement
	coef   scale.Number // a_r * rho_r
	betaMu scale.Number // beta_r / mu_r
	w      []scale.Acc
}

// NewSolver validates the switch and fills the Q lattice. An optional
// Options argument selects the fill schedule (see Parallel); the
// default is the auto heuristic.
func NewSolver(sw Switch, opts ...Options) (*Solver, error) {
	s := &Solver{}
	if err := s.Reuse(sw, opts...); err != nil {
		return nil, err
	}
	return s, nil
}

// Reuse re-points the solver at sw and refills the lattice, recycling
// the Q and V buffers whenever their capacity allows. This is the
// allocation-free path for repeated solves of same-size systems — the
// reduced-load fixed point (internal/network) and the perturbed
// re-solves of the revenue gradients run through it. An optional
// Options argument replaces the solver's fill schedule; without one
// the schedule set at construction is kept.
func (s *Solver) Reuse(sw Switch, opts ...Options) error {
	if err := sw.Validate(); err != nil {
		return err
	}
	if len(opts) > 0 {
		s.opt = opts[0]
	}
	s.sw = sw
	size := (sw.N1 + 1) * (sw.N2 + 1)
	if cap(s.q) >= size {
		s.q = s.q[:size]
	} else {
		s.q = make([]scale.Number, size)
	}
	s.prepare(size)
	s.fill()
	return nil
}

// prepare rebuilds the hoisted per-class terms, recycling previously
// allocated V lattices.
func (s *Solver) prepare(size int) {
	s.poisson = s.poisson[:0]
	s.bursty = s.bursty[:0]
	if maxN := s.sw.MaxN(); len(s.inv) <= maxN {
		s.inv = make([]float64, maxN+1)
		for n := 1; n <= maxN; n++ {
			s.inv[n] = 1 / float64(n)
		}
	}
	n2w := s.sw.N2 + 1
	wUsed := 0
	s.maxA = 0
	for _, c := range s.sw.Classes {
		s.maxA = max(s.maxA, c.A)
		if c.IsPoisson() {
			s.poisson = append(s.poisson, poissonTerm{
				a:    c.A,
				off:  c.A*n2w + c.A,
				coef: scale.FromFloat64(float64(c.A) * c.Rho()),
			})
			continue
		}
		if wUsed == len(s.wScratch) {
			s.wScratch = append(s.wScratch, nil)
		}
		w := s.wScratch[wUsed]
		if cap(w) >= size {
			w = w[:size]
		} else {
			w = make([]scale.Acc, size)
		}
		s.wScratch[wUsed] = w
		wUsed++
		s.bursty = append(s.bursty, burstyTerm{
			a:      c.A,
			off:    c.A*n2w + c.A,
			coef:   scale.FromFloat64(float64(c.A) * c.Rho()),
			betaMu: scale.FromFloat64(c.BetaMu()),
			w:      w,
		})
	}
}

// Solve computes the performance measures for sw with Algorithm 1. An
// optional Options argument selects the fill schedule.
func Solve(sw Switch, opts ...Options) (*Result, error) {
	s, err := NewSolver(sw, opts...)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// at returns Q(n1, n2), or zero off the lattice.
func (s *Solver) at(n1, n2 int) scale.Number {
	if n1 < 0 || n2 < 0 {
		return scale.Zero
	}
	return s.q[n1*(s.sw.N2+1)+n2]
}

// fill runs the Eq. 10 recursion over the whole lattice: sequentially
// in row-major order, or — when the resolved Options ask for it — as a
// tiled wavefront on parallel.Wavefront. Every cell's dependencies
// (the 1_i neighbor, the (a, a) diagonal predecessors, and the V
// lattices' own (a, a) predecessors) live at strictly smaller n1 + n2,
// so anti-diagonal tile order is a topological order and the parallel
// fill computes bit-identical lattices for any worker count and tile
// size. All per-cell state (the scale.Acc) is stack-local to fillBlock,
// so no accumulator or Frexp state ever crosses goroutines.
func (s *Solver) fill() {
	rows, cols := s.sw.N1+1, s.sw.N2+1
	w, tile := s.opt.plan(rows, cols)
	if w <= 1 {
		s.fillBlock(0, rows, 0, cols)
		return
	}
	parallel.Wavefront(w, rows, cols, tile, s.fillBlock)
}

// fillBlock runs the recursion over the half-open cell block
// [n1lo, n1hi) x [n2lo, n2hi) in row-major order. The loop body works
// on flat indices with hoisted per-class constants and a deferred-
// normalization accumulator (scale.Acc): each cell costs one
// renormalization instead of several per class, which is where
// Algorithm 1 spends its time at N = 256. The n1 = 0 boundary row
// (step direction 2, no class terms reachable) is split out so the
// main loop carries no per-cell direction or origin branches, and each
// row splits into the guarded boundary band (n2 < maxA, some class
// displacement may fall off the lattice) and the unguarded interior.
// Whether a cell takes the guarded or the interior body depends only
// on its coordinates, never on the schedule, so the split preserves
// the parallel fill's bit-identity guarantee.
func (s *Solver) fillBlock(n1lo, n1hi, n2lo, n2hi int) {
	n2w := s.sw.N2 + 1
	n1 := n1lo
	if n1 == 0 {
		s.fillRow0(n2lo, n2hi)
		n1++
	}
	for ; n1 < n1hi; n1++ {
		base := n1 * n2w
		inv1 := s.inv[n1]
		n2 := n2lo
		if n1 < s.maxA {
			// The whole row sits in the boundary band.
			for ; n2 < n2hi; n2++ {
				s.fillCellGuarded(n1, n2, base+n2)
			}
			continue
		}
		for lim := min(s.maxA, n2hi); n2 < lim; n2++ {
			s.fillCellGuarded(n1, n2, base+n2)
		}
		if len(s.poisson) == 1 && len(s.bursty) == 1 {
			// The paper's canonical mix — one Poisson plus one bursty
			// class (every Section 7 figure) — goes through the fused
			// cell kernel scale.QCellPB: one call per cell instead of
			// one per accumulated term, with all class state hoisted
			// into registers. The kernel is bit-identical to the
			// generic body's wrapper sequence (TestQCellPB).
			p0, b0 := &s.poisson[0], &s.bursty[0]
			cp, poff := p0.coef, p0.off
			cb, bm, boff, w := b0.coef, b0.betaMu, b0.off, b0.w
			// Row-segment views, each re-sliced to the segment length
			// so the per-cell indexing below carries no bounds checks.
			lo, seg := base+n2, n2hi-n2
			if seg <= 0 {
				// The guarded band covered the whole segment; the
				// displaced views below would underflow the lattice.
				continue
			}
			qr := s.q[lo : lo+seg]
			qu := s.q[lo-n2w:]
			qu = qu[:seg]
			qp := s.q[lo-poff:]
			qp = qp[:seg]
			qb := s.q[lo-boff:]
			qb = qb[:seg]
			wd := w[lo-boff:]
			wd = wd[:seg]
			wr := w[lo : lo+seg]
			for k := range qr {
				q, wa := scale.QCellPB(qu[k], qp[k], qb[k], wd[k], cp, cb, bm, inv1)
				wr[k] = wa
				qr[k] = q
			}
			continue
		}
		for ; n2 < n2hi; n2++ {
			i := base + n2
			// Step in direction i = 1: Q(n) plus the class terms, all
			// divided by n1. Every displacement is on the lattice, so
			// no per-class guards.
			var acc scale.Acc
			acc.Init(s.q[i-n2w])
			for j := range s.poisson {
				p := &s.poisson[j]
				acc.AddMul(s.q[i-p.off], p.coef)
			}
			// W(m, r) = a_r rho_r Q(m - a I) + (beta/mu) W(m - a I, r),
			// folded into the accumulation as it is produced.
			for j := range s.bursty {
				b := &s.bursty[j]
				p := i - b.off
				var wa scale.Acc
				wa.InitMul(s.q[p], b.coef)
				wa.AddMulAcc(b.w[p], b.betaMu)
				b.w[i] = wa
				acc.AddAcc(wa)
			}
			s.q[i] = acc.MulNorm(inv1)
		}
	}
}

// fillCellGuarded is the boundary-band cell body: identical to the
// interior body of fillBlock except that every class displacement is
// range-checked against the lattice edge (off-lattice Q and W are
// zero).
func (s *Solver) fillCellGuarded(n1, n2, i int) {
	var acc scale.Acc
	acc.Init(s.q[i-s.sw.N2-1])
	for j := range s.poisson {
		p := &s.poisson[j]
		if n1 >= p.a && n2 >= p.a {
			acc.AddMul(s.q[i-p.off], p.coef)
		}
	}
	for j := range s.bursty {
		b := &s.bursty[j]
		if n1 >= b.a && n2 >= b.a {
			p := i - b.off
			var wa scale.Acc
			wa.InitMul(s.q[p], b.coef)
			wa.AddMulAcc(b.w[p], b.betaMu)
			b.w[i] = wa
			acc.AddAcc(wa)
		} else {
			b.w[i] = scale.Acc{}
		}
	}
	s.q[i] = acc.MulNorm(s.inv[n1])
}

// fillRow0 fills the n1 = 0 boundary row of the block: Q(0, 0) = 1 and
// Q(0, n2) = Q(0, n2-1)/n2 (every class term needs n1 >= a_r >= 1, and
// the W lattices are zero on the row for the same reason).
func (s *Solver) fillRow0(n2lo, n2hi int) {
	for j := range s.bursty {
		w := s.bursty[j].w
		for n2 := n2lo; n2 < n2hi; n2++ {
			w[n2] = scale.Acc{}
		}
	}
	n2 := n2lo
	if n2 == 0 {
		s.q[0] = scale.One
		n2++
	}
	for ; n2 < n2hi; n2++ {
		var acc scale.Acc
		acc.Init(s.q[n2-1])
		s.q[n2] = acc.MulNorm(s.inv[n2])
	}
}

// Result returns the measures at the full switch size.
func (s *Solver) Result() *Result {
	return s.ResultAt(s.sw.N1, s.sw.N2)
}

// ResultAt returns the measures for the sub-switch (n1, n2) with the
// same per-route traffic classes. Panics if (n1, n2) exceeds the solved
// lattice or is not positive.
func (s *Solver) ResultAt(n1, n2 int) *Result {
	if n1 < 1 || n2 < 1 || n1 > s.sw.N1 || n2 > s.sw.N2 {
		//lint:allow libpanic out-of-range lattice index is a caller bug, same contract as slice indexing
		panic(fmt.Sprintf("core: ResultAt(%d, %d) outside solved lattice %dx%d",
			n1, n2, s.sw.N1, s.sw.N2))
	}
	sub := Switch{N1: n1, N2: n2, Classes: s.sw.Classes}
	res := &Result{
		Switch:      sub,
		Method:      "algorithm1",
		NonBlocking: make([]float64, len(sub.Classes)),
		Concurrency: make([]float64, len(sub.Classes)),
	}
	qn := s.at(n1, n2)
	res.LogG = qn.Log() + combin.LogFactorial(n1) + combin.LogFactorial(n2)

	for r, c := range sub.Classes {
		a := c.A
		if a > sub.MinN() {
			res.NonBlocking[r] = 0
			res.Concurrency[r] = 0
			continue
		}
		// B_r = Q(N - a I) / (P(N1,a) P(N2,a) Q(N))  (Step 3).
		res.NonBlocking[r] = s.at(n1-a, n2-a).Ratio(qn) /
			(combin.Perm(n1, a) * combin.Perm(n2, a))
		res.Concurrency[r] = s.concurrency(r, n1, n2)
	}
	res.finish()
	return res
}

// concurrency evaluates E_r at (n1, n2). For Poisson classes:
//
//	E_r(N) = rho_r P(N1,a) P(N2,a) G(N-aI)/G(N),
//
// and for bursty classes the diagonal recursion
//
//	E_r(N) = P(N1,a) P(N2,a) G(N-aI)/G(N) { rho_r + (beta/mu) E_r(N-aI) },
//
// with E_r = 0 once the switch is smaller than a_r. The paper's
// Section 3 prints binomial factors C(N_i, a_r) here, but the product
// form it derives from (Psi built from falling factorials, i.e. the
// per-ordered-route arrival convention) requires permutations
// P(N_i, a_r) = a_r!^2-times larger; the two agree only when a_r = 1,
// which is all the paper's numerical section uses. Direct state-space
// summation (E_r = sum k_r pi(k)) confirms the permutation form; see
// TestCrossValidation.
func (s *Solver) concurrency(r, n1, n2 int) float64 {
	c := s.sw.Classes[r]
	a := c.A
	// Walk down the diagonal chain N, N-aI, N-2aI, ... and fold back up.
	var depths []struct{ m1, m2 int }
	for m1, m2 := n1, n2; m1 >= a && m2 >= a; m1, m2 = m1-a, m2-a {
		depths = append(depths, struct{ m1, m2 int }{m1, m2})
	}
	e := 0.0
	for i := len(depths) - 1; i >= 0; i-- {
		d := depths[i]
		gRatio := s.at(d.m1-a, d.m2-a).Ratio(s.at(d.m1, d.m2)) /
			(combin.Perm(d.m1, a) * combin.Perm(d.m2, a)) // G(M-aI)/G(M)
		cc := combin.Perm(d.m1, a) * combin.Perm(d.m2, a)
		if c.IsPoisson() {
			e = c.Rho() * cc * gRatio
		} else {
			e = cc * gRatio * (c.Rho() + c.BetaMu()*e)
		}
	}
	return e
}

// SolveUnscaled runs Algorithm 1 in raw float64 with no dynamic
// scaling, exactly as Eq. 10 reads before Section 6 is applied. It
// returns an error when the recursion under- or overflows, which
// happens once min(N1, N2) reaches roughly 85 — the ablation
// demonstrating why Section 6 exists.
func SolveUnscaled(sw Switch) (*Result, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	n1max, n2max := sw.N1, sw.N2
	q := make([]float64, (n1max+1)*(n2max+1))
	idx := func(n1, n2 int) int { return n1*(n2max+1) + n2 }
	at := func(n1, n2 int) float64 {
		if n1 < 0 || n2 < 0 {
			return 0
		}
		return q[idx(n1, n2)]
	}
	type bc struct {
		a           int
		rho, betaMu float64
		v           []float64
	}
	var bursty []bc
	for _, c := range sw.Classes {
		if !c.IsPoisson() {
			bursty = append(bursty, bc{a: c.A, rho: c.Rho(), betaMu: c.BetaMu(),
				v: make([]float64, (n1max+1)*(n2max+1))})
		}
	}
	for n1 := 0; n1 <= n1max; n1++ {
		for n2 := 0; n2 <= n2max; n2++ {
			for j := range bursty {
				b := &bursty[j]
				var v float64
				if n1-b.a >= 0 && n2-b.a >= 0 {
					v = at(n1-b.a, n2-b.a) + b.betaMu*b.v[idx(n1-b.a, n2-b.a)]
				}
				b.v[idx(n1, n2)] = v
			}
			if n1 == 0 && n2 == 0 {
				q[0] = 1
				continue
			}
			var sum, div float64
			if n1 > 0 {
				sum = at(n1-1, n2)
				div = float64(n1)
			} else {
				sum = at(0, n2-1)
				div = float64(n2)
			}
			for _, c := range sw.Classes {
				if c.IsPoisson() {
					sum += float64(c.A) * c.Rho() * at(n1-c.A, n2-c.A)
				}
			}
			for j := range bursty {
				b := &bursty[j]
				sum += float64(b.a) * b.rho * b.v[idx(n1, n2)]
			}
			q[idx(n1, n2)] = sum / div
		}
	}
	qn := q[idx(n1max, n2max)]
	if qn == 0 || math.IsInf(qn, 0) || math.IsNaN(qn) { //lint:allow floatcmp detects exact underflow-to-zero of the unscaled recursion
		return nil, fmt.Errorf("core: unscaled Algorithm 1 lost Q(N) to %v at %dx%d; use Solve (dynamic scaling)",
			qn, n1max, n2max)
	}
	res := &Result{
		Switch:      sw,
		Method:      "algorithm1-unscaled",
		NonBlocking: make([]float64, len(sw.Classes)),
		Concurrency: make([]float64, len(sw.Classes)),
		LogG:        math.Log(qn) + combin.LogFactorial(n1max) + combin.LogFactorial(n2max),
	}
	for r, c := range sw.Classes {
		a := c.A
		if a > sw.MinN() {
			continue
		}
		res.NonBlocking[r] = at(n1max-a, n2max-a) / qn /
			(combin.Perm(n1max, a) * combin.Perm(n2max, a))
		// Concurrency via the same Section 3 diagonal recursion on the
		// raw lattice; precision loss here is part of the ablation.
		e := 0.0
		var chain []struct{ m1, m2 int }
		for m1, m2 := n1max, n2max; m1 >= a && m2 >= a; m1, m2 = m1-a, m2-a {
			chain = append(chain, struct{ m1, m2 int }{m1, m2})
		}
		for i := len(chain) - 1; i >= 0; i-- {
			d := chain[i]
			gRatio := at(d.m1-a, d.m2-a) / at(d.m1, d.m2) /
				(combin.Perm(d.m1, a) * combin.Perm(d.m2, a))
			cc := combin.Perm(d.m1, a) * combin.Perm(d.m2, a)
			if c.IsPoisson() {
				e = c.Rho() * cc * gRatio
			} else {
				e = cc * gRatio * (c.Rho() + c.BetaMu()*e)
			}
		}
		res.Concurrency[r] = e
	}
	res.finish()
	return res, nil
}
