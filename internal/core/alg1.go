package core

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/scale"
)

// Solver runs the paper's Algorithm 1: the two-dimensional lattice
// recursion (Eq. 10) on the normalized constant Q(n) = G(n)/(n1! n2!),
//
//	Q(n + 1_i) = [ Q(n)
//	             + sum_{r in R1} a_r rho_r Q(n + 1_i - a_r I)
//	             + sum_{r in R2} a_r rho_r V(n + 1_i, r) ] / (n_i + 1),
//	V(m, r)    = Q(m - a_r I) + (beta_r/mu_r) V(m - a_r I, r),
//
// with Q = 0 off the non-negative lattice and Q(0) = 1. The whole grid
// is retained, so measures are available for every sub-switch
// (n1, n2) <= (N1, N2) — which is what the revenue analysis and the
// bursty-class concurrency recursion need.
//
// Arithmetic uses the scale package: this is the dynamic scaling of
// Section 6 applied at every step, letting the recursion run far past
// the N ~ 85 point where raw float64 underflows (Q(N) ~ 1/(N1! N2!)).
type Solver struct {
	sw Switch
	// q holds Q on the (N1+1) x (N2+1) lattice, row-major by n1.
	q []scale.Number
	// poisson and bursty hold the per-class recursion constants,
	// hoisted out of the fill loops (one Frexp per class per solve
	// instead of several per cell).
	poisson []poissonTerm
	bursty  []burstyTerm
	// vScratch recycles the bursty V lattices across Reuse calls.
	vScratch [][]scale.Number
}

// poissonTerm is one R1 class's hoisted fill constants.
type poissonTerm struct {
	a    int
	off  int          // lattice offset of the (a, a) displacement
	coef scale.Number // a_r * rho_r
}

// burstyTerm is one R2 class's hoisted fill constants plus its retained
// V lattice (Eq. 9).
type burstyTerm struct {
	a      int
	off    int          // lattice offset of the (a, a) displacement
	coef   scale.Number // a_r * rho_r
	betaMu scale.Number // beta_r / mu_r
	v      []scale.Number
}

// NewSolver validates the switch and fills the Q lattice.
func NewSolver(sw Switch) (*Solver, error) {
	s := &Solver{}
	if err := s.Reuse(sw); err != nil {
		return nil, err
	}
	return s, nil
}

// Reuse re-points the solver at sw and refills the lattice, recycling
// the Q and V buffers whenever their capacity allows. This is the
// allocation-free path for repeated solves of same-size systems — the
// reduced-load fixed point (internal/network) and the perturbed
// re-solves of the revenue gradients run through it.
func (s *Solver) Reuse(sw Switch) error {
	if err := sw.Validate(); err != nil {
		return err
	}
	s.sw = sw
	size := (sw.N1 + 1) * (sw.N2 + 1)
	if cap(s.q) >= size {
		s.q = s.q[:size]
	} else {
		s.q = make([]scale.Number, size)
	}
	s.prepare(size)
	s.fill()
	return nil
}

// prepare rebuilds the hoisted per-class terms, recycling previously
// allocated V lattices.
func (s *Solver) prepare(size int) {
	s.poisson = s.poisson[:0]
	s.bursty = s.bursty[:0]
	n2w := s.sw.N2 + 1
	vUsed := 0
	for _, c := range s.sw.Classes {
		if c.IsPoisson() {
			s.poisson = append(s.poisson, poissonTerm{
				a:    c.A,
				off:  c.A*n2w + c.A,
				coef: scale.FromFloat64(float64(c.A) * c.Rho()),
			})
			continue
		}
		if vUsed == len(s.vScratch) {
			s.vScratch = append(s.vScratch, nil)
		}
		v := s.vScratch[vUsed]
		if cap(v) >= size {
			v = v[:size]
		} else {
			v = make([]scale.Number, size)
		}
		s.vScratch[vUsed] = v
		vUsed++
		s.bursty = append(s.bursty, burstyTerm{
			a:      c.A,
			off:    c.A*n2w + c.A,
			coef:   scale.FromFloat64(float64(c.A) * c.Rho()),
			betaMu: scale.FromFloat64(c.BetaMu()),
			v:      v,
		})
	}
}

// Solve computes the performance measures for sw with Algorithm 1.
func Solve(sw Switch) (*Result, error) {
	s, err := NewSolver(sw)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// at returns Q(n1, n2), or zero off the lattice.
func (s *Solver) at(n1, n2 int) scale.Number {
	if n1 < 0 || n2 < 0 {
		return scale.Zero
	}
	return s.q[n1*(s.sw.N2+1)+n2]
}

// fill runs the recursion over the lattice in row-major order. The V
// auxiliary functions (Eq. 9) follow a pure diagonal recursion, so one
// grid per bursty class is filled alongside Q. The loop body works on
// flat indices with hoisted per-class constants and a deferred-
// normalization accumulator (scale.Acc): each cell costs one
// renormalization instead of several per class, which is where
// Algorithm 1 spends its time at N = 256.
func (s *Solver) fill() {
	n2w := s.sw.N2 + 1
	for n1 := 0; n1 <= s.sw.N1; n1++ {
		base := n1 * n2w
		for n2 := 0; n2 <= s.sw.N2; n2++ {
			i := base + n2
			// V(m, r) = Q(m - a I) + (beta/mu) V(m - a I, r), with
			// Q = V = 0 off the non-negative lattice.
			for j := range s.bursty {
				b := &s.bursty[j]
				if n1 >= b.a && n2 >= b.a {
					p := i - b.off
					b.v[i] = s.q[p].AddMul(b.v[p], b.betaMu)
				} else {
					b.v[i] = scale.Zero
				}
			}
			if i == 0 {
				s.q[0] = scale.One
				continue
			}
			// Step in direction i = 1 when possible, else i = 2.
			var acc scale.Acc
			var div float64
			if n1 > 0 {
				acc.Init(s.q[i-n2w])
				div = float64(n1)
			} else {
				acc.Init(s.q[i-1])
				div = float64(n2)
			}
			for j := range s.poisson {
				p := &s.poisson[j]
				if n1 >= p.a && n2 >= p.a {
					acc.AddMul(s.q[i-p.off], p.coef)
				}
			}
			for j := range s.bursty {
				b := &s.bursty[j]
				acc.AddMul(b.v[i], b.coef)
			}
			s.q[i] = acc.DivFloat(div)
		}
	}
}

// Result returns the measures at the full switch size.
func (s *Solver) Result() *Result {
	return s.ResultAt(s.sw.N1, s.sw.N2)
}

// ResultAt returns the measures for the sub-switch (n1, n2) with the
// same per-route traffic classes. Panics if (n1, n2) exceeds the solved
// lattice or is not positive.
func (s *Solver) ResultAt(n1, n2 int) *Result {
	if n1 < 1 || n2 < 1 || n1 > s.sw.N1 || n2 > s.sw.N2 {
		//lint:allow libpanic out-of-range lattice index is a caller bug, same contract as slice indexing
		panic(fmt.Sprintf("core: ResultAt(%d, %d) outside solved lattice %dx%d",
			n1, n2, s.sw.N1, s.sw.N2))
	}
	sub := Switch{N1: n1, N2: n2, Classes: s.sw.Classes}
	res := &Result{
		Switch:      sub,
		Method:      "algorithm1",
		NonBlocking: make([]float64, len(sub.Classes)),
		Concurrency: make([]float64, len(sub.Classes)),
	}
	qn := s.at(n1, n2)
	res.LogG = qn.Log() + combin.LogFactorial(n1) + combin.LogFactorial(n2)

	for r, c := range sub.Classes {
		a := c.A
		if a > sub.MinN() {
			res.NonBlocking[r] = 0
			res.Concurrency[r] = 0
			continue
		}
		// B_r = Q(N - a I) / (P(N1,a) P(N2,a) Q(N))  (Step 3).
		res.NonBlocking[r] = s.at(n1-a, n2-a).Ratio(qn) /
			(combin.Perm(n1, a) * combin.Perm(n2, a))
		res.Concurrency[r] = s.concurrency(r, n1, n2)
	}
	res.finish()
	return res
}

// concurrency evaluates E_r at (n1, n2). For Poisson classes:
//
//	E_r(N) = rho_r P(N1,a) P(N2,a) G(N-aI)/G(N),
//
// and for bursty classes the diagonal recursion
//
//	E_r(N) = P(N1,a) P(N2,a) G(N-aI)/G(N) { rho_r + (beta/mu) E_r(N-aI) },
//
// with E_r = 0 once the switch is smaller than a_r. The paper's
// Section 3 prints binomial factors C(N_i, a_r) here, but the product
// form it derives from (Psi built from falling factorials, i.e. the
// per-ordered-route arrival convention) requires permutations
// P(N_i, a_r) = a_r!^2-times larger; the two agree only when a_r = 1,
// which is all the paper's numerical section uses. Direct state-space
// summation (E_r = sum k_r pi(k)) confirms the permutation form; see
// TestCrossValidation.
func (s *Solver) concurrency(r, n1, n2 int) float64 {
	c := s.sw.Classes[r]
	a := c.A
	// Walk down the diagonal chain N, N-aI, N-2aI, ... and fold back up.
	var depths []struct{ m1, m2 int }
	for m1, m2 := n1, n2; m1 >= a && m2 >= a; m1, m2 = m1-a, m2-a {
		depths = append(depths, struct{ m1, m2 int }{m1, m2})
	}
	e := 0.0
	for i := len(depths) - 1; i >= 0; i-- {
		d := depths[i]
		gRatio := s.at(d.m1-a, d.m2-a).Ratio(s.at(d.m1, d.m2)) /
			(combin.Perm(d.m1, a) * combin.Perm(d.m2, a)) // G(M-aI)/G(M)
		cc := combin.Perm(d.m1, a) * combin.Perm(d.m2, a)
		if c.IsPoisson() {
			e = c.Rho() * cc * gRatio
		} else {
			e = cc * gRatio * (c.Rho() + c.BetaMu()*e)
		}
	}
	return e
}

// SolveUnscaled runs Algorithm 1 in raw float64 with no dynamic
// scaling, exactly as Eq. 10 reads before Section 6 is applied. It
// returns an error when the recursion under- or overflows, which
// happens once min(N1, N2) reaches roughly 85 — the ablation
// demonstrating why Section 6 exists.
func SolveUnscaled(sw Switch) (*Result, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	n1max, n2max := sw.N1, sw.N2
	q := make([]float64, (n1max+1)*(n2max+1))
	idx := func(n1, n2 int) int { return n1*(n2max+1) + n2 }
	at := func(n1, n2 int) float64 {
		if n1 < 0 || n2 < 0 {
			return 0
		}
		return q[idx(n1, n2)]
	}
	type bc struct {
		a           int
		rho, betaMu float64
		v           []float64
	}
	var bursty []bc
	for _, c := range sw.Classes {
		if !c.IsPoisson() {
			bursty = append(bursty, bc{a: c.A, rho: c.Rho(), betaMu: c.BetaMu(),
				v: make([]float64, (n1max+1)*(n2max+1))})
		}
	}
	for n1 := 0; n1 <= n1max; n1++ {
		for n2 := 0; n2 <= n2max; n2++ {
			for j := range bursty {
				b := &bursty[j]
				var v float64
				if n1-b.a >= 0 && n2-b.a >= 0 {
					v = at(n1-b.a, n2-b.a) + b.betaMu*b.v[idx(n1-b.a, n2-b.a)]
				}
				b.v[idx(n1, n2)] = v
			}
			if n1 == 0 && n2 == 0 {
				q[0] = 1
				continue
			}
			var sum, div float64
			if n1 > 0 {
				sum = at(n1-1, n2)
				div = float64(n1)
			} else {
				sum = at(0, n2-1)
				div = float64(n2)
			}
			for _, c := range sw.Classes {
				if c.IsPoisson() {
					sum += float64(c.A) * c.Rho() * at(n1-c.A, n2-c.A)
				}
			}
			for j := range bursty {
				b := &bursty[j]
				sum += float64(b.a) * b.rho * b.v[idx(n1, n2)]
			}
			q[idx(n1, n2)] = sum / div
		}
	}
	qn := q[idx(n1max, n2max)]
	if qn == 0 || math.IsInf(qn, 0) || math.IsNaN(qn) { //lint:allow floatcmp detects exact underflow-to-zero of the unscaled recursion
		return nil, fmt.Errorf("core: unscaled Algorithm 1 lost Q(N) to %v at %dx%d; use Solve (dynamic scaling)",
			qn, n1max, n2max)
	}
	res := &Result{
		Switch:      sw,
		Method:      "algorithm1-unscaled",
		NonBlocking: make([]float64, len(sw.Classes)),
		Concurrency: make([]float64, len(sw.Classes)),
		LogG:        math.Log(qn) + combin.LogFactorial(n1max) + combin.LogFactorial(n2max),
	}
	for r, c := range sw.Classes {
		a := c.A
		if a > sw.MinN() {
			continue
		}
		res.NonBlocking[r] = at(n1max-a, n2max-a) / qn /
			(combin.Perm(n1max, a) * combin.Perm(n2max, a))
		// Concurrency via the same Section 3 diagonal recursion on the
		// raw lattice; precision loss here is part of the ablation.
		e := 0.0
		var chain []struct{ m1, m2 int }
		for m1, m2 := n1max, n2max; m1 >= a && m2 >= a; m1, m2 = m1-a, m2-a {
			chain = append(chain, struct{ m1, m2 int }{m1, m2})
		}
		for i := len(chain) - 1; i >= 0; i-- {
			d := chain[i]
			gRatio := at(d.m1-a, d.m2-a) / at(d.m1, d.m2) /
				(combin.Perm(d.m1, a) * combin.Perm(d.m2, a))
			cc := combin.Perm(d.m1, a) * combin.Perm(d.m2, a)
			if c.IsPoisson() {
				e = c.Rho() * cc * gRatio
			} else {
				e = cc * gRatio * (c.Rho() + c.BetaMu()*e)
			}
		}
		res.Concurrency[r] = e
	}
	res.finish()
	return res, nil
}
