package core

import (
	"xbar/internal/scale"
)

// SolveConvolution evaluates the performance measures by convolving the
// per-class factors over the total-occupancy axis:
//
//	g(s) = sum_{k : k.A = s} prod_r Phi_r(k_r),
//	G(N) = sum_s Psi(s) g(s),   Psi(s) = P(N1,s) P(N2,s).
//
// Its cost is O(R * S^2) with S = min(N1,N2) — polynomial where
// SolveDirect is exponential in R — and it additionally produces the
// occupancy distribution P(k.A = s). It is the second independent
// cross-check for the paper's recursive algorithms, in the spirit of
// the Kaufman–Roberts occupancy recursion for multirate links.
func SolveConvolution(sw Switch) (*Result, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	birth := make([]RateFunc, len(sw.Classes))
	death := make([]RateFunc, len(sw.Classes))
	for i, c := range sw.Classes {
		c := c
		birth[i] = c.Rate
		death[i] = func(k int) float64 { return float64(k) * c.Mu }
	}
	phi, err := phiTables(sw, birth, death)
	if err != nil {
		return nil, err
	}

	s := sw.MinN()
	psi := psiTableInto(nil, sw)

	// Full convolution across every class. The result must survive the
	// per-class marginal loop below, so it gets its own scratch pair;
	// the per-class gRest convolutions share a second pair across
	// classes instead of allocating two vectors per class.
	var gBuf, restBuf convScratch
	g := convolveAll(sw, phi, -1, s, &gBuf)

	gn := scale.Zero
	for occ := 0; occ <= s; occ++ {
		gn = gn.Add(psi[occ].Mul(g[occ]))
	}

	res := &Result{
		Switch:         sw,
		Method:         "convolution",
		NonBlocking:    make([]float64, len(sw.Classes)),
		Concurrency:    make([]float64, len(sw.Classes)),
		LogG:           gn.Log(),
		Occupancy:      make([]float64, s+1),
		ClassMarginals: make([][]float64, len(sw.Classes)),
	}
	for occ := 0; occ <= s; occ++ {
		res.Occupancy[occ] = psi[occ].Mul(g[occ]).Ratio(gn)
	}

	var psiSub, marg []scale.Number
	for r, c := range sw.Classes {
		// Non-blocking probability from the sub-switch normalization:
		// G(N - a_r I) reuses the same g(s) (Phi does not depend on N)
		// with the sub-switch Psi and occupancy bound.
		if c.A > s {
			res.NonBlocking[r] = 0
			res.ClassMarginals[r] = []float64{1} // k_r is identically 0
			continue
		}
		sub := sw.Sub(c.A)
		psiSub = psiTableInto(psiSub, sub)
		gSub := scale.Zero
		for occ := 0; occ <= sub.MinN(); occ++ {
			gSub = gSub.Add(psiSub[occ].Mul(g[occ]))
		}
		res.NonBlocking[r] = gSub.Ratio(gn)

		// Full class marginal: P(k_r = j) ~ Phi_r(j) sum_s Psi(s)
		// gRest(s - j a_r), with gRest the convolution excluding class
		// r; concurrency is its mean.
		gRest := convolveAll(sw, phi, r, s, &restBuf)
		marg = grow(marg, sw.maxCount(r)+1)
		for j := 0; j <= sw.maxCount(r); j++ {
			acc := scale.Zero
			for occ := j * c.A; occ <= s; occ++ {
				rest := gRest[occ-j*c.A]
				if rest.IsZero() {
					continue
				}
				acc = acc.Add(psi[occ].Mul(rest))
			}
			marg[j] = phi[r][j].Mul(acc)
		}
		pm := make([]float64, len(marg))
		mean := 0.0
		for j, v := range marg {
			pm[j] = v.Ratio(gn)
			mean += float64(j) * pm[j]
		}
		res.ClassMarginals[r] = pm
		res.Concurrency[r] = mean
	}
	res.finish()
	return res, nil
}

// convScratch is the ping-pong buffer pair one chain of convolveClass
// folds alternates between, so a convolution of any class count costs
// at most two vector allocations per solve instead of one per class.
type convScratch struct{ a, b []scale.Number }

// convolveAll convolves the Phi weight vectors of every class except
// skip (pass skip = -1 to include all) on the occupancy axis 0..s. The
// returned vector aliases one of buf's slices and stays valid until
// the next convolveAll call with the same buf.
func convolveAll(sw Switch, phi [][]scale.Number, skip, s int, buf *convScratch) []scale.Number {
	buf.a = grow(buf.a, s+1)
	g := buf.a
	clear(g)
	g[0] = scale.One
	buf.b = grow(buf.b, s+1)
	out := buf.b
	for r := range sw.Classes {
		if r == skip {
			continue
		}
		convolveClass(out, g, phi[r], sw.Classes[r].A, s)
		g, out = out, g
	}
	return g
}

// convolveClass folds one class's weights w[j] (occupying j*a units)
// into the running occupancy vector g, writing the result over out.
func convolveClass(out, g, w []scale.Number, a, s int) {
	clear(out)
	for occ := 0; occ <= s; occ++ {
		if g[occ].IsZero() {
			continue
		}
		for j := 0; j < len(w) && occ+j*a <= s; j++ {
			if w[j].IsZero() {
				continue
			}
			out[occ+j*a] = out[occ+j*a].Add(g[occ].Mul(w[j]))
		}
	}
}

// grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient; contents are unspecified.
func grow(buf []scale.Number, n int) []scale.Number {
	if cap(buf) < n {
		return make([]scale.Number, n)
	}
	return buf[:n]
}
