package core

import (
	"strings"
	"testing"

	"xbar/internal/floats"
)

// sweepCases are the class mixes the equivalence tests sweep: the
// amortization guard of the ISSUE — Poisson-only, bursty-only, and
// mixed traffic including bandwidths a >= 2.
var sweepCases = []struct {
	name    string
	classes []Class
}{
	{"poisson-only", []Class{
		{Name: "p1", A: 1, Alpha: 0.02, Mu: 1},
	}},
	{"bursty-only", []Class{
		{Name: "peaky", A: 1, Alpha: 0.015, Beta: 0.004, Mu: 1},
	}},
	{"smooth", []Class{
		{Name: "smooth", A: 1, Alpha: 0.02, Beta: -1e-5, Mu: 1},
	}},
	{"mixed-multirate", []Class{
		{Name: "p1", A: 1, Alpha: 0.02, Mu: 1},
		{Name: "peaky2", A: 2, Alpha: 0.003, Beta: 0.001, Mu: 0.5},
		{Name: "p3", A: 3, Alpha: 0.0005, Mu: 1},
	}},
}

func resultsMatch(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if !floats.AlmostEqual(got.LogG, want.LogG, floats.DefaultTol) {
		t.Errorf("%s: LogG = %v, want %v", tag, got.LogG, want.LogG)
	}
	for r := range want.NonBlocking {
		if !floats.AlmostEqual(got.NonBlocking[r], want.NonBlocking[r], floats.DefaultTol) {
			t.Errorf("%s: NonBlocking[%d] = %v, want %v", tag, r, got.NonBlocking[r], want.NonBlocking[r])
		}
		if !floats.AlmostEqual(got.Blocking[r], want.Blocking[r], floats.DefaultTol) {
			t.Errorf("%s: Blocking[%d] = %v, want %v", tag, r, got.Blocking[r], want.Blocking[r])
		}
		if !floats.AlmostEqual(got.Concurrency[r], want.Concurrency[r], floats.DefaultTol) {
			t.Errorf("%s: Concurrency[%d] = %v, want %v", tag, r, got.Concurrency[r], want.Concurrency[r])
		}
	}
}

// TestSweepMatchesFreshSolve is the amortization-never-drifts guard:
// one 64x64 fill must reproduce a fresh Algorithm 1 solve at every
// sub-size n in 1..64 with the same per-route classes.
func TestSweepMatchesFreshSolve(t *testing.T) {
	const maxN = 64
	for _, tc := range sweepCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sweep, err := NewSweepSolver(Switch{N1: maxN, N2: maxN, Classes: tc.classes})
			if err != nil {
				t.Fatal(err)
			}
			for n := 1; n <= maxN; n++ {
				fresh, err := Solve(Switch{N1: n, N2: n, Classes: tc.classes})
				if err != nil {
					t.Fatalf("fresh solve at n=%d: %v", n, err)
				}
				resultsMatch(t, tc.name, sweep.ResultAt(n, n), fresh)
			}
		})
	}
}

// TestMVASweepMatchesFreshSolve is the Algorithm 2 twin of the guard.
func TestMVASweepMatchesFreshSolve(t *testing.T) {
	const maxN = 64
	for _, tc := range sweepCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sweep, err := NewMVASweepSolver(Switch{N1: maxN, N2: maxN, Classes: tc.classes})
			if err != nil {
				t.Fatal(err)
			}
			for n := 1; n <= maxN; n++ {
				fresh, err := SolveMVA(Switch{N1: n, N2: n, Classes: tc.classes})
				if err != nil {
					t.Fatalf("fresh MVA solve at n=%d: %v", n, err)
				}
				resultsMatch(t, tc.name, sweep.ResultAt(n, n), fresh)
			}
		})
	}
}

// TestSweepOffDiagonal checks non-square sub-lattice reads too — the
// revenue differences read (N1-a, N2-a) points that the diagonal
// sweep never touches when N1 != N2.
func TestSweepOffDiagonal(t *testing.T) {
	classes := sweepCases[3].classes
	sweep, err := NewSweepSolver(Switch{N1: 12, N2: 20, Classes: classes})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ n1, n2 int }{{1, 1}, {3, 7}, {12, 20}, {5, 19}, {12, 1}} {
		fresh, err := Solve(Switch{N1: p.n1, N2: p.n2, Classes: classes})
		if err != nil {
			t.Fatal(err)
		}
		resultsMatch(t, "off-diagonal", sweep.ResultAt(p.n1, p.n2), fresh)
	}
}

// TestSweepCachesReads pins the memoization contract: repeated reads
// of one point return the identical *Result.
func TestSweepCachesReads(t *testing.T) {
	sweep, err := NewSweepSolver(Switch{N1: 8, N2: 8, Classes: sweepCases[0].classes})
	if err != nil {
		t.Fatal(err)
	}
	a, b := sweep.ResultAt(5, 5), sweep.ResultAt(5, 5)
	if a != b {
		t.Error("second read of (5,5) returned a different Result pointer")
	}
	if sweep.Result() != sweep.ResultAt(8, 8) {
		t.Error("Result() and ResultAt(N1, N2) disagree")
	}
}

// TestSweepShadowCost checks the in-lattice revenue reads against the
// direct definition DeltaW_r = W(N) - W(N - a_r I).
func TestSweepShadowCost(t *testing.T) {
	classes := sweepCases[3].classes
	weights := []float64{1.0, 0.3, 0.01}
	sweep, err := NewSweepSolver(Switch{N1: 16, N2: 16, Classes: classes})
	if err != nil {
		t.Fatal(err)
	}
	wFull := sweep.Result().Revenue(weights)
	for r, c := range classes {
		sub, err := Solve(Switch{N1: 16 - c.A, N2: 16 - c.A, Classes: classes})
		if err != nil {
			t.Fatal(err)
		}
		want := wFull - sub.Revenue(weights)
		if got := sweep.ShadowCost(weights, r); !floats.AlmostEqual(got, want, floats.DefaultTol) {
			t.Errorf("ShadowCost(%d) = %v, want %v", r, got, want)
		}
	}
	// W at a zero-size switch is zero by convention, so for a class as
	// wide as the switch the shadow cost is all of W.
	wide := []Class{{Name: "wide", A: 4, Alpha: 0.01, Mu: 1}}
	sw4, err := NewSweepSolver(Switch{N1: 4, N2: 4, Classes: wide})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{2.5}
	if got, want := sw4.ShadowCost(w, 0), sw4.Result().Revenue(w); !floats.AlmostEqual(got, want, floats.DefaultTol) {
		t.Errorf("full-width ShadowCost = %v, want W = %v", got, want)
	}
}

func TestSweepPanicsOutsideLattice(t *testing.T) {
	sweep, err := NewMVASweepSolver(Switch{N1: 4, N2: 4, Classes: sweepCases[0].classes})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ResultAt(5, 5) on a 4x4 lattice did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "outside solved lattice") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	sweep.ResultAt(5, 5)
}

// TestSweepSolverReuse pins the recycling contract the server's solver
// cache depends on: a zero-value sweep solver is ready for Reuse, and
// Reuse across switch sizes and traffic mixes reproduces fresh
// construction exactly, with the memoized reads reset in between.
func TestSweepSolverReuse(t *testing.T) {
	var s SweepSolver
	for _, tc := range []struct {
		n1, n2 int
		mix    int
	}{{16, 16, 0}, {8, 24, 3}, {24, 8, 1}, {16, 16, 2}} {
		sw := Switch{N1: tc.n1, N2: tc.n2, Classes: sweepCases[tc.mix].classes}
		if err := s.Reuse(sw); err != nil {
			t.Fatalf("Reuse(%dx%d): %v", tc.n1, tc.n2, err)
		}
		fresh, err := NewSweepSolver(sw)
		if err != nil {
			t.Fatal(err)
		}
		tag := sweepCases[tc.mix].name
		resultsMatch(t, tag, s.Result(), fresh.Result())
		resultsMatch(t, tag, s.ResultAt(tc.n1/2+1, tc.n2/2+1), fresh.ResultAt(tc.n1/2+1, tc.n2/2+1))
		if a, b := s.ResultAt(3, 3), s.ResultAt(3, 3); a != b {
			t.Error("memoized read not stable after Reuse")
		}
	}
	if err := s.Reuse(Switch{N1: 0, N2: 4}); err == nil {
		t.Error("Reuse accepted a 0x4 switch")
	}
}

// TestMVASweepSolverReuse is the Algorithm 2 twin.
func TestMVASweepSolverReuse(t *testing.T) {
	var s MVASweepSolver
	for _, tc := range []struct {
		n1, n2 int
		mix    int
	}{{16, 16, 1}, {24, 8, 3}, {8, 8, 0}} {
		sw := Switch{N1: tc.n1, N2: tc.n2, Classes: sweepCases[tc.mix].classes}
		if err := s.Reuse(sw); err != nil {
			t.Fatalf("Reuse(%dx%d): %v", tc.n1, tc.n2, err)
		}
		fresh, err := NewMVASweepSolver(sw)
		if err != nil {
			t.Fatal(err)
		}
		tag := sweepCases[tc.mix].name
		resultsMatch(t, tag, s.Result(), fresh.Result())
		resultsMatch(t, tag, s.ResultAt(tc.n1/2+1, tc.n2/2+1), fresh.ResultAt(tc.n1/2+1, tc.n2/2+1))
	}
}

func TestSweepRejectsInvalid(t *testing.T) {
	if _, err := NewSweepSolver(Switch{N1: 0, N2: 4}); err == nil {
		t.Error("NewSweepSolver accepted a 0x4 switch")
	}
	if _, err := NewMVASweepSolver(Switch{N1: 4, N2: 4}); err == nil {
		t.Error("NewMVASweepSolver accepted a switch with no classes")
	}
}
