package core

import (
	"fmt"

	"xbar/internal/combin"
	"xbar/internal/scale"
)

// RateFunc gives a state-dependent transition intensity as a function
// of the class's connection count.
type RateFunc func(k int) float64

// SolveDirect evaluates the performance measures by literal summation
// of the product form over the whole state space Gamma(N), using scaled
// arithmetic so it stays exact at any switch size. Its cost is
// |Gamma(N)|, exponential in the number of classes, so it serves as the
// ground truth for the recursive algorithms rather than as the
// production path.
func SolveDirect(sw Switch) (*Result, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	birth := make([]RateFunc, len(sw.Classes))
	death := make([]RateFunc, len(sw.Classes))
	for i, c := range sw.Classes {
		c := c
		birth[i] = c.Rate
		death[i] = func(k int) float64 { return float64(k) * c.Mu }
	}
	return solveDirectRates(sw, birth, death, "direct")
}

// SolveDirectRates evaluates the measures for the generalized model in
// which class r has an arbitrary state-dependent arrival intensity
// birth_r(k) (per ordered route) and an arbitrary total service rate
// death_r(k) when k class-r connections are in progress. The paper's
// Section 2 equivalence — Poisson arrivals with state-dependent service
// mu_r(k) = k mu_r/(v_r + delta_r k) versus BPP arrivals with
// state-independent service — is a property test built on this entry
// point. The product form Eq. 2 generalizes with
// Phi_r(k) = prod_{l=1..k} birth_r(l-1)/death_r(l).
func SolveDirectRates(sw Switch, birth, death []RateFunc) (*Result, error) {
	if sw.N1 < 1 || sw.N2 < 1 {
		return nil, fmt.Errorf("core: switch dimensions %dx%d, must be >= 1x1", sw.N1, sw.N2)
	}
	if len(birth) != len(sw.Classes) || len(death) != len(sw.Classes) {
		return nil, fmt.Errorf("core: %d birth / %d death rates for %d classes",
			len(birth), len(death), len(sw.Classes))
	}
	return solveDirectRates(sw, birth, death, "direct-rates")
}

func solveDirectRates(sw Switch, birth, death []RateFunc, method string) (*Result, error) {
	phi, err := phiTables(sw, birth, death)
	if err != nil {
		return nil, err
	}

	// One walk accumulates both the normalization constant and the
	// concurrency numerators E_r = sum_k k_r pi(k).
	psi := psiTableInto(nil, sw)
	g := scale.Zero
	sums := make([]scale.Number, len(sw.Classes))
	sw.walkStates(func(k []int) {
		term := stateWeightPsi(sw, psi, phi, k)
		g = g.Add(term)
		for r, kr := range k {
			if kr > 0 {
				sums[r] = sums[r].Add(term.MulFloat(float64(kr)))
			}
		}
	})
	if g.IsZero() {
		return nil, fmt.Errorf("core: normalization constant is zero")
	}

	res := &Result{
		Switch:      sw,
		Method:      method,
		NonBlocking: make([]float64, len(sw.Classes)),
		Concurrency: make([]float64, len(sw.Classes)),
		LogG:        g.Log(),
	}
	for r := range sums {
		res.Concurrency[r] = sums[r].Ratio(g)
	}

	// Non-blocking: B_r = G(N - a_r I)/G(N). The identity holds for any
	// state-dependent rates because it only restates the probability
	// that a_r particular inputs and outputs are simultaneously idle
	// under the uniform-traffic symmetry. The sub-switch Psi tables
	// recycle one buffer across classes.
	for r, c := range sw.Classes {
		if c.A > sw.MinN() {
			res.NonBlocking[r] = 0
			continue
		}
		sub := sw.Sub(c.A)
		psi = psiTableInto(psi, sub)
		gSub := directG(sub, psi, phi)
		res.NonBlocking[r] = gSub.Ratio(g)
	}
	res.finish()
	return res, nil
}

// phiTables precomputes Phi_r(k) for k = 0..maxCount(r) in scaled
// arithmetic. Every class's table is carved from one backing array, so
// the whole coefficient set costs two allocations regardless of the
// class count.
func phiTables(sw Switch, birth, death []RateFunc) ([][]scale.Number, error) {
	total := 0
	for r := range sw.Classes {
		total += sw.maxCount(r) + 1
	}
	backing := make([]scale.Number, total)
	phi := make([][]scale.Number, len(sw.Classes))
	for r := range sw.Classes {
		max := sw.maxCount(r)
		phi[r], backing = backing[:max+1:max+1], backing[max+1:]
		phi[r][0] = scale.One
		for k := 1; k <= max; k++ {
			b := birth[r](k - 1)
			d := death[r](k)
			if b < 0 {
				return nil, fmt.Errorf("core: class %d: negative arrival intensity %v at k=%d", r, b, k-1)
			}
			if d <= 0 {
				return nil, fmt.Errorf("core: class %d: non-positive service rate %v at k=%d", r, d, k)
			}
			phi[r][k] = phi[r][k-1].MulFloat(b / d)
		}
	}
	return phi, nil
}

// directG sums Psi(k) * prod Phi_r(k_r) over Gamma for the given switch
// dimensions, with psi the switch's psiTableInto result. The phi tables
// may extend beyond the switch's occupancy bound (when evaluating a
// sub-switch); only feasible states are visited.
func directG(sw Switch, psi []scale.Number, phi [][]scale.Number) scale.Number {
	g := scale.Zero
	sw.walkStates(func(k []int) {
		g = g.Add(stateWeightPsi(sw, psi, phi, k))
	})
	return g
}

func stateWeightPsi(sw Switch, psi []scale.Number, phi [][]scale.Number, k []int) scale.Number {
	term := psi[sw.occupancy(k)]
	for r, kr := range k {
		term = term.Mul(phi[r][kr])
	}
	return term
}

// psiTableInto fills buf (grown only when too small; pass nil for a
// fresh table) with Psi indexed by total occupancy s:
// Psi(s) = P(N1, s) * P(N2, s).
func psiTableInto(buf []scale.Number, sw Switch) []scale.Number {
	psi := grow(buf, sw.MinN()+1)
	for s := 0; s <= sw.MinN(); s++ {
		psi[s] = scale.FromLog(combin.LogPerm(sw.N1, s) + combin.LogPerm(sw.N2, s))
	}
	return psi
}
