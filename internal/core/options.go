package core

import "xbar/internal/parallel"

// Options configures how the solvers schedule their lattice fills.
// The zero value is the auto heuristic: sequential below the parallel
// cutoff, wavefront-parallel on GOMAXPROCS workers above it. Every
// schedule computes each cell with the identical instruction sequence
// reading only finalized cells, so results are bit-identical across
// worker counts and tile sizes (TestParallelFillBitIdentical).
type Options struct {
	// Workers selects the fill schedule: <= 0 auto (sequential below
	// the cutoff, GOMAXPROCS workers above), 1 always sequential,
	// n > 1 wavefront-parallel on n workers regardless of size.
	Workers int
	// Tile is the tile edge length, in lattice cells, of the wavefront
	// schedule; <= 0 picks the auto heuristic. Ignored when the
	// schedule resolves to sequential.
	Tile int
}

// Parallel returns the Options selecting a wavefront-parallel fill
// with the given worker count and tile edge (0 means auto for either).
func Parallel(workers, tile int) Options { return Options{Workers: workers, Tile: tile} }

// parallelCutoff is the lattice cell count below which the auto
// heuristic stays sequential: per-diagonal barriers cost microseconds,
// so lattices that fill in tens of microseconds (N ~ 64 and below)
// are better off on one goroutine. See docs/PERFORMANCE.md for the
// measured crossover.
const parallelCutoff = 128 * 128

// plan resolves the schedule for a rows x cols lattice: the worker
// count (1 meaning sequential) and the tile edge.
func (o Options) plan(rows, cols int) (workers, tile int) {
	w := o.Workers
	switch {
	case w == 1:
		return 1, 0
	case w <= 0:
		if rows*cols < parallelCutoff {
			return 1, 0
		}
		w = parallel.Workers(0)
		if w <= 1 {
			return 1, 0
		}
	}
	t := o.Tile
	if t <= 0 {
		// Size tiles for the parallelism the host can actually deliver:
		// workers beyond GOMAXPROCS never run concurrently, they only
		// add a wakeup per tile wave, so an oversubscribed schedule gets
		// coarser tiles (fewer, larger waves) rather than more of them.
		t = autoTile(rows, cols, min(w, parallel.Workers(0)))
	}
	return w, t
}

// autoTile picks a tile edge that keeps every worker busy on the long
// anti-diagonals (at least ~2 tiles per worker per diagonal) while
// keeping tiles large enough to amortize the barrier and stay
// cache-resident: a 64-cell edge is 64 KiB of Q lattice (16-byte
// scale.Number cells) per tile row.
func autoTile(rows, cols, workers int) int {
	t := min(rows, cols) / (2 * workers)
	return max(16, min(t, 256))
}
