// Package core implements the analytical model of the N1 x N2
// asynchronous multi-rate crossbar of Stirpe & Pinsky (SIGCOMM 1992).
//
// The switch carries R classes of circuit-switched connection requests.
// A class-r connection seizes a_r inputs and a_r outputs simultaneously
// for a generally distributed holding time with mean 1/mu_r; blocked
// requests are cleared. Requests for one particular ordered route (an
// ordered a_r-tuple of inputs and an ordered a_r-tuple of outputs)
// arrive with the state-dependent BPP intensity
//
//	lambda_r(k_r) = alpha_r + beta_r * k_r ,
//
// where k_r is the number of class-r connections in progress. The state
// k = (k_1, ..., k_R) is a reversible Markov process with the
// product-form distribution of paper Eq. 2:
//
//	pi(k) = Psi(k) * prod_r Phi_r(k_r) / G(N),
//	Psi(k) = N1!/(N1-k.A)! * N2!/(N2-k.A)!,
//	Phi_r(k) = prod_{l=1..k} lambda_r(l-1) / (l mu_r).
//
// The package provides four independent evaluators of the performance
// measures, used to cross-validate one another:
//
//   - SolveDirect: literal summation over the state space (small N).
//   - SolveConvolution: per-class convolution over total occupancy.
//   - Solve (Algorithm 1): the paper's Q(N) lattice recursion with the
//     dynamic scaling of Section 6.
//   - SolveMVA (Algorithm 2): the paper's mean-value recursion on
//     normalization-constant ratios, numerically stable in plain
//     float64.
package core

import (
	"fmt"

	"xbar/internal/combin"
	"xbar/internal/dist"
	"xbar/internal/floats"
)

// Class describes one traffic class offered to the switch, in per-route
// units: Alpha and Beta parameterize the arrival intensity for one
// particular ordered route. Use AggregateClass for the per-input-set
// ("tilde") units the paper's numerical section quotes.
type Class struct {
	// Name labels the class in reports.
	Name string
	// A is the bandwidth requirement a_r: the number of inputs (and
	// outputs) one connection seizes. Must be >= 1.
	A int
	// Alpha is the state-independent part of the BPP arrival intensity
	// for one ordered route. Must be > 0.
	Alpha float64
	// Beta is the state-dependent slope of the arrival intensity:
	// negative for smooth (Bernoulli), zero for Poisson, positive for
	// peaky (Pascal) traffic.
	Beta float64
	// Mu is the service rate; mean holding time is 1/Mu. Must be > 0.
	Mu float64
}

// Rho returns the per-route offered load alpha_r / mu_r. Mu must be
// positive (Switch.Validate enforces it), so the ratio is finite.
func (c Class) Rho() float64 { return c.Alpha / c.Mu }

// BetaMu returns the normalized slope beta_r / mu_r. Mu must be
// positive (Switch.Validate enforces it), so the ratio is finite.
func (c Class) BetaMu() float64 { return c.Beta / c.Mu }

// IsPoisson reports whether the class belongs to the paper's group R1
// (beta_r = 0); otherwise it belongs to R2. A slope within rounding
// noise of zero counts as Poisson: the bursty-class formulas divide
// by beta_r and lose all precision as beta_r -> 0, while the Poisson
// limit is exact there.
func (c Class) IsPoisson() bool { return floats.Zero(c.Beta) }

// BPP returns the class's arrival source in dist form.
func (c Class) BPP() dist.BPP { return dist.BPP{Alpha: c.Alpha, Beta: c.Beta, Mu: c.Mu} }

// Rate returns lambda_r(k) = alpha_r + beta_r*k for one route.
func (c Class) Rate(k int) float64 { return c.Alpha + c.Beta*float64(k) }

// StateDependentServiceClass builds the class that is statistically
// identical to unit-rate Poisson arrivals served at the congestion-
// dependent rate mu_r(k) = k mu / (v + delta k) — the dual reading of
// the model in Section 2 of the paper (delta > 1 models slow-down
// under congestion, 0 < delta < 1 efficiency gains; the equivalence is
// alpha = v + delta, beta = delta). The returned class uses the
// state-dependent-ARRIVAL parameterization the solvers consume.
func StateDependentServiceClass(name string, a int, v, delta, mu float64) Class {
	return Class{
		Name:  name,
		A:     a,
		Alpha: v + delta,
		Beta:  delta,
		Mu:    mu,
	}
}

// AggregateClass describes a class in the paper's "tilde" units, where
// the intensity is quoted per particular input set aggregated over all
// C(N2, a_r) output sets: lambda~_r(k) = C(N2, a_r) * lambda_r(k)
// (Section 2). The numerical section of the paper states all loads in
// these units (alpha~ = .0024 and so on).
type AggregateClass struct {
	Name       string
	A          int
	AlphaTilde float64
	BetaTilde  float64
	Mu         float64
}

// PerRoute converts the aggregate class into per-route units for a
// switch with n2 outputs, dividing the tilde intensities by C(n2, a_r).
func (a AggregateClass) PerRoute(n2 int) Class {
	scale := combin.Binom(n2, a.A)
	if floats.Zero(scale) { // Binom is either exactly 0 or at least 1
		// A switch smaller than the bandwidth requirement carries no
		// class-r traffic at all; keep intensities finite and let the
		// state space (which admits only k_r = 0) produce E_r = 0.
		scale = 1
	}
	return Class{
		Name:  a.Name,
		A:     a.A,
		Alpha: a.AlphaTilde / scale,
		Beta:  a.BetaTilde / scale,
		Mu:    a.Mu,
	}
}

// Switch is an N1 x N2 asynchronous crossbar offered a set of traffic
// classes.
type Switch struct {
	N1, N2  int
	Classes []Class
}

// NewSwitch builds a Switch from aggregate ("tilde") classes, converting
// each to per-route units for the given dimensions.
func NewSwitch(n1, n2 int, classes ...AggregateClass) Switch {
	sw := Switch{N1: n1, N2: n2}
	for _, a := range classes {
		sw.Classes = append(sw.Classes, a.PerRoute(n2))
	}
	return sw
}

// MinN returns min(N1, N2), the occupancy capacity of the switch: no
// state can hold more than MinN busy inputs (or outputs).
func (s Switch) MinN() int {
	if s.N1 < s.N2 {
		return s.N1
	}
	return s.N2
}

// MaxN returns max(N1, N2).
func (s Switch) MaxN() int {
	if s.N1 > s.N2 {
		return s.N1
	}
	return s.N2
}

// Validate checks the model constraints: positive dimensions, a_r >= 1,
// alpha_r > 0, mu_r > 0, Pascal convergence beta_r/mu_r < 1, and the
// Bernoulli population constraints of Section 2.
func (s Switch) Validate() error {
	if s.N1 < 1 || s.N2 < 1 {
		return fmt.Errorf("core: switch dimensions %dx%d, must be >= 1x1", s.N1, s.N2)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("core: switch has no traffic classes")
	}
	for i, c := range s.Classes {
		if c.A < 1 {
			return fmt.Errorf("core: class %d (%s): a_r = %d, must be >= 1", i, c.Name, c.A)
		}
		if err := c.BPP().Validate(s.MaxN()); err != nil {
			return fmt.Errorf("core: class %d (%s): %w", i, c.Name, err)
		}
	}
	return nil
}

// maxCount returns the largest feasible k_r for class index r: the
// occupancy bound min(N1,N2) divided by a_r.
func (s Switch) maxCount(r int) int {
	return s.MinN() / s.Classes[r].A
}

// occupancy returns k.A for a state vector k.
func (s Switch) occupancy(k []int) int {
	total := 0
	for r, kr := range k {
		total += kr * s.Classes[r].A
	}
	return total
}

// StateCount returns |Gamma(N)|, the number of feasible states, by
// enumeration. Useful for sizing exact computations.
func (s Switch) StateCount() int64 {
	var count int64
	s.walkStates(func([]int) { count++ })
	return count
}

// WalkStates invokes fn for every state k in Gamma(N) in lexicographic
// order. The slice passed to fn is reused between calls; copy it if
// retained.
func (s Switch) WalkStates(fn func(k []int)) { s.walkStates(fn) }

// Occupancy returns k.A = sum_r k_r a_r for a state vector.
func (s Switch) OccupancyOf(k []int) int { return s.occupancy(k) }

// walkStates invokes fn for every k in Gamma(N). The slice passed to fn
// is reused between calls; copy it if retained.
func (s Switch) walkStates(fn func(k []int)) {
	k := make([]int, len(s.Classes))
	var rec func(r, used int)
	rec = func(r, used int) {
		if r == len(s.Classes) {
			fn(k)
			return
		}
		limit := (s.MinN() - used) / s.Classes[r].A
		for kr := 0; kr <= limit; kr++ {
			k[r] = kr
			rec(r+1, used+kr*s.Classes[r].A)
		}
		k[r] = 0
	}
	rec(0, 0)
}

// Sub returns the switch shrunk by a on both sides (N - a*I in the
// paper's notation), keeping the same per-route classes.
func (s Switch) Sub(a int) Switch {
	return Switch{N1: s.N1 - a, N2: s.N2 - a, Classes: s.Classes}
}
