package core

import (
	"fmt"
	"strings"
)

// Result holds the steady-state performance measures of a switch, one
// entry per traffic class, in class order.
type Result struct {
	// Switch is the model the result was computed for.
	Switch Switch
	// Method names the evaluator that produced the result
	// ("direct", "convolution", "algorithm1", "algorithm2",
	// "asymptotic").
	Method string
	// Tier records which dispatch tier answered (TierExact or
	// TierAsymptotic) when the result came through SolveAuto,
	// TryAsymptotic or SolveAsymptotic; empty when the caller invoked
	// an evaluator directly.
	Tier string
	// ErrorBound, when non-nil, holds the asymptotic tier's
	// self-reported per-class relative-error bounds: |measure -
	// exact|/exact <= ErrorBound[r] for NonBlocking, Blocking and
	// Concurrency alike. Nil for exact results. An entry at or above
	// asymptotic.BoundUnusable means the expansion declared itself
	// unusable for that class.
	ErrorBound []float64
	// NonBlocking is B_r(N) = G(N - a_r I)/G(N) (paper Eq. 4): the
	// time-average probability that one particular candidate route for
	// class r is entirely idle. This is time congestion; for
	// non-Poisson classes it differs from the fraction of arrivals
	// blocked (call congestion), which the simulator measures
	// separately.
	NonBlocking []float64
	// Blocking is 1 - NonBlocking, the quantity the paper's figures
	// and Table 2 plot.
	Blocking []float64
	// Concurrency is E_r(N), the mean number of class-r connections in
	// progress (paper Section 3).
	Concurrency []float64
	// LogG is ln G(N), the log of the normalization constant, exposed
	// for diagnostics and cross-evaluator comparison.
	LogG float64
	// Occupancy, when non-nil, is the distribution of the total number
	// of busy inputs: Occupancy[s] = P(k.A = s) for s = 0..min(N1,N2).
	// Populated by SolveConvolution.
	Occupancy []float64
	// ClassMarginals, when non-nil, holds the full per-class count
	// distributions: ClassMarginals[r][j] = P(k_r = j). Populated by
	// SolveConvolution.
	ClassMarginals [][]float64
}

// CarriedPeakedness returns the variance-to-mean ratio of the class's
// carried connection count, computed from its marginal distribution.
// It requires ClassMarginals (SolveConvolution) and panics otherwise:
// calling it on another evaluator's result is a programming error.
func (r *Result) CarriedPeakedness(class int) float64 {
	if r.ClassMarginals == nil {
		//lint:allow libpanic documented usage contract: marginals exist only for the convolution evaluator
		panic("core: CarriedPeakedness needs ClassMarginals (use SolveConvolution)")
	}
	m := r.ClassMarginals[class]
	mean, second := 0.0, 0.0
	for j, p := range m {
		mean += float64(j) * p
		second += float64(j) * float64(j) * p
	}
	if mean == 0 { //lint:allow floatcmp guards exact division by zero; a tiny nonzero mean stays a well-conditioned same-scale ratio
		return 0
	}
	return (second - mean*mean) / mean
}

// Throughput returns the class-r completion rate E_r * mu_r.
func (r *Result) Throughput(class int) float64 {
	return r.Concurrency[class] * r.Switch.Classes[class].Mu
}

// Utilization returns the mean fraction of the switch's occupancy
// capacity in use: sum_r a_r E_r / min(N1, N2). The switch dimensions
// must be positive (Switch.Validate enforces it), so the divisor is
// at least 1.
func (r *Result) Utilization() float64 {
	busy := 0.0
	for i, c := range r.Switch.Classes {
		busy += float64(c.A) * r.Concurrency[i]
	}
	return busy / float64(r.Switch.MinN())
}

// Revenue returns the weighted throughput W(N) = sum_r w_r E_r(N)
// (paper Section 4). The weights slice must have one entry per class.
func (r *Result) Revenue(weights []float64) float64 {
	if len(weights) != len(r.Concurrency) {
		//lint:allow libpanic weight/class arity mismatch is a programming error, like a mis-sized matrix
		panic(fmt.Sprintf("core: Revenue: %d weights for %d classes", len(weights), len(r.Concurrency)))
	}
	w := 0.0
	for i, e := range r.Concurrency {
		w += weights[i] * e
	}
	return w
}

// MaxErrorBound returns the largest per-class error bound, or 0 when
// the result is exact (ErrorBound nil): the single number dispatch
// tolerance checks compare against.
func (r *Result) MaxErrorBound() float64 {
	b := 0.0
	for _, v := range r.ErrorBound {
		if v > b {
			b = v
		}
	}
	return b
}

// String formats the result as a one-line-per-class summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d switch (%s):", r.Switch.N1, r.Switch.N2, r.Method)
	for i, c := range r.Switch.Classes {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("class%d", i+1)
		}
		fmt.Fprintf(&b, " %s{a=%d B=%.6g E=%.6g}", name, c.A, r.Blocking[i], r.Concurrency[i])
	}
	return b.String()
}

// finish derives Blocking from NonBlocking and sanity-clamps rounding
// noise at the probability boundaries.
func (r *Result) finish() {
	r.Blocking = make([]float64, len(r.NonBlocking))
	for i, nb := range r.NonBlocking {
		if nb < 0 {
			nb = 0
		}
		if nb > 1 {
			nb = 1
		}
		r.NonBlocking[i] = nb
		r.Blocking[i] = 1 - nb
	}
}
