package core

import (
	"math/rand"
	"testing"
)

// TestMVAOneByOne pins the smallest closed-form case.
func TestMVAOneByOne(t *testing.T) {
	rho := 0.42
	sw := Switch{N1: 1, N2: 1, Classes: []Class{{A: 1, Alpha: rho, Mu: 1}}}
	res, err := SolveMVA(sw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.NonBlocking[0], 1/(1+rho); !almostEqual(got, want, 1e-12) {
		t.Errorf("NonBlocking = %v, want %v", got, want)
	}
	if got, want := res.Concurrency[0], rho/(1+rho); !almostEqual(got, want, 1e-12) {
		t.Errorf("Concurrency = %v, want %v", got, want)
	}
}

// TestMVAMatchesAlgorithm1 is the paper's implicit claim that the two
// algorithms compute the same measures, exercised over randomized
// multi-class multi-rate BPP models. This is also the test that pins
// the corrected D recursion (Eq. 19 erratum, see DESIGN.md).
func TestMVAMatchesAlgorithm1(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		sw := randomSwitch(rng)
		alg1, err := Solve(sw)
		if err != nil {
			t.Fatalf("trial %d: algorithm1: %v", trial, err)
		}
		mva, err := SolveMVA(sw)
		if err != nil {
			t.Fatalf("trial %d: algorithm2: %v", trial, err)
		}
		if !almostEqual(mva.LogG, alg1.LogG, 1e-9) {
			t.Errorf("trial %d: LogG mva %v alg1 %v (switch %+v)", trial, mva.LogG, alg1.LogG, sw)
		}
		for r := range sw.Classes {
			if !almostEqual(mva.NonBlocking[r], alg1.NonBlocking[r], 1e-9) {
				t.Errorf("trial %d: NonBlocking[%d] mva %v alg1 %v (switch %+v)",
					trial, r, mva.NonBlocking[r], alg1.NonBlocking[r], sw)
			}
			if !almostEqual(mva.Concurrency[r], alg1.Concurrency[r], 1e-9) {
				t.Errorf("trial %d: Concurrency[%d] mva %v alg1 %v (switch %+v)",
					trial, r, mva.Concurrency[r], alg1.Concurrency[r], sw)
			}
		}
		if t.Failed() {
			return
		}
	}
}

// TestMVALargeSystem checks Algorithm 2 stays in agreement with the
// scaled Algorithm 1 at sizes where unscaled arithmetic has long since
// underflowed — the numerical-stability claim of Section 5.1 — on a
// three-class mix including a multi-rate bursty class.
func TestMVALargeSystem(t *testing.T) {
	sw := NewSwitch(192, 160,
		AggregateClass{Name: "voice", A: 1, AlphaTilde: 0.0024, Mu: 1},
		AggregateClass{Name: "video", A: 2, AlphaTilde: 0.001, BetaTilde: 0.0005, Mu: 0.5},
		AggregateClass{Name: "data", A: 1, AlphaTilde: 0.003, BetaTilde: -0.003 / 400, Mu: 2},
	)
	alg1, err := Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	mva, err := SolveMVA(sw)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if !almostEqual(mva.NonBlocking[r], alg1.NonBlocking[r], 1e-8) {
			t.Errorf("NonBlocking[%d] mva %v alg1 %v", r, mva.NonBlocking[r], alg1.NonBlocking[r])
		}
		if !almostEqual(mva.Concurrency[r], alg1.Concurrency[r], 1e-8) {
			t.Errorf("Concurrency[%d] mva %v alg1 %v", r, mva.Concurrency[r], alg1.Concurrency[r])
		}
	}
	if !almostEqual(mva.LogG, alg1.LogG, 1e-9) {
		t.Errorf("LogG mva %v alg1 %v", mva.LogG, alg1.LogG)
	}
}

// TestMVAResultAt checks sub-switch extraction matches a fresh solve.
func TestMVAResultAt(t *testing.T) {
	sw := Switch{N1: 12, N2: 9, Classes: []Class{
		{A: 1, Alpha: 0.2, Mu: 1},
		{A: 3, Alpha: 0.01, Beta: 0.004, Mu: 1},
	}}
	solver, err := NewMVASolver(sw)
	if err != nil {
		t.Fatal(err)
	}
	sub := solver.ResultAt(7, 9)
	fresh, err := SolveMVA(Switch{N1: 7, N2: 9, Classes: sw.Classes})
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if !almostEqual(sub.NonBlocking[r], fresh.NonBlocking[r], 1e-10) {
			t.Errorf("NonBlocking[%d]: lattice %v fresh %v", r, sub.NonBlocking[r], fresh.NonBlocking[r])
		}
		if !almostEqual(sub.Concurrency[r], fresh.Concurrency[r], 1e-10) {
			t.Errorf("Concurrency[%d]: lattice %v fresh %v", r, sub.Concurrency[r], fresh.Concurrency[r])
		}
	}
}

// TestMVARejectsInvalid mirrors the validation behaviour of the other
// solvers.
func TestMVARejectsInvalid(t *testing.T) {
	if _, err := SolveMVA(Switch{N1: 0, N2: 1, Classes: []Class{{A: 1, Alpha: 1, Mu: 1}}}); err == nil {
		t.Error("invalid switch accepted")
	}
}

// TestMVAExtremeGeometries: degenerate shapes exercise the lattice
// boundaries — a 1-row switch, a single-column switch, and a class
// that exactly fills min(N1, N2).
func TestMVAExtremeGeometries(t *testing.T) {
	cases := []Switch{
		{N1: 1, N2: 8, Classes: []Class{{A: 1, Alpha: 0.3, Mu: 1}}},
		{N1: 8, N2: 1, Classes: []Class{{A: 1, Alpha: 0.3, Mu: 1}}},
		{N1: 5, N2: 5, Classes: []Class{{A: 5, Alpha: 0.2, Mu: 1}}},
		{N1: 4, N2: 7, Classes: []Class{
			{A: 4, Alpha: 0.05, Mu: 1},
			{A: 1, Alpha: 0.2, Beta: 0.1, Mu: 1},
		}},
		{N1: 2, N2: 2, Classes: []Class{
			{A: 2, Alpha: 0.1, Beta: 0.05, Mu: 1},
			{A: 2, Alpha: 0.2, Mu: 2},
		}},
	}
	for i, sw := range cases {
		direct, err := SolveDirect(sw)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		mva, err := SolveMVA(sw)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		alg1, err := Solve(sw)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for r := range sw.Classes {
			for _, got := range []*Result{mva, alg1} {
				if !almostEqual(got.NonBlocking[r], direct.NonBlocking[r], 1e-9) {
					t.Errorf("case %d class %d: %s NonBlocking %v, direct %v",
						i, r, got.Method, got.NonBlocking[r], direct.NonBlocking[r])
				}
				if !almostEqual(got.Concurrency[r], direct.Concurrency[r], 1e-9) {
					t.Errorf("case %d class %d: %s Concurrency %v, direct %v",
						i, r, got.Method, got.Concurrency[r], direct.Concurrency[r])
				}
			}
		}
	}
}

// TestManyClasses: six classes stress the per-class bookkeeping in
// every evaluator (direct enumeration still feasible at this size).
func TestManyClasses(t *testing.T) {
	sw := Switch{N1: 5, N2: 6, Classes: []Class{
		{A: 1, Alpha: 0.1, Mu: 1},
		{A: 1, Alpha: 0.05, Beta: 0.02, Mu: 0.8},
		{A: 2, Alpha: 0.02, Mu: 1.5},
		{A: 2, Alpha: 0.01, Beta: 0.005, Mu: 1},
		{A: 3, Alpha: 0.005, Mu: 0.5},
		{A: 1, Alpha: 0.42, Beta: -0.06, Mu: 1}, // population 7 >= max(N1,N2)
	}}
	direct, err := SolveDirect(sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(Switch) (*Result, error){noOpts(Solve), noOpts(SolveMVA), SolveConvolution} {
		got, err := fn(sw)
		if err != nil {
			t.Fatal(err)
		}
		for r := range sw.Classes {
			if !almostEqual(got.NonBlocking[r], direct.NonBlocking[r], 1e-9) {
				t.Errorf("%s NonBlocking[%d] %v, direct %v", got.Method, r, got.NonBlocking[r], direct.NonBlocking[r])
			}
			if !almostEqual(got.Concurrency[r], direct.Concurrency[r], 1e-9) {
				t.Errorf("%s Concurrency[%d] %v, direct %v", got.Method, r, got.Concurrency[r], direct.Concurrency[r])
			}
		}
	}
}

// TestBurstyIndexMap pins the precomputed class->bursty-slot map that
// replaced the linear burstyR scan inside solveF's denominator loop
// (the scan made fill O(N^2 R^2); the map restores O(N^2 R)).
func TestBurstyIndexMap(t *testing.T) {
	sw := Switch{N1: 4, N2: 4, Classes: []Class{
		{A: 1, Alpha: 0.1, Mu: 1},                // Poisson
		{A: 1, Alpha: 0.05, Beta: 0.02, Mu: 1},   // bursty slot 0
		{A: 2, Alpha: 0.01, Mu: 1},               // Poisson
		{A: 2, Alpha: 0.01, Beta: -0.001, Mu: 1}, // bursty slot 1
		{A: 1, Alpha: 0.02, Beta: 0.004, Mu: 1},  // bursty slot 2
	}}
	s, err := NewMVASolver(sw)
	if err != nil {
		t.Fatal(err)
	}
	wantSlots := map[int]int{1: 0, 3: 1, 4: 2}
	for r, want := range wantSlots {
		if got := s.burstyIndex(r); got != want {
			t.Errorf("burstyIndex(%d) = %d, want %d", r, got, want)
		}
	}
	// The map must agree with burstyR, its inverse.
	for j, r := range s.burstyR {
		if s.burstyOf[r] != j {
			t.Errorf("burstyOf[%d] = %d, want slot %d", r, s.burstyOf[r], j)
		}
	}
	for _, poisson := range []int{0, 2} {
		if s.burstyOf[poisson] != -1 {
			t.Errorf("burstyOf[%d] = %d for a Poisson class, want -1", poisson, s.burstyOf[poisson])
		}
	}
	for _, r := range []int{0, 2, -1, 99} {
		r := r
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("burstyIndex(%d) did not panic", r)
				}
			}()
			s.burstyIndex(r)
		}()
	}
}

// TestMVASolverReuse checks the buffer-recycling path: re-pointing one
// solver across sizes and class mixes must reproduce fresh solves.
func TestMVASolverReuse(t *testing.T) {
	s := &MVASolver{}
	cases := []Switch{
		{N1: 8, N2: 8, Classes: []Class{{A: 1, Alpha: 0.1, Mu: 1}}},
		{N1: 3, N2: 5, Classes: []Class{
			{A: 1, Alpha: 0.05, Beta: 0.01, Mu: 1},
			{A: 2, Alpha: 0.01, Mu: 1},
		}},
		{N1: 10, N2: 10, Classes: []Class{
			{A: 2, Alpha: 0.02, Beta: 0.002, Mu: 1},
			{A: 1, Alpha: 0.1, Beta: -0.01, Mu: 1},
		}},
	}
	for i, sw := range cases {
		if err := s.Reuse(sw); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		fresh, err := SolveMVA(sw)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Result()
		for r := range sw.Classes {
			if !almostEqual(got.Blocking[r], fresh.Blocking[r], 1e-14) {
				t.Errorf("case %d Blocking[%d]: reuse %v fresh %v", i, r, got.Blocking[r], fresh.Blocking[r])
			}
		}
	}
}

// TestSolverReuse is the Algorithm 1 twin of the recycling check.
func TestSolverReuse(t *testing.T) {
	s := &Solver{}
	cases := []Switch{
		{N1: 12, N2: 12, Classes: []Class{{A: 1, Alpha: 0.1, Beta: 0.02, Mu: 1}}},
		{N1: 4, N2: 9, Classes: []Class{
			{A: 1, Alpha: 0.05, Mu: 1},
			{A: 2, Alpha: 0.01, Beta: 0.001, Mu: 1},
		}},
		{N1: 6, N2: 6, Classes: []Class{{A: 1, Alpha: 0.2, Mu: 2}}},
	}
	for i, sw := range cases {
		if err := s.Reuse(sw); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		fresh, err := Solve(sw)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Result()
		for r := range sw.Classes {
			if !almostEqual(got.Blocking[r], fresh.Blocking[r], 1e-14) {
				t.Errorf("case %d Blocking[%d]: reuse %v fresh %v", i, r, got.Blocking[r], fresh.Blocking[r])
			}
		}
	}
}
