package core

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/parallel"
)

// MVASolver runs the paper's Algorithm 2, the mean-value style
// recursion (Section 5.1) cast directly in terms of the
// normalization-constant ratios
//
//	F_i(n) = Q(n - 1_i) / Q(n),
//	H_r(n) = Q(n - a_r I) / Q(n),
//	D(r,n) = sum_m (beta_r/mu_r)^m Q(n - m a_r I)/Q(n),
//
// so every stored quantity is O(n_i) in magnitude and ordinary float64
// suffices at any switch size — the numerical-stability advantage the
// paper claims over Algorithm 1. Dividing Eq. 8 by Q(n) gives the
// working recursion
//
//	F_i(n) = n_i / [ 1 + sum_{r in R1} a_r rho_r L_ir(n - 1_i)
//	                   + sum_{r in R2} a_r rho_r L_ir(n - 1_i) D(r, n - a_r I) ],
//
// with L_ir(n - 1_i) = Q(n - a_r I)/Q(n - 1_i) a staircase product of
// previously computed F values (Eq. 13-15, 20), and
//
//	D(r,n) = 1 + (beta_r/mu_r) H_r(n) D(r, n - a_r I).
//
// (The paper's Eq. 19 prints D = H_r + (beta/mu) D(n - a_r I), which is
// inconsistent with the definition in Eq. 17; the form above is the one
// that follows from Eq. 17 and makes Algorithm 2 agree with
// Algorithm 1 — see TestMVAMatchesAlgorithm1.)
type MVASolver struct {
	sw     Switch
	opt    Options
	f1, f2 []float64
	// d[j] is the D grid for the j-th bursty class.
	d       [][]float64
	burstyR []int // class index of each bursty class
	// burstyOf maps every class index to its bursty slot, or -1 for
	// Poisson classes. Precomputed in NewMVASolver so solveF's
	// denominator loop stays O(R) per cell instead of the O(R^2) a
	// per-class burstyR scan would make it.
	burstyOf []int
	// terms holds the per-class constants hoisted out of the fill.
	terms []mvaTerm
}

// mvaTerm is one class's hoisted fill constants.
type mvaTerm struct {
	a       int
	aRho    float64 // a_r * rho_r
	betaMu  float64
	poisson bool
}

// NewMVASolver validates the switch and fills the ratio lattices. An
// optional Options argument selects the fill schedule (see Parallel).
func NewMVASolver(sw Switch, opts ...Options) (*MVASolver, error) {
	s := &MVASolver{}
	if err := s.Reuse(sw, opts...); err != nil {
		return nil, err
	}
	return s, nil
}

// Reuse re-points the solver at sw and refills the ratio lattices,
// recycling the F and D buffers whenever their capacity allows — the
// allocation-free path for repeated solves of same-size systems. An
// optional Options argument replaces the solver's fill schedule.
func (s *MVASolver) Reuse(sw Switch, opts ...Options) error {
	if err := sw.Validate(); err != nil {
		return err
	}
	if len(opts) > 0 {
		s.opt = opts[0]
	}
	s.sw = sw
	size := (sw.N1 + 1) * (sw.N2 + 1)
	grow := func(buf []float64) []float64 {
		if cap(buf) >= size {
			return buf[:size]
		}
		return make([]float64, size)
	}
	s.f1, s.f2 = grow(s.f1), grow(s.f2)
	s.burstyR = s.burstyR[:0]
	s.burstyOf = s.burstyOf[:0]
	s.terms = s.terms[:0]
	dUsed := 0
	for r, c := range sw.Classes {
		s.terms = append(s.terms, mvaTerm{
			a: c.A, aRho: float64(c.A) * c.Rho(), betaMu: c.BetaMu(), poisson: c.IsPoisson(),
		})
		if c.IsPoisson() {
			s.burstyOf = append(s.burstyOf, -1)
			continue
		}
		s.burstyOf = append(s.burstyOf, len(s.burstyR))
		s.burstyR = append(s.burstyR, r)
		if dUsed == len(s.d) {
			s.d = append(s.d, nil)
		}
		s.d[dUsed] = grow(s.d[dUsed])
		dUsed++
	}
	s.d = s.d[:dUsed]
	s.fill()
	return nil
}

// SolveMVA computes the performance measures for sw with Algorithm 2.
// An optional Options argument selects the fill schedule.
func SolveMVA(sw Switch, opts ...Options) (*Result, error) {
	s, err := NewMVASolver(sw, opts...)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

func (s *MVASolver) idx(n1, n2 int) int { return n1*(s.sw.N2+1) + n2 }

// fAt returns F_i at a lattice point, applying the boundary values
// F_1(0, n2) = 0, F_1(n1, 0) = n1 (and symmetrically for F_2), which
// follow from Q = 0 off-lattice and Q(n1, 0) = 1/n1!.
func (s *MVASolver) fAt(i, n1, n2 int) float64 {
	if n1 < 0 || n2 < 0 {
		return 0
	}
	if i == 1 {
		return s.f1[s.idx(n1, n2)]
	}
	return s.f2[s.idx(n1, n2)]
}

// ratio returns Q(n1-da, n2-db)/Q(n1, n2) for 0 <= da, db as a product
// of F factors along a staircase path, or 0 when the target leaves the
// lattice. Only the patterns needed by the algorithm (da = db = a, and
// the L variants) call it.
func (s *MVASolver) ratio(n1, n2, a int) float64 {
	// H_r(n) = Q(n-aI)/Q(n).
	if n1-a < 0 || n2-a < 0 {
		return 0
	}
	h := 1.0
	p1, p2 := n1, n2
	// Descend in direction 1 a times, then direction 2 a times, always
	// using F values at points already final.
	for t := 0; t < a; t++ {
		h *= s.fAt(1, p1, p2)
		p1--
	}
	for t := 0; t < a; t++ {
		h *= s.fAt(2, p1, p2)
		p2--
	}
	return h
}

// dAt returns D(r-th bursty class, n), with the off-lattice convention
// D = 1 (only the m = 0 term survives).
func (s *MVASolver) dAt(j, n1, n2 int) float64 {
	if n1 < 0 || n2 < 0 {
		return 1
	}
	return s.d[j][s.idx(n1, n2)]
}

// fill runs the Eq. 12-20 recursions over the whole lattice:
// sequentially, or as a tiled wavefront when the resolved Options ask
// for it. Dependencies at a cell — the F staircases from (n - 1_i)
// down to (n - a_r I) and the D values at (n - a_r I) — all live at
// strictly smaller n1 + n2 except the same-cell F factors of the D
// update, which fillBlock computes first within the cell; anti-
// diagonal tile order is therefore a topological order and the
// parallel fill is bit-identical to the sequential one.
func (s *MVASolver) fill() {
	rows, cols := s.sw.N1+1, s.sw.N2+1
	w, tile := s.opt.plan(rows, cols)
	if w <= 1 {
		s.fillBlock(0, rows, 0, cols)
		return
	}
	parallel.Wavefront(w, rows, cols, tile, s.fillBlock)
}

// fillBlock runs the recursions over the half-open cell block
// [n1lo, n1hi) x [n2lo, n2hi) in row-major order.
func (s *MVASolver) fillBlock(n1lo, n1hi, n2lo, n2hi int) {
	sw := s.sw
	n2w := sw.N2 + 1
	for n1 := n1lo; n1 < n1hi; n1++ {
		base := n1 * n2w
		for n2 := n2lo; n2 < n2hi; n2++ {
			i := base + n2
			// F boundary and interior values.
			switch {
			case n1 == 0 && n2 == 0:
				s.f1[i], s.f2[i] = 0, 0
			case n2 == 0:
				s.f1[i], s.f2[i] = float64(n1), 0
			case n1 == 0:
				s.f1[i], s.f2[i] = 0, float64(n2)
			default:
				s.f1[i] = s.solveF(1, n1, n2)
				s.f2[i] = s.solveF(2, n1, n2)
			}
			// D grids, after F at this cell is final.
			for j, r := range s.burstyR {
				t := &s.terms[r]
				d := 1.0
				if n1 >= t.a && n2 >= t.a {
					h := s.ratio(n1, n2, t.a)
					d = 1 + t.betaMu*h*s.dAt(j, n1-t.a, n2-t.a)
				}
				s.d[j][i] = d
			}
		}
	}
}

// solveF evaluates the balance equation for F_i at an interior cell.
// Every lattice point the staircases touch is non-negative (the n-a
// guard establishes that), so the products index f1/f2 directly
// instead of going through fAt's bounds checks.
func (s *MVASolver) solveF(i, n1, n2 int) float64 {
	n2w := s.sw.N2 + 1
	den := 1.0
	for r := range s.terms {
		t := &s.terms[r]
		a := t.a
		if n1-a < 0 || n2-a < 0 {
			continue
		}
		// L_ir(n - 1_i) = Q(n - aI)/Q(n - 1_i): staircase product from
		// (n - 1_i) down to (n - aI).
		l := 1.0
		if i == 1 {
			// From (n1-1, n2): direction 2 a times, then direction 1
			// a-1 times.
			p := (n1-1)*n2w + n2
			for k := 0; k < a; k++ {
				l *= s.f2[p]
				p--
			}
			for k := 0; k < a-1; k++ {
				l *= s.f1[p]
				p -= n2w
			}
		} else {
			// From (n1, n2-1): direction 1 a times, then direction 2
			// a-1 times.
			p := n1*n2w + n2 - 1
			for k := 0; k < a; k++ {
				l *= s.f1[p]
				p -= n2w
			}
			for k := 0; k < a-1; k++ {
				l *= s.f2[p]
				p--
			}
		}
		term := t.aRho * l
		if !t.poisson {
			term *= s.d[s.burstyOf[r]][(n1-a)*n2w+n2-a]
		}
		den += term
	}
	var ni float64
	if i == 1 {
		ni = float64(n1)
	} else {
		ni = float64(n2)
	}
	return ni / den
}

// burstyIndex returns the bursty slot of class r via the map built in
// NewMVASolver (the former linear scan made the fill O(N^2 R^2)).
func (s *MVASolver) burstyIndex(r int) int {
	if r >= 0 && r < len(s.burstyOf) && s.burstyOf[r] >= 0 {
		return s.burstyOf[r]
	}
	//lint:allow libpanic asking for the bursty slot of a Poisson class is a programming error, same contract as before the map
	panic(fmt.Sprintf("core: class %d is not bursty", r))
}

// Result returns the measures at the full switch size.
func (s *MVASolver) Result() *Result {
	return s.ResultAt(s.sw.N1, s.sw.N2)
}

// ResultAt returns the measures for the sub-switch (n1, n2), read off
// the solved ratio lattices.
func (s *MVASolver) ResultAt(n1, n2 int) *Result {
	if n1 < 1 || n2 < 1 || n1 > s.sw.N1 || n2 > s.sw.N2 {
		//lint:allow libpanic out-of-range lattice index is a caller bug, same contract as slice indexing
		panic(fmt.Sprintf("core: ResultAt(%d, %d) outside solved lattice %dx%d",
			n1, n2, s.sw.N1, s.sw.N2))
	}
	sub := Switch{N1: n1, N2: n2, Classes: s.sw.Classes}
	res := &Result{
		Switch:      sub,
		Method:      "algorithm2",
		NonBlocking: make([]float64, len(sub.Classes)),
		Concurrency: make([]float64, len(sub.Classes)),
		LogG:        s.logG(n1, n2),
	}
	for r, c := range sub.Classes {
		a := c.A
		if a > sub.MinN() {
			continue
		}
		h := s.ratio(n1, n2, a)
		res.NonBlocking[r] = h / (combin.Perm(n1, a) * combin.Perm(n2, a))
		// E_r(M) = H_r(M) (rho_r + (beta/mu) E_r(M - aI)) folded up the
		// diagonal chain; rho_r * H_r(M) for Poisson classes.
		e := 0.0
		var chain []struct{ m1, m2 int }
		for m1, m2 := n1, n2; m1 >= a && m2 >= a; m1, m2 = m1-a, m2-a {
			chain = append(chain, struct{ m1, m2 int }{m1, m2})
		}
		for t := len(chain) - 1; t >= 0; t-- {
			d := chain[t]
			hm := s.ratio(d.m1, d.m2, a)
			if c.IsPoisson() {
				e = c.Rho() * hm
			} else {
				e = hm * (c.Rho() + c.BetaMu()*e)
			}
		}
		res.Concurrency[r] = e
	}
	res.finish()
	return res
}

// logG integrates ln Q along a lattice path and adds the factorials:
// ln G(N) = ln Q(N) + ln N1! + ln N2!, with
// ln Q(N) = -sum ln F_1(m1, 0) - sum ln F_2(N1, m2).
func (s *MVASolver) logG(n1, n2 int) float64 {
	lq := 0.0
	for m1 := 1; m1 <= n1; m1++ {
		lq -= math.Log(s.fAt(1, m1, 0))
	}
	for m2 := 1; m2 <= n2; m2++ {
		lq -= math.Log(s.fAt(2, n1, m2))
	}
	return lq + combin.LogFactorial(n1) + combin.LogFactorial(n2)
}
