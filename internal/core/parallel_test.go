package core

import (
	"fmt"
	"reflect"
	"runtime"
	"slices"
	"testing"
)

// The wavefront-parallel fill must be BIT-identical to the sequential
// fill — not merely within tolerance — because every cell is computed
// by the identical instruction sequence reading only finalized cells;
// only the schedule changes. These tests pin that guarantee across
// worker counts, tile sizes, traffic mixes (Poisson-only, bursty-only,
// mixed multirate) and rectangular N1 != N2 switches, for both
// Algorithm 1 (Q and V lattices) and Algorithm 2 (F and D lattices).

var parallelFillCases = []struct {
	name    string
	classes []Class
}{
	{"poisson", []Class{
		{Name: "p1", A: 1, Alpha: 0.04, Mu: 1},
		{Name: "p2", A: 2, Alpha: 0.015, Mu: 0.5},
	}},
	{"bursty", []Class{
		{Name: "b1", A: 1, Alpha: 0.03, Beta: 0.012, Mu: 1},
		{Name: "b2", A: 2, Alpha: 0.01, Beta: 0.004, Mu: 0.8},
	}},
	{"mixed-multirate", []Class{
		{Name: "p1", A: 1, Alpha: 0.05, Mu: 1},
		{Name: "b2", A: 2, Alpha: 0.012, Beta: 0.006, Mu: 1},
		{Name: "b3", A: 3, Alpha: 0.004, Beta: 0.001, Mu: 0.7},
		{Name: "p2", A: 2, Alpha: 0.008, Mu: 1.3},
	}},
}

var parallelFillShapes = []struct{ n1, n2 int }{
	{40, 40},   // square, crosses tile boundaries at every tested tile
	{24, 41},   // rectangular, N1 < N2
	{41, 24},   // rectangular, N1 > N2
	{3, 37},    // degenerate: thinner than most tiles
	{129, 129}, // above the auto-heuristic cutoff footprint at tile 64
}

func parallelFillGrid(n1, n2 int) []Options {
	full := max(n1, n2) + 1
	var opts []Options
	for _, w := range []int{1, 2, 4, 8} {
		for _, tile := range []int{1, 8, 64, full} {
			opts = append(opts, Parallel(w, tile))
		}
	}
	return opts
}

// maxprocs raises GOMAXPROCS to at least n for the duration of the
// test. parallel.Wavefront clamps its pool to GOMAXPROCS, so without
// this the multi-worker schedules would silently degenerate to the
// sequential path on single-CPU hosts and prove nothing.
func maxprocs(t *testing.T, n int) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

func TestParallelFillBitIdenticalAlg1(t *testing.T) {
	maxprocs(t, 8)
	for _, tc := range parallelFillCases {
		for _, sh := range parallelFillShapes {
			sw := Switch{N1: sh.n1, N2: sh.n2, Classes: tc.classes}
			ref, err := NewSolver(sw, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			refRes := ref.Result()
			for _, opt := range parallelFillGrid(sh.n1, sh.n2) {
				opt := opt
				t.Run(fmt.Sprintf("%s/%dx%d/w%d_t%d", tc.name, sh.n1, sh.n2, opt.Workers, opt.Tile), func(t *testing.T) {
					par, err := NewSolver(sw, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(par.q, ref.q) {
						t.Fatalf("Q lattice differs from sequential fill")
					}
					for j := range par.bursty {
						if !slices.Equal(par.bursty[j].w, ref.bursty[j].w) {
							t.Fatalf("W lattice of bursty class %d differs from sequential fill", j)
						}
					}
					if got := par.Result(); !reflect.DeepEqual(got, refRes) {
						t.Fatalf("Result differs from sequential fill:\n got %+v\nwant %+v", got, refRes)
					}
				})
			}
		}
	}
}

func TestParallelFillBitIdenticalMVA(t *testing.T) {
	maxprocs(t, 8)
	for _, tc := range parallelFillCases {
		for _, sh := range parallelFillShapes {
			sw := Switch{N1: sh.n1, N2: sh.n2, Classes: tc.classes}
			ref, err := NewMVASolver(sw, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			refRes := ref.Result()
			for _, opt := range parallelFillGrid(sh.n1, sh.n2) {
				opt := opt
				t.Run(fmt.Sprintf("%s/%dx%d/w%d_t%d", tc.name, sh.n1, sh.n2, opt.Workers, opt.Tile), func(t *testing.T) {
					par, err := NewMVASolver(sw, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(par.f1, ref.f1) || !slices.Equal(par.f2, ref.f2) {
						t.Fatalf("F lattices differ from sequential fill")
					}
					for j := range par.d {
						if !slices.Equal(par.d[j], ref.d[j]) {
							t.Fatalf("D lattice of bursty class %d differs from sequential fill", j)
						}
					}
					if got := par.Result(); !reflect.DeepEqual(got, refRes) {
						t.Fatalf("Result differs from sequential fill:\n got %+v\nwant %+v", got, refRes)
					}
				})
			}
		}
	}
}

// TestParallelFillReuse checks the schedule survives Reuse: a recycled
// parallel solver refilled for a different switch stays bit-identical
// to a fresh sequential solve, and an explicit Options argument to
// Reuse replaces the schedule.
func TestParallelFillReuse(t *testing.T) {
	maxprocs(t, 8)
	classes := parallelFillCases[2].classes
	s, err := NewSolver(Switch{N1: 40, N2: 28, Classes: classes}, Parallel(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range []struct{ n1, n2 int }{{28, 40}, {40, 40}, {9, 9}} {
		sw := Switch{N1: sh.n1, N2: sh.n2, Classes: classes}
		if err := s.Reuse(sw); err != nil {
			t.Fatal(err)
		}
		ref, err := NewSolver(sw, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(s.q, ref.q) {
			t.Fatalf("Reuse(%dx%d) parallel lattice differs from sequential", sh.n1, sh.n2)
		}
	}
	// Replacing the schedule through Reuse must leave results unchanged.
	sw := Switch{N1: 33, N2: 33, Classes: classes}
	if err := s.Reuse(sw, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	seq := append([]Result(nil), *s.Result())
	if err := s.Reuse(sw, Parallel(8, 1)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*s.Result(), seq[0]) {
		t.Fatal("Reuse with a new schedule changed the Result")
	}
}

// TestAutoHeuristic pins the auto plan: sequential below the cutoff
// (1 worker), parallel above it, and explicit worker counts honored
// regardless of size.
func TestAutoHeuristic(t *testing.T) {
	if w, _ := (Options{}).plan(17, 17); w != 1 {
		t.Errorf("auto plan at 17x17 chose %d workers, want sequential", w)
	}
	if w, _ := (Options{Workers: 7}).plan(5, 5); w != 7 {
		t.Errorf("explicit 7 workers at 5x5 resolved to %d", w)
	}
	if w, _ := (Options{Workers: 1}).plan(1000, 1000); w != 1 {
		t.Errorf("explicit sequential at 1000x1000 resolved to %d workers", w)
	}
	w, tile := (Options{}).plan(257, 257)
	if w < 1 {
		t.Errorf("auto plan at 257x257 resolved to %d workers", w)
	}
	if w > 1 && tile < 1 {
		t.Errorf("auto plan at 257x257 resolved tile %d", tile)
	}
	if _, tile := (Options{Workers: 4, Tile: 9}).plan(257, 257); tile != 9 {
		t.Errorf("explicit tile 9 resolved to %d", tile)
	}
}
