package core_test

import (
	"math"
	"testing"

	"xbar/internal/core"
)

// dispatchSwitch builds the n x n two-class BPP mix the dispatch
// tests route through both tiers.
func dispatchSwitch(n int) core.Switch {
	return core.NewSwitch(n, n,
		core.AggregateClass{Name: "narrow", A: 1, AlphaTilde: 0.56, Mu: 1},
		core.AggregateClass{Name: "wide", A: 2, AlphaTilde: 0.28, BetaTilde: 0.14, Mu: 0.5})
}

// sameFloats reports bit-identity of two measure slices.
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestParseDispatch covers the wire vocabulary round-trip.
func TestParseDispatch(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		in   string
		want core.Dispatch
	}{
		{"", core.DispatchAuto},
		{"auto", core.DispatchAuto},
		{"exact", core.DispatchExact},
		{"asymptotic", core.DispatchAsymptotic},
	} {
		got, err := core.ParseDispatch(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDispatch(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("Dispatch(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := core.ParseDispatch("lattice"); err == nil {
		t.Error("ParseDispatch accepted an unknown policy")
	}
}

// TestDispatchCutoffBoundary pins the routing decision at the size
// boundary: exactly at the cutoff the exact tier answers, one above
// the expansion does (the tolerance is opened wide so the bound
// cannot veto it, isolating the size test).
func TestDispatchCutoffBoundary(t *testing.T) {
	t.Parallel()
	const cutoff = 48
	opt := core.DispatchOptions{Cutoff: cutoff, Tolerance: math.Inf(1)}
	at, err := core.SolveAuto(dispatchSwitch(cutoff), opt)
	if err != nil {
		t.Fatal(err)
	}
	if at.Tier != core.TierExact {
		t.Errorf("n = cutoff: tier %q, want %q", at.Tier, core.TierExact)
	}
	above, err := core.SolveAuto(dispatchSwitch(cutoff+1), opt)
	if err != nil {
		t.Fatal(err)
	}
	if above.Tier != core.TierAsymptotic {
		t.Errorf("n = cutoff+1: tier %q, want %q", above.Tier, core.TierAsymptotic)
	}
	if above.MaxErrorBound() <= 0 {
		t.Errorf("asymptotic result reports no error bound")
	}
	// Rectangular: the cutoff compares against the larger dimension.
	rect := core.NewSwitch(8, cutoff+1,
		core.AggregateClass{A: 1, AlphaTilde: 0.5, Mu: 1})
	res, err := core.SolveAuto(rect, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != core.TierAsymptotic {
		t.Errorf("8x%d: tier %q, want %q (cutoff is on max dim)", cutoff+1, res.Tier, core.TierAsymptotic)
	}
}

// TestDispatchToleranceFallback brackets the tolerance around the
// expansion's own reported bound: just above it the asymptotic tier
// answers, just below it auto falls back to exact.
func TestDispatchToleranceFallback(t *testing.T) {
	t.Parallel()
	sw := dispatchSwitch(96)
	est, err := core.SolveAsymptotic(sw)
	if err != nil {
		t.Fatal(err)
	}
	bound := est.MaxErrorBound()
	if !(bound > 0) || bound >= 1e6 {
		t.Fatalf("test model's bound %v is not in a bracketable range", bound)
	}
	opt := core.DispatchOptions{Cutoff: 16, Tolerance: bound * 1.01}
	res, err := core.SolveAuto(sw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != core.TierAsymptotic {
		t.Errorf("tolerance above bound: tier %q, want %q", res.Tier, core.TierAsymptotic)
	}
	opt.Tolerance = bound * 0.99
	res, err = core.SolveAuto(sw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != core.TierExact {
		t.Errorf("tolerance below bound: tier %q, want %q", res.Tier, core.TierExact)
	}
	if res.ErrorBound != nil {
		t.Errorf("exact fallback carries ErrorBound %v", res.ErrorBound)
	}
}

// TestSolveAutoExactBitIdentity pins that whenever the exact tier is
// chosen — forced policy, sub-cutoff auto, or tolerance fallback —
// SolveAuto returns the same bits core.Solve does.
func TestSolveAutoExactBitIdentity(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		n    int
		opt  core.DispatchOptions
	}{
		{"forced exact", 96, core.DispatchOptions{Policy: core.DispatchExact, Cutoff: 16}},
		{"auto below cutoff", 32, core.DispatchOptions{}},
		{"tolerance fallback", 96, core.DispatchOptions{Cutoff: 16, Tolerance: 1e-9}},
		{"parallel fill", 160, core.DispatchOptions{Policy: core.DispatchExact, Fill: core.Parallel(4, 32)}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sw := dispatchSwitch(tc.n)
			want, err := core.Solve(sw, tc.opt.Fill)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.SolveAuto(sw, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if got.Tier != core.TierExact {
				t.Fatalf("tier %q, want %q", got.Tier, core.TierExact)
			}
			if !sameFloats(got.NonBlocking, want.NonBlocking) ||
				!sameFloats(got.Blocking, want.Blocking) ||
				!sameFloats(got.Concurrency, want.Concurrency) ||
				math.Float64bits(got.LogG) != math.Float64bits(want.LogG) {
				t.Errorf("SolveAuto exact tier is not bit-identical to Solve:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestDispatchAsymptoticForced pins the forced-asymptotic policy:
// it answers at any size regardless of the bound, and matches
// SolveAsymptotic.
func TestDispatchAsymptoticForced(t *testing.T) {
	t.Parallel()
	sw := dispatchSwitch(24) // small: auto would solve exactly
	res, err := core.SolveAuto(sw, core.DispatchOptions{Policy: core.DispatchAsymptotic, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != core.TierAsymptotic {
		t.Fatalf("tier %q, want %q", res.Tier, core.TierAsymptotic)
	}
	direct, err := core.SolveAsymptotic(sw)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(res.Blocking, direct.Blocking) || !sameFloats(res.ErrorBound, direct.ErrorBound) {
		t.Error("forced asymptotic differs from SolveAsymptotic")
	}
	// The expansion tracks the exact answer here even though the
	// bound is loose at n=24; sanity-check against Solve.
	exact, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if d := math.Abs(res.Blocking[r] - exact.Blocking[r]); d > res.ErrorBound[r] {
			t.Errorf("class %d: |asym-exact| = %.3g exceeds bound %.3g", r, d/exact.Blocking[r], res.ErrorBound[r])
		}
	}
}

// TestDispatchInvalidModel pins that every entry point validates.
func TestDispatchInvalidModel(t *testing.T) {
	t.Parallel()
	bad := core.Switch{N1: 0, N2: 8, Classes: []core.Class{{A: 1, Alpha: 1, Mu: 1}}}
	if _, err := core.SolveAsymptotic(bad); err == nil {
		t.Error("SolveAsymptotic accepted an invalid switch")
	}
	if _, err := core.SolveAuto(bad, core.DispatchOptions{Policy: core.DispatchAsymptotic}); err == nil {
		t.Error("SolveAuto accepted an invalid switch")
	}
}
