package core

// noOpts adapts the variadic-Options solver entry points to the plain
// func(Switch) shape the cross-validation test tables use.
func noOpts(f func(Switch, ...Options) (*Result, error)) func(Switch) (*Result, error) {
	return func(sw Switch) (*Result, error) { return f(sw) }
}
