package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xbar/internal/combin"
)

// switchFromSeed deterministically derives a random small switch from
// quick-generated integers, mixing traffic types.
func switchFromSeed(seed int64) Switch {
	rng := rand.New(rand.NewSource(seed))
	return randomSwitch(rng)
}

// TestPropertySymmetry: the normalization constant and every measure
// are symmetric in the switch dimensions (inputs and outputs play
// interchangeable roles in Psi).
func TestPropertySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		sw := switchFromSeed(seed)
		flipped := Switch{N1: sw.N2, N2: sw.N1, Classes: sw.Classes}
		a, err := Solve(sw)
		if err != nil {
			return false
		}
		b, err := Solve(flipped)
		if err != nil {
			return false
		}
		if !almostEqual(a.LogG, b.LogG, 1e-10) {
			return false
		}
		for r := range sw.Classes {
			if !almostEqual(a.NonBlocking[r], b.NonBlocking[r], 1e-10) ||
				!almostEqual(a.Concurrency[r], b.Concurrency[r], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBounds: probabilities stay in [0,1] and occupancy within
// capacity for arbitrary valid models.
func TestPropertyBounds(t *testing.T) {
	f := func(seed int64) bool {
		sw := switchFromSeed(seed)
		res, err := Solve(sw)
		if err != nil {
			return false
		}
		busy := 0.0
		for r, c := range sw.Classes {
			if res.NonBlocking[r] < 0 || res.NonBlocking[r] > 1 {
				return false
			}
			if res.Blocking[r] < 0 || res.Blocking[r] > 1 {
				return false
			}
			if res.Concurrency[r] < 0 {
				return false
			}
			busy += float64(c.A) * res.Concurrency[r]
		}
		return busy <= float64(sw.MinN())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTimeRescaling: multiplying every alpha, beta and mu by
// the same factor rescales time only — every stationary measure is
// unchanged.
func TestPropertyTimeRescaling(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		sw := switchFromSeed(seed)
		scale := 0.25 + float64(scaleRaw%40)/10 // 0.25 .. 4.15
		scaled := Switch{N1: sw.N1, N2: sw.N2}
		for _, c := range sw.Classes {
			c.Alpha *= scale
			c.Beta *= scale
			c.Mu *= scale
			scaled.Classes = append(scaled.Classes, c)
		}
		a, err := Solve(sw)
		if err != nil {
			return false
		}
		b, err := Solve(scaled)
		if err != nil {
			return false
		}
		for r := range sw.Classes {
			if !almostEqual(a.NonBlocking[r], b.NonBlocking[r], 1e-9) ||
				!almostEqual(a.Concurrency[r], b.Concurrency[r], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPoissonIdentity: for Poisson classes the Section 3
// identity E_r = rho_r P(N1,a) P(N2,a) B_r ties concurrency and
// non-blocking together; verify it on the solver output.
func TestPropertyPoissonIdentity(t *testing.T) {
	f := func(seed int64) bool {
		sw := switchFromSeed(seed)
		res, err := Solve(sw)
		if err != nil {
			return false
		}
		for r, c := range sw.Classes {
			if !c.IsPoisson() || c.A > sw.MinN() {
				continue
			}
			want := c.Rho() * combin.Perm(sw.N1, c.A) * combin.Perm(sw.N2, c.A) * res.NonBlocking[r]
			if !almostEqual(res.Concurrency[r], want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// singleClassPoisson derives a one-class Poisson switch from a seed.
// The classical monotonicity properties below hold only there: with
// peaky (beta > 0) sources, admitted connections raise the arrival
// rate, and with MULTIRATE mixtures, shifting load between classes of
// different a_r produces genuine blocking paradoxes. Both are pinned
// as regression anchors further down.
func singleClassPoisson(seed int64) Switch {
	rng := rand.New(rand.NewSource(seed))
	sw := randomSwitch(rng)
	c := sw.Classes[0]
	c.Beta = 0
	return Switch{N1: sw.N1, N2: sw.N2, Classes: []Class{c}}
}

// TestPropertyLoadMonotonicitySingleClass: for a single Poisson class,
// raising the load cannot lower blocking (the occupancy birth-death
// chain is stochastically increasing in alpha).
func TestPropertyLoadMonotonicitySingleClass(t *testing.T) {
	f := func(seed int64, bumpRaw uint8) bool {
		sw := singleClassPoisson(seed)
		bump := 1.1 + float64(bumpRaw%30)/10
		heavier := Switch{N1: sw.N1, N2: sw.N2, Classes: append([]Class(nil), sw.Classes...)}
		heavier.Classes[0].Alpha *= bump
		a, err := Solve(sw)
		if err != nil {
			return false
		}
		b, err := Solve(heavier)
		if err != nil {
			return false
		}
		return b.Blocking[0] >= a.Blocking[0]-1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGrowingSwitchAtFixedTotalLoad: for a single Poisson
// class, enlarging both dimensions while holding the TOTAL offered
// intensity fixed (Figure 4's normalization) cannot increase blocking.
// (At fixed per-route intensity the total load grows like N^2 and
// blocking rises with N — that is Figures 1-3.)
func TestPropertyGrowingSwitchAtFixedTotalLoad(t *testing.T) {
	f := func(seed int64) bool {
		sw := singleClassPoisson(seed)
		c := sw.Classes[0]
		if c.A > sw.MinN() {
			return true // nothing carried either way
		}
		scale := combin.Perm(sw.N1, c.A) * combin.Perm(sw.N2, c.A) /
			(combin.Perm(sw.N1+1, c.A) * combin.Perm(sw.N2+1, c.A))
		c.Alpha *= scale
		bigger := Switch{N1: sw.N1 + 1, N2: sw.N2 + 1, Classes: []Class{c}}
		a, err := Solve(sw)
		if err != nil {
			return false
		}
		b, err := Solve(bigger)
		if err != nil {
			return false
		}
		return b.Blocking[0] <= a.Blocking[0]+1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMultirateLoadParadox pins a genuine multirate phenomenon found
// by the property search (and confirmed against the exact CTMC):
// raising the load of an a=2 class REDUCES the a=1 class's blocking,
// because the extra medium connections displace a wide a=3 class whose
// circuits consumed more of the switch. Monotonicity is a
// single-service property only.
func TestMultirateLoadParadox(t *testing.T) {
	base := Switch{N1: 6, N2: 7, Classes: []Class{
		{A: 1, Alpha: 0.28584140341393866, Mu: 1.9012000141728802},
		{A: 2, Alpha: 0.14105121106615076, Mu: 1.5461999136612012},
		{A: 3, Alpha: 0.27445618130834776, Mu: 1.5866180703748043},
	}}
	heavier := Switch{N1: 6, N2: 7, Classes: append([]Class(nil), base.Classes...)}
	heavier.Classes[1].Alpha *= 1.8
	a, err := Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(heavier)
	if err != nil {
		t.Fatal(err)
	}
	if !(b.Blocking[0] < a.Blocking[0]) {
		t.Errorf("expected the multirate paradox: class-1 blocking %v -> %v", a.Blocking[0], b.Blocking[0])
	}
	if !(b.Concurrency[2] < a.Concurrency[2]) {
		t.Errorf("expected the wide class to be displaced: E3 %v -> %v", a.Concurrency[2], b.Concurrency[2])
	}
}

// TestPeakyCapacityParadox pins down the genuine BPP phenomenon that
// falsifies the naive monotonicity intuition: for a peaky class, a
// bigger switch admits more connections, each admitted connection
// raises the arrival rate (beta k), and time congestion RISES with
// capacity at fixed per-route intensity. Verified against the exact
// CTMC when first found; kept as a regression anchor.
func TestPeakyCapacityParadox(t *testing.T) {
	cls := []Class{{A: 1, Alpha: 0.01129404630586925, Beta: 0.027059491141226532, Mu: 0.8585777066814367}}
	small, err := Solve(Switch{N1: 4, N2: 6, Classes: cls})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Solve(Switch{N1: 5, N2: 7, Classes: cls})
	if err != nil {
		t.Fatal(err)
	}
	if !(big.Blocking[0] > small.Blocking[0]) {
		t.Errorf("expected the peaky capacity paradox: small %v, big %v",
			small.Blocking[0], big.Blocking[0])
	}
	if !almostEqual(small.Blocking[0], 0.144973, 1e-4) || !almostEqual(big.Blocking[0], 0.207585, 1e-4) {
		t.Errorf("paradox anchors moved: %v, %v", small.Blocking[0], big.Blocking[0])
	}
}
