package grid

import (
	"fmt"

	"xbar/internal/core"
)

// ClassDelta overrides selected parameters of one base class. Nil
// fields keep the base value, so a delta names exactly what moved —
// the natural shape for the optimizer's line searches and the fixed
// point's re-thinned alphas.
type ClassDelta struct {
	// Class indexes the base switch's Classes slice.
	Class int
	// Alpha, Beta, Mu override the per-route parameters when non-nil.
	Alpha, Beta, Mu *float64
}

// PointDelta describes one grid point relative to a base switch: new
// dimensions (zero keeps the base dimension) plus any class overrides.
// The zero PointDelta is the base switch itself.
type PointDelta struct {
	N1, N2  int
	Classes []ClassDelta
}

// Apply materializes the concrete switch a delta describes. The base
// is never mutated; the classes slice is copied iff any class moves.
func Apply(base core.Switch, d PointDelta) (core.Switch, error) {
	sw := base
	if d.N1 != 0 {
		sw.N1 = d.N1
	}
	if d.N2 != 0 {
		sw.N2 = d.N2
	}
	if len(d.Classes) > 0 {
		sw.Classes = append([]core.Class(nil), base.Classes...)
		for _, cd := range d.Classes {
			if cd.Class < 0 || cd.Class >= len(sw.Classes) {
				return core.Switch{}, fmt.Errorf("grid: class delta index %d out of range [0,%d)", cd.Class, len(sw.Classes))
			}
			c := &sw.Classes[cd.Class]
			if cd.Alpha != nil {
				c.Alpha = *cd.Alpha
			}
			if cd.Beta != nil {
				c.Beta = *cd.Beta
			}
			if cd.Mu != nil {
				c.Mu = *cd.Mu
			}
		}
	}
	return sw, nil
}

// Points materializes one switch per delta against a common base.
func Points(base core.Switch, deltas []PointDelta) ([]core.Switch, error) {
	points := make([]core.Switch, len(deltas))
	for i, d := range deltas {
		sw, err := Apply(base, d)
		if err != nil {
			return nil, fmt.Errorf("grid: point %d: %w", i, err)
		}
		points[i] = sw
	}
	return points, nil
}

// SolveDeltas evaluates a delta-described grid against a base switch:
// the delta-aware re-solve entry point. Points whose deltas cancel out
// (or repeat across calls, as in fixed-point iterations where a
// switch's thinned load did not move) collapse onto memoized results;
// the rest share fills per the engine's grouping.
func (e *Engine) SolveDeltas(base core.Switch, deltas []PointDelta) ([]*core.Result, error) {
	points, err := Points(base, deltas)
	if err != nil {
		return nil, err
	}
	return e.Solve(points)
}
