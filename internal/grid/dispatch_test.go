package grid

import (
	"math"
	"testing"

	"xbar/internal/core"
)

// dispatchPoints mixes small exact-territory sizes (with an in-batch
// duplicate) and sizes past the cutoff where the expansion's bound is
// tight enough to answer.
func dispatchPoints() []core.Switch {
	mk := func(n int) core.Switch {
		return core.NewSwitch(n, n,
			core.AggregateClass{A: 1, AlphaTilde: 1.12, Mu: 1})
	}
	return []core.Switch{mk(16), mk(48), mk(16), mk(2048), mk(4096)}
}

// TestDispatchRouting pins the per-point tier decision and that no
// lattice fill is ever sized by an asymptotic point: the 4096-wide
// points join no group, so the batch's fills stay at the small exact
// sizes.
func TestDispatchRouting(t *testing.T) {
	t.Parallel()
	for _, nomemo := range []bool{false, true} {
		opt := core.DispatchOptions{Cutoff: 64, Tolerance: 0.05}
		e := New(Options{Workers: 2, NoMemo: nomemo, Dispatch: &opt})
		results, err := e.Solve(dispatchPoints())
		if err != nil {
			t.Fatalf("nomemo=%v: %v", nomemo, err)
		}
		wantTier := []string{core.TierExact, core.TierExact, core.TierExact, core.TierAsymptotic, core.TierAsymptotic}
		for i, r := range results {
			if r.Tier != wantTier[i] {
				t.Errorf("nomemo=%v point %d: tier %q, want %q", nomemo, i, r.Tier, wantTier[i])
			}
			if (r.Tier == core.TierAsymptotic) != (r.ErrorBound != nil) {
				t.Errorf("nomemo=%v point %d: tier %q with ErrorBound %v", nomemo, i, r.Tier, r.ErrorBound)
			}
		}
		if b := results[3].MaxErrorBound(); !(b > 0 && b <= 0.05) {
			t.Errorf("nomemo=%v: n=2048 bound %v outside (0, tolerance]", nomemo, b)
		}
		st := e.Stats()
		if st.Asymptotic != 2 {
			t.Errorf("nomemo=%v: Asymptotic = %d, want 2", nomemo, st.Asymptotic)
		}
		if nomemo {
			continue
		}
		// Memoized path: the duplicate 16x16 point is a batch hit; the
		// two exact sizes carry different per-route rates (fixed
		// aggregate intensity), so each fills its own lattice — but
		// the asymptotic points added no fill; accounting balances.
		if st.Fills != 2 || st.Unique != 2 || st.BatchHits != 1 {
			t.Errorf("stats %+v: want Fills=2 Unique=2 BatchHits=1", st)
		}
		if st.Points != st.MemoHits+st.BatchHits+st.Asymptotic+st.Unique {
			t.Errorf("stats %+v do not balance", st)
		}
		// A second identical batch is served entirely from the memo —
		// including the asymptotic points.
		again, err := e.Solve(dispatchPoints())
		if err != nil {
			t.Fatal(err)
		}
		st2 := e.Stats()
		if st2.Fills != st.Fills || st2.MemoHits != st.MemoHits+len(again) {
			t.Errorf("repeat batch: stats %+v, want all points memo-served over %+v", st2, st)
		}
		for i, r := range again {
			if r.Tier != wantTier[i] {
				t.Errorf("repeat point %d: tier %q, want %q", i, r.Tier, wantTier[i])
			}
		}
	}
}

// TestDispatchExactPathBitIdentical pins that dispatch-routed exact
// points produce the same bits as the exact-only engine (and hence
// fresh core.Solve): dispatch only adds the Tier stamp.
func TestDispatchExactPathBitIdentical(t *testing.T) {
	t.Parallel()
	points := []core.Switch{
		core.NewSwitch(24, 40, core.AggregateClass{A: 1, AlphaTilde: 1.5, Mu: 1},
			core.AggregateClass{A: 2, AlphaTilde: 0.4, BetaTilde: 0.2, Mu: 0.5}),
		core.NewSwitch(48, 48, core.AggregateClass{A: 1, AlphaTilde: 1.5, Mu: 1}),
	}
	opt := core.DispatchOptions{} // defaults: cutoff 512, every point exact
	dispatched, err := New(Options{Workers: 2, Dispatch: &opt}).Solve(points)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Options{Workers: 2}).Solve(points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if dispatched[i].Tier != core.TierExact || dispatched[i].ErrorBound != nil {
			t.Fatalf("point %d: tier %q bound %v, want exact/nil", i, dispatched[i].Tier, dispatched[i].ErrorBound)
		}
		for r := range points[i].Classes {
			if math.Float64bits(dispatched[i].Blocking[r]) != math.Float64bits(plain[i].Blocking[r]) ||
				math.Float64bits(dispatched[i].Concurrency[r]) != math.Float64bits(plain[i].Concurrency[r]) {
				t.Errorf("point %d class %d: dispatch-routed exact result differs from exact-only engine", i, r)
			}
		}
	}
}

// TestDispatchForcedAsymptoticError pins error propagation: a forced
// asymptotic policy reports the expansion's failure with the point
// index instead of silently falling back.
func TestDispatchForcedAsymptoticError(t *testing.T) {
	t.Parallel()
	opt := core.DispatchOptions{Policy: core.DispatchAsymptotic}
	e := New(Options{Workers: 1, Dispatch: &opt})
	// Saturated Pascal: per-route slope >= 1 fails validation inside
	// the expansion path just as it does for the exact tier.
	bad := core.Switch{N1: 8, N2: 8, Classes: []core.Class{{A: 1, Alpha: 1, Beta: 2, Mu: 1}}}
	if _, err := e.Solve([]core.Switch{bad}); err == nil {
		t.Error("invalid point accepted")
	}
}
