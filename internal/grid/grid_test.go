package grid

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"xbar/internal/core"
)

// gridConfigs spans the scheduling and reuse matrix every correctness
// test runs under: both engine paths (memoized and the full-fill
// fallback) at one and several workers. The race-full CI job runs
// these under -race, so the 4-worker rows also exercise the pool's
// synchronization.
var gridConfigs = []Options{
	{Workers: 1},
	{Workers: 4},
	{Workers: 1, NoMemo: true},
	{Workers: 4, NoMemo: true},
}

func configName(o Options) string {
	name := "memo"
	if o.NoMemo {
		name = "nomemo"
	}
	if o.Workers == 1 {
		return name + "/w1"
	}
	return name + "/w4"
}

// freshResults is the reference: an independent core.Solve per point.
func freshResults(t *testing.T, points []core.Switch) []*core.Result {
	t.Helper()
	out := make([]*core.Result, len(points))
	for i, sw := range points {
		res, err := core.Solve(sw)
		if err != nil {
			t.Fatalf("fresh solve of point %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// requireBitIdentical pins every returned measure to the fresh
// reference with exact equality — the engine's contract is
// bit-identity, not tolerance.
func requireBitIdentical(t *testing.T, got, want []*core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("point %d differs from fresh core.Solve:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// randomSwitch mirrors internal/core's property-test generator: small
// rectangular switches with 1-3 classes across the Poisson / peaky /
// smooth regimes.
func randomSwitch(rng *rand.Rand) core.Switch {
	n1 := 1 + rng.Intn(7)
	n2 := 1 + rng.Intn(7)
	// Bernoulli populations are sized for the largest switch any test
	// derives from these classes (size families go up to 8x8), not just
	// this one, so every family member stays valid.
	const maxN = 8
	nClasses := 1 + rng.Intn(3)
	var classes []core.Class
	for i := 0; i < nClasses; i++ {
		a := 1 + rng.Intn(3)
		mu := 0.5 + rng.Float64()*2
		alpha := (0.01 + rng.Float64()*0.5) * mu
		var beta float64
		switch rng.Intn(3) {
		case 0: // Poisson
		case 1: // peaky
			beta = rng.Float64() * 0.8 * mu
		case 2: // smooth, integer population >= maxN
			pop := float64(maxN + 1 + rng.Intn(100))
			beta = -alpha / pop
			alpha = pop * (-beta)
		}
		classes = append(classes, core.Class{A: a, Alpha: alpha, Beta: beta, Mu: mu})
	}
	return core.Switch{N1: n1, N2: n2, Classes: classes}
}

// muScaled rescales (alpha, beta, mu) by a power of two, which leaves
// rho and beta/mu bit-identical: the canonical twin of a point, and
// the sharpest test of the class-key invariance (the engine serves it
// from the original's fill; a fresh solve recomputes it from the
// scaled parameters).
func muScaled(sw core.Switch, scale float64) core.Switch {
	classes := make([]core.Class, len(sw.Classes))
	for i, c := range sw.Classes {
		c.Alpha *= scale
		c.Beta *= scale
		c.Mu *= scale
		classes[i] = c
	}
	return core.Switch{N1: sw.N1, N2: sw.N2, Classes: classes}
}

// randomBatch builds a grid with the sharing structure the engine
// targets: for each of a few base switches it injects exact
// duplicates, canonical (mu-scaled) twins, and same-class size
// variants, then shuffles so dedup cannot rely on adjacency.
func randomBatch(rng *rand.Rand) []core.Switch {
	var points []core.Switch
	for b := 0; b < 2+rng.Intn(2); b++ {
		sw := randomSwitch(rng)
		points = append(points, sw)
		for v := 0; v < rng.Intn(3); v++ {
			points = append(points, sw) // exact duplicate
		}
		if rng.Intn(2) == 0 {
			points = append(points, muScaled(sw, 2))
		}
		for v := 0; v < rng.Intn(3); v++ { // size family, same classes
			points = append(points, core.Switch{
				N1: 1 + rng.Intn(8), N2: 1 + rng.Intn(8), Classes: sw.Classes,
			})
		}
	}
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
	return points
}

// TestGridBitIdenticalProperty is the tentpole's pinned contract:
// across random grids with injected duplicate / canonical-twin /
// size-family structure, rectangular switches, workers {1,4}, and both
// the memoized and the full-fill fallback path, every engine result is
// bit-identical to a fresh per-point core.Solve. A second Solve of a
// shuffled copy re-checks the cross-call memo path the fixed point
// leans on.
func TestGridBitIdenticalProperty(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for _, opt := range gridConfigs {
		opt := opt
		t.Run(configName(opt), func(t *testing.T) {
			for seed := int64(0); seed < int64(seeds); seed++ {
				rng := rand.New(rand.NewSource(1000 + seed))
				points := randomBatch(rng)
				want := freshResults(t, points)
				eng := New(opt)
				got, err := eng.Solve(points)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				requireBitIdentical(t, got, want)

				// Second call: overlap with the first (memo hits) plus
				// fresh sizes of the same class sets.
				again := append([]core.Switch(nil), points...)
				for i := 0; i < 3 && i < len(points); i++ {
					sw := points[i]
					again = append(again, core.Switch{
						N1: 1 + rng.Intn(8), N2: 1 + rng.Intn(8), Classes: sw.Classes,
					})
				}
				rng.Shuffle(len(again), func(i, j int) { again[i], again[j] = again[j], again[i] })
				want2 := freshResults(t, again)
				got2, err := eng.Solve(again)
				if err != nil {
					t.Fatalf("seed %d second call: %v", seed, err)
				}
				requireBitIdentical(t, got2, want2)
			}
		})
	}
}

// TestGridStats verifies the planner's accounting on a batch with
// known sharing structure.
func TestGridStats(t *testing.T) {
	base := core.Switch{N1: 6, N2: 5, Classes: []core.Class{
		{A: 1, Alpha: 0.05, Mu: 1},
		{A: 2, Alpha: 0.01, Beta: 0.004, Mu: 0.8},
	}}
	other := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{A: 1, Alpha: 0.2, Beta: 0.1, Mu: 1.5},
	}}
	points := []core.Switch{
		base,
		base,                                  // exact duplicate -> batch hit
		muScaled(base, 2),                     // canonical twin, same dims -> batch hit
		{N1: 3, N2: 7, Classes: base.Classes}, // size variant, same fill group
		other,                                 // distinct class set -> own group
	}
	eng := New(Options{Workers: 1})
	if _, err := eng.Solve(points); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	want := Stats{Points: 5, Unique: 3, Fills: 2, BatchHits: 2, MemoHits: 0}
	if s != want {
		t.Fatalf("first call stats = %+v, want %+v", s, want)
	}
	if got, wantRate := s.HitRate(), 1-2.0/5.0; got != wantRate {
		t.Fatalf("hit rate = %v, want %v", got, wantRate)
	}

	// Re-solving the same batch is pure memo: no new fills.
	if _, err := eng.Solve(points); err != nil {
		t.Fatal(err)
	}
	s = eng.Stats()
	want = Stats{Points: 10, Unique: 3, Fills: 2, BatchHits: 2, MemoHits: 5}
	if s != want {
		t.Fatalf("second call stats = %+v, want %+v", s, want)
	}
}

// TestGridResultsIndependent: equal points must not share mutable
// state — mutating one result's slices cannot leak into another's, nor
// into a later memo-served clone.
func TestGridResultsIndependent(t *testing.T) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	eng := New(Options{Workers: 1})
	res, err := eng.Solve([]core.Switch{sw, sw})
	if err != nil {
		t.Fatal(err)
	}
	want := res[1].Blocking[0]
	res[0].Blocking[0] = -1
	res[0].NonBlocking[0] = -1
	res[0].Concurrency[0] = -1
	if res[1].Blocking[0] != want {
		t.Fatal("duplicate points share Blocking storage")
	}
	again, err := eng.Solve([]core.Switch{sw})
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Blocking[0] != want {
		t.Fatal("memo entry was corrupted through a returned result")
	}
}

// TestGridThroughputUsesPointMu: a canonical twin shares the fill but
// must report throughput with its own service rate.
func TestGridThroughputUsesPointMu(t *testing.T) {
	sw := core.Switch{N1: 5, N2: 5, Classes: []core.Class{{A: 1, Alpha: 0.2, Mu: 1}}}
	twin := muScaled(sw, 2)
	eng := New(Options{Workers: 1})
	res, err := eng.Solve([]core.Switch{sw, twin})
	if err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Fills != 1 || s.BatchHits != 1 {
		t.Fatalf("twin did not share the fill: %+v", s)
	}
	if got, want := res[1].Throughput(0), 2*res[0].Throughput(0); got != want {
		t.Fatalf("twin throughput = %v, want %v", got, want)
	}
}

// TestGridPoissonBetaCanonicalized: a beta within the Poisson
// tolerance is never read by the solver, so it must not split the
// canonical key.
func TestGridPoissonBetaCanonicalized(t *testing.T) {
	a := core.Switch{N1: 5, N2: 4, Classes: []core.Class{{A: 1, Alpha: 0.2, Mu: 1}}}
	b := core.Switch{N1: 5, N2: 4, Classes: []core.Class{{A: 1, Alpha: 0.2, Beta: 1e-12, Mu: 1}}}
	eng := New(Options{Workers: 1})
	res, err := eng.Solve([]core.Switch{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Fills != 1 {
		t.Fatalf("tolerance-zero beta split the key: %+v", s)
	}
	want := freshResults(t, []core.Switch{a, b})
	requireBitIdentical(t, res, want)
}

// TestGridValidation: invalid points are rejected up front, naming the
// offending index.
func TestGridValidation(t *testing.T) {
	good := core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	bad := core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 0, Alpha: 0.1, Mu: 1}}}
	eng := New(Options{})
	_, err := eng.Solve([]core.Switch{good, bad})
	if err == nil || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("want error naming point 1, got %v", err)
	}
	res, err := eng.Solve(nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch: got %v, %v", res, err)
	}
}

// TestGridConcurrentSolve: one engine, concurrent Solve calls over
// overlapping batches (the server's usage pattern). Run under -race in
// CI's race-full job.
func TestGridConcurrentSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points := randomBatch(rng)
	want := freshResults(t, points)
	eng := New(Options{Workers: 2})
	const callers = 4
	errs := make(chan error, callers)
	results := make([][]*core.Result, callers)
	for g := 0; g < callers; g++ {
		go func(g int) {
			res, err := eng.Solve(points)
			results[g] = res
			errs <- err
		}(g)
	}
	for g := 0; g < callers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < callers; g++ {
		requireBitIdentical(t, results[g], want)
	}
}

func TestDeltaApply(t *testing.T) {
	base := core.Switch{N1: 8, N2: 6, Classes: []core.Class{
		{Name: "narrow", A: 1, Alpha: 0.05, Mu: 1},
		{Name: "wide", A: 2, Alpha: 0.01, Beta: 0.004, Mu: 0.8},
	}}

	// Zero delta is the base itself.
	sw, err := Apply(base, PointDelta{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sw, base) {
		t.Fatalf("zero delta: got %+v", sw)
	}

	// Dims and one class parameter move; the base must stay intact.
	alpha := 0.09
	sw, err = Apply(base, PointDelta{N1: 4, Classes: []ClassDelta{{Class: 0, Alpha: &alpha}}})
	if err != nil {
		t.Fatal(err)
	}
	if sw.N1 != 4 || sw.N2 != 6 {
		t.Fatalf("dims = %dx%d, want 4x6", sw.N1, sw.N2)
	}
	if sw.Classes[0].Alpha != alpha || sw.Classes[0].Mu != 1 || sw.Classes[1] != base.Classes[1] {
		t.Fatalf("classes = %+v", sw.Classes)
	}
	if base.Classes[0].Alpha != 0.05 {
		t.Fatal("Apply mutated the base switch")
	}

	if _, err := Apply(base, PointDelta{Classes: []ClassDelta{{Class: 2}}}); err == nil {
		t.Fatal("out-of-range class delta accepted")
	}
}

// TestSolveDeltas: the delta entry point is exactly Solve over the
// materialized points — same results, same sharing.
func TestSolveDeltas(t *testing.T) {
	base := core.Switch{N1: 6, N2: 6, Classes: []core.Class{
		{A: 1, Alpha: 0.05, Mu: 1},
		{A: 2, Alpha: 0.01, Beta: 0.004, Mu: 0.8},
	}}
	alphas := []float64{0.02, 0.05, 0.08}
	var deltas []PointDelta
	deltas = append(deltas, PointDelta{}) // the base
	for i := range alphas {
		deltas = append(deltas, PointDelta{Classes: []ClassDelta{{Class: 0, Alpha: &alphas[i]}}})
	}
	deltas = append(deltas, PointDelta{N1: 3, N2: 4}) // size-only: shares the base's fill group

	points, err := Points(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	want := freshResults(t, points)
	eng := New(Options{Workers: 1})
	got, err := eng.SolveDeltas(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)
	// alpha = 0.05 delta reproduces the base exactly -> batch hit; the
	// size-only point rides the base's group fill.
	s := eng.Stats()
	if s.BatchHits != 1 || s.Fills != 3 {
		t.Fatalf("stats = %+v, want 1 batch hit over 3 fills", s)
	}
}
