// Package grid evaluates batches ("grids") of closely related switch
// models: the figure curve families of the paper's numerical section,
// the admission optimizer's candidate sweeps, and the re-solves of the
// reduced-load fixed point (internal/network) are all grids in which
// many points share most — often all — of their structure. A naive
// driver pays a fresh O(N1 N2 R) Algorithm 1 lattice fill per point;
// the engine here recognizes the sharing and pays for each distinct
// lattice exactly once, without changing a single output bit.
//
// # What can be shared exactly
//
// The Eq. 10 recursion couples every class at every lattice cell (each
// Q(n) accumulates one term per class), so there is no class-partial
// lattice that could be re-filled for "just the class that moved"
// while staying bit-identical to a fresh fill — the per-class
// factorization the convolution evaluator enjoys lives on the
// occupancy axis and rounds differently. Likewise the classes cannot
// be reordered into a canonical order: the accumulation order enters
// the floating-point rounding. What Algorithm 1 does admit, exactly:
//
//   - Parameter invariance. The lattice and every measure except
//     Throughput depend on a class only through (a_r, the
//     Poisson/bursty split, rho_r = alpha_r/mu_r, beta_r/mu_r).
//     Class names, and the (alpha, mu) factorization of rho, never
//     enter the numerics. Two models equal under that canonical key
//     are the same computation.
//   - Sub-lattice sharing. The recursion is lower-triangular, so a
//     sub-lattice of one big fill is bit-identical to a fresh fill of
//     the smaller switch with the same per-route classes (the
//     core.SweepSolver property). Points that differ only in their
//     dimensions share one fill at the componentwise maximum.
//
// The engine canonicalizes each point, deduplicates equal points,
// groups the survivors by class key so each group pays one fill at its
// maximum dimensions, and memoizes results across Solve calls — which
// is what turns the fixed point's iterated re-solves of symmetric or
// load-stable switches into map lookups. Points whose delta structure
// permits no reuse (a unique class set at a unique size) fall back to
// a full fill of their own, through the same pooled solvers. Both
// paths are pinned bit-identical to fresh core.Solve by the package's
// property tests.
//
// Scheduling: group fills run on a work-stealing pool (workers claim
// groups from a shared queue) over Reuse-recycled solvers, and the
// worker budget is split with the wavefront intra-fill parallelism —
// many small fills run sequentially side by side, a lone large fill
// gets the whole budget as wavefront workers.
package grid

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"xbar/internal/core"
	"xbar/internal/parallel"
)

// Options configures an Engine.
type Options struct {
	// Workers is the shared worker budget, split between point-level
	// parallelism (concurrent group fills) and each fill's wavefront
	// schedule. Zero selects runtime.GOMAXPROCS(0).
	Workers int
	// Tile is the wavefront tile edge handed to core.Parallel (0 =
	// automatic).
	Tile int
	// NoMemo disables canonicalization, deduplication, grouping and
	// the cross-call memo: every point pays a full lattice fill of its
	// own, through the same pooled solvers. This is the engine's
	// fallback path made total — the property tests pin it and the
	// memoized path bit-identical, and the benchmarks use it as the
	// per-point baseline.
	NoMemo bool
	// Dispatch, when non-nil, routes each point through
	// core.TryAsymptotic first: points the policy answers
	// asymptotically never enter lattice planning — they join no fill
	// group, so one huge point cannot inflate a group's fill
	// dimensions — while the rest take the exact path unchanged
	// (bit-identical to Dispatch == nil). Results carry Tier and, on
	// the asymptotic tier, ErrorBound. Nil keeps the engine purely
	// exact.
	Dispatch *core.DispatchOptions
}

// Stats is the engine's lifetime accounting, the raw material of the
// memoization-hit-rate tables in docs/PERFORMANCE.md. Points =
// MemoHits + BatchHits + Asymptotic + Unique, and Fills <= Unique
// (grouping packs several unique sizes into one fill).
type Stats struct {
	// Points is the number of points submitted to Solve.
	Points int
	// Unique is the number of distinct canonical models solved.
	Unique int
	// Fills is the number of lattice fills actually run.
	Fills int
	// BatchHits counts points served by an equal point of the same
	// Solve call (e.g. the fixed point's symmetric switches).
	BatchHits int
	// MemoHits counts points served by an earlier Solve call (e.g. a
	// switch whose thinned load did not move between fixed-point
	// iterations).
	MemoHits int
	// Asymptotic counts points answered by the saddle-point tier
	// (Options.Dispatch): O(R) each, no lattice fill.
	Asymptotic int
}

// HitRate reports the fraction of points that did not pay a lattice
// fill of their own.
func (s Stats) HitRate() float64 {
	if s.Points == 0 {
		return 0
	}
	return 1 - float64(s.Fills)/float64(s.Points)
}

// memoResult is one canonical point's stored measures. The slices are
// owned by the memo; clones copy them so callers can never corrupt a
// shared entry.
type memoResult struct {
	method, tier                       string
	logG                               float64
	nonBlocking, blocking, concurrency []float64
	errorBound                         []float64
}

func newMemoResult(r *core.Result) *memoResult {
	return &memoResult{
		method:      r.Method,
		tier:        r.Tier,
		logG:        r.LogG,
		nonBlocking: r.NonBlocking,
		blocking:    r.Blocking,
		concurrency: r.Concurrency,
		errorBound:  r.ErrorBound,
	}
}

// clone materializes the memoized measures for one concrete point.
// The Switch is the point's own (not the canonical representative's),
// so mu-dependent reads — Result.Throughput — see the point's rates.
func (m *memoResult) clone(sw core.Switch) *core.Result {
	r := &core.Result{
		Switch:      sw,
		Method:      m.method,
		Tier:        m.tier,
		LogG:        m.logG,
		NonBlocking: append([]float64(nil), m.nonBlocking...),
		Blocking:    append([]float64(nil), m.blocking...),
		Concurrency: append([]float64(nil), m.concurrency...),
	}
	if m.errorBound != nil {
		r.ErrorBound = append([]float64(nil), m.errorBound...)
	}
	return r
}

// maxMemoEntries bounds the cross-call memo. A fixed point touches a
// few new operating points per iteration and a figure grid a few
// hundred in total, so the bound exists only to keep a pathological
// caller from growing the map without end; on overflow the memo is
// flushed wholesale (an epoch flush — simple, and correctness never
// depends on an entry being present).
const maxMemoEntries = 1 << 16

// Engine is a batch evaluator with a persistent memo and solver pool.
// The zero value is not ready; build one with New. An Engine is safe
// for concurrent Solve calls (concurrent equal points may race to
// duplicate a fill — never to a wrong result), though the intended
// pattern is one engine per logical grid: per figure, per fixed point,
// per optimizer run.
type Engine struct {
	opt Options

	mu    sync.Mutex
	memo  map[string]*memoResult
	pool  []*core.Solver
	stats Stats
}

// New builds an Engine.
func New(opt Options) *Engine {
	return &Engine{opt: opt, memo: make(map[string]*memoResult)}
}

// maxPoolSolvers bounds the solver free pool, mirroring the server
// cache's recycling bound: beyond it, lattices go back to the GC.
const maxPoolSolvers = 8

func (e *Engine) takeSolver() *core.Solver {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.pool); n > 0 {
		s := e.pool[n-1]
		e.pool = e.pool[:n-1]
		return s
	}
	return &core.Solver{}
}

// putSolver hands a solver back to the free pool; the caller must not
// touch it (or results read off it) afterwards.
//
//lint:pooled
func (e *Engine) putSolver(s *core.Solver) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.pool) < maxPoolSolvers {
		e.pool = append(e.pool, s)
	}
}

// Stats returns a snapshot of the engine's lifetime accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// hexFloat renders x exactly: two keys collide only for bit-identical
// parameters (same convention as the xbard solver cache).
func hexFloat(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

// ClassKey canonicalizes per-route traffic classes to the exact
// quantities Algorithm 1 reads: bandwidth, the Poisson/bursty split,
// rho = alpha/mu, and (bursty classes only) beta/mu. Names and the
// (alpha, mu) factorization of rho are excluded — models equal under
// this key produce bit-identical lattices and per-class measures.
// Class order is preserved: it enters the fill's accumulation order
// and therefore the rounding. Exported for internal/server's /v1/grid
// planner, which groups request points with the same rule.
func ClassKey(classes []core.Class) string {
	var b strings.Builder
	b.Grow(48 * len(classes))
	for i := range classes {
		c := &classes[i]
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(c.A))
		if c.IsPoisson() {
			// Beta is never read on the Poisson branch, so it is
			// canonicalized away entirely.
			b.WriteString(":p:")
			b.WriteString(hexFloat(c.Rho()))
		} else {
			b.WriteString(":b:")
			b.WriteString(hexFloat(c.Rho()))
			b.WriteByte(':')
			b.WriteString(hexFloat(c.BetaMu()))
		}
	}
	return b.String()
}

// pointKey is the full canonical key of one point: dimensions plus
// class key.
func pointKey(n1, n2 int, ck string) string {
	return strconv.Itoa(n1) + "x" + strconv.Itoa(n2) + ck
}

// uniquePoint is one distinct canonical model of a batch and the
// result slots it serves.
type uniquePoint struct {
	key    string
	n1, n2 int
	slots  []int
}

// fillGroup is one lattice fill: every unique point sharing a class
// key, served from a single fill at the componentwise maximum
// dimensions (sub-lattice reads are bit-identical to fresh fills of
// the smaller switches).
type fillGroup struct {
	classes []core.Class
	n1, n2  int
	members []int // indices into the batch's unique list
}

// Solve evaluates every point and returns one Result per point, in
// input order. Results for equal points share no mutable state — each
// is an independent clone carrying the point's own Switch. Every
// returned Result is bit-identical to fresh core.Solve of the same
// point (the package's property tests pin this for both the memoized
// and the NoMemo path).
func (e *Engine) Solve(points []core.Switch) ([]*core.Result, error) {
	if len(points) == 0 {
		return nil, nil
	}
	for i := range points {
		if err := points[i].Validate(); err != nil {
			return nil, fmt.Errorf("grid: point %d: %w", i, err)
		}
	}
	results := make([]*core.Result, len(points))
	if e.opt.NoMemo {
		if err := e.solveFresh(points, results); err != nil {
			return nil, err
		}
		return results, nil
	}

	// Plan: canonicalize, serve memo hits, deduplicate within the
	// batch, and group the remaining unique points by class key.
	uniqIdx := make(map[string]int)
	var uniq []*uniquePoint
	groupIdx := make(map[string]int)
	var groups []*fillGroup
	memoHits, batchHits, asymPoints := 0, 0, 0
	e.mu.Lock()
	for i := range points {
		sw := points[i]
		ck := ClassKey(sw.Classes)
		pk := pointKey(sw.N1, sw.N2, ck)
		if m, ok := e.memo[pk]; ok {
			results[i] = m.clone(sw)
			memoHits++
			continue
		}
		// Dispatch check: a point the policy answers asymptotically is
		// memoized and served right here, joining no fill group. O(R)
		// per point, so fine under the planning lock.
		if e.opt.Dispatch != nil {
			res, ok, err := core.TryAsymptotic(sw, *e.opt.Dispatch)
			if err != nil {
				e.mu.Unlock()
				return nil, fmt.Errorf("grid: point %d: %w", i, err)
			}
			if ok {
				m := newMemoResult(res)
				if len(e.memo) >= maxMemoEntries {
					clear(e.memo)
				}
				e.memo[pk] = m
				results[i] = m.clone(sw)
				asymPoints++
				continue
			}
		}
		if j, ok := uniqIdx[pk]; ok {
			uniq[j].slots = append(uniq[j].slots, i)
			batchHits++
			continue
		}
		uniqIdx[pk] = len(uniq)
		uniq = append(uniq, &uniquePoint{key: pk, n1: sw.N1, n2: sw.N2, slots: []int{i}})
		gi, ok := groupIdx[ck]
		if !ok {
			gi = len(groups)
			groupIdx[ck] = gi
			groups = append(groups, &fillGroup{classes: sw.Classes})
		}
		g := groups[gi]
		g.n1 = max(g.n1, sw.N1)
		g.n2 = max(g.n2, sw.N2)
		g.members = append(g.members, len(uniq)-1)
	}
	e.stats.Points += len(points)
	e.stats.Unique += len(uniq)
	e.stats.Fills += len(groups)
	e.stats.MemoHits += memoHits
	e.stats.BatchHits += batchHits
	e.stats.Asymptotic += asymPoints
	e.mu.Unlock()

	if len(groups) == 0 {
		e.stampTiers(results)
		return results, nil
	}

	// Execute: workers claim groups off the shared queue; the fill
	// budget is what the group-level parallelism leaves over, so a
	// lone large fill still gets the whole budget as wavefront
	// workers.
	budget := parallel.Workers(e.opt.Workers)
	workers := min(budget, len(groups))
	fill := core.Parallel(max(1, budget/workers), e.opt.Tile)
	err := parallel.ForEach(workers, groups, func(_ int, g *fillGroup) error {
		return e.solveGroup(g, uniq, points, results, fill)
	})
	if err != nil {
		return nil, err
	}
	e.stampTiers(results)
	return results, nil
}

// stampTiers records the answering tier on dispatch-routed batches:
// results the expansion did not serve were solved exactly. Each
// result is the caller's own clone, so the write is safe; with
// dispatch off, results stay byte-for-byte what the exact-only engine
// produced.
func (e *Engine) stampTiers(results []*core.Result) {
	if e.opt.Dispatch == nil {
		return
	}
	for _, r := range results {
		if r.Tier == "" {
			r.Tier = core.TierExact
		}
	}
}

// solveGroup runs one group's lattice fill and scatters its members'
// results. The fill carries a pprof label so `make profile` and the
// xbard debug mux attribute grid time per phase.
func (e *Engine) solveGroup(g *fillGroup, uniq []*uniquePoint, points []core.Switch, results []*core.Result, fill core.Options) error {
	solver := e.takeSolver()
	defer e.putSolver(solver)
	sw := core.Switch{N1: g.n1, N2: g.n2, Classes: g.classes}
	var err error
	pprof.Do(context.Background(), pprof.Labels("xbar_phase", "grid_fill"), func(context.Context) {
		err = solver.Reuse(sw, fill)
	})
	if err != nil {
		return fmt.Errorf("grid: fill %dx%d: %w", g.n1, g.n2, err)
	}
	for _, ui := range g.members {
		u := uniq[ui]
		m := newMemoResult(solver.ResultAt(u.n1, u.n2))
		e.mu.Lock()
		if len(e.memo) >= maxMemoEntries {
			clear(e.memo)
		}
		e.memo[u.key] = m
		e.mu.Unlock()
		for _, slot := range u.slots {
			results[slot] = m.clone(points[slot])
		}
	}
	return nil
}

// solveFresh is the NoMemo path: one full fill per point through the
// pooled solvers, no sharing of any kind.
func (e *Engine) solveFresh(points []core.Switch, results []*core.Result) error {
	budget := parallel.Workers(e.opt.Workers)
	workers := min(budget, len(points))
	fill := core.Parallel(max(1, budget/workers), e.opt.Tile)
	var asymPoints, fills int
	var statsMu sync.Mutex
	err := parallel.ForEach(workers, points, func(i int, sw core.Switch) error {
		if e.opt.Dispatch != nil {
			res, ok, err := core.TryAsymptotic(sw, *e.opt.Dispatch)
			if err != nil {
				return fmt.Errorf("grid: point %d: %w", i, err)
			}
			if ok {
				results[i] = res
				statsMu.Lock()
				asymPoints++
				statsMu.Unlock()
				return nil
			}
		}
		solver := e.takeSolver()
		defer e.putSolver(solver)
		var err error
		pprof.Do(context.Background(), pprof.Labels("xbar_phase", "grid_fill"), func(context.Context) {
			err = solver.Reuse(sw, fill)
		})
		if err != nil {
			return fmt.Errorf("grid: point %d: %w", i, err)
		}
		results[i] = solver.Result()
		statsMu.Lock()
		fills++
		statsMu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.stats.Points += len(points)
	e.stats.Unique += fills
	e.stats.Fills += fills
	e.stats.Asymptotic += asymPoints
	e.mu.Unlock()
	e.stampTiers(results)
	return nil
}
