// Package hotspot analyzes the crossbar under non-uniform (hot-spot)
// output access — the access pattern of the authors' companion paper
// "Modeling and Analysis of Hot Spots in an Asynchronous N x N
// Crossbar Switch" [28], rebuilt here as the natural stress test of
// the uniform-traffic assumption in the SIGCOMM '92 model.
//
// One output (the hot spot) attracts a fraction p of all requests;
// the remaining traffic spreads uniformly over the other N2-1 outputs;
// inputs are chosen uniformly. Non-uniform outputs break the paper's
// product form, but input symmetry still collapses the state to
// (h, c) — hot output busy or not, and the count of busy cold
// outputs — a two-dimensional chain this package solves exactly. A
// fabric-level simulator with arbitrary per-output weights
// cross-validates the reduction.
package hotspot

import (
	"fmt"
	"math"

	"xbar/internal/eventq"
	"xbar/internal/rng"
	"xbar/internal/statespace"
	"xbar/internal/stats"
)

// Model is a single-class (a = 1) crossbar with one hot output.
type Model struct {
	// N1, N2 are the switch dimensions.
	N1, N2 int
	// Lambda is the total Poisson request rate offered to the switch.
	Lambda float64
	// Mu is the per-connection service rate.
	Mu float64
	// HotFraction is the probability p that a request targets the hot
	// output (output 0). p = 1/N2 recovers uniform traffic.
	HotFraction float64
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.N1 < 1 || m.N2 < 2 {
		return fmt.Errorf("hotspot: %dx%d switch needs N1 >= 1, N2 >= 2", m.N1, m.N2)
	}
	if m.Lambda <= 0 || m.Mu <= 0 {
		return fmt.Errorf("hotspot: lambda %v, mu %v", m.Lambda, m.Mu)
	}
	if m.HotFraction < 0 || m.HotFraction > 1 {
		return fmt.Errorf("hotspot: hot fraction %v outside [0,1]", m.HotFraction)
	}
	return nil
}

// Result holds the exact measures.
type Result struct {
	// HotNonBlocking is the time-average probability that a request
	// directed at the hot output would be accepted (free input and
	// hot output free).
	HotNonBlocking float64
	// ColdNonBlocking is the same for a request directed at a uniform
	// cold output.
	ColdNonBlocking float64
	// NonBlocking is the overall acceptance probability
	// p*hot + (1-p)*cold; by PASTA it is also the accepted fraction.
	NonBlocking float64
	// HotUtilization is the fraction of time the hot output is busy.
	HotUtilization float64
	// MeanBusy is the mean number of connections in progress.
	MeanBusy float64
}

// state indexing: idx = h*(maxC+1) + c, h in {0,1},
// c in 0..maxC busy cold outputs, with h + c <= min(N1, N2).
func (m Model) maxC() int {
	mc := m.N2 - 1
	if m.N1 < mc {
		mc = m.N1
	}
	return mc
}

func (m Model) feasible(h, c int) bool {
	if h < 0 || h > 1 || c < 0 || c > m.maxC() {
		return false
	}
	limit := m.N1
	if m.N2 < limit {
		limit = m.N2
	}
	return h+c <= limit
}

// acceptHot returns the probability that a hot-directed arrival in
// state (h, c) is accepted: a free input exists at the chosen input
// (uniform over N1) and the hot output is free.
func (m Model) acceptHot(h, c int) float64 {
	if h == 1 {
		return 0
	}
	return float64(m.N1-h-c) / float64(m.N1)
}

// acceptCold returns the acceptance probability for a cold-directed
// arrival: free chosen input and free chosen cold output (uniform over
// the N2-1 cold outputs).
func (m Model) acceptCold(h, c int) float64 {
	return float64(m.N1-h-c) / float64(m.N1) *
		float64(m.N2-1-c) / float64(m.N2-1)
}

// Solve computes the exact steady state of the (h, c) chain.
func Solve(m Model) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	maxC := m.maxC()
	idx := func(h, c int) int { return h*(maxC+1) + c }
	n := 2 * (maxC + 1)

	// Build the generator over the compound state.
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	add := func(from, to int, rate float64) {
		if rate <= 0 {
			return
		}
		q[from][to] += rate
		q[from][from] -= rate
	}
	p := m.HotFraction
	for h := 0; h <= 1; h++ {
		for c := 0; c <= maxC; c++ {
			if !m.feasible(h, c) {
				continue
			}
			from := idx(h, c)
			if m.feasible(h+1, c) {
				add(from, idx(h+1, c), m.Lambda*p*m.acceptHot(h, c))
			}
			if m.feasible(h, c+1) {
				add(from, idx(h, c+1), m.Lambda*(1-p)*m.acceptCold(h, c))
			}
			if h == 1 {
				add(from, idx(0, c), m.Mu)
			}
			if c > 0 {
				add(from, idx(h, c-1), float64(c)*m.Mu)
			}
		}
	}

	// Solve pi Q = 0 with normalization, via the shared dense solver.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = q[j][i]
		}
	}
	// Infeasible states have empty rows/columns; pin them to zero to
	// keep the system nonsingular.
	for h := 0; h <= 1; h++ {
		for c := 0; c <= maxC; c++ {
			if !m.feasible(h, c) {
				i := idx(h, c)
				for j := 0; j < n; j++ {
					a[i][j] = 0
				}
				a[i][i] = 1
				b[i] = 0
			}
		}
	}
	// Replace one feasible balance equation (the empty state's, which
	// is redundant given the others) with the normalization. Summing
	// only over feasible states keeps the pinned zeros intact.
	norm := idx(0, 0)
	for j := 0; j < n; j++ {
		a[norm][j] = 0
	}
	for h := 0; h <= 1; h++ {
		for c := 0; c <= maxC; c++ {
			if m.feasible(h, c) {
				a[norm][idx(h, c)] = 1
			}
		}
	}
	b[norm] = 1
	pi, err := statespace.SolveLinear(a, b)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for h := 0; h <= 1; h++ {
		for c := 0; c <= maxC; c++ {
			if !m.feasible(h, c) {
				continue
			}
			w := pi[idx(h, c)]
			res.HotNonBlocking += w * m.acceptHot(h, c)
			res.ColdNonBlocking += w * m.acceptCold(h, c)
			res.HotUtilization += w * float64(h)
			res.MeanBusy += w * float64(h+c)
		}
	}
	res.NonBlocking = p*res.HotNonBlocking + (1-p)*res.ColdNonBlocking
	return res, nil
}

// SimConfig parameterizes the fabric simulation.
type SimConfig struct {
	Seed    uint64
	Warmup  float64
	Horizon float64
	Batches int
}

// SimResult reports the simulation estimates.
type SimResult struct {
	HotBlocking  stats.CI
	ColdBlocking stats.CI
	AllBlocking  stats.CI
	MeanBusy     stats.CI
	Events       int64
}

type departure struct{ in, out int }

// Simulate runs the full fabric with the hot-spot access pattern:
// output 0 with probability HotFraction, otherwise uniform over the
// cold outputs; inputs uniform; blocked-calls-cleared.
func Simulate(m Model, cfg SimConfig) (*SimResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("hotspot: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("hotspot: need >= 2 batches")
	}
	stream := rng.NewStream(cfg.Seed)
	busyIn := make([]bool, m.N1)
	busyOut := make([]bool, m.N2)
	busy := 0
	var deps eventq.Queue[departure]
	start, end := cfg.Warmup, cfg.Warmup+cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	type counts struct{ offered, blocked int64 }
	hot := make([]counts, batches)
	cold := make([]counts, batches)
	busyArea := make([]float64, batches)
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}
	now := 0.0
	var events int64
	advance := func(t float64) {
		t1 := math.Min(t, end)
		if t1 > now && now < end {
			for cur := math.Max(now, start); cur < t1; {
				b := int((cur - start) / batchLen)
				if b < 0 || b >= batches {
					break
				}
				bEnd := start + batchLen*float64(b+1)
				seg := math.Min(t1, bEnd)
				busyArea[b] += float64(busy) * (seg - cur)
				cur = seg
			}
		}
		now = t
	}
	nextArr := stream.Exp(m.Lambda)
	for {
		t := nextArr
		isDep := false
		if at, ok := deps.PeekTime(); ok && at < t {
			t, isDep = at, true
		}
		if t >= end {
			advance(end)
			break
		}
		advance(t)
		events++
		if isDep {
			_, d := deps.Pop()
			busyIn[d.in] = false
			busyOut[d.out] = false
			busy--
			continue
		}
		nextArr = now + stream.Exp(m.Lambda)
		isHot := stream.Float64() < m.HotFraction
		out := 0
		if !isHot {
			out = 1 + stream.Intn(m.N2-1)
		}
		in := stream.Intn(m.N1)
		b := batchOf(now)
		accepted := !busyIn[in] && !busyOut[out]
		if b >= 0 {
			if isHot {
				hot[b].offered++
				if !accepted {
					hot[b].blocked++
				}
			} else {
				cold[b].offered++
				if !accepted {
					cold[b].blocked++
				}
			}
		}
		if !accepted {
			continue
		}
		busyIn[in] = true
		busyOut[out] = true
		busy++
		deps.Push(now+stream.Exp(m.Mu), departure{in: in, out: out})
	}

	ratioCI := func(cs []counts) stats.CI {
		var ratios []float64
		for _, c := range cs {
			if c.offered > 0 {
				ratios = append(ratios, float64(c.blocked)/float64(c.offered))
			}
		}
		if len(ratios) < 2 {
			return stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
		}
		return stats.BatchMeans(ratios, 0.95)
	}
	all := make([]counts, batches)
	for b := range all {
		all[b].offered = hot[b].offered + cold[b].offered
		all[b].blocked = hot[b].blocked + cold[b].blocked
	}
	busyB := make([]float64, batches)
	for b := range busyB {
		busyB[b] = busyArea[b] / batchLen
	}
	return &SimResult{
		HotBlocking:  ratioCI(hot),
		ColdBlocking: ratioCI(cold),
		AllBlocking:  ratioCI(all),
		MeanBusy:     stats.BatchMeans(busyB, 0.95),
		Events:       events,
	}, nil
}
