package hotspot

import (
	"math"
	"testing"

	"xbar/internal/core"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*s || d <= tol*1e-3
}

// TestUniformReducesToProductForm: with p = 1/N2 the hot output is
// just another output and the exact (h, c) chain must reproduce the
// paper's product-form measures.
func TestUniformReducesToProductForm(t *testing.T) {
	const n1, n2 = 4, 5
	const lambda, mu = 3.0, 1.0
	m := Model{N1: n1, N2: n2, Lambda: lambda, Mu: mu, HotFraction: 1.0 / n2}
	got, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	sw := core.Switch{N1: n1, N2: n2, Classes: []core.Class{{
		A: 1, Alpha: lambda / (n1 * n2), Mu: mu,
	}}}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.NonBlocking, want.NonBlocking[0], 1e-9) {
		t.Errorf("uniform NonBlocking %v, product form %v", got.NonBlocking, want.NonBlocking[0])
	}
	if !almostEqual(got.HotNonBlocking, got.ColdNonBlocking, 1e-9) {
		t.Errorf("uniform case: hot %v != cold %v", got.HotNonBlocking, got.ColdNonBlocking)
	}
	if !almostEqual(got.MeanBusy, want.Concurrency[0], 1e-9) {
		t.Errorf("uniform MeanBusy %v, product form %v", got.MeanBusy, want.Concurrency[0])
	}
}

// TestHotSpotDegradesHotTraffic: concentrating traffic on one output
// hurts requests for that output far more than the cold ones, and the
// effect grows with the hot fraction.
func TestHotSpotDegradesHotTraffic(t *testing.T) {
	prevHotBlocking := -1.0
	for _, p := range []float64{0.2, 0.4, 0.6} {
		m := Model{N1: 8, N2: 8, Lambda: 4, Mu: 1, HotFraction: p}
		res, err := Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		hotB := 1 - res.HotNonBlocking
		coldB := 1 - res.ColdNonBlocking
		if hotB <= coldB {
			t.Errorf("p=%v: hot blocking %v should exceed cold %v", p, hotB, coldB)
		}
		if hotB <= prevHotBlocking {
			t.Errorf("p=%v: hot blocking %v not increasing", p, hotB)
		}
		prevHotBlocking = hotB
		// The hot output saturates: its utilization approaches 1 long
		// before the cold outputs are stressed.
		if p >= 0.4 && res.HotUtilization < 0.5 {
			t.Errorf("p=%v: hot utilization %v suspiciously low", p, res.HotUtilization)
		}
	}
}

// TestFlowConservation: accepted rate equals completion rate.
func TestFlowConservation(t *testing.T) {
	m := Model{N1: 6, N2: 7, Lambda: 5, Mu: 1.4, HotFraction: 0.3}
	res, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	acceptRate := m.Lambda * res.NonBlocking
	completeRate := m.Mu * res.MeanBusy
	if !almostEqual(acceptRate, completeRate, 1e-9) {
		t.Errorf("accepted %v != completed %v", acceptRate, completeRate)
	}
}

// TestSimulationMatchesExact: the fabric simulator confirms the (h, c)
// state reduction.
func TestSimulationMatchesExact(t *testing.T) {
	m := Model{N1: 5, N2: 6, Lambda: 4, Mu: 1, HotFraction: 0.5}
	want, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, SimConfig{Seed: 3, Warmup: 2000, Horizon: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.HotBlocking.Mean-(1-want.HotNonBlocking)) > 2*res.HotBlocking.HalfWidth {
		t.Errorf("hot blocking sim %v vs exact %v", res.HotBlocking, 1-want.HotNonBlocking)
	}
	if math.Abs(res.ColdBlocking.Mean-(1-want.ColdNonBlocking)) > 2*res.ColdBlocking.HalfWidth {
		t.Errorf("cold blocking sim %v vs exact %v", res.ColdBlocking, 1-want.ColdNonBlocking)
	}
	if math.Abs(res.MeanBusy.Mean-want.MeanBusy) > 2*res.MeanBusy.HalfWidth {
		t.Errorf("mean busy sim %v vs exact %v", res.MeanBusy, want.MeanBusy)
	}
	if res.Events == 0 {
		t.Error("no events")
	}
}

// TestExtremeHotFractions: p = 0 leaves the hot output idle; p = 1
// reduces the switch to a single shared output (blocking at least
// 1 - 1/(1+rho) shape).
func TestExtremeHotFractions(t *testing.T) {
	m := Model{N1: 4, N2: 4, Lambda: 2, Mu: 1, HotFraction: 0}
	res, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.HotUtilization != 0 {
		t.Errorf("p=0: hot utilization %v, want 0", res.HotUtilization)
	}
	m.HotFraction = 1
	res, err = Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	// All traffic aims at one output: at most one connection at a
	// time, heavy blocking.
	if res.MeanBusy > 1 {
		t.Errorf("p=1: mean busy %v, cannot exceed 1", res.MeanBusy)
	}
	if 1-res.HotNonBlocking < 0.5 {
		t.Errorf("p=1 at rho=2: hot blocking %v suspiciously low", 1-res.HotNonBlocking)
	}
}

func TestValidation(t *testing.T) {
	bad := []Model{
		{N1: 0, N2: 4, Lambda: 1, Mu: 1, HotFraction: 0.5},
		{N1: 4, N2: 1, Lambda: 1, Mu: 1, HotFraction: 0.5},
		{N1: 4, N2: 4, Lambda: 0, Mu: 1, HotFraction: 0.5},
		{N1: 4, N2: 4, Lambda: 1, Mu: 0, HotFraction: 0.5},
		{N1: 4, N2: 4, Lambda: 1, Mu: 1, HotFraction: 1.5},
	}
	for i, m := range bad {
		if _, err := Solve(m); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	good := Model{N1: 4, N2: 4, Lambda: 1, Mu: 1, HotFraction: 0.5}
	if _, err := Simulate(good, SimConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Simulate(good, SimConfig{Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch accepted")
	}
}

// TestTallSwitch: N1 > N2 exercises the occupancy cap on the input
// side.
func TestTallSwitch(t *testing.T) {
	m := Model{N1: 2, N2: 6, Lambda: 3, Mu: 1, HotFraction: 0.4}
	res, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBusy > 2 {
		t.Errorf("mean busy %v exceeds the 2 available inputs", res.MeanBusy)
	}
	sim, err := Simulate(m, SimConfig{Seed: 6, Warmup: 1000, Horizon: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.MeanBusy.Mean-res.MeanBusy) > 2*sim.MeanBusy.HalfWidth {
		t.Errorf("tall switch: sim busy %v vs exact %v", sim.MeanBusy, res.MeanBusy)
	}
}
