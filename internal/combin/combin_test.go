package combin

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale
}

func TestFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestFactorialLarge(t *testing.T) {
	// 25! = 15511210043330985984000000
	if got, want := Factorial(25), 1.5511210043330986e25; !almostEqual(got, want, 1e-12) {
		t.Errorf("Factorial(25) = %v, want %v", got, want)
	}
	// 170! is the largest finite factorial in float64; 171! overflows.
	if got := Factorial(170); math.IsInf(got, 1) {
		t.Error("Factorial(170) overflowed, want finite")
	}
	if got := Factorial(171); !math.IsInf(got, 1) {
		t.Errorf("Factorial(171) = %v, want +Inf", got)
	}
}

func TestFactorialNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Factorial(-1) did not panic")
		}
	}()
	Factorial(-1)
}

func TestLogFactorialMatchesFactorial(t *testing.T) {
	for n := 0; n <= 170; n += 7 {
		got := LogFactorial(n)
		want := math.Log(Factorial(n))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLogFactorialLargeArgument(t *testing.T) {
	// ln(1000!) = 5912.128178... (Stirling-checked reference value).
	if got, want := LogFactorial(1000), 5912.128178488163; !almostEqual(got, want, 1e-10) {
		t.Errorf("LogFactorial(1000) = %v, want %v", got, want)
	}
}

func TestPerm(t *testing.T) {
	cases := []struct {
		n, a int
		want float64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 1, 5},
		{5, 2, 20},
		{5, 5, 120},
		{5, 6, 0},
		{128, 2, 128 * 127},
	}
	for _, c := range cases {
		if got := Perm(c.n, c.a); got != c.want {
			t.Errorf("Perm(%d, %d) = %v, want %v", c.n, c.a, got, c.want)
		}
	}
}

func TestPermMatchesFactorialRatio(t *testing.T) {
	for n := 0; n <= 20; n++ {
		for a := 0; a <= n; a++ {
			got := Perm(n, a)
			want := Factorial(n) / Factorial(n-a)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("Perm(%d, %d) = %v, want n!/(n-a)! = %v", n, a, got, want)
			}
		}
	}
}

func TestLogPermMatchesPerm(t *testing.T) {
	for n := 1; n <= 200; n += 13 {
		for a := 0; a <= 4 && a <= n; a++ {
			got := LogPerm(n, a)
			want := math.Log(Perm(n, a))
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("LogPerm(%d, %d) = %v, want %v", n, a, got, want)
			}
		}
	}
}

func TestLogPermPanicsWhenZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LogPerm(2, 3) did not panic")
		}
	}()
	LogPerm(2, 3)
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, a int
		want float64
	}{
		{0, 0, 1},
		{4, 2, 6},
		{8, 2, 28},
		{16, 2, 120},
		{32, 2, 496},
		{64, 2, 2016},
		{128, 1, 128},
		{10, 11, 0},
		{52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binom(c.n, c.a); got != c.want {
			t.Errorf("Binom(%d, %d) = %v, want %v", c.n, c.a, got, c.want)
		}
	}
}

func TestBinomSymmetry(t *testing.T) {
	f := func(n, a uint8) bool {
		nn := int(n % 60)
		aa := int(a % 60)
		if aa > nn {
			return true
		}
		return Binom(nn, aa) == Binom(nn, nn-aa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomPascalRule(t *testing.T) {
	f := func(n, a uint8) bool {
		nn := 1 + int(n%50)
		aa := 1 + int(a%50)
		if aa > nn {
			return true
		}
		return almostEqual(Binom(nn, aa), Binom(nn-1, aa-1)+Binom(nn-1, aa), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomInt(t *testing.T) {
	if got, want := BinomInt(60, 30), int64(118264581564861424); got != want {
		t.Errorf("BinomInt(60, 30) = %d, want %d", got, want)
	}
	if got := BinomInt(5, 9); got != 0 {
		t.Errorf("BinomInt(5, 9) = %d, want 0", got)
	}
}

func TestBinomIntMatchesBinom(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for a := 0; a <= n; a++ {
			if got, want := float64(BinomInt(n, a)), Binom(n, a); !almostEqual(got, want, 1e-12) {
				t.Errorf("BinomInt(%d, %d) = %v, want %v", n, a, got, want)
			}
		}
	}
}

func TestGeneralizedBinomIntegerCase(t *testing.T) {
	// For integer x, C(x+k-1, k) is the ordinary binomial coefficient.
	for x := 1; x <= 10; x++ {
		for k := 0; k <= 10; k++ {
			got := GeneralizedBinom(float64(x), k)
			want := Binom(x+k-1, k)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("GeneralizedBinom(%d, %d) = %v, want %v", x, k, got, want)
			}
		}
	}
}

func TestGeneralizedBinomZeroK(t *testing.T) {
	if got := GeneralizedBinom(3.7, 0); got != 1 {
		t.Errorf("GeneralizedBinom(3.7, 0) = %v, want 1", got)
	}
}

func TestGeneralizedBinomRecurrence(t *testing.T) {
	// C(x+k-1, k) = C(x+k-2, k-1) * (x+k-1)/k
	f := func(xRaw uint16, k uint8) bool {
		x := float64(xRaw%1000)/100 + 0.01
		kk := 1 + int(k%20)
		got := GeneralizedBinom(x, kk)
		want := GeneralizedBinom(x, kk-1) * (x + float64(kk-1)) / float64(kk)
		return almostEqual(got, want, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
