// Package combin provides the small combinatorial kernel used throughout
// the crossbar model: factorials, falling factorials (permutations
// P(n,a) = n!/(n-a)!), and binomial coefficients, in plain float64 and in
// log space for the large arguments that appear when N reaches a few
// hundred.
package combin

import (
	"fmt"
	"math"
)

// maxExactFactorial is the largest n for which n! is exactly
// representable in a float64 without rounding (20! < 2^63 < 21!; beyond
// 22! float64 rounds). We keep an exact int64 table up to 20.
const maxExactFactorial = 20

var intFactorials = [maxExactFactorial + 1]int64{
	1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800,
	39916800, 479001600, 6227020800, 87178291200, 1307674368000,
	20922789888000, 355687428096000, 6402373705728000,
	121645100408832000, 2432902008176640000,
}

// Factorial returns n! as a float64. It is exact for n <= 20 and uses
// repeated multiplication above that (overflowing to +Inf past n = 170).
// It panics if n is negative: a negative factorial always indicates a
// bug in lattice index arithmetic, not a recoverable condition.
func Factorial(n int) float64 {
	if n < 0 {
		//lint:allow libpanic documented domain precondition, stdlib math convention; model parameters are validated before reaching the combinatorial kernel
		panic(fmt.Sprintf("combin: Factorial(%d): negative argument", n))
	}
	if n <= maxExactFactorial {
		return float64(intFactorials[n])
	}
	f := float64(intFactorials[maxExactFactorial])
	for i := maxExactFactorial + 1; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// LogFactorial returns ln(n!). Exact-table based for small n, and
// computed by accumulation above; accurate enough (error < 1e-12
// relative) for every n used by the model (n <= a few thousand).
func LogFactorial(n int) float64 {
	if n < 0 {
		//lint:allow libpanic documented domain precondition, stdlib math convention; model parameters are validated before reaching the combinatorial kernel
		panic(fmt.Sprintf("combin: LogFactorial(%d): negative argument", n))
	}
	if n <= maxExactFactorial {
		return math.Log(float64(intFactorials[n]))
	}
	lf := math.Log(float64(intFactorials[maxExactFactorial]))
	for i := maxExactFactorial + 1; i <= n; i++ {
		lf += math.Log(float64(i))
	}
	return lf
}

// Perm returns the falling factorial P(n, a) = n! / (n-a)! =
// n (n-1) ... (n-a+1), the number of ordered selections of a items from
// n. It returns 0 when a > n, matching the convention that no route
// exists through a switch with fewer than a idle ports. It panics on
// negative arguments.
func Perm(n, a int) float64 {
	if n < 0 || a < 0 {
		//lint:allow libpanic documented domain precondition, stdlib math convention; model parameters are validated before reaching the combinatorial kernel
		panic(fmt.Sprintf("combin: Perm(%d, %d): negative argument", n, a))
	}
	if a > n {
		return 0
	}
	p := 1.0
	for i := 0; i < a; i++ {
		p *= float64(n - i)
	}
	return p
}

// LogPerm returns ln P(n, a). It panics when P(n, a) = 0 (a > n) or on
// negative arguments, since a log of zero is never meaningful in the
// recursions that call it.
func LogPerm(n, a int) float64 {
	if n < 0 || a < 0 || a > n {
		//lint:allow libpanic documented domain precondition, stdlib math convention; model parameters are validated before reaching the combinatorial kernel
		panic(fmt.Sprintf("combin: LogPerm(%d, %d): undefined", n, a))
	}
	lp := 0.0
	for i := 0; i < a; i++ {
		lp += math.Log(float64(n - i))
	}
	return lp
}

// Binom returns the binomial coefficient C(n, a) as a float64, 0 when
// a > n. It panics on negative arguments.
func Binom(n, a int) float64 {
	if n < 0 || a < 0 {
		//lint:allow libpanic documented domain precondition, stdlib math convention; model parameters are validated before reaching the combinatorial kernel
		panic(fmt.Sprintf("combin: Binom(%d, %d): negative argument", n, a))
	}
	if a > n {
		return 0
	}
	if a > n-a {
		a = n - a
	}
	// Multiply in an order that keeps intermediate values integral:
	// C(n, i) is integral at every step.
	c := 1.0
	for i := 1; i <= a; i++ {
		c = c * float64(n-a+i) / float64(i)
	}
	return c
}

// BinomInt returns C(n, a) as an int64 and panics if the value
// overflows int64. It is used where an exact small count is required
// (state-space enumeration bounds).
func BinomInt(n, a int) int64 {
	if n < 0 || a < 0 {
		//lint:allow libpanic documented domain precondition, stdlib math convention; model parameters are validated before reaching the combinatorial kernel
		panic(fmt.Sprintf("combin: BinomInt(%d, %d): negative argument", n, a))
	}
	if a > n {
		return 0
	}
	if a > n-a {
		a = n - a
	}
	var c int64 = 1
	for i := 1; i <= a; i++ {
		// c * (n-a+i) may overflow; divide first where possible.
		g := gcd64(c, int64(i))
		c /= g
		m := int64(i) / g
		num := int64(n - a + i)
		g2 := gcd64(num, m)
		num /= g2
		m /= g2
		if m != 1 {
			//lint:allow libpanic arithmetic invariant of the Pascal-triangle recurrence
			panic("combin: BinomInt: internal division error")
		}
		if c > math.MaxInt64/num {
			//lint:allow libpanic int64 overflow is a documented capacity limit, like math.MaxInt64
			panic(fmt.Sprintf("combin: BinomInt(%d, %d): overflow", n, a))
		}
		c *= num
	}
	return c
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GeneralizedBinom returns the generalized binomial coefficient
// C(x + k - 1, k) = x (x+1) ... (x+k-1) / k! for real x >= 0, which is
// the Pascal-class term binom(alpha/beta - 1 + k, k) in the product-form
// distribution (paper Section 2). It panics on negative k.
func GeneralizedBinom(x float64, k int) float64 {
	if k < 0 {
		//lint:allow libpanic documented domain precondition, stdlib math convention; model parameters are validated before reaching the combinatorial kernel
		panic(fmt.Sprintf("combin: GeneralizedBinom(%v, %d): negative k", x, k))
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c *= (x + float64(i)) / float64(i+1)
	}
	return c
}
