package revenue

import (
	"math"
	"testing"

	"xbar/internal/core"
)

// asymTestSwitch is a two-class mix (Poisson + bursty) at a size where
// the exact lattice is still cheap, so every asymptotic measure can be
// checked against its exact counterpart.
func asymTestSwitch(n int) core.Switch {
	return core.NewSwitch(n, n,
		core.AggregateClass{Name: "thin", A: 1, AlphaTilde: 0.56, Mu: 1},
		core.AggregateClass{Name: "wide", A: 2, AlphaTilde: 0.28, BetaTilde: 0.14, Mu: 0.5},
	)
}

func relErr(got, want float64) float64 {
	if want == 0 { //lint:allow floatcmp guard before dividing
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestAsymAnalysisTracksExact compares every AsymAnalysis measure with
// the lattice-backed Analysis at n = 192. The shadow costs and
// gradients are differences of close asymptotic values, so they get a
// looser budget than W itself; the point of the test is that the O(R)
// tier reproduces the economics (signs, profitability, magnitudes),
// not bit-level agreement.
func TestAsymAnalysisTracksExact(t *testing.T) {
	sw := asymTestSwitch(192)
	weights := []float64{1, 2.5}
	exact, err := New(sw, weights)
	if err != nil {
		t.Fatal(err)
	}
	asym, err := NewAsymptotic(sw, weights)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(asym.W(), exact.W()); e > 5e-3 {
		t.Errorf("W: asym %v exact %v (rel err %.2e)", asym.W(), exact.W(), e)
	}
	for r := range sw.Classes {
		if b := asym.Bound(r); !(b > 0) {
			t.Errorf("class %d: bound %v not positive", r, b)
		}
		shadow, err := asym.ShadowCost(r)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(shadow, exact.ShadowCost(r)); e > 0.05 {
			t.Errorf("class %d shadow: asym %v exact %v (rel err %.2e)", r, shadow, exact.ShadowCost(r), e)
		}
		prof, err := asym.Profitable(r)
		if err != nil {
			t.Fatal(err)
		}
		if prof != exact.Profitable(r) {
			t.Errorf("class %d: profitability %v, exact says %v", r, prof, exact.Profitable(r))
		}
		// dW/drho = lead * NB_r * (w_r - shadow): the last factor is a
		// difference of close values, where the tier's error bounds are
		// indicative rather than certified (see the AsymAnalysis doc).
		// The direction of the economic signal must survive, and so
		// must the magnitude to within the difference amplification.
		grad, err := asym.GradientRhoClosed(r)
		if err != nil {
			t.Fatal(err)
		}
		ge := exact.GradientRhoClosed(r)
		if math.Signbit(grad) != math.Signbit(ge) {
			t.Errorf("class %d dW/drho: asym %v exact %v disagree in sign", r, grad, ge)
		}
		if e := relErr(grad, ge); e > 3 {
			t.Errorf("class %d dW/drho: asym %v exact %v (rel err %.2e)", r, grad, ge, e)
		}
	}
	// The bursty class's beta/mu gradient, by the same central
	// difference on both tiers.
	gb, err := asym.GradientBetaMu(1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(gb, exact.GradientBetaMu(1, 1e-4)); e > 0.05 {
		t.Errorf("dW/d(beta/mu): asym %v exact %v (rel err %.2e)", gb, exact.GradientBetaMu(1, 1e-4), e)
	}
}

// TestAsymAnalysisLarge exercises the tier at a size no lattice could
// back, pinning basic sanity: finite measures, cached reduced solves,
// and a wide class whose bandwidth exceeding min(N) zeroes the
// gradient.
func TestAsymAnalysisLarge(t *testing.T) {
	sw := asymTestSwitch(4096)
	an, err := NewAsymptotic(sw, []float64{1, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if w := an.W(); !(w > 0) || math.IsInf(w, 0) {
		t.Fatalf("W = %v", w)
	}
	for r := range sw.Classes {
		shadow, err := an.ShadowCost(r)
		if err != nil {
			t.Fatal(err)
		}
		if !(shadow >= 0) || math.IsInf(shadow, 0) {
			t.Errorf("class %d shadow %v", r, shadow)
		}
	}
	// Both classes' reduced solves hit distinct bandwidths 1 and 2;
	// a second query must come from the cache (same value).
	s0, _ := an.ShadowCost(0)
	s0again, _ := an.ShadowCost(0)
	if math.Float64bits(s0) != math.Float64bits(s0again) {
		t.Errorf("cached shadow cost changed: %v vs %v", s0, s0again)
	}
}
