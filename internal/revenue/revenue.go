// Package revenue implements the revenue-oriented performance analysis
// of Section 4 of the paper. An accepted class-r connection earns
// revenue w_r, so the average return
//
//	W(N) = sum_r w_r E_r(N)
//
// is the weighted throughput (with w_r = gamma_r mu_r it is the
// throughput weighted by gamma). Load-change sensitivity is captured by
// the gradients dW/d rho_r (Poisson classes) and dW/d(beta_r/mu_r)
// (bursty classes); the closed form
//
//	dW/d rho_r = P(N1,a_r) P(N2,a_r) B_r(N) ( w_r - DeltaW_r(N) ),
//	DeltaW_r(N) = W(N) - W(N - a_r I),
//
// holds when every class is Poisson and yields the paper's economic
// reading: an accepted request earns w_r but displaces DeltaW_r of
// other traffic — a shadow cost. (The paper writes N1 N2 for the
// leading factor, the a_r = 1 case of the permutation product.) For
// mixed traffic no closed form exists and the paper falls back to a
// numerical difference, as does this package.
package revenue

import (
	"fmt"

	"xbar/internal/combin"
	"xbar/internal/core"
)

// Analysis evaluates revenue measures for one switch and weight vector.
// All in-lattice reads (W, shadow costs, the closed-form gradient) run
// on a core.SweepSolver: one lattice fill, memoized sub-size results.
// Only the numerical-difference gradients re-solve, and those go
// through one reusable scratch solver instead of allocating per step.
type Analysis struct {
	sw      core.Switch
	weights []float64
	sweep   *core.SweepSolver
	// scratch and scratchClasses serve perturbedW, lazily allocated on
	// the first gradient call and recycled afterwards.
	scratch        *core.Solver
	scratchClasses []core.Class
	opts           []core.Options
}

// New builds an Analysis. weights must contain one revenue rate per
// traffic class. An optional core.Options configures every lattice
// fill the analysis runs — the sweep solve and the perturbed gradient
// re-solves alike (e.g. core.Parallel for the wavefront schedule).
func New(sw core.Switch, weights []float64, opts ...core.Options) (*Analysis, error) {
	sweep, err := core.NewSweepSolver(sw, opts...)
	if err != nil {
		return nil, err
	}
	return NewWithSweep(sweep, weights, opts...)
}

// NewWithSweep builds an Analysis on an already filled sweep solver,
// sharing its retained lattice instead of filling a new one — the path
// the admission-control server (internal/server) takes so revenue
// reads ride its solver cache. weights must contain one revenue rate
// per class of the sweep's switch. opts configures only the perturbed
// re-solves of the numerical gradients; the sweep's own fill schedule
// was fixed when the sweep solver was built.
func NewWithSweep(sweep *core.SweepSolver, weights []float64, opts ...core.Options) (*Analysis, error) {
	sw := sweep.Switch()
	if len(weights) != len(sw.Classes) {
		return nil, fmt.Errorf("revenue: %d weights for %d classes", len(weights), len(sw.Classes))
	}
	return &Analysis{sw: sw, weights: weights, sweep: sweep, opts: opts}, nil
}

// Switch returns the analyzed switch.
func (a *Analysis) Switch() core.Switch { return a.sw }

// W returns the average revenue W(N) at the full switch size.
func (a *Analysis) W() float64 { return a.WAt(a.sw.N1, a.sw.N2) }

// WAt returns W for the sub-switch (n1, n2); by convention W = 0 once
// either dimension reaches zero (E_r(0) = 0 in the paper).
func (a *Analysis) WAt(n1, n2 int) float64 {
	return a.sweep.WAt(a.weights, n1, n2)
}

// Result exposes the underlying performance measures.
func (a *Analysis) Result() *core.Result { return a.sweep.Result() }

// ShadowCost returns DeltaW_r(N) = W(N) - W(N - a_r I): the revenue
// displaced from other traffic by dedicating a_r inputs and outputs to
// one class-r connection. A pure lattice read — no re-solve.
func (a *Analysis) ShadowCost(r int) float64 {
	return a.sweep.ShadowCost(a.weights, r)
}

// Profitable reports whether admitting more class-r load raises total
// revenue: w_r > DeltaW_r(N). This is the paper's economic
// interpretation of the gradient's sign.
func (a *Analysis) Profitable(r int) bool {
	return a.weights[r] > a.ShadowCost(r)
}

// GradientRhoClosed returns the closed-form dW/d rho_r. Exact when all
// classes are Poisson; for mixed traffic it is the Poisson-structure
// approximation the paper tabulates alongside the numerical bursty
// gradient.
func (a *Analysis) GradientRhoClosed(r int) float64 {
	ar := a.sw.Classes[r].A
	if ar > a.sw.MinN() {
		return 0
	}
	br := a.sweep.Result().NonBlocking[r]
	lead := combin.Perm(a.sw.N1, ar) * combin.Perm(a.sw.N2, ar)
	return lead * br * (a.weights[r] - a.ShadowCost(r))
}

// GradientRho returns dW/d rho_r by symmetric central difference with
// relative step h (the per-route load rho_r = alpha_r/mu_r is
// perturbed by +-h*max(rho_r, floor)). It re-solves the model twice.
func (a *Analysis) GradientRho(r int, h float64) float64 {
	c := a.sw.Classes[r]
	step := h * maxf(c.Rho(), 1e-9)
	return (a.perturbedW(r, step*c.Mu, 0) - a.perturbedW(r, -step*c.Mu, 0)) / (2 * step)
}

// GradientBetaMu returns dW/d(beta_r/mu_r) by symmetric central
// difference, the numerical approach the paper uses for bursty classes
// (Section 4 approximates it via a forward difference; the central
// form halves the truncation error at the same cost).
func (a *Analysis) GradientBetaMu(r int, h float64) float64 {
	c := a.sw.Classes[r]
	step := h * maxf(absf(c.BetaMu()), maxf(c.Rho(), 1e-9))
	return (a.perturbedW(r, 0, step*c.Mu) - a.perturbedW(r, 0, -step*c.Mu)) / (2 * step)
}

// GradientBetaMuForward returns the one-sided forward difference the
// paper describes, for faithfulness comparisons.
func (a *Analysis) GradientBetaMuForward(r int, h float64) float64 {
	c := a.sw.Classes[r]
	step := h * maxf(absf(c.BetaMu()), maxf(c.Rho(), 1e-9))
	return (a.perturbedW(r, 0, step*c.Mu) - a.W()) / step
}

// perturbedW re-solves with class r's alpha and beta shifted, through
// the recycled scratch solver (Reuse keeps the Q/V lattices allocated
// across the 2-4 solves a gradient takes).
func (a *Analysis) perturbedW(r int, dAlpha, dBeta float64) float64 {
	if a.scratchClasses == nil {
		a.scratchClasses = make([]core.Class, len(a.sw.Classes))
	}
	copy(a.scratchClasses, a.sw.Classes)
	a.scratchClasses[r].Alpha += dAlpha
	a.scratchClasses[r].Beta += dBeta
	sw := core.Switch{N1: a.sw.N1, N2: a.sw.N2, Classes: a.scratchClasses}
	if a.scratch == nil {
		a.scratch = &core.Solver{}
	}
	if err := a.scratch.Reuse(sw, a.opts...); err != nil {
		// A perturbation that leaves the valid parameter region (e.g.
		// a Bernoulli population constraint) indicates the step was
		// too large for this model; surface it loudly.
		//lint:allow libpanic a perturbation step outside the valid parameter region is a caller bug (step too large), not a recoverable state
		panic(fmt.Sprintf("revenue: perturbed solve failed: %v", err))
	}
	return a.scratch.Result().Revenue(a.weights)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absf(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
