package revenue

import (
	"math"
	"testing"

	"xbar/internal/core"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*s || diff <= tol*1e-3
}

func TestWeightsLengthChecked(t *testing.T) {
	sw := core.Switch{N1: 2, N2: 2, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	if _, err := New(sw, []float64{1, 2}); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestWEqualsWeightedThroughput(t *testing.T) {
	// With w_r = mu_r, W is exactly the total throughput
	// sum_r mu_r E_r (paper: w_r = gamma_r mu_r with gamma = 1).
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{A: 1, Alpha: 0.2, Mu: 1.5},
		{A: 2, Alpha: 0.05, Beta: 0.01, Mu: 0.7},
	}}
	a, err := New(sw, []float64{1.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.5*res.Concurrency[0] + 0.7*res.Concurrency[1]
	if got := a.W(); !almostEqual(got, want, 1e-12) {
		t.Errorf("W = %v, want %v", got, want)
	}
}

// TestClosedFormGradientAllPoisson verifies the Section 4 closed form
// against a numerical central difference when every class is Poisson —
// the case the paper derives it for.
func TestClosedFormGradientAllPoisson(t *testing.T) {
	sw := core.Switch{N1: 6, N2: 5, Classes: []core.Class{
		{A: 1, Alpha: 0.15, Mu: 1},
		{A: 2, Alpha: 0.02, Mu: 0.9},
	}}
	a, err := New(sw, []float64{1.0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		closed := a.GradientRhoClosed(r)
		numeric := a.GradientRho(r, 1e-6)
		if !almostEqual(closed, numeric, 1e-4) {
			t.Errorf("class %d: closed %v numeric %v", r, closed, numeric)
		}
	}
}

// TestPaperTable2Gradients reproduces the N=1 and N=2 entries of the
// dW/d rho_1 column: 0.99 and 3.97 (printed to 2 decimals).
func TestPaperTable2Gradients(t *testing.T) {
	build := func(n int) core.Switch {
		return core.NewSwitch(n, n,
			core.AggregateClass{Name: "poisson", A: 1, AlphaTilde: 0.0012, Mu: 1},
			core.AggregateClass{Name: "bursty", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
		)
	}
	weights := []float64{1.0, 0.0001}

	a1, err := New(build(1), weights)
	if err != nil {
		t.Fatal(err)
	}
	// The paper prints 0.99 and 3.97; our closed form gives 0.9964 and
	// 3.981 (within 1%). The residual is consistent with the paper
	// computing this column by a coarse forward difference on its own
	// quirky Table 2 model (see EXPERIMENTS.md).
	if got := a1.GradientRhoClosed(0); math.Abs(got-0.99) > 0.01*0.99 {
		t.Errorf("N=1: dW/drho1 = %v, paper prints 0.99", got)
	}
	a2, err := New(build(2), weights)
	if err != nil {
		t.Fatal(err)
	}
	if got := a2.GradientRhoClosed(0); math.Abs(got-3.97) > 0.01*3.97 {
		t.Errorf("N=2: dW/drho1 = %v, paper prints 3.97", got)
	}
	// The numerical gradient agrees with the closed form to the
	// accuracy the mixed-traffic approximation allows here.
	if closed, numeric := a2.GradientRhoClosed(0), a2.GradientRho(0, 1e-6); !almostEqual(closed, numeric, 1e-3) {
		t.Errorf("N=2: closed %v vs numeric %v", closed, numeric)
	}
}

// TestBurstyGradientNegativeAtScale reproduces the Table 2 sign
// pattern: dW/d(beta_2/mu_2) is (weakly) positive at tiny N and turns
// negative as the switch grows — increased peakedness costs revenue.
func TestBurstyGradientNegativeAtScale(t *testing.T) {
	weights := []float64{1.0, 0.0001}
	grad := func(n int) float64 {
		sw := core.NewSwitch(n, n,
			core.AggregateClass{Name: "poisson", A: 1, AlphaTilde: 0.0012, Mu: 1},
			core.AggregateClass{Name: "bursty", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
		)
		a, err := New(sw, weights)
		if err != nil {
			t.Fatal(err)
		}
		return a.GradientBetaMu(1, 1e-4)
	}
	// At N=2 the derivative is tiny; the paper prints +2.4e-7 where the
	// derived model gives ~-2.6e-6 (its sign there inherits the paper's
	// Table 2 beta quirk — see EXPERIMENTS.md). Both agree it is
	// negligible against the N>=8 values.
	if g := grad(2); math.Abs(g) > 1e-5 {
		t.Errorf("N=2: gradient %v, want negligible magnitude", g)
	}
	for _, n := range []int{8, 16, 32} {
		if g := grad(n); g >= 0 {
			t.Errorf("N=%d: gradient %v, want negative", n, g)
		}
	}
	// Magnitude grows with N (Table 2 column shape).
	if !(math.Abs(grad(32)) > math.Abs(grad(16)) && math.Abs(grad(16)) > math.Abs(grad(8))) {
		t.Error("bursty gradient magnitude does not grow with N")
	}
}

// TestForwardVsCentralDifference: both approximate the same derivative.
func TestForwardVsCentralDifference(t *testing.T) {
	sw := core.NewSwitch(8, 8,
		core.AggregateClass{A: 1, AlphaTilde: 0.0012, Mu: 1},
		core.AggregateClass{A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
	)
	a, err := New(sw, []float64{1, 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	fwd := a.GradientBetaMuForward(1, 1e-5)
	ctr := a.GradientBetaMu(1, 1e-5)
	if !almostEqual(fwd, ctr, 1e-2) {
		t.Errorf("forward %v central %v", fwd, ctr)
	}
}

// TestShadowCostInterpretation: with a lone expensive class the shadow
// cost of its own admission approaches its own revenue contribution,
// and Profitable flips accordingly.
func TestShadowCostInterpretation(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{
		{Name: "gold", A: 1, Alpha: 0.3, Mu: 1},
		{Name: "lead", A: 1, Alpha: 0.3, Mu: 1},
	}}
	a, err := New(sw, []float64{10, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Profitable(0) {
		t.Error("high-revenue class should be profitable to grow")
	}
	// The cheap class displaces expensive traffic worth more than its
	// own w: growing it must be unprofitable.
	if a.Profitable(1) {
		t.Errorf("low-revenue class profitable: w=%v shadow=%v", 0.001, a.ShadowCost(1))
	}
	// And the gradients carry the same signs.
	if g := a.GradientRho(0, 1e-6); g <= 0 {
		t.Errorf("gold gradient %v, want > 0", g)
	}
	if g := a.GradientRho(1, 1e-6); g >= 0 {
		t.Errorf("lead gradient %v, want < 0", g)
	}
}

// TestWAtBoundary: W vanishes with the switch.
func TestWAtBoundary(t *testing.T) {
	sw := core.Switch{N1: 2, N2: 2, Classes: []core.Class{{A: 2, Alpha: 0.1, Mu: 1}}}
	a, err := New(sw, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.WAt(0, 0); got != 0 {
		t.Errorf("W(0) = %v, want 0", got)
	}
	// Shadow cost of the a=2 class compares against W(0, 0) = 0.
	if got, want := a.ShadowCost(0), a.W(); !almostEqual(got, want, 1e-12) {
		t.Errorf("ShadowCost = %v, want W = %v", got, want)
	}
}

// TestAccessors covers the Switch and Result getters.
func TestAccessors(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	a, err := New(sw, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Switch(); got.N1 != 3 || got.N2 != 3 {
		t.Errorf("Switch() = %+v", got)
	}
	if res := a.Result(); res == nil || len(res.Blocking) != 1 {
		t.Error("Result() malformed")
	}
}

// TestNewWithSweepSharesLattice pins the server-cache path: an
// Analysis built on an existing sweep solver reproduces New exactly
// (same W, shadow costs, gradients) and reads the very lattice it was
// handed rather than filling its own.
func TestNewWithSweepSharesLattice(t *testing.T) {
	sw := core.Switch{N1: 8, N2: 8, Classes: []core.Class{
		{Name: "p", A: 1, Alpha: 0.1, Mu: 1},
		{Name: "peaky", A: 2, Alpha: 0.02, Beta: 0.004, Mu: 0.5},
	}}
	weights := []float64{1, 0.25}
	sweep, err := core.NewSweepSolver(sw)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewWithSweep(sweep, weights)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(sw, weights)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := shared.W(), fresh.W(); !almostEqual(got, want, 1e-12) {
		t.Errorf("W = %v, want %v", got, want)
	}
	for r := range sw.Classes {
		if got, want := shared.ShadowCost(r), fresh.ShadowCost(r); !almostEqual(got, want, 1e-12) {
			t.Errorf("ShadowCost(%d) = %v, want %v", r, got, want)
		}
		if got, want := shared.GradientRhoClosed(r), fresh.GradientRhoClosed(r); !almostEqual(got, want, 1e-12) {
			t.Errorf("GradientRhoClosed(%d) = %v, want %v", r, got, want)
		}
	}
	if got, want := shared.GradientBetaMu(1, 1e-4), fresh.GradientBetaMu(1, 1e-4); !almostEqual(got, want, 1e-9) {
		t.Errorf("GradientBetaMu = %v, want %v", got, want)
	}
	if shared.Result() != sweep.Result() {
		t.Error("Analysis did not read the sweep solver it was handed")
	}

	if _, err := NewWithSweep(sweep, []float64{1}); err == nil {
		t.Error("mismatched weights accepted")
	}
}
