package revenue

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/core"
)

// AsymAnalysis evaluates the same Section 4 revenue measures as
// Analysis, but on the saddle-point tier (core.SolveAsymptotic): O(R)
// per operating point instead of a lattice fill, which is what makes
// revenue and admission answers possible at sizes the exact solver
// cannot fill. Shadow costs difference two asymptotic solves — the
// one at N and one at N - a_r I per class — so the per-class bounds
// reported by Bound are indicative (each operand's own relative
// bound), not a certified bound on the difference; the expansion's
// property tests show the operands track the exact values far more
// tightly than the bounds at the sizes this tier serves.
type AsymAnalysis struct {
	sw      core.Switch
	weights []float64
	// at is the asymptotic solve at the full size; reduced holds the
	// lazily computed W(N - a I) per distinct bandwidth a.
	at      *core.Result
	reduced map[int]float64
}

// NewAsymptotic builds an AsymAnalysis. weights must contain one
// revenue rate per traffic class.
func NewAsymptotic(sw core.Switch, weights []float64) (*AsymAnalysis, error) {
	if len(weights) != len(sw.Classes) {
		return nil, fmt.Errorf("revenue: %d weights for %d classes", len(weights), len(sw.Classes))
	}
	res, err := core.SolveAsymptotic(sw)
	if err != nil {
		return nil, err
	}
	return &AsymAnalysis{sw: sw, weights: weights, at: res, reduced: make(map[int]float64)}, nil
}

// Switch returns the analyzed switch.
func (a *AsymAnalysis) Switch() core.Switch { return a.sw }

// Result returns the full-size asymptotic solve (Tier, ErrorBound and
// all measures).
func (a *AsymAnalysis) Result() *core.Result { return a.at }

// W returns the average revenue W(N) = sum_r w_r E_r(N).
func (a *AsymAnalysis) W() float64 { return a.at.Revenue(a.weights) }

// wReduced returns W(N1-a, N2-a), solving and caching per distinct a.
// A switch reduced to nonpositive dimensions carries no traffic.
func (a *AsymAnalysis) wReduced(band int) (float64, error) {
	if w, ok := a.reduced[band]; ok {
		return w, nil
	}
	n1, n2 := a.sw.N1-band, a.sw.N2-band
	if n1 < 1 || n2 < 1 {
		a.reduced[band] = 0
		return 0, nil
	}
	res, err := core.SolveAsymptotic(core.Switch{N1: n1, N2: n2, Classes: a.sw.Classes})
	if err != nil {
		return 0, fmt.Errorf("revenue: reduced switch %dx%d: %w", n1, n2, err)
	}
	w := res.Revenue(a.weights)
	a.reduced[band] = w
	return w, nil
}

// ShadowCost returns DeltaW_r(N) = W(N) - W(N - a_r I): the revenue
// displaced by holding one more class-r connection's worth of ports.
func (a *AsymAnalysis) ShadowCost(r int) (float64, error) {
	wr, err := a.wReduced(a.sw.Classes[r].A)
	if err != nil {
		return 0, err
	}
	return a.W() - wr, nil
}

// Profitable reports whether admitting more class-r load raises total
// revenue: w_r exceeds the shadow cost.
func (a *AsymAnalysis) Profitable(r int) (bool, error) {
	shadow, err := a.ShadowCost(r)
	if err != nil {
		return false, err
	}
	return a.weights[r] > shadow, nil
}

// GradientRhoClosed returns the closed-form dW/d rho_r = P(N1,a_r)
// P(N2,a_r) B_r(N) (w_r - DeltaW_r(N)) with every factor read off the
// asymptotic tier, mirroring Analysis.GradientRhoClosed.
func (a *AsymAnalysis) GradientRhoClosed(r int) (float64, error) {
	ar := a.sw.Classes[r].A
	if ar > a.sw.MinN() {
		return 0, nil
	}
	shadow, err := a.ShadowCost(r)
	if err != nil {
		return 0, err
	}
	lead := combin.Perm(a.sw.N1, ar) * combin.Perm(a.sw.N2, ar)
	return lead * a.at.NonBlocking[r] * (a.weights[r] - shadow), nil
}

// GradientBetaMu returns dW/d(beta_r/mu_r) by symmetric central
// difference with relative step h, re-solving the perturbed models on
// the asymptotic tier (two O(R) solves). Mirrors
// Analysis.GradientBetaMu, including its step floor for classes near
// beta = 0.
func (a *AsymAnalysis) GradientBetaMu(r int, h float64) (float64, error) {
	c := a.sw.Classes[r]
	step := h * math.Max(math.Abs(c.BetaMu()), math.Max(c.Rho(), 1e-9))
	up, err := a.perturbedW(r, step*c.Mu)
	if err != nil {
		return 0, err
	}
	down, err := a.perturbedW(r, -step*c.Mu)
	if err != nil {
		return 0, err
	}
	return (up - down) / (2 * step), nil
}

// perturbedW evaluates W with class r's beta shifted by dBeta.
func (a *AsymAnalysis) perturbedW(r int, dBeta float64) (float64, error) {
	classes := append([]core.Class(nil), a.sw.Classes...)
	classes[r].Beta += dBeta
	res, err := core.SolveAsymptotic(core.Switch{N1: a.sw.N1, N2: a.sw.N2, Classes: classes})
	if err != nil {
		return 0, fmt.Errorf("revenue: perturbed class %d: %w", r, err)
	}
	return res.Revenue(a.weights), nil
}

// Bound returns the class-r relative-error bound of the full-size
// solve, the quantity dispatch tolerances compare against.
func (a *AsymAnalysis) Bound(r int) float64 { return a.at.ErrorBound[r] }
