package cluster

import (
	"math"
	"sort"
	"sync"
	"time"
)

// hotEntry is one tracked key's exponentially-weighted hit rate.
type hotEntry struct {
	rate     float64   // decayed hits (EWMA mass, not a frequency)
	last     time.Time // last touch, the decay anchor
	lastRepl time.Time // last replication fan-out for this key
}

// hotTracker ranks the keys this node owns by an exponentially decayed
// hit count: every served request adds 1, and accumulated mass halves
// every halfLife. A key whose decayed mass crosses the hot threshold
// is due for replication to its ring successors (at most once per
// replication interval).
type hotTracker struct {
	mu         sync.Mutex
	halfLife   time.Duration
	maxEntries int
	entries    map[string]*hotEntry
}

func newHotTracker(halfLife time.Duration, maxEntries int) *hotTracker {
	return &hotTracker{
		halfLife:   halfLife,
		maxEntries: maxEntries,
		entries:    make(map[string]*hotEntry),
	}
}

// decayed returns e's mass at time now.
func (t *hotTracker) decayed(e *hotEntry, now time.Time) float64 {
	dt := now.Sub(e.last)
	if dt <= 0 {
		return e.rate
	}
	return e.rate * math.Exp2(-float64(dt)/float64(t.halfLife))
}

// touch records one hit on key and returns its decayed mass after the
// hit. New keys enter at mass 1; when the table is full, the coldest
// entry makes room (the table tracks heat, losing a cold key is free).
func (t *hotTracker) touch(key string, now time.Time) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok {
		if len(t.entries) >= t.maxEntries {
			t.evictColdestLocked(now)
		}
		e = &hotEntry{}
		t.entries[key] = e
	}
	e.rate = t.decayed(e, now) + 1
	e.last = now
	return e.rate
}

// evictColdestLocked removes the entry with the least decayed mass.
func (t *hotTracker) evictColdestLocked(now time.Time) {
	var coldKey string
	cold := math.Inf(1)
	for k, e := range t.entries {
		if m := t.decayed(e, now); m < cold {
			cold, coldKey = m, k
		}
	}
	if coldKey != "" {
		delete(t.entries, coldKey)
	}
}

// shouldReplicate reports whether key is hot enough to fan out to its
// successors and, if so, stamps the replication so the next interval
// must pass before it fans out again.
func (t *hotTracker) shouldReplicate(key string, now time.Time, threshold float64, interval time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok || t.decayed(e, now) < threshold {
		return false
	}
	if !e.lastRepl.IsZero() && now.Sub(e.lastRepl) < interval {
		return false
	}
	e.lastRepl = now
	return true
}

// tracked returns the number of keys currently tracked.
func (t *hotTracker) tracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// topK returns up to k tracked keys by decayed mass, hottest first
// (diagnostics and tests; the replication decision itself is
// threshold-based so it needs no global sort on the request path).
func (t *hotTracker) topK(k int, now time.Time) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	type km struct {
		key  string
		mass float64
	}
	all := make([]km, 0, len(t.entries))
	for key, e := range t.entries {
		all = append(all, km{key, t.decayed(e, now)})
	}
	// Full ordering (mass descending, key ascending on ties) keeps the
	// result deterministic regardless of map iteration order.
	sort.Slice(all, func(i, j int) bool {
		if all[i].mass != all[j].mass { //lint:allow floatcmp equal masses fall through to the key tie-break
			return all[i].mass > all[j].mass
		}
		return all[i].key < all[j].key
	})
	if k > len(all) {
		k = len(all)
	}
	keys := make([]string, k)
	for i := 0; i < k; i++ {
		keys[i] = all[i].key
	}
	return keys
}
