package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestHotTrackerDecay(t *testing.T) {
	tr := newHotTracker(time.Second, 16)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 8; i++ {
		tr.touch("k", t0)
	}
	// One half-life later the mass must have halved before the +1.
	got := tr.touch("k", t0.Add(time.Second))
	want := 8*0.5 + 1
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("mass after one half-life = %v, want %v", got, want)
	}
	// Far in the future the mass is back to ~1.
	if got := tr.touch("k", t0.Add(time.Hour)); got > 1+1e-6 {
		t.Fatalf("mass after an hour = %v, want ~1", got)
	}
}

func TestHotTrackerReplicationGate(t *testing.T) {
	tr := newHotTracker(time.Minute, 16)
	t0 := time.Unix(2000, 0)
	if tr.shouldReplicate("cold", t0, 4, time.Second) {
		t.Fatal("untracked key reported hot")
	}
	for i := 0; i < 3; i++ {
		tr.touch("k", t0)
	}
	if tr.shouldReplicate("k", t0, 4, time.Second) {
		t.Fatal("mass 3 crossed threshold 4")
	}
	tr.touch("k", t0)
	if !tr.shouldReplicate("k", t0, 4, time.Second) {
		t.Fatal("mass 4 did not cross threshold 4")
	}
	// Inside the interval the gate holds even though the key stays hot.
	tr.touch("k", t0)
	if tr.shouldReplicate("k", t0.Add(500*time.Millisecond), 4, time.Second) {
		t.Fatal("replication re-fired inside the interval")
	}
	if !tr.shouldReplicate("k", t0.Add(2*time.Second), 4, time.Second) {
		t.Fatal("replication did not re-fire after the interval")
	}
}

func TestHotTrackerEvictsColdest(t *testing.T) {
	tr := newHotTracker(time.Minute, 3)
	t0 := time.Unix(3000, 0)
	tr.touch("hot", t0)
	tr.touch("hot", t0)
	tr.touch("hot", t0)
	tr.touch("warm", t0)
	tr.touch("warm", t0)
	tr.touch("cold", t0)
	tr.touch("new", t0) // must displace "cold", the least mass
	if tr.tracked() != 3 {
		t.Fatalf("tracked %d, want 3", tr.tracked())
	}
	top := tr.topK(3, t0)
	for _, k := range top {
		if k == "cold" {
			t.Fatalf("coldest key survived eviction: %v", top)
		}
	}
}

func TestHotTrackerTopKOrder(t *testing.T) {
	tr := newHotTracker(time.Minute, 16)
	t0 := time.Unix(4000, 0)
	for i, key := range []string{"a", "b", "c", "d"} {
		for j := 0; j <= i; j++ {
			tr.touch(key, t0)
		}
	}
	got := tr.topK(2, t0)
	if len(got) != 2 || got[0] != "d" || got[1] != "c" {
		t.Fatalf("topK = %v, want [d c]", got)
	}
	if n := len(tr.topK(100, t0)); n != 4 {
		t.Fatalf("topK(100) returned %d keys, want 4", n)
	}
}

func TestHotTrackerBounded(t *testing.T) {
	tr := newHotTracker(time.Minute, 8)
	t0 := time.Unix(5000, 0)
	for i := 0; i < 100; i++ {
		tr.touch(fmt.Sprintf("k%d", i), t0.Add(time.Duration(i)*time.Millisecond))
	}
	if tr.tracked() > 8 {
		t.Fatalf("tracked %d keys, cap is 8", tr.tracked())
	}
}
