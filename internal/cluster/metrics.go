package cluster

import (
	"sync/atomic"
	"time"
)

// forwardBucketsNs are the forward-latency histogram bounds, matching
// the server's endpoint buckets: 100µs, 1ms, 10ms, 100ms, 1s, 10s,
// then overflow. A warm forwarded cache hit is a loopback round trip
// (first two buckets); overflow means a peer is timing out.
var forwardBucketsNs = [...]int64{
	100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// peerMetrics is one peer's forwarding counters. All fields are
// atomics; record and snapshot run lock-free.
type peerMetrics struct {
	forwards    atomic.Int64
	errors      atomic.Int64
	skippedDown atomic.Int64
	totalNs     atomic.Int64
	buckets     [len(forwardBucketsNs) + 1]atomic.Int64
}

func (p *peerMetrics) observe(d time.Duration) {
	ns := d.Nanoseconds()
	p.totalNs.Add(ns)
	i := 0
	for i < len(forwardBucketsNs) && ns > forwardBucketsNs[i] {
		i++
	}
	p.buckets[i].Add(1)
}

// Metrics is the cluster-wide counter set merged into the server's
// GET /metrics document.
type Metrics struct {
	forwards        atomic.Int64 // requests proxied to a peer, any outcome
	forwardErrors   atomic.Int64 // forwards that exhausted their retries
	failovers       atomic.Int64 // forwards that fell back to local compute
	forwardedServed atomic.Int64 // requests served here on a peer's behalf

	replSent    atomic.Int64
	replFailed  atomic.Int64
	replDropped atomic.Int64

	perPeer map[string]*peerMetrics // fixed at construction, no lock
}

func newClusterMetrics(peerIDs []string) *Metrics {
	m := &Metrics{perPeer: make(map[string]*peerMetrics, len(peerIDs))}
	for _, id := range peerIDs {
		m.perPeer[id] = &peerMetrics{}
	}
	return m
}

// RecordFailover counts one forward that degraded to local compute.
func (m *Metrics) RecordFailover() { m.failovers.Add(1) }

// RecordForwardedServed counts one request served locally on behalf of
// a peer (it arrived with the forwarded or replicate marker).
func (m *Metrics) RecordForwardedServed() { m.forwardedServed.Add(1) }

// ForwardLatencyHistogram is one peer's forward-latency distribution,
// same bucket scheme as the server's endpoint histograms.
type ForwardLatencyHistogram struct {
	Le100us int64 `json:"le_100us"`
	Le1ms   int64 `json:"le_1ms"`
	Le10ms  int64 `json:"le_10ms"`
	Le100ms int64 `json:"le_100ms"`
	Le1s    int64 `json:"le_1s"`
	Le10s   int64 `json:"le_10s"`
	Over10s int64 `json:"over_10s"`
}

// PeerSnapshot is one peer's forwarding state at snapshot time.
type PeerSnapshot struct {
	Addr        string                  `json:"addr"`
	Healthy     bool                    `json:"healthy"`
	Forwards    int64                   `json:"forwards"`
	Errors      int64                   `json:"errors"`
	SkippedDown int64                   `json:"skipped_down"`
	TotalMs     float64                 `json:"total_ms"`
	AvgMs       float64                 `json:"avg_ms"`
	Latency     ForwardLatencyHistogram `json:"latency"`
}

// ReplicationSnapshot is the hot-key replication state at snapshot
// time.
type ReplicationSnapshot struct {
	HotTracked int   `json:"hot_tracked"`
	Sent       int64 `json:"sent"`
	Failed     int64 `json:"failed"`
	Dropped    int64 `json:"dropped"`
}

// Snapshot is the cluster section of the GET /metrics document.
type Snapshot struct {
	NodeID          string                  `json:"node_id"`
	VNodes          int                     `json:"vnodes"`
	Forwards        int64                   `json:"forwards"`
	ForwardErrors   int64                   `json:"forward_errors"`
	Failovers       int64                   `json:"failovers"`
	ForwardedServed int64                   `json:"forwarded_served"`
	Replication     ReplicationSnapshot     `json:"replication"`
	Peers           map[string]PeerSnapshot `json:"peers"`
}
