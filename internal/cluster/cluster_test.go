package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestCluster builds a two-member cluster "self"+"peer" whose peer
// URL points at the given handler.
func newTestCluster(t *testing.T, peerHandler http.Handler, cfg Config) (*Cluster, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(peerHandler)
	t.Cleanup(ts.Close)
	cfg.NodeID = "self"
	cfg.Peers = map[string]string{"self": "http://unused", "peer": ts.URL}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, ts
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{}, // no peers
		{NodeID: "x", Peers: map[string]string{"y": "http://h"}},          // self not a member
		{NodeID: "x", Peers: map[string]string{"x": "h", "y": "host:80"}}, // peer url without scheme
		{NodeID: "x", Peers: map[string]string{"x": "h", "": "http://h"}}, // empty id
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestForwardCopiesResponse(t *testing.T) {
	c, _ := newTestCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HeaderForwarded) != "self" {
			t.Errorf("forwarded header = %q, want self", r.Header.Get(HeaderForwarded))
		}
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"q":1}` {
			t.Errorf("peer saw body %q", body)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(HeaderNode, "peer")
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, `{"a":2}`) //lint:allow errcheck test response write
	}), Config{})
	res, err := c.Forward(context.Background(), "peer", "/v1/blocking", []byte(`{"q":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusTeapot || string(res.Body) != `{"a":2}` || res.ServedBy != "peer" || res.ContentType != "application/json" {
		t.Fatalf("forward result %+v", res)
	}
	snap := c.Snapshot()
	if snap.Forwards != 1 || snap.ForwardErrors != 0 {
		t.Fatalf("forwards %d errors %d, want 1/0", snap.Forwards, snap.ForwardErrors)
	}
	if ps := snap.Peers["peer"]; ps.Forwards != 1 || !ps.Healthy {
		t.Fatalf("peer snapshot %+v", ps)
	}
}

func TestForwardRetriesThenFails(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}), Config{ForwardAttempts: 3})
	_, err := c.Forward(context.Background(), "peer", "/v1/blocking", nil)
	if err == nil {
		t.Fatal("forward to a 500 peer succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("peer saw %d attempts, want 3", got)
	}
	snap := c.Snapshot()
	if snap.ForwardErrors != 1 || snap.Peers["peer"].Errors != 3 {
		t.Fatalf("snapshot %+v", snap)
	}
	// A 5xx answer is an application-level failure, not a dead
	// connection: the peer must stay forwardable.
	if !snap.Peers["peer"].Healthy {
		t.Fatal("peer marked down after a 5xx answer")
	}
}

func TestForwardDeadPeerBackoffGate(t *testing.T) {
	// A listener that is already closed: connection refused from the
	// first attempt, as with a peer dead at startup.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close() //lint:allow errcheck freeing the reserved port is the point
	c, err := New(Config{NodeID: "self", Peers: map[string]string{"self": "http://unused", "peer": deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Forward(context.Background(), "peer", "/v1/blocking", nil); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	// The peer is now behind the backoff gate: the next forward fails
	// fast with ErrPeerDown instead of dialing again.
	if _, err := c.Forward(context.Background(), "peer", "/v1/blocking", nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("second forward error %v, want ErrPeerDown", err)
	}
	snap := c.Snapshot()
	if snap.Peers["peer"].Healthy {
		t.Fatal("dead peer reported healthy")
	}
	if snap.Peers["peer"].SkippedDown != 1 {
		t.Fatalf("skipped_down %d, want 1", snap.Peers["peer"].SkippedDown)
	}
}

func TestPeerBackoffExpiresAndProbes(t *testing.T) {
	p := &Peer{}
	t0 := time.Unix(1000, 0)
	p.reportFailure(t0)
	if p.healthy(t0.Add(reconnectBase / 2)) {
		t.Fatal("peer healthy inside the first backoff window")
	}
	if !p.healthy(t0.Add(reconnectBase + time.Millisecond)) {
		t.Fatal("peer not probeable after the backoff window")
	}
	// Consecutive failures double the gate, capped.
	for i := 0; i < 20; i++ {
		p.reportFailure(t0)
	}
	if p.healthy(t0.Add(reconnectCap - time.Millisecond)) {
		t.Fatal("gate below cap after many failures")
	}
	if !p.healthy(t0.Add(reconnectCap)) {
		t.Fatal("gate exceeds cap")
	}
	p.reportSuccess()
	if !p.healthy(t0) {
		t.Fatal("peer not healthy after success")
	}
}

func TestTouchReplicatesHotKey(t *testing.T) {
	var gotPath atomic.Value
	var gotFrom atomic.Value
	var replicas atomic.Int64
	c, _ := newTestCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HeaderReplicate) != "" {
			replicas.Add(1)
			gotPath.Store(r.URL.Path)
			gotFrom.Store(r.Header.Get(HeaderReplicate))
		}
		w.WriteHeader(http.StatusOK)
	}), Config{HotThreshold: 2.5, HotHalfLife: time.Minute, ReplicateInterval: time.Minute})

	// Find a key owned by self so the successor set is {peer}.
	key := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("model-%d", i)
		if c.IsLocal(k) {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no self-owned key found")
	}
	for i := 0; i < 3; i++ {
		c.Touch(key, "/v1/blocking", []byte(`{"n1":4}`))
	}
	deadline := time.Now().Add(5 * time.Second)
	for replicas.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if replicas.Load() != 1 {
		t.Fatalf("replicas = %d, want 1", replicas.Load())
	}
	if gotPath.Load() != "/v1/blocking" || gotFrom.Load() != "self" {
		t.Fatalf("replica path %v from %v", gotPath.Load(), gotFrom.Load())
	}
	c.DrainReplication(time.Second)
	if snap := c.Snapshot(); snap.Replication.Sent != 1 || snap.Replication.HotTracked != 1 {
		t.Fatalf("replication snapshot %+v", snap.Replication)
	}
	if hot := c.HotKeys(1); len(hot) != 1 || hot[0] != key {
		t.Fatalf("hot keys %v, want [%s]", hot, key)
	}
}

func TestTouchBelowThresholdDoesNotReplicate(t *testing.T) {
	var replicas atomic.Int64
	c, _ := newTestCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replicas.Add(1)
	}), Config{HotThreshold: 100, HotHalfLife: time.Minute})
	for i := 0; i < 10; i++ {
		c.Touch("some-key", "/v1/blocking", nil)
	}
	c.DrainReplication(time.Second)
	if replicas.Load() != 0 {
		t.Fatalf("cold key replicated %d times", replicas.Load())
	}
}

func TestFetchJSON(t *testing.T) {
	c, _ := newTestCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/metrics" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		io.WriteString(w, `{"ok":true}`) //lint:allow errcheck test response write
	}), Config{})
	data, err := c.FetchJSON(context.Background(), "peer", "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("fetched %q", data)
	}
	if _, err := c.FetchJSON(context.Background(), "peer", "/nope"); err == nil {
		t.Fatal("404 fetch succeeded")
	}
	if _, err := c.FetchJSON(context.Background(), "ghost", "/metrics"); err == nil {
		t.Fatal("unknown peer fetch succeeded")
	}
}

func TestForwardUnknownPeer(t *testing.T) {
	c, _ := newTestCluster(t, http.NotFoundHandler(), Config{})
	if _, err := c.Forward(context.Background(), "ghost", "/v1/blocking", nil); err == nil {
		t.Fatal("forward to unknown peer succeeded")
	}
}

func TestForwardCanceledContextStopsRetries(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}), Config{ForwardAttempts: 5})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel as soon as the first attempt has landed.
		for calls.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err := c.Forward(ctx, "peer", "/v1/blocking", nil)
	if err == nil {
		t.Fatal("forward succeeded under cancellation")
	}
	if calls.Load() >= 5 {
		t.Fatalf("all %d attempts ran despite cancellation", calls.Load())
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	c, ts := newTestCluster(t, http.NotFoundHandler(), Config{})
	if c.NodeID() != "self" {
		t.Fatalf("node id %q", c.NodeID())
	}
	if got := c.Nodes(); len(got) != 2 || got[0] != "peer" || got[1] != "self" {
		t.Fatalf("nodes %v", got)
	}
	if c.PeerURL("peer") != ts.URL {
		t.Fatalf("peer url %q, want %q", c.PeerURL("peer"), ts.URL)
	}
	if c.cfg.VNodes != 64 || c.cfg.HotReplicas != 1 || c.cfg.ForwardAttempts != 2 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
	if c.Owner("k") != "self" && c.Owner("k") != "peer" {
		t.Fatalf("owner %q", c.Owner("k"))
	}
	if strings.TrimRight(ts.URL, "/") != c.peers["peer"].baseURL {
		t.Fatalf("base url %q", c.peers["peer"].baseURL)
	}
}
