// Package cluster turns a fleet of xbard processes into one logical
// cache: a static-membership consistent-hash ring assigns every
// canonical cache key (solver model keys, scenario spec keys, grid
// group keys — already hex-exact and process-independent) to exactly
// one owner node, and a peer-forwarding layer proxies requests whose
// key lives elsewhere so any node answers any query while the fleet
// performs each expensive lattice fill once.
//
// The layer is deliberately availability-biased: a dead or slow peer
// never turns into a client-facing error. Forwarding retries a bounded
// number of times over a persistent connection pool, marks the peer
// down behind an exponential backoff gate (the next request after the
// gate expires doubles as the reconnect probe), and then falls back to
// computing locally — exactly the pre-cluster single-node behavior.
// Results are bit-identical wherever they are computed (the solvers
// are deterministic and schedule-independent), so failover changes
// cost, never answers.
//
// Owners additionally track per-key hit EWMAs and replicate their
// hottest keys to their ring successors ahead of need: a lost node's
// hottest models are already warm on the nodes that inherit its ring
// segment. See docs/CLUSTER.md.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Forwarded-request markers. HeaderForwarded carries the origin node
// id on proxied requests and is the loop guard: a request bearing it
// is always served locally, never re-forwarded, so a ring-view skew
// can cost one extra hop but never a cycle. HeaderReplicate marks
// cache-warming replication traffic (also served locally, response
// discarded by the sender). HeaderNode on responses names the node
// that actually served the request.
const (
	HeaderForwarded = "X-Xbar-Forwarded"
	HeaderReplicate = "X-Xbar-Replicate"
	HeaderNode      = "X-Xbar-Node"
)

// ErrPeerDown reports a forward skipped because the target peer is
// inside its reconnect backoff window.
var ErrPeerDown = errors.New("cluster: peer down (backoff gate)")

// Config parameterizes a Cluster. The zero value of every optional
// field takes the documented default.
type Config struct {
	// NodeID is this node's member id; it must be a key of Peers.
	NodeID string
	// Peers maps every cluster member's id — including this node's —
	// to its API base URL ("http://host:port"). Len >= 1.
	Peers map[string]string
	// VNodes is the virtual nodes per member on the hash ring.
	// Default 64.
	VNodes int
	// HotReplicas is how many ring successors each owner replicates
	// its hottest keys to; negative disables replication. Default 1,
	// capped at len(Peers)-1.
	HotReplicas int
	// HotThreshold is the decayed hit mass at which a key counts as
	// hot. Default 8.
	HotThreshold float64
	// HotHalfLife is the EWMA half-life of the hit tracker.
	// Default 30s.
	HotHalfLife time.Duration
	// ReplicateInterval is the minimum time between replication
	// fan-outs of one key. Default 30s.
	ReplicateInterval time.Duration
	// ForwardAttempts bounds tries per forwarded request before the
	// caller falls over to local compute. Default 2.
	ForwardAttempts int
	// ForwardTimeout bounds one forward attempt. Default 10s.
	ForwardTimeout time.Duration
	// Logf, when non-nil, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	switch {
	case c.HotReplicas == 0:
		c.HotReplicas = 1
	case c.HotReplicas < 0:
		c.HotReplicas = 0 // explicit off
	}
	if c.HotReplicas > len(c.Peers)-1 {
		c.HotReplicas = len(c.Peers) - 1
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 8
	}
	if c.HotHalfLife == 0 {
		c.HotHalfLife = 30 * time.Second
	}
	if c.ReplicateInterval == 0 {
		c.ReplicateInterval = 30 * time.Second
	}
	if c.ForwardAttempts == 0 {
		c.ForwardAttempts = 2
	}
	if c.ForwardTimeout == 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	return c
}

func (c Config) validate() error {
	if len(c.Peers) == 0 {
		return fmt.Errorf("cluster: no peers")
	}
	if _, ok := c.Peers[c.NodeID]; !ok {
		return fmt.Errorf("cluster: node id %q is not a member of peers", c.NodeID)
	}
	for id, u := range c.Peers {
		if id == "" {
			return fmt.Errorf("cluster: empty peer id")
		}
		if id != c.NodeID && !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("cluster: peer %q url %q must start with http:// or https://", id, u)
		}
	}
	if c.VNodes < 1 {
		return fmt.Errorf("cluster: VNodes %d, must be >= 1", c.VNodes)
	}
	return nil
}

// replJob is one queued replication fan-out: re-POST the original
// request to the key's ring successors so they fill their own caches.
type replJob struct {
	key     string
	path    string
	body    []byte
	targets []string
}

// maxTrackedKeys bounds the hot tracker; beyond it the coldest key is
// dropped (only relative heat matters).
const maxTrackedKeys = 4096

// replQueueLen bounds the replication queue; fan-outs beyond it are
// dropped and counted, never block a request.
const replQueueLen = 64

// Cluster is one node's view of the fleet: the ring, the peer pool,
// the hot-key tracker and the replication worker. Construct with New,
// stop with Close.
type Cluster struct {
	cfg       Config
	ring      *Ring
	peers     map[string]*Peer // every member except self
	transport *http.Transport  // shared by every peer's client
	hot       *hotTracker
	metrics   *Metrics
	now       func() time.Time

	repl      chan replJob
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds the node's cluster view and starts the replication
// worker. The membership is static: the ring is a pure function of
// cfg.Peers and never changes at runtime.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	transport := newTransport()
	client := &http.Client{Transport: transport}
	c := &Cluster{
		cfg:       cfg,
		ring:      NewRing(ids, cfg.VNodes),
		peers:     make(map[string]*Peer, len(ids)-1),
		transport: transport,
		hot:       newHotTracker(cfg.HotHalfLife, maxTrackedKeys),
		metrics:   newClusterMetrics(peerIDsExcept(ids, cfg.NodeID)),
		now:       time.Now, //lint:allow detrand wall-clock backoff gates and EWMA decay; the analytical engine stays clock-free
		repl:      make(chan replJob, replQueueLen),
		done:      make(chan struct{}),
	}
	for _, id := range ids {
		if id == cfg.NodeID {
			continue
		}
		c.peers[id] = &Peer{id: id, baseURL: strings.TrimRight(cfg.Peers[id], "/"), client: client}
	}
	c.wg.Add(1)
	go c.replicator()
	return c, nil
}

func peerIDsExcept(ids []string, self string) []string {
	out := make([]string, 0, len(ids)-1)
	for _, id := range ids {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

// Close stops the replication worker and releases the connection
// pool's idle conns (a pooled-but-unused conn would otherwise hold a
// peer's graceful drain open for several seconds). Forwarding stays
// usable (it is stateless per call). Idempotent.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	c.transport.CloseIdleConnections()
}

// NodeID returns this node's member id.
func (c *Cluster) NodeID() string { return c.cfg.NodeID }

// Nodes returns every member id, sorted.
func (c *Cluster) Nodes() []string { return c.ring.Nodes() }

// PeerURL returns the configured base URL for a member id.
func (c *Cluster) PeerURL(id string) string { return c.cfg.Peers[id] }

// Metrics exposes the counter set for the server's /metrics document.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Owner returns the member owning key on the ring.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// IsLocal reports whether this node owns key.
func (c *Cluster) IsLocal(key string) bool { return c.ring.Owner(key) == c.cfg.NodeID }

// Successors returns key's replica set (ring successors of its owner).
func (c *Cluster) Successors(key string, n int) []string { return c.ring.Successors(key, n) }

// ForwardResult is a proxied response: status, content type and body,
// copied verbatim so the client sees exactly the owner's bytes.
type ForwardResult struct {
	Status      int
	ContentType string
	ServedBy    string
	Body        []byte
}

// Forward proxies one request body to the owner peer and returns its
// response. Transport errors and 5xx answers are retried up to
// ForwardAttempts times, marking the peer down behind the backoff
// gate; a peer already inside its gate fails fast with ErrPeerDown.
// Any returned error means the caller should compute locally.
func (c *Cluster) Forward(ctx context.Context, owner, path string, body []byte) (*ForwardResult, error) {
	p, ok := c.peers[owner]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %q", owner)
	}
	pm := c.metrics.perPeer[owner]
	now := c.now()
	if p.down(now) {
		pm.skippedDown.Add(1)
		return nil, ErrPeerDown
	}
	c.metrics.forwards.Add(1)
	pm.forwards.Add(1)
	var lastErr error
	for attempt := 0; attempt < c.cfg.ForwardAttempts; attempt++ {
		res, err := c.forwardOnce(ctx, p, path, body)
		if err == nil {
			pm.observe(c.now().Sub(now))
			return res, nil
		}
		lastErr = err
		pm.errors.Add(1)
		if ctx.Err() != nil {
			break // the client is gone; retrying serves nobody
		}
	}
	c.metrics.forwardErrors.Add(1)
	return nil, lastErr
}

// forwardOnce runs one proxy attempt with its own timeout.
func (c *Cluster) forwardOnce(ctx context.Context, p *Peer, path string, body []byte) (*ForwardResult, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, p.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, c.cfg.NodeID)
	resp, err := p.client.Do(req)
	if err != nil {
		p.reportFailure(c.now())
		return nil, err
	}
	defer resp.Body.Close() //lint:allow errcheck drain-side close; a close failure cannot affect the already-read body
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		p.reportFailure(c.now())
		return nil, err
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		// The peer answered but cannot serve (500, 503 drain/overload):
		// local compute is the better fallback. The exchange itself
		// succeeded, so the connection-level health state resets.
		p.reportSuccess()
		return nil, fmt.Errorf("cluster: peer %s answered %d", p.id, resp.StatusCode)
	}
	p.reportSuccess()
	return &ForwardResult{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		ServedBy:    resp.Header.Get(HeaderNode),
		Body:        data,
	}, nil
}

// FetchJSON GETs path from a member (the /v1/cluster rollup path). It
// is single-attempt and respects the peer's backoff gate.
func (c *Cluster) FetchJSON(ctx context.Context, id, path string) ([]byte, error) {
	p, ok := c.peers[id]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %q", id)
	}
	if p.down(c.now()) {
		return nil, ErrPeerDown
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, p.baseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.reportFailure(c.now())
		return nil, err
	}
	defer resp.Body.Close() //lint:allow errcheck drain-side close; a close failure cannot affect the already-read body
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		p.reportFailure(c.now())
		return nil, err
	}
	p.reportSuccess()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s %s answered %d", id, path, resp.StatusCode)
	}
	return data, nil
}

// Touch records one locally served request for a key this node owns
// and, when the key's decayed hit mass crosses the hot threshold,
// queues a replication fan-out of the original request to the key's
// ring successors. The queue is bounded and never blocks the request.
func (c *Cluster) Touch(key, path string, body []byte) {
	if c.cfg.HotReplicas < 1 {
		return
	}
	now := c.now()
	c.hot.touch(key, now)
	if !c.hot.shouldReplicate(key, now, c.cfg.HotThreshold, c.cfg.ReplicateInterval) {
		return
	}
	targets := c.ring.Successors(key, c.cfg.HotReplicas)
	if len(targets) == 0 {
		return
	}
	// The body slice may alias a request buffer; copy it so the
	// background worker owns its bytes.
	job := replJob{key: key, path: path, body: append([]byte(nil), body...), targets: targets}
	select {
	case c.repl <- job:
	default:
		c.metrics.replDropped.Add(1)
	}
}

// replicator is the background fan-out worker: it re-POSTs hot
// requests to ring successors with the replicate marker, warming
// their caches off the request path. Responses are discarded — the
// point is the fill on the successor, not the answer.
func (c *Cluster) replicator() {
	defer c.wg.Done()
	for {
		select {
		case job := <-c.repl:
			c.replicate(job)
		case <-c.done:
			return
		}
	}
}

func (c *Cluster) replicate(job replJob) {
	for _, id := range job.targets {
		p, ok := c.peers[id]
		if !ok || p.down(c.now()) {
			c.metrics.replFailed.Add(1)
			continue
		}
		if err := c.replicateOne(p, job); err != nil {
			c.metrics.replFailed.Add(1)
			c.logf("cluster: replicate %s to %s: %v", job.path, id, err)
			continue
		}
		c.metrics.replSent.Add(1)
	}
}

func (c *Cluster) replicateOne(p *Peer, job replJob) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.baseURL+job.path, bytes.NewReader(job.body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderReplicate, c.cfg.NodeID)
	resp, err := p.client.Do(req)
	if err != nil {
		p.reportFailure(c.now())
		return err
	}
	defer resp.Body.Close() //lint:allow errcheck drain-side close; the body is discarded
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		p.reportFailure(c.now())
		return err
	}
	p.reportSuccess()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return nil
}

// DrainReplication waits (bounded by timeout) until the replication
// queue is empty — a test and shutdown convenience; the worker may
// still be mid-flight on the last job when it returns.
func (c *Cluster) DrainReplication(timeout time.Duration) {
	deadline := c.now().Add(timeout)
	for len(c.repl) > 0 && c.now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// HotKeys returns the node's current top-k tracked keys, hottest
// first (diagnostics).
func (c *Cluster) HotKeys(k int) []string { return c.hot.topK(k, c.now()) }

// Snapshot renders the cluster counters for the /metrics document.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{
		NodeID:          c.cfg.NodeID,
		VNodes:          c.cfg.VNodes,
		Forwards:        c.metrics.forwards.Load(),
		ForwardErrors:   c.metrics.forwardErrors.Load(),
		Failovers:       c.metrics.failovers.Load(),
		ForwardedServed: c.metrics.forwardedServed.Load(),
		Replication: ReplicationSnapshot{
			HotTracked: c.hot.tracked(),
			Sent:       c.metrics.replSent.Load(),
			Failed:     c.metrics.replFailed.Load(),
			Dropped:    c.metrics.replDropped.Load(),
		},
		Peers: make(map[string]PeerSnapshot, len(c.peers)),
	}
	now := c.now()
	for id, p := range c.peers {
		pm := c.metrics.perPeer[id]
		n := pm.buckets[0].Load() + pm.buckets[1].Load() + pm.buckets[2].Load() +
			pm.buckets[3].Load() + pm.buckets[4].Load() + pm.buckets[5].Load() + pm.buckets[6].Load()
		totalMs := float64(pm.totalNs.Load()) / 1e6
		ps := PeerSnapshot{
			Addr:        p.baseURL,
			Healthy:     p.healthy(now),
			Forwards:    pm.forwards.Load(),
			Errors:      pm.errors.Load(),
			SkippedDown: pm.skippedDown.Load(),
			TotalMs:     totalMs,
			Latency: ForwardLatencyHistogram{
				Le100us: pm.buckets[0].Load(),
				Le1ms:   pm.buckets[1].Load(),
				Le10ms:  pm.buckets[2].Load(),
				Le100ms: pm.buckets[3].Load(),
				Le1s:    pm.buckets[4].Load(),
				Le10s:   pm.buckets[5].Load(),
				Over10s: pm.buckets[6].Load(),
			},
		}
		if n > 0 {
			ps.AvgMs = totalMs / float64(n)
		}
		s.Peers[id] = ps
	}
	return s
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
