package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a static-membership consistent-hash ring: each member
// contributes vnodes points (hashes of "id#i"), and a key belongs to
// the member owning the first point clockwise of the key's hash.
// Membership is fixed at construction — the cluster layer is static —
// so lookups are lock-free binary searches.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by (hash, node)
	nodes  []string    // member ids, sorted
}

// NewRing builds the ring for the given member ids with vnodes
// virtual nodes per member. Duplicate ids are collapsed.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(nodes))
	var uniq []string
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		vnodes: vnodes,
		nodes:  uniq,
		points: make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	// Ties (identical hashes) are broken by node id so the ring is a
	// pure function of membership, never of insertion order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hash64 is FNV-1a over the key bytes followed by a splitmix64-style
// finalizer. Plain FNV-1a is stable across processes and Go versions
// (unlike maphash) but mixes the short, similar vnode labels ("n1#0",
// "n1#1", ...) poorly — adjacent labels land on adjacent ring points
// and the load imbalance blows past 2x; the finalizer restores
// avalanche without giving up stability.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //lint:allow errcheck fnv.Write never fails
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the member ids, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes returns the configured virtual nodes per member.
func (r *Ring) VNodes() int { return r.vnodes }

// search returns the index of the first ring point at or clockwise of
// the key's hash (wrapping past the top of the circle).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Successors returns up to n distinct members clockwise of key's
// owner, excluding the owner itself — the replica set for key.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	start := r.search(key)
	owner := r.points[start].node
	seen := map[string]bool{owner: true}
	var succ []string
	for i := 1; i < len(r.points) && len(succ) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			succ = append(succ, p.node)
		}
	}
	return succ
}
