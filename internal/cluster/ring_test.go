package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2"}, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("alg1|%dx%d|1:0x1p-3:0x0p+00:0x1p+00", i, i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q under permuted membership", key, a.Owner(key), b.Owner(key))
		}
		if !reflect.DeepEqual(a.Successors(key, 2), b.Successors(key, 2)) {
			t.Fatalf("key %q: successors differ under permuted membership", key)
		}
	}
}

func TestRingOwnerIsMember(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r := NewRing(nodes, 16)
	member := make(map[string]bool)
	for _, n := range nodes {
		member[n] = true
	}
	for i := 0; i < 500; i++ {
		if o := r.Owner(fmt.Sprintf("key-%d", i)); !member[o] {
			t.Fatalf("owner %q is not a member", o)
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(nodes, 128)
	counts := make(map[string]int)
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("model|%d", i))]++
	}
	// With 128 vnodes per member the load imbalance should stay well
	// inside 2x of fair share either way.
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): ring too unbalanced", n, counts[n], keys, fair)
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3", "n4"}, 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		owner := r.Owner(key)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("key %q: got %d successors, want 3", key, len(succ))
		}
		seen := map[string]bool{owner: true}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: successor %q repeats (owner %q, set %v)", key, s, owner, succ)
			}
			seen[s] = true
		}
	}
}

func TestRingSuccessorsCappedByMembership(t *testing.T) {
	r := NewRing([]string{"n1", "n2"}, 8)
	if got := r.Successors("k", 5); len(got) != 1 {
		t.Fatalf("2-node ring: %d successors, want 1", len(got))
	}
	if got := r.Successors("k", 0); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
}

func TestRingSingleNode(t *testing.T) {
	r := NewRing([]string{"solo"}, 4)
	if o := r.Owner("anything"); o != "solo" {
		t.Fatalf("owner %q, want solo", o)
	}
	if s := r.Successors("anything", 2); len(s) != 0 {
		t.Fatalf("single-node ring has successors %v", s)
	}
}

func TestRingDuplicateMembersCollapse(t *testing.T) {
	a := NewRing([]string{"x", "y", "x"}, 8)
	b := NewRing([]string{"x", "y"}, 8)
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("nodes %v vs %v", a.Nodes(), b.Nodes())
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("duplicate membership changed ownership of %q", k)
		}
	}
}

func TestRingMoreVNodesSmoothsBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	spread := func(vnodes int) int {
		r := NewRing(nodes, vnodes)
		counts := make(map[string]int)
		for i := 0; i < 20000; i++ {
			counts[r.Owner(fmt.Sprintf("key-%d", i))]++
		}
		lo, hi := 1<<30, 0
		for _, n := range nodes {
			lo, hi = min(lo, counts[n]), max(hi, counts[n])
		}
		return hi - lo
	}
	if s1, s256 := spread(1), spread(256); s256 >= s1 {
		t.Errorf("spread with 256 vnodes (%d) not tighter than with 1 (%d)", s256, s1)
	}
}
