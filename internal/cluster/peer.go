package cluster

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// Backoff schedule for a peer that failed at the transport level: the
// first failure gates reconnects for reconnectBase, doubling per
// consecutive failure up to reconnectCap. While gated, Forward fails
// fast (the caller falls over to local compute) instead of paying a
// dial timeout per request.
const (
	reconnectBase = 250 * time.Millisecond
	reconnectCap  = 15 * time.Second
)

// Peer is one remote cluster member: its base URL, the shared HTTP
// client, and its health state. Health is request-driven — there is no
// prober goroutine; the first request after the backoff window expires
// is the reconnect probe.
type Peer struct {
	id      string
	baseURL string
	client  *http.Client

	mu        sync.Mutex
	fails     int       // consecutive transport failures
	downUntil time.Time // zero when healthy
}

// newTransport builds the persistent connection pool every peer
// shares: long-lived keep-alive connections, bounded idle pool.
func newTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   2 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
}

// healthy reports whether the peer is currently forwardable: either it
// has no recorded failure, or its backoff window has expired (in which
// case the next request doubles as the reconnect probe).
func (p *Peer) healthy(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.downUntil.IsZero() || !now.Before(p.downUntil)
}

// reportSuccess clears the failure state after a completed exchange.
func (p *Peer) reportSuccess() {
	p.mu.Lock()
	p.fails = 0
	p.downUntil = time.Time{}
	p.mu.Unlock()
}

// reportFailure records a transport-level failure and extends the
// backoff gate exponentially.
func (p *Peer) reportFailure(now time.Time) {
	p.mu.Lock()
	p.fails++
	backoff := reconnectBase << min(p.fails-1, 10)
	if backoff > reconnectCap {
		backoff = reconnectCap
	}
	p.downUntil = now.Add(backoff)
	p.mu.Unlock()
}

// down reports whether the peer is inside its backoff window.
func (p *Peer) down(now time.Time) bool { return !p.healthy(now) }
