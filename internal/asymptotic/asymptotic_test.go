package asymptotic_test

import (
	"fmt"
	"math"
	"testing"

	"xbar/internal/asymptotic"
	"xbar/internal/core"
)

// classesOf converts a validated core.Switch into the tier's canonical
// per-route form, the same conversion core's dispatch layer performs.
func classesOf(sw core.Switch) []asymptotic.Class {
	out := make([]asymptotic.Class, len(sw.Classes))
	for i, c := range sw.Classes {
		out[i] = asymptotic.Class{A: c.A}
		out[i].Rho = c.Rho()
		if !c.IsPoisson() {
			out[i].BetaMu = c.BetaMu()
		}
	}
	return out
}

// batteryMix builds one named traffic mix at aggregate intensity l for
// an n x n switch. The mixes cover the regimes the tier must bound
// honestly: pure Poisson single- and multi-rate, Pascal (peaked),
// Bernoulli (smooth, finite population 2n), and a mixed wideband case.
func batteryMix(name string, n int, l float64) core.Switch {
	switch name {
	case "poisson1":
		return core.NewSwitch(n, n,
			core.AggregateClass{A: 1, AlphaTilde: l, Mu: 1})
	case "poisson13":
		return core.NewSwitch(n, n,
			core.AggregateClass{A: 1, AlphaTilde: l / 2, Mu: 1},
			core.AggregateClass{A: 3, AlphaTilde: l / 6, Mu: 1})
	case "pascal":
		return core.NewSwitch(n, n,
			core.AggregateClass{A: 1, AlphaTilde: l, BetaTilde: l, Mu: 1})
	case "smooth":
		return core.NewSwitch(n, n,
			core.AggregateClass{A: 1, AlphaTilde: l, BetaTilde: -l / float64(2*n), Mu: 1})
	case "mixed":
		return core.NewSwitch(n, n,
			core.AggregateClass{A: 1, AlphaTilde: l / 2, Mu: 1},
			core.AggregateClass{A: 2, AlphaTilde: l / 4, BetaTilde: l / 8, Mu: 0.5})
	}
	panic("unknown mix " + name)
}

var (
	batteryMixes = []string{"poisson1", "poisson13", "pascal", "smooth", "mixed"}
	// Aggregate intensities hitting roughly 10%/40%/70%/90% port
	// utilization for the Poisson a=1 mix (u = l (1-u)^2); the other
	// mixes land at nearby operating points.
	batteryLoads = []float64{0.125, 1.12, 7.8, 90}
	batterySizes = []int{16, 24, 32, 48, 64, 96, 128, 192, 256}
)

func relErr(got, want float64) float64 {
	if want == 0 { //lint:allow floatcmp exact zero guard for the relative-error denominator
		if got == 0 { //lint:allow floatcmp exact zero guard
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestErrorWithinBound is the tier's acceptance property: on every
// battery point where the exact solver runs, the relative error of
// every reported measure is within the estimate's own reported bound.
func TestErrorWithinBound(t *testing.T) {
	t.Parallel()
	for _, mix := range batteryMixes {
		for _, l := range batteryLoads {
			for _, n := range batterySizes {
				if n > 128 && testing.Short() {
					continue
				}
				sw := batteryMix(mix, n, l)
				if sw.Validate() != nil {
					continue // e.g. Pascal slope >= 1 at small n
				}
				name := fmt.Sprintf("%s/l=%g/n=%d", mix, l, n)
				exact, err := core.Solve(sw)
				if err != nil {
					t.Fatalf("%s: exact: %v", name, err)
				}
				est, err := asymptotic.Solve(sw.N1, sw.N2, classesOf(sw))
				if err != nil {
					t.Fatalf("%s: asymptotic: %v", name, err)
				}
				for r := range sw.Classes {
					b := est.Bound[r]
					if !(b > 0) || math.IsNaN(b) {
						t.Errorf("%s class %d: bound %v", name, r, b)
						continue
					}
					if e := relErr(est.NonBlocking[r], exact.NonBlocking[r]); e > b {
						t.Errorf("%s class %d: NB err %.3g exceeds bound %.3g (est %.6g exact %.6g)",
							name, r, e, b, est.NonBlocking[r], exact.NonBlocking[r])
					}
					if exact.Blocking[r] > 1e-300 {
						if e := relErr(est.Blocking[r], exact.Blocking[r]); e > b {
							t.Errorf("%s class %d: B err %.3g exceeds bound %.3g (est %.6g exact %.6g)",
								name, r, e, b, est.Blocking[r], exact.Blocking[r])
						}
					}
					if e := relErr(est.Concurrency[r], exact.Concurrency[r]); e > b {
						t.Errorf("%s class %d: E err %.3g exceeds bound %.3g (est %.6g exact %.6g)",
							name, r, e, b, est.Concurrency[r], exact.Concurrency[r])
					}
				}
				if d := math.Abs(est.LogG - exact.LogG); d > est.LogGErr {
					t.Errorf("%s: lnG err %.3g exceeds LogGErr %.3g (est %.6g exact %.6g)",
						name, d, est.LogGErr, est.LogG, exact.LogG)
				}
			}
		}
	}
}

// TestBoundCalibration reports the worst |error|/bound ratio over the
// battery (the safety-factor headroom) and fails if any usable bound
// is consumed past 90% — the margin that keeps TestErrorWithinBound
// robust on operating points between the battery's.
func TestBoundCalibration(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("calibration sweep needs the full battery")
	}
	worst, worstAt := 0.0, ""
	for _, mix := range batteryMixes {
		for _, l := range batteryLoads {
			for _, n := range batterySizes {
				sw := batteryMix(mix, n, l)
				if sw.Validate() != nil {
					continue
				}
				exact, err := core.Solve(sw)
				if err != nil {
					t.Fatalf("exact: %v", err)
				}
				est, err := asymptotic.Solve(sw.N1, sw.N2, classesOf(sw))
				if err != nil {
					t.Fatalf("asymptotic: %v", err)
				}
				for r := range sw.Classes {
					if est.Bound[r] >= asymptotic.BoundUnusable {
						continue // self-declared unusable; dispatch goes exact
					}
					ratio := relErr(est.Blocking[r], exact.Blocking[r]) / est.Bound[r]
					ratio = math.Max(ratio, relErr(est.Concurrency[r], exact.Concurrency[r])/est.Bound[r])
					if ratio > worst {
						worst, worstAt = ratio, fmt.Sprintf("%s/l=%g/n=%d class %d", mix, l, n, r)
					}
				}
			}
		}
	}
	t.Logf("worst error/bound ratio %.3f at %s", worst, worstAt)
	if worst > 0.9 {
		t.Errorf("bound margin exhausted: worst error/bound %.3f at %s", worst, worstAt)
	}
}

// TestBoundShrinksWithSize pins the expansion's reason to exist: at a
// fixed operating point the reported bound decreases with switch size
// (these sizes are asymptotic-only in practice, no exact run needed),
// and for the single-rate mixes it is below the default dispatch
// tolerance well inside the size range the exact solver cannot serve.
func TestBoundShrinksWithSize(t *testing.T) {
	t.Parallel()
	for _, mix := range batteryMixes {
		small := batteryMix(mix, 256, 1.12)
		large := batteryMix(mix, 2048, 1.12)
		estS, err := asymptotic.Solve(small.N1, small.N2, classesOf(small))
		if err != nil {
			t.Fatalf("%s n=256: %v", mix, err)
		}
		estL, err := asymptotic.Solve(large.N1, large.N2, classesOf(large))
		if err != nil {
			t.Fatalf("%s n=2048: %v", mix, err)
		}
		if estL.MaxBound() >= estS.MaxBound() {
			t.Errorf("%s: bound did not shrink: n=256 %.3g vs n=2048 %.3g", mix, estS.MaxBound(), estL.MaxBound())
		}
	}
	for _, mix := range []string{"poisson1", "smooth"} {
		sw := batteryMix(mix, 2048, 1.12)
		est, err := asymptotic.Solve(sw.N1, sw.N2, classesOf(sw))
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		if est.MaxBound() > 0.01 {
			t.Errorf("%s: n=2048 bound %.3g above the default dispatch tolerance", mix, est.MaxBound())
		}
	}
}

// TestValidation covers the tier's input contract.
func TestValidation(t *testing.T) {
	t.Parallel()
	ok := []asymptotic.Class{{A: 1, Rho: 0.01}}
	cases := []struct {
		name    string
		n1, n2  int
		classes []asymptotic.Class
	}{
		{"zero dim", 0, 8, ok},
		{"no classes", 8, 8, nil},
		{"bad a", 8, 8, []asymptotic.Class{{A: 0, Rho: 0.01}}},
		{"bad rho", 8, 8, []asymptotic.Class{{A: 1, Rho: -1}}},
		{"nan rho", 8, 8, []asymptotic.Class{{A: 1, Rho: math.NaN()}}},
		{"pascal radius", 8, 8, []asymptotic.Class{{A: 1, Rho: 0.01, BetaMu: 1}}},
		{"nan beta", 8, 8, []asymptotic.Class{{A: 1, Rho: 0.01, BetaMu: math.NaN()}}},
	}
	for _, tc := range cases {
		if _, err := asymptotic.Solve(tc.n1, tc.n2, tc.classes); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := asymptotic.Solve(8, 8, ok); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

// TestWideClassZero pins the exact boundary case: a class wider than
// the switch has NB = 0, B = 1, E = 0 with a zero bound.
func TestWideClassZero(t *testing.T) {
	t.Parallel()
	est, err := asymptotic.Solve(64, 64, []asymptotic.Class{
		{A: 1, Rho: 0.02},
		{A: 65, Rho: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.NonBlocking[1] != 0 || est.Blocking[1] != 1 || est.Concurrency[1] != 0 { //lint:allow floatcmp exact boundary case is computed, not approximated
		t.Errorf("wide class: NB=%v B=%v E=%v, want 0/1/0",
			est.NonBlocking[1], est.Blocking[1], est.Concurrency[1])
	}
}

// TestRectangular checks the expansion handles N1 != N2 (the wiring
// factors differ per side) against the exact solver.
func TestRectangular(t *testing.T) {
	t.Parallel()
	sw := core.NewSwitch(96, 160,
		core.AggregateClass{A: 1, AlphaTilde: 1.0, Mu: 1},
		core.AggregateClass{A: 2, AlphaTilde: 0.3, BetaTilde: 0.2, Mu: 1})
	exact, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	est, err := asymptotic.Solve(sw.N1, sw.N2, classesOf(sw))
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if e := relErr(est.Blocking[r], exact.Blocking[r]); e > est.Bound[r] {
			t.Errorf("class %d: B err %.3g exceeds bound %.3g", r, e, est.Bound[r])
		}
	}
}
