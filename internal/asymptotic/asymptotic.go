// Package asymptotic implements the large-N solver tier: a
// saddle-point / central-limit expansion of the product-form
// normalization constant G(N1, N2) with a second-order Edgeworth
// correction, turning the exact O(N1*N2*R) lattice fills into O(R)
// work per measure — and returning a computable error bound next to
// every estimate, so the dispatch layer (core.SolveAuto) can fall back
// to the exact algorithms whenever the expansion is not trustworthy.
//
// # Derivation sketch (full derivation in docs/ALGORITHMS.md)
//
// Ordering the product-form state by total occupancy s = k.A splits
// the normalization constant into a wiring factor and a traffic factor
// (the same decomposition core.SolveConvolution evaluates exactly):
//
//	G(N1, N2) = sum_s Psi(s) g(s),   Psi(s) = P(N1,s) P(N2,s),
//
// with P(n,s) = n!/(n-s)! and g(s) = [z^s] prod_r F_r(z) the
// coefficient sequence of the per-class generating functions
//
//	F_r(z) = exp(rho_r z^{a_r})                           (Poisson)
//	F_r(z) = (1 - (beta_r/mu_r) z^{a_r})^(-alpha_r/beta_r) (BPP)
//
// (the BPP form covers Pascal beta>0 inside its convergence radius and
// Bernoulli beta<0 everywhere). Tilting the count measure by z gives
// closed-form occupancy cumulants; the saddle point s* is the unique
// root of
//
//	m(z(s)) = s,   z(s) = (N1-s)(N2-s),
//
// where m is the tilted occupancy mean — the large-N limit of this
// equation is exactly the endpoint-independence fixed point of
// internal/approx, which is therefore the zeroth-order member of this
// expansion. Around s* the summand is log-concave with curvature
//
//	1/sigma^2 = 1/v* + 1/(N1-s*) + 1/(N2-s*),
//
// v* the tilted occupancy variance, and every measure becomes a smooth
// expectation under the (Edgeworth-corrected) Gaussian occupancy law:
//
//	NB_r = G(N - a_r I)/G(N) = E[ f_r(S) ],
//	f_r(s) = P(N1-s,a_r) P(N2-s,a_r) / (P(N1,a_r) P(N2,a_r)),
//
// expanded to third order in (S - s*) with the skewness-driven mean
// shift and third central moment of the Laplace density. Concurrency
// follows from the exact Poisson identity E_r = rho_r P(N1,a_r)
// P(N2,a_r) NB_r, and for state-dependent classes from the
// conditional-count expectation E_r = E[kappa1_r(z(S))] — the same
// smooth-expectation machinery, deliberately avoiding the lattice
// recursions' diagonal chain, whose per-level errors would compound
// multiplicatively over min(N)/a_r levels.
//
// # Error bounds
//
// Every estimate carries a relative error bound assembled from the
// computable magnitudes of the first *omitted* terms: the third/fourth
// dimensionless cumulants lambda3 = |kappa3|/sigma^3 and lambda4 =
// |kappa4|/sigma^4 of the occupancy law multiplied into the measure's
// log-derivative sensitivities, a Gaussian tail term in the distance
// (in sigmas) from the saturation and empty boundaries, and the
// discreteness/normalization shift. The safety factor is calibrated in
// asymptotic_test.go against the exact solver over a battery of sizes,
// traffic mixes and load levels; the property tests there pin
// |exact - estimate| <= bound * exact on every point of the battery.
// Bounds are intentionally conservative: they blow up (BoundUnusable)
// near saturation and at vanishing blocking, which is precisely when
// the dispatch layer should pay for an exact solve.
package asymptotic

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/floats"
)

// Class is one traffic class in canonical per-route form: a connection
// seizes A input and A output ports, offers per-route intensity
// Rho = alpha/mu, with burstiness parameter BetaMu = beta/mu (zero for
// Poisson, positive for Pascal/bursty, negative for Bernoulli/smooth).
type Class struct {
	A      int
	Rho    float64
	BetaMu float64
}

// BoundUnusable is the error bound reported when no finite expansion
// bound exists: the saddle sits within one route of saturation, or the
// blocking estimate vanishes so no relative bound on B is possible.
// Any sane dispatch tolerance is below it, forcing the exact tier.
const BoundUnusable = 1e12

// safety is the empirical safety factor multiplying the raw
// first-omitted-term magnitudes into the reported bound. Calibrated by
// TestBoundCalibration: the worst observed |error|/bound ratio across
// the battery stays below 1/2 at this setting.
const safety = 8.0

// SaddleInfo reports the saddle-point diagnostics of an estimate.
type SaddleInfo struct {
	// S is the saddle occupancy s*: the most probable number of busy
	// input (equivalently output) ports.
	S float64
	// Z is the tilt z* = (N1-s*)(N2-s*).
	Z float64
	// Sigma is the occupancy standard deviation under the Laplace
	// (Gaussian) approximation.
	Sigma float64
	// Skewness is the dimensionless third cumulant kappa3/sigma^3 of
	// the occupancy law (signed).
	Skewness float64
	// SaturationSigmas is (min(N1,N2) - s*)/sigma: how many standard
	// deviations the operating point sits from saturation. Small values
	// mean the Gaussian picture is breaking down.
	SaturationSigmas float64
	// InputUtilization and OutputUtilization are s*/N1 and s*/N2.
	InputUtilization, OutputUtilization float64
}

// Estimate is the asymptotic tier's answer: the measures of
// core.Result plus per-class relative error bounds and the saddle
// diagnostics.
type Estimate struct {
	N1, N2 int
	// NonBlocking, Blocking and Concurrency mirror core.Result, in
	// class order, clamped to their probability ranges.
	NonBlocking []float64
	Blocking    []float64
	Concurrency []float64
	// Bound[r] bounds the relative error of NonBlocking[r],
	// Blocking[r] and Concurrency[r] against the exact solution
	// (BoundUnusable when no finite bound exists).
	Bound []float64
	// LogG approximates ln G(N1,N2); LogGErr bounds its absolute error.
	LogG, LogGErr float64
	// Saddle holds the top-level saddle diagnostics.
	Saddle SaddleInfo
}

// MaxBound returns the largest per-class bound.
func (e *Estimate) MaxBound() float64 {
	m := 0.0
	for _, b := range e.Bound {
		m = math.Max(m, b)
	}
	return m
}

// cums holds the tilted occupancy cumulants at one tilt z: mean,
// variance, third and fourth cumulants of sum_r a_r K_r where K_r is
// the class-r connection count under the z-tilted product measure.
type cums struct {
	m, v, c3, c4 float64
}

// solver carries one Solve invocation's state: the model and the
// per-sub-switch saddle cache the bursty concurrency chains share.
type solver struct {
	n1, n2  int
	classes []Class
	// saddles caches sub-switch saddles by first dimension; every
	// sub-switch visited here shrinks both dimensions by the same
	// amount, so m1 determines m2.
	saddles map[int]*saddle
}

// saddle is the saddle-point data of one (sub-)switch: the tilt, the
// occupancy cumulants there, and the Laplace/Edgeworth coefficients of
// the occupancy density.
type saddle struct {
	m1, m2 int
	s, z   float64
	c      cums
	// sigma2 is the occupancy variance of the full (wiring-corrected)
	// measure; gamma and phi4 are the third and fourth derivatives of
	// its log-density at s*; lam3/lam4 the dimensionless Edgeworth
	// magnitudes; dSat/dZero the boundary distances in sigmas.
	sigma2, sigma float64
	gamma, phi4   float64
	lam3, lam4    float64
	dSat, dZero   float64
}

// cumulants evaluates the tilted occupancy cumulants at tilt z. ok is
// false when a Pascal class diverges there (tilt at or beyond its
// convergence radius 1/(beta/mu)) — the saddle search treats that as
// an infinite mean and moves toward smaller tilts.
func (sv *solver) cumulants(z float64) (cums, bool) {
	var c cums
	for i := range sv.classes {
		cl := &sv.classes[i]
		a := float64(cl.A)
		x := math.Pow(z, a)
		if floats.Zero(cl.BetaMu) {
			// Poisson: all count cumulants equal rho z^a.
			lam := cl.Rho * x
			c.m += a * lam
			c.v += a * a * lam
			c.c3 += a * a * a * lam
			c.c4 += a * a * a * a * lam
			continue
		}
		t := cl.BetaMu * x
		if t >= 1-1e-12 {
			return cums{}, false
		}
		// Negative binomial (t>0) / binomial (t<0) count cumulants in
		// the unified BPP form, cc = alpha/beta.
		cc := cl.Rho / cl.BetaMu
		d := 1 - t
		k1 := cc * t / d
		k2 := k1 / d
		k3 := k2 * (1 + t) / d
		k4 := k2 * (1 + 4*t + t*t) / (d * d)
		c.m += a * k1
		c.v += a * a * k2
		c.c3 += a * a * a * k3
		c.c4 += a * a * a * a * k4
	}
	if math.IsNaN(c.m) || math.IsInf(c.m, 0) {
		return cums{}, false
	}
	return c, true
}

// saddleAt solves the saddle equation m(z(s)) = s for the sub-switch
// (m1, m2) and assembles the Laplace/Edgeworth data. warm is a
// starting point (the adjacent level's saddle in a concurrency chain);
// outside (0, min) it is ignored. h(s) = m(z(s)) - s is strictly
// decreasing from h(0) > 0 to h(min) < 0, so the root is unique and
// bracketed; Newton steps are safeguarded by the shrinking bracket.
func (sv *solver) saddleAt(m1, m2 int, warm float64) *saddle {
	if sd, ok := sv.saddles[m1]; ok {
		return sd
	}
	fm1, fm2 := float64(m1), float64(m2)
	minN := math.Min(fm1, fm2)
	lo, hi := 0.0, minN
	s := warm
	if !(s > lo && s < hi) {
		s = minN / 2
	}
	for iter := 0; iter < 300; iter++ {
		z := (fm1 - s) * (fm2 - s)
		c, ok := sv.cumulants(z)
		if !ok {
			// Divergent tilt: the mean is effectively +inf, the saddle
			// lies at larger s (smaller z).
			lo = s
			s = (lo + hi) / 2
			continue
		}
		h := c.m - s
		if h > 0 {
			lo = s
		} else {
			hi = s
		}
		if math.Abs(h) <= 1e-13*(1+s) || hi-lo <= 1e-15*(1+hi) {
			break
		}
		// h'(s) = -(v/z)((m1-s)+(m2-s)) - 1 < 0.
		hp := -c.v/z*(fm1-s+fm2-s) - 1
		next := s - h/hp
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2
		}
		s = next
	}
	// Final evaluation at the converged s. Divergence is only possible
	// below the root, so halving toward hi always restores convergence.
	var c cums
	for i := 0; ; i++ {
		var ok bool
		c, ok = sv.cumulants((fm1 - s) * (fm2 - s))
		if ok || i >= 200 {
			break
		}
		s = (s + hi) / 2
	}
	z := (fm1 - s) * (fm2 - s)
	x1, x2 := fm1-s, fm2-s
	sigma2 := 1 / (1/c.v + 1/x1 + 1/x2)
	sigma := math.Sqrt(sigma2)
	v3 := c.v * c.v * c.v
	gamma := c.c3/v3 - 1/(x1*x1) - 1/(x2*x2)
	phi4 := c.c4/(v3*c.v) - 3*c.c3*c.c3/(v3*c.v*c.v) - 2*(1/(x1*x1*x1)+1/(x2*x2*x2))
	sd := &saddle{
		m1: m1, m2: m2, s: s, z: z, c: c,
		sigma2: sigma2, sigma: sigma,
		gamma: gamma, phi4: phi4,
		lam3:  math.Abs(gamma) * sigma2 * sigma,
		lam4:  math.Abs(phi4) * sigma2 * sigma2,
		dSat:  (minN - s) / sigma,
		dZero: s / sigma,
	}
	sv.saddles[m1] = sd
	return sd
}

// expectF estimates the class non-blocking probability at this saddle,
// NB = E[f_a(S)] with f_a(s) = P(m1-s,a)P(m2-s,a)/(P(m1,a)P(m2,a))
// extended to real s, together with a relative error bound. a > min
// dims is the exact boundary case NB = 0.
func (sd *saddle) expectF(a int) (nb, bound float64) {
	if a > min(sd.m1, sd.m2) {
		return 0, 0
	}
	// log f and its first three derivatives at s*: f = exp(L),
	// L(s) = sum_i ln(m1-s-i) + ln(m2-s-i) - ln(m1-i) - ln(m2-i).
	var lf, l1, l2, l3 float64
	for i := 0; i < a; i++ {
		x1 := float64(sd.m1-i) - sd.s
		x2 := float64(sd.m2-i) - sd.s
		if x1 <= 0 || x2 <= 0 {
			// Saddle within a of saturation: f changes sign inside one
			// sigma, the smooth expansion cannot bound anything.
			return 0, BoundUnusable
		}
		lf += math.Log(x1) + math.Log(x2) - math.Log(float64(sd.m1-i)) - math.Log(float64(sd.m2-i))
		u, w := 1/x1, 1/x2
		l1 -= u + w
		l2 -= u*u + w*w
		l3 -= 2 * (u*u*u + w*w*w)
	}
	r1 := l1
	r2 := l1*l1 + l2
	r3 := l1*l1*l1 + 3*l1*l2 + l3
	s2 := sd.sigma2
	// Edgeworth moments of S - s*: mean shift delta from the skewness,
	// variance sigma^2, third central moment kappa3 = gamma sigma^6.
	delta := sd.gamma * s2 * s2 / 2
	k3 := sd.gamma * s2 * s2 * s2
	corr := r1*delta + 0.5*r2*s2 + r3*k3/6
	// Resummed in log space: equal to f0 (1 + corr) through the
	// included orders, but exact for the Gaussian integral of the
	// linear log-derivative term, which keeps small NB estimates sane
	// deep toward saturation.
	nb = math.Exp(lf + corr)
	// Bound: first omitted terms. sf1..sf3 are the sensitivity scales
	// |f^(k)|/f sigma^k of the included orders; the omitted error is
	// O(lambda * sf) from the next cumulant corrections, O(sf2^2) from
	// the fourth f-derivative, plus boundary tails and the
	// discreteness/normalization shift of the saddle itself.
	sf1 := math.Abs(r1) * sd.sigma
	sf2 := 0.5 * math.Abs(r2) * s2
	sf3 := math.Abs(r3) * s2 * sd.sigma / 6
	sf := sf1 + sf2 + sf3
	edge := sd.lam3*sd.lam3 + sd.lam4
	tail := (math.Exp(-sd.dSat*sd.dSat/2) + math.Exp(-sd.dZero*sd.dZero/2)) * (1 + sf)
	shift := math.Abs(r1) * s2 * (0.5/(float64(sd.m1)-sd.s) + 0.5/(float64(sd.m2)-sd.s) + math.Abs(sd.c.c3)/(2*sd.c.v*sd.c.v))
	bound = safety * (edge*sf + sf2*sf2 + tail + shift)
	return nb, math.Min(bound, BoundUnusable)
}

// poissonE applies the exact Poisson concurrency identity
// E = rho P(N1,a) P(N2,a) NB, in logs so large route counts cannot
// overflow the intermediate permutation product. The relative bound is
// the NB bound: the identity itself is exact.
func (sv *solver) poissonE(c Class, nb float64) float64 {
	if nb <= 0 {
		return 0
	}
	lp := combin.LogPerm(sv.n1, c.A) + combin.LogPerm(sv.n2, c.A)
	return math.Exp(math.Log(c.Rho) + lp + math.Log(nb))
}

// classCums returns class cl's tilted count cumulants at tilt z
// (state-dependent classes only; the caller guards Poisson).
func classCums(cl Class, z float64) (k1, k2, k3, k4 float64) {
	t := cl.BetaMu * math.Pow(z, float64(cl.A))
	cc := cl.Rho / cl.BetaMu
	d := 1 - t
	k1 = cc * t / d
	k2 = k1 / d
	k3 = k2 * (1 + t) / d
	k4 = k2 * (1 + 4*t + t*t) / (d * d)
	return
}

// burstyE estimates E_r for a state-dependent class as the smooth
// conditional-count expectation: given total occupancy S = s, the
// class counts follow the traffic-only conditional law, whose class-r
// mean is kappa1_r at the tilt z(s) solving m(z) = s (local CLT
// conditioning). So
//
//	E_r = E[ phi(S) ],   phi(s) = kappa1_r(z(s)),
//
// expanded around s* exactly like expectF expands f, with
// phi^(k) obtained from the cumulant chain d/dlnz kappa_k = a kappa_{k+1}
// and dlnz/ds = 1/v. Unlike the exact lattice recursion's diagonal
// chain — whose per-level errors compound multiplicatively over
// min(N)/a levels — this is a single smooth expectation with the same
// error structure as NB.
func (sv *solver) burstyE(top *saddle, cl Class) (e, bound float64) {
	a := float64(cl.A)
	k1, k2, k3, k4 := classCums(cl, top.z)
	v := top.c.v
	c3, c4 := top.c.c3, top.c.c4
	v2 := v * v
	v3 := v2 * v
	phi0 := k1
	phi1 := a * k2 / v
	phi2 := (a*a*k3*v - a*k2*c3) / v3
	phi3 := a*a*a*k4/v3 - 3*a*a*k3*c3/(v3*v) - a*k2*c4/(v3*v) + 3*a*k2*c3*c3/(v3*v2)
	s2 := top.sigma2
	delta := top.gamma * s2 * s2 / 2
	kap3 := top.gamma * s2 * s2 * s2
	e = phi0 + phi1*delta + 0.5*phi2*s2 + phi3*kap3/6
	if !(phi0 > 0) || !(e > 0) {
		return math.Max(e, 0), BoundUnusable
	}
	// Relative sensitivities of the included orders, and the bound from
	// the first omitted terms — same assembly as expectF, plus the
	// conditioning error of replacing E[K_r | S] by the tilted mean
	// (third-cumulant over variance scale).
	q1 := math.Abs(phi1) * top.sigma / phi0
	q2 := 0.5 * math.Abs(phi2) * s2 / phi0
	q3 := math.Abs(phi3) * s2 * top.sigma / (6 * phi0)
	edge := top.lam3*top.lam3 + top.lam4
	tail := (math.Exp(-top.dSat*top.dSat/2) + math.Exp(-top.dZero*top.dZero/2)) * (1 + q1 + q2)
	x1 := float64(top.m1) - top.s
	x2 := float64(top.m2) - top.s
	shift := q1 / top.sigma * s2 * (0.5/x1 + 0.5/x2 + math.Abs(c3)/(2*v2))
	// Conditioning error: E[K_r | S] deviates from the tilted mean by
	// the skew shift of the two-component split (class r vs the rest).
	// It vanishes when class r is alone (conditioning is then exact:
	// K = S/a) and when both components are symmetric.
	cond := 0.0
	if vx, vy := a*a*k2, v-a*a*k2; vy > 1e-12*v {
		c3x := a * a * a * k3
		c3y := c3 - c3x
		tau2 := vx * vy / v
		cond = math.Abs(tau2*tau2*(c3x/(vx*vx*vx)-c3y/(vy*vy*vy))) / (2 * a * k1)
	}
	bound = safety * (edge*(q1+q2+q3) + q2*q2 + q3 + tail + shift + cond)
	return e, math.Min(bound, BoundUnusable)
}

// Solve evaluates the asymptotic tier for an N1 x N2 switch carrying
// the given classes (canonical per-route form, as core.Switch stores
// them). The cost is O(R) for Poisson-only mixes and O(R * min(N)/a)
// saddle refinements when bursty classes need their concurrency
// chains — no lattice is allocated or filled.
func Solve(n1, n2 int, classes []Class) (*Estimate, error) {
	if n1 < 1 || n2 < 1 {
		return nil, fmt.Errorf("asymptotic: switch dimensions %dx%d, must be >= 1x1", n1, n2)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("asymptotic: no traffic classes")
	}
	for i, c := range classes {
		if c.A < 1 {
			return nil, fmt.Errorf("asymptotic: class %d: a = %d, must be >= 1", i, c.A)
		}
		if !(c.Rho > 0) || math.IsInf(c.Rho, 0) {
			return nil, fmt.Errorf("asymptotic: class %d: rho = %v, must be positive and finite", i, c.Rho)
		}
		if math.IsNaN(c.BetaMu) || c.BetaMu >= 1 {
			return nil, fmt.Errorf("asymptotic: class %d: beta/mu = %v, must be < 1", i, c.BetaMu)
		}
	}
	sv := &solver{n1: n1, n2: n2, classes: classes, saddles: make(map[int]*saddle)}
	top := sv.saddleAt(n1, n2, 0)
	est := &Estimate{
		N1: n1, N2: n2,
		NonBlocking: make([]float64, len(classes)),
		Blocking:    make([]float64, len(classes)),
		Concurrency: make([]float64, len(classes)),
		Bound:       make([]float64, len(classes)),
		Saddle: SaddleInfo{
			S: top.s, Z: top.z, Sigma: top.sigma,
			Skewness:          top.gamma * top.sigma2 * top.sigma,
			SaturationSigmas:  top.dSat,
			InputUtilization:  top.s / float64(n1),
			OutputUtilization: top.s / float64(n2),
		},
	}
	for i, c := range classes {
		nb, nbB := top.expectF(c.A)
		var e, eB float64
		if floats.Zero(c.BetaMu) {
			e, eB = sv.poissonE(c, nb), nbB
		} else {
			e, eB = sv.burstyE(top, c)
		}
		if math.IsNaN(nb) || math.IsInf(nb, 0) || math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("asymptotic: class %d: measure overflow (a=%d at %dx%d); use the exact tier", i, c.A, n1, n2)
		}
		nb = math.Min(math.Max(nb, 0), 1)
		est.NonBlocking[i] = nb
		est.Blocking[i] = 1 - nb
		est.Concurrency[i] = e
		b := math.Max(nbB, eB)
		if blocking := 1 - nb; blocking > 0 {
			// The dispatch tolerance is quoted on blocking, the small
			// side of the probability: scale the NB bound across.
			b = math.Max(b, nbB*nb/blocking)
		} else {
			b = BoundUnusable
		}
		est.Bound[i] = math.Min(b, BoundUnusable)
	}
	// ln G by Laplace: wiring factor at s*, traffic factor at z*, and
	// the curvature ratio of the corrected vs tilted density.
	var sumLogF float64
	for _, c := range classes {
		x := math.Pow(top.z, float64(c.A))
		if floats.Zero(c.BetaMu) {
			sumLogF += c.Rho * x
			continue
		}
		sumLogF -= c.Rho / c.BetaMu * math.Log1p(-c.BetaMu*x)
	}
	lg1, _ := math.Lgamma(float64(n1) + 1)
	lg2, _ := math.Lgamma(float64(n2) + 1)
	lr1, _ := math.Lgamma(float64(n1) - top.s + 1)
	lr2, _ := math.Lgamma(float64(n2) - top.s + 1)
	est.LogG = lg1 - lr1 + lg2 - lr2 + sumLogF - top.s*math.Log(top.z) + 0.5*math.Log(top.sigma2/top.c.v)
	tail0 := math.Exp(-top.dSat*top.dSat/2) + math.Exp(-top.dZero*top.dZero/2)
	est.LogGErr = safety * (top.lam3*top.lam3 + top.lam4 + tail0)
	if math.IsNaN(est.LogG) || math.IsInf(est.LogG, 0) {
		return nil, fmt.Errorf("asymptotic: ln G overflow at %dx%d", n1, n2)
	}
	return est, nil
}
