package rng

import (
	"math"
	"testing"
)

// TestSubstreamDeterministic pins the farm's seeding contract: the
// substream for index i is a pure function of (parent seed, i), and
// taking one substream must not advance or perturb the parent.
func TestSubstreamDeterministic(t *testing.T) {
	a := NewStream(42).Substream(7)
	b := NewStream(42).Substream(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("substream(7) diverged at draw %d", i)
		}
	}

	parent := NewStream(42)
	want := make([]uint64, 20)
	probe := NewStream(42)
	for i := range want {
		want[i] = probe.Uint64()
	}
	parent.Substream(1)
	parent.Substream(2)
	for i, w := range want {
		if got := parent.Uint64(); got != w {
			t.Fatalf("Substream advanced the parent: draw %d got %x want %x", i, got, w)
		}
	}
}

// TestSubstreamsDisjoint checks pairwise independence the way the
// farm relies on it: the first draws of many sibling substreams, and
// of substreams of different parents, never collide. A 64-bit
// collision among a few thousand well-seeded streams has probability
// ~1e-13, so any hit means correlated seeding.
func TestSubstreamsDisjoint(t *testing.T) {
	seen := make(map[uint64]string, 4096)
	record := func(name string, v uint64) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("first draw collision between %s and %s", name, prev)
		}
		seen[v] = name
	}
	for _, seed := range []uint64{0, 1, 42, 1 << 60} {
		parent := NewStream(seed)
		for i := uint64(0); i < 512; i++ {
			sub := parent.Substream(i)
			record("substream", sub.Uint64())
		}
	}
}

// TestSubstreamSequencesDiffer checks sibling substreams produce
// different sequences, not merely different first draws.
func TestSubstreamSequencesDiffer(t *testing.T) {
	parent := NewStream(9)
	a, b := parent.Substream(0), parent.Substream(1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d of 64 draws matched between substream 0 and 1", same)
	}
}

// TestReseedMatchesNewStream pins the pooling contract: Reseed(s)
// reproduces NewStream(s) exactly, from any prior state.
func TestReseedMatchesNewStream(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 1000; i++ {
		s.Uint64() // scramble the state
	}
	s.Reseed(1234)
	fresh := NewStream(1234)
	for i := 0; i < 200; i++ {
		if s.Uint64() != fresh.Uint64() {
			t.Fatalf("Reseed diverged from NewStream at draw %d", i)
		}
	}
}

// TestExpUnitMoments checks the ziggurat exponential against the
// first three moments of Exp(1) — mean 1, E[X^2] = 2, E[X^3] = 6 —
// within Monte-Carlo tolerance.
func TestExpUnitMoments(t *testing.T) {
	const n = 2_000_000
	s := NewStream(3)
	var m1, m2, m3 float64
	for i := 0; i < n; i++ {
		x := s.ExpUnit()
		if x < 0 {
			t.Fatalf("draw %d: negative exponential %v", i, x)
		}
		m1 += x
		m2 += x * x
		m3 += x * x * x
	}
	m1 /= n
	m2 /= n
	m3 /= n
	if math.Abs(m1-1) > 0.003 {
		t.Errorf("mean = %v, want 1", m1)
	}
	if math.Abs(m2-2) > 0.02 {
		t.Errorf("second moment = %v, want 2", m2)
	}
	if math.Abs(m3-6) > 0.15 {
		t.Errorf("third moment = %v, want 6", m3)
	}
}

// TestExpUnitTailQuantiles checks the distribution beyond the
// ziggurat's rectangular layers (x > zigR is drawn by ExpUnitTail's
// memoryless tail branch): the survival function must still be e^-x.
func TestExpUnitTailQuantiles(t *testing.T) {
	const n = 4_000_000
	s := NewStream(8)
	var beyondR, beyond9 int
	for i := 0; i < n; i++ {
		x := s.ExpUnit()
		if x > zigR {
			beyondR++
		}
		if x > 9 {
			beyond9++
		}
	}
	checkRate := func(name string, count int, p float64) {
		got := float64(count) / n
		se := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 5*se {
			t.Errorf("%s: observed rate %.3g, want %.3g (5 sigma = %.2g)", name, got, p, 5*se)
		}
	}
	checkRate("P(X > zigR)", beyondR, math.Exp(-zigR))
	checkRate("P(X > 9)", beyond9, math.Exp(-9))
}

// TestExpUnitMatchesTables cross-checks the hand-inlined transcription
// contract used by the simulator's fused loop: recomputing a draw from
// the exported tables reproduces ExpUnit exactly.
func TestExpUnitMatchesTables(t *testing.T) {
	ref := NewStream(17)
	tr := NewStream(17)
	for i := 0; i < 100_000; i++ {
		want := ref.ExpUnit()
		u := tr.Uint64()
		zi := u & 255
		zj := u >> 11
		x := float64(zj) * ZigWE[zi]
		if zj >= ZigKE[zi] {
			x = tr.ExpUnitTail(zi, x)
		}
		if x != want {
			t.Fatalf("draw %d: transcription %v, ExpUnit %v", i, x, want)
		}
	}
}
