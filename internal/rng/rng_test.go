package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewStream(43)
	same := 0
	d := NewStream(42)
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewStream(7)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collide %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	s := NewStream(2)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := s.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.002 {
		t.Errorf("uniform variance %v", variance)
	}
}

func TestIntnUniform(t *testing.T) {
	s := NewStream(3)
	const n, buckets = 120000, 12
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		v := s.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d, want ~%v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	s := NewStream(4)
	const n = 200000
	rate := 2.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Exp(rate)
		if x < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01/rate {
		t.Errorf("exp mean %v, want %v", mean, 1/rate)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1/(rate*rate)) > 0.02/(rate*rate) {
		t.Errorf("exp variance %v, want %v", variance, 1/(rate*rate))
	}
}

func sampleMoments(d ServiceDist, n int, seed uint64) (mean, scv float64) {
	s := NewStream(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := d.Sample(s)
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	return mean, variance / (mean * mean)
}

// TestServiceDistMeans: every distribution's empirical mean matches its
// declared Mean(), the property the insensitivity experiments rely on.
func TestServiceDistMeans(t *testing.T) {
	const m = 1.7
	hyp, err := BalancedHyperExp2(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParetoWithMean(m, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	dists := []ServiceDist{
		Exponential{M: m},
		Deterministic{M: m},
		Erlang{K: 4, M: m},
		hyp,
		UniformDist{Lo: 0.7, Hi: 2.7},
		par,
	}
	for _, d := range dists {
		if math.Abs(d.Mean()-m) > 1e-9 {
			t.Errorf("%s: declared mean %v, want %v", d.Name(), d.Mean(), m)
		}
		got, _ := sampleMoments(d, 400000, 99)
		tol := 0.02 * m
		if d.Name() == "pareto" {
			tol = 0.06 * m // heavy tail converges slowly
		}
		if math.Abs(got-m) > tol {
			t.Errorf("%s: empirical mean %v, want %v", d.Name(), got, m)
		}
	}
}

// TestServiceDistVariability: the squared coefficients of variation
// order as designed (deterministic < erlang < exponential < hyperexp).
func TestServiceDistVariability(t *testing.T) {
	const m = 1.0
	_, scvDet := sampleMoments(Deterministic{M: m}, 10000, 1)
	_, scvErl := sampleMoments(Erlang{K: 4, M: m}, 200000, 2)
	_, scvExp := sampleMoments(Exponential{M: m}, 200000, 3)
	hyp, err := BalancedHyperExp2(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, scvHyp := sampleMoments(hyp, 200000, 4)
	if !(scvDet < scvErl && scvErl < scvExp && scvExp < scvHyp) {
		t.Errorf("scv ordering violated: det=%v erl=%v exp=%v hyp=%v",
			scvDet, scvErl, scvExp, scvHyp)
	}
	if math.Abs(scvErl-0.25) > 0.02 {
		t.Errorf("Erlang-4 scv %v, want 0.25", scvErl)
	}
	if math.Abs(scvHyp-4) > 0.3 {
		t.Errorf("hyperexp scv %v, want 4", scvHyp)
	}
}

func TestErlangPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Erlang{K:0} did not panic")
		}
	}()
	Erlang{K: 0, M: 1}.Sample(NewStream(1))
}

func TestBalancedHyperExp2Errors(t *testing.T) {
	if _, err := BalancedHyperExp2(1, 0.5); err == nil {
		t.Error("scv <= 1 accepted")
	}
	if _, err := BalancedHyperExp2(-1, 4); err == nil {
		t.Error("negative mean accepted")
	}
}

func TestParetoWithMeanErrors(t *testing.T) {
	if _, err := ParetoWithMean(1, 1); err == nil {
		t.Error("alpha <= 1 accepted")
	}
	if _, err := ParetoWithMean(0, 2.5); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	if !math.IsInf(Pareto{Alpha: 0.9, Xm: 1}.Mean(), 1) {
		t.Error("Pareto alpha < 1 should have infinite mean")
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	NewStream(1).Exp(0)
}
