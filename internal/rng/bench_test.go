package rng

import "testing"

// Sampling primitives are the irreducible per-event cost of the
// simulator hot path; these benchmarks track them individually.

func BenchmarkUint64(b *testing.B) {
	s := NewStream(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= s.Uint64()
	}
	sinkU = acc
}

func BenchmarkExpUnit(b *testing.B) {
	s := NewStream(1)
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += s.ExpUnit()
	}
	sinkF = acc
}

func BenchmarkExpLog(b *testing.B) {
	s := NewStream(1)
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += s.Exp(1)
	}
	sinkF = acc
}

func BenchmarkIntnPow2(b *testing.B) {
	s := NewStream(1)
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += s.Intn(16)
	}
	sinkI = acc
}

func BenchmarkIntn(b *testing.B) {
	s := NewStream(1)
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += s.Intn(100)
	}
	sinkI = acc
}

// Sinks defeat dead-code elimination of the benchmark bodies.
var (
	sinkU uint64
	sinkF float64
	sinkI int
)
