// Package rng provides deterministic, seedable random-number streams
// and the service-time distributions the simulator uses to test the
// paper's insensitivity claim (the product form depends on holding
// times only through their mean [7]).
//
// The generator is splitmix64-seeded xoshiro256**, a small, fast,
// well-tested PRNG implementable with the standard library only.
// Distinct Streams split from one seed are independent for simulation
// purposes.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Stream is a deterministic random number stream. The zero value is
// not ready to use; construct with NewStream.
type Stream struct {
	s [4]uint64
}

// NewStream returns a stream seeded from the given seed via splitmix64,
// so nearby seeds yield well-separated states.
func NewStream(seed uint64) *Stream {
	st := &Stream{}
	st.Reseed(seed)
	return st
}

// Reseed resets the stream in place to exactly the state NewStream
// would produce, so pooled simulator states can reuse one Stream
// across replications without allocating.
func (s *Stream) Reseed(seed uint64) {
	x := seed
	for i := range s.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (splitmix64 never produces it from all
	// four outputs, but be explicit).
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
}

// Split derives an independent child stream; the parent advances.
func (s *Stream) Split() *Stream {
	return NewStream(s.Uint64() ^ 0xd1b54a32d192ed03)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Substream returns the i-th child stream of s, derived from s's
// current state WITHOUT advancing it: unlike Split, calling
// Substream(i) any number of times, in any order, for any mix of
// indices, always yields the same streams. That is the property the
// replication farm needs — replication i's stream depends only on
// (seed, i), never on which worker ran it or how many substreams were
// taken before it. Substream is safe for concurrent use as long as no
// goroutine concurrently advances s.
//
// Children are seeded through two independent splitmix64 finalizer
// chains (one over the folded 256-bit parent state, one over the
// index), so distinct indices — and distinct parents — land in
// well-separated regions of the xoshiro256** state space.
func (s *Stream) Substream(i uint64) *Stream {
	fold := s.s[0] ^ bits.RotateLeft64(s.s[1], 17) ^ bits.RotateLeft64(s.s[2], 31) ^ bits.RotateLeft64(s.s[3], 47)
	return NewStream(mix64(fold) ^ mix64(i*0x9e3779b97f4a7c15+0xd1b54a32d192ed03))
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
// The formulation matters: bits.RotateLeft64 is a compiler intrinsic
// and the pre-update s.s[1] is held in one local, which together keep
// the method under the inlining budget — Uint64 must inline into the
// simulator's hot loop.
func (s *Stream) Uint64() uint64 {
	s1 := s.s[1]
	result := bits.RotateLeft64(s1*5, 7) * 9
	s.s[2] ^= s.s[0]
	s.s[3] ^= s1
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= s1 << 17
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics for n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		//lint:allow libpanic hot-path sampling primitive; n <= 0 is a caller bug, like a slice bound
		panic(fmt.Sprintf("rng: Intn(%d)", n))
	}
	bound := uint64(n)
	if bound&(bound-1) == 0 {
		// Power-of-two n: masking the low bits is already uniform.
		// One draw, no multiply, no rejection — and port counts in
		// simulated fabrics are very often powers of two.
		return int(s.Uint64() & (bound - 1))
	}
	// Lemire's multiply-shift rejection method, unbiased. bits.Mul64
	// compiles to one MUL on 64-bit targets.
	for {
		x := s.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Exp returns an exponential variate with the given rate (mean
// 1/rate). It panics for rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		//lint:allow libpanic hot-path sampling primitive; a non-positive rate is a caller bug
		panic(fmt.Sprintf("rng: Exp(rate=%v)", rate))
	}
	u := s.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Ziggurat tables for the unit exponential (Marsaglia & Tsang 2000),
// built at init from the layer recurrence in float64 throughout:
// 255 equal-area layers plus the exp tail at zigR. ZigKE[i] is the
// 53-bit threshold below which the draw is accepted without any
// transcendental call (~98.9% of draws), ZigWE[i] maps the 53-bit
// uniform onto layer i's width, and zigFE[i] = exp(-x_i) feeds the
// wedge rejection test. ZigKE/ZigWE and ExpUnitTail are exported so a
// fused hot loop can transcribe ExpUnit's three-instruction fast path
// inline (avoiding the register spills a call forces) and delegate
// only the ~1.1% slow path; treat the tables as read-only.
const (
	zigR = 7.69711747013104972      // tail start
	zigV = 0.0039496598225815571993 // per-layer area
	zigM = 1 << 53                  // uniform resolution
)

var (
	ZigKE [256]uint64
	ZigWE [256]float64
	zigFE [256]float64
)

func init() {
	de, te := zigR, zigR
	q := zigV / math.Exp(-zigR)
	ZigKE[0] = uint64((de / q) * zigM)
	ZigKE[1] = 0
	ZigWE[0] = q / zigM
	ZigWE[255] = de / zigM
	zigFE[0] = 1
	zigFE[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zigV/de + math.Exp(-de))
		ZigKE[i+1] = uint64((de / te) * zigM)
		te = de
		zigFE[i] = math.Exp(-de)
		ZigWE[i] = de / zigM
	}
}

// ExpUnit returns a unit-mean exponential variate via the ziggurat
// method: one Uint64 and two table lookups on the ~98.9% fast path,
// against a math.Log per draw for the inverse-CDF Exp. The simulator
// hot path draws every clock through it; Exp keeps the inverse-CDF
// form so existing seeded sequences elsewhere are unchanged.
// The ~1.1% of draws that miss the rectangular layer go through
// ExpUnitTail, so the fast path has no loop and stays inlinable.
func (s *Stream) ExpUnit() float64 {
	u := s.Uint64()
	i := u & 255
	j := u >> 11 // bits 11..63: disjoint from the layer index bits
	x := float64(j) * ZigWE[i]
	if j < ZigKE[i] {
		return x
	}
	return s.ExpUnitTail(i, x)
}

// ExpUnitTail resolves a ziggurat draw that fell outside layer i's
// rectangle at abscissa x: tail, wedge test, or full redraw — exactly
// the classic rejection loop.
func (s *Stream) ExpUnitTail(i uint64, x float64) float64 {
	for {
		if i == 0 {
			// Tail: exponential beyond zigR is memoryless.
			return zigR + s.Exp(1)
		}
		if zigFE[i]+s.Float64()*(zigFE[i-1]-zigFE[i]) < math.Exp(-x) {
			return x
		}
		u := s.Uint64()
		i = u & 255
		j := u >> 11
		x = float64(j) * ZigWE[i]
		if j < ZigKE[i] {
			return x
		}
	}
}

// ServiceDist is a holding-time distribution with a known mean, used to
// exercise the insensitivity property.
type ServiceDist interface {
	// Sample draws one holding time.
	Sample(s *Stream) float64
	// Mean returns the distribution's mean.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// Exponential is the exponential distribution with the given mean.
type Exponential struct{ M float64 }

func (d Exponential) Sample(s *Stream) float64 { return s.Exp(1 / d.M) }
func (d Exponential) Mean() float64            { return d.M }
func (d Exponential) Name() string             { return "exponential" }

// Deterministic holds every connection for exactly M.
type Deterministic struct{ M float64 }

func (d Deterministic) Sample(*Stream) float64 { return d.M }
func (d Deterministic) Mean() float64          { return d.M }
func (d Deterministic) Name() string           { return "deterministic" }

// Erlang is the Erlang-k distribution (sum of K exponentials) with
// overall mean M; squared coefficient of variation 1/K.
type Erlang struct {
	K int
	M float64
}

// Sample draws one Erlang-K variate. It panics if K < 1: Sample
// implements ServiceDist, whose signature has no error channel, so
// the K constraint must hold at construction.
func (d Erlang) Sample(s *Stream) float64 {
	if d.K < 1 {
		//lint:allow libpanic ServiceDist interface method has no error return; K is a construction-time constraint
		panic("rng: Erlang needs K >= 1")
	}
	rate := float64(d.K) / d.M
	total := 0.0
	for i := 0; i < d.K; i++ {
		total += s.Exp(rate)
	}
	return total
}
func (d Erlang) Mean() float64 { return d.M }
func (d Erlang) Name() string  { return fmt.Sprintf("erlang-%d", d.K) }

// HyperExp2 is a two-phase hyperexponential: with probability P the
// rate is R1, else R2. Squared coefficient of variation > 1.
type HyperExp2 struct {
	P      float64
	R1, R2 float64
}

func (d HyperExp2) Sample(s *Stream) float64 {
	if s.Float64() < d.P {
		return s.Exp(d.R1)
	}
	return s.Exp(d.R2)
}
func (d HyperExp2) Mean() float64 { return d.P/d.R1 + (1-d.P)/d.R2 }
func (d HyperExp2) Name() string  { return "hyperexp-2" }

// BalancedHyperExp2 builds a HyperExp2 with the given mean and squared
// coefficient of variation scv > 1, using balanced means
// (p/r1 = (1-p)/r2). Both parameters typically arrive from user
// scenario specs, so violations are reported as errors.
func BalancedHyperExp2(mean, scv float64) (HyperExp2, error) {
	if mean <= 0 {
		return HyperExp2{}, fmt.Errorf("rng: BalancedHyperExp2 needs mean > 0, got %v", mean)
	}
	if scv <= 1 {
		return HyperExp2{}, fmt.Errorf("rng: BalancedHyperExp2 needs scv > 1, got %v", scv)
	}
	p := 0.5 * (1 + math.Sqrt((scv-1)/(scv+1)))
	return HyperExp2{P: p, R1: 2 * p / mean, R2: 2 * (1 - p) / mean}, nil
}

// UniformDist is uniform on [Lo, Hi].
type UniformDist struct{ Lo, Hi float64 }

func (d UniformDist) Sample(s *Stream) float64 { return d.Lo + (d.Hi-d.Lo)*s.Float64() }
func (d UniformDist) Mean() float64            { return (d.Lo + d.Hi) / 2 }
func (d UniformDist) Name() string             { return "uniform" }

// Pareto is a Pareto distribution with shape Alpha > 1 (finite mean)
// and scale Xm: heavy-tailed holding times.
type Pareto struct {
	Alpha float64
	Xm    float64
}

func (d Pareto) Sample(s *Stream) float64 {
	u := 1 - s.Float64() // in (0, 1]
	return d.Xm / math.Pow(u, 1/d.Alpha)
}
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}
func (d Pareto) Name() string { return "pareto" }

// ParetoWithMean returns a Pareto with the given mean and shape.
// alpha must exceed 1 for the mean to be finite; like the other
// distribution constructors it reports bad user-supplied parameters
// as errors.
func ParetoWithMean(mean, alpha float64) (Pareto, error) {
	if mean <= 0 {
		return Pareto{}, fmt.Errorf("rng: ParetoWithMean needs mean > 0, got %v", mean)
	}
	if alpha <= 1 {
		return Pareto{}, fmt.Errorf("rng: ParetoWithMean needs alpha > 1, got %v", alpha)
	}
	return Pareto{Alpha: alpha, Xm: mean * (alpha - 1) / alpha}, nil
}
