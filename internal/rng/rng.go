// Package rng provides deterministic, seedable random-number streams
// and the service-time distributions the simulator uses to test the
// paper's insensitivity claim (the product form depends on holding
// times only through their mean [7]).
//
// The generator is splitmix64-seeded xoshiro256**, a small, fast,
// well-tested PRNG implementable with the standard library only.
// Distinct Streams split from one seed are independent for simulation
// purposes.
package rng

import (
	"fmt"
	"math"
)

// Stream is a deterministic random number stream. The zero value is
// not ready to use; construct with NewStream.
type Stream struct {
	s [4]uint64
}

// NewStream returns a stream seeded from the given seed via splitmix64,
// so nearby seeds yield well-separated states.
func NewStream(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	for i := range st.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (splitmix64 never produces it from all
	// four outputs, but be explicit).
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return st
}

// Split derives an independent child stream; the parent advances.
func (s *Stream) Split() *Stream {
	return NewStream(s.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics for n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		//lint:allow libpanic hot-path sampling primitive; n <= 0 is a caller bug, like a slice bound
		panic(fmt.Sprintf("rng: Intn(%d)", n))
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		x := s.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	return aHi*bHi + w2 + (w1 >> 32), a * b
}

// Exp returns an exponential variate with the given rate (mean
// 1/rate). It panics for rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		//lint:allow libpanic hot-path sampling primitive; a non-positive rate is a caller bug
		panic(fmt.Sprintf("rng: Exp(rate=%v)", rate))
	}
	u := s.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -math.Log(1-u) / rate
}

// ServiceDist is a holding-time distribution with a known mean, used to
// exercise the insensitivity property.
type ServiceDist interface {
	// Sample draws one holding time.
	Sample(s *Stream) float64
	// Mean returns the distribution's mean.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// Exponential is the exponential distribution with the given mean.
type Exponential struct{ M float64 }

func (d Exponential) Sample(s *Stream) float64 { return s.Exp(1 / d.M) }
func (d Exponential) Mean() float64            { return d.M }
func (d Exponential) Name() string             { return "exponential" }

// Deterministic holds every connection for exactly M.
type Deterministic struct{ M float64 }

func (d Deterministic) Sample(*Stream) float64 { return d.M }
func (d Deterministic) Mean() float64          { return d.M }
func (d Deterministic) Name() string           { return "deterministic" }

// Erlang is the Erlang-k distribution (sum of K exponentials) with
// overall mean M; squared coefficient of variation 1/K.
type Erlang struct {
	K int
	M float64
}

// Sample draws one Erlang-K variate. It panics if K < 1: Sample
// implements ServiceDist, whose signature has no error channel, so
// the K constraint must hold at construction.
func (d Erlang) Sample(s *Stream) float64 {
	if d.K < 1 {
		//lint:allow libpanic ServiceDist interface method has no error return; K is a construction-time constraint
		panic("rng: Erlang needs K >= 1")
	}
	rate := float64(d.K) / d.M
	total := 0.0
	for i := 0; i < d.K; i++ {
		total += s.Exp(rate)
	}
	return total
}
func (d Erlang) Mean() float64 { return d.M }
func (d Erlang) Name() string  { return fmt.Sprintf("erlang-%d", d.K) }

// HyperExp2 is a two-phase hyperexponential: with probability P the
// rate is R1, else R2. Squared coefficient of variation > 1.
type HyperExp2 struct {
	P      float64
	R1, R2 float64
}

func (d HyperExp2) Sample(s *Stream) float64 {
	if s.Float64() < d.P {
		return s.Exp(d.R1)
	}
	return s.Exp(d.R2)
}
func (d HyperExp2) Mean() float64 { return d.P/d.R1 + (1-d.P)/d.R2 }
func (d HyperExp2) Name() string  { return "hyperexp-2" }

// BalancedHyperExp2 builds a HyperExp2 with the given mean and squared
// coefficient of variation scv > 1, using balanced means
// (p/r1 = (1-p)/r2). Both parameters typically arrive from user
// scenario specs, so violations are reported as errors.
func BalancedHyperExp2(mean, scv float64) (HyperExp2, error) {
	if mean <= 0 {
		return HyperExp2{}, fmt.Errorf("rng: BalancedHyperExp2 needs mean > 0, got %v", mean)
	}
	if scv <= 1 {
		return HyperExp2{}, fmt.Errorf("rng: BalancedHyperExp2 needs scv > 1, got %v", scv)
	}
	p := 0.5 * (1 + math.Sqrt((scv-1)/(scv+1)))
	return HyperExp2{P: p, R1: 2 * p / mean, R2: 2 * (1 - p) / mean}, nil
}

// UniformDist is uniform on [Lo, Hi].
type UniformDist struct{ Lo, Hi float64 }

func (d UniformDist) Sample(s *Stream) float64 { return d.Lo + (d.Hi-d.Lo)*s.Float64() }
func (d UniformDist) Mean() float64            { return (d.Lo + d.Hi) / 2 }
func (d UniformDist) Name() string             { return "uniform" }

// Pareto is a Pareto distribution with shape Alpha > 1 (finite mean)
// and scale Xm: heavy-tailed holding times.
type Pareto struct {
	Alpha float64
	Xm    float64
}

func (d Pareto) Sample(s *Stream) float64 {
	u := 1 - s.Float64() // in (0, 1]
	return d.Xm / math.Pow(u, 1/d.Alpha)
}
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}
func (d Pareto) Name() string { return "pareto" }

// ParetoWithMean returns a Pareto with the given mean and shape.
// alpha must exceed 1 for the mean to be finite; like the other
// distribution constructors it reports bad user-supplied parameters
// as errors.
func ParetoWithMean(mean, alpha float64) (Pareto, error) {
	if mean <= 0 {
		return Pareto{}, fmt.Errorf("rng: ParetoWithMean needs mean > 0, got %v", mean)
	}
	if alpha <= 1 {
		return Pareto{}, fmt.Errorf("rng: ParetoWithMean needs alpha > 1, got %v", alpha)
	}
	return Pareto{Alpha: alpha, Xm: mean * (alpha - 1) / alpha}, nil
}
