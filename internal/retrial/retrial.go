// Package retrial relaxes the paper's blocked-calls-cleared assumption.
// The model states that "blocked requests are cleared from the system
// and the recovery is managed by the corresponding end-points at the
// boundaries of the network" — in a real network that recovery is a
// retry. Here a blocked request enters an orbit, waits an exponential
// back-off, and tries again (fresh uniform route), up to a maximum
// number of attempts before the end-point gives up.
//
// Retrials have no product form; the package is an event-driven
// simulator plus the limits that anchor it: with zero allowed retries
// it reproduces the cleared model exactly, and as the back-off grows
// long the retry stream thins to an ignorable trickle.
package retrial

import (
	"fmt"
	"math"

	"xbar/internal/core"
	"xbar/internal/eventq"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Config parameterizes a retrial simulation of a single-class (a = 1)
// crossbar.
type Config struct {
	// N1, N2 are the switch dimensions.
	N1, N2 int
	// Lambda is the total Poisson rate of FRESH requests.
	Lambda float64
	// Mu is the holding-time rate of established connections.
	Mu float64
	// RetryRate is the exponential back-off rate: a blocked request
	// retries after Exp(RetryRate). Ignored when MaxAttempts <= 1.
	RetryRate float64
	// MaxAttempts caps total attempts per request (1 = the paper's
	// cleared model; 0 defaults to 1).
	MaxAttempts int
	Seed        uint64
	Warmup      float64
	Horizon     float64
	Batches     int
}

// Result reports the retrial measures.
type Result struct {
	// Abandonment is the fraction of fresh requests that exhausted
	// every attempt without connecting — what the end-point user
	// finally experiences.
	Abandonment stats.CI
	// FirstAttemptBlocking is the fraction of fresh first attempts
	// blocked; with retries feeding back, it exceeds the cleared
	// model's blocking at the same fresh load.
	FirstAttemptBlocking stats.CI
	// MeanAttempts is the average number of attempts per fresh request
	// (connected or abandoned).
	MeanAttempts float64
	// MeanOrbit is the time-average number of requests waiting to
	// retry.
	MeanOrbit float64
	// Concurrency is the time-average number of established
	// connections.
	Concurrency stats.CI
	// Events counts processed events.
	Events int64
}

type event struct {
	kind int // 0 fresh arrival, 1 retry, 2 departure
	// For retries: attempts made so far. For departures: ports held.
	attempts int
	in, out  int
}

// Run simulates the retrial model.
func Run(cfg Config) (*Result, error) {
	if cfg.N1 < 1 || cfg.N2 < 1 {
		return nil, fmt.Errorf("retrial: %dx%d switch", cfg.N1, cfg.N2)
	}
	if cfg.Lambda <= 0 || cfg.Mu <= 0 {
		return nil, fmt.Errorf("retrial: lambda %v, mu %v", cfg.Lambda, cfg.Mu)
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 1
	}
	if maxAttempts < 1 {
		return nil, fmt.Errorf("retrial: max attempts %d", cfg.MaxAttempts)
	}
	if maxAttempts > 1 && cfg.RetryRate <= 0 {
		return nil, fmt.Errorf("retrial: retry rate %v with %d attempts", cfg.RetryRate, maxAttempts)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("retrial: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("retrial: need >= 2 batches")
	}

	stream := rng.NewStream(cfg.Seed)
	busyIn := make([]bool, cfg.N1)
	busyOut := make([]bool, cfg.N2)
	connected := 0
	orbit := 0

	start, end := cfg.Warmup, cfg.Warmup+cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	type counts struct{ fresh, freshBlocked, abandoned, attempts int64 }
	cs := make([]counts, batches)
	connArea := make([]float64, batches)
	orbitArea := make([]float64, batches)
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}

	var evs eventq.Queue[event]
	evs.Push(stream.Exp(cfg.Lambda), event{kind: 0})
	now := 0.0
	var events int64
	advance := func(t float64) {
		t1 := math.Min(t, end)
		if t1 > now && now < end {
			for cur := math.Max(now, start); cur < t1; {
				b := int((cur - start) / batchLen)
				if b < 0 || b >= batches {
					break
				}
				bEnd := start + batchLen*float64(b+1)
				seg := math.Min(t1, bEnd)
				connArea[b] += float64(connected) * (seg - cur)
				orbitArea[b] += float64(orbit) * (seg - cur)
				cur = seg
			}
		}
		now = t
	}

	attempt := func(attempts int) {
		// One attempt at a uniform route, charging statistics.
		b := batchOf(now)
		if b >= 0 {
			cs[b].attempts++
		}
		in := stream.Intn(cfg.N1)
		out := stream.Intn(cfg.N2)
		if !busyIn[in] && !busyOut[out] {
			busyIn[in] = true
			busyOut[out] = true
			connected++
			evs.Push(now+stream.Exp(cfg.Mu), event{kind: 2, in: in, out: out})
			return
		}
		if b >= 0 && attempts == 1 {
			cs[b].freshBlocked++
		}
		if attempts >= maxAttempts {
			if b >= 0 {
				cs[b].abandoned++
			}
			return
		}
		orbit++
		evs.Push(now+stream.Exp(cfg.RetryRate), event{kind: 1, attempts: attempts})
	}

	for evs.Len() > 0 {
		at, _ := evs.PeekTime()
		if at >= end {
			advance(end)
			break
		}
		_, ev := evs.Pop()
		advance(at)
		events++
		switch ev.kind {
		case 0:
			evs.Push(now+stream.Exp(cfg.Lambda), event{kind: 0})
			if b := batchOf(now); b >= 0 {
				cs[b].fresh++
			}
			attempt(1)
		case 1:
			orbit--
			attempt(ev.attempts + 1)
		case 2:
			busyIn[ev.in] = false
			busyOut[ev.out] = false
			connected--
		}
	}

	res := &Result{Events: events}
	var abandonB, firstB, connB []float64
	var totalFresh, totalAttempts int64
	for b := 0; b < batches; b++ {
		connB = append(connB, connArea[b]/batchLen)
		totalFresh += cs[b].fresh
		totalAttempts += cs[b].attempts
		res.MeanOrbit += orbitArea[b] / batchLen / float64(batches)
		if cs[b].fresh > 0 {
			abandonB = append(abandonB, float64(cs[b].abandoned)/float64(cs[b].fresh))
			firstB = append(firstB, float64(cs[b].freshBlocked)/float64(cs[b].fresh))
		}
	}
	if totalFresh > 0 {
		res.MeanAttempts = float64(totalAttempts) / float64(totalFresh)
	}
	ciOf := func(vals []float64) stats.CI {
		if len(vals) < 2 {
			return stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
		}
		return stats.BatchMeans(vals, 0.95)
	}
	res.Abandonment = ciOf(abandonB)
	res.FirstAttemptBlocking = ciOf(firstB)
	res.Concurrency = ciOf(connB)
	return res, nil
}

// ClearedBlocking returns the paper's blocked-calls-cleared blocking
// for the same switch and fresh load — the MaxAttempts = 1 anchor.
func ClearedBlocking(n1, n2 int, lambda, mu float64) (float64, error) {
	sw := core.Switch{N1: n1, N2: n2, Classes: []core.Class{{
		A: 1, Alpha: lambda / float64(n1*n2) / mu * mu, Mu: mu,
	}}}
	// Per-route alpha: total rate / (N1 N2 ordered routes).
	sw.Classes[0].Alpha = lambda / float64(n1*n2)
	res, err := core.Solve(sw)
	if err != nil {
		return 0, err
	}
	return res.Blocking[0], nil
}
