package retrial

import (
	"math"
	"testing"
)

func baseConfig() Config {
	return Config{
		N1: 6, N2: 6, Lambda: 4, Mu: 1,
		Seed: 1, Warmup: 2000, Horizon: 80000,
	}
}

// TestSingleAttemptReducesToCleared: MaxAttempts = 1 is exactly the
// paper's model; the simulated first-attempt blocking must match the
// product form.
func TestSingleAttemptReducesToCleared(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxAttempts = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ClearedBlocking(cfg.N1, cfg.N2, cfg.Lambda, cfg.Mu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FirstAttemptBlocking.Mean-want) > 2*res.FirstAttemptBlocking.HalfWidth {
		t.Errorf("first-attempt blocking %v vs cleared model %v", res.FirstAttemptBlocking, want)
	}
	// With one attempt, abandonment IS blocking and attempts = 1.
	if math.Abs(res.Abandonment.Mean-res.FirstAttemptBlocking.Mean) > 1e-12 {
		t.Errorf("abandonment %v != blocking %v at MaxAttempts=1",
			res.Abandonment.Mean, res.FirstAttemptBlocking.Mean)
	}
	if math.Abs(res.MeanAttempts-1) > 1e-12 {
		t.Errorf("mean attempts %v, want 1", res.MeanAttempts)
	}
	if res.MeanOrbit != 0 {
		t.Errorf("orbit %v, want 0", res.MeanOrbit)
	}
}

// TestRetriesReduceAbandonmentButRaiseCongestion: allowing retries cuts
// the user-visible abandonment while the retry feedback raises the
// blocking seen by fresh attempts.
func TestRetriesReduceAbandonmentButRaiseCongestion(t *testing.T) {
	cleared := baseConfig()
	cleared.MaxAttempts = 1
	base, err := Run(cleared)
	if err != nil {
		t.Fatal(err)
	}
	retry := baseConfig()
	retry.MaxAttempts = 5
	retry.RetryRate = 2
	retry.Seed = 2
	res, err := Run(retry)
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandonment.Mean >= base.Abandonment.Mean {
		t.Errorf("retries should cut abandonment: %v vs cleared %v",
			res.Abandonment.Mean, base.Abandonment.Mean)
	}
	if res.FirstAttemptBlocking.Mean <= base.FirstAttemptBlocking.Mean {
		t.Errorf("retry feedback should raise first-attempt blocking: %v vs %v",
			res.FirstAttemptBlocking.Mean, base.FirstAttemptBlocking.Mean)
	}
	if res.MeanAttempts <= 1 {
		t.Errorf("mean attempts %v, want > 1", res.MeanAttempts)
	}
	if res.MeanOrbit <= 0 {
		t.Errorf("orbit %v, want > 0", res.MeanOrbit)
	}
}

// TestMoreAttemptsCutAbandonment monotonically.
func TestMoreAttemptsCutAbandonment(t *testing.T) {
	prev := 2.0
	for _, attempts := range []int{1, 2, 4, 8} {
		cfg := baseConfig()
		cfg.MaxAttempts = attempts
		cfg.RetryRate = 2
		cfg.Seed = uint64(10 + attempts)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Abandonment.Mean >= prev {
			t.Errorf("attempts=%d: abandonment %v not decreasing", attempts, res.Abandonment.Mean)
		}
		prev = res.Abandonment.Mean
	}
}

// TestSlowRetryFixedPoint: retries never disappear in steady state —
// flow conservation routes every blocked request back eventually, no
// matter how slow the back-off — but a long back-off DECORRELATES the
// retry stream, so total attempts form an approximately Poisson stream
// at the inflated rate
//
//	Lambda_total = lambda (1 + B + B^2)          (MaxAttempts = 3),
//
// where B is the cleared-model blocking at Lambda_total: a fixed point
// solvable by iteration and matched by the simulation. This is the
// quantitative cost hidden by the paper's "recovery is managed by the
// end-points" assumption.
func TestSlowRetryFixedPoint(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxAttempts = 3
	cfg.RetryRate = 0.001 // back-off ~1000 holding times: decorrelated
	cfg.Horizon = 200000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Solve the fixed point B = Cleared(lambda (1 + B + B^2)).
	b := 0.0
	for i := 0; i < 200; i++ {
		total := cfg.Lambda * (1 + b + b*b)
		nb, err := ClearedBlocking(cfg.N1, cfg.N2, total, cfg.Mu)
		if err != nil {
			t.Fatal(err)
		}
		b = 0.5*b + 0.5*nb
	}
	if math.Abs(res.FirstAttemptBlocking.Mean-b) > 2*res.FirstAttemptBlocking.HalfWidth+0.03*b {
		t.Errorf("slow-retry first-attempt blocking %v vs fixed point %v",
			res.FirstAttemptBlocking, b)
	}
	// And the retry load strictly exceeds the no-retry baseline.
	cleared, err := ClearedBlocking(cfg.N1, cfg.N2, cfg.Lambda, cfg.Mu)
	if err != nil {
		t.Fatal(err)
	}
	if !(b > cleared) {
		t.Errorf("fixed-point blocking %v should exceed cleared %v", b, cleared)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{N1: 0, N2: 4, Lambda: 1, Mu: 1, Horizon: 10},
		{N1: 4, N2: 4, Lambda: 0, Mu: 1, Horizon: 10},
		{N1: 4, N2: 4, Lambda: 1, Mu: 0, Horizon: 10},
		{N1: 4, N2: 4, Lambda: 1, Mu: 1, Horizon: 0},
		{N1: 4, N2: 4, Lambda: 1, Mu: 1, Horizon: 10, MaxAttempts: -2},
		{N1: 4, N2: 4, Lambda: 1, Mu: 1, Horizon: 10, MaxAttempts: 3}, // no retry rate
		{N1: 4, N2: 4, Lambda: 1, Mu: 1, Horizon: 10, Batches: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxAttempts = 3
	cfg.RetryRate = 1
	cfg.Horizon = 5000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.MeanAttempts != b.MeanAttempts {
		t.Error("same seed diverged")
	}
}
