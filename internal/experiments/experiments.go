// Package experiments implements every regenerable table, figure,
// validation, Ablation and extension study of the reproduction; the
// cmd/experiments binary is a thin dispatcher over Steps. Each step
// prints a text rendering to stdout and writes a CSV into the given
// output directory; quick mode shortens simulation horizons.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"xbar/internal/admission"
	"xbar/internal/approx"
	"xbar/internal/clos"
	"xbar/internal/core"
	"xbar/internal/hotspot"
	"xbar/internal/inputq"
	"xbar/internal/ipp"
	"xbar/internal/link"
	"xbar/internal/minnet"
	"xbar/internal/network"
	"xbar/internal/overflow"
	"xbar/internal/parallel"
	"xbar/internal/report"
	"xbar/internal/retrial"
	"xbar/internal/sim"
	"xbar/internal/slotted"
	"xbar/internal/statespace"
	"xbar/internal/traffic"
	"xbar/internal/transient"
	"xbar/internal/wdm"
	"xbar/internal/workload"
)

// Step is one regenerable experiment: it prints a text rendering to
// stdout and writes a CSV into outDir.
type Step func(outDir string, quick bool) error

// Order lists the step names in presentation order.
func Order() []string {
	return []string{"Fig1", "Fig2", "Fig3", "Fig4", "Table1", "Table2", "SimCheck",
		"Ablation", "Baselines", "network", "admission", "ipp", "clos", "transient", "hotspot", "wdm", "retrial", "traffic", "overflow", "inputq", "figdense"}
}

// Steps maps experiment names to their implementations.
func Steps() map[string]Step {
	return map[string]Step{
		"Fig1":      Fig1,
		"Fig2":      Fig2,
		"Fig3":      Fig3,
		"Fig4":      Fig4,
		"Table1":    Table1,
		"Table2":    Table2,
		"SimCheck":  SimCheck,
		"Ablation":  Ablation,
		"Baselines": Baselines,
		"network":   NetworkExp,
		"admission": AdmissionExp,
		"ipp":       IPPExp,
		"clos":      ClosExp,
		"transient": TransientExp,
		"hotspot":   HotspotExp,
		"wdm":       WDMExp,
		"retrial":   RetrialExp,
		"traffic":   TrafficExp,
		"overflow":  OverflowExp,
		"inputq":    InputQExp,
		"figdense":  FigDense,
	}
}

func writeCSV(dir, name string, headers []string, rows [][]string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.CSV(f, headers, rows)
}

func seriesCSV(dir, name string, series []workload.Series) error {
	headers := []string{"N"}
	for _, s := range series {
		headers = append(headers, s.Label)
	}
	var rows [][]string
	for i, p := range series[0].Points {
		row := []string{strconv.Itoa(p.N)}
		for _, s := range series {
			row = append(row, report.FormatFloat(s.Points[i].Value))
		}
		rows = append(rows, row)
	}
	return writeCSV(dir, name, headers, rows)
}

func figure(out string, name, title string, gen func([]int) ([]workload.Series, error), ns []int) error {
	series, err := gen(ns)
	if err != nil {
		return err
	}
	if err := report.Chart(os.Stdout, title, series, 14); err != nil {
		return err
	}
	return seriesCSV(out, name+".csv", series)
}

func Fig1(out string, _ bool) error {
	return figure(out, "figure1", "Figure 1: blocking vs N, smooth (Bernoulli) traffic, alpha~=.0024",
		workload.Figure1, workload.FigureNs())
}

func Fig2(out string, _ bool) error {
	return figure(out, "figure2", "Figure 2: blocking vs N, peaky (Pascal) traffic, alpha~=.0024",
		workload.Figure2, workload.FigureNs())
}

func Fig3(out string, _ bool) error {
	return figure(out, "figure3", "Figure 3: one bursty class vs Poisson+bursty mix",
		workload.Figure3, workload.FigureNs())
}

func Fig4(out string, _ bool) error {
	return figure(out, "figure4", "Figure 4: multi-rate a=1 vs a=2 at constant total load tau=.0048",
		workload.Figure4, workload.Figure4Ns())
}

func Table1(out string, _ bool) error {
	rows := workload.Table1(workload.Figure4Ns())
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.N), report.FormatFloat(r.Rho1), report.FormatFloat(r.Rho2),
		})
	}
	headers := []string{"N1", "rho~1 (a=1)", "rho~2 (a=2)"}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	return writeCSV(out, "table1.csv", headers, cells)
}

// paperTable2 holds the values printed in the paper for side-by-side
// comparison: per set, per N, the blocking column and the revenue
// column.
var paperTable2 = map[int]map[int][2]float64{
	1: {1: {0.00239425, 0.00119725}, 2: {0.00358566, 0.00239163}, 4: {0.00418083, 0.00478041},
		8: {0.0044820, 0.00955794}, 16: {0.00464093, 0.0191128}, 32: {0.00473733, 0.0382221},
		64: {0.0048195, 0.0764381}, 128: {0.00492849, 0.152861}, 256: {0.00511868, 0.305671}},
	2: {1: {0.00239425, 0.00119725}, 2: {0.00358566, 0.00239163}, 4: {0.00418403, 0.0047804},
		8: {0.00449504, 0.00955782}, 16: {0.00467581, 0.0191122}, 32: {0.00481708, 0.0382193},
		64: {0.00498953, 0.0764266}, 128: {0.00527912, 0.152817}, 256: {0.00582948, 0.305646}},
	3: {1: {0.00477707, 0.00119463}, 2: {0.00714287, 0.00238357}, 4: {0.0083221, 0.00476149},
		8: {0.0089218, 0.00951723}, 16: {0.00924611, 0.0190283}, 32: {0.00945823, 0.0380486},
		64: {0.0096644, 0.0760824}, 128: {0.0099675, 0.152123}, 256: {0.010518, 0.304099}},
}

func Table2(out string, _ bool) error {
	headers := []string{"set", "N", "dW/drho1", "dW/d(b2/mu2)", "B (model)", "B (paper)", "B dev%", "W (model)", "W (paper)", "W dev%"}
	var cells [][]string
	for _, set := range workload.Table2Sets() {
		rows, err := workload.Table2(set, workload.Table2Ns())
		if err != nil {
			return err
		}
		for _, r := range rows {
			paper := paperTable2[set.Set][r.N]
			cells = append(cells, []string{
				strconv.Itoa(set.Set),
				strconv.Itoa(r.N),
				report.FormatFloat(r.GradRho1),
				report.FormatFloat(r.GradBeta2),
				report.FormatFloat(r.Blocking),
				report.FormatFloat(paper[0]),
				fmt.Sprintf("%+.2f", 100*(r.Blocking-paper[0])/paper[0]),
				report.FormatFloat(r.W),
				report.FormatFloat(paper[1]),
				fmt.Sprintf("%+.2f", 100*(r.W-paper[1])/paper[1]),
			})
		}
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	return writeCSV(out, "table2.csv", headers, cells)
}

func SimCheck(out string, quick bool) error {
	horizon := 400000.0
	if quick {
		horizon = 60000.0
	}
	type check struct {
		name string
		sw   core.Switch
	}
	checks := []check{
		{"Fig1 N=32 poisson", core.NewSwitch(32, 32,
			core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0024, Mu: 1})},
		{"Fig1 N=32 smooth", core.NewSwitch(32, 32,
			core.AggregateClass{Name: "s", A: 1, AlphaTilde: 0.0024, BetaTilde: -4e-6, Mu: 1})},
		{"Fig2 N=32 peaky", core.NewSwitch(32, 32,
			core.AggregateClass{Name: "k", A: 1, AlphaTilde: 0.0024, BetaTilde: 0.0024, Mu: 1})},
		{"Fig4 N=8 a=2", core.NewSwitch(8, 8,
			core.AggregateClass{Name: "w", A: 2, AlphaTilde: 0.000171, Mu: 1})},
		{"Table2 N=16 mix", workload.Table2Switch(workload.Table2Sets()[0], 16)},
	}
	headers := []string{"experiment", "class", "B analytic", "B simulated (CI)", "E analytic", "E simulated (CI)", "call blocking"}
	// The replications are independent by construction (fixed per-check
	// seeds), so they run on the bounded pool; rows come back in check
	// order, keeping the report and CSV deterministic.
	rowGroups, err := parallel.Map(workload.Workers, checks, func(i int, c check) ([][]string, error) {
		want, err := core.Solve(c.sw)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Config{
			Switch: c.sw, Seed: uint64(1000 + i), Warmup: horizon / 10, Horizon: horizon,
		})
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for r := range c.sw.Classes {
			cr := res.Classes[r]
			rows = append(rows, []string{
				c.name,
				c.sw.Classes[r].Name,
				report.FormatFloat(want.Blocking[r]),
				fmt.Sprintf("%.6f ± %.6f", 1-cr.TimeNonBlocking.Mean, cr.TimeNonBlocking.HalfWidth),
				report.FormatFloat(want.Concurrency[r]),
				fmt.Sprintf("%.5f ± %.5f", cr.Concurrency.Mean, cr.Concurrency.HalfWidth),
				fmt.Sprintf("%.6f", cr.CallBlocking.Mean),
			})
		}
		return rows, nil
	})
	if err != nil {
		return err
	}
	var cells [][]string
	for _, rows := range rowGroups {
		cells = append(cells, rows...)
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	return writeCSV(out, "simcheck.csv", headers, cells)
}

func Ablation(out string, _ bool) error {
	// Algorithm 1 (scaled) vs Algorithm 2 (MVA) vs unscaled float64 vs
	// the O(R) endpoint fixed point: agreement, runtime, and where the
	// unscaled recursion dies. (The approx column uses the all-Poisson
	// variant of the workload, since the fixed point does not model
	// state-dependent sources.)
	headers := []string{"N", "B alg1", "B alg2", "|alg1-alg2|", "unscaled",
		"B approx(P)", "B exact(P)", "t(alg1)", "t(alg2)", "t(approx)"}
	var cells [][]string
	for _, n := range []int{16, 32, 64, 85, 96, 128, 192, 256} {
		sw := core.NewSwitch(n, n,
			core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0012, Mu: 1},
			core.AggregateClass{Name: "b", A: 1, AlphaTilde: 0.0012, BetaTilde: 0.0012, Mu: 1},
		)
		t0 := time.Now() //lint:allow detrand wall-clock timing for the runtime column of the report
		a1, err := core.Solve(sw)
		if err != nil {
			return err
		}
		d1 := time.Since(t0)
		t0 = time.Now() //lint:allow detrand wall-clock timing for the runtime column of the report
		a2, err := core.SolveMVA(sw)
		if err != nil {
			return err
		}
		d2 := time.Since(t0)
		unscaled := "ok"
		if _, err := core.SolveUnscaled(sw); err != nil {
			unscaled = "UNDERFLOW"
		}
		poisson := core.NewSwitch(n, n,
			core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0024, Mu: 1})
		t0 = time.Now() //lint:allow detrand wall-clock timing for the runtime column of the report
		ap, err := approx.Solve(poisson, 1e-12, 10000)
		if err != nil {
			return err
		}
		d3 := time.Since(t0)
		pexact, err := core.Solve(poisson)
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			strconv.Itoa(n),
			report.FormatFloat(a1.Blocking[0]),
			report.FormatFloat(a2.Blocking[0]),
			report.FormatFloat(math.Abs(a1.Blocking[0] - a2.Blocking[0])),
			unscaled,
			report.FormatFloat(ap.Blocking[0]),
			report.FormatFloat(pexact.Blocking[0]),
			d1.Round(10 * time.Microsecond).String(),
			d2.Round(10 * time.Microsecond).String(),
			d3.Round(time.Microsecond).String(),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	return writeCSV(out, "ablation.csv", headers, cells)
}

func Baselines(out string, quick bool) error {
	// Async crossbar vs single multirate link (2-D vs 1-D resource),
	// and slotted crossbar vs MIN (single-stage vs multistage) at
	// matched sizes.
	fmt.Println("-- circuit-switched: pooled 1-D link vs specific-route N x N crossbar, same total offered load --")
	fmt.Println("   (a specific-route request blocks at ~2 x port utilization; a pooled link at Erlang-B rates)")
	headers := []string{"N", "load (erl)", "util", "B link (pooled)", "B crossbar (route)", "ratio"}
	var cells [][]string
	for _, n := range []int{8, 16, 32} {
		erl := float64(n) * 0.3
		l := link.Link{C: n, Classes: []link.Class{{A: 1, Alpha: erl, Mu: 1}}}
		lres, err := link.Solve(l)
		if err != nil {
			return err
		}
		xres, err := core.Solve(l.CrossbarEquivalent())
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			strconv.Itoa(n),
			report.FormatFloat(erl),
			fmt.Sprintf("%.3f", xres.Utilization()),
			report.FormatFloat(lres.Blocking[0]),
			report.FormatFloat(xres.Blocking[0]),
			fmt.Sprintf("%.3g", xres.Blocking[0]/lres.Blocking[0]),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	if err := writeCSV(out, "baseline_link.csv", headers, cells); err != nil {
		return err
	}

	fmt.Println("\n-- packet-mode: slotted crossbar vs omega MIN throughput at saturation --")
	slots := 40000
	if quick {
		slots = 5000
	}
	headers2 := []string{"N", "crossbar analytic", "MIN recursion", "MIN simulated", "crossbar advantage"}
	var cells2 [][]string
	for _, n := range []int{4, 16, 64} {
		xbarT, err := slotted.Throughput(n, n, 1)
		if err != nil {
			return err
		}
		minT, err := minnet.Recursion(n, 1)
		if err != nil {
			return err
		}
		minSim, err := minnet.Simulate(n, 1, slots, 77)
		if err != nil {
			return err
		}
		adv, err := minnet.CrossbarAdvantage(n, 1)
		if err != nil {
			return err
		}
		cells2 = append(cells2, []string{
			strconv.Itoa(n),
			fmt.Sprintf("%.4f", xbarT),
			fmt.Sprintf("%.4f", minT),
			fmt.Sprintf("%.4f ± %.4f", minSim.PerOutput.Mean, minSim.PerOutput.HalfWidth),
			fmt.Sprintf("%.2fx", adv),
		})
	}
	if err := report.Table(os.Stdout, headers2, cells2); err != nil {
		return err
	}
	return writeCSV(out, "baseline_min.csv", headers2, cells2)
}

func NetworkExp(out string, quick bool) error {
	horizon := 200000.0
	if quick {
		horizon = 30000.0
	}
	net := network.Network{
		Switches: []network.Dim{{N1: 8, N2: 8}, {N1: 8, N2: 8}, {N1: 8, N2: 8}},
		Routes: []network.Route{
			{Name: "3-hop", Path: []int{0, 1, 2}, Rate: 1.2, Mu: 1},
			{Name: "edge-left", Path: []int{0}, Rate: 1.6, Mu: 1},
			{Name: "edge-right", Path: []int{2}, Rate: 1.6, Mu: 1},
			{Name: "2-hop", Path: []int{1, 2}, Rate: 0.8, Mu: 1},
		},
	}
	fp, err := network.FixedPoint(net, 1e-10, 500)
	if err != nil {
		return err
	}
	res, err := network.Simulate(net, network.SimConfig{Seed: 13, Warmup: horizon / 10, Horizon: horizon})
	if err != nil {
		return err
	}
	headers := []string{"route", "hops", "B fixed-point", "B simulated (CI)"}
	var cells [][]string
	for i, r := range net.Routes {
		cells = append(cells, []string{
			r.Name,
			strconv.Itoa(len(r.Path)),
			report.FormatFloat(fp.RouteBlocking[i]),
			fmt.Sprintf("%.5f ± %.5f", res.RouteBlocking[i].Mean, res.RouteBlocking[i].HalfWidth),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	fmt.Printf("fixed point converged in %d iterations; simulated %d events\n", fp.Iterations, res.Events)
	return writeCSV(out, "network.csv", headers, cells)
}

// AdmissionExp sweeps the trunk-reservation limit of a low-value
// class and reports the revenue-optimal policy (exact CTMC solve).
func AdmissionExp(out string, _ bool) error {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{Name: "gold", A: 1, Alpha: 0.05, Mu: 1},
		{Name: "lead", A: 1, Alpha: 0.08, Mu: 1},
	}}
	weights := []float64{1.0, 0.01}
	best, sweep, err := admission.OptimizeReservation(sw, weights, 1, 100000)
	if err != nil {
		return err
	}
	headers := []string{"lead limit", "W", "B gold", "B lead", "E gold", "E lead"}
	var cells [][]string
	for t, ev := range sweep {
		mark := ""
		if ev.Limits[1] == best.Limits[1] {
			mark = "  <- optimal"
		}
		cells = append(cells, []string{
			strconv.Itoa(t),
			report.FormatFloat(ev.Revenue) + mark,
			report.FormatFloat(ev.CallBlocking[0]),
			report.FormatFloat(ev.CallBlocking[1]),
			report.FormatFloat(ev.Concurrency[0]),
			report.FormatFloat(ev.Concurrency[1]),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	fmt.Printf("optimal lead reservation limit: %d of %d (revenue %+.2f%% over no control)\n",
		best.Limits[1], sw.MinN(),
		100*(best.Revenue-sweep[len(sweep)-1].Revenue)/sweep[len(sweep)-1].Revenue)
	fmt.Println("(with equal-size classes the exact sweep is bang-bang: carry the class")
	fmt.Println(" fully or shed it, depending on whether w_r clears the shadow cost)")
	return writeCSV(out, "admission.csv", headers, cells)
}

// IPPExp compares a genuine on/off bursty source against its
// moment-matched BPP approximation — the use case the BPP family
// exists for.
func IPPExp(out string, quick bool) error {
	horizon := 300000.0
	if quick {
		horizon = 50000.0
	}
	headers := []string{"Z", "B sim (IPP, CI)", "B analytic (BPP fit)", "rel err %", "call blocking (IPP)"}
	var cells [][]string
	const n, m = 6, 1.5
	for i, z := range []float64{1.2, 1.6, 2.0, 2.4} {
		src, err := ipp.Design(m, z, 1)
		if err != nil {
			return err
		}
		approx, err := ipp.BPPApprox(n, n, src, 1)
		if err != nil {
			return err
		}
		res, err := ipp.SimulateCrossbar(n, n, src, 1, ipp.SimConfig{
			Seed: uint64(50 + i), Warmup: horizon / 20, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		simB := 1 - res.TimeNonBlocking.Mean
		cells = append(cells, []string{
			fmt.Sprintf("%.1f", z),
			fmt.Sprintf("%.5f ± %.5f", simB, res.TimeNonBlocking.HalfWidth),
			report.FormatFloat(approx.Blocking[0]),
			fmt.Sprintf("%+.2f", 100*(approx.Blocking[0]-simB)/simB),
			fmt.Sprintf("%.5f", res.CallBlocking.Mean),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	return writeCSV(out, "ipp.csv", headers, cells)
}

// ClosExp compares Clos configurations against the full crossbar:
// crosspoint savings vs internal blocking, and the Clos theorem.
func ClosExp(out string, quick bool) error {
	horizon := 40000.0
	if quick {
		horizon = 8000.0
	}
	headers := []string{"C(m,n,r)", "ports", "xpoints", "vs crossbar", "strict NB", "Lee B", "sim internal B"}
	var cells [][]string
	for _, c := range []clos.Network{
		{M: 4, N: 8, R: 8},
		{M: 8, N: 8, R: 8},
		{M: 12, N: 8, R: 8},
		{M: 15, N: 8, R: 8}, // m = 2n-1
	} {
		const load = 0.6
		lee, err := c.LeeBlocking(load)
		if err != nil {
			return err
		}
		res, err := clos.Simulate(c, clos.SimConfig{
			PerInputLoad: load, Mu: 1, Policy: clos.RandomAvailable,
			Seed: 21, Warmup: horizon / 10, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			fmt.Sprintf("C(%d,%d,%d)", c.M, c.N, c.R),
			strconv.Itoa(c.Ports()),
			strconv.Itoa(c.Crosspoints()),
			fmt.Sprintf("%.2fx", float64(c.Crosspoints())/float64(c.CrossbarCrosspoints())),
			fmt.Sprintf("%v", c.StrictSenseNonblocking()),
			report.FormatFloat(lee),
			fmt.Sprintf("%.6f ± %.6f", res.InternalBlocking.Mean, res.InternalBlocking.HalfWidth),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	fmt.Println("(m = 2n-1 row: zero internal blocking is the Clos theorem, observed on the event stream)")
	return writeCSV(out, "clos.csv", headers, cells)
}

// TransientExp shows the cold-start blocking trajectory toward the
// paper's stationary operating point.
func TransientExp(out string, _ bool) error {
	sw := workload.Table2Switch(workload.Table2Sets()[0], 8)
	chain, err := statespace.NewChain(sw, 100000)
	if err != nil {
		return err
	}
	pi0, err := transient.EmptyStart(chain)
	if err != nil {
		return err
	}
	times := []float64{0, 0.25, 0.5, 1, 2, 4, 8}
	traj, err := transient.BlockingTrajectory(chain, pi0, 0, times, transient.Options{})
	if err != nil {
		return err
	}
	stat, err := chain.Stationary()
	if err != nil {
		return err
	}
	target := chain.Measures(stat).Blocking[0]
	headers := []string{"t (holding times)", "blocking B(t)", "fraction of stationary"}
	var cells [][]string
	for i, tt := range times {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", tt),
			report.FormatFloat(traj[i]),
			fmt.Sprintf("%.4f", traj[i]/target),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	relax, err := transient.RelaxationTime(chain, 0.01, 50, transient.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("stationary blocking %.6g; within 1%% after %.2f holding times\n", target, relax)
	return writeCSV(out, "transient.csv", headers, cells)
}

// HotspotExp sweeps the hot-spot fraction and reports the split
// between hot and cold blocking (exact reduced chain + simulation).
func HotspotExp(out string, quick bool) error {
	horizon := 80000.0
	if quick {
		horizon = 15000.0
	}
	headers := []string{"hot fraction p", "B hot (exact)", "B cold (exact)", "hot util", "B hot (sim)", "B cold (sim)"}
	var cells [][]string
	for i, p := range []float64{1.0 / 8, 0.2, 0.4, 0.6} {
		m := hotspot.Model{N1: 8, N2: 8, Lambda: 4, Mu: 1, HotFraction: p}
		exact, err := hotspot.Solve(m)
		if err != nil {
			return err
		}
		res, err := hotspot.Simulate(m, hotspot.SimConfig{
			Seed: uint64(30 + i), Warmup: horizon / 10, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			fmt.Sprintf("%.3f", p),
			report.FormatFloat(1 - exact.HotNonBlocking),
			report.FormatFloat(1 - exact.ColdNonBlocking),
			fmt.Sprintf("%.4f", exact.HotUtilization),
			fmt.Sprintf("%.5f ± %.5f", res.HotBlocking.Mean, res.HotBlocking.HalfWidth),
			fmt.Sprintf("%.5f ± %.5f", res.ColdBlocking.Mean, res.ColdBlocking.HalfWidth),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	fmt.Println("(p = 1/N2 row is uniform traffic: hot and cold coincide with the paper's model)")
	return writeCSV(out, "hotspot.csv", headers, cells)
}

// WDMExp measures the wavelength-conversion gain on a multi-hop
// all-optical path: continuity-constrained vs converter-equipped,
// analytic approximations vs simulation.
func WDMExp(out string, quick bool) error {
	horizon := 120000.0
	if quick {
		horizon = 20000.0
	}
	headers := []string{"hops", "B continuity (sim)", "B continuity (Barry-Humblet)",
		"B conversion (sim)", "B conversion (Erlang-B^L)", "gain (sim)"}
	var cells [][]string
	for i, l := range []int{2, 4, 6} {
		p := wdm.Path{L: l, W: 8, Rate: 2, CrossRate: 2.5, Mu: 1}
		bh, err := p.ContinuityBlocking()
		if err != nil {
			return err
		}
		eb, err := p.ConversionBlocking()
		if err != nil {
			return err
		}
		nc, err := wdm.Simulate(p, wdm.SimConfig{
			Assignment: wdm.RandomFit, Seed: uint64(60 + i), Warmup: horizon / 10, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		cv, err := wdm.Simulate(p, wdm.SimConfig{
			Converters: true, Seed: uint64(70 + i), Warmup: horizon / 10, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		gain := nc.EndToEndBlocking.Mean / cv.EndToEndBlocking.Mean
		cells = append(cells, []string{
			strconv.Itoa(l),
			fmt.Sprintf("%.5f ± %.5f", nc.EndToEndBlocking.Mean, nc.EndToEndBlocking.HalfWidth),
			report.FormatFloat(bh),
			fmt.Sprintf("%.5f ± %.5f", cv.EndToEndBlocking.Mean, cv.EndToEndBlocking.HalfWidth),
			report.FormatFloat(eb),
			fmt.Sprintf("%.2fx", gain),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	return writeCSV(out, "wdm.csv", headers, cells)
}

// RetrialExp quantifies what the paper's blocked-calls-cleared
// assumption hides: retries cut abandonment but inflate congestion.
func RetrialExp(out string, quick bool) error {
	horizon := 120000.0
	if quick {
		horizon = 20000.0
	}
	headers := []string{"max attempts", "abandonment", "1st-attempt blocking", "mean attempts", "mean orbit"}
	var cells [][]string
	for i, attempts := range []int{1, 2, 4, 8} {
		cfg := retrial.Config{
			N1: 6, N2: 6, Lambda: 4, Mu: 1,
			MaxAttempts: attempts, RetryRate: 2,
			Seed: uint64(80 + i), Warmup: horizon / 10, Horizon: horizon,
		}
		res, err := retrial.Run(cfg)
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			strconv.Itoa(attempts),
			fmt.Sprintf("%.5f ± %.5f", res.Abandonment.Mean, res.Abandonment.HalfWidth),
			fmt.Sprintf("%.5f ± %.5f", res.FirstAttemptBlocking.Mean, res.FirstAttemptBlocking.HalfWidth),
			fmt.Sprintf("%.3f", res.MeanAttempts),
			fmt.Sprintf("%.3f", res.MeanOrbit),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	cleared, err := retrial.ClearedBlocking(6, 6, 4, 1)
	if err != nil {
		return err
	}
	fmt.Printf("cleared-model blocking at the same fresh load: %.5f\n", cleared)
	return writeCSV(out, "retrial.csv", headers, cells)
}

// TrafficExp shows the load-balancing dividend: a skewed traffic
// matrix before and after Sinkhorn balancing at the same total load.
func TrafficExp(out string, quick bool) error {
	horizon := 120000.0
	if quick {
		horizon = 20000.0
	}
	const n, lambda = 8, 7.0
	skewed := traffic.NewUniform(n, n)
	for j := 0; j < n; j++ {
		skewed[0][j] += 4 // hot input row
	}
	for i := 0; i < n; i++ {
		skewed[i][1] += 4 // hot output column
	}
	balanced, err := skewed.Sinkhorn(1e-10, 100000)
	if err != nil {
		return err
	}
	headers := []string{"matrix", "imbalance", "blocking (sim)", "carried E"}
	var cells [][]string
	for i, c := range []struct {
		name string
		m    traffic.Matrix
	}{{"skewed", skewed}, {"sinkhorn-balanced", balanced}, {"uniform", traffic.NewUniform(n, n)}} {
		res, err := traffic.Simulate(c.m, traffic.SimConfig{
			Lambda: lambda, Mu: 1, Seed: uint64(90 + i), Warmup: horizon / 10, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			c.name,
			fmt.Sprintf("%.3f", c.m.Imbalance()),
			fmt.Sprintf("%.5f ± %.5f", res.Blocking.Mean, res.Blocking.HalfWidth),
			fmt.Sprintf("%.3f", res.Concurrency.Mean),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	return writeCSV(out, "traffic.csv", headers, cells)
}

// OverflowExp closes the loop on the paper's Pascal-traffic premise:
// a crossbar's own blocked traffic, overflowed to a second switch, is
// peaky — and the BPP machinery predicts the secondary's loss where a
// mean-only Poisson fit cannot.
func OverflowExp(out string, quick bool) error {
	horizon := 400000.0
	if quick {
		horizon = 60000.0
	}
	headers := []string{"primary", "secondary", "overflow m", "overflow Z",
		"B secondary (sim)", "BPP fit", "Poisson fit"}
	var cells [][]string
	for i, c := range []struct {
		pn, sn int
		lam    float64
	}{{3, 6, 1.5}, {4, 6, 2.0}, {4, 8, 2.5}} {
		res, err := overflow.Run(overflow.Config{
			PrimaryN: c.pn, SecondaryN: c.sn, Lambda: c.lam, Mu: 1,
			Seed: uint64(100 + i), Warmup: horizon / 20, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		bpp, err := overflow.SecondaryBPPCallCongestion(c.sn, res.OverflowMean, res.OverflowPeakedness, 1)
		if err != nil {
			return err
		}
		poi, err := overflow.SecondaryPoissonApprox(c.sn, res.OverflowMean, 1)
		if err != nil {
			return err
		}
		cells = append(cells, []string{
			fmt.Sprintf("%dx%d @%.1f", c.pn, c.pn, c.lam),
			fmt.Sprintf("%dx%d", c.sn, c.sn),
			fmt.Sprintf("%.3f", res.OverflowMean),
			fmt.Sprintf("%.3f", res.OverflowPeakedness),
			fmt.Sprintf("%.4f ± %.4f", res.SecondaryBlocking.Mean, res.SecondaryBlocking.HalfWidth),
			report.FormatFloat(bpp),
			report.FormatFloat(poi),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	fmt.Println("(overflowed crossbar traffic is peaky (Z > 1); the BPP fit tracks the")
	fmt.Println(" measured loss while the Poisson fit underestimates it — the paper's premise)")
	return writeCSV(out, "overflow.csv", headers, cells)
}

// InputQExp contrasts the unbuffered loss switch with the buffered
// alternatives: FIFO input queueing hits the Karol-Hluchyj-Morgan HOL
// limit (2 - sqrt(2)) while output queueing is work-conserving.
func InputQExp(out string, quick bool) error {
	slots := 60000
	if quick {
		slots = 10000
	}
	headers := []string{"N", "IQ saturation (sim)", "KHM reference", "OQ saturation (sim)"}
	khm := map[int]float64{1: 1.0, 2: 0.75, 4: 0.6553, 8: 0.6184, 32: 0.5900, 64: 0.5879}
	var cells [][]string
	for _, n := range []int{2, 4, 8, 32} {
		iq, err := inputq.SaturationThroughput(n, slots, inputq.InputQueued, uint64(n))
		if err != nil {
			return err
		}
		oq, err := inputq.SaturationThroughput(n, slots, inputq.OutputQueued, uint64(n+100))
		if err != nil {
			return err
		}
		ref := "-"
		if v, ok := khm[n]; ok {
			ref = fmt.Sprintf("%.4f", v)
		}
		cells = append(cells, []string{
			strconv.Itoa(n),
			fmt.Sprintf("%.4f ± %.4f", iq.Mean, iq.HalfWidth),
			ref,
			fmt.Sprintf("%.4f ± %.4f", oq.Mean, oq.HalfWidth),
		})
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	fmt.Printf("HOL asymptote 2 - sqrt(2) = %.4f; the unbuffered optical switch avoids\n", inputq.SaturationHOL())
	fmt.Println("queueing delay entirely and trades it for loss — the paper's design point.")
	return writeCSV(out, "inputq.csv", headers, cells)
}

// FigDense regenerates Figures 1-3 on the dense N = 1..128 axis the
// paper plots, writing CSVs only (the ASCII charts use the sparse
// sweep).
func FigDense(out string, _ bool) error {
	ns := workload.DenseFigureNs()
	for _, f := range []struct {
		name string
		gen  func([]int) ([]workload.Series, error)
	}{
		{"figure1_dense", workload.Figure1},
		{"figure2_dense", workload.Figure2},
		{"figure3_dense", workload.Figure3},
	} {
		series, err := f.gen(ns)
		if err != nil {
			return err
		}
		if err := seriesCSV(out, f.name+".csv", series); err != nil {
			return err
		}
		fmt.Printf("%s.csv: %d sizes x %d series\n", f.name, len(ns), len(series))
	}
	return nil
}
