package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStepsRegistryComplete: every ordered name has an implementation
// and vice versa.
func TestStepsRegistryComplete(t *testing.T) {
	steps := Steps()
	order := Order()
	if len(steps) != len(order) {
		t.Fatalf("%d steps registered, %d ordered", len(steps), len(order))
	}
	for _, name := range order {
		if steps[name] == nil {
			t.Errorf("step %q missing", name)
		}
	}
}

// expectedCSV maps each step to the CSV files it must produce.
var expectedCSV = map[string][]string{
	"fig1":      {"figure1.csv"},
	"fig2":      {"figure2.csv"},
	"fig3":      {"figure3.csv"},
	"fig4":      {"figure4.csv"},
	"table1":    {"table1.csv"},
	"table2":    {"table2.csv"},
	"simcheck":  {"simcheck.csv"},
	"ablation":  {"ablation.csv"},
	"baselines": {"baseline_link.csv", "baseline_min.csv"},
	"network":   {"network.csv"},
	"admission": {"admission.csv"},
	"ipp":       {"ipp.csv"},
	"clos":      {"clos.csv"},
	"transient": {"transient.csv"},
	"hotspot":   {"hotspot.csv"},
	"wdm":       {"wdm.csv"},
	"retrial":   {"retrial.csv"},
	"traffic":   {"traffic.csv"},
	"overflow":  {"overflow.csv"},
	"inputq":    {"inputq.csv"},
	"figdense":  {"figure1_dense.csv", "figure2_dense.csv", "figure3_dense.csv"},
}

// TestEveryStepRunsQuick executes the full regeneration pipeline in
// quick mode into a temporary directory and checks each step's CSV
// artifacts appear and are non-empty. This is the integration test for
// the whole evaluation harness.
func TestEveryStepRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	dir := t.TempDir()
	// Silence the text renderings: the step output goes to stdout by
	// design; capture it away from the test log.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	steps := Steps()
	for _, name := range Order() {
		if err := steps[name](dir, true); err != nil {
			t.Fatalf("step %s: %v", name, err)
		}
		for _, f := range expectedCSV[name] {
			info, err := os.Stat(filepath.Join(dir, f))
			if err != nil {
				t.Fatalf("step %s: missing artifact %s: %v", name, f, err)
			}
			if info.Size() == 0 {
				t.Fatalf("step %s: empty artifact %s", name, f)
			}
		}
	}
}
