// Package eventq provides the time-ordered event queue every
// discrete-event simulator in this repository schedules on: a binary
// min-heap keyed by event time carrying an arbitrary payload. The
// zero value is an empty, ready-to-use queue.
package eventq

// Queue is a min-heap of (time, payload) pairs. Not safe for
// concurrent use; each simulator owns its queue.
type Queue[T any] struct {
	items []item[T]
}

type item[T any] struct {
	at float64
	v  T
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules a payload at the given time.
func (q *Queue[T]) Push(at float64, v T) {
	q.items = append(q.items, item[T]{at: at, v: v})
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].at <= q.items[i].at {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// PeekTime returns the earliest scheduled time, with ok = false when
// the queue is empty.
func (q *Queue[T]) PeekTime() (at float64, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}

// Pop removes and returns the earliest event. It panics on an empty
// queue — popping nothing is always a simulator logic error.
func (q *Queue[T]) Pop() (at float64, v T) {
	if len(q.items) == 0 {
		//lint:allow libpanic heap discipline invariant, same contract as container/heap
		panic("eventq: Pop on empty queue")
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero item[T]
	q.items[last] = zero // release payload references
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.items[l].at < q.items[smallest].at {
			smallest = l
		}
		if r < len(q.items) && q.items[r].at < q.items[smallest].at {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top.at, top.v
}
