// Package eventq provides the time-ordered event queues every
// discrete-event simulator in this repository schedules on.
//
// Queue is a 4-ary min-heap keyed by event time carrying an arbitrary
// payload — the general-purpose structure, correct for any push/pop
// pattern. The zero value is an empty, ready-to-use queue; New
// pre-sizes the backing array and Reset recycles it, so a simulator
// that runs many replications never re-allocates. Both sifts are
// hole-punching: the moved item is held in a register while the hole
// walks the tree, one write per level instead of the three a pairwise
// swap costs, and the 4-ary layout halves the tree depth of the
// binary heap for the same length.
//
// Calendar is a bucketed calendar queue specialized for the
// simulator's departure workload, where almost every event is
// scheduled within a few mean holding times of the current clock:
// push and pop are O(1) amortized instead of O(log n). It requires
// the monotone-clock contract (every Push at or after the last Pop)
// that a discrete-event loop satisfies by construction.
package eventq

import "math"

// Queue is a 4-ary min-heap of (time, payload) pairs. Not safe for
// concurrent use; each simulator owns its queue. The zero value is
// ready to use.
type Queue[T any] struct {
	items []item[T]
}

type item[T any] struct {
	at float64
	v  T
}

// New returns a queue whose backing array is pre-sized for capacity
// events, so steady-state operation up to that length never allocates.
func New[T any](capacity int) *Queue[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Queue[T]{items: make([]item[T], 0, capacity)}
}

// Reset empties the queue in place, releasing payload references but
// keeping the backing array for reuse.
func (q *Queue[T]) Reset() {
	clear(q.items)
	q.items = q.items[:0]
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules a payload at the given time.
func (q *Queue[T]) Push(at float64, v T) {
	// Hole-punching sift-up: append a hole, walk it toward the root,
	// and write the new item exactly once at its final position.
	q.items = append(q.items, item[T]{})
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if q.items[parent].at <= at {
			break
		}
		q.items[i] = q.items[parent]
		i = parent
	}
	q.items[i] = item[T]{at: at, v: v}
}

// PeekTime returns the earliest scheduled time, with ok = false when
// the queue is empty.
func (q *Queue[T]) PeekTime() (at float64, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}

// Pop removes and returns the earliest event. It panics on an empty
// queue — popping nothing is always a simulator logic error.
func (q *Queue[T]) Pop() (at float64, v T) {
	n := len(q.items)
	if n == 0 {
		//lint:allow libpanic heap discipline invariant, same contract as container/heap
		panic("eventq: Pop on empty queue")
	}
	top := q.items[0]
	n--
	moved := q.items[n]
	var zero item[T]
	q.items[n] = zero // release payload references
	q.items = q.items[:n]
	if n > 0 {
		// Hole-punching sift-down: hoist the moved item and let the
		// hole descend through the smallest child at each level.
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q.items[j].at < q.items[m].at {
					m = j
				}
			}
			if q.items[m].at >= moved.at {
				break
			}
			q.items[i] = q.items[m]
			i = m
		}
		q.items[i] = moved
	}
	return top.at, top.v
}

// Calendar is a bucketed calendar queue: time is divided into
// fixed-width buckets covering a sliding window of buckets*width;
// events beyond the window overflow into a heap and are drained
// bucket-ward when the window advances past them. With the window
// sized to a few mean holding times and the bucket count to the
// expected number of pending events, each bucket holds O(1) events
// and push/pop are O(1) amortized.
//
// Contract: every Push time must be at or after the time of the most
// recent Pop (the monotone simulation clock). Events pushed behind
// the current bucket's range — legal under that contract when the
// cursor has skipped over empty buckets — are clamped into the
// current bucket, which keeps ordering exact because the current
// bucket is always drained by minimum scan.
type Calendar[T any] struct {
	buckets  [][]item[T]
	width    float64
	invWidth float64
	start    float64 // time at which bucket 0's range begins
	cur      int     // bucket currently being drained
	n        int     // events in buckets + overflow
	overflow Queue[T]
	// Cached minimum of buckets[cur]; idx < 0 means unknown.
	minIdx int
	minAt  float64
}

// NewCalendar returns a calendar queue with the given bucket width
// and bucket count (rounded up to a power of two, minimum 8). width
// must be positive; pick the mean gap between successive events —
// for the simulator's departures, mean holding time over the number
// of concurrent connections.
func NewCalendar[T any](width float64, buckets int) *Calendar[T] {
	if width <= 0 {
		//lint:allow libpanic construction-time invariant; a non-positive width is a caller bug
		panic("eventq: NewCalendar needs width > 0")
	}
	nb := 8
	for nb < buckets {
		nb *= 2
	}
	return &Calendar[T]{
		buckets:  make([][]item[T], nb),
		width:    width,
		invWidth: 1 / width,
		minIdx:   -1,
	}
}

// Reset empties the calendar in place, keeping every bucket's backing
// array for reuse and rewinding the window to time zero.
func (c *Calendar[T]) Reset() {
	for i := range c.buckets {
		clear(c.buckets[i])
		c.buckets[i] = c.buckets[i][:0]
	}
	c.overflow.Reset()
	c.start = 0
	c.cur = 0
	c.n = 0
	c.minIdx = -1
}

// Len returns the number of pending events.
func (c *Calendar[T]) Len() int { return c.n }

// Push schedules a payload at the given time, which must be at or
// after the time of the most recent Pop.
func (c *Calendar[T]) Push(at float64, v T) {
	c.n++
	// The float comparison guards the int conversion below: a
	// far-future time could overflow int and alias into the window.
	if at >= c.start+c.width*float64(len(c.buckets)) {
		c.overflow.Push(at, v)
		return
	}
	idx := int((at - c.start) * c.invWidth)
	if idx >= len(c.buckets) {
		idx = len(c.buckets) - 1
	}
	if idx < c.cur {
		// Behind the cursor (the clock already passed that bucket's
		// range): clamp into the current bucket, where the min scan
		// still orders it correctly.
		idx = c.cur
	}
	c.buckets[idx] = append(c.buckets[idx], item[T]{at: at, v: v})
	if idx == c.cur && c.minIdx >= 0 {
		if at < c.minAt {
			c.minIdx = len(c.buckets[idx]) - 1
			c.minAt = at
		}
	}
}

// settle advances the cursor to the next non-empty bucket, shifting
// the window over the overflow heap when the current window is
// exhausted, and caches the current bucket's minimum. It reports
// whether any event is pending.
func (c *Calendar[T]) settle() bool {
	if c.n == 0 {
		return false
	}
	for {
		b := c.buckets[c.cur]
		if len(b) > 0 {
			if c.minIdx < 0 {
				m := 0
				for j := 1; j < len(b); j++ {
					if b[j].at < b[m].at {
						m = j
					}
				}
				c.minIdx = m
				c.minAt = b[m].at
			}
			return true
		}
		c.minIdx = -1
		c.cur++
		if c.cur < len(c.buckets) {
			continue
		}
		// Window exhausted: every remaining event lives in the
		// overflow heap. Jump the window to the earliest of them and
		// drain everything that now fits into buckets.
		span := c.width * float64(len(c.buckets))
		c.start += span
		if at, ok := c.overflow.PeekTime(); ok && at >= c.start+span {
			// Jump over empty windows in one step, keeping start on
			// the original span grid (float arithmetic: the jump may
			// be astronomically far, beyond int range in widths).
			c.start += math.Floor((at-c.start)/span) * span
		}
		c.cur = 0
		limit := c.start + span
		for {
			at, ok := c.overflow.PeekTime()
			if !ok || at >= limit {
				break
			}
			_, v := c.overflow.Pop()
			idx := int((at - c.start) * c.invWidth)
			if idx < 0 {
				idx = 0
			}
			if idx >= len(c.buckets) {
				idx = len(c.buckets) - 1
			}
			c.buckets[idx] = append(c.buckets[idx], item[T]{at: at, v: v})
		}
	}
}

// PeekTime returns the earliest scheduled time, with ok = false when
// the calendar is empty.
func (c *Calendar[T]) PeekTime() (at float64, ok bool) {
	if !c.settle() {
		return 0, false
	}
	return c.minAt, true
}

// Pop removes and returns the earliest event. It panics on an empty
// calendar — popping nothing is always a simulator logic error.
func (c *Calendar[T]) Pop() (at float64, v T) {
	if !c.settle() {
		//lint:allow libpanic heap discipline invariant, same contract as Queue.Pop
		panic("eventq: Pop on empty calendar")
	}
	b := c.buckets[c.cur]
	m := c.minIdx
	at, v = b[m].at, b[m].v
	last := len(b) - 1
	b[m] = b[last]
	var zero item[T]
	b[last] = zero // release payload references
	c.buckets[c.cur] = b[:last]
	c.n--
	c.minIdx = -1
	return at, v
}
