package eventq

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"xbar/internal/rng"
)

// TestResetReuse pins the zero-steady-state-allocation contract: a
// pre-sized queue that is filled, drained and Reset between rounds
// never allocates after construction.
func TestResetReuse(t *testing.T) {
	const n = 64
	q := New[int](n)
	s := rng.NewStream(5)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < n; i++ {
			q.Push(s.Float64(), i)
		}
		for j := 0; j < n/2; j++ {
			q.Pop()
		}
		q.Reset()
		if q.Len() != 0 {
			t.Fatal("Reset left events behind")
		}
	})
	if allocs != 0 {
		t.Errorf("pre-sized queue allocated %.1f times per round", allocs)
	}
}

// TestNewNegativeCapacity checks New tolerates a negative hint.
func TestNewNegativeCapacity(t *testing.T) {
	q := New[int](-3)
	q.Push(1, 1)
	if at, v := q.Pop(); at != 1 || v != 1 {
		t.Fatalf("got (%v, %d)", at, v)
	}
}

// TestQueueAfterReset checks ordering stays correct when the backing
// array is reused across rounds with different contents.
func TestQueueAfterReset(t *testing.T) {
	q := New[int](4)
	s := rng.NewStream(9)
	for round := 0; round < 20; round++ {
		n := 1 + int(s.Uint64()%40)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			want[i] = s.Float64() * 100
			q.Push(want[i], i)
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			at, _ := q.Pop()
			if at != want[i] {
				t.Fatalf("round %d: pop %d returned %v, want %v", round, i, at, want[i])
			}
		}
		q.Reset()
	}
}

// FuzzHeapProperty drives the queue with an arbitrary push/pop script
// and checks the two invariants that define it: every parent is at or
// before its children (the 4-ary heap property), and pops come out in
// nondecreasing time order matching a sorted reference.
func FuzzHeapProperty(f *testing.F) {
	f.Add(uint64(1), uint16(40))
	f.Add(uint64(42), uint16(7))
	f.Add(uint64(0xdead), uint16(200))
	f.Fuzz(func(t *testing.T, seed uint64, opsRaw uint16) {
		ops := int(opsRaw%512) + 1
		s := rng.NewStream(seed)
		q := New[uint64](8)
		var live []float64
		for op := 0; op < ops; op++ {
			if len(live) > 0 && s.Uint64()%3 == 0 {
				at, _ := q.Pop()
				minIdx := 0
				for i, v := range live {
					if v < live[minIdx] {
						minIdx = i
					}
				}
				if at != live[minIdx] {
					t.Fatalf("op %d: popped %v, expected minimum %v", op, at, live[minIdx])
				}
				live = append(live[:minIdx], live[minIdx+1:]...)
			} else {
				at := s.Float64() * 1000
				q.Push(at, uint64(op))
				live = append(live, at)
			}
			for i := 1; i < q.Len(); i++ {
				parent := (i - 1) / 4
				if q.items[parent].at > q.items[i].at {
					t.Fatalf("op %d: heap property violated at index %d", op, i)
				}
			}
		}
		if q.Len() != len(live) {
			t.Fatalf("length drifted: queue %d, reference %d", q.Len(), len(live))
		}
	})
}

// TestCalendarMatchesHeap drives a calendar and a heap with the same
// monotone-clock workload and checks they pop identical sequences.
func TestCalendarMatchesHeap(t *testing.T) {
	s := rng.NewStream(123)
	cal := NewCalendar[int](0.5, 16)
	heap := New[int](0)
	clock := 0.0
	pushed := 0
	for step := 0; step < 5000; step++ {
		if pushed == 0 || s.Uint64()%2 == 0 {
			// Mix near-future, far-future (overflow) and behind-cursor
			// (clamped) schedule times.
			var at float64
			switch s.Uint64() % 8 {
			case 0:
				at = clock + s.Float64()*100 // overflow territory
			case 1:
				at = clock // exactly now
			default:
				at = clock + s.Float64()*2
			}
			cal.Push(at, step)
			heap.Push(at, step)
			pushed++
		} else {
			ca, _ := cal.Pop()
			ha, _ := heap.Pop()
			// Pop times must agree exactly; payloads may differ only
			// when two events share one instant (the structures order
			// ties differently, which the simulator tolerates — see
			// Config.CalendarQueue).
			if ca != ha {
				t.Fatalf("step %d: calendar popped t=%v, heap t=%v", step, ca, ha)
			}
			clock = ca
			pushed--
		}
	}
	if cal.Len() != heap.Len() {
		t.Fatalf("length mismatch: calendar %d, heap %d", cal.Len(), heap.Len())
	}
}

// TestCalendarResetReuse pins the calendar's reuse contract.
func TestCalendarResetReuse(t *testing.T) {
	cal := NewCalendar[int](1, 8)
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			cal.Push(float64(i)*0.3, i)
		}
		last := math.Inf(-1)
		for cal.Len() > 0 {
			at, _ := cal.Pop()
			if at < last {
				t.Fatalf("round %d: order regressed", round)
			}
			last = at
		}
		cal.Reset()
	}
}

// BenchmarkQueuePushPop measures the steady-state cost of the heap's
// push/pop pair at a simulator-typical queue length.
func BenchmarkQueuePushPop(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			q := New[int](n)
			s := rng.NewStream(1)
			clock := 0.0
			for i := 0; i < n; i++ {
				q.Push(clock+s.Float64(), i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at, v := q.Pop()
				clock = at
				q.Push(clock+s.Float64(), v)
			}
		})
	}
}
