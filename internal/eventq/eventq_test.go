package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Error("zero value not empty")
	}
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty returned ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	if at, ok := q.PeekTime(); !ok || at != 1 {
		t.Errorf("PeekTime = %v, %v", at, ok)
	}
	for i, want := range []struct {
		at float64
		v  string
	}{{1, "a"}, {2, "b"}, {3, "c"}} {
		at, v := q.Pop()
		if at != want.at || v != want.v {
			t.Errorf("pop %d: (%v, %q), want (%v, %q)", i, at, v, want.at, want.v)
		}
	}
	if q.Len() != 0 {
		t.Error("queue not drained")
	}
}

// TestPropertySortsAnyInput: pushing arbitrary times pops them in
// non-decreasing order, interleaved pushes included.
func TestPropertySortsAnyInput(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		var q Queue[int]
		var times []float64
		// Interleave pushes with occasional pops.
		var popped []float64
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			q.Push(at, i)
			times = append(times, at)
			if rng.Intn(4) == 0 && q.Len() > 0 {
				at, _ := q.Pop()
				popped = append(popped, at)
			}
		}
		for q.Len() > 0 {
			at, _ := q.Pop()
			popped = append(popped, at)
		}
		if len(popped) != len(times) {
			return false
		}
		// Each maximal run popped between pushes is sorted; since pops
		// always take the current minimum, the full check is: sorted
		// copy of times equals sorted copy of popped, and every pop
		// was <= everything still in the queue at that moment. The
		// latter is guaranteed by construction; verify the multiset.
		sort.Float64s(times)
		sorted := append([]float64(nil), popped...)
		sort.Float64s(sorted)
		for i := range times {
			if times[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDrainIsGloballySorted: without interleaving, the drain order is
// fully sorted.
func TestDrainIsGloballySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var q Queue[int]
	for i := 0; i < 1000; i++ {
		q.Push(rng.Float64(), i)
	}
	prev := -1.0
	for q.Len() > 0 {
		at, _ := q.Pop()
		if at < prev {
			t.Fatalf("popped %v after %v", at, prev)
		}
		prev = at
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty did not panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}
