package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowIndex records //lint:allow directives by file and line. A
// directive suppresses a check on the line it sits on (trailing
// comment) or, when it is alone on a line, on the next source line:
//
//	//lint:allow libpanic heap invariant, unreachable from user input
//	panic("eventq: Pop on empty queue")
//
// Everything after the check ID is a free-form justification; the
// check ID "all" suppresses every check.
type allowIndex struct {
	// byLine maps file -> line -> set of allowed check names.
	byLine map[string]map[int]map[string]bool
}

// buildAllowIndex scans the comments of every file once.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.byLine[pos.Filename] = lines
				}
				// The directive covers its own line and the next one,
				// so both trailing and standalone placement work.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = make(map[string]bool)
					}
					lines[ln][check] = true
				}
			}
		}
	}
	return idx
}

// parseAllow extracts the check ID from a "//lint:allow <check> ..."
// comment, reporting ok=false for any other comment.
func parseAllow(text string) (check string, ok bool) {
	body, found := strings.CutPrefix(text, "//lint:allow")
	if !found {
		// Tolerate a space after the slashes.
		body, found = strings.CutPrefix(text, "// lint:allow")
		if !found {
			return "", false
		}
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

func (idx *allowIndex) allows(check string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set != nil && (set[check] || set["all"])
}
