package analyzers

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// NaNGuard flags exported float64-returning functions in the numeric
// core (xbar/internal/core, internal/approx, internal/dist) whose
// bodies compute through math.Exp, math.Log, or floating-point
// division without either (a) checking math.IsNaN / math.IsInf
// somewhere in the body, or (b) documenting a domain precondition in
// the doc comment. Algorithm 1's scaled recursion moves values
// through Exp/Log round trips near the underflow boundary (N≈85 at
// raw float64); a NaN born there propagates silently into every
// downstream blocking probability. The doc-comment escape hatch
// accepts phrases containing "must", "panics", "requires",
// "precondition", "domain", "NaN", "Inf", "undefined", or "defined
// only" — i.e. the function states the domain contract instead of
// checking it.
var NaNGuard = &Analyzer{
	Name: "nanguard",
	Doc:  "Exp/Log/division in exported numeric API without IsNaN/IsInf check or documented domain precondition",
	Run:  runNaNGuard,
}

// nanguardPackages are the import-path suffixes the check applies to:
// the numeric kernel of the reproduction.
var nanguardPackages = []string{
	"internal/core",
	"internal/approx",
	"internal/dist",
}

var precondRe = regexp.MustCompile(`(?i)\b(must|panics?|precondition|requires?|required|domain|NaN|Inf|undefined|defined only)\b`)

func runNaNGuard(pass *Pass) {
	scoped := false
	for _, suffix := range nanguardPackages {
		if strings.HasSuffix(pass.ImportPath, suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedFunc(fd) {
				continue
			}
			if !returnsFloat64(pass, fd) {
				continue
			}
			if fd.Doc != nil && precondRe.MatchString(fd.Doc.Text()) {
				continue
			}
			risky, guarded := scanBody(pass, fd.Body)
			if risky != "" && !guarded {
				pass.Reportf(fd.Name.Pos(),
					"exported %s returns float64 computed via %s without an IsNaN/IsInf check or documented domain precondition",
					fd.Name.Name, risky)
			}
		}
	}
}

// returnsFloat64 reports whether any result of fd is float-typed.
func returnsFloat64(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if isFloat(pass.Info, field.Type) {
			return true
		}
	}
	return false
}

// scanBody looks for risky numeric operations and NaN/Inf guards in
// one pass over the function body. risky names the first risky
// operation found ("" if none).
func scanBody(pass *Pass, body *ast.BlockStmt) (risky string, guarded bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
				return true
			}
			switch fn.Name() {
			case "Exp", "Exp2", "Expm1", "Log", "Log2", "Log10", "Log1p":
				if risky == "" {
					risky = "math." + fn.Name()
				}
			case "IsNaN", "IsInf":
				guarded = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.QUO && risky == "" &&
				(isFloat(pass.Info, n.X) || isFloat(pass.Info, n.Y)) &&
				!isConst(pass.Info, n.Y) {
				risky = "float division"
			}
		}
		return true
	})
	return risky, guarded
}
