package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ReuseCheck tracks the lifecycle of pooled values — solvers and
// lattices handed back through a recycling API — and reports uses
// after release, double releases, and releases of values that later
// escape. Recycling APIs opt in with a directive on their declaration:
//
//	//lint:pooled
//	func (e *Engine) putSolver(s *core.Solver) { ... }
//
// marks every reference-typed argument as released by the call, and
//
//	//lint:pooled recv
//	func (s *SweepSolver) Reuse(sw Switch, opts ...FillOption) error
//
// marks the receiver as recycled in place: values previously derived
// from it (memoized Results, sub-lattice views) are invalidated, while
// the receiver itself stays usable.
//
// The analysis is flow-sensitive (may-analysis over the CFG: a
// release on any path poisons the join) and tracks provenance through
// aliasing, field/index selection, and method calls on a pooled value
// — but not through ordinary function-call arguments, so copying data
// out (`append([]float64(nil), res.Blocking...)`) ends the taint.
// `defer pool.put(x)` is release-at-exit and never poisons the body.
var ReuseCheck = &Analyzer{
	Name: "reusecheck",
	Doc:  "use-after-release, double release, and escapes of //lint:pooled recycled values",
	Run:  runReuseCheck,
}

// objSet is a set of objects.
type objSet map[types.Object]bool

func (s objSet) clone() objSet {
	out := make(objSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// reuseState is the per-point lifecycle state.
type reuseState struct {
	// released maps an object to the release site poisoning it.
	released map[types.Object]token.Pos
	// derived maps an object to the pooled roots it may carry views of
	// (roots are pre-resolved, so chains stay one hop). A composite
	// value (a response struct holding memoized slices) can carry
	// several.
	derived map[types.Object]objSet
}

func cloneReuseState(s reuseState) reuseState {
	out := reuseState{
		released: make(map[types.Object]token.Pos, len(s.released)),
		derived:  make(map[types.Object]objSet, len(s.derived)),
	}
	for k, v := range s.released {
		out.released[k] = v
	}
	for k, v := range s.derived {
		out.derived[k] = v.clone()
	}
	return out
}

func joinReuseState(a, b reuseState) reuseState {
	out := cloneReuseState(a)
	for k, v := range b.released {
		if _, ok := out.released[k]; !ok {
			out.released[k] = v
		}
	}
	for k, v := range b.derived {
		if have, ok := out.derived[k]; ok {
			for r := range v {
				have[r] = true
			}
		} else {
			out.derived[k] = v.clone()
		}
	}
	return out
}

func equalReuseState(a, b reuseState) bool {
	if len(a.released) != len(b.released) || len(a.derived) != len(b.derived) {
		return false
	}
	for k := range a.released {
		if _, ok := b.released[k]; !ok {
			return false
		}
	}
	for k, v := range a.derived {
		w, ok := b.derived[k]
		if !ok || len(v) != len(w) {
			return false
		}
		for r := range v {
			if !w[r] {
				return false
			}
		}
	}
	return true
}

// rootsOf resolves an object's pooled roots (itself if underived).
func (s reuseState) rootsOf(obj types.Object) objSet {
	if r, ok := s.derived[obj]; ok {
		return r
	}
	return objSet{obj: true}
}

func runReuseCheck(pass *Pass) {
	pc := newPooledCache(pass)

	funcDecls(pass, func(decl *ast.FuncDecl, g *funcCFG) {
		d := dataflow[reuseState]{
			bottom: func() reuseState {
				return reuseState{
					released: make(map[types.Object]token.Pos),
					derived:  make(map[types.Object]objSet),
				}
			},
			clone:    cloneReuseState,
			join:     joinReuseState,
			equal:    equalReuseState,
			transfer: func(s reuseState, n ast.Node) { reuseTransfer(pass, pc, s, n) },
		}
		runForward(g, d, func(n ast.Node, before reuseState) {
			reuseVisit(pass, pc, before, n)
		})
	})
}

// reuseTransfer applies one node's lifecycle effects.
func reuseTransfer(pass *Pass, pc *pooledCache, s reuseState, n ast.Node) {
	switch n := n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred releases run at exit; spawned bodies run elsewhere.
		return
	case *ast.AssignStmt:
		// Record RHS provenance first (it reads the old bindings), then
		// rebind the LHS objects.
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				recordReleases(pass, pc, s, n.Rhs[i])
				bindLHS(pass, s, lhs, n.Rhs[i])
			}
		} else {
			// x, y := f(): one call, multiple results — a call boundary,
			// so the LHS objects start fresh.
			for _, rhs := range n.Rhs {
				recordReleases(pass, pc, s, rhs)
			}
			for _, lhs := range n.Lhs {
				bindLHS(pass, s, lhs, nil)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
						recordReleases(pass, pc, s, rhs)
					}
					bindLHS(pass, s, name, rhs)
				}
			}
		}
	default:
		recordReleases(pass, pc, s, n)
	}
}

// bindLHS rebinds one assignment target: a plain identifier takes the
// provenance of its RHS (clearing any released poison — rebinding is
// a fresh value); writing through a selector or index taints the
// container's root instead.
func bindLHS(pass *Pass, s reuseState, lhs ast.Expr, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	id, ok := lhs.(*ast.Ident)
	if !ok {
		// x.f = v, x[i] = v: storing a tracked reference value taints
		// the container — serializing x later still reads the pooled
		// storage v points into. Scalar stores leave x alone.
		if rhs == nil || !rhsRefBearing(pass, rhs) {
			return
		}
		roots := deriveRoots(pass, s, rhs)
		if len(roots) == 0 {
			return
		}
		base := baseIdent(lhs)
		if base == nil {
			return
		}
		obj := identObj(pass, base)
		if obj == nil {
			return
		}
		have := s.derived[obj]
		if have == nil {
			have = make(objSet)
			s.derived[obj] = have
		}
		for r := range roots {
			if r != obj {
				have[r] = true
			}
		}
		if len(have) == 0 {
			delete(s.derived, obj)
		}
		return
	}
	obj := identObj(pass, id)
	if obj == nil {
		return
	}
	delete(s.released, obj)
	delete(s.derived, obj)
	if rhs == nil || !refBearing(obj.Type()) {
		return
	}
	roots := deriveRoots(pass, s, rhs)
	delete(roots, obj)
	if len(roots) > 0 {
		s.derived[obj] = roots
	}
}

// rhsRefBearing reports whether an expression's type can alias pooled
// storage.
func rhsRefBearing(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	return ok && refBearing(tv.Type)
}

// baseIdent walks selector/index/star chains to the identifier at the
// base of an lvalue (nil when the base is not a plain identifier).
func baseIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// deriveRoots finds the pooled objects an expression may derive from:
// aliasing, selection, indexing, dereference, address-taking, method
// calls on a tracked receiver, and composite literals carrying
// tracked values all propagate; ordinary call arguments do not.
func deriveRoots(pass *Pass, s reuseState, expr ast.Expr) objSet {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := identObj(pass, e); obj != nil && refBearing(obj.Type()) {
			return s.rootsOf(obj).clone()
		}
	case *ast.SelectorExpr:
		// pkg.Name is not a derivation; x.f is — but only when the
		// selected field can itself alias storage.
		if sel := pass.Info.Selections[e]; sel != nil && rhsRefBearing(pass, e) {
			return deriveRoots(pass, s, e.X)
		}
	case *ast.IndexExpr:
		if rhsRefBearing(pass, e) {
			return deriveRoots(pass, s, e.X)
		}
	case *ast.SliceExpr:
		return deriveRoots(pass, s, e.X)
	case *ast.StarExpr:
		return deriveRoots(pass, s, e.X)
	case *ast.TypeAssertExpr:
		return deriveRoots(pass, s, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return deriveRoots(pass, s, e.X)
		}
	case *ast.CallExpr:
		// A method call on a tracked receiver yields a view into it
		// (resultAt, Result, Sub) when the result is a concrete
		// reference type; interface results (error, above all) are
		// fresh values, and a plain function call is a copy boundary.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if selinfo := pass.Info.Selections[sel]; selinfo != nil {
				if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
					if _, iface := tv.Type.Underlying().(*types.Interface); iface {
						return nil
					}
				}
				return deriveRoots(pass, s, sel.X)
			}
		}
	case *ast.CompositeLit:
		var roots objSet
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			for r := range deriveRoots(pass, s, elt) {
				if roots == nil {
					roots = make(objSet)
				}
				roots[r] = true
			}
		}
		return roots
	}
	return nil
}

// recordReleases scans n (skipping function literals and go/defer) for
// calls to //lint:pooled functions and updates s.
func recordReleases(pass *Pass, pc *pooledCache, s reuseState, n ast.Node) {
	forEachCall(n, func(call *ast.CallExpr) {
		mode, ok := pc.lookup(calleeFunc(pass.Info, call))
		if !ok {
			return
		}
		if mode.recv {
			// Recycle-in-place: values derived from the receiver before
			// this call now point into a refilled lattice. Only values
			// recorded against the receiver object itself are
			// invalidated — a receiver plucked out of a pool must not
			// poison the pool's container.
			recv, ok := ast.Unparen(callReceiver(call)).(*ast.Ident)
			if !ok {
				return
			}
			recvObj := identObj(pass, recv)
			if recvObj == nil {
				return
			}
			for obj, roots := range s.derived {
				if roots[recvObj] {
					s.released[obj] = call.Pos()
				}
			}
			return
		}
		for _, arg := range call.Args {
			if obj := argObject(pass, arg); obj != nil {
				s.released[obj] = call.Pos()
			}
		}
	})
}

// reuseVisit reports uses and double releases against the state
// holding before n executes.
func reuseVisit(pass *Pass, pc *pooledCache, before reuseState, n ast.Node) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	if _, ok := n.(*ast.GoStmt); ok {
		return
	}
	// Double release first: the releasing call's own argument idents
	// are exempt from the use check below.
	releasingIdents := make(map[*ast.Ident]bool)
	forEachCall(n, func(call *ast.CallExpr) {
		mode, ok := pc.lookup(calleeFunc(pass.Info, call))
		if !ok || mode.recv {
			return
		}
		for _, arg := range call.Args {
			id, _ := ast.Unparen(arg).(*ast.Ident)
			if id == nil {
				continue
			}
			releasingIdents[id] = true
			obj := identObj(pass, id)
			if obj == nil {
				continue
			}
			if pos, ok := before.released[obj]; ok {
				pass.Reportf(call.Pos(), "%s released again; already released at %s",
					id.Name, pass.Fset.Position(pos))
			}
		}
	})
	// Uses are checked against the before-state; assignment targets are
	// rebindings, not uses, so plain-ident LHS positions are exempt.
	rebinding := make(map[*ast.Ident]bool)
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				rebinding[id] = true
			}
		}
	case *ast.DeclStmt:
		// var declarations only define.
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.Info.Defs[id] != nil {
				rebinding[id] = true
			}
			return true
		})
	}
	forEachIdent(n, func(id *ast.Ident) {
		if releasingIdents[id] || rebinding[id] || pass.Info.Defs[id] != nil {
			return
		}
		obj := identObj(pass, id)
		if obj == nil || !refBearing(obj.Type()) {
			return
		}
		if pos, ok := before.released[obj]; ok {
			pass.Reportf(id.Pos(), "%s used after release at %s", id.Name, pass.Fset.Position(pos))
			return
		}
		var hit types.Object
		for root := range before.derived[obj] {
			if _, ok := before.released[root]; !ok {
				continue
			}
			// Deterministic pick when several roots are poisoned.
			if hit == nil || root.Pos() < hit.Pos() {
				hit = root
			}
		}
		if hit != nil {
			pass.Reportf(id.Pos(), "%s (derived from %s) used after %s was released at %s",
				id.Name, hit.Name(), hit.Name(), pass.Fset.Position(before.released[hit]))
		}
	})
}

// identObj resolves an identifier to its object (use or def).
func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// argObject resolves a release-call argument to the local object being
// handed back (plain identifiers only: releasing x.f releases a field,
// which the container-level tracking does not model).
func argObject(pass *Pass, arg ast.Expr) types.Object {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(pass, id)
	if obj == nil || !refBearing(obj.Type()) {
		return nil
	}
	return obj
}

// callReceiver extracts the receiver expression of a method call.
func callReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// refBearing reports whether t can alias pooled storage: pointers,
// slices, maps, channels, interfaces — and structs or arrays carrying
// any of those (a struct copy shares its slices' backing arrays).
// Scalars and strings are value copies and do not track.
func refBearing(t types.Type) bool {
	return refBearingRec(t, make(map[types.Type]bool))
}

func refBearingRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refBearingRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return refBearingRec(u.Elem(), seen)
	}
	return false
}

// forEachCall walks n without entering function literals or go/defer
// statements.
func forEachCall(n ast.Node, f func(*ast.CallExpr)) {
	if _, ok := n.(*implicitReturn); ok {
		return // synthetic node, not walkable
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			f(m)
		}
		return true
	})
}

// forEachIdent walks n's identifier uses without entering function
// literals or go/defer statements.
func forEachIdent(n ast.Node, f func(*ast.Ident)) {
	if _, ok := n.(*implicitReturn); ok {
		return // synthetic node, not walkable
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.Ident:
			f(m)
		}
		return true
	})
}

// pooledMode describes one //lint:pooled directive.
type pooledMode struct {
	// recv: the call recycles its receiver in place instead of
	// releasing its arguments.
	recv bool
}

// pooledCache resolves which functions carry a //lint:pooled
// directive, looking at declarations in the current package and — via
// Pass.Dep — in already-loaded module-internal dependencies.
type pooledCache struct {
	pass  *Pass
	known map[*types.Func]*pooledMode // nil value = looked up, not pooled
}

func newPooledCache(pass *Pass) *pooledCache {
	pc := &pooledCache{pass: pass, known: make(map[*types.Func]*pooledMode)}
	for _, f := range pass.Files {
		pc.scanFile(f, pass.Info)
	}
	return pc
}

// scanFile records the pooled directives declared in one file.
func (pc *pooledCache) scanFile(f *ast.File, info *types.Info) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		mode, ok := parsePooledDoc(fd.Doc)
		if !ok {
			continue
		}
		if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
			m := mode
			pc.known[fn] = &m
		}
	}
}

// lookup reports whether fn is a pooled recycling API.
func (pc *pooledCache) lookup(fn *types.Func) (pooledMode, bool) {
	if fn == nil {
		return pooledMode{}, false
	}
	if m, ok := pc.known[fn]; ok {
		if m == nil {
			return pooledMode{}, false
		}
		return *m, true
	}
	pc.known[fn] = nil
	if fn.Pkg() == nil || pc.pass.Dep == nil {
		return pooledMode{}, false
	}
	dep := pc.pass.Dep(fn.Pkg().Path())
	if dep == nil {
		return pooledMode{}, false
	}
	// The loader shares one FileSet, so the callee's declaration is the
	// FuncDecl whose name sits at the *types.Func position.
	for _, f := range dep.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Pos() != fn.Pos() {
				continue
			}
			if fd.Doc != nil {
				if mode, ok := parsePooledDoc(fd.Doc); ok {
					m := mode
					pc.known[fn] = &m
					return mode, true
				}
			}
			return pooledMode{}, false
		}
	}
	return pooledMode{}, false
}

// parsePooledDoc finds a //lint:pooled directive in a doc comment.
func parsePooledDoc(doc *ast.CommentGroup) (pooledMode, bool) {
	for _, c := range doc.List {
		body, found := strings.CutPrefix(c.Text, "//lint:pooled")
		if !found {
			body, found = strings.CutPrefix(c.Text, "// lint:pooled")
			if !found {
				continue
			}
		}
		fields := strings.Fields(body)
		return pooledMode{recv: len(fields) > 0 && fields[0] == "recv"}, true
	}
	return pooledMode{}, false
}
