package analyzers

import (
	"go/ast"
	"go/types"
)

// LibPanic flags panic calls inside the exported API of library
// (non-main) packages. Exported entry points reachable from user
// input — CLI flag values, workload files — must return errors the
// caller can surface; a panic in the middle of a long experiment run
// throws away every result computed so far. True invariants (heap
// discipline, exhaustive switches over internal enums) may keep their
// panic, annotated with //lint:allow libpanic and a justification.
var LibPanic = &Analyzer{
	Name: "libpanic",
	Doc:  "panic in exported library code; return an error or annotate with //lint:allow libpanic",
	Run:  runLibPanic,
}

func runLibPanic(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedFunc(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in exported %s; return an error, or annotate an invariant with //lint:allow libpanic", fd.Name.Name)
				return true
			})
		}
	}
}

// exportedFunc reports whether fd is part of the package's exported
// API: an exported top-level function, or an exported method on an
// exported receiver type.
func exportedFunc(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	return exportedRecvType(fd.Recv.List[0].Type)
}

func exportedRecvType(expr ast.Expr) bool {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return exportedRecvType(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return exportedRecvType(t.X)
	case *ast.IndexListExpr: // generic receiver T[P1, P2]
		return exportedRecvType(t.X)
	case *ast.Ident:
		return t.IsExported()
	}
	return false
}
