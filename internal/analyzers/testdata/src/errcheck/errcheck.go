// Package errcheck holds golden-test fixtures for the errcheck check.
package errcheck

import (
	"fmt"
	"os"
	"strings"
)

func fallible() error                      { return nil }
func pair() (int, error)                   { return 0, nil }
func clean() int                           { return 0 }
func sink(w *strings.Builder) (int, error) { return w.WriteString("x") }

func body() {
	fallible() // want "errcheck: result of fallible discards an error"
	pair()     // want "errcheck: result of pair discards an error"

	// Handled results are fine.
	if err := fallible(); err != nil {
		return
	}
	_, _ = pair()

	// Error-free calls are fine.
	clean()

	// The fmt print family is exempt.
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "hi\n")

	// strings.Builder writes never fail and are exempt.
	var sb strings.Builder
	sb.WriteString("ok")

	//lint:allow errcheck fixture for the suppression directive
	fallible()
}
