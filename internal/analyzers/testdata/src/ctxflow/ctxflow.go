// Package server exercises the ctxflow analyzer (the fixture loads
// under xbar/internal/server, one of the check's scoped paths).
package server

import "context"

func process(ctx context.Context, xs []float64) float64 { // want "never used"
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

//lint:allow ctxflow reserved for a future cancellation hook
func reserved(ctx context.Context, n int) int {
	return n + 1
}

func detached(ctx context.Context, items []int) {
	if ctx.Err() != nil {
		return
	}
	for range items {
		sink(context.Background()) // want "created inside a loop"
	}
}

func sink(ctx context.Context) { <-ctx.Done() }

func deaf(ctx context.Context, in <-chan int) {
	if ctx.Err() != nil {
		return
	}
	for {
		select { // want "no ctx.Done"
		case v, ok := <-in:
			if !ok {
				return
			}
			_ = v
		}
	}
}

func politeOK(ctx context.Context, in <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v, ok := <-in:
			if !ok {
				return
			}
			_ = v
		}
	}
}
