// Package nanguard holds golden-test fixtures for the nanguard check.
// The harness loads it under the xbar/internal/core import path so
// the package scoping applies.
package nanguard

import "math"

// Unguarded applies a raw exponential with no check and no contract
// in its comment.
func Unguarded(x float64) float64 { // want "nanguard: exported Unguarded"
	return math.Exp(x)
}

// Ratio divides by a runtime value with no check and no contract in
// its comment.
func Ratio(a, b float64) float64 { // want "nanguard: exported Ratio"
	return a / b
}

// Guarded checks the result before returning it.
func Guarded(x float64) float64 {
	v := math.Log(x)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// DocumentedDomain states its contract: x must be positive.
func DocumentedDomain(x float64) float64 {
	return math.Log(x)
}

// Halve divides by a constant, which cannot poison the result on its
// own.
func Halve(x float64) float64 {
	return x / 2
}

// IntRatio performs integer division, which is out of scope.
func IntRatio(a, b int) int {
	return a / b
}

// helper is unexported and out of scope.
func helper(x float64) float64 {
	return math.Exp(x)
}

// Classify does not return a float and is out of scope.
func Classify(x float64) bool {
	return math.Exp(x) > 1
}
