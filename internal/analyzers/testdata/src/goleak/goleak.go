// Package goleak exercises the goleak analyzer: spin goroutines with
// no way out and unbuffered sends that can block forever.
package goleak

import "errors"

var errBusy = errors.New("busy")

func spin() {
	go func() { // want "goroutine never terminates"
		for {
		}
	}()
}

func spinAllowed() {
	//lint:allow goleak busy-wait probe, stopped by process exit
	go func() {
		for {
		}
	}()
}

func blockedSend(fail bool) error {
	ch := make(chan int)
	go func() {
		ch <- 1 // want "can block forever"
	}()
	if fail {
		return errBusy
	}
	<-ch
	return nil
}

func noReceive() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{} // want "no receive in scope"
	}()
}

func handshakeOK(n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func escapesOK() chan int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return ch
}

func bufferedOK() error {
	errc := make(chan error, 1)
	go func() { errc <- nil }()
	return <-errc
}
