// Package lockorder exercises the lockorder analyzer: early returns
// with a mutex held, double acquisition, and ABBA order inversion.
package lockorder

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func missingUnlock(b *box, bad bool) int {
	b.mu.Lock()
	if bad {
		return -1 // want "return with b.mu held"
	}
	b.mu.Unlock()
	return b.n
}

func leakAtEnd(b *box) {
	b.mu.Lock()
	b.n++
} // want "return with b.mu held"

func doubleLock(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want "acquired while already held"
	b.mu.Unlock()
}

func deferOK(b *box, bad bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bad {
		return -1
	}
	return b.n
}

func readersOK(b *box) int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

func lockAB() {
	muA.Lock()
	muB.Lock() // want "lock order inversion"
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock() // want "lock order inversion"
	muA.Unlock()
	muB.Unlock()
}

func handoffLocked(b *box) {
	b.mu.Lock()
	//lint:allow lockorder the caller unlocks by contract
	return
}
