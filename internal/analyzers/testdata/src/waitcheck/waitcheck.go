// Package waitcheck holds golden-test fixtures for the waitcheck
// check.
package waitcheck

import "sync"

type counter struct{ wg sync.WaitGroup }

// Add is a same-named method on an unrelated type; calling it inside a
// goroutine is fine.
func (c *counter) Add(n int) {}

func spawn() {
	var wg sync.WaitGroup

	// The correct pattern: Add before the go statement.
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()

	// The footgun: Wait can return before this Add runs.
	go func() {
		wg.Add(1) // want "waitcheck: sync.WaitGroup.Add inside the spawned goroutine"
		defer wg.Done()
	}()

	// Still spawned work, even without a literal body.
	go wg.Add(1) // want "waitcheck: sync.WaitGroup.Add inside the spawned goroutine"

	// Nested literals inside the spawned body are still the goroutine's
	// dynamic extent.
	go func() {
		helper := func() {
			wg.Add(1) // want "waitcheck: sync.WaitGroup.Add inside the spawned goroutine"
		}
		helper()
		defer wg.Done()
	}()

	// Negative adjustments race identically.
	go func() {
		wg.Add(-1) // want "waitcheck: sync.WaitGroup.Add inside the spawned goroutine"
	}()

	// Unrelated Add methods don't trip the check.
	var c counter
	go func() {
		c.Add(1)
	}()

	// The suppression directive works here as everywhere.
	go func() {
		//lint:allow waitcheck fixture for the suppression directive
		wg.Add(1)
	}()

	wg.Wait()
}
