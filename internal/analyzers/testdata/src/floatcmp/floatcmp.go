// Package floatcmp holds golden-test fixtures for the floatcmp check.
package floatcmp

func comparisons(a, b float64, f float32, n int, s string) bool {
	if a == b { // want "floatcmp: == on float operands"
		return true
	}
	if a != 0 { // want "floatcmp: != on float operands"
		return false
	}
	if f == 1.5 { // want "floatcmp: == on float operands"
		return true
	}
	// Integer and string comparisons are fine.
	if n == 3 {
		return true
	}
	if s == "x" {
		return false
	}
	// Both sides compile-time constants: exact by construction.
	const c = 0.5
	if c == 0.5 {
		return true
	}
	// Ordered float comparisons are not equality decisions.
	if a < b || a >= 1.0 {
		return true
	}
	if a == b { //lint:allow floatcmp fixture for the suppression directive
		return true
	}
	//lint:allow floatcmp standalone directive covers the next line
	if a != b {
		return false
	}
	return false
}

type meters float64

func namedFloat(x, y meters) bool {
	return x == y // want "floatcmp: == on float operands"
}
