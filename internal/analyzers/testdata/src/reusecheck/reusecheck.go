// Package reusecheck exercises the reusecheck analyzer with a
// self-contained recycling pool: use-after-release, double release,
// escaped views, and in-place recycling via //lint:pooled recv.
package reusecheck

import "errors"

type item struct {
	buf []float64
}

type pool struct {
	free []*item
}

var errEmpty = errors.New("empty")

func (p *pool) get() (*item, error) {
	if n := len(p.free); n > 0 {
		it := p.free[n-1]
		p.free = p.free[:n-1]
		return it, nil
	}
	return &item{buf: make([]float64, 8)}, nil
}

// put hands it back to the free list; the caller must not touch it
// (or views of its buffer) afterwards.
//
//lint:pooled
func (p *pool) put(it *item) {
	p.free = append(p.free, it)
}

// refill replaces the scratch buffer in place, invalidating any view
// previously read off this item.
//
//lint:pooled recv
func (it *item) refill(n int) {
	it.buf = make([]float64, n)
}

func useAfterRelease(p *pool) float64 {
	it, _ := p.get()
	p.put(it)
	return it.buf[0] // want "it used after release"
}

func doubleRelease(p *pool) {
	it, _ := p.get()
	p.put(it)
	p.put(it) // want "released again"
}

func escapedView(p *pool) float64 {
	it, _ := p.get()
	view := it.buf
	p.put(it)
	return view[0] // want "view .derived from it. used after it was released"
}

func staleViewAfterRefill(it *item) float64 {
	view := it.buf
	it.refill(16)
	return view[0] // want "view used after release"
}

func freshAfterRefill(it *item) float64 {
	it.refill(16)
	view := it.buf
	return view[0]
}

func deferOK(p *pool) (float64, error) {
	it, err := p.get()
	if err != nil {
		return 0, errEmpty
	}
	defer p.put(it)
	return it.buf[0], nil
}

func rebindOK(p *pool) float64 {
	it, _ := p.get()
	p.put(it)
	it, _ = p.get()
	return it.buf[0]
}

func allowedScratch(p *pool) float64 {
	it, _ := p.get()
	p.put(it)
	//lint:allow reusecheck the pool is single-threaded in this harness
	return it.buf[0]
}
