// Package detrand holds golden-test fixtures for the detrand check.
// The test harness loads it under an internal/ import path so the
// path scoping applies.
package detrand

import (
	"math/rand" // want "detrand: import of math/rand in internal package"
	"time"
)

func sample() float64 {
	return rand.Float64()
}

func stamp() time.Time {
	return time.Now() // want "detrand: time.Now in internal package"
}

func elapsed() time.Duration {
	t0 := time.Now() //lint:allow detrand fixture for wall-clock timing exception
	return time.Since(t0)
}

// time.Unix is fine: only Now is nondeterministic.
func epoch() time.Time {
	return time.Unix(0, 0)
}
