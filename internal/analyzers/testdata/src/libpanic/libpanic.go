// Package libpanic holds golden-test fixtures for the libpanic check.
package libpanic

import "fmt"

// Exported panics are flagged.
func Exported(n int) int {
	if n < 0 {
		panic("negative") // want "libpanic: panic in exported Exported"
	}
	return n
}

// Nested function literals inside exported functions are still part
// of the exported code path.
func ExportedNested() func() {
	return func() {
		panic("nested") // want "libpanic: panic in exported ExportedNested"
	}
}

// Unexported functions may panic freely.
func unexported() {
	panic("internal invariant")
}

type Public struct{}

func (Public) Method() {
	panic("boom") // want "libpanic: panic in exported Method"
}

// Unexported receiver type: not part of the exported API.
type hidden struct{}

func (hidden) Method() {
	panic("fine")
}

// Annotated invariants are suppressed.
func Annotated(q []int) int {
	if len(q) == 0 {
		//lint:allow libpanic fixture: heap invariant
		panic("empty")
	}
	return q[0]
}

// Calling something else named panic is not the builtin.
func NotBuiltin() {
	panic := func(s string) { fmt.Println(s) }
	panic("shadowed")
}
