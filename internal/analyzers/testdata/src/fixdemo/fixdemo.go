// Package fixdemo is the -fix engine's before image: every zero
// comparison below is rewritten to floats.Zero by xbarlint -fix, and
// the result is pinned by fixdemo.go.golden.
package fixdemo

func residual(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x == 0.0 {
			n++
		}
		if x != 0 {
			n--
		}
	}
	return n
}

func midVanishes(a, b float64) bool {
	m := (a + b) / 2
	return 0.0 == m
}
