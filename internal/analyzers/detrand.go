package analyzers

import (
	"go/ast"
	"strconv"
	"strings"
)

// DetRand flags nondeterminism sources in internal/ packages: imports
// of math/rand (v1 or v2) and calls to time.Now. The simulator's
// validation of the paper's insensitivity claim rests on bit-for-bit
// reproducible runs, so all randomness must flow through seedable
// xbar/internal/rng.Stream values and all time through explicit
// simulated clocks. Wall-clock timing for reports is legitimate but
// must be annotated with //lint:allow detrand so the exception is
// visible in review.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "math/rand or time.Now in internal packages; route through xbar/internal/rng",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	if !strings.Contains("/"+pass.ImportPath+"/", "/internal/") {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in internal package; use the seedable xbar/internal/rng.Stream", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); isPkgFunc(fn, "time", "Now") {
				pass.Reportf(call.Pos(),
					"time.Now in internal package; inject a clock or annotate wall-clock reporting with //lint:allow detrand")
			}
			return true
		})
	}
}
