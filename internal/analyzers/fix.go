package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
)

// Fix is one machine-applicable edit attached to a Diagnostic: the
// byte span [Start, End) of the diagnostic's file is replaced by New.
// Import, when non-empty, names an import path the replacement
// requires; ApplyFixes inserts it if the file does not already import
// it. Offsets refer to the file as loaded, so fixes within one file
// must be applied back to front.
type Fix struct {
	Start  int    `json:"start"`
	End    int    `json:"end"`
	New    string `json:"new"`
	Import string `json:"import,omitempty"`
}

// ApplyFixes applies every fix carried in diags to the files on disk
// and returns how many were applied. Within a file, fixes apply from
// the latest span backwards so earlier offsets stay valid; a fix
// overlapping one already applied is skipped (it was computed against
// text that no longer exists).
func ApplyFixes(diags []Diagnostic) (int, error) {
	byFile := make(map[string][]*Fix)
	for i := range diags {
		if diags[i].Fix != nil {
			byFile[diags[i].File] = append(byFile[diags[i].File], diags[i].Fix)
		}
	}
	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	applied := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		fixes := byFile[file]
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].Start > fixes[j].Start })
		lastStart := len(src)
		imports := make(map[string]bool)
		n := 0
		for _, f := range fixes {
			if f.Start < 0 || f.End < f.Start || f.End > len(src) {
				return applied, fmt.Errorf("%s: fix span [%d,%d) out of range", file, f.Start, f.End)
			}
			if f.End > lastStart {
				continue // overlaps an already-applied fix
			}
			src = append(src[:f.Start], append([]byte(f.New), src[f.End:]...)...)
			lastStart = f.Start
			n++
			if f.Import != "" {
				imports[f.Import] = true
			}
		}
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			src, err = ensureImport(src, p)
			if err != nil {
				return applied, fmt.Errorf("%s: %w", file, err)
			}
		}
		if n > 0 {
			mode := os.FileMode(0o644)
			if st, err := os.Stat(file); err == nil {
				mode = st.Mode().Perm()
			}
			if err := os.WriteFile(file, src, mode); err != nil {
				return applied, err
			}
			applied += n
		}
	}
	return applied, nil
}

// ensureImport returns src with the given import path present,
// inserting it into the first import declaration (or adding one after
// the package clause) when missing. The insertion keeps the file
// gofmt-clean; it does not attempt goimports-style group sorting.
func ensureImport(src []byte, path string) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ImportsOnly)
	if err != nil {
		return nil, fmt.Errorf("re-parsing after fix: %w", err)
	}
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return src, nil
		}
	}
	insert := func(off int, text string) []byte {
		out := make([]byte, 0, len(src)+len(text))
		out = append(out, src[:off]...)
		out = append(out, text...)
		out = append(out, src[off:]...)
		return out
	}
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			off := fset.Position(gd.Lparen).Offset + 1
			return insert(off, "\n\t"+strconv.Quote(path)), nil
		}
		off := fset.Position(gd.Pos()).Offset
		return insert(off, "import "+strconv.Quote(path)+"\n"), nil
	}
	off := fset.Position(f.Name.End()).Offset
	return insert(off, "\n\nimport "+strconv.Quote(path)), nil
}
