package analyzers

import "go/ast"

// dataflow is a generic forward problem over a funcCFG. S is the
// per-program-point state (typically a small map). The engine owns
// nothing about the lattice beyond what these hooks express:
//
//   - bottom() is the entry state of the function.
//   - clone(s) deep-copies a state so transfer can mutate freely.
//   - join(a, b) merges two predecessor states into a fresh state.
//     The engine seeds a block's in-state with a clone of the first
//     state to reach it and joins subsequent arrivals, so join always
//     receives two real states — the same hook serves may-problems
//     (union) and must-problems (intersection) without an explicit
//     top element.
//   - equal(a, b) detects the fixpoint.
//   - transfer(s, n) applies one node's effect in place. It must not
//     report: the engine re-runs transfer during the visit pass, so
//     reports would double.
//
// After the fixpoint, visit(n, before) is called for every node of
// every reachable block with the state holding immediately before the
// node — the hook where checks report.
type dataflow[S any] struct {
	bottom   func() S
	clone    func(S) S
	join     func(S, S) S
	equal    func(S, S) bool
	transfer func(S, ast.Node)
}

// runForward iterates to fixpoint, then replays each reachable block
// for reporting.
func runForward[S any](g *funcCFG, d dataflow[S], visit func(n ast.Node, before S)) {
	in := make(map[*cfgBlock]S)
	have := make(map[*cfgBlock]bool)
	in[g.entry] = d.bottom()
	have[g.entry] = true

	work := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		s := d.clone(in[b])
		for _, n := range b.nodes {
			d.transfer(s, n)
		}
		for _, succ := range b.succs {
			var merged S
			if have[succ] {
				merged = d.join(in[succ], s)
				if d.equal(merged, in[succ]) {
					continue
				}
			} else {
				merged = d.clone(s)
				have[succ] = true
			}
			in[succ] = merged
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}

	if visit == nil {
		return
	}
	for _, b := range g.blocks {
		if !have[b] {
			continue // unreachable (dead code after return/panic)
		}
		s := d.clone(in[b])
		for _, n := range b.nodes {
			visit(n, s)
			d.transfer(s, n)
		}
	}
}
