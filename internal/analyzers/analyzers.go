// Package analyzers implements xbarlint's project-specific static
// checks over the module's Go source. The checks encode the numeric
// and determinism discipline the reproduction depends on: Algorithm
// 1's scaled recursion must not silently propagate NaN/Inf, the
// simulator's insensitivity validation must stay deterministic and
// seedable through xbar/internal/rng, and float equality must go
// through the tolerance helpers in xbar/internal/floats.
//
// Everything here is standard library only (go/parser, go/ast,
// go/types, go/token); the module's zero-dependency contract in the
// Makefile extends to its tooling.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one reported finding with a stable check ID and a
// file:line:col position.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Fix, when non-nil, is a machine-applicable replacement that
	// resolves the diagnostic (applied by xbarlint -fix).
	Fix *Fix `json:"fix,omitempty"`
}

// String renders the conventional file:line:col: check: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the stable check ID used on the command line, in output,
	// and in //lint:allow directives.
	Name string
	// Doc is a one-line description shown by xbarlint -list.
	Doc string
	// Run inspects the package in pass and reports diagnostics.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files. Test files are out of
	// scope for every check (tests legitimately compare exact floats,
	// seed ad hoc, and panic).
	Files []*ast.File
	// ImportPath is the package's import path; path-scoped checks
	// (detrand, nanguard) key off it.
	ImportPath string
	Pkg        *types.Package
	Info       *types.Info
	// Dep resolves already-loaded module-internal dependencies (may be
	// nil); see Package.Dep.
	Dep func(importPath string) *Package

	allow *allowIndex
	out   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //lint:allow directive
// for this check covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportfFix records a diagnostic carrying a machine-applicable fix
// (see Fix and ApplyFixes); suppression works exactly as in Reportf.
func (p *Pass) ReportfFix(pos token.Pos, fix *Fix, format string, args ...any) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow != nil && p.allow.allows(p.Analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// All returns every registered analyzer in stable (alphabetical)
// order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		DetRand,
		ErrcheckLite,
		FloatCmp,
		GoLeak,
		LibPanic,
		LockOrder,
		NaNGuard,
		ReuseCheck,
		WaitCheck,
	}
}

// ByName resolves a check ID; nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the given analyzers to a loaded package and returns the
// surviving diagnostics sorted by position.
func Run(pkg *Package, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allow := buildAllowIndex(pkg.Fset, pkg.Files)
	for _, a := range as {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			ImportPath: pkg.ImportPath,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			Dep:        pkg.Dep,
			allow:      allow,
			out:        &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Check < diags[j].Check
	})
	return diags
}

// isFloat reports whether expr has a floating-point (or
// floating-typed named) type according to the type-checker.
func isFloat(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isConst reports whether expr is a compile-time constant.
func isConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, function values, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function from the named
// package (by package path).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
