package analyzers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic comments in fixture files:
//
//	code // want "regexp"
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// golden runs one analyzer over one fixture package (loaded under an
// explicit import path so path-scoped checks apply) and compares the
// diagnostics against the // want comments in the fixture sources.
func golden(t *testing.T, analyzer *Analyzer, fixtureDir, importPath string) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", fixtureDir)
	pkg, err := loader.LoadDirAs(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}

	diags := Run(pkg, []*Analyzer{analyzer})

	type key struct {
		file string
		line int
	}
	got := make(map[key][]Diagnostic)
	for _, d := range diags {
		k := key{filepath.Base(d.File), d.Line}
		got[k] = append(got[k], d)
	}

	// Collect expectations by scanning the fixture sources directly:
	// a // want on a line expects exactly one diagnostic there.
	want := make(map[key]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[1], err)
			}
			want[key{e.Name(), i + 1}] = re
		}
	}

	for k, re := range want {
		ds := got[k]
		if len(ds) == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			continue
		}
		matched := false
		for _, d := range ds {
			if re.MatchString(d.Check + ": " + d.Message) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: diagnostics %v do not match %q", k.file, k.line, ds, re)
		}
	}
	for k, ds := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s:%d: unexpected diagnostic %s", k.file, k.line, ds[0])
		}
	}
}

func TestFloatCmpGolden(t *testing.T) {
	golden(t, FloatCmp, "floatcmp", "xbar/internal/fixtures/floatcmp")
}

func TestDetRandGolden(t *testing.T) {
	golden(t, DetRand, "detrand", "xbar/internal/fixtures/detrand")
}

func TestDetRandScopedToInternal(t *testing.T) {
	// The same fixture loaded under a non-internal path reports
	// nothing: detrand only polices internal packages.
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", "detrand"), "xbar/examples/detrand")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkg, []*Analyzer{DetRand}); len(diags) != 0 {
		t.Errorf("detrand fired outside internal/: %v", diags)
	}
}

func TestLibPanicGolden(t *testing.T) {
	golden(t, LibPanic, "libpanic", "xbar/internal/fixtures/libpanic")
}

func TestNaNGuardGolden(t *testing.T) {
	golden(t, NaNGuard, "nanguard", "xbar/internal/core")
}

func TestNaNGuardScopedToNumericCore(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", "nanguard"), "xbar/internal/report")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkg, []*Analyzer{NaNGuard}); len(diags) != 0 {
		t.Errorf("nanguard fired outside the numeric core packages: %v", diags)
	}
}

func TestErrcheckGolden(t *testing.T) {
	golden(t, ErrcheckLite, "errcheck", "xbar/internal/fixtures/errcheck")
}

func TestWaitCheckGolden(t *testing.T) {
	golden(t, WaitCheck, "waitcheck", "xbar/internal/fixtures/waitcheck")
}

func TestLockOrderGolden(t *testing.T) {
	golden(t, LockOrder, "lockorder", "xbar/internal/fixtures/lockorder")
}

func TestGoLeakGolden(t *testing.T) {
	golden(t, GoLeak, "goleak", "xbar/internal/fixtures/goleak")
}

func TestReuseCheckGolden(t *testing.T) {
	golden(t, ReuseCheck, "reusecheck", "xbar/internal/fixtures/reusecheck")
}

func TestCtxFlowGolden(t *testing.T) {
	golden(t, CtxFlow, "ctxflow", "xbar/internal/server")
}

func TestCtxFlowScopedToServerAndParallel(t *testing.T) {
	// The same fixture loaded under an unscoped path reports nothing:
	// ctxflow only polices the server and parallel packages.
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", "ctxflow"), "xbar/internal/report")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkg, []*Analyzer{CtxFlow}); len(diags) != 0 {
		t.Errorf("ctxflow fired outside its scoped packages: %v", diags)
	}
}

func TestByNameAndAll(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
	for _, expect := range []string{
		"floatcmp", "detrand", "libpanic", "nanguard", "errcheck",
		"lockorder", "goleak", "reusecheck", "ctxflow", "waitcheck",
	} {
		if !names[expect] {
			t.Errorf("missing analyzer %q", expect)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: "floatcmp", File: "a.go", Line: 3, Col: 7, Message: "msg"}
	if got, want := d.String(), "a.go:3:7: floatcmp: msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestWholeModuleClean is the repo's own gate: the linter must be
// clean on the tree it ships in. It mirrors the CI invocation
// `go run ./cmd/xbarlint ./...`.
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{loader.ModRoot + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("expected to find the module's ~30 packages, got %d dirs", len(dirs))
	}
	var all []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		all = append(all, Run(pkg, All())...)
	}
	for _, d := range all {
		t.Errorf("unexpected diagnostic on clean tree: %s", d)
	}
}

// TestParseAllow covers the directive parser corner cases.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		in    string
		check string
		ok    bool
	}{
		{"//lint:allow floatcmp reason here", "floatcmp", true},
		{"// lint:allow libpanic", "libpanic", true},
		{"//lint:allow", "", false},
		{"// regular comment", "", false},
		{"//lint:disable floatcmp", "", false},
	}
	for _, c := range cases {
		check, ok := parseAllow(c.in)
		if check != c.check || ok != c.ok {
			t.Errorf("parseAllow(%q) = %q, %v; want %q, %v", c.in, check, ok, c.check, c.ok)
		}
	}
}

// TestExpandSkipsTestdata ensures the walker honors the go tool's
// directory conventions.
func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{loader.ModRoot + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, string(filepath.Separator)+"testdata") {
			t.Errorf("Expand returned testdata dir %s", d)
		}
	}
}

// TestLoaderPositions sanity-checks that diagnostics carry real
// file:line positions from the shared FileSet.
func TestLoaderPositions(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", "floatcmp"), "xbar/internal/fixtures/floatcmp")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{FloatCmp})
	if len(diags) == 0 {
		t.Fatal("no diagnostics from fixture")
	}
	for _, d := range diags {
		if filepath.Base(d.File) != "floatcmp.go" || d.Line <= 0 || d.Col <= 0 {
			t.Errorf("bad position in %+v", d)
		}
	}
}
