package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags goroutines with no way out:
//
//   - a spawned function literal whose CFG can never reach its exit
//     (an unconditional spin loop) and that performs no channel or
//     context operation — nothing can ever stop it;
//   - a send on an unbuffered locally-made channel from inside a
//     spawned literal when the spawning function can return before
//     any receive: the sender blocks forever and the goroutine (plus
//     everything it pins) leaks.
//
// The second rule is deliberately syntactic about ordering — a return
// statement strictly between the go statement and the first receive in
// source order — because the repo's legitimate handshakes (the
// wavefront pool's unbuffered done channel) interleave spawn and
// receive with no early exit between them, while the leak shape
// (spawn, early-return on error, receive) reads top to bottom. A
// channel that escapes through a call, return, or store is assumed
// received elsewhere.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines without a termination path and unbuffered sends that can block forever",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	funcDecls(pass, func(decl *ast.FuncDecl, g *funcCFG) {
		body := decl.Body
		// Rule 1: spin goroutines, anywhere in the body (including
		// inside other literals).
		ast.Inspect(body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			cfg := buildCFG(lit.Body)
			if !reachable(cfg.entry, cfg.exit) && !hasEscapeOp(pass, lit.Body) {
				pass.Reportf(gs.Pos(),
					"goroutine never terminates: no return path and no channel, select, or context operation")
			}
			return true
		})
		// Rule 2: blocked unbuffered sends, at the top level of this
		// function body.
		checkUnbufferedSends(pass, body)
	})
}

// hasEscapeOp reports whether body contains any operation that could
// let the goroutine block, observe cancellation, or be stopped: a
// channel send/receive/range/select, or a call on a context.Context.
func hasEscapeOp(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanType(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// chanUse summarizes how one locally-made unbuffered channel is used
// inside a function body.
type chanUse struct {
	sends    []*ast.SendStmt // sends inside spawned literals, outside select
	recvs    []token.Pos     // receives anywhere (any goroutine unblocks the sender)
	returns  []token.Pos     // top-level returns (not inside literals)
	goEnds   []token.Pos     // end positions of the go statements containing sends
	escapes  bool
	closed   bool
	spawnPos token.Pos
}

// checkUnbufferedSends applies rule 2 to one function body.
func checkUnbufferedSends(pass *Pass, body *ast.BlockStmt) {
	// Locally-made unbuffered channels: ch := make(chan T) (or an
	// explicit constant-zero capacity).
	unbuffered := make(map[types.Object]*chanUse)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isUnbufferedMake(pass, rhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				unbuffered[obj] = &chanUse{}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}

	lookup := func(expr ast.Expr) *chanUse {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return nil
		}
		return unbuffered[obj]
	}

	// One walk classifying every use; the parameters track whether the
	// walk is inside a spawned literal, a select, or any literal.
	var walk func(n ast.Node, inGo *ast.GoStmt, inSelect, inLit bool)
	walk = func(n ast.Node, inGo *ast.GoStmt, inSelect, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				if m != n {
					walk(m.Call, m, inSelect, true)
					return false
				}
			case *ast.SelectStmt:
				if m != n {
					walk(m.Body, inGo, true, inLit)
					return false
				}
			case *ast.FuncLit:
				if m != n {
					walk(m.Body, inGo, inSelect, true)
					return false
				}
			case *ast.SendStmt:
				if u := lookup(m.Chan); u != nil && inGo != nil && !inSelect {
					u.sends = append(u.sends, m)
					u.goEnds = append(u.goEnds, inGo.End())
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					if u := lookup(m.X); u != nil {
						u.recvs = append(u.recvs, m.Pos())
					}
				}
			case *ast.RangeStmt:
				if u := lookup(m.X); u != nil {
					u.recvs = append(u.recvs, m.Pos())
				}
			case *ast.ReturnStmt:
				for _, res := range m.Results {
					if u := lookup(res); u != nil {
						u.escapes = true // handed to the caller; received elsewhere
					}
				}
				if inGo == nil && !inLit {
					for u := range iterUses(unbuffered) {
						u.returns = append(u.returns, m.Pos())
					}
				}
			case *ast.CallExpr:
				// close(ch) terminates receivers, not senders; any other
				// call taking the channel is an escape.
				for _, arg := range m.Args {
					if u := lookup(arg); u != nil {
						if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Obj == nil &&
							(id.Name == "close" || id.Name == "len" || id.Name == "cap") {
							if id.Name == "close" {
								u.closed = true
							}
							continue
						}
						u.escapes = true
					}
				}
			case *ast.CompositeLit:
				for _, elt := range m.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					if u := lookup(elt); u != nil {
						u.escapes = true
					}
				}
			}
			return true
		})
	}
	walk(body, nil, false, false)

	for _, u := range unbuffered {
		if u.escapes || len(u.sends) == 0 {
			continue
		}
		for i, send := range u.sends {
			goEnd := u.goEnds[i]
			// First receive after the spawn, in source order.
			var firstRecv token.Pos = token.NoPos
			for _, r := range u.recvs {
				if r > goEnd && (firstRecv == token.NoPos || r < firstRecv) {
					firstRecv = r
				}
			}
			if firstRecv == token.NoPos {
				if len(u.recvs) == 0 {
					pass.Reportf(send.Pos(),
						"send on unbuffered channel with no receive in scope; the goroutine blocks forever")
				}
				// Receives exist only before the spawn (loop shapes):
				// assume the loop services it.
				continue
			}
			for _, ret := range u.returns {
				if ret > goEnd && ret < firstRecv {
					pass.Reportf(send.Pos(),
						"send on unbuffered channel can block forever: the function can return at %s before the receive at %s",
						pass.Fset.Position(ret), pass.Fset.Position(firstRecv))
					break
				}
			}
		}
	}
}

// iterUses adapts the map for the classifying walk.
func iterUses(m map[types.Object]*chanUse) map[*chanUse]bool {
	out := make(map[*chanUse]bool, len(m))
	for _, u := range m {
		out[u] = true
	}
	return out
}

// isUnbufferedMake matches make(chan T) and make(chan T, 0) with a
// constant zero capacity.
func isUnbufferedMake(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || id.Obj != nil || len(call.Args) == 0 {
		return false
	}
	tv0, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv0.Type == nil {
		return false
	}
	if _, ok := tv0.Type.Underlying().(*types.Chan); !ok {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	tv, ok := pass.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}
