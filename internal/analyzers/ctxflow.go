package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow polices context plumbing in the packages where dropping it
// hurts: the HTTP server and the parallel schedulers. Scoped like
// nanguard/detrand by import path, it reports
//
//   - a named context.Context parameter the function never reads —
//     cancellation silently stops propagating there;
//   - context.Background()/context.TODO() created inside a loop in a
//     function that already has a context parameter — each iteration
//     detaches from the caller's cancellation;
//   - a select inside a loop, in a function with a context parameter,
//     with neither a ctx.Done() case nor a default — the loop can
//     outlive its request.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "dropped context.Context parameters and loops that ignore cancellation (server, parallel)",
	Run:  runCtxFlow,
}

// ctxFlowPaths are the import paths the check applies to.
var ctxFlowPaths = []string{
	"xbar/internal/server",
	"xbar/internal/parallel",
}

func runCtxFlow(pass *Pass) {
	scoped := false
	for _, p := range ctxFlowPaths {
		if pass.ImportPath == p {
			scoped = true
		}
	}
	if !scoped {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd)
		}
	}
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	ctxParams := contextParams(pass, fd.Type)
	for obj, pos := range ctxParams {
		if !objUsed(pass, fd.Body, obj) {
			pass.Reportf(pos, "context parameter %s is never used; cancellation stops propagating here", obj.Name())
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	// Loop rules only apply when the function has a context to honor.
	inspectLoops(fd.Body, func(loopBody *ast.BlockStmt) {
		ast.Inspect(loopBody, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, n); isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					pass.Reportf(n.Pos(), "context.%s created inside a loop; derive from the function's context instead", fn.Name())
				}
			case *ast.SelectStmt:
				if !selectHonorsCtx(pass, n, ctxParams) {
					pass.Reportf(n.Pos(), "select in a loop has no ctx.Done() case and no default; the loop can outlive its context")
				}
				return false // nested selects judged on their own
			}
			return true
		})
	})
}

// contextParams collects the named context.Context parameters.
func contextParams(pass *Pass, ft *ast.FuncType) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			out[obj] = name.Pos()
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// objUsed reports whether obj is referenced anywhere in body.
func objUsed(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// inspectLoops visits every for/range body in body, including nested
// ones, staying out of function literals (their context discipline is
// their own).
func inspectLoops(body *ast.BlockStmt, visit func(*ast.BlockStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			visit(n.Body)
		case *ast.RangeStmt:
			visit(n.Body)
		}
		return true
	})
}

// selectHonorsCtx reports whether sel has a default case or any comm
// clause mentioning a context parameter or a Done() call.
func selectHonorsCtx(pass *Pass, sel *ast.SelectStmt, ctxParams map[types.Object]token.Pos) bool {
	for _, cc := range sel.Body.List {
		clause, ok := cc.(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm == nil {
			return true // default: the loop polls, it does not block
		}
		honors := false
		ast.Inspect(clause.Comm, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.Info.Uses[n]; obj != nil {
					if _, ok := ctxParams[obj]; ok {
						honors = true
					}
				}
			case *ast.SelectorExpr:
				if n.Sel.Name == "Done" || strings.HasSuffix(n.Sel.Name, "Done") {
					honors = true
				}
			}
			return !honors
		})
		if honors {
			return true
		}
	}
	return false
}
