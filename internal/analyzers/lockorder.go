package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder is the first flow-sensitive check: it tracks sync.Mutex /
// sync.RWMutex acquisitions through each function's CFG and reports
//
//   - a return (explicit or fall-off-the-end) on a path where a lock
//     is still held and no defer releases it — the early-return leak
//     that serializes a server for good;
//   - re-acquiring a lock already held on some path (self-deadlock;
//     RLock-while-RLock is allowed);
//   - inconsistent acquisition order: if one function acquires B while
//     holding A and another (or the same) acquires A while holding B,
//     both sites are reported — the classic ABBA deadlock.
//
// The analysis is intraprocedural and keys locks symbolically: a
// field selector by its named type and field (every instance of
// core.Engine.mu is "the same lock" for ordering), a package-level
// var by its qualified name, a local by its declaration. Channel
// semaphores and other hand-rolled locks are out of scope — the
// repo's entry locks deliberately support try-lock shapes a
// must-analysis cannot follow.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "sync.Mutex/RWMutex held across returns and inconsistent lock acquisition order",
	Run:  runLockOrder,
}

// heldLock is one tracked acquisition.
type heldLock struct {
	pos      token.Pos // the Lock/RLock call
	read     bool      // RLock rather than Lock
	deferred bool      // a defer releasing it has been seen
}

// lockState maps lock keys to their acquisition on every path
// reaching a point (must-analysis: intersection join).
type lockState map[string]heldLock

func cloneLockState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinLockState(a, b lockState) lockState {
	out := make(lockState)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			// Held on both paths; the release is guaranteed only if
			// both paths deferred one.
			va.deferred = va.deferred && vb.deferred
			out[k] = va
		}
	}
	return out
}

func equalLockState(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.deferred != vb.deferred || va.read != vb.read {
			return false
		}
	}
	return true
}

// lockOp is one Lock/Unlock call found inside a node.
type lockOp struct {
	key    string
	name   string // display form for messages
	pos    token.Pos
	read   bool
	unlock bool
}

func runLockOrder(pass *Pass) {
	// order[a][b] records the first site where b was acquired while a
	// was held; names maps keys to display strings.
	order := make(map[string]map[string]token.Pos)
	names := make(map[string]string)

	funcDecls(pass, func(decl *ast.FuncDecl, g *funcCFG) {
		d := dataflow[lockState]{
			bottom:   func() lockState { return make(lockState) },
			clone:    cloneLockState,
			join:     joinLockState,
			equal:    equalLockState,
			transfer: func(s lockState, n ast.Node) { lockTransfer(pass, s, n) },
		}
		runForward(g, d, func(n ast.Node, before lockState) {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				reportHeld(pass, before, n.Pos(), names)
			case *implicitReturn:
				reportHeld(pass, before, n.Pos(), names)
			case *ast.DeferStmt, *ast.GoStmt:
				return // releases, not uses; spawned bodies are separate
			default:
				for _, op := range lockOpsIn(pass, n) {
					names[op.key] = op.name
					if op.unlock {
						continue
					}
					if h, ok := before[op.key]; ok && !(h.read && op.read) {
						pass.Reportf(op.pos, "%s acquired while already held (self-deadlock); first acquired at %s",
							op.name, pass.Fset.Position(h.pos))
					}
					for k := range before {
						if k == op.key {
							continue
						}
						if order[k] == nil {
							order[k] = make(map[string]token.Pos)
						}
						if _, ok := order[k][op.key]; !ok {
							order[k][op.key] = op.pos
						}
					}
				}
			}
		})
	})

	// Order-inversion pass over the whole package's acquisition graph:
	// report every edge a→b that lies on a cycle.
	var froms []string
	for a := range order {
		froms = append(froms, a)
	}
	sort.Strings(froms)
	for _, a := range froms {
		var tos []string
		for b := range order[a] {
			tos = append(tos, b)
		}
		sort.Strings(tos)
		for _, b := range tos {
			if orderReaches(order, b, a) {
				pass.Reportf(order[a][b],
					"%s acquired while holding %s, but elsewhere %s is acquired while holding %s (lock order inversion)",
					names[b], names[a], names[a], names[b])
			}
		}
	}
}

// reportHeld flags every lock still held (and not deferred-released)
// at a return point.
func reportHeld(pass *Pass, s lockState, pos token.Pos, names map[string]string) {
	var keys []string
	for k, h := range s {
		if !h.deferred {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		pass.Reportf(pos, "return with %s held (acquired at %s); unlock before returning or defer the unlock",
			names[k], pass.Fset.Position(s[k].pos))
	}
}

// lockTransfer applies one node's lock effects to s.
func lockTransfer(pass *Pass, s lockState, n ast.Node) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock(), or defer func(){ ... mu.Unlock() ... }():
		// every unlock inside marks its lock released-at-exit.
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			for _, op := range lockOpsIn(pass, lit.Body) {
				markDeferred(s, op)
			}
		} else if op, ok := callLockOp(pass, n.Call); ok {
			markDeferred(s, op)
		}
	case *ast.GoStmt:
		// Runs concurrently; its locking is analyzed when its literal
		// is (not) reached — out of intraprocedural scope.
	default:
		for _, op := range lockOpsIn(pass, n) {
			if op.unlock {
				delete(s, op.key)
			} else {
				if h, ok := s[op.key]; ok {
					// Keep the first acquisition; preserve deferred.
					h.read = h.read && op.read
					s[op.key] = h
				} else {
					s[op.key] = heldLock{pos: op.pos, read: op.read}
				}
			}
		}
	}
}

func markDeferred(s lockState, op lockOp) {
	if !op.unlock {
		return
	}
	if h, ok := s[op.key]; ok {
		h.deferred = true
		s[op.key] = h
	}
}

// lockOpsIn collects the Mutex/RWMutex operations syntactically inside
// n, in source order, without descending into function literals or
// go/defer statements (those run elsewhere).
func lockOpsIn(pass *Pass, n ast.Node) []lockOp {
	if _, ok := n.(*implicitReturn); ok {
		return nil // synthetic node, not walkable
	}
	var ops []lockOp
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := callLockOp(pass, m); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// callLockOp decodes call as a sync.(RW)Mutex Lock/Unlock/RLock/
// RUnlock method call on an addressable receiver.
func callLockOp(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var read, unlock bool
	switch fn.Name() {
	case "Lock":
	case "RLock":
		read = true
	case "Unlock":
		unlock = true
	case "RUnlock":
		read, unlock = true, true
	default:
		return lockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	key, name := lockKey(pass, sel.X)
	return lockOp{key: key, name: name, pos: call.Pos(), read: read, unlock: unlock}, true
}

// lockKey derives the symbolic identity of a lock expression, plus a
// display name for messages.
func lockKey(pass *Pass, expr ast.Expr) (key, name string) {
	expr = ast.Unparen(expr)
	name = types.ExprString(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "pkg:" + v.Pkg().Path() + "." + v.Name(), name
			}
			return fmt.Sprintf("local:%d", v.Pos()), name
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[e]; sel != nil {
			// Field selector: key by the named receiver type and field
			// so every instance of that type shares one ordering node.
			t := sel.Recv()
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return "field:" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name, name
			}
		}
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Qualified package-level var (otherpkg.Mu).
			return "pkg:" + v.Pkg().Path() + "." + v.Name(), name
		}
	}
	return "expr:" + name, name
}

// orderReaches reports whether `to` is reachable from `from` in the
// acquired-while-holding graph.
func orderReaches(order map[string]map[string]token.Pos, from, to string) bool {
	seen := make(map[string]bool)
	var walk func(k string) bool
	walk = func(k string) bool {
		if k == to {
			return true
		}
		if seen[k] {
			return false
		}
		seen[k] = true
		for next := range order[k] {
			if walk(next) {
				return true
			}
		}
		return false
	}
	return walk(from)
}
