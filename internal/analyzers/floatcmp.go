package analyzers

import (
	"go/ast"
	"go/token"
)

// FloatCmp flags == and != between floating-point operands. Exact
// float equality is almost never what the numeric code means: the
// recursions of Algorithm 1 and the convolution solver accumulate
// rounding at every step, so equality decisions must go through
// xbar/internal/floats (AlmostEqual / Near / Zero) or, for NaN and
// Inf, through math.IsNaN / math.IsInf. Comparisons where both sides
// are compile-time constants are exact by construction and not
// flagged; test files are out of scope.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "== or != on floating-point operands; use xbar/internal/floats or math.IsNaN/IsInf",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, be.X) && !isFloat(pass.Info, be.Y) {
				return true
			}
			// A comparison folded at compile time is exact.
			if isConst(pass.Info, be.X) && isConst(pass.Info, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"%s on float operands; use floats.AlmostEqual/Near/Zero (xbar/internal/floats) or math.IsNaN/IsInf",
				be.Op)
			return true
		})
	}
}
