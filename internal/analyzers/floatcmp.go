package analyzers

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Exact
// float equality is almost never what the numeric code means: the
// recursions of Algorithm 1 and the convolution solver accumulate
// rounding at every step, so equality decisions must go through
// xbar/internal/floats (AlmostEqual / Near / Zero) or, for NaN and
// Inf, through math.IsNaN / math.IsInf. Comparisons where both sides
// are compile-time constants are exact by construction and not
// flagged; test files are out of scope.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "== or != on floating-point operands; use xbar/internal/floats or math.IsNaN/IsInf",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, be.X) && !isFloat(pass.Info, be.Y) {
				return true
			}
			// A comparison folded at compile time is exact.
			if isConst(pass.Info, be.X) && isConst(pass.Info, be.Y) {
				return true
			}
			pass.ReportfFix(be.OpPos, zeroCmpFix(pass, be),
				"%s on float operands; use floats.AlmostEqual/Near/Zero (xbar/internal/floats) or math.IsNaN/IsInf",
				be.Op)
			return true
		})
	}
}

// zeroCmpFix builds the floats.Zero rewrite for a comparison of a
// float64 expression against a constant zero; nil when the shape does
// not apply. The operand must be exactly float64 (not float32, not a
// named float type) because that is floats.Zero's parameter type.
func zeroCmpFix(pass *Pass, be *ast.BinaryExpr) *Fix {
	var operand ast.Expr
	switch {
	case isZeroConst(pass.Info, be.X) && !isConst(pass.Info, be.Y):
		operand = be.Y
	case isZeroConst(pass.Info, be.Y) && !isConst(pass.Info, be.X):
		operand = be.X
	default:
		return nil
	}
	tv, ok := pass.Info.Types[operand]
	if !ok || tv.Type == nil {
		return nil
	}
	if basic, ok := tv.Type.(*types.Basic); !ok || basic.Kind() != types.Float64 {
		return nil
	}
	neg := ""
	if be.Op == token.NEQ {
		neg = "!"
	}
	return &Fix{
		Start:  pass.Fset.Position(be.Pos()).Offset,
		End:    pass.Fset.Position(be.End()).Offset,
		New:    fmt.Sprintf("%sfloats.Zero(%s)", neg, types.ExprString(operand)),
		Import: "xbar/internal/floats",
	}
}

// isZeroConst reports whether expr is a compile-time numeric constant
// equal to zero.
func isZeroConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
