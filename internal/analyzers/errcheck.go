package analyzers

import (
	"go/ast"
	"go/types"
)

// ErrcheckLite flags expression statements that call a function
// returning an error and drop the result on the floor. A silently
// ignored error from, say, a results writer means an experiment table
// quietly never lands on disk. The check is deliberately lite: only
// bare call statements are flagged (not `defer`, not assignments to
// blank), and the fmt print family plus the never-failing
// strings.Builder / bytes.Buffer writers are exempt, matching the
// classic errcheck defaults.
var ErrcheckLite = &Analyzer{
	Name: "errcheck",
	Doc:  "call statement discards an error result",
	Run:  runErrcheckLite,
}

// errcheckExemptTypes are receiver types whose Write* methods are
// documented never to return a non-nil error.
var errcheckExemptTypes = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runErrcheckLite(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || !returnsError(pass.Info, call) {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if exemptCallee(fn) {
				return true
			}
			name := "call"
			if fn != nil {
				name = fn.Name()
			}
			pass.Reportf(call.Pos(), "result of %s discards an error; handle or assign it", name)
			return true
		})
	}
}

// returnsError reports whether the call's result type is error or a
// tuple containing an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptCallee reports whether fn is on the default ignore list: the
// fmt print family (whose errors are os.Stdout write failures nobody
// can act on) and methods of never-failing writers.
func exemptCallee(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return errcheckExemptTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
