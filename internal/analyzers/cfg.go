package analyzers

import (
	"go/ast"
	"go/token"
)

// This file is the bottom half of xbarlint's flow-sensitive tier: an
// intraprocedural control-flow graph over a function body's statement
// list. The graph is deliberately small — basic blocks hold ast.Node
// slices in source order, edges are successor pointers — because the
// checks built on it (lockorder, goleak, reusecheck) only need forward
// reachability and a fixpoint over block entry states, not SSA.
//
// Modeling choices, all conservative for the checks we run:
//
//   - A return statement edges to the synthetic exit block; the
//     statements after it in the same block list are unreachable and
//     land in a successor-less dead block.
//   - A call to the builtin panic terminates its block with no
//     successors: panicking paths do not reach exit, so a held lock or
//     pooled value on a pure panic path is not reported.
//   - `for { ... }` with no condition gets no edge to the statement
//     after the loop; exit stays reachable only through break or
//     return. goleak's spin-loop rule is exactly "exit unreachable".
//   - select{} with no cases blocks forever: no successors.
//   - goto edges to exit (not to its label). This overapproximates
//     where control can go and is the one place the CFG is wrong on
//     purpose; the module does not use goto.
//   - Function literals are NOT inlined. Their bodies get their own
//     CFGs via cfgForFuncs; the enclosing graph treats the literal as
//     an opaque value.
//
// Falling off the end of a function is represented by a synthetic
// implicitReturn node placed at the body's closing brace, so checks
// can report "returns with X held" at a real position even when there
// is no return statement.

// cfgBlock is one basic block: nodes in source order, then successor
// edges. Nodes are statements and, for conditionals, the condition
// expression (so transfer functions see it evaluated before the
// branch).
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is one function body's graph.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// implicitReturn is the synthetic node appended on the fall-off-the-
// end path. It implements ast.Node so it can live in a block's node
// list; checks type-switch on it to report at the closing brace.
type implicitReturn struct{ rbrace token.Pos }

func (r *implicitReturn) Pos() token.Pos { return r.rbrace }
func (r *implicitReturn) End() token.Pos { return r.rbrace + 1 }

// cfgBuilder carries the loop/label context during construction.
type cfgBuilder struct {
	g *funcCFG
	// breakTo / continueTo map the innermost (and labeled) loop or
	// switch targets. The empty label "" is the innermost target.
	breakTo    map[string]*cfgBlock
	continueTo map[string]*cfgBlock
	// labels records the label attached to a loop statement by its
	// enclosing LabeledStmt, so the loop can register labeled
	// break/continue targets.
	labels map[ast.Stmt]string
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	g.exit = &cfgBlock{}
	b := &cfgBuilder{
		g:          g,
		breakTo:    make(map[string]*cfgBlock),
		continueTo: make(map[string]*cfgBlock),
		labels:     make(map[ast.Stmt]string),
	}
	g.entry = b.newBlock()
	last := b.stmts(g.entry, body.List)
	if last != nil {
		// Fall off the end: synthesize the implicit return.
		last.nodes = append(last.nodes, &implicitReturn{rbrace: body.Rbrace})
		b.edge(last, g.exit)
	}
	g.blocks = append(g.blocks, g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// stmts threads a statement list through cur, returning the block
// holding the fall-through continuation (nil when the list ends in a
// terminator such as return, panic, or an infinite loop).
func (b *cfgBuilder) stmts(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for i, s := range list {
		cur = b.stmt(cur, s)
		if cur == nil {
			// Unreachable remainder: park it in a dead block with no
			// predecessors so positions still exist, then stop.
			if i+1 < len(list) {
				dead := b.newBlock()
				b.stmts(dead, list[i+1:])
			}
			return nil
		}
	}
	return cur
}

// stmt adds one statement to cur, returning the continuation block
// (often cur itself), or nil if s terminates control flow.
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.g.exit)
		return nil

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isBuiltinPanic(call) {
			return nil
		}
		return cur

	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
			if cur == nil {
				return nil
			}
		}
		cur.nodes = append(cur.nodes, s.Cond)
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then)
		if t := b.stmts(then, s.Body.List); t != nil {
			b.edge(t, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			if e := b.stmt(els, s.Else); e != nil {
				b.edge(e, after)
			}
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
			if cur == nil {
				return nil
			}
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			b.edge(head, after)
		}
		// `for {}`: no head→after edge; after is reachable only via
		// break.
		b.edge(head, body)
		prevBreak, prevCont := b.breakTo[""], b.continueTo[""]
		b.breakTo[""], b.continueTo[""] = after, head
		lbl := b.labels[s]
		if lbl != "" {
			b.breakTo[lbl], b.continueTo[lbl] = after, head
		}
		if t := b.stmts(body, s.Body.List); t != nil {
			if s.Post != nil {
				t = b.stmt(t, s.Post)
			}
			if t != nil {
				b.edge(t, head)
			}
		}
		b.breakTo[""], b.continueTo[""] = prevBreak, prevCont
		if lbl != "" {
			delete(b.breakTo, lbl)
			delete(b.continueTo, lbl)
		}
		return after

	case *ast.RangeStmt:
		cur.nodes = append(cur.nodes, s.X)
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(cur, head)
		b.edge(head, after) // range may iterate zero times
		b.edge(head, body)
		prevBreak, prevCont := b.breakTo[""], b.continueTo[""]
		b.breakTo[""], b.continueTo[""] = after, head
		lbl := b.labels[s]
		if lbl != "" {
			b.breakTo[lbl], b.continueTo[lbl] = after, head
		}
		if t := b.stmts(body, s.Body.List); t != nil {
			b.edge(t, head)
		}
		b.breakTo[""], b.continueTo[""] = prevBreak, prevCont
		if lbl != "" {
			delete(b.breakTo, lbl)
			delete(b.continueTo, lbl)
		}
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, body = sw.Init, sw.Body
			if sw.Tag != nil {
				cur.nodes = append(cur.nodes, sw.Tag)
			}
		case *ast.TypeSwitchStmt:
			init, body = sw.Init, sw.Body
		}
		if init != nil {
			cur = b.stmt(cur, init)
			if cur == nil {
				return nil
			}
		}
		after := b.newBlock()
		prevBreak := b.breakTo[""]
		b.breakTo[""] = after
		hasDefault := false
		for _, cc := range body.List {
			clause := cc.(*ast.CaseClause)
			if clause.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			b.edge(cur, blk)
			blk.nodes = append(blk.nodes, clause)
			if t := b.stmts(blk, clause.Body); t != nil {
				b.edge(t, after)
			}
		}
		if !hasDefault {
			b.edge(cur, after)
		}
		b.breakTo[""] = prevBreak
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		prevBreak := b.breakTo[""]
		b.breakTo[""] = after
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			b.breakTo[""] = prevBreak
			return nil
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			blk.nodes = append(blk.nodes, clause)
			if t := b.stmts(blk, clause.Body); t != nil {
				b.edge(t, after)
			}
		}
		b.breakTo[""] = prevBreak
		return after

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, s)
		lbl := ""
		if s.Label != nil {
			lbl = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.breakTo[lbl]; t != nil {
				b.edge(cur, t)
			} else {
				b.edge(cur, b.g.exit)
			}
		case token.CONTINUE:
			if t := b.continueTo[lbl]; t != nil {
				b.edge(cur, t)
			} else {
				b.edge(cur, b.g.exit)
			}
		case token.GOTO:
			// Conservative: goto may go anywhere; route to exit.
			b.edge(cur, b.g.exit)
		case token.FALLTHROUGH:
			// The next case clause's block has no edge from here in
			// this simplified model; treat as fall-through to after,
			// which the enclosing switch already wired. Ending the
			// block keeps the state merge conservative.
			return cur
		}
		return nil

	case *ast.LabeledStmt:
		// Record the label for its statement: loops register labeled
		// break/continue targets when they see themselves in b.labels.
		b.labels[s.Stmt] = s.Label.Name
		return b.stmt(cur, s.Stmt)

	default:
		// Assignments, declarations, sends, go/defer statements,
		// increments: straight-line nodes.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// isBuiltinPanic reports whether call is the predeclared panic.
func isBuiltinPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

// reachable reports whether to is reachable from from along successor
// edges.
func reachable(from, to *cfgBlock) bool {
	seen := make(map[*cfgBlock]bool)
	var walk func(b *cfgBlock) bool
	walk = func(b *cfgBlock) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// funcDecls yields every function and method declaration with a body
// in the pass, paired with its CFG. Function literals are not
// included; checks that need them build CFGs on demand via buildCFG.
func funcDecls(pass *Pass, visit func(decl *ast.FuncDecl, g *funcCFG)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd, buildCFG(fd.Body))
		}
	}
}
