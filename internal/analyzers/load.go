package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects soft type-checking errors. Analysis still
	// runs — the type information is simply incomplete where they
	// occurred — but callers may want to surface them.
	TypeErrors []error
	// Dep resolves an already-loaded module-internal dependency by
	// import path (nil function, or nil result, when unavailable).
	// Checks use it to read directives such as //lint:pooled off the
	// declarations of cross-package callees; positions are comparable
	// because every package of a loader shares one FileSet.
	Dep func(importPath string) *Package
}

// Loader parses and type-checks packages of a single module, using
// only the standard library. Module-internal imports resolve by
// mapping the import path under the module path onto the module
// directory tree; everything else (the standard library) resolves
// through the compiler's default importer.
type Loader struct {
	ModRoot string // directory containing go.mod
	ModPath string // module path declared in go.mod
	Fset    *token.FileSet

	byDir    map[string]*Package
	byPath   map[string]*Package
	loading  map[string]bool
	fallback types.Importer
}

// NewLoader locates the enclosing module of startDir and returns a
// loader for it.
func NewLoader(startDir string) (*Loader, error) {
	root, err := findModuleRoot(startDir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModRoot:  root,
		ModPath:  modPath,
		Fset:     token.NewFileSet(),
		byDir:    make(map[string]*Package),
		byPath:   make(map[string]*Package),
		loading:  make(map[string]bool),
		fallback: importer.Default(),
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Expand resolves command-line package patterns to package
// directories. Supported forms: "./...", "dir/...", "dir", ".".
// Directories named testdata or vendor, hidden directories, and
// directories starting with underscore are skipped, matching the go
// tool's convention.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil || seen[abs] {
			return
		}
		if hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "" || base == "." {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if skipDir(d.Name()) && path != base {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pat, err)
			}
			continue
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir, deriving its import path from the
// module layout.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.LoadDirAs(abs, l.importPathFor(abs))
}

// LoadDirAs loads the package in dir under an explicit import path.
// The override is what lets the golden tests exercise path-scoped
// checks (nanguard, detrand) on fixtures living under testdata/.
func (l *Loader) LoadDirAs(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        abs,
		Name:       files[0].Name.Name,
		Fset:       l.Fset,
		Files:      files,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: moduleImporter{l},
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// With a non-nil Error handler Check keeps going past soft errors;
	// the returned package is usable even when incomplete.
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	pkg.Dep = func(path string) *Package { return l.byPath[path] }
	l.byDir[abs] = pkg
	l.byPath[importPath] = pkg
	return pkg, nil
}

// importPathFor maps a directory inside the module to its import
// path.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// moduleImporter resolves module-internal imports through the loader
// and defers the rest to the compiler importer.
type moduleImporter struct{ l *Loader }

func (m moduleImporter) Import(path string) (*types.Package, error) {
	mod := m.l.ModPath
	if path == mod || strings.HasPrefix(path, mod+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, mod), "/")
		pkg, err := m.l.LoadDirAs(filepath.Join(m.l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return m.l.fallback.Import(path)
}
