package analyzers

import (
	"go/ast"
	"go/types"
)

// WaitCheck flags sync.WaitGroup.Add calls issued from inside the
// goroutine the WaitGroup is counting — the one concurrency footgun
// the wavefront fill scheduler (internal/parallel) must avoid. The
// race: Wait may observe the counter at zero and return before a
// spawned goroutine's Add runs, so the "counted" goroutine outlives
// the barrier. The Go memory model requires Add to happen before both
// the go statement and Wait; the fix is always to move Add in front of
// the go statement that spawns the work.
var WaitCheck = &Analyzer{
	Name: "waitcheck",
	Doc:  "sync.WaitGroup.Add inside the spawned goroutine; call Add before the go statement",
	Run:  runWaitCheck,
}

func runWaitCheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// go wg.Add(1) itself, plus any Add anywhere in a spawned
			// function literal's body (including nested literals the
			// goroutine may invoke or spawn).
			ast.Inspect(g.Call, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isWaitGroupAdd(pass.Info, call) {
					pass.Reportf(call.Pos(),
						"sync.WaitGroup.Add inside the spawned goroutine can race with Wait; call Add before the go statement")
				}
				return true
			})
			return true
		})
	}
}

// isWaitGroupAdd reports whether call invokes (*sync.WaitGroup).Add.
func isWaitGroupAdd(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if !isPkgFunc(fn, "sync", "Add") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
