// Package overflow closes the loop on the paper's central premise.
// The paper justifies Pascal (peaky) traffic by citing Wilkinson's
// toll-traffic work [33]: traffic REJECTED by one server group and
// overflowed to another is peakier than Poisson. This package builds
// that system: a primary crossbar whose blocked requests overflow to a
// secondary crossbar, plus the classical analytics —
//
//   - Riordan's formulas for the mean and variance of Erlang-group
//     overflow (validated against simulation);
//   - peakedness measurement of an arbitrary overflow stream by the
//     standard virtual infinite-server construction;
//   - the Wilkinson-style approximation chain: measure (mean, Z) of
//     the overflow, fit a BPP source (internal/dist), and analyze the
//     secondary switch with the paper's own product-form machinery.
//
// The headline experiment shows the BPP-fitted analysis predicting the
// secondary switch's blocking where a mean-only Poisson fit
// underestimates it — precisely why the paper bothers with
// Bernoulli-Poisson-Pascal traffic at all.
package overflow

import (
	"fmt"
	"math"

	"xbar/internal/core"
	"xbar/internal/dist"
	"xbar/internal/eventq"
	"xbar/internal/floats"
	"xbar/internal/link"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Riordan returns the mean and variance of the traffic overflowing an
// Erlang loss group of c servers offered a erlangs of Poisson traffic
// (Riordan's classical formulas):
//
//	m = a B(c, a)
//	v = m (1 - m + a / (c + 1 - a + m))
//
// The overflow peakedness v/m always exceeds 1: overflow is peaky.
func Riordan(c int, a float64) (mean, variance float64) {
	m := a * link.ErlangB(c, a)
	v := m * (1 - m + a/(float64(c)+1-a+m))
	return m, v
}

// Config parameterizes the two-stage overflow simulation: a primary
// N x N crossbar offered Poisson traffic; every blocked request
// immediately retries on the secondary M x M crossbar (uniform fresh
// route there); requests blocked at both stages are lost. A virtual
// infinite-server group shadows the overflow stream to measure its
// peakedness without disturbing anything.
type Config struct {
	// PrimaryN and SecondaryN are the two switch sizes.
	PrimaryN, SecondaryN int
	// Lambda is the total Poisson rate offered to the primary.
	Lambda float64
	// Mu is the holding rate everywhere.
	Mu      float64
	Seed    uint64
	Warmup  float64
	Horizon float64
	Batches int
}

// Result reports the two-stage measures.
type Result struct {
	// PrimaryBlocking is the fraction of fresh requests overflowing.
	PrimaryBlocking stats.CI
	// SecondaryBlocking is the fraction of OVERFLOWED requests lost at
	// the secondary.
	SecondaryBlocking stats.CI
	// OverflowMean and OverflowPeakedness are the virtual
	// infinite-server moments of the overflow stream (busy-count mean
	// and variance-to-mean).
	OverflowMean, OverflowPeakedness float64
	// Events counts processed events.
	Events int64
}

type departure struct {
	stage   int // 0 primary, 1 secondary, 2 virtual infinite server
	in, out int
}

// Run simulates the overflow system.
func Run(cfg Config) (*Result, error) {
	if cfg.PrimaryN < 1 || cfg.SecondaryN < 1 {
		return nil, fmt.Errorf("overflow: switch sizes %d, %d", cfg.PrimaryN, cfg.SecondaryN)
	}
	if cfg.Lambda <= 0 || cfg.Mu <= 0 {
		return nil, fmt.Errorf("overflow: lambda %v, mu %v", cfg.Lambda, cfg.Mu)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("overflow: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("overflow: need >= 2 batches")
	}

	stream := rng.NewStream(cfg.Seed)
	pIn := make([]bool, cfg.PrimaryN)
	pOut := make([]bool, cfg.PrimaryN)
	sIn := make([]bool, cfg.SecondaryN)
	sOut := make([]bool, cfg.SecondaryN)
	virtualBusy := 0

	start, end := cfg.Warmup, cfg.Warmup+cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	type counts struct{ fresh, overflowed, lost int64 }
	cs := make([]counts, batches)
	// Virtual infinite-server busy-count time moments.
	var vArea, vArea2, vTime float64
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}

	var deps eventq.Queue[departure]
	nextArr := stream.Exp(cfg.Lambda)
	now := 0.0
	var events int64
	advance := func(t float64) {
		t1 := math.Min(t, end)
		if t1 > now && now < end {
			lo := math.Max(now, start)
			if t1 > lo {
				dt := t1 - lo
				vArea += float64(virtualBusy) * dt
				vArea2 += float64(virtualBusy) * float64(virtualBusy) * dt
				vTime += dt
			}
		}
		now = t
	}

	for {
		t := nextArr
		isDep := false
		if at, ok := deps.PeekTime(); ok && at < t {
			t, isDep = at, true
		}
		if t >= end {
			advance(end)
			break
		}
		advance(t)
		events++
		if isDep {
			_, d := deps.Pop()
			switch d.stage {
			case 0:
				pIn[d.in] = false
				pOut[d.out] = false
			case 1:
				sIn[d.in] = false
				sOut[d.out] = false
			case 2:
				virtualBusy--
			}
			continue
		}
		nextArr = now + stream.Exp(cfg.Lambda)
		b := batchOf(now)
		if b >= 0 {
			cs[b].fresh++
		}
		in := stream.Intn(cfg.PrimaryN)
		out := stream.Intn(cfg.PrimaryN)
		if !pIn[in] && !pOut[out] {
			pIn[in] = true
			pOut[out] = true
			deps.Push(now+stream.Exp(cfg.Mu), departure{stage: 0, in: in, out: out})
			continue
		}
		// Overflow: shadow onto the virtual infinite server and offer
		// to the secondary.
		if b >= 0 {
			cs[b].overflowed++
		}
		virtualBusy++
		deps.Push(now+stream.Exp(cfg.Mu), departure{stage: 2})
		sin := stream.Intn(cfg.SecondaryN)
		sout := stream.Intn(cfg.SecondaryN)
		if !sIn[sin] && !sOut[sout] {
			sIn[sin] = true
			sOut[sout] = true
			deps.Push(now+stream.Exp(cfg.Mu), departure{stage: 1, in: sin, out: sout})
			continue
		}
		if b >= 0 {
			cs[b].lost++
		}
	}

	res := &Result{Events: events}
	var primB, secB []float64
	for b := 0; b < batches; b++ {
		if cs[b].fresh > 0 {
			primB = append(primB, float64(cs[b].overflowed)/float64(cs[b].fresh))
		}
		if cs[b].overflowed > 0 {
			secB = append(secB, float64(cs[b].lost)/float64(cs[b].overflowed))
		}
	}
	ciOf := func(vals []float64) stats.CI {
		if len(vals) < 2 {
			return stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
		}
		return stats.BatchMeans(vals, 0.95)
	}
	res.PrimaryBlocking = ciOf(primB)
	res.SecondaryBlocking = ciOf(secB)
	if vTime > 0 {
		mean := vArea / vTime
		variance := vArea2/vTime - mean*mean
		res.OverflowMean = mean
		if mean > 0 {
			res.OverflowPeakedness = variance / mean
		}
	}
	return res, nil
}

// SecondaryBPPApprox analyzes the secondary switch with a BPP source
// fitted to the overflow stream's measured (mean, Z) — the paper's
// intended use of the Pascal family — returning the predicted
// time-congestion blocking.
func SecondaryBPPApprox(secondaryN int, mean, z, mu float64) (float64, error) {
	src, err := dist.FitMeanPeakedness(mean, z, mu)
	if err != nil {
		return 0, err
	}
	routes := float64(secondaryN * secondaryN)
	sw := core.Switch{N1: secondaryN, N2: secondaryN, Classes: []core.Class{{
		Name: "overflow", A: 1,
		Alpha: src.Alpha / routes, Beta: src.Beta / routes, Mu: mu,
	}}}
	res, err := core.Solve(sw)
	if err != nil {
		return 0, err
	}
	return res.Blocking[0], nil
}

// SecondaryPoissonApprox is the mean-only strawman: treat the overflow
// as Poisson at the same mean rate.
func SecondaryPoissonApprox(secondaryN int, mean, mu float64) (float64, error) {
	return SecondaryBPPApprox(secondaryN, mean, 1, mu)
}

// SecondaryBPPCallCongestion predicts what an overflowed REQUEST
// experiences at the secondary: the lambda(k)-weighted (arrival-seen)
// blocking of the fitted BPP model. For peaky traffic this exceeds the
// time congestion — the PASTA gap — and it is the number directly
// comparable to the simulator's per-request loss fraction.
func SecondaryBPPCallCongestion(secondaryN int, mean, z, mu float64) (float64, error) {
	src, err := dist.FitMeanPeakedness(mean, z, mu)
	if err != nil {
		return 0, err
	}
	n := secondaryN
	routes := float64(n * n)
	alpha := src.Alpha / routes
	beta := src.Beta / routes
	// Single class, a = 1: unnormalized product form over k with
	// Psi(k) = P(n,k)^2.
	w := make([]float64, n+1)
	w[0] = 1
	for k := 1; k <= n; k++ {
		rate := alpha + beta*float64(k-1)
		w[k] = w[k-1] * rate / (float64(k) * mu) *
			float64(n-k+1) * float64(n-k+1)
	}
	num, den := 0.0, 0.0
	for k := 0; k <= n; k++ {
		rate := alpha + beta*float64(k)
		free := float64(n-k) / float64(n)
		blockProb := 1 - free*free
		num += w[k] * rate * blockProb
		den += w[k] * rate
	}
	if floats.Zero(den) {
		return 1, nil
	}
	return num / den, nil
}
