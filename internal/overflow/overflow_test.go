package overflow

import (
	"math"
	"testing"

	"xbar/internal/eventq"
	"xbar/internal/link"
	"xbar/internal/rng"
)

// TestRiordanBasics: overflow mean is a B(c,a); peakedness exceeds 1
// and grows as the primary group shrinks at fixed load.
func TestRiordanBasics(t *testing.T) {
	const a = 8.0
	for _, c := range []int{12, 8, 4} {
		m, v := Riordan(c, a)
		if wantM := a * link.ErlangB(c, a); math.Abs(m-wantM) > 1e-12 {
			t.Errorf("c=%d: mean %v, want %v", c, m, wantM)
		}
		if z := v / m; z <= 1 {
			t.Errorf("c=%d: overflow peakedness %v, must exceed 1", c, z)
		}
	}
	// Degenerate group: everything overflows, so the overflow IS the
	// original Poisson stream — mean a, peakedness exactly 1.
	m0, v0 := Riordan(0, a)
	if math.Abs(m0-a) > 1e-12 || math.Abs(v0/m0-1) > 1e-12 {
		t.Errorf("c=0 overflow (m=%v, z=%v), want Poisson (m=%v, z=1)", m0, v0/m0, a)
	}
	// Peakedness is maximized at moderate blocking, not at the
	// extremes.
	_, vMid := Riordan(8, a)
	mMid, _ := Riordan(8, a)
	if vMid/mMid <= 1.1 {
		t.Errorf("moderate-blocking overflow peakedness %v suspiciously low", vMid/mMid)
	}
}

// TestRiordanAgainstSimulation validates the closed form with a direct
// Erlang-group overflow simulation: Poisson arrivals on c servers,
// blocked arrivals shadowed onto a virtual infinite server.
func TestRiordanAgainstSimulation(t *testing.T) {
	const (
		c       = 6
		a       = 5.0
		mu      = 1.0
		horizon = 300000.0
	)
	wantM, wantV := Riordan(c, a)

	stream := rng.NewStream(3)
	busy := 0
	virtual := 0
	var deps eventq.Queue[departure]
	nextArr := stream.Exp(a * mu)
	now := 0.0
	var area, area2, measured float64
	const warmup = 1000.0
	for {
		t := nextArr
		isDep := false
		if at, ok := deps.PeekTime(); ok && at < t {
			t, isDep = at, true
		}
		if t >= horizon {
			break
		}
		if t > warmup {
			lo := math.Max(now, warmup)
			dt := t - lo
			if dt > 0 {
				area += float64(virtual) * dt
				area2 += float64(virtual) * float64(virtual) * dt
				measured += dt
			}
		}
		now = t
		if isDep {
			_, d := deps.Pop()
			if d.stage == 2 {
				virtual--
			} else {
				busy--
			}
			continue
		}
		nextArr = now + stream.Exp(a*mu)
		if busy < c {
			busy++
			deps.Push(now+stream.Exp(mu), departure{stage: 0})
		} else {
			virtual++
			deps.Push(now+stream.Exp(mu), departure{stage: 2})
		}
	}
	mean := area / measured
	variance := area2/measured - mean*mean
	if math.Abs(mean-wantM) > 0.03*wantM {
		t.Errorf("simulated overflow mean %v, Riordan %v", mean, wantM)
	}
	if math.Abs(variance-wantV) > 0.06*wantV {
		t.Errorf("simulated overflow variance %v, Riordan %v", variance, wantV)
	}
}

// TestCrossbarOverflowIsPeaky: the primary crossbar's overflow stream
// has Z > 1 — the empirical fact Wilkinson built ERT on and the paper
// built Pascal traffic on.
func TestCrossbarOverflowIsPeaky(t *testing.T) {
	res, err := Run(Config{
		PrimaryN: 4, SecondaryN: 4, Lambda: 3, Mu: 1,
		Seed: 1, Warmup: 2000, Horizon: 150000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverflowPeakedness <= 1.05 {
		t.Errorf("overflow peakedness %v, want clearly above 1", res.OverflowPeakedness)
	}
	if res.OverflowMean <= 0 {
		t.Errorf("overflow mean %v", res.OverflowMean)
	}
	// Flow sanity: overflow mean equals lambda B_primary / mu within a
	// few percent.
	want := 3 * res.PrimaryBlocking.Mean
	if math.Abs(res.OverflowMean-want) > 0.05*want {
		t.Errorf("overflow mean %v, flow balance gives %v", res.OverflowMean, want)
	}
}

// TestBPPBeatsPoissonOnOverflow is the package's headline: analyzing
// the secondary with a BPP source fitted to the overflow's (mean, Z)
// predicts the per-request loss far better than a mean-only Poisson
// fit, which underestimates it.
func TestBPPBeatsPoissonOnOverflow(t *testing.T) {
	// A small primary at moderate blocking feeds a roomier secondary:
	// the regime where the overflow's peakedness, not just its mean,
	// drives the secondary's loss.
	res, err := Run(Config{
		PrimaryN: 3, SecondaryN: 6, Lambda: 1.5, Mu: 1,
		Seed: 2, Warmup: 2000, Horizon: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	measured := res.SecondaryBlocking.Mean

	bpp, err := SecondaryBPPCallCongestion(6, res.OverflowMean, res.OverflowPeakedness, 1)
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := SecondaryPoissonApprox(6, res.OverflowMean, 1)
	if err != nil {
		t.Fatal(err)
	}
	errBPP := math.Abs(bpp - measured)
	errPoisson := math.Abs(poisson - measured)
	if errBPP >= errPoisson {
		t.Errorf("BPP fit error %v (pred %v) should beat Poisson error %v (pred %v), measured %v",
			errBPP, bpp, errPoisson, poisson, measured)
	}
	if poisson >= measured {
		t.Errorf("mean-only Poisson %v should underestimate the measured loss %v", poisson, measured)
	}
	if errBPP > 0.2*measured {
		t.Errorf("BPP prediction %v too far from measured %v", bpp, measured)
	}
}

// TestTimeVsCallCongestionOnFit: for the fitted peaky source, call
// congestion exceeds time congestion.
func TestTimeVsCallCongestionOnFit(t *testing.T) {
	call, err := SecondaryBPPCallCongestion(4, 0.8, 1.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	timeB, err := SecondaryBPPApprox(4, 0.8, 1.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if call <= timeB {
		t.Errorf("peaky call congestion %v should exceed time congestion %v", call, timeB)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{PrimaryN: 0, SecondaryN: 4, Lambda: 1, Mu: 1, Horizon: 10},
		{PrimaryN: 4, SecondaryN: 0, Lambda: 1, Mu: 1, Horizon: 10},
		{PrimaryN: 4, SecondaryN: 4, Lambda: 0, Mu: 1, Horizon: 10},
		{PrimaryN: 4, SecondaryN: 4, Lambda: 1, Mu: 0, Horizon: 10},
		{PrimaryN: 4, SecondaryN: 4, Lambda: 1, Mu: 1, Horizon: 0},
		{PrimaryN: 4, SecondaryN: 4, Lambda: 1, Mu: 1, Horizon: 10, Batches: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := SecondaryBPPApprox(4, 0, 1.5, 1); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{PrimaryN: 3, SecondaryN: 3, Lambda: 2, Mu: 1,
		Seed: 9, Warmup: 100, Horizon: 5000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.OverflowMean != b.OverflowMean {
		t.Error("same seed diverged")
	}
}
