// Package report renders experiment output: aligned text tables, CSV
// files, and compact ASCII charts for the figure series — enough to
// eyeball the published shapes straight from a terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"xbar/internal/floats"
	"xbar/internal/workload"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes a comma-separated table. Cells containing commas or
// quotes are quoted.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders figure series as an ASCII scatter chart with the
// series index as the plotting glyph, N on the x axis (log2-spaced
// ticks, matching the sweeps) and value on the y axis.
func Chart(w io.Writer, title string, series []workload.Series, height int) error {
	if height < 4 {
		height = 12
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
		for _, p := range s.Points {
			lo = math.Min(lo, p.Value)
			hi = math.Max(hi, p.Value)
		}
	}
	if maxLen == 0 {
		return fmt.Errorf("report: no points to chart")
	}
	if floats.Near(hi, lo) {
		// A flat (or nearly flat) series would make the row-scaling
		// divide by ~0; widen to a unit band instead.
		hi = lo + 1
	}
	const colWidth = 6
	width := maxLen * colWidth
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := "0123456789"
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for pi, p := range s.Points {
			row := int(math.Round((hi - p.Value) / (hi - lo) * float64(height-1)))
			// Offset each series inside the column slot so coincident
			// values remain distinguishable.
			col := pi*colWidth + 1 + si%(colWidth-2)
			if row >= 0 && row < height && col < width {
				grid[row][col] = g
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for r, rowBytes := range grid {
		v := hi - (hi-lo)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%10.3g |%s\n", v, string(rowBytes)); err != nil {
			return err
		}
	}
	// X axis: tick labels from the longest series.
	var longest workload.Series
	for _, s := range series {
		if len(s.Points) == len(longest.Points) || len(s.Points) > len(longest.Points) {
			if len(s.Points) > len(longest.Points) {
				longest = s
			}
		}
	}
	axis := make([]byte, width)
	for i := range axis {
		axis[i] = '-'
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n%10s  ", "", string(axis), "N ="); err != nil {
		return err
	}
	for _, p := range longest.Points {
		if _, err := fmt.Fprintf(w, "%-*d", colWidth, p.N); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "%12c = %s\n", glyphs[si%len(glyphs)], s.Label); err != nil {
			return err
		}
	}
	return nil
}

// FormatFloat renders a value with the precision the paper's tables
// use.
func FormatFloat(v float64) string {
	switch {
	case v == 0: //lint:allow floatcmp formatting decision on the exact value; tiny magnitudes must print their magnitude
		return "0"
	case math.Abs(v) >= 0.01 && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.6g", v)
	default:
		return fmt.Sprintf("%.6e", v)
	}
}
