package report

import (
	"strings"
	"testing"

	"xbar/internal/workload"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"N", "blocking"}, [][]string{
		{"1", "0.0024"},
		{"128", "0.0049"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "N  ") {
		t.Errorf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1    0.0024") {
		t.Errorf("row misaligned: %q", lines[2])
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"a", "b"}, [][]string{
		{"1", "plain"},
		{"2", `has,comma and "quote"`},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,plain\n2,\"has,comma and \"\"quote\"\"\"\n"
	if b.String() != want {
		t.Errorf("CSV output %q, want %q", b.String(), want)
	}
}

func TestChart(t *testing.T) {
	series := []workload.Series{
		{Label: "low", Points: []workload.Point{{N: 1, Value: 0.001}, {N: 2, Value: 0.002}, {N: 4, Value: 0.003}}},
		{Label: "high", Points: []workload.Point{{N: 1, Value: 0.002}, {N: 2, Value: 0.004}, {N: 4, Value: 0.006}}},
	}
	var b strings.Builder
	if err := Chart(&b, "test figure", series, 8); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test figure") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Error("missing series glyphs")
	}
	if !strings.Contains(out, "= low") || !strings.Contains(out, "= high") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "N =") {
		t.Error("missing x axis")
	}
}

func TestChartEmpty(t *testing.T) {
	var b strings.Builder
	if err := Chart(&b, "empty", nil, 8); err == nil {
		t.Error("empty chart accepted")
	}
}

func TestChartFlatSeries(t *testing.T) {
	series := []workload.Series{
		{Label: "flat", Points: []workload.Point{{N: 1, Value: 5}, {N: 2, Value: 5}}},
	}
	var b strings.Builder
	if err := Chart(&b, "flat", series, 6); err != nil {
		t.Fatal(err)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(0); got != "0" {
		t.Errorf("FormatFloat(0) = %q", got)
	}
	if got := FormatFloat(0.5); got != "0.5" {
		t.Errorf("FormatFloat(0.5) = %q", got)
	}
	if got := FormatFloat(1.5e-7); !strings.Contains(got, "e-07") {
		t.Errorf("FormatFloat(1.5e-7) = %q", got)
	}
}
