package minnet

import (
	"math"
	"testing"
)

func TestStages(t *testing.T) {
	cases := []struct {
		n    int
		want int
		ok   bool
	}{
		{2, 1, true}, {4, 2, true}, {8, 3, true}, {64, 6, true},
		{1, 0, false}, {6, 0, false}, {0, 0, false},
	}
	for _, c := range cases {
		got, err := Stages(c.n)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Stages(%d) = %d, %v; want %d", c.n, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Stages(%d) accepted", c.n)
		}
	}
}

func TestShuffleIsRotateLeft(t *testing.T) {
	// n = 8 (3 bits): 0b011 -> 0b110, 0b100 -> 0b001, 0b101 -> 0b011.
	cases := [][2]int{{0, 0}, {1, 2}, {2, 4}, {3, 6}, {4, 1}, {5, 3}, {6, 5}, {7, 7}}
	for _, c := range cases {
		if got := shuffle(c[0], 8); got != c[1] {
			t.Errorf("shuffle(%d, 8) = %d, want %d", c[0], got, c[1])
		}
	}
	// Shuffle is a permutation for n = 16.
	seen := make(map[int]bool)
	for i := 0; i < 16; i++ {
		seen[shuffle(i, 16)] = true
	}
	if len(seen) != 16 {
		t.Error("shuffle(., 16) is not a permutation")
	}
}

func TestRecursionBasics(t *testing.T) {
	// One stage of one 2x2 switch: 1 - (1-p/2)^2.
	got, err := Recursion(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("Recursion(2, 1) = %v, want %v", got, want)
	}
	// Deeper networks lose throughput at saturation.
	prev := 2.0
	for _, n := range []int{2, 4, 8, 16, 64} {
		v, err := Recursion(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Errorf("Recursion(%d, 1) = %v not decreasing with depth", n, v)
		}
		prev = v
	}
	if _, err := Recursion(6, 0.5); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := Recursion(8, 1.5); err == nil {
		t.Error("load > 1 accepted")
	}
}

// TestRoutingDelivery: a single packet always reaches its destination —
// the destination-tag routing and shuffle wiring are correct. (A wiring
// bug would also be caught by Simulate's internal delivery check.)
func TestRoutingDelivery(t *testing.T) {
	// Exercise by simulating at very low load where conflicts are rare
	// but every delivered packet is verified against its destination
	// inside Simulate.
	res, err := Simulate(16, 0.05, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	// At negligible load nearly everything gets through.
	rate := float64(res.Delivered) / float64(res.Offered)
	if rate < 0.95 {
		t.Errorf("low-load delivery rate %v, want ~1", rate)
	}
}

// TestSimulateNearRecursion: the independence approximation tracks the
// exact simulation within a few percent at moderate depth.
func TestSimulateNearRecursion(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{4, 0.8}, {8, 0.6}, {16, 1.0}} {
		res, err := Simulate(c.n, c.p, 30000, 7)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Recursion(c.n, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.PerOutput.Mean-want) / want; rel > 0.06 {
			t.Errorf("n=%d p=%v: simulated %v vs recursion %v (rel %.3f)",
				c.n, c.p, res.PerOutput.Mean, want, rel)
		}
	}
}

// TestCrossbarAdvantage: the crossbar always at least matches the MIN,
// and the advantage grows with network size (the introduction's case
// for large optical crossbars).
func TestCrossbarAdvantage(t *testing.T) {
	prev := 0.0
	for _, n := range []int{4, 16, 64, 256} {
		adv, err := CrossbarAdvantage(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if adv < 1 {
			t.Errorf("n=%d: crossbar advantage %v < 1", n, adv)
		}
		if adv <= prev {
			t.Errorf("n=%d: advantage %v not growing", n, adv)
		}
		prev = adv
	}
	if adv, err := CrossbarAdvantage(8, 0); err != nil || !math.IsInf(adv, 1) {
		t.Errorf("zero-load advantage = %v, %v; want +Inf", adv, err)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(6, 0.5, 1000, 1); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := Simulate(8, -0.1, 1000, 1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := Simulate(8, 0.5, 3, 1); err == nil {
		t.Error("too few slots accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Simulate(8, 0.5, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(8, 0.5, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Offered != b.Offered {
		t.Error("same seed diverged")
	}
}
