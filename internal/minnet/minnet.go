// Package minnet implements the multistage interconnection network
// (MIN) the paper's introduction positions crossbars against: an
// N x N omega (shuffle-exchange delta) network built from log2(N)
// stages of 2x2 crossbars, O(N log N) switching elements against the
// crossbar's O(N^2).
//
// Two evaluations are provided:
//
//   - Recursion: Patel's stage-by-stage analysis for uniform traffic,
//     p_{i+1} = 1 - (1 - p_i/2)^2, an independence approximation that
//     slightly overestimates throughput for deeper networks;
//   - Simulate: an exact slot-level simulation of the omega topology
//     with destination-tag routing and random conflict resolution.
//
// The comparison with the single-stage crossbar (internal/slotted)
// reproduces the introduction's trade-off: the MIN saves hardware but
// loses throughput to internal blocking.
package minnet

import (
	"fmt"
	"math"

	"xbar/internal/floats"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Stages returns log2(n), rejecting non-powers of two.
func Stages(n int) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("minnet: network size %d, need a power of two >= 2", n)
	}
	s := 0
	for v := n; v > 1; v >>= 1 {
		if v&1 == 1 {
			return 0, fmt.Errorf("minnet: network size %d is not a power of two", n)
		}
		s++
	}
	return s, nil
}

// Recursion returns Patel's analytic per-output throughput of an
// N x N omega network of 2x2 switches with per-input load p:
// the load recursion applied once per stage.
func Recursion(n int, p float64) (float64, error) {
	stages, err := Stages(n)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("minnet: load %v outside [0,1]", p)
	}
	for i := 0; i < stages; i++ {
		p = 1 - (1-p/2)*(1-p/2)
	}
	return p, nil
}

// shuffle is the perfect-shuffle permutation on log2(n)-bit indices:
// rotate left one bit.
func shuffle(x, n int) int {
	msb := n >> 1
	return ((x &^ msb) << 1) | (x&msb)>>(bitsOf(n)-1)
}

func bitsOf(n int) int {
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Result summarizes a MIN simulation.
type Result struct {
	// PerOutput is the measured per-output throughput.
	PerOutput stats.CI
	// Delivered counts packets that reached their destination.
	Delivered int64
	// Offered counts generated packets.
	Offered int64
}

// Simulate runs the omega network at slot level: each slot, each input
// generates a packet with probability p to a uniform destination;
// packets route by destination tag (most significant bit first); when
// two packets at a 2x2 switch want the same output, a uniformly random
// one survives. Returns measured throughput with confidence intervals.
func Simulate(n int, p float64, slots int, seed uint64) (*Result, error) {
	stages, err := Stages(n)
	if err != nil {
		return nil, err
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("minnet: load %v outside [0,1]", p)
	}
	const batches = 20
	if slots < batches {
		return nil, fmt.Errorf("minnet: need at least %d slots, got %d", batches, slots)
	}
	stream := rng.NewStream(seed)
	perBatch := slots / batches

	// cur[link] = destination of the packet on that link, or -1.
	cur := make([]int, n)
	next := make([]int, n)
	var outB []float64
	var delivered, offered int64
	for b := 0; b < batches; b++ {
		var batchDelivered int64
		for s := 0; s < perBatch; s++ {
			for i := range cur {
				cur[i] = -1
				if stream.Float64() < p {
					cur[i] = stream.Intn(n)
					offered++
				}
			}
			for st := 0; st < stages; st++ {
				// Perfect shuffle of link positions.
				for i := range next {
					next[i] = -1
				}
				for i, d := range cur {
					if d >= 0 {
						next[shuffle(i, n)] = d
					}
				}
				cur, next = next, cur
				// Each pair (2j, 2j+1) passes a 2x2 switch; route by
				// the stage's destination bit.
				bit := uint(stages - 1 - st)
				for j := 0; j < n/2; j++ {
					a, c := cur[2*j], cur[2*j+1]
					var outA, outC int
					if a >= 0 {
						outA = int((a >> bit) & 1)
					}
					if c >= 0 {
						outC = int((c >> bit) & 1)
					}
					switch {
					case a >= 0 && c >= 0 && outA == outC:
						// Conflict: random winner.
						if stream.Float64() < 0.5 {
							c = -1
						} else {
							a = -1
						}
					}
					cur[2*j], cur[2*j+1] = -1, -1
					if a >= 0 {
						cur[2*j+outA] = a
					}
					if c >= 0 {
						cur[2*j+outC] = c
					}
				}
			}
			for i, d := range cur {
				if d >= 0 {
					if d != i {
						return nil, fmt.Errorf("minnet: packet for %d delivered to %d (routing bug)", d, i)
					}
					batchDelivered++
				}
			}
		}
		delivered += batchDelivered
		outB = append(outB, float64(batchDelivered)/float64(perBatch)/float64(n))
	}
	return &Result{
		PerOutput: stats.BatchMeans(outB, 0.95),
		Delivered: delivered,
		Offered:   offered,
	}, nil
}

// CrossbarAdvantage returns the ratio of single-stage crossbar
// throughput (1 - (1 - p/n)^n) to the MIN recursion throughput at the
// same size and load — the quantitative version of the introduction's
// argument for building large optical crossbars.
func CrossbarAdvantage(n int, p float64) (float64, error) {
	minT, err := Recursion(n, p)
	if err != nil {
		return 0, err
	}
	if floats.Zero(minT) {
		return math.Inf(1), nil
	}
	xbarT := 1 - math.Pow(1-p/float64(n), float64(n))
	return xbarT / minT, nil
}
