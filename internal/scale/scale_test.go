package scale

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*s
}

func TestZeroValueIsZero(t *testing.T) {
	var n Number
	if !n.IsZero() || n.Float64() != 0 || n.Sign() != 0 {
		t.Errorf("zero value Number is not 0: %v", n)
	}
}

func TestFromFloat64RoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return FromFloat64(x).Float64() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromFloat64PanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromFloat64(NaN) did not panic")
		}
	}()
	FromFloat64(math.NaN())
}

func TestOneConstant(t *testing.T) {
	if One.Float64() != 1 {
		t.Errorf("One = %v, want 1", One.Float64())
	}
}

func TestArithmeticBasics(t *testing.T) {
	a := FromFloat64(3)
	b := FromFloat64(4)
	if got := a.Add(b).Float64(); got != 7 {
		t.Errorf("3+4 = %v", got)
	}
	if got := a.Sub(b).Float64(); got != -1 {
		t.Errorf("3-4 = %v", got)
	}
	if got := a.Mul(b).Float64(); got != 12 {
		t.Errorf("3*4 = %v", got)
	}
	if got := a.Div(b).Float64(); got != 0.75 {
		t.Errorf("3/4 = %v", got)
	}
	if got := a.MulFloat(2).Float64(); got != 6 {
		t.Errorf("3*2 = %v", got)
	}
	if got := a.DivFloat(2).Float64(); got != 1.5 {
		t.Errorf("3/2 = %v", got)
	}
}

func TestAddWithZero(t *testing.T) {
	a := FromFloat64(5)
	if got := a.Add(Zero).Float64(); got != 5 {
		t.Errorf("5+0 = %v", got)
	}
	if got := Zero.Add(a).Float64(); got != 5 {
		t.Errorf("0+5 = %v", got)
	}
	if got := Zero.Add(Zero).Float64(); got != 0 {
		t.Errorf("0+0 = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	FromFloat64(1).Div(Zero)
}

// TestAgainstBigFloat drives random arithmetic chains through both
// scale.Number and math/big.Float and demands agreement, the core
// property behind trusting the scaled Algorithm 1.
func TestAgainstBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := FromFloat64(1)
		b := big.NewFloat(1).SetPrec(200)
		for op := 0; op < 50; op++ {
			x := rng.Float64()*10 + 0.1
			bx := big.NewFloat(x).SetPrec(200)
			switch rng.Intn(3) {
			case 0:
				n = n.Add(FromFloat64(x))
				b.Add(b, bx)
			case 1:
				n = n.Mul(FromFloat64(x))
				b.Mul(b, bx)
			case 2:
				n = n.Div(FromFloat64(x))
				b.Quo(b, bx)
			}
		}
		got := n.Float64()
		want, _ := b.Float64()
		if !almostEqual(got, want, 1e-10) {
			t.Fatalf("trial %d: scale=%v big=%v", trial, got, want)
		}
	}
}

// TestFarBelowUnderflow exercises magnitudes far outside float64 range,
// the regime Algorithm 1 hits for N ~ 256 where Q(N) ~ 1/(256!)^2.
func TestFarBelowUnderflow(t *testing.T) {
	tiny := FromFloat64(1)
	for i := 0; i < 2000; i++ {
		tiny = tiny.DivFloat(1000) // 10^-6000, far beyond float64
	}
	if tiny.IsZero() {
		t.Fatal("scaled number underflowed to zero")
	}
	back := tiny
	for i := 0; i < 2000; i++ {
		back = back.MulFloat(1000)
	}
	if got := back.Float64(); !almostEqual(got, 1, 1e-9) {
		t.Errorf("round trip through 10^-6000 = %v, want 1", got)
	}
	// Ratios of two far-underflowed values are exact.
	a := tiny.MulFloat(3)
	if got := a.Ratio(tiny); !almostEqual(got, 3, 1e-12) {
		t.Errorf("ratio of tiny values = %v, want 3", got)
	}
}

func TestFromLog(t *testing.T) {
	cases := []float64{0, 1, -1, 10, -700, 700, -50000, 50000}
	for _, x := range cases {
		n := FromLog(x)
		if got := n.Log(); !almostEqual(got, x, 1e-9) && math.Abs(got-x) > 1e-9 {
			t.Errorf("FromLog(%v).Log() = %v", x, got)
		}
	}
	if got := FromLog(0).Float64(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("FromLog(0) = %v, want 1", got)
	}
	if got := FromLog(math.Log(42)).Float64(); !almostEqual(got, 42, 1e-12) {
		t.Errorf("FromLog(ln 42) = %v, want 42", got)
	}
}

func TestLogPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log of negative did not panic")
		}
	}()
	FromFloat64(-2).Log()
}

func TestCmpAndSign(t *testing.T) {
	a := FromFloat64(2)
	b := FromFloat64(3)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if FromFloat64(-1).Sign() != -1 || FromFloat64(1).Sign() != 1 {
		t.Error("Sign wrong")
	}
}

func TestCmpAcrossScales(t *testing.T) {
	big := FromLog(10000)
	small := FromLog(-10000)
	if big.Cmp(small) != 1 {
		t.Error("e^10000 should compare greater than e^-10000")
	}
	if small.Cmp(big) != -1 {
		t.Error("e^-10000 should compare less than e^10000")
	}
}

func TestAddAbsorbsNegligible(t *testing.T) {
	huge := FromLog(5000)
	one := FromFloat64(1)
	sum := huge.Add(one)
	if got, want := sum.Log(), huge.Log(); !almostEqual(got, want, 1e-12) {
		t.Errorf("huge + 1 changed the value: %v vs %v", got, want)
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		a, b, c := FromFloat64(x), FromFloat64(y), FromFloat64(z)
		if a.Add(b).Cmp(b.Add(a)) != 0 {
			return false
		}
		l := a.Add(b).Add(c).Float64()
		r := a.Add(b.Add(c)).Float64()
		return almostEqual(l, r, 1e-9) || math.Abs(l-r) < 1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegAndSub(t *testing.T) {
	a := FromFloat64(7)
	if got := a.Neg().Float64(); got != -7 {
		t.Errorf("Neg(7) = %v", got)
	}
	if got := a.Sub(a).Float64(); got != 0 {
		t.Errorf("7-7 = %v", got)
	}
}

func TestStringFormatting(t *testing.T) {
	if got := Zero.String(); got != "0" {
		t.Errorf("Zero.String() = %q", got)
	}
	// The string form of e^-10000 must carry the right decimal exponent
	// (-4343 = -10000/ln(10)).
	s := FromLog(-10000).String()
	if want := "e-4343"; len(s) < len(want) || s[len(s)-len(want):] != want {
		t.Errorf("FromLog(-10000).String() = %q, want suffix %q", s, want)
	}
}

func TestRatio(t *testing.T) {
	a := FromFloat64(10)
	b := FromFloat64(4)
	if got := a.Ratio(b); got != 2.5 {
		t.Errorf("Ratio = %v", got)
	}
}
