package scale

import (
	"math"
	"testing"
)

// FuzzArithmetic drives the scaled number type with arbitrary float64
// pairs: operations must never panic on finite inputs and must agree
// with plain float64 whenever the plain computation stays in range.
func FuzzArithmetic(f *testing.F) {
	f.Add(1.0, 2.0)
	f.Add(0.0, -3.5)
	f.Add(1e300, 1e-300)
	f.Add(-2.25, 0.1)
	f.Fuzz(func(t *testing.T, x, y float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return
		}
		a, b := FromFloat64(x), FromFloat64(y)
		checks := []struct {
			name  string
			got   Number
			plain float64
		}{
			{"add", a.Add(b), x + y},
			{"sub", a.Sub(b), x - y},
			{"mul", a.Mul(b), x * y},
		}
		if y != 0 {
			checks = append(checks, struct {
				name  string
				got   Number
				plain float64
			}{"div", a.Div(b), x / y})
		}
		for _, c := range checks {
			if math.IsInf(c.plain, 0) || math.IsNaN(c.plain) {
				continue // plain float64 left its range; scaled is allowed to differ
			}
			got := c.got.Float64()
			diff := math.Abs(got - c.plain)
			tol := 1e-12 * math.Max(math.Abs(c.plain), 1e-300)
			if diff > tol && diff > 1e-300 {
				// Account for subnormal rounding at the extremes.
				if math.Abs(c.plain) > 1e-290 {
					t.Fatalf("%s(%v, %v) = %v, plain %v", c.name, x, y, got, c.plain)
				}
			}
		}
		// Sign and comparison coherence.
		if a.Cmp(b) == 1 && !(x > y) {
			t.Fatalf("Cmp(%v, %v) = 1", x, y)
		}
		if a.Cmp(b) == -1 && !(x < y) {
			t.Fatalf("Cmp(%v, %v) = -1", x, y)
		}
	})
}
