package scale

import (
	"math"
	"testing"
)

// TestAccMatchesEagerSum: the deferred-normalization accumulator must
// agree with the eager Add/Mul chain it replaced, across magnitudes
// spanning far more than the float64 exponent range.
func TestAccMatchesEagerSum(t *testing.T) {
	terms := []Number{
		FromFloat64(1.5),
		FromLog(900),  // far above float64 range
		FromLog(-900), // far below
		FromFloat64(-0.25),
		FromLog(899.5),
		FromFloat64(3.75e-300),
		Zero,
	}
	var acc Acc
	eager := Zero
	for _, n := range terms {
		acc.Add(n)
		eager = eager.Add(n)
	}
	got, want := acc.Norm(), eager
	if got.Sign() != want.Sign() {
		t.Fatalf("sign: got %v want %v", got, want)
	}
	// Compare via the ratio, the scale-free equality test.
	if r := got.Ratio(want); math.Abs(r-1) > 1e-12 {
		t.Fatalf("acc sum %v, eager sum %v (ratio %v)", got, want, r)
	}
}

// TestAccAddMulMatchesFused: Acc.AddMul and the fused Number.AddMul
// must equal the unfused n + t*f.
func TestAccAddMulMatchesFused(t *testing.T) {
	n := FromLog(200)
	tt := FromLog(199)
	f := FromFloat64(0.37)
	want := n.Add(tt.Mul(f))
	if got := n.AddMul(tt, f); math.Abs(got.Ratio(want)-1) > 1e-15 {
		t.Errorf("Number.AddMul = %v, want %v", got, want)
	}
	var a Acc
	a.Init(n)
	a.AddMul(tt, f)
	if got := a.Norm(); math.Abs(got.Ratio(want)-1) > 1e-15 {
		t.Errorf("Acc.AddMul = %v, want %v", got, want)
	}
	// Zero operands contribute nothing.
	a.Init(n)
	a.AddMul(Zero, f)
	a.AddMul(tt, Zero)
	if got := a.Norm(); got.Cmp(n) != 0 {
		t.Errorf("zero AddMul changed the sum: %v != %v", got, n)
	}
}

// TestAccAbsorption: contributions more than ~1075 binary orders below
// the running sum are absorbed, matching Number.Add; a later large
// term still replaces a small running sum.
func TestAccAbsorption(t *testing.T) {
	big := FromLog(1000)
	tiny := FromLog(-1000)
	var a Acc
	a.Init(big)
	a.Add(tiny)
	if got := a.Norm(); got.Cmp(big) != 0 {
		t.Errorf("tiny term not absorbed: %v != %v", got, big)
	}
	a.Init(tiny)
	a.Add(big)
	if got := a.Norm(); math.Abs(got.Ratio(big)-1) > 1e-15 {
		t.Errorf("large term did not take over: %v != %v", got, big)
	}
}

// TestAccDivFloat: single-normalization division, and the zero/non-
// finite divisor panic contract shared with Number.Div.
func TestAccDivFloat(t *testing.T) {
	var a Acc
	a.Init(FromFloat64(7))
	a.Add(FromFloat64(5))
	want := FromFloat64(4)
	if got := a.DivFloat(3); got.Cmp(want) != 0 {
		t.Errorf("(7+5)/3 = %v, want %v", got, want)
	}
	for _, bad := range []float64{0, math.NaN(), math.Inf(1)} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DivFloat(%v) did not panic", bad)
				}
			}()
			a.DivFloat(bad)
		}()
	}
}

// TestLdexpDown: the bit-twiddled alignment multiply must agree with
// math.Ldexp over its whole contract range 0 <= k <= 1075, including
// the gradual-underflow region.
func TestLdexpDown(t *testing.T) {
	fracs := []float64{0.5, -0.9999999999999999, 0.7531, 1.999, -0.5000000000000001}
	for _, f := range fracs {
		for k := 0; k <= 1075; k++ {
			got := ldexpDown(f, k)
			want := math.Ldexp(f, -k)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) { //lint:allow floatcmp bit-exact agreement with math.Ldexp is the contract under test
				t.Fatalf("ldexpDown(%v, %d) = %g, want %g", f, k, got, want)
			}
		}
	}
}
