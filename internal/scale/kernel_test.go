package scale

import (
	"math"
	"testing"
)

// TestQCellPB pins the fused cell kernel to the unfused Acc wrapper
// sequence it documents, bit for bit, across sign mixes, wide
// exponent spreads (including past the 1075-order absorption cutoff)
// and zero W cells.
func TestQCellPB(t *testing.T) {
	nums := []Number{
		FromFloat64(0.75),
		FromFloat64(1.5e-8),
		FromFloat64(3.25e9),
		FromLog(-700), // far below float64 range
		FromLog(650),
		FromFloat64(0.5000000001),
	}
	ws := []Acc{
		{}, // zero W cell
		{frac: 0.625, exp: 12},
		{frac: 1.75, exp: -2000}, // unnormalized, deep underflow range
		{frac: 900.5, exp: 1800}, // drifted working fraction
		{frac: -0.8125, exp: 40}, // sign flip
		{frac: 0.5, exp: 0},
	}
	invs := []float64{1, 0.5, 1.0 / 3, 1.0 / 255}
	for _, qUp := range nums {
		for _, qP := range nums {
			for _, qB := range nums {
				for _, w := range ws {
					for _, inv := range invs {
						cp := FromFloat64(0.037)
						cb := FromFloat64(0.021)
						bm := FromFloat64(0.42)

						var wa Acc
						wa.InitMul(qB, cb)
						wa.AddMulAcc(w, bm)
						var acc Acc
						acc.Init(qUp)
						acc.AddMul(qP, cp)
						acc.AddAcc(wa)
						wantQ := acc.MulNorm(inv)

						gotQ, gotW := QCellPB(qUp, qP, qB, w, cp, cb, bm, inv)
						if gotQ != wantQ {
							t.Fatalf("QCellPB q = %#v, want %#v (qUp=%v qP=%v qB=%v w=%+v inv=%v)",
								gotQ, wantQ, qUp, qP, qB, w, inv)
						}
						if gotW != wa {
							t.Fatalf("QCellPB w = %+v, want %+v (qB=%v w=%+v)", gotW, wa, qB, w)
						}
					}
				}
			}
		}
	}
}

// TestQCellPBRecursionStep checks the kernel against a directly
// computed float64 cell in the range where no scaling is needed:
// Q = (qUp + cp*qP + cb*qB + bm*w) / n with W = cb*qB + bm*w.
func TestQCellPBRecursionStep(t *testing.T) {
	qUp, qP, qB := 0.375, 0.0625, 0.01171875
	wVal := 0.0078125
	cp, cb, bm := 0.25, 0.125, 0.5
	const n = 3.0

	var w Acc
	w.Init(FromFloat64(wVal))
	gotQ, gotW := QCellPB(
		FromFloat64(qUp), FromFloat64(qP), FromFloat64(qB), w,
		FromFloat64(cp), FromFloat64(cb), FromFloat64(bm), 1/n)

	wantW := cb*qB + bm*wVal
	wantQ := (qUp + cp*qP + wantW) / n
	if got := gotW.Norm().Float64(); math.Abs(got-wantW) > 1e-15 {
		t.Fatalf("W = %g, want %g", got, wantW)
	}
	if got := gotQ.Float64(); math.Abs(got-wantQ) > 1e-15 {
		t.Fatalf("Q = %g, want %g", got, wantQ)
	}
}
