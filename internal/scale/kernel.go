package scale

import "math"

// This file holds the fused lattice-cell kernels for internal/core's
// Algorithm 1 fill. The generic fill accumulates a cell as a sequence
// of Acc wrapper calls, each one addRaw call deep; for the workload
// shape every figure of the paper uses — exactly one Poisson and one
// bursty class — the whole cell collapses into a single out-of-line
// call here, with the alignment core (rawAdd) inlined at each use.
// That removes three call boundaries per lattice cell, which is the
// dominant remaining cost of the N = 256 fill.

// QCellPB advances one interior Eq. 10 cell for the one-Poisson-plus-
// one-bursty class mix. It returns the normalized Q value of the cell
// and the cell's raw W working value (the coefficient-scaled Eq. 9
// V term), and is exactly the sequence
//
//	var wa Acc
//	wa.InitMul(qB, cb)
//	wa.AddMulAcc(w, bm)
//	var acc Acc
//	acc.Init(qUp)
//	acc.AddMul(qP, cp)
//	acc.AddAcc(wa)
//	return acc.MulNorm(inv), wa
//
// fused into one call; TestQCellPB pins bit-identity against that
// unfused sequence. Preconditions: qUp, qP, qB, cp, cb and bm are
// non-zero (interior on-lattice Q is strictly positive and class
// coefficients are validated positive); w may hold any working value,
// including zero.
func QCellPB(qUp, qP, qB Number, w Acc, cp, cb, bm Number, inv float64) (Number, Acc) {
	// wa = cb*qB + bm*w, the W recursion step.
	waf := qB.frac * cb.frac
	wae := qB.exp + cb.exp
	if w.frac != 0 { //lint:allow floatcmp frac == 0 is the canonical exact representation of Zero
		waf, wae = rawAdd(waf, wae, w.frac*bm.frac, w.exp+bm.exp)
	}
	// acc = qUp + cp*qP + wa, then normalize once against 1/n1. The
	// normalization is normFrac's hot path spelled out in place —
	// normFrac itself is beyond the inlining budget here and a second
	// call per cell would give back much of the fusion's win.
	af, ae := rawAdd(qUp.frac, qUp.exp, qP.frac*cp.frac, qP.exp+cp.exp)
	af, ae = rawAdd(af, ae, waf, wae)
	af *= inv
	bits := math.Float64bits(af)
	be := int(bits >> 52 & 0x7ff)
	if uint(be-1) >= 0x7fe {
		return normSlow(af, ae), Acc{frac: waf, exp: wae}
	}
	return Number{
		frac: math.Float64frombits(bits&^(uint64(0x7ff)<<52) | uint64(1022)<<52),
		exp:  ae + be - 1022,
	}, Acc{frac: waf, exp: wae}
}
