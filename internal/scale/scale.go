// Package scale implements the dynamically scaled floating-point
// arithmetic described in Section 6 of the paper. The normalization
// constant Q(N) = G(N)/(N1! N2!) underflows IEEE float64 once N exceeds
// roughly 85 (the k = 0 term alone is 1/(N1! N2!)), while the paper
// evaluates systems up to N = 256. A Number carries an explicit binary
// exponent next to a float64 fraction, giving the same mantissa
// precision as float64 with an effectively unbounded exponent range, so
// the Q-recursions of Algorithms 1 and 2 can be run at any system size
// and every performance measure — always a ratio of Q values — comes
// out exactly as if no scaling had happened.
package scale

import (
	"fmt"
	"math"
)

// Number is a scaled floating-point value frac * 2^exp. A normalized
// non-zero Number keeps |frac| in [0.5, 1), mirroring math.Frexp. The
// zero value of Number is the number 0 and is ready to use.
type Number struct {
	frac float64
	exp  int
}

// Zero is the Number 0.
var Zero = Number{}

// One is the Number 1.
var One = Number{frac: 0.5, exp: 1}

// FromFloat64 converts a float64 into a normalized Number. It panics on
// NaN or infinities: those only arise from upstream logic errors and
// silently propagating them would corrupt every downstream measure.
func FromFloat64(f float64) Number {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		//lint:allow libpanic a non-finite argument is an upstream logic error; propagating it silently would corrupt every downstream measure
		panic(fmt.Sprintf("scale: FromFloat64(%v): non-finite argument", f))
	}
	if f == 0 { //lint:allow floatcmp exact zero maps to the canonical Zero; subnormals must stay nonzero
		return Number{}
	}
	frac, exp := math.Frexp(f)
	return Number{frac: frac, exp: exp}
}

// FromLog returns the Number e^x, useful for seeding from log-space
// computations such as log-factorials. It works far outside the float64
// exponent range.
func FromLog(x float64) Number {
	if math.IsNaN(x) {
		//lint:allow libpanic NaN log-space input is an upstream logic error, same contract as FromFloat64
		panic("scale: FromLog(NaN)")
	}
	// e^x = 2^(x/ln 2); split into integer exponent and fractional part.
	log2 := x / math.Ln2
	ip := math.Floor(log2)
	frac := math.Exp2(log2 - ip) // in [1, 2)
	n := Number{frac: frac, exp: int(ip)}
	return n.norm()
}

// norm renormalizes so that |frac| is in [0.5, 1), or returns Zero for a
// zero fraction. The common case — a normal, finite fraction — is a
// pure bit manipulation; zero, subnormal and non-finite fractions take
// math.Frexp's general path.
func (n Number) norm() Number {
	bits := math.Float64bits(n.frac)
	be := int(bits >> 52 & 0x7ff)
	if be == 0 || be == 0x7ff {
		if n.IsZero() {
			return Number{}
		}
		f, e := math.Frexp(n.frac)
		return Number{frac: f, exp: n.exp + e}
	}
	return Number{
		frac: math.Float64frombits(bits&^(uint64(0x7ff)<<52) | uint64(1022)<<52),
		exp:  n.exp + be - 1022,
	}
}

// normFrac builds a normalized Number from a working fraction and
// exponent. It is norm() with the common case — a normal, finite
// fraction — first and small enough for the compiler to inline into
// the scale-arithmetic hot paths (Acc.MulNorm, Number.AddMul); zero,
// subnormal and non-finite fractions defer to normSlow. The biased
// exponent test folds the two boundary checks into one unsigned
// compare: be-1 wraps negative only for be == 0, so the normal band
// 1..2046 is a single range test.
func normFrac(frac float64, exp int) Number {
	bits := math.Float64bits(frac)
	be := int(bits >> 52 & 0x7ff)
	if uint(be-1) >= 0x7fe {
		return normSlow(frac, exp)
	}
	return Number{
		frac: math.Float64frombits(bits&^(uint64(0x7ff)<<52) | uint64(1022)<<52),
		exp:  exp + be - 1022,
	}
}

// normSlow is normFrac's cold path — zero, subnormal or non-finite
// working fractions — kept out of line so normFrac stays inside the
// inlining budget.
//
//go:noinline
func normSlow(frac float64, exp int) Number {
	return Number{frac: frac, exp: exp}.norm()
}

// IsZero reports whether n is 0. The scaled representation keeps
// frac == 0 as the single exact encoding of zero, so the comparison
// is a representation test, not a numeric tolerance decision.
func (n Number) IsZero() bool {
	return n.frac == 0 //lint:allow floatcmp frac == 0 is the canonical exact representation of Zero
}

// Sign returns -1, 0, or +1 according to the sign of n.
func (n Number) Sign() int {
	switch {
	case n.frac > 0:
		return 1
	case n.frac < 0:
		return -1
	default:
		return 0
	}
}

// Neg returns -n.
func (n Number) Neg() Number { return Number{frac: -n.frac, exp: n.exp} }

// Mul returns n * m.
func (n Number) Mul(m Number) Number {
	if n.IsZero() || m.IsZero() {
		return Number{}
	}
	return Number{frac: n.frac * m.frac, exp: n.exp + m.exp}.norm()
}

// MulFloat returns n * f for a plain float64 f.
func (n Number) MulFloat(f float64) Number {
	return n.Mul(FromFloat64(f))
}

// Div returns n / m. It panics when m is zero.
func (n Number) Div(m Number) Number {
	if m.IsZero() {
		//lint:allow libpanic same contract as native float64 division by an exact zero; Q-ratios divide by provably positive normalizers
		panic("scale: division by zero")
	}
	if n.IsZero() {
		return Number{}
	}
	return Number{frac: n.frac / m.frac, exp: n.exp - m.exp}.norm()
}

// DivFloat returns n / f.
func (n Number) DivFloat(f float64) Number {
	return n.Div(FromFloat64(f))
}

// Add returns n + m. When the operands' magnitudes differ by more than
// the float64 mantissa can express (~2^60), the smaller operand is
// absorbed, exactly as it would be in unscaled float64 addition.
func (n Number) Add(m Number) Number {
	if n.IsZero() {
		return m
	}
	if m.IsZero() {
		return n
	}
	// Align to the larger exponent.
	if n.exp < m.exp {
		n, m = m, n
	}
	shift := n.exp - m.exp
	if shift > 1075 { // smaller operand is below one ulp of the larger
		return n
	}
	f := n.frac + ldexpDown(m.frac, shift)
	return Number{frac: f, exp: n.exp}.norm()
}

// Sub returns n - m.
func (n Number) Sub(m Number) Number { return n.Add(m.Neg()) }

// Cmp compares n and m, returning -1, 0, or +1.
func (n Number) Cmp(m Number) int {
	d := n.Sub(m)
	return d.Sign()
}

// Float64 converts n to a float64, returning 0 on underflow and ±Inf on
// overflow of the float64 exponent range.
func (n Number) Float64() float64 {
	if n.IsZero() {
		return 0
	}
	return math.Ldexp(n.frac, n.exp)
}

// Log returns ln(n). It panics for n <= 0.
func (n Number) Log() float64 {
	if n.frac <= 0 {
		//lint:allow libpanic same domain contract as math.Log; callers take logs only of strictly positive Q values
		panic(fmt.Sprintf("scale: Log of non-positive number %v", n))
	}
	return math.Log(n.frac) + float64(n.exp)*math.Ln2
}

// Ratio returns n/m as a plain float64, the operation every performance
// measure reduces to. It panics when m is zero.
func (n Number) Ratio(m Number) float64 {
	return n.Div(m).Float64()
}

// String formats n in scientific notation for diagnostics.
func (n Number) String() string {
	if n.IsZero() {
		return "0"
	}
	// value = frac * 2^exp; express as d * 10^e.
	log10 := math.Log10(math.Abs(n.frac)) + float64(n.exp)*math.Log10(2)
	e := math.Floor(log10)
	d := math.Pow(10, log10-e)
	if n.frac < 0 {
		d = -d
	}
	return fmt.Sprintf("%.12ge%+d", d, int(e))
}
