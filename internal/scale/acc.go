package scale

import "math"

// This file holds the fused accumulation primitives the lattice
// recursions (internal/core alg1) run on. The eager Number methods
// renormalize after every operation — a MulFloat+Add chain costs three
// Frexp calls per term — which dominates the per-cell cost of the
// Eq. 10 fill. Acc defers normalization: terms are accumulated as a raw
// working fraction against a shared binary exponent and the single
// Frexp happens when the finished sum is read back. With every term a
// normalized Number, the working fraction stays within a factor of the
// term count of [0.5, 1), far inside float64 range, so the deferred
// path loses no precision relative to the eager one.

// Acc accumulates a sum of scaled values without intermediate
// normalization. The zero Acc is the empty sum (value 0) and is ready
// to use. Accumulate with Add/AddMul, then read the total with Norm or
// DivFloat.
//
// An Acc is also a storable working value: the V lattices of the
// Eq. 9/10 recursion keep whole grids of in-flight accumulators
// (InitMul/AddMulAcc/AddAcc) and only the Q cells they feed are ever
// normalized. The working fraction of such a chain grows by at most
// one unit of magnitude per recursion step, so even a 2^900-cell
// dependency chain stays inside float64 range; the lattices the
// solvers build are bounded by the switch size, a dozen binary orders
// at most.
type Acc struct {
	frac float64
	exp  int
}

// Init resets the accumulator to the value n.
func (a *Acc) Init(n Number) { a.frac, a.exp = n.frac, n.exp }

// InitMul resets the accumulator to the product n*f. A zero factor
// leaves the canonical empty accumulator (frac == 0; the exponent
// field is immaterial then, as everywhere in the package).
func (a *Acc) InitMul(n, f Number) { a.frac, a.exp = n.frac*f.frac, n.exp+f.exp }

// Add accumulates a += n. The factor 1 multiplies exactly, so the
// shared fused primitive adds n verbatim.
func (a *Acc) Add(n Number) {
	a.frac, a.exp = addRaw(a.frac, a.exp, n.frac, n.exp, 1, 0)
}

// AddAcc accumulates a += t, folding one in-flight accumulator into
// another without normalizing either.
func (a *Acc) AddAcc(t Acc) {
	a.frac, a.exp = addRaw(a.frac, a.exp, t.frac, t.exp, 1, 0)
}

// AddMulAcc accumulates a += t*f for an in-flight accumulator t, the
// AddMul twin used where a stored working value (a W-lattice cell)
// feeds the next recursion step directly. A zero product — either
// operand zero, or an already sub-absorption-threshold unnormalized
// fraction underflowing against f — contributes nothing.
func (a *Acc) AddMulAcc(t Acc, f Number) {
	a.frac, a.exp = addRaw(a.frac, a.exp, t.frac, t.exp, f.frac, f.exp)
}

// AddMul accumulates a += n*f in one step. f is typically a hoisted
// per-class constant, so the product costs one multiply and no
// renormalization.
func (a *Acc) AddMul(n, f Number) {
	a.frac, a.exp = addRaw(a.frac, a.exp, n.frac, n.exp, f.frac, f.exp)
}

// addRaw folds the contribution nf*ff * 2^(ne+fe) into the working
// sum af*2^ae, aligning to the larger exponent, and returns the new
// sum. A zero product contributes nothing. Contributions more than
// 1075 binary orders below the running exponent are absorbed,
// matching Number.Add (the cutoff is measured between working
// fractions, so it can differ from the eager path by the few binary
// orders an unnormalized fraction can drift — both far below one ulp
// of the total).
//
// addRaw is the one fused accumulate primitive: it takes the term as
// a fraction-exponent pair times a factor so that AddMul needs no
// body of its own (Add passes the exact factor 1), passes the
// accumulator by value, and is pinned out of line. Out of line, every
// exported wrapper is a plain call inside the inlining budget, so the
// hot path pays exactly one call per accumulated term; by value, the
// wrappers' receiver never has its address taken at the call site, so
// an accumulator local to a fill loop lives entirely in registers —
// the call moves its words through the register ABI instead of
// spilling the accumulator to the stack on every term.
//
//go:noinline
func addRaw(af float64, ae int, nf float64, ne int, ff float64, fe int) (float64, int) {
	return rawAdd(af, ae, nf*ff, ne+fe)
}

// rawAdd is the alignment core shared by addRaw and the fused cell
// kernels (kernel.go): it folds the unnormalized term frac*2^exp into
// the working sum af*2^ae and returns the new sum. Small enough to
// inline into its few callers, so the whole fused accumulate is still
// one call deep.
func rawAdd(af float64, ae int, frac float64, exp int) (float64, int) {
	if frac == 0 { //lint:allow floatcmp exact zero contributes nothing; subnormals still accumulate
		return af, ae
	}
	shift := ae - exp
	if af == 0 || shift < 0 { //lint:allow floatcmp empty accumulator takes the first term verbatim
		// Either the sum is empty — take the term and let the add
		// below fold in the old zero fraction, a bitwise no-op
		// whatever the (stale) shift says — or the term has the larger
		// exponent: swap so the single alignment multiply below always
		// lands on the smaller operand. Float64 addition commutes
		// bit-for-bit, so the swap is the same sum as aligning in
		// place.
		frac, af = af, frac
		ae = exp
		if shift < 0 {
			shift = -shift
		}
	}
	if shift > 1075 {
		return af, ae
	}
	// ldexpDown(frac, shift), spelled out in place; see ldexpDown for
	// the split-shift rationale.
	if shift > 1022 {
		frac *= math.Float64frombits(uint64(2045-shift) << 52)
		shift = 1022
	}
	return af + frac*math.Float64frombits(uint64(1023-shift)<<52), ae
}

// ldexpDown returns f * 2^-k for 0 <= k <= 1075, the alignment step of
// the accumulator. It multiplies by an exactly representable power of
// two instead of calling math.Ldexp, whose zero/NaN/Inf/denormal
// bookkeeping dominates the fill profile; the product itself rounds
// (and gradually underflows) exactly as Ldexp would.
func ldexpDown(f float64, k int) float64 {
	if k > 1022 {
		// 2^-k is not representable; split the shift. The small factor
		// is applied first, while the value is still normal and the
		// multiply exact, so only the final 2^-1022 step rounds —
		// peeling 2^-1022 first would round twice and can differ from
		// Ldexp by one ulp at the bottom of the subnormal range
		// (TestLdexpDown covers the whole contract range).
		f *= math.Float64frombits(uint64(1023-(k-1022)) << 52)
		k = 1022
	}
	return f * math.Float64frombits(uint64(1023-k)<<52)
}

// Norm returns the accumulated value as a normalized Number.
func (a Acc) Norm() Number {
	return Number{frac: a.frac, exp: a.exp}.norm()
}

// MulNorm returns the accumulated value times f as a normalized
// Number, in a single normalization step. It is the multiply-by-
// reciprocal twin of DivFloat for hot loops that divide by the same
// small set of values repeatedly (the 1/n_i cell counts of Eq. 10):
// one rounding more than the exact division, ~15 cycles less. The
// fast path is hand-inlined normalization (normFrac), so the whole
// call inlines into the fill loops.
func (a Acc) MulNorm(f float64) Number {
	return normFrac(a.frac*f, a.exp)
}

// DivFloat returns the accumulated value divided by f as a normalized
// Number, in a single normalization step. f must be finite and
// non-zero, the same contract as Number.DivFloat.
func (a Acc) DivFloat(f float64) Number {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) { //lint:allow floatcmp same exact-zero divisor contract as Number.Div
		//lint:allow libpanic same contract as Number.Div: the recursions divide by provably positive cell counts
		panic("scale: Acc.DivFloat by zero or non-finite divisor")
	}
	return Number{frac: a.frac / f, exp: a.exp}.norm()
}

// AddMul returns n + t*f with a single normalization — the fused form
// of n.Add(t.Mul(f)) the V-recursion of Eq. 9 runs on. The body is the
// Acc Init/AddMul/Norm sequence flattened by hand so the common case
// (all operands normal, aligned within the mantissa) runs branch-lean
// and call-free inside the fill loops.
func (n Number) AddMul(t, f Number) Number {
	tf := t.frac * f.frac
	if tf == 0 { //lint:allow floatcmp frac == 0 is the canonical exact representation of Zero
		return n
	}
	te := t.exp + f.exp
	if n.frac == 0 { //lint:allow floatcmp empty base takes the product verbatim, same as Acc.addRaw
		return normFrac(tf, te)
	}
	shift := n.exp - te
	switch {
	case shift >= 0:
		if shift > 1075 {
			return n
		}
		return normFrac(n.frac+ldexpDown(tf, shift), n.exp)
	default:
		if shift < -1075 {
			return normFrac(tf, te)
		}
		return normFrac(ldexpDown(n.frac, -shift)+tf, te)
	}
}
