package scale

import "math"

// This file holds the fused accumulation primitives the lattice
// recursions (internal/core alg1) run on. The eager Number methods
// renormalize after every operation — a MulFloat+Add chain costs three
// Frexp calls per term — which dominates the per-cell cost of the
// Eq. 10 fill. Acc defers normalization: terms are accumulated as a raw
// working fraction against a shared binary exponent and the single
// Frexp happens when the finished sum is read back. With every term a
// normalized Number, the working fraction stays within a factor of the
// term count of [0.5, 1), far inside float64 range, so the deferred
// path loses no precision relative to the eager one.

// Acc accumulates a sum of scaled values without intermediate
// normalization. The zero Acc is the empty sum (value 0) and is ready
// to use. Accumulate with Add/AddMul, then read the total with Norm or
// DivFloat.
type Acc struct {
	frac float64
	exp  int
}

// Init resets the accumulator to the value n.
func (a *Acc) Init(n Number) { a.frac, a.exp = n.frac, n.exp }

// Add accumulates a += n.
func (a *Acc) Add(n Number) { a.addRaw(n.frac, n.exp) }

// AddMul accumulates a += n*f in one step. f is typically a hoisted
// per-class constant, so the product costs one multiply and no
// renormalization.
func (a *Acc) AddMul(n, f Number) {
	if n.frac == 0 || f.frac == 0 { //lint:allow floatcmp frac == 0 is the canonical exact representation of Zero
		return
	}
	a.addRaw(n.frac*f.frac, n.exp+f.exp)
}

// addRaw folds one unnormalized contribution frac*2^exp into the
// accumulator, aligning to the larger exponent. Contributions more
// than 1075 binary orders below the running exponent are absorbed,
// matching Number.Add (the cutoff is measured between working
// fractions, so it can differ from the eager path by the few binary
// orders an unnormalized fraction can drift — both far below one ulp
// of the total).
func (a *Acc) addRaw(frac float64, exp int) {
	if frac == 0 { //lint:allow floatcmp exact zero contributes nothing; subnormals still accumulate
		return
	}
	if a.frac == 0 { //lint:allow floatcmp empty accumulator takes the first term verbatim
		a.frac, a.exp = frac, exp
		return
	}
	shift := a.exp - exp
	switch {
	case shift >= 0:
		if shift > 1075 {
			return
		}
		a.frac += ldexpDown(frac, shift)
	default:
		if shift < -1075 {
			a.frac, a.exp = frac, exp
			return
		}
		a.frac = ldexpDown(a.frac, -shift) + frac
		a.exp = exp
	}
}

// ldexpDown returns f * 2^-k for 0 <= k <= 1075, the alignment step of
// the accumulator. It multiplies by an exactly representable power of
// two instead of calling math.Ldexp, whose zero/NaN/Inf/denormal
// bookkeeping dominates the fill profile; the product itself rounds
// (and gradually underflows) exactly as Ldexp would.
func ldexpDown(f float64, k int) float64 {
	if k > 1022 {
		// 2^-k is not representable; split the shift. The small factor
		// is applied first, while the value is still normal and the
		// multiply exact, so only the final 2^-1022 step rounds —
		// peeling 2^-1022 first would round twice and can differ from
		// Ldexp by one ulp at the bottom of the subnormal range
		// (TestLdexpDown covers the whole contract range).
		f *= math.Float64frombits(uint64(1023-(k-1022)) << 52)
		k = 1022
	}
	return f * math.Float64frombits(uint64(1023-k)<<52)
}

// Norm returns the accumulated value as a normalized Number.
func (a Acc) Norm() Number {
	return Number{frac: a.frac, exp: a.exp}.norm()
}

// DivFloat returns the accumulated value divided by f as a normalized
// Number, in a single normalization step. f must be finite and
// non-zero, the same contract as Number.DivFloat.
func (a Acc) DivFloat(f float64) Number {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) { //lint:allow floatcmp same exact-zero divisor contract as Number.Div
		//lint:allow libpanic same contract as Number.Div: the recursions divide by provably positive cell counts
		panic("scale: Acc.DivFloat by zero or non-finite divisor")
	}
	return Number{frac: a.frac / f, exp: a.exp}.norm()
}

// AddMul returns n + t*f with a single normalization — the fused form
// of n.Add(t.Mul(f)) the V-recursion of Eq. 9 runs on.
func (n Number) AddMul(t, f Number) Number {
	var a Acc
	a.Init(n)
	a.AddMul(t, f)
	return a.Norm()
}
