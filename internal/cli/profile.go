package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler bundles the standard Go profiling hooks behind command-line
// flags so every xbar binary exposes them identically:
//
//	-cpuprofile f   CPU profile (go tool pprof)
//	-memprofile f   heap profile written at exit
//	-trace f        execution trace (go tool trace) — the tool for
//	                inspecting the wavefront schedule's goroutines
//
// Usage: p := cli.NewProfiler(flag.CommandLine), then after flag.Parse
// call p.Start() and defer the returned stop function.
type Profiler struct {
	cpu, mem, trc *string

	cpuFile, trcFile *os.File
}

// NewProfiler registers the profiling flags on fs.
func NewProfiler(fs *flag.FlagSet) *Profiler {
	return &Profiler{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to `file`"),
		mem: fs.String("memprofile", "", "write a heap profile to `file` at exit"),
		trc: fs.String("trace", "", "write an execution trace to `file`"),
	}
}

// Start begins the captures requested by the parsed flags and returns
// the stop function that finalizes them; call it once flags are parsed
// and defer the result. With no profiling flags set both are no-ops.
func (p *Profiler) Start() (stop func() error, err error) {
	if *p.cpu != "" {
		if p.cpuFile, err = os.Create(*p.cpu); err != nil {
			return nil, fmt.Errorf("cli: %w", err)
		}
		if err = pprof.StartCPUProfile(p.cpuFile); err != nil {
			//lint:allow errcheck unwinding a failed start; the start error is the one worth reporting
			p.cpuFile.Close()
			return nil, fmt.Errorf("cli: start CPU profile: %w", err)
		}
	}
	if *p.trc != "" {
		if p.trcFile, err = os.Create(*p.trc); err != nil {
			p.stopStarted()
			return nil, fmt.Errorf("cli: %w", err)
		}
		if err = trace.Start(p.trcFile); err != nil {
			//lint:allow errcheck unwinding a failed start; the start error is the one worth reporting
			p.trcFile.Close()
			p.stopStarted()
			return nil, fmt.Errorf("cli: start trace: %w", err)
		}
	}
	return p.stop, nil
}

// stopStarted unwinds the captures already running when a later Start
// step fails.
func (p *Profiler) stopStarted() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		//lint:allow errcheck unwinding a failed start; the start error is the one worth reporting
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// stop finalizes every running capture and writes the heap profile if
// one was requested. The first error wins; later captures still stop.
func (p *Profiler) stop() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if p.trcFile != nil {
		trace.Stop()
		keep(p.trcFile.Close())
		p.trcFile = nil
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(p.cpuFile.Close())
		p.cpuFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // settle the heap so the profile reflects live data
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if first != nil {
		return fmt.Errorf("cli: %w", first)
	}
	return nil
}
