package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestProfilerCaptures runs every hook against temp files and checks
// each artifact is written and non-empty.
func TestProfilerCaptures(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	trc := filepath.Join(dir, "trace.out")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfiler(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-trace", trc}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the captures have something to record.
	sum := 0
	for i := 0; i < 1e6; i++ {
		sum += i
	}
	_ = sum
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem, trc} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

// TestProfilerNoFlags checks the no-profiling path is a clean no-op.
func TestProfilerNoFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfiler(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestProfilerBadPath checks a failed capture start surfaces the error
// instead of leaving a half-started profiler behind.
func TestProfilerBadPath(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := NewProfiler(fs)
	bad := filepath.Join(t.TempDir(), "missing", "cpu.out")
	if err := fs.Parse([]string{"-cpuprofile", bad}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err == nil {
		t.Fatal("Start with an unwritable path succeeded")
	}
}
