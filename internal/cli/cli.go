// Package cli holds the flag-parsing helpers shared by the xbar
// command-line tools: the traffic-class flag syntax and the service-
// distribution names, kept here so both binaries parse identically and
// the parsing is unit-tested.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"xbar/internal/core"
	"xbar/internal/rng"
)

// ClassFlag accumulates repeated -class values of the form
// name:a:alphaTilde:betaTilde:mu (the paper's aggregate units).
type ClassFlag []core.AggregateClass

// String implements flag.Value.
func (c *ClassFlag) String() string { return fmt.Sprintf("%d classes", len(*c)) }

// Set implements flag.Value, parsing one class specification.
func (c *ClassFlag) Set(v string) error {
	ac, err := ParseClass(v)
	if err != nil {
		return err
	}
	*c = append(*c, ac)
	return nil
}

// ParseClass parses one name:a:alphaTilde:betaTilde:mu specification.
func ParseClass(v string) (core.AggregateClass, error) {
	parts := strings.Split(v, ":")
	if len(parts) != 5 {
		return core.AggregateClass{}, fmt.Errorf("cli: want name:a:alphaTilde:betaTilde:mu, got %q", v)
	}
	if parts[0] == "" {
		return core.AggregateClass{}, fmt.Errorf("cli: empty class name in %q", v)
	}
	a, err := strconv.Atoi(parts[1])
	if err != nil {
		return core.AggregateClass{}, fmt.Errorf("cli: bandwidth %q: %v", parts[1], err)
	}
	alpha, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return core.AggregateClass{}, fmt.Errorf("cli: alpha %q: %v", parts[2], err)
	}
	beta, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return core.AggregateClass{}, fmt.Errorf("cli: beta %q: %v", parts[3], err)
	}
	mu, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return core.AggregateClass{}, fmt.Errorf("cli: mu %q: %v", parts[4], err)
	}
	return core.AggregateClass{
		Name: parts[0], A: a, AlphaTilde: alpha, BetaTilde: beta, Mu: mu,
	}, nil
}

// ParseWeights parses a comma-separated weight list.
func ParseWeights(v string) ([]float64, error) {
	parts := strings.Split(v, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("cli: weight %q: %v", p, err)
		}
		out[i] = w
	}
	return out, nil
}

// ServiceNames lists the accepted -service values.
func ServiceNames() []string {
	return []string{"exp", "det", "erlang4", "hyper4", "pareto2.5"}
}

// ParseService returns the named holding-time distribution with the
// given mean.
func ParseService(name string, mean float64) (rng.ServiceDist, error) {
	switch name {
	case "", "exp":
		return rng.Exponential{M: mean}, nil
	case "det":
		return rng.Deterministic{M: mean}, nil
	case "erlang4":
		return rng.Erlang{K: 4, M: mean}, nil
	case "hyper4":
		return rng.BalancedHyperExp2(mean, 4)
	case "pareto2.5":
		return rng.ParetoWithMean(mean, 2.5)
	default:
		return nil, fmt.Errorf("cli: unknown service distribution %q (want one of %s)",
			name, strings.Join(ServiceNames(), " "))
	}
}
