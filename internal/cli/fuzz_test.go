package cli

import (
	"strings"
	"testing"
)

// FuzzParseClass: the parser must never panic and, when it accepts,
// must round-trip the numeric fields consistently.
func FuzzParseClass(f *testing.F) {
	f.Add("voice:1:0.0024:0:1")
	f.Add("x:2:1e-3:-4e-6:0.5")
	f.Add(":::::")
	f.Add("a:b:c:d:e")
	f.Add("")
	f.Fuzz(func(t *testing.T, v string) {
		ac, err := ParseClass(v)
		if err != nil {
			return
		}
		// Accepted specs have exactly five fields and a non-empty name.
		if strings.Count(v, ":") != 4 {
			t.Fatalf("accepted %q with %d colons", v, strings.Count(v, ":"))
		}
		if ac.Name == "" {
			t.Fatalf("accepted empty name from %q", v)
		}
	})
}

// FuzzParseWeights: never panics; accepted output has one entry per
// comma-separated field.
func FuzzParseWeights(f *testing.F) {
	f.Add("1,2,3")
	f.Add("1")
	f.Add("")
	f.Add("1e300,-5")
	f.Fuzz(func(t *testing.T, v string) {
		ws, err := ParseWeights(v)
		if err != nil {
			return
		}
		if len(ws) != len(strings.Split(v, ",")) {
			t.Fatalf("parsed %d weights from %q", len(ws), v)
		}
	})
}
