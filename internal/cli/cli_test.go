package cli

import (
	"math"
	"testing"
)

func TestParseClass(t *testing.T) {
	ac, err := ParseClass("voice:1:0.0024:0:1")
	if err != nil {
		t.Fatal(err)
	}
	if ac.Name != "voice" || ac.A != 1 || ac.AlphaTilde != 0.0024 || ac.BetaTilde != 0 || ac.Mu != 1 {
		t.Errorf("parsed %+v", ac)
	}
	ac, err = ParseClass("video:2:1e-3:-4e-6:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if ac.A != 2 || ac.BetaTilde != -4e-6 || ac.Mu != 0.5 {
		t.Errorf("parsed %+v", ac)
	}
}

func TestParseClassErrors(t *testing.T) {
	bad := []string{
		"",
		"voice:1:0.1:0",         // too few fields
		"voice:1:0.1:0:1:extra", // too many
		":1:0.1:0:1",            // empty name
		"voice:x:0.1:0:1",       // bad a
		"voice:1:x:0:1",         // bad alpha
		"voice:1:0.1:x:1",       // bad beta
		"voice:1:0.1:0:x",       // bad mu
	}
	for _, v := range bad {
		if _, err := ParseClass(v); err == nil {
			t.Errorf("ParseClass(%q) accepted", v)
		}
	}
}

func TestClassFlagAccumulates(t *testing.T) {
	var f ClassFlag
	if err := f.Set("a:1:0.1:0:1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("b:2:0.2:0.1:2"); err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 || f[0].Name != "a" || f[1].Name != "b" {
		t.Errorf("accumulated %+v", f)
	}
	if f.String() != "2 classes" {
		t.Errorf("String = %q", f.String())
	}
	if err := f.Set("bad"); err == nil {
		t.Error("bad value accepted")
	}
	if len(f) != 2 {
		t.Error("failed Set modified the flag")
	}
}

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("1, 0.0001 ,2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 || w[0] != 1 || w[1] != 0.0001 || w[2] != 2.5 {
		t.Errorf("parsed %v", w)
	}
	if _, err := ParseWeights("1,x"); err == nil {
		t.Error("bad weight accepted")
	}
}

func TestParseService(t *testing.T) {
	for _, name := range ServiceNames() {
		d, err := ParseService(name, 2.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(d.Mean()-2.0) > 1e-9 {
			t.Errorf("%s: mean %v, want 2", name, d.Mean())
		}
	}
	// Default (empty) is exponential.
	d, err := ParseService("", 1.5)
	if err != nil || d.Name() != "exponential" {
		t.Errorf("default service = %v, %v", d, err)
	}
	if _, err := ParseService("weibull", 1); err == nil {
		t.Error("unknown service accepted")
	}
}
