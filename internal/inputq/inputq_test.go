package inputq

import (
	"math"
	"testing"
)

func TestSaturationConstant(t *testing.T) {
	if got := SaturationHOL(); math.Abs(got-0.5857864376269049) > 1e-15 {
		t.Errorf("2 - sqrt(2) = %v", got)
	}
}

// TestHOLSaturationKnownValues: the simulator reproduces the classical
// Karol-Hluchyj-Morgan saturation throughputs: 0.75 at N=2, falling
// monotonically toward 2 - sqrt(2) for large N.
func TestHOLSaturationKnownValues(t *testing.T) {
	known := []struct {
		n    int
		want float64
	}{
		{1, 1.0},
		{2, 0.75},
		{4, 0.6553},
		{8, 0.6184},
	}
	prev := 1.1
	for _, c := range known {
		ci, err := SaturationThroughput(c.n, 60000, InputQueued, uint64(c.n))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ci.Mean-c.want) > 2*ci.HalfWidth+0.01 {
			t.Errorf("N=%d: saturation %v, classical %v", c.n, ci, c.want)
		}
		if ci.Mean >= prev {
			t.Errorf("N=%d: saturation %v not decreasing", c.n, ci.Mean)
		}
		prev = ci.Mean
	}
	// Large N approaches the 0.586 limit.
	ci, err := SaturationThroughput(64, 30000, InputQueued, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci.Mean-SaturationHOL()) > 0.02 {
		t.Errorf("N=64 saturation %v, want ~%v", ci.Mean, SaturationHOL())
	}
}

// TestOutputQueuedIsWorkConserving: output queueing saturates at
// throughput ~1 and beats input queueing at every load above the HOL
// limit.
func TestOutputQueuedIsWorkConserving(t *testing.T) {
	ci, err := SaturationThroughput(16, 40000, OutputQueued, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean < 0.95 {
		t.Errorf("output-queued saturation %v, want ~1", ci)
	}
	iq, err := Run(Config{N: 16, Load: 0.8, Discipline: InputQueued, Slots: 40000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	oq, err := Run(Config{N: 16, Load: 0.8, Discipline: OutputQueued, Slots: 40000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if iq.Throughput.Mean >= oq.Throughput.Mean {
		t.Errorf("at load 0.8 > HOL limit, input-queued %v should trail output-queued %v",
			iq.Throughput.Mean, oq.Throughput.Mean)
	}
	// Output queued carries the full offered load below saturation.
	if math.Abs(oq.Throughput.Mean-0.8) > 2*oq.Throughput.HalfWidth+0.01 {
		t.Errorf("output-queued throughput %v, want ~0.8", oq.Throughput)
	}
}

// TestBelowHOLLimitBothCarryLoad: at load under 0.586 the input-queued
// switch is stable and delivers the offered load with finite delay.
func TestBelowHOLLimitBothCarryLoad(t *testing.T) {
	for _, d := range []Discipline{InputQueued, OutputQueued} {
		res, err := Run(Config{N: 16, Load: 0.5, Discipline: d, Slots: 40000, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Throughput.Mean-0.5) > 2*res.Throughput.HalfWidth+0.01 {
			t.Errorf("%v: throughput %v, want ~0.5", d, res.Throughput)
		}
		if res.MeanDelay <= 0 || res.MeanDelay > 20 {
			t.Errorf("%v: mean delay %v slots implausible", d, res.MeanDelay)
		}
		if res.Dropped != 0 {
			t.Errorf("%v: %d drops with effectively infinite queues", d, res.Dropped)
		}
	}
}

// TestDelayOrdering: input queueing suffers more delay than output
// queueing at the same moderate load (HOL blocking adds waiting).
func TestDelayOrdering(t *testing.T) {
	iq, err := Run(Config{N: 16, Load: 0.55, Discipline: InputQueued, Slots: 60000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	oq, err := Run(Config{N: 16, Load: 0.55, Discipline: OutputQueued, Slots: 60000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if iq.MeanDelay <= oq.MeanDelay {
		t.Errorf("input-queued delay %v should exceed output-queued %v", iq.MeanDelay, oq.MeanDelay)
	}
}

// TestQueueCapDrops: a tiny queue capacity produces drops at high load.
func TestQueueCapDrops(t *testing.T) {
	res, err := Run(Config{N: 8, Load: 0.9, Discipline: InputQueued,
		Slots: 20000, QueueCap: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("expected drops with QueueCap = 2 at load 0.9")
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{N: 0, Load: 0.5, Slots: 100},
		{N: 4, Load: 1.5, Slots: 100},
		{N: 4, Load: 0.5, Slots: 5},
		{N: 4, Load: 0.5, Slots: 100, Discipline: Discipline(7)},
		{N: 4, Load: 0.5, Slots: 100, QueueCap: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if InputQueued.String() != "input-queued" || OutputQueued.String() != "output-queued" {
		t.Error("discipline names wrong")
	}
	if Discipline(7).String() != "Discipline(7)" {
		t.Error("unknown discipline name wrong")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 8, Load: 0.6, Discipline: InputQueued, Slots: 5000, Seed: 11}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.MeanDelay != b.MeanDelay {
		t.Error("same seed diverged")
	}
}
