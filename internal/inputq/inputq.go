// Package inputq implements the buffered counterpoint to the paper's
// unbuffered switch: a slotted input-queued crossbar with FIFO queues
// and head-of-line (HOL) service. The paper argues optical switches
// cannot buffer and so must operate loss-mode; the classical result of
// Karol, Hluchyj and Morgan (1987) quantifies what FIFO input
// buffering would deliver anyway: HOL blocking caps the saturation
// throughput at 2 - sqrt(2) ~ 0.586 as N grows (0.75 at N = 2), while
// an (expensive) output-queued switch is work-conserving with
// throughput 1. This package provides the slotted simulator for both
// disciplines and the known saturation constants as test oracles.
package inputq

import (
	"fmt"
	"math"

	"xbar/internal/rng"
	"xbar/internal/stats"
)

// SaturationHOL returns the known asymptotic saturation throughput of
// a FIFO input-queued crossbar, 2 - sqrt(2).
func SaturationHOL() float64 { return 2 - math.Sqrt2 }

// Discipline selects the buffering architecture.
type Discipline int

const (
	// InputQueued: one FIFO per input; only the head-of-line cell may
	// contend, and each output grants one requester per slot.
	InputQueued Discipline = iota
	// OutputQueued: every arriving cell reaches its output queue in
	// the same slot (fabric speedup N); each output transmits one cell
	// per slot. Work-conserving.
	OutputQueued
)

func (d Discipline) String() string {
	switch d {
	case InputQueued:
		return "input-queued"
	case OutputQueued:
		return "output-queued"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Config parameterizes a slotted run.
type Config struct {
	// N is the switch size (N x N).
	N int
	// Load is the per-input cell arrival probability per slot, with
	// uniform destinations. Load = 1 saturates the inputs.
	Load float64
	// Discipline selects input or output queueing.
	Discipline Discipline
	// Slots is the simulated horizon; QueueCap bounds each queue
	// (cells arriving to a full queue are dropped; 0 means 10^6,
	// effectively infinite for stable loads).
	Slots    int
	QueueCap int
	Seed     uint64
}

// Result reports a run.
type Result struct {
	// Throughput is the delivered cells per output per slot.
	Throughput stats.CI
	// MeanDelay is the average queueing delay in slots of delivered
	// cells (arrival slot to departure slot).
	MeanDelay float64
	// Dropped counts cells lost to full queues.
	Dropped int64
	// Delivered counts cells that reached their output.
	Delivered int64
}

type cell struct {
	dst     int
	arrived int
}

// Run simulates the slotted switch.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("inputq: N = %d", cfg.N)
	}
	if cfg.Load < 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("inputq: load %v outside [0,1]", cfg.Load)
	}
	const batches = 20
	if cfg.Slots < batches {
		return nil, fmt.Errorf("inputq: need at least %d slots", batches)
	}
	if cfg.Discipline != InputQueued && cfg.Discipline != OutputQueued {
		return nil, fmt.Errorf("inputq: unknown discipline %v", cfg.Discipline)
	}
	queueCap := cfg.QueueCap
	if queueCap == 0 {
		queueCap = 1_000_000
	}
	if queueCap < 1 {
		return nil, fmt.Errorf("inputq: queue capacity %d", cfg.QueueCap)
	}

	stream := rng.NewStream(cfg.Seed)
	n := cfg.N
	// queues[i] is input i's FIFO (input-queued) or output i's FIFO
	// (output-queued).
	queues := make([][]cell, n)
	perBatch := cfg.Slots / batches
	var thB []float64
	var delivered, dropped int64
	var delaySum float64
	winners := make([]int, n) // output -> granted input (input-queued)
	contend := make([]int, n) // output -> number of HOL requesters
	for b := 0; b < batches; b++ {
		var batchDelivered int64
		for s := 0; s < perBatch; s++ {
			slot := b*perBatch + s
			// Arrivals.
			for i := 0; i < n; i++ {
				if stream.Float64() >= cfg.Load {
					continue
				}
				dst := stream.Intn(n)
				q := i
				if cfg.Discipline == OutputQueued {
					q = dst
				}
				if len(queues[q]) >= queueCap {
					dropped++
					continue
				}
				queues[q] = append(queues[q], cell{dst: dst, arrived: slot})
			}
			// Service.
			switch cfg.Discipline {
			case OutputQueued:
				for j := 0; j < n; j++ {
					if len(queues[j]) == 0 {
						continue
					}
					c := queues[j][0]
					queues[j] = queues[j][1:]
					delivered++
					batchDelivered++
					delaySum += float64(slot - c.arrived)
				}
			case InputQueued:
				// HOL contention: each non-empty input requests its
				// head cell's output; each output grants one uniformly
				// random requester (resolved by reservoir sampling).
				for j := 0; j < n; j++ {
					winners[j] = -1
					contend[j] = 0
				}
				for i := 0; i < n; i++ {
					if len(queues[i]) == 0 {
						continue
					}
					dst := queues[i][0].dst
					contend[dst]++
					if stream.Intn(contend[dst]) == 0 {
						winners[dst] = i
					}
				}
				for j := 0; j < n; j++ {
					i := winners[j]
					if i < 0 {
						continue
					}
					c := queues[i][0]
					queues[i] = queues[i][1:]
					delivered++
					batchDelivered++
					delaySum += float64(slot - c.arrived)
				}
			}
		}
		thB = append(thB, float64(batchDelivered)/float64(perBatch)/float64(n))
	}
	res := &Result{
		Throughput: stats.BatchMeans(thB, 0.95),
		Dropped:    dropped,
		Delivered:  delivered,
	}
	if delivered > 0 {
		res.MeanDelay = delaySum / float64(delivered)
	}
	return res, nil
}

// SaturationThroughput measures the saturation throughput: every input
// always has a cell (load 1, unbounded queues are irrelevant — the
// queue never empties), so the delivered rate is purely the fabric's
// contention limit.
func SaturationThroughput(n, slots int, d Discipline, seed uint64) (stats.CI, error) {
	res, err := Run(Config{N: n, Load: 1, Discipline: d, Slots: slots, Seed: seed})
	if err != nil {
		return stats.CI{}, err
	}
	return res.Throughput, nil
}
