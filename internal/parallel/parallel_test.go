package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderIsDeterministic(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 200} {
		got, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapCollectsEveryError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	sentinel := []error{
		errors.New("fail-1"),
		errors.New("fail-4"),
	}
	_, err := Map(3, items, func(i, v int) (int, error) {
		switch v {
		case 1:
			return 0, sentinel[0]
		case 4:
			return 0, fmt.Errorf("wrapped: %w", sentinel[1])
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	for _, want := range sentinel {
		if !errors.Is(err, want) {
			t.Errorf("joined error %v does not contain %v", err, want)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 500
	counts := make([]atomic.Int32, n)
	items := make([]struct{}, n)
	err := ForEach(8, items, func(i int, _ struct{}) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	items := make([]int, 200)
	err := ForEach(workers, items, func(int, int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched() // widen the overlap window
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(4, nil, func(int, int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("empty: %v", err)
	}
	ran := 0
	if err := ForEach(4, []int{42}, func(i, v int) error {
		ran++
		if i != 0 || v != 42 {
			return fmt.Errorf("got (%d, %d)", i, v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d times", ran)
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

// maxprocs raises GOMAXPROCS to at least n for the duration of the
// test. Wavefront clamps its pool to GOMAXPROCS, so without this the
// multi-worker schedules would silently degenerate to the sequential
// path on single-CPU hosts and the helper pool would go untested.
func maxprocs(t *testing.T, n int) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// TestWavefrontCoversEveryCell checks each cell is filled exactly once
// for a grid of worker counts, tile sizes and lattice shapes, including
// tiles larger than the lattice and degenerate 1-wide lattices.
func TestWavefrontCoversEveryCell(t *testing.T) {
	maxprocs(t, 8)
	shapes := []struct{ rows, cols int }{
		{1, 1}, {1, 17}, {17, 1}, {7, 7}, {13, 29}, {29, 13}, {40, 40},
	}
	for _, sh := range shapes {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, tile := range []int{1, 3, 8, 64} {
				counts := make([]atomic.Int32, sh.rows*sh.cols)
				Wavefront(workers, sh.rows, sh.cols, tile, func(r0, r1, c0, c1 int) {
					if r0 < 0 || c0 < 0 || r1 > sh.rows || c1 > sh.cols || r0 >= r1 || c0 >= c1 {
						t.Errorf("block [%d,%d)x[%d,%d) outside %dx%d", r0, r1, c0, c1, sh.rows, sh.cols)
						return
					}
					for r := r0; r < r1; r++ {
						for c := c0; c < c1; c++ {
							counts[r*sh.cols+c].Add(1)
						}
					}
				})
				for i := range counts {
					if n := counts[i].Load(); n != 1 {
						t.Fatalf("shape %dx%d workers=%d tile=%d: cell %d filled %d times",
							sh.rows, sh.cols, workers, tile, i, n)
					}
				}
			}
		}
	}
}

// TestWavefrontDependencyOrder asserts the scheduler's contract: when a
// cell is filled, every cell at (<= r, <= c) other than itself is
// already filled. The done flags are atomic so the race detector also
// vets the barrier's happens-before edges.
func TestWavefrontDependencyOrder(t *testing.T) {
	maxprocs(t, 8)
	const rows, cols = 33, 21
	for _, workers := range []int{2, 4, 8} {
		for _, tile := range []int{1, 4, 7, 16} {
			done := make([]atomic.Bool, rows*cols)
			Wavefront(workers, rows, cols, tile, func(r0, r1, c0, c1 int) {
				for r := r0; r < r1; r++ {
					for c := c0; c < c1; c++ {
						// Spot-check the dependency frontier: the 1_i
						// neighbors and a deep (a, a) displacement.
						for _, d := range [][2]int{{1, 0}, {0, 1}, {1, 1}, {5, 5}, {r, c}} {
							pr, pc := r-d[0], c-d[1]
							if pr < 0 || pc < 0 || (pr == r && pc == c) {
								continue
							}
							if !done[pr*cols+pc].Load() {
								t.Errorf("workers=%d tile=%d: cell (%d,%d) filled before dependency (%d,%d)",
									workers, tile, r, c, pr, pc)
							}
						}
						done[r*cols+c].Store(true)
					}
				}
			})
		}
	}
}

// TestWavefrontDeterministicResult fills an integer recursion lattice
// (value = 1 + max of the three predecessors) under every schedule and
// compares against the sequential fill.
func TestWavefrontDeterministicResult(t *testing.T) {
	maxprocs(t, 8)
	const rows, cols = 31, 47
	fillInto := func(grid []int64) func(r0, r1, c0, c1 int) {
		at := func(r, c int) int64 {
			if r < 0 || c < 0 {
				return 0
			}
			return grid[r*cols+c]
		}
		return func(r0, r1, c0, c1 int) {
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					grid[r*cols+c] = 1 + max(at(r-1, c), at(r, c-1), 3*at(r-2, c-3))
				}
			}
		}
	}
	want := make([]int64, rows*cols)
	Wavefront(1, rows, cols, cols, fillInto(want))
	for _, workers := range []int{2, 3, 8} {
		for _, tile := range []int{1, 5, 13, 64} {
			got := make([]int64, rows*cols)
			Wavefront(workers, rows, cols, tile, fillInto(got))
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d tile=%d: cell %d = %d, want %d", workers, tile, i, got[i], want[i])
				}
			}
		}
	}
}

func TestWavefrontEmpty(t *testing.T) {
	Wavefront(4, 0, 10, 8, func(int, int, int, int) { t.Error("fill ran on empty lattice") })
	Wavefront(4, 10, 0, 8, func(int, int, int, int) { t.Error("fill ran on empty lattice") })
}
