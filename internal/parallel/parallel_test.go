package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderIsDeterministic(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 200} {
		got, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapCollectsEveryError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	sentinel := []error{
		errors.New("fail-1"),
		errors.New("fail-4"),
	}
	_, err := Map(3, items, func(i, v int) (int, error) {
		switch v {
		case 1:
			return 0, sentinel[0]
		case 4:
			return 0, fmt.Errorf("wrapped: %w", sentinel[1])
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	for _, want := range sentinel {
		if !errors.Is(err, want) {
			t.Errorf("joined error %v does not contain %v", err, want)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 500
	counts := make([]atomic.Int32, n)
	items := make([]struct{}, n)
	err := ForEach(8, items, func(i int, _ struct{}) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	items := make([]int, 200)
	err := ForEach(workers, items, func(int, int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched() // widen the overlap window
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(4, nil, func(int, int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("empty: %v", err)
	}
	ran := 0
	if err := ForEach(4, []int{42}, func(i, v int) error {
		ran++
		if i != 0 || v != 42 {
			return fmt.Errorf("got (%d, %d)", i, v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d times", ran)
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}
