package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachWorkerRunsEveryIndexOnce checks coverage and that every
// reported worker identity is within the effective worker range.
func TestForEachWorkerRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 200
		var counts [n]atomic.Int64
		var badWorker atomic.Int64
		err := ForEachWorker(workers, n, func(w, i int) error {
			if w < 0 || w >= Workers(workers) {
				badWorker.Add(1)
			}
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if badWorker.Load() != 0 {
			t.Errorf("workers=%d: %d calls saw an out-of-range worker id", workers, badWorker.Load())
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForEachWorkerScratchIsPerWorker pins the contract Farm builds
// on: one worker never runs two items concurrently, so per-worker
// scratch needs no locking.
func TestForEachWorkerScratchIsPerWorker(t *testing.T) {
	const n = 500
	var mu sync.Mutex
	inUse := map[int]bool{}
	err := ForEachWorker(4, n, func(w, i int) error {
		mu.Lock()
		if inUse[w] {
			mu.Unlock()
			return fmt.Errorf("worker %d reentered while busy", w)
		}
		inUse[w] = true
		mu.Unlock()

		mu.Lock()
		inUse[w] = false
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForEachWorkerCollectsErrors checks errors join in item order
// and do not stop other items from running.
func TestForEachWorkerCollectsErrors(t *testing.T) {
	const n = 50
	want := errors.New("boom")
	var ran atomic.Int64
	err := ForEachWorker(3, n, func(w, i int) error {
		ran.Add(1)
		if i%10 == 0 {
			return fmt.Errorf("item %d: %w", i, want)
		}
		return nil
	})
	if ran.Load() != n {
		t.Errorf("an error stopped the sweep early: ran %d of %d", ran.Load(), n)
	}
	if !errors.Is(err, want) {
		t.Errorf("joined error lost the cause: %v", err)
	}
}

// TestForEachWorkerEmpty checks the degenerate sizes.
func TestForEachWorkerEmpty(t *testing.T) {
	if err := ForEachWorker(4, 0, func(w, i int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := ForEachWorker(-1, 1, func(w, i int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("n=1 ran %d times", calls)
	}
}
