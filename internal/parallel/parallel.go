// Package parallel provides the bounded worker pool the sweep and
// replication layers fan out on. The previous ad-hoc pattern — one
// goroutine per sweep point — spawns unbounded goroutines whose peak
// memory is the whole sweep at once; the pool here caps concurrency at
// a fixed worker count, keeps results in input order (slot-per-index,
// so output is deterministic regardless of scheduling), and collects
// every error instead of dropping all but the first.
package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the number of OS threads Go will actually run
// concurrently. Callers pass 0 unless they have a measured reason not
// to — see docs/PERFORMANCE.md for sizing guidance.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs f(i, items[i]) for every item using at most
// Workers(workers) goroutines. Items are claimed through an atomic
// counter, so scheduling order is arbitrary but each index runs exactly
// once. ForEach returns after every item has finished; all errors are
// collected and joined (errors.Join) in input order, not just the
// first one encountered.
func ForEach[T any](workers int, items []T, f func(i int, item T) error) error {
	n := len(items)
	if n == 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w <= 1 {
		for i := range items {
			errs[i] = f(i, items[i])
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i, items[i])
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Map runs f over items with at most Workers(workers) goroutines and
// returns the results in input order: out[i] is f(i, items[i]). If any
// call fails, Map returns nil and the joined errors (every failure, in
// input order).
func Map[T, U any](workers int, items []T, f func(i int, item T) (U, error)) ([]U, error) {
	out := make([]U, len(items))
	err := ForEach(workers, items, func(i int, item T) error {
		u, err := f(i, item)
		out[i] = u
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
