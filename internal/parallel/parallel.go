// Package parallel provides the bounded worker pool the sweep and
// replication layers fan out on. The previous ad-hoc pattern — one
// goroutine per sweep point — spawns unbounded goroutines whose peak
// memory is the whole sweep at once; the pool here caps concurrency at
// a fixed worker count, keeps results in input order (slot-per-index,
// so output is deterministic regardless of scheduling), and collects
// every error instead of dropping all but the first.
package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the number of OS threads Go will actually run
// concurrently. Callers pass 0 unless they have a measured reason not
// to — see docs/PERFORMANCE.md for sizing guidance.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs f(i, items[i]) for every item using at most
// Workers(workers) goroutines. Items are claimed through an atomic
// counter, so scheduling order is arbitrary but each index runs exactly
// once. ForEach returns after every item has finished; all errors are
// collected and joined (errors.Join) in input order, not just the
// first one encountered.
func ForEach[T any](workers int, items []T, f func(i int, item T) error) error {
	n := len(items)
	if n == 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w <= 1 {
		for i := range items {
			errs[i] = f(i, items[i])
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i, items[i])
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ForEachWorker runs f(w, i) for every i in [0, n) using at most
// Workers(workers) goroutines, passing each call the identity w of the
// executing worker (0 <= w < effective workers). The worker identity
// is what lets callers keep per-worker scratch — a simulator state, a
// solver arena — and reuse it across the items that worker claims,
// without locking and without allocating one scratch per item.
//
// Index claiming is atomic, so which worker runs which item is
// scheduling-dependent: f must slot any output by i, never by w, for
// deterministic results. Errors are collected per item and joined in
// input order, exactly like ForEach.
func ForEachWorker(workers, n int, f func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = f(0, i)
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(g, i)
			}
		}(g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Wavefront runs a tiled fill of a rows x cols lattice whose cells
// depend only on cells with strictly smaller coordinates in both-or-one
// dimension — i.e. cell (r, c) may read any (r', c') with r' <= r,
// c' <= c, (r', c') != (r, c). That covers the Eq. 10 / Eq. 12-20
// recursions of internal/core: the 1_i neighbor and every (a, a)
// diagonal displacement live at strictly smaller r+c.
//
// The lattice is partitioned into tile x tile blocks and the blocks are
// executed anti-diagonal by anti-diagonal: all dependencies of a block
// on diagonal d (block row + block column = d) live in blocks on
// diagonals < d, so the blocks of one diagonal are independent and run
// concurrently on at most min(Workers(workers), GOMAXPROCS) goroutines
// — worker counts beyond the host's parallelism are clamped, since the
// extra goroutines could never run concurrently — with a barrier
// between diagonals. fill is called with the half-open cell ranges
// [r0, r1) x [c0, c1) of one block and must process its cells in an
// order consistent with the intra-block dependencies (row-major works
// for the dependency shape above).
//
// The caller's goroutine participates as a worker, so workers == 1 (or
// a single block) degenerates to a plain sequential sweep in diagonal
// order with no goroutines spawned. Every block is executed exactly
// once regardless of worker count; with a fill whose per-cell
// computation does not depend on scheduling, results are bit-identical
// for any worker count and tile size.
func Wavefront(workers, rows, cols, tile int, fill func(r0, r1, c0, c1 int)) {
	if rows <= 0 || cols <= 0 {
		return
	}
	if tile <= 0 {
		tile = 1
	}
	tr := (rows + tile - 1) / tile
	tc := (cols + tile - 1) / tile
	w := Workers(workers)
	if p := runtime.GOMAXPROCS(0); w > p {
		// Helpers beyond GOMAXPROCS can never run concurrently — they
		// only add a scheduler wakeup per diagonal. The block schedule
		// (and, by the determinism contract, the result) is identical
		// either way, so clamp to the parallelism the host delivers.
		w = p
	}
	if m := min(tr, tc); w > m {
		w = m // a diagonal never has more than min(tr, tc) blocks
	}
	run := func(t1, t2 int) {
		r0 := t1 * tile
		c0 := t2 * tile
		fill(r0, min(r0+tile, rows), c0, min(c0+tile, cols))
	}
	if w <= 1 {
		for d := 0; d < tr+tc-1; d++ {
			for t1 := max(0, d-tc+1); t1 <= min(tr-1, d); t1++ {
				run(t1, d-t1)
			}
		}
		return
	}
	// Persistent helper pool: w-1 spawned workers plus the caller. Per
	// diagonal the coordinator publishes the block range, wakes every
	// helper (the channel send is the happens-before edge for lo/n and
	// for all cells written on earlier diagonals), claims blocks itself,
	// and collects one done token per helper — the barrier that makes
	// diagonal d+1's reads race-free.
	var (
		next  atomic.Int64
		lo, n int
		diag  int
		start = make(chan struct{})
		done  = make(chan struct{})
	)
	claim := func() {
		for {
			k := int(next.Add(1)) - 1
			if k >= n {
				return
			}
			t1 := lo + k
			run(t1, diag-t1)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < w-1; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range start {
				claim()
				done <- struct{}{}
			}
		}()
	}
	for d := 0; d < tr+tc-1; d++ {
		lo = max(0, d-tc+1)
		n = min(tr-1, d) - lo + 1
		diag = d
		next.Store(0)
		helpers := w - 1
		if n < w {
			helpers = n - 1 // never wake more helpers than blocks
		}
		for g := 0; g < helpers; g++ {
			start <- struct{}{}
		}
		claim()
		for g := 0; g < helpers; g++ {
			<-done
		}
	}
	close(start)
	wg.Wait()
}

// Map runs f over items with at most Workers(workers) goroutines and
// returns the results in input order: out[i] is f(i, items[i]). If any
// call fails, Map returns nil and the joined errors (every failure, in
// input order).
func Map[T, U any](workers int, items []T, f func(i int, item T) (U, error)) ([]U, error) {
	out := make([]U, len(items))
	err := ForEach(workers, items, func(i int, item T) error {
		u, err := f(i, item)
		out[i] = u
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
