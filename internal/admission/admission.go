// Package admission adds admission control to the crossbar — the
// operational lever the paper's revenue analysis motivates. Section 4
// shows that when w_r is below the shadow cost DeltaW_r(N), every
// accepted class-r connection destroys revenue; the classical remedy
// is trunk reservation: admit class r only while the switch occupancy
// would stay at or below a class limit T_r, reserving the remaining
// capacity for more valuable traffic.
//
// A reservation policy breaks the reversibility behind the paper's
// product form, so evaluation here is exact numerical solution of the
// policy-modified CTMC (internal/statespace), not a formula. The
// discrete-event simulator accepts the same policies
// (sim.Config.Admit) for cross-validation at scale.
package admission

import (
	"fmt"

	"xbar/internal/core"
	"xbar/internal/parallel"
	"xbar/internal/statespace"
)

// TrunkReservation builds the policy that admits a class-r request in
// state k only if the post-acceptance occupancy k.A + a_r stays within
// limits[r]. A limit of min(N1,N2) (or more) leaves the class
// uncontrolled.
func TrunkReservation(sw core.Switch, limits []int) (statespace.AdmissionPolicy, error) {
	if len(limits) != len(sw.Classes) {
		return nil, fmt.Errorf("admission: %d limits for %d classes", len(limits), len(sw.Classes))
	}
	for r, t := range limits {
		if t < 0 {
			return nil, fmt.Errorf("admission: class %d limit %d is negative", r, t)
		}
	}
	classes := sw.Classes
	return func(k []int, r int) bool {
		return sw.OccupancyOf(k)+classes[r].A <= limits[r]
	}, nil
}

// Evaluation holds the exact steady-state outcome of one policy.
type Evaluation struct {
	// Limits echoes the evaluated reservation limits.
	Limits []int
	// CallBlocking is the per-class loss probability seen by arrivals
	// (policy rejections plus port contention).
	CallBlocking []float64
	// Concurrency is E_r under the policy.
	Concurrency []float64
	// Revenue is W = sum w_r E_r.
	Revenue float64
}

// Evaluate solves the switch under a trunk-reservation policy exactly.
// maxStates guards the CTMC size (the chain is |Gamma(N)| states).
func Evaluate(sw core.Switch, weights []float64, limits []int, maxStates int) (*Evaluation, error) {
	if len(weights) != len(sw.Classes) {
		return nil, fmt.Errorf("admission: %d weights for %d classes", len(weights), len(sw.Classes))
	}
	policy, err := TrunkReservation(sw, limits)
	if err != nil {
		return nil, err
	}
	chain, err := statespace.NewChainWithPolicy(sw, maxStates, policy)
	if err != nil {
		return nil, err
	}
	pi, err := chain.Stationary()
	if err != nil {
		return nil, err
	}
	meas := chain.Measures(pi)
	ev := &Evaluation{
		Limits:       append([]int(nil), limits...),
		CallBlocking: chain.CallBlocking(pi),
		Concurrency:  meas.Concurrency,
	}
	for r, w := range weights {
		ev.Revenue += w * meas.Concurrency[r]
	}
	return ev, nil
}

// OptimizeReservation sweeps the reservation limit of one class from 0
// to min(N1,N2) with every other class uncontrolled, returning the
// revenue-maximizing evaluation and the whole sweep. This is the
// one-dimensional trunk-reservation design problem: how much of the
// switch should a low-value class be allowed to occupy?
func OptimizeReservation(sw core.Switch, weights []float64, class, maxStates int) (*Evaluation, []*Evaluation, error) {
	if class < 0 || class >= len(sw.Classes) {
		return nil, nil, fmt.Errorf("admission: class %d of %d", class, len(sw.Classes))
	}
	ts := make([]int, sw.MinN()+1)
	for t := range ts {
		ts[t] = t
	}
	// Each limit is an independent CTMC solve; run them on the bounded
	// pool. Results come back in limit order, so the argmax below is
	// deterministic (ties break toward the smaller limit).
	sweep, err := parallel.Map(0, ts, func(_, t int) (*Evaluation, error) {
		limits := make([]int, len(sw.Classes))
		for r := range limits {
			limits[r] = sw.MinN()
		}
		limits[class] = t
		return Evaluate(sw, weights, limits, maxStates)
	})
	if err != nil {
		return nil, nil, err
	}
	best := sweep[0]
	for _, ev := range sweep[1:] {
		if ev.Revenue > best.Revenue {
			best = ev
		}
	}
	return best, sweep, nil
}
