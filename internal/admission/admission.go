// Package admission adds admission control to the crossbar — the
// operational lever the paper's revenue analysis motivates. Section 4
// shows that when w_r is below the shadow cost DeltaW_r(N), every
// accepted class-r connection destroys revenue; the classical remedy
// is trunk reservation: admit class r only while the switch occupancy
// would stay at or below a class limit T_r, reserving the remaining
// capacity for more valuable traffic.
//
// A reservation policy breaks the reversibility behind the paper's
// product form, so evaluation here is exact numerical solution of the
// policy-modified CTMC (internal/statespace), not a formula. The
// discrete-event simulator accepts the same policies
// (sim.Config.Admit) for cross-validation at scale.
package admission

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"xbar/internal/core"
	"xbar/internal/parallel"
	"xbar/internal/statespace"
)

// TrunkReservation builds the policy that admits a class-r request in
// state k only if the post-acceptance occupancy k.A + a_r stays within
// limits[r]. A limit of min(N1,N2) (or more) leaves the class
// uncontrolled.
func TrunkReservation(sw core.Switch, limits []int) (statespace.AdmissionPolicy, error) {
	if len(limits) != len(sw.Classes) {
		return nil, fmt.Errorf("admission: %d limits for %d classes", len(limits), len(sw.Classes))
	}
	for r, t := range limits {
		if t < 0 {
			return nil, fmt.Errorf("admission: class %d limit %d is negative", r, t)
		}
	}
	classes := sw.Classes
	return func(k []int, r int) bool {
		return sw.OccupancyOf(k)+classes[r].A <= limits[r]
	}, nil
}

// Evaluation holds the exact steady-state outcome of one policy.
type Evaluation struct {
	// Limits echoes the evaluated reservation limits.
	Limits []int
	// CallBlocking is the per-class loss probability seen by arrivals
	// (policy rejections plus port contention).
	CallBlocking []float64
	// Concurrency is E_r under the policy.
	Concurrency []float64
	// Revenue is W = sum w_r E_r.
	Revenue float64
}

// Evaluate solves the switch under a trunk-reservation policy exactly.
// maxStates guards the CTMC size (the chain is |Gamma(N)| states).
func Evaluate(sw core.Switch, weights []float64, limits []int, maxStates int) (*Evaluation, error) {
	if len(weights) != len(sw.Classes) {
		return nil, fmt.Errorf("admission: %d weights for %d classes", len(weights), len(sw.Classes))
	}
	policy, err := TrunkReservation(sw, limits)
	if err != nil {
		return nil, err
	}
	chain, err := statespace.NewChainWithPolicy(sw, maxStates, policy)
	if err != nil {
		return nil, err
	}
	pi, err := chain.Stationary()
	if err != nil {
		return nil, err
	}
	meas := chain.Measures(pi)
	ev := &Evaluation{
		Limits:       append([]int(nil), limits...),
		CallBlocking: chain.CallBlocking(pi),
		Concurrency:  meas.Concurrency,
	}
	for r, w := range weights {
		ev.Revenue += w * meas.Concurrency[r]
	}
	return ev, nil
}

// optimizer memoizes exact policy evaluations across line searches.
// Distinct limit vectors that induce the same policy share one CTMC
// solve: any limit at or above min(N1,N2) is uncontrolled (the
// post-acceptance occupancy can never exceed it), so limits are
// canonicalized by capping there. The memo is what makes the
// coordinate-descent search affordable — every pass after the first
// revisits mostly-seen vectors.
type optimizer struct {
	sw        core.Switch
	weights   []float64
	maxStates int

	mu     sync.Mutex
	memo   map[string]*Evaluation
	hits   int
	solves int
}

func newOptimizer(sw core.Switch, weights []float64, maxStates int) (*optimizer, error) {
	if len(weights) != len(sw.Classes) {
		return nil, fmt.Errorf("admission: %d weights for %d classes", len(weights), len(sw.Classes))
	}
	return &optimizer{sw: sw, weights: weights, maxStates: maxStates, memo: make(map[string]*Evaluation)}, nil
}

// key canonicalizes a limit vector: limits at or above MinN all mean
// "uncontrolled" and collapse onto one entry.
func (o *optimizer) key(limits []int) string {
	capN := o.sw.MinN()
	var b strings.Builder
	for _, t := range limits {
		b.WriteString(strconv.Itoa(min(t, capN)))
		b.WriteByte(',')
	}
	return b.String()
}

// evaluate solves one limit vector, serving repeats from the memo.
// Callers must not mutate the returned Evaluation (the line searches
// and descent below only read).
func (o *optimizer) evaluate(limits []int) (*Evaluation, error) {
	k := o.key(limits)
	o.mu.Lock()
	if ev, ok := o.memo[k]; ok {
		o.hits++
		o.mu.Unlock()
		return ev, nil
	}
	o.mu.Unlock()
	ev, err := Evaluate(o.sw, o.weights, limits, o.maxStates)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.memo[k] = ev
	o.solves++
	o.mu.Unlock()
	return ev, nil
}

// lineSearch sweeps one class's limit from 0 to min(N1,N2) holding the
// other limits at base, returning the revenue-maximizing evaluation
// and the whole sweep. Each limit is an independent CTMC solve; they
// run on the bounded pool, and results come back in limit order, so
// the argmax is deterministic (ties break toward the smaller limit).
func (o *optimizer) lineSearch(base []int, class int) (*Evaluation, []*Evaluation, error) {
	ts := make([]int, o.sw.MinN()+1)
	for t := range ts {
		ts[t] = t
	}
	sweep, err := parallel.Map(0, ts, func(_, t int) (*Evaluation, error) {
		limits := append([]int(nil), base...)
		limits[class] = t
		return o.evaluate(limits)
	})
	if err != nil {
		return nil, nil, err
	}
	best := sweep[0]
	for _, ev := range sweep[1:] {
		if ev.Revenue > best.Revenue {
			best = ev
		}
	}
	return best, sweep, nil
}

// OptimizeReservation sweeps the reservation limit of one class from 0
// to min(N1,N2) with every other class uncontrolled, returning the
// revenue-maximizing evaluation and the whole sweep. This is the
// one-dimensional trunk-reservation design problem: how much of the
// switch should a low-value class be allowed to occupy?
func OptimizeReservation(sw core.Switch, weights []float64, class, maxStates int) (*Evaluation, []*Evaluation, error) {
	if class < 0 || class >= len(sw.Classes) {
		return nil, nil, fmt.Errorf("admission: class %d of %d", class, len(sw.Classes))
	}
	o, err := newOptimizer(sw, weights, maxStates)
	if err != nil {
		return nil, nil, err
	}
	base := make([]int, len(sw.Classes))
	for r := range base {
		base[r] = sw.MinN()
	}
	return o.lineSearch(base, class)
}

// OptStats reports the work a multi-class optimization did.
type OptStats struct {
	// Passes is the number of full coordinate-descent passes run.
	Passes int
	// Solves is the number of distinct CTMC solves paid.
	Solves int
	// MemoHits is the number of evaluations served from the memo.
	MemoHits int
}

// OptimizeReservations runs coordinate descent over ALL classes' trunk
// reservation limits: starting from every class uncontrolled, each
// pass line-searches one class at a time (holding the others at their
// current limits) and adopts the argmax; descent stops when a full
// pass changes nothing or maxPasses is exhausted. Revenue is
// monotonically non-decreasing across adoptions, and the memoized
// evaluator means repeated visits to a limit vector — the bulk of
// every pass after the first — cost a map lookup, not a CTMC solve.
// The search is a heuristic for the (combinatorial) joint design
// problem; it returns the best policy found, its limit vector, and the
// work accounting.
func OptimizeReservations(sw core.Switch, weights []float64, maxStates, maxPasses int) (*Evaluation, OptStats, error) {
	if maxPasses < 1 {
		return nil, OptStats{}, fmt.Errorf("admission: maxPasses %d", maxPasses)
	}
	o, err := newOptimizer(sw, weights, maxStates)
	if err != nil {
		return nil, OptStats{}, err
	}
	current := make([]int, len(sw.Classes))
	for r := range current {
		current[r] = sw.MinN()
	}
	best, err := o.evaluate(current)
	if err != nil {
		return nil, OptStats{}, err
	}
	var stats OptStats
	for pass := 1; pass <= maxPasses; pass++ {
		stats.Passes = pass
		changed := false
		for class := range sw.Classes {
			ev, _, err := o.lineSearch(current, class)
			if err != nil {
				return nil, OptStats{}, err
			}
			if ev.Revenue > best.Revenue {
				best = ev
				changed = true
				copy(current, ev.Limits)
			}
		}
		if !changed {
			break
		}
	}
	o.mu.Lock()
	stats.Solves, stats.MemoHits = o.solves, o.hits
	o.mu.Unlock()
	return best, stats, nil
}
