package admission

import (
	"math"
	"testing"

	"xbar/internal/core"
	"xbar/internal/sim"
	"xbar/internal/statespace"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*s || d <= tol*1e-3
}

// goldLead is a congested two-class switch where class "lead" is
// nearly worthless: the setting where trunk reservation should pay.
func goldLead() (core.Switch, []float64) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{Name: "gold", A: 1, Alpha: 0.05, Mu: 1},
		{Name: "lead", A: 1, Alpha: 0.08, Mu: 1},
	}}
	return sw, []float64{1.0, 0.01}
}

// TestUncontrolledMatchesProductForm: limits at capacity reproduce the
// paper's uncontrolled model exactly.
func TestUncontrolledMatchesProductForm(t *testing.T) {
	sw, weights := goldLead()
	ev, err := Evaluate(sw, weights, []int{4, 4}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if !almostEqual(ev.Concurrency[r], want.Concurrency[r], 1e-8) {
			t.Errorf("E[%d] = %v, product form %v", r, ev.Concurrency[r], want.Concurrency[r])
		}
		// Poisson classes: call blocking equals time blocking.
		if !almostEqual(ev.CallBlocking[r], want.Blocking[r], 1e-8) {
			t.Errorf("call blocking[%d] = %v, product form %v", r, ev.CallBlocking[r], want.Blocking[r])
		}
	}
	if !almostEqual(ev.Revenue, want.Revenue(weights), 1e-8) {
		t.Errorf("revenue %v, product form %v", ev.Revenue, want.Revenue(weights))
	}
}

// TestZeroLimitSheds: limit 0 removes the class entirely and frees the
// switch for the other class.
func TestZeroLimitSheds(t *testing.T) {
	sw, weights := goldLead()
	ev, err := Evaluate(sw, weights, []int{4, 0}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CallBlocking[1] != 1 || ev.Concurrency[1] != 0 {
		t.Errorf("shed class: blocking %v concurrency %v", ev.CallBlocking[1], ev.Concurrency[1])
	}
	// Gold alone on the switch matches the single-class product form.
	solo, err := core.Solve(core.Switch{N1: 4, N2: 4, Classes: sw.Classes[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ev.Concurrency[0], solo.Concurrency[0], 1e-8) {
		t.Errorf("gold E %v, solo product form %v", ev.Concurrency[0], solo.Concurrency[0])
	}
}

// TestReservationMonotonicity: tightening the lead limit can only
// reduce lead concurrency and increase gold concurrency.
func TestReservationMonotonicity(t *testing.T) {
	sw, weights := goldLead()
	prevLead, prevGold := math.Inf(1), -1.0
	for tLim := 4; tLim >= 0; tLim-- {
		ev, err := Evaluate(sw, weights, []int{4, tLim}, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Concurrency[1] > prevLead+1e-12 {
			t.Errorf("limit %d: lead concurrency %v rose above %v", tLim, ev.Concurrency[1], prevLead)
		}
		if ev.Concurrency[0] < prevGold-1e-12 {
			t.Errorf("limit %d: gold concurrency %v fell below %v", tLim, ev.Concurrency[0], prevGold)
		}
		prevLead, prevGold = ev.Concurrency[1], ev.Concurrency[0]
	}
}

// TestFlowBalance: in steady state, each class's acceptance rate
// equals its completion rate mu_r E_r — a policy-independent
// conservation law.
func TestFlowBalance(t *testing.T) {
	sw, _ := goldLead()
	policy, err := TrunkReservation(sw, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := statespace.NewChainWithPolicy(sw, 10000, policy)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	meas := chain.Measures(pi)
	for r, cl := range sw.Classes {
		acceptRate := 0.0
		for i, k := range chain.States {
			acceptRate += pi[i] * chain.Rate(k, r, +1)
		}
		if want := cl.Mu * meas.Concurrency[r]; !almostEqual(acceptRate, want, 1e-8) {
			t.Errorf("class %d: accept rate %v != mu E = %v", r, acceptRate, want)
		}
	}
}

// TestReservationRaisesRevenue: in the congested gold/lead setting the
// optimal lead limit is interior (0 < T < capacity) and beats both no
// control and full shedding.
func TestReservationRaisesRevenue(t *testing.T) {
	sw, weights := goldLead()
	best, sweep, err := OptimizeReservation(sw, weights, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	uncontrolled := sweep[4]
	if best.Revenue <= uncontrolled.Revenue {
		t.Errorf("best revenue %v does not beat uncontrolled %v", best.Revenue, uncontrolled.Revenue)
	}
	if best.Limits[1] == 4 {
		t.Errorf("optimal limit is no-control; expected an interior or zero limit")
	}
}

// TestSimulatorAgreesWithExactChain: the fabric simulator under the
// same policy reproduces the exact CTMC's call blocking and
// concurrency.
func TestSimulatorAgreesWithExactChain(t *testing.T) {
	sw, weights := goldLead()
	limits := []int{4, 2}
	ev, err := Evaluate(sw, weights, limits, 10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Switch: sw, Seed: 11, Warmup: 3000, Horizon: 60000,
		Admit: func(k []int, class int) bool {
			occ := k[0] + k[1]
			return occ+sw.Classes[class].A <= limits[class]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		c := res.Classes[r]
		if math.Abs(c.Concurrency.Mean-ev.Concurrency[r]) > 2*c.Concurrency.HalfWidth {
			t.Errorf("class %d: simulated E %v inconsistent with exact %v", r, c.Concurrency, ev.Concurrency[r])
		}
		if math.Abs(c.CallBlocking.Mean-ev.CallBlocking[r]) > 2*c.CallBlocking.HalfWidth {
			t.Errorf("class %d: simulated call blocking %v inconsistent with exact %v",
				r, c.CallBlocking, ev.CallBlocking[r])
		}
	}
}

func TestValidation(t *testing.T) {
	sw, weights := goldLead()
	if _, err := Evaluate(sw, weights[:1], []int{4, 4}, 10000); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := Evaluate(sw, weights, []int{4}, 10000); err == nil {
		t.Error("mismatched limits accepted")
	}
	if _, err := Evaluate(sw, weights, []int{4, -1}, 10000); err == nil {
		t.Error("negative limit accepted")
	}
	if _, _, err := OptimizeReservation(sw, weights, 5, 10000); err == nil {
		t.Error("out-of-range class accepted")
	}
}

// TestOptimizeReservations: coordinate descent over both classes finds
// a policy at least as good as the best single-class line search, its
// revenue matches a direct re-evaluation of the returned limits, and
// the memo absorbs the repeated vectors of later passes.
func TestOptimizeReservations(t *testing.T) {
	sw, weights := goldLead()
	best, stats, err := OptimizeReservations(sw, weights, 10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	single, _, err := OptimizeReservation(sw, weights, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if best.Revenue < single.Revenue {
		t.Errorf("descent revenue %v below single-class optimum %v", best.Revenue, single.Revenue)
	}
	check, err := Evaluate(sw, weights, best.Limits, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(best.Revenue, check.Revenue, 1e-12) {
		t.Errorf("returned revenue %v does not match re-evaluation %v", best.Revenue, check.Revenue)
	}
	if stats.Passes < 2 {
		t.Errorf("descent converged in %d passes; the no-change pass should still be counted", stats.Passes)
	}
	if stats.MemoHits == 0 {
		t.Error("no memo hits across passes; the memoized evaluator is not being shared")
	}
	// Every evaluation is either a solve or a hit, and the stable pass
	// re-visits only seen vectors.
	evals := 1 + stats.Passes*len(sw.Classes)*(sw.MinN()+1)
	if stats.Solves+stats.MemoHits != evals {
		t.Errorf("solves %d + hits %d != evaluations %d", stats.Solves, stats.MemoHits, evals)
	}
}

// TestOptimizerCanonicalLimits: limit vectors above capacity collapse
// onto the uncontrolled policy's memo entry.
func TestOptimizerCanonicalLimits(t *testing.T) {
	sw, weights := goldLead()
	o, err := newOptimizer(sw, weights, 10000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := o.evaluate([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.evaluate([]int{9, 17})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("uncontrolled vectors did not share one evaluation")
	}
	if o.solves != 1 || o.hits != 1 {
		t.Errorf("solves %d, hits %d; want 1 and 1", o.solves, o.hits)
	}
	if _, _, err := OptimizeReservations(sw, weights, 10000, 0); err == nil {
		t.Error("maxPasses 0 accepted")
	}
}
