// Package approx provides a constant-space, O(iterations x R)
// engineering approximation of the crossbar measures: the
// endpoint-independence fixed point. Where the exact algorithms cost
// O(N1 N2 R) lattice work, this treats the input ports and output
// ports as independently utilized pools:
//
//	U1 = sum_r a_r E_r / N1,     U2 = sum_r a_r E_r / N2,
//	B_r = 1 - (1-U1)^a_r (1-U2)^a_r,
//	E_r = T_r (1 - B_r) / mu_r,
//
// with T_r the class's total offered call rate, iterated to a fixed
// point. It is exact as N grows with port utilization held fixed
// (occupancy correlations vanish) and lands within a few percent at
// the paper's operating points, making it the right tool for
// back-of-envelope sizing of very large optical fabrics. Poisson
// classes only: state-dependent sources need the real algorithms.
//
// Within the large-N solver hierarchy this fixed point is the
// zeroth-order tier: it is exactly the N -> infinity limit of the
// saddle-point expansion in internal/asymptotic, which adds the
// Gaussian and Edgeworth correction orders, handles BPP traffic, and
// reports a computable error bound per class. New code sizing large
// switches should go through core.SolveAuto (or core.SolveAsymptotic
// directly); this package remains for the scalar limit law
// (AsymptoticBlocking) and for callers that want the O(R) fixed point
// without bound bookkeeping.
package approx

import (
	"errors"
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/core"
)

// ErrUnsupportedTraffic reports a traffic class outside the fixed
// point's domain (it handles Poisson classes only). Solve wraps it
// with the offending class index and name, so callers branch with
// errors.Is(err, approx.ErrUnsupportedTraffic) rather than string
// matching.
var ErrUnsupportedTraffic = errors.New("approx: traffic class is not Poisson")

// Result holds the approximate measures.
type Result struct {
	// Blocking approximates the specific-route time congestion per
	// class.
	Blocking []float64
	// Concurrency approximates E_r.
	Concurrency []float64
	// InputUtilization and OutputUtilization are the fixed-point port
	// busy fractions.
	InputUtilization, OutputUtilization float64
	// Iterations taken to converge.
	Iterations int
}

// Solve iterates the endpoint fixed point for a switch whose classes
// are all Poisson. tol bounds the largest per-class E change.
func Solve(sw core.Switch, tol float64, maxIter int) (*Result, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	for i, c := range sw.Classes {
		if !c.IsPoisson() {
			return nil, fmt.Errorf("class %d (%s): %w; use core.Solve or core.SolveAsymptotic", i, c.Name, ErrUnsupportedTraffic)
		}
	}
	if tol <= 0 {
		return nil, fmt.Errorf("approx: tolerance %v", tol)
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("approx: maxIter %d", maxIter)
	}
	// Total offered call rate per class over all ordered routes.
	offered := make([]float64, len(sw.Classes))
	maxCarried := 0.0
	for r, c := range sw.Classes {
		offered[r] = c.Alpha * combin.Perm(sw.N1, c.A) * combin.Perm(sw.N2, c.A)
		maxCarried += float64(c.A) * offered[r] / c.Mu
	}
	// The aggregate busy level determines everything, and the map
	// busy -> sum a_r T_r (1 - B_r(busy)) / mu_r is strictly
	// decreasing, so its unique fixed point is found by bisection —
	// immune to the 2-cycles naive successive substitution falls into
	// under overload.
	carriedAt := func(busy float64) (total float64, b []float64, e []float64) {
		u1 := clamp01(busy / float64(sw.N1))
		u2 := clamp01(busy / float64(sw.N2))
		b = make([]float64, len(sw.Classes))
		e = make([]float64, len(sw.Classes))
		for r, c := range sw.Classes {
			b[r] = 1 - math.Pow(1-u1, float64(c.A))*math.Pow(1-u2, float64(c.A))
			e[r] = offered[r] * (1 - b[r]) / c.Mu
			total += float64(c.A) * e[r]
		}
		return total, b, e
	}
	lo, hi := 0.0, math.Max(float64(sw.MinN()), maxCarried)
	var iter int
	for iter = 1; iter <= maxIter; iter++ {
		mid := (lo + hi) / 2
		total, _, _ := carriedAt(mid)
		if total > mid {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < tol {
			break
		}
	}
	if iter > maxIter {
		return nil, fmt.Errorf("approx: no convergence in %d iterations", maxIter)
	}
	busy := (lo + hi) / 2
	_, blocking, e := carriedAt(busy)
	return &Result{
		Blocking:          blocking,
		Concurrency:       e,
		InputUtilization:  clamp01(busy / float64(sw.N1)),
		OutputUtilization: clamp01(busy / float64(sw.N2)),
		Iterations:        iter,
	}, nil
}

// AsymptoticBlocking returns the N -> infinity limit of the blocking
// probability of a square crossbar carrying single-rate Poisson
// traffic at fixed aggregate intensity alphaTilde per input set (the
// paper's Figure 1-3 normalization, where the curves visibly flatten).
// In the limit, port occupancies decouple and the per-port utilization
// u solves the scalar fixed point
//
//	u = alphaTilde (1-u)^2,   B = 1 - (1-u)^2,
//
// found by bisection (the right side is decreasing in u).
func AsymptoticBlocking(alphaTilde float64) (float64, error) {
	if alphaTilde < 0 {
		return 0, fmt.Errorf("approx: alphaTilde %v", alphaTilde)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if alphaTilde*(1-mid)*(1-mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	u := (lo + hi) / 2
	return 1 - (1-u)*(1-u), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
