package approx

import (
	"errors"
	"math"
	"strings"
	"testing"

	"xbar/internal/core"
)

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestAccuracyAtPaperOperatingPoint: within a few percent of the exact
// algorithm on the Figure 1 setup, improving as N grows.
func TestAccuracyAtPaperOperatingPoint(t *testing.T) {
	prevErr := math.Inf(1)
	for _, n := range []int{16, 64, 256} {
		sw := core.NewSwitch(n, n,
			core.AggregateClass{Name: "p", A: 1, AlphaTilde: 0.0024, Mu: 1})
		exact, err := core.Solve(sw)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(sw, 1e-12, 10000)
		if err != nil {
			t.Fatal(err)
		}
		e := relErr(got.Blocking[0], exact.Blocking[0])
		if e > 0.05 {
			t.Errorf("N=%d: approx blocking %v vs exact %v (%.2f%% off)",
				n, got.Blocking[0], exact.Blocking[0], 100*e)
		}
		if e > prevErr*1.5 {
			t.Errorf("N=%d: error %.4f not shrinking from %.4f", n, e, prevErr)
		}
		prevErr = e
		if relErr(got.Concurrency[0], exact.Concurrency[0]) > 0.05 {
			t.Errorf("N=%d: approx E %v vs exact %v", n, got.Concurrency[0], exact.Concurrency[0])
		}
	}
}

// TestMultiRateAccuracy on a moderately loaded two-class mix.
func TestMultiRateAccuracy(t *testing.T) {
	sw := core.Switch{N1: 32, N2: 32, Classes: []core.Class{
		{Name: "one", A: 1, Alpha: 0.005, Mu: 1},
		{Name: "two", A: 2, Alpha: 2e-6, Mu: 1},
	}}
	exact, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(sw, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sw.Classes {
		if relErr(got.Blocking[r], exact.Blocking[r]) > 0.10 {
			t.Errorf("class %d: approx %v vs exact %v", r, got.Blocking[r], exact.Blocking[r])
		}
	}
	// Wider class blocks more in both treatments.
	if !(got.Blocking[1] > got.Blocking[0]) {
		t.Error("a=2 should block more than a=1")
	}
}

// TestNonSquare: utilizations differ across sides.
func TestNonSquare(t *testing.T) {
	sw := core.Switch{N1: 16, N2: 64, Classes: []core.Class{
		{A: 1, Alpha: 0.002, Mu: 1},
	}}
	got, err := Solve(sw, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !(got.InputUtilization > got.OutputUtilization) {
		t.Errorf("narrow side should be busier: in %v out %v",
			got.InputUtilization, got.OutputUtilization)
	}
	exact, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got.Blocking[0], exact.Blocking[0]) > 0.08 {
		t.Errorf("approx %v vs exact %v", got.Blocking[0], exact.Blocking[0])
	}
}

// TestHighLoadStability: the damped iteration converges even when the
// switch saturates.
func TestHighLoadStability(t *testing.T) {
	sw := core.Switch{N1: 8, N2: 8, Classes: []core.Class{
		{A: 1, Alpha: 0.5, Mu: 1}, // heavy overload
	}}
	got, err := Solve(sw, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Blocking[0] <= 0.3 || got.Blocking[0] >= 1 {
		t.Errorf("overload blocking %v implausible", got.Blocking[0])
	}
}

func TestRejectsBursty(t *testing.T) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{
		{A: 1, Alpha: 0.1, Mu: 1, Name: "ok"},
		{A: 1, Alpha: 0.1, Beta: 0.05, Mu: 1, Name: "peaked"},
	}}
	_, err := Solve(sw, 1e-10, 1000)
	if err == nil {
		t.Fatal("bursty class accepted")
	}
	if !errors.Is(err, ErrUnsupportedTraffic) {
		t.Errorf("error %q does not wrap ErrUnsupportedTraffic", err)
	}
	for _, want := range []string{"class 1", "peaked"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the offending class (%q)", err, want)
		}
	}
}

func TestArgValidation(t *testing.T) {
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	if _, err := Solve(sw, 0, 100); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := Solve(sw, 1e-10, 0); err == nil {
		t.Error("zero maxIter accepted")
	}
	if _, err := Solve(core.Switch{}, 1e-10, 100); err == nil {
		t.Error("invalid switch accepted")
	}
}

// TestAsymptoticBlocking: the closed-form N -> infinity limit is
// approached monotonically from below by the exact model at the
// paper's Figure 1 operating point, and the finite-N endpoint fixed
// point converges to it.
func TestAsymptoticBlocking(t *testing.T) {
	const alphaTilde = 0.0024
	limit, err := AsymptoticBlocking(alphaTilde)
	if err != nil {
		t.Fatal(err)
	}
	if limit <= 0 || limit >= 0.01 {
		t.Fatalf("asymptote %v implausible for alpha~ = %v", limit, alphaTilde)
	}
	prev := 0.0
	for _, n := range []int{32, 128, 512} {
		sw := core.NewSwitch(n, n,
			core.AggregateClass{A: 1, AlphaTilde: alphaTilde, Mu: 1})
		res, err := core.SolveMVA(sw)
		if err != nil {
			t.Fatal(err)
		}
		b := res.Blocking[0]
		if b >= limit {
			t.Errorf("N=%d: exact blocking %v should stay below the asymptote %v", n, b, limit)
		}
		if b <= prev {
			t.Errorf("N=%d: blocking %v not increasing toward the asymptote", n, b)
		}
		prev = b
	}
	// Within 1% by N = 512.
	if relErr(prev, limit) > 0.01 {
		t.Errorf("N=512 blocking %v still %.2f%% from asymptote %v", prev, 100*relErr(prev, limit), limit)
	}
	// The finite-N fixed point's own large-N value equals the
	// asymptote by construction.
	sw := core.NewSwitch(4096, 4096,
		core.AggregateClass{A: 1, AlphaTilde: alphaTilde, Mu: 1})
	got, err := Solve(sw, 1e-14, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got.Blocking[0], limit) > 1e-6 {
		t.Errorf("fixed point at N=4096 gives %v, asymptote %v", got.Blocking[0], limit)
	}
	if _, err := AsymptoticBlocking(-1); err == nil {
		t.Error("negative load accepted")
	}
}
