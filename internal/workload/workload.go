// Package workload encodes the exact parameter sets of the paper's
// numerical section (Figures 1-4, Tables 1-2) and runs the analytical
// model over them, producing the series the figures plot and the rows
// the tables print. cmd/experiments and the benchmark harness both
// drive these entry points.
package workload

import (
	"fmt"

	"xbar/internal/combin"
	"xbar/internal/core"
	"xbar/internal/grid"
	"xbar/internal/parallel"
	"xbar/internal/revenue"
)

// Workers bounds the worker pool the sweeps fan out on; zero selects
// runtime.GOMAXPROCS(0). cmd/experiments exposes it as -workers.
var Workers int

// Point is one (N, value) sample of a figure series.
type Point struct {
	N     int
	Value float64
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// FigureNs returns the system sizes the figures sweep: 1..128 in
// powers of two (the figures' axes are dense, but the powers of two
// capture the published shape and keep regeneration fast).
func FigureNs() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128} }

// Table2Ns returns the sizes of Table 2.
func Table2Ns() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128, 256} }

// seriesSpec is one curve of a figure: a label and the model builder.
type seriesSpec struct {
	label string
	build func(n int) core.Switch
}

// figureGrid evaluates every series of a figure as ONE batch on the
// grid engine: the engine owns the worker budget for the whole figure
// and deduplicates any points that coincide across series (note the
// tilde loads normalize by C(n, a), so different sizes of one curve
// are genuinely different per-route models — the sharing within a
// figure comes from repeated points, not from the size axis; see
// docs/PERFORMANCE.md). The first class's blocking is the plotted
// value, as in the paper's figures.
func figureGrid(ns []int, specs []seriesSpec) ([]Series, error) {
	points := make([]core.Switch, 0, len(specs)*len(ns))
	for _, sp := range specs {
		for _, n := range ns {
			points = append(points, sp.build(n))
		}
	}
	eng := grid.New(grid.Options{Workers: Workers})
	results, err := eng.Solve(points)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	out := make([]Series, len(specs))
	for si, sp := range specs {
		s := Series{Label: sp.label, Points: make([]Point, len(ns))}
		for j, n := range ns {
			s.Points[j] = Point{N: n, Value: results[si*len(ns)+j].Blocking[0]}
		}
		out[si] = s
	}
	return out, nil
}

// Figure1 reproduces the smooth-traffic figure: one Bernoulli class
// (R1 = 0, R2 = 1), a = 1, alpha~ = .0024, mu = 1, beta~ from 0 down
// to -4e-6; the beta~ = 0 (Poisson) curve is the upper bound.
func Figure1(ns []int) ([]Series, error) {
	var specs []seriesSpec
	for _, bt := range []float64{0, -1e-6, -2e-6, -4e-6} {
		bt := bt
		specs = append(specs, seriesSpec{
			label: fmt.Sprintf("beta~=%g", bt),
			build: func(n int) core.Switch {
				return core.NewSwitch(n, n, core.AggregateClass{
					Name: "smooth", A: 1, AlphaTilde: 0.0024, BetaTilde: bt, Mu: 1,
				})
			},
		})
	}
	return figureGrid(ns, specs)
}

// Figure2 reproduces the peaky-traffic figure: one Pascal class,
// a = 1, alpha~ = .0024, beta~ rising from 0. The paper does not print
// its curve betas; these are chosen to show the reported "dramatic
// impact" ordering.
func Figure2(ns []int) ([]Series, error) {
	var specs []seriesSpec
	for _, bt := range []float64{0, 0.0012, 0.0024, 0.0048} {
		bt := bt
		specs = append(specs, seriesSpec{
			label: fmt.Sprintf("beta~=%g", bt),
			build: func(n int) core.Switch {
				return core.NewSwitch(n, n, core.AggregateClass{
					Name: "peaky", A: 1, AlphaTilde: 0.0024, BetaTilde: bt, Mu: 1,
				})
			},
		})
	}
	return figureGrid(ns, specs)
}

// Figure3 compares one bursty class alone (R1 = 0, R2 = 1) against a
// Poisson class plus the bursty class (R1 = 1, R2 = 1) at the same
// total alpha~: the Poisson class shifts the operating point while the
// beta~ sensitivity stays proportionate.
func Figure3(ns []int) ([]Series, error) {
	var specs []seriesSpec
	for _, bt := range []float64{0.0012, 0.0024} {
		bt := bt
		specs = append(specs,
			seriesSpec{
				label: fmt.Sprintf("R2 only, beta~=%g", bt),
				build: func(n int) core.Switch {
					return core.NewSwitch(n, n, core.AggregateClass{
						Name: "peaky", A: 1, AlphaTilde: 0.0024, BetaTilde: bt, Mu: 1,
					})
				},
			},
			seriesSpec{
				label: fmt.Sprintf("R1+R2, beta~=%g", bt),
				build: func(n int) core.Switch {
					return core.NewSwitch(n, n,
						core.AggregateClass{Name: "poisson", A: 1, AlphaTilde: 0.0012, Mu: 1},
						core.AggregateClass{Name: "peaky", A: 1, AlphaTilde: 0.0012, BetaTilde: bt, Mu: 1},
					)
				},
			},
		)
	}
	return figureGrid(ns, specs)
}

// Table1Row is one row of Table 1: the per-input-set loads that keep
// the total load constant at tau for bandwidths a=1 and a=2.
type Table1Row struct {
	N          int
	Rho1, Rho2 float64
}

// Table1Tau is the constant total load of Figure 4 / Table 1.
const Table1Tau = 0.0048

// Table1 generates the Table 1 rows. The paper's prose states
// rho~_r = tau / C(N1, a_r), but the printed table follows
// rho~_r = tau * a_r / (2 C(N1, a_r)) — verified against all ten
// printed values — so that is the rule implemented here (see
// EXPERIMENTS.md).
func Table1(ns []int) []Table1Row {
	rows := make([]Table1Row, 0, len(ns))
	for _, n := range ns {
		rows = append(rows, Table1Row{
			N:    n,
			Rho1: Table1Tau * 1 / (2 * combin.Binom(n, 1)),
			Rho2: Table1Tau * 2 / (2 * combin.Binom(n, 2)),
		})
	}
	return rows
}

// Figure4Ns returns the sizes Table 1 lists.
func Figure4Ns() []int { return []int{4, 8, 16, 32, 64} }

// Figure4 compares two Poisson traffic types at constant total load:
// a=1 versus a=2 (each evaluated separately, as in the paper), showing
// the extra contention of multi-rate requests.
func Figure4(ns []int) ([]Series, error) {
	rowOf := make(map[int]Table1Row, len(ns))
	for _, row := range Table1(ns) {
		rowOf[row.N] = row
	}
	return figureGrid(ns, []seriesSpec{
		{label: "a=1", build: func(n int) core.Switch {
			return core.NewSwitch(n, n, core.AggregateClass{
				Name: "rho1", A: 1, AlphaTilde: rowOf[n].Rho1, Mu: 1,
			})
		}},
		{label: "a=2", build: func(n int) core.Switch {
			return core.NewSwitch(n, n, core.AggregateClass{
				Name: "rho2", A: 2, AlphaTilde: rowOf[n].Rho2, Mu: 1,
			})
		}},
	})
}

// Table2Params is one of the paper's three Table 2 parameter sets.
type Table2Params struct {
	Set        int
	Rho1, Rho2 float64 // aggregate (tilde) loads
	Beta2      float64 // aggregate (tilde) slope of class 2
	W1, W2     float64 // revenue weights
}

// Table2Sets returns the three parameter sets of Table 2.
func Table2Sets() []Table2Params {
	return []Table2Params{
		{Set: 1, Rho1: 0.0012, Rho2: 0.0012, Beta2: 0.0012, W1: 1.0, W2: 0.0001},
		{Set: 2, Rho1: 0.0012, Rho2: 0.0012, Beta2: 0.0036, W1: 1.0, W2: 0.0001},
		{Set: 3, Rho1: 0.0012, Rho2: 0.0036, Beta2: 0.0012, W1: 1.0, W2: 0.0001},
	}
}

// Table2Row is one computed row of Table 2.
type Table2Row struct {
	Set       int
	N         int
	GradRho1  float64 // dW/d rho_1 (closed form)
	GradBeta2 float64 // dW/d (beta_2/mu_2) (central difference)
	Blocking  float64 // blocking probability (the paper's B_r column)
	W         float64 // average revenue
}

// Table2Switch builds the switch for a Table 2 parameter set at size n.
func Table2Switch(p Table2Params, n int) core.Switch {
	return core.NewSwitch(n, n,
		core.AggregateClass{Name: "poisson", A: 1, AlphaTilde: p.Rho1, Mu: 1},
		core.AggregateClass{Name: "bursty", A: 1, AlphaTilde: p.Rho2, BetaTilde: p.Beta2, Mu: 1},
	)
}

// Table2 computes the Table 2 rows for one parameter set over the
// given sizes on the bounded pool. The GradRho1, Blocking, and W
// columns of one row are all reads off a single retained lattice
// (revenue.Analysis runs on core.SweepSolver); only the bursty
// central-difference column re-solves, through the recycled scratch
// solver.
func Table2(p Table2Params, ns []int) ([]Table2Row, error) {
	weights := []float64{p.W1, p.W2}
	return parallel.Map(Workers, ns, func(_, n int) (Table2Row, error) {
		a, err := revenue.New(Table2Switch(p, n), weights)
		if err != nil {
			return Table2Row{}, err
		}
		row := Table2Row{
			Set:      p.Set,
			N:        n,
			GradRho1: a.GradientRhoClosed(0),
			Blocking: a.Result().Blocking[0],
			W:        a.W(),
		}
		if n >= 2 {
			row.GradBeta2 = a.GradientBetaMu(1, 1e-4)
		}
		return row, nil
	})
}

// DenseFigureNs returns every size 1..128, matching the figures' dense
// x axes (the powers-of-two sweep is the quick view; this is the
// publication-fidelity one).
func DenseFigureNs() []int {
	ns := make([]int, 128)
	for i := range ns {
		ns[i] = i + 1
	}
	return ns
}
