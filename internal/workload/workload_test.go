package workload

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*s
}

// TestTable1MatchesPaper pins every printed Table 1 value.
func TestTable1MatchesPaper(t *testing.T) {
	want := []Table1Row{
		{N: 4, Rho1: 0.000600, Rho2: 0.000800},
		{N: 8, Rho1: 0.000300, Rho2: 0.000171},
		{N: 16, Rho1: 0.000150, Rho2: 0.0000400},
		{N: 32, Rho1: 0.0000750, Rho2: 0.00000967},
		{N: 64, Rho1: 0.0000375, Rho2: 0.00000238},
	}
	rows := Table1(Figure4Ns())
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if rows[i].N != w.N {
			t.Errorf("row %d: N = %d, want %d", i, rows[i].N, w.N)
		}
		// The paper prints 3 significant digits.
		if !almostEqual(rows[i].Rho1, w.Rho1, 5e-3) {
			t.Errorf("N=%d: rho~1 = %v, paper %v", w.N, rows[i].Rho1, w.Rho1)
		}
		if !almostEqual(rows[i].Rho2, w.Rho2, 5e-3) {
			t.Errorf("N=%d: rho~2 = %v, paper %v", w.N, rows[i].Rho2, w.Rho2)
		}
	}
}

// TestFigure1Shape: Poisson upper-bounds the Bernoulli family, every
// curve increases with N, and stronger smoothing lowers blocking.
func TestFigure1Shape(t *testing.T) {
	series, err := Figure1(FigureNs())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	for si, s := range series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Value <= s.Points[i-1].Value {
				t.Errorf("%s: blocking not increasing at N=%d", s.Label, s.Points[i].N)
			}
		}
		if si > 0 {
			// More negative beta~ (later series) means lower blocking,
			// with Poisson (series 0) the upper bound. At N=1 the
			// state never reaches k=2, so beta cannot act yet.
			for i := range s.Points {
				if s.Points[i].N < 2 {
					continue
				}
				if s.Points[i].Value >= series[si-1].Points[i].Value {
					t.Errorf("%s at N=%d: %v not below %s's %v",
						s.Label, s.Points[i].N, s.Points[i].Value,
						series[si-1].Label, series[si-1].Points[i].Value)
				}
			}
		}
	}
	// Operating point: blocking near 0.5% at N=128 for the Poisson
	// bound (the paper's stated design point).
	last := series[0].Points[len(series[0].Points)-1]
	if last.N != 128 || last.Value < 0.003 || last.Value > 0.007 {
		t.Errorf("Poisson blocking at N=128 = %v, want ~0.005", last.Value)
	}
}

// TestFigure1SmallEffect: the paper reports ~0.1% (relative) blocking
// difference between Poisson and the strongest smooth curve at N=128.
func TestFigure1SmallEffect(t *testing.T) {
	series, err := Figure1([]int{128})
	if err != nil {
		t.Fatal(err)
	}
	poisson := series[0].Points[0].Value
	smooth := series[3].Points[0].Value
	rel := (poisson - smooth) / poisson
	if rel <= 0 || rel > 0.01 {
		t.Errorf("smooth effect %.4f, paper reports ~0.001 relative", rel)
	}
}

// TestFigure2Shape: peaky traffic dramatically increases blocking, and
// more peakedness means more blocking at every N.
func TestFigure2Shape(t *testing.T) {
	series, err := Figure2(FigureNs())
	if err != nil {
		t.Fatal(err)
	}
	for si := 1; si < len(series); si++ {
		for i := range series[si].Points {
			if series[si].Points[i].N < 2 {
				continue // beta has no effect until k can reach 2
			}
			if series[si].Points[i].Value <= series[si-1].Points[i].Value {
				t.Errorf("%s at N=%d: %v not above %s's %v",
					series[si].Label, series[si].Points[i].N, series[si].Points[i].Value,
					series[si-1].Label, series[si-1].Points[i].Value)
			}
		}
	}
	// "Dramatic impact": the strongest peaky curve at N=128 well above
	// the Poisson bound.
	n := len(series[0].Points) - 1
	if series[3].Points[n].Value < 1.5*series[0].Points[n].Value {
		t.Errorf("peaky blocking %v vs Poisson %v: expected dramatic impact",
			series[3].Points[n].Value, series[0].Points[n].Value)
	}
}

// TestFigure3Shape: the R1+R2 mix at the same total alpha~ tracks the
// R2-only curve closely (the Poisson class only shifts the operating
// point), and both respond to beta~ in the same direction.
func TestFigure3Shape(t *testing.T) {
	series, err := Figure3(FigureNs())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	for i := range series[0].Points {
		solo, both := series[0].Points[i].Value, series[1].Points[i].Value
		if math.Abs(solo-both) > 0.5*solo {
			t.Errorf("N=%d: solo %v vs mixed %v diverge more than the operating-point shift should allow",
				series[0].Points[i].N, solo, both)
		}
	}
}

// TestFigure4Shape: a=2 blocks significantly more than a=1 at equal
// total load — the paper's multi-rate contention result.
func TestFigure4Shape(t *testing.T) {
	series, err := Figure4(Figure4Ns())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for i := range series[0].Points {
		b1, b2 := series[0].Points[i].Value, series[1].Points[i].Value
		if b2 <= b1 {
			t.Errorf("N=%d: a=2 blocking %v should exceed a=1 blocking %v",
				series[0].Points[i].N, b2, b1)
		}
	}
}

// TestTable2Shape reproduces the qualitative Table 2 columns: revenue
// grows ~linearly with N, dW/drho1 grows ~N^2, the bursty gradient is
// negative from N=8 up with growing magnitude, and blocking sits near
// the 0.5%% operating point. Exact values are pinned for N=1 (the row
// the derived model matches digit-for-digit).
func TestTable2Shape(t *testing.T) {
	rows, err := Table2(Table2Sets()[0], Table2Ns())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rows[0].Blocking, 0.00239425, 1e-4) {
		t.Errorf("N=1 blocking %v, paper 0.00239425", rows[0].Blocking)
	}
	if !almostEqual(rows[0].W, 0.00119725, 1e-4) {
		t.Errorf("N=1 W %v, paper 0.00119725", rows[0].W)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].W <= rows[i-1].W {
			t.Errorf("W not increasing at N=%d", rows[i].N)
		}
		if rows[i].GradRho1 <= rows[i-1].GradRho1 {
			t.Errorf("dW/drho1 not increasing at N=%d", rows[i].N)
		}
	}
	// Revenue doubles with N (doubling both dimensions doubles carried
	// traffic at a fixed aggregate per-input-set load ... within a few
	// percent).
	for i := 1; i < len(rows); i++ {
		ratio := rows[i].W / rows[i-1].W
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("W ratio N=%d/%d = %v, want ~2", rows[i].N, rows[i-1].N, ratio)
		}
	}
	// Bursty gradient negative and growing in magnitude from N=8.
	var prev float64
	for _, row := range rows {
		if row.N >= 8 {
			if row.GradBeta2 >= 0 {
				t.Errorf("N=%d: dW/d(beta2/mu2) = %v, want negative", row.N, row.GradBeta2)
			}
			if prev != 0 && math.Abs(row.GradBeta2) <= math.Abs(prev) {
				t.Errorf("N=%d: bursty gradient magnitude not growing", row.N)
			}
			prev = row.GradBeta2
		}
	}
}

// TestTable2SetOrdering: at every N, set 3 (triple rho~2) blocks more
// than set 1, and set 2 (triple beta~2) blocks at least as much as
// set 1 once beta matters.
func TestTable2SetOrdering(t *testing.T) {
	ns := []int{4, 16, 64}
	sets := Table2Sets()
	r1, err := Table2(sets[0], ns)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Table2(sets[1], ns)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Table2(sets[2], ns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if !(r3[i].Blocking > r1[i].Blocking) {
			t.Errorf("N=%d: set3 blocking %v should exceed set1 %v", ns[i], r3[i].Blocking, r1[i].Blocking)
		}
		if !(r2[i].Blocking > r1[i].Blocking) {
			t.Errorf("N=%d: set2 blocking %v should exceed set1 %v", ns[i], r2[i].Blocking, r1[i].Blocking)
		}
		if !(r3[i].W < r1[i].W) {
			t.Errorf("N=%d: set3 revenue %v should trail set1 %v (class 2 is nearly worthless)", ns[i], r3[i].W, r1[i].W)
		}
	}
}
