package floats

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1 + 1e-9, 1e-12, false},
		{0, 1e-13, 1e-12, true},
		{0, 1e-6, 1e-12, false},
		{1e300, 1e300 * (1 + 1e-13), 1e-12, true},
		{inf, inf, 1e-12, true},
		{-inf, -inf, 1e-12, true},
		{inf, -inf, 1e-12, false},
		{inf, 1e308, 1e-12, false},
		{nan, nan, 1e-12, false},
		{nan, 1, 1e-12, false},
		{1, nan, 1e-12, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestNearAndZero(t *testing.T) {
	if !Near(1.0/3.0*3.0, 1.0) {
		t.Error("Near(1/3*3, 1) = false")
	}
	if !Zero(0) || !Zero(1e-14) || Zero(1e-6) {
		t.Error("Zero tolerance wrong")
	}
	if Zero(math.NaN()) {
		t.Error("Zero(NaN) = true")
	}
	if Positive(1e-14) || !Positive(1e-6) || Positive(-1) {
		t.Error("Positive tolerance wrong")
	}
}

func TestWithinRel(t *testing.T) {
	if !WithinRel(100, 100.0000001, 1e-6) {
		t.Error("WithinRel small relative error rejected")
	}
	if WithinRel(100, 101, 1e-6) {
		t.Error("WithinRel large relative error accepted")
	}
	if !WithinRel(0, 0, 1e-300) {
		t.Error("WithinRel(0, 0) = false")
	}
	if WithinRel(math.NaN(), math.NaN(), 1) {
		t.Error("WithinRel(NaN, NaN) = true")
	}
	if !WithinRel(math.Inf(1), math.Inf(1), 1e-9) {
		t.Error("WithinRel(+Inf, +Inf) = false")
	}
	if WithinRel(math.Inf(1), 1e308, 1e-9) {
		t.Error("WithinRel(+Inf, 1e308) = true")
	}
}
