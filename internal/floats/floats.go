// Package floats holds the shared floating-point comparison helpers
// the repo's numeric code uses instead of raw == / != on float64.
//
// The product-form recursions (Algorithm 1, the convolution solver,
// MVA) accumulate rounding error at every step, and the log-domain and
// dynamically scaled paths reintroduce values through Exp/Log round
// trips, so two mathematically identical quantities rarely compare
// bit-equal. Every equality decision therefore goes through a
// tolerance, consolidated here so the tolerance policy lives in one
// place. The xbarlint floatcmp check points offenders at this package.
package floats

import "math"

// DefaultTol is the tolerance used by Near and Zero. It is loose
// enough to absorb the rounding of the paper's recursions at
// double precision, and tight enough to distinguish any two distinct
// model operating points used in the experiments.
const DefaultTol = 1e-12

// AlmostEqual reports whether a and b are equal to within tol, using a
// hybrid absolute/relative criterion:
//
//	|a-b| <= tol * max(1, |a|, |b|) .
//
// Near zero this behaves like an absolute tolerance; for large
// magnitudes it behaves like a relative one. NaN is not almost equal
// to anything (including NaN); equal infinities are almost equal.
// tol must be non-negative.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:allow floatcmp exact equality short-circuits infinities and exact hits
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Unequal infinities, or an infinity against a finite value:
		// tol*scale would itself be infinite and accept anything.
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Near reports AlmostEqual at DefaultTol.
func Near(a, b float64) bool { return AlmostEqual(a, b, DefaultTol) }

// Zero reports whether x is within DefaultTol of zero. Use it where
// code previously wrote x == 0 on a computed float.
func Zero(x float64) bool { return math.Abs(x) <= DefaultTol }

// Positive reports whether x is strictly greater than DefaultTol,
// i.e. positive by more than rounding noise.
func Positive(x float64) bool { return x > DefaultTol }

// WithinRel reports whether a and b agree to relative error rel,
// |a-b| <= rel * max(|a|, |b|). Both zero counts as within any rel.
// NaN is never within anything.
func WithinRel(a, b, rel float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:allow floatcmp exact equality short-circuits infinities and the both-zero case
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}
