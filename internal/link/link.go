// Package link implements classical single-resource loss models — the
// Erlang-B formula, the Kaufman-Roberts multirate recursion, and a
// BPP multirate link in the spirit of Delbrouck [11] — as baselines
// for the crossbar.
//
// A link has C capacity units shared by R classes; a class-r call
// seizes a_r units for an exponential (insensitive) holding time, and
// blocked calls are cleared. The crossbar differs in that a class-r
// connection must find a_r idle units on BOTH coordinates (inputs and
// outputs) of a two-dimensional resource; comparing the two quantifies
// what the paper's 2-D Psi term contributes (the "baselines" ablation
// in EXPERIMENTS.md).
package link

import (
	"fmt"

	"xbar/internal/combin"
	"xbar/internal/core"
	"xbar/internal/floats"
	"xbar/internal/scale"
)

// ErlangB returns the Erlang-B blocking probability for a link of c
// circuits offered load rho (erlangs), via the numerically stable
// recursion B(0) = 1, B(n) = rho B(n-1) / (n + rho B(n-1)).
func ErlangB(c int, rho float64) float64 {
	if c < 0 {
		//lint:allow libpanic documented domain precondition, stdlib math convention; capacities are validated at config parse time
		panic(fmt.Sprintf("link: ErlangB(%d)", c))
	}
	if rho < 0 {
		//lint:allow libpanic documented domain precondition; offered loads are validated at config parse time
		panic(fmt.Sprintf("link: ErlangB rho = %v", rho))
	}
	b := 1.0
	for n := 1; n <= c; n++ {
		b = rho * b / (float64(n) + rho*b)
	}
	return b
}

// Class is one traffic class offered to a link, in the same BPP
// parameterization as the crossbar model: arrival intensity
// alpha + beta*k when k class calls are up, per-call service rate mu,
// bandwidth a capacity units.
type Class struct {
	Name  string
	A     int
	Alpha float64
	Beta  float64
	Mu    float64
}

// Link is a C-unit multirate loss link.
type Link struct {
	C       int
	Classes []Class
}

// Validate checks structural constraints.
func (l Link) Validate() error {
	if l.C < 1 {
		return fmt.Errorf("link: capacity %d, must be >= 1", l.C)
	}
	if len(l.Classes) == 0 {
		return fmt.Errorf("link: no traffic classes")
	}
	for i, c := range l.Classes {
		if c.A < 1 {
			return fmt.Errorf("link: class %d: a = %d", i, c.A)
		}
		if c.Alpha <= 0 || c.Mu <= 0 {
			return fmt.Errorf("link: class %d: alpha = %v, mu = %v", i, c.Alpha, c.Mu)
		}
		if c.Beta/c.Mu >= 1 {
			return fmt.Errorf("link: class %d: beta/mu = %v >= 1", i, c.Beta/c.Mu)
		}
	}
	return nil
}

// Result holds per-class link measures.
type Result struct {
	Link Link
	// Blocking is the time congestion per class: the probability fewer
	// than a_r units are free.
	Blocking []float64
	// Concurrency is the mean number of class calls in progress.
	Concurrency []float64
	// Occupancy[s] = P(s units busy).
	Occupancy []float64
}

// Solve evaluates the link exactly by per-class convolution over the
// occupancy axis (the same machinery as the crossbar's convolution
// evaluator with the Psi term set to 1).
func Solve(l Link) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	// Per-class weights w_r(j) = prod_{l=1..j} lambda(l-1)/(l mu).
	weights := make([][]scale.Number, len(l.Classes))
	for r, c := range l.Classes {
		max := l.C / c.A
		w := make([]scale.Number, max+1)
		w[0] = scale.One
		for j := 1; j <= max; j++ {
			rate := c.Alpha + c.Beta*float64(j-1)
			if rate < 0 {
				rate = 0
			}
			w[j] = w[j-1].MulFloat(rate / (float64(j) * c.Mu))
		}
		weights[r] = w
	}
	full := convolve(weights, l, -1)
	g := scale.Zero
	for _, v := range full {
		g = g.Add(v)
	}
	res := &Result{
		Link:        l,
		Blocking:    make([]float64, len(l.Classes)),
		Concurrency: make([]float64, len(l.Classes)),
		Occupancy:   make([]float64, l.C+1),
	}
	for s, v := range full {
		res.Occupancy[s] = v.Ratio(g)
	}
	for r, c := range l.Classes {
		// Blocking: occupancy above C - a_r.
		blocked := 0.0
		for s := l.C - c.A + 1; s <= l.C; s++ {
			if s >= 0 {
				blocked += res.Occupancy[s]
			}
		}
		res.Blocking[r] = blocked
		// Concurrency via the leave-one-out convolution.
		rest := convolve(weights, l, r)
		num := scale.Zero
		for j := 1; j <= l.C/c.A; j++ {
			jw := weights[r][j].MulFloat(float64(j))
			for s := j * c.A; s <= l.C; s++ {
				other := rest[s-j*c.A]
				if other.IsZero() {
					continue
				}
				num = num.Add(jw.Mul(other))
			}
		}
		res.Concurrency[r] = num.Ratio(g)
	}
	return res, nil
}

// convolve folds every class's weights except skip onto the occupancy
// axis 0..C.
func convolve(weights [][]scale.Number, l Link, skip int) []scale.Number {
	g := make([]scale.Number, l.C+1)
	g[0] = scale.One
	for r := range l.Classes {
		if r == skip {
			continue
		}
		a := l.Classes[r].A
		out := make([]scale.Number, l.C+1)
		for s := 0; s <= l.C; s++ {
			if g[s].IsZero() {
				continue
			}
			for j := 0; j < len(weights[r]) && s+j*a <= l.C; j++ {
				if weights[r][j].IsZero() {
					continue
				}
				out[s+j*a] = out[s+j*a].Add(g[s].Mul(weights[r][j]))
			}
		}
		g = out
	}
	return g
}

// KaufmanRoberts computes the occupancy distribution of a multirate
// link with Poisson classes by the classical recursion
//
//	s q(s) = sum_r a_r rho_r q(s - a_r),
//
// returning the normalized occupancy and per-class blocking. It must
// agree with Solve when every beta is zero; the recursion does not
// extend to beta != 0 (that is Delbrouck's extension, which Solve
// subsumes via convolution).
func KaufmanRoberts(c int, a []int, rho []float64) (occupancy []float64, blocking []float64, err error) {
	if len(a) != len(rho) {
		return nil, nil, fmt.Errorf("link: %d bandwidths, %d loads", len(a), len(rho))
	}
	if c < 1 {
		return nil, nil, fmt.Errorf("link: capacity %d", c)
	}
	q := make([]float64, c+1)
	q[0] = 1
	for s := 1; s <= c; s++ {
		for r := range a {
			if s-a[r] >= 0 {
				q[s] += float64(a[r]) * rho[r] * q[s-a[r]]
			}
		}
		q[s] /= float64(s)
	}
	total := 0.0
	for _, v := range q {
		total += v
	}
	occupancy = make([]float64, c+1)
	for s, v := range q {
		occupancy[s] = v / total
	}
	blocking = make([]float64, len(a))
	for r := range a {
		for s := c - a[r] + 1; s <= c; s++ {
			if s >= 0 {
				blocking[r] += occupancy[s]
			}
		}
	}
	return occupancy, blocking, nil
}

// Delbrouck computes the occupancy distribution and per-class blocking
// of a BPP multirate link by Delbrouck's recursion [11] — the 1-D
// ancestor of the paper's Algorithm 1, with the same auxiliary
// geometric sums handled by a diagonal V-recursion:
//
//	s g(s) = sum_{r Poisson} a_r rho_r g(s - a_r)
//	       + sum_{r bursty}  a_r rho_r V_r(s),
//	V_r(s) = g(s - a_r) + (beta_r/mu_r) V_r(s - a_r).
//
// It must agree with the convolution evaluator Solve; for all-Poisson
// classes it reduces to Kaufman-Roberts.
func Delbrouck(l Link) (occupancy []float64, blocking []float64, err error) {
	if err := l.Validate(); err != nil {
		return nil, nil, err
	}
	g := make([]float64, l.C+1)
	v := make([][]float64, len(l.Classes))
	for r := range v {
		v[r] = make([]float64, l.C+1)
	}
	g[0] = 1
	for s := 1; s <= l.C; s++ {
		for r, c := range l.Classes {
			if s-c.A >= 0 {
				v[r][s] = g[s-c.A] + c.Beta/c.Mu*v[r][s-c.A]
			}
		}
		acc := 0.0
		for r, c := range l.Classes {
			if s-c.A < 0 {
				continue
			}
			rho := c.Alpha / c.Mu
			if floats.Zero(c.Beta) { // same Poisson classification as core.Class.IsPoisson
				acc += float64(c.A) * rho * g[s-c.A]
			} else {
				acc += float64(c.A) * rho * v[r][s]
			}
		}
		g[s] = acc / float64(s)
	}
	total := 0.0
	for _, w := range g {
		total += w
	}
	occupancy = make([]float64, l.C+1)
	for s, w := range g {
		occupancy[s] = w / total
	}
	blocking = make([]float64, len(l.Classes))
	for r, c := range l.Classes {
		for s := l.C - c.A + 1; s <= l.C; s++ {
			if s >= 0 {
				blocking[r] += occupancy[s]
			}
		}
	}
	return occupancy, blocking, nil
}

// CrossbarEquivalent returns the C x C crossbar whose classes offer
// the same TOTAL arrival intensity as this link's classes, spread
// uniformly over all ordered routes: per-route alpha_r =
// Alpha_r / (P(C,a_r))^2. This is the honest 1-D vs 2-D baseline: the
// link pools all C circuits for any arrival, while a crossbar request
// names a specific set of inputs and outputs and blocks whenever any
// of those particular ports is busy. At equal carried load the
// crossbar's specific-route blocking is dominated by endpoint (port)
// contention — roughly 2 a_r x port utilization — and sits orders of
// magnitude above the pooled link's Erlang blocking. That gap is the
// cost of dedicating endpoints, quantified.
func (l Link) CrossbarEquivalent() core.Switch {
	classes := make([]core.Class, len(l.Classes))
	for i, c := range l.Classes {
		routes := combin.Perm(l.C, c.A) * combin.Perm(l.C, c.A)
		classes[i] = core.Class{
			Name: c.Name, A: c.A,
			Alpha: c.Alpha / routes,
			Beta:  c.Beta / routes,
			Mu:    c.Mu,
		}
	}
	return core.Switch{N1: l.C, N2: l.C, Classes: classes}
}
