package link

import (
	"math"
	"testing"

	"xbar/internal/core"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*s || d <= tol*1e-3
}

// erlangBDirect evaluates the defining formula
// B = (rho^c/c!) / sum_{k<=c} rho^k/k! with term-by-term accumulation.
func erlangBDirect(c int, rho float64) float64 {
	term := 1.0
	sum := 1.0
	for k := 1; k <= c; k++ {
		term *= rho / float64(k)
		sum += term
	}
	return term / sum
}

func TestErlangBKnownValues(t *testing.T) {
	cases := []struct {
		c    int
		rho  float64
		want float64
	}{
		{0, 5, 1},       // no servers: always blocked
		{1, 1, 0.5},     // B = rho/(1+rho)
		{2, 1, 1.0 / 5}, // (rho^2/2)/(1+rho+rho^2/2)
	}
	for _, c := range cases {
		if got := ErlangB(c.c, c.rho); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("ErlangB(%d, %v) = %v, want %v", c.c, c.rho, got, c.want)
		}
	}
}

func TestErlangBMatchesDirectFormula(t *testing.T) {
	for _, c := range []int{5, 10, 50, 100} {
		for _, rho := range []float64{0.5, 5, 40, 90} {
			got := ErlangB(c, rho)
			want := erlangBDirect(c, rho)
			if !almostEqual(got, want, 1e-10) {
				t.Errorf("ErlangB(%d, %v) = %v, direct formula %v", c, rho, got, want)
			}
		}
	}
}

func TestErlangBMonotone(t *testing.T) {
	for c := 1; c < 30; c++ {
		if !(ErlangB(c, 10) < ErlangB(c-1, 10)) {
			t.Errorf("Erlang-B not decreasing in c at %d", c)
		}
	}
	prev := -1.0
	for _, rho := range []float64{0.1, 1, 5, 20} {
		b := ErlangB(10, rho)
		if b <= prev {
			t.Errorf("Erlang-B not increasing in rho at %v", rho)
		}
		prev = b
	}
}

func TestSolveReducesToErlangB(t *testing.T) {
	// One Poisson class with a=1: the link is an M/G/c/c queue.
	for _, rho := range []float64{0.5, 2, 8} {
		l := Link{C: 10, Classes: []Class{{A: 1, Alpha: rho, Mu: 1}}}
		res, err := Solve(l)
		if err != nil {
			t.Fatal(err)
		}
		if want := ErlangB(10, rho); !almostEqual(res.Blocking[0], want, 1e-10) {
			t.Errorf("rho=%v: blocking %v, want Erlang-B %v", rho, res.Blocking[0], want)
		}
		// Carried load = rho (1 - B).
		if want := rho * (1 - ErlangB(10, rho)); !almostEqual(res.Concurrency[0], want, 1e-10) {
			t.Errorf("rho=%v: concurrency %v, want %v", rho, res.Concurrency[0], want)
		}
	}
}

func TestKaufmanRobertsMatchesConvolution(t *testing.T) {
	l := Link{C: 24, Classes: []Class{
		{A: 1, Alpha: 4, Mu: 1},
		{A: 2, Alpha: 1.5, Mu: 0.5},
		{A: 6, Alpha: 0.25, Mu: 1},
	}}
	res, err := Solve(l)
	if err != nil {
		t.Fatal(err)
	}
	a := []int{1, 2, 6}
	rho := []float64{4, 3, 0.25}
	occ, blocking, err := KaufmanRoberts(24, a, rho)
	if err != nil {
		t.Fatal(err)
	}
	for s := range occ {
		if !almostEqual(occ[s], res.Occupancy[s], 1e-9) {
			t.Errorf("occupancy[%d]: KR %v convolution %v", s, occ[s], res.Occupancy[s])
		}
	}
	for r := range a {
		if !almostEqual(blocking[r], res.Blocking[r], 1e-9) {
			t.Errorf("blocking[%d]: KR %v convolution %v", r, blocking[r], res.Blocking[r])
		}
	}
}

func TestKaufmanRobertsValidation(t *testing.T) {
	if _, _, err := KaufmanRoberts(10, []int{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched slice lengths accepted")
	}
	if _, _, err := KaufmanRoberts(0, []int{1}, []float64{1}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestOccupancySumsToOne(t *testing.T) {
	l := Link{C: 12, Classes: []Class{
		{A: 1, Alpha: 2, Beta: 0.5, Mu: 1},
		{A: 3, Alpha: 0.4, Beta: -0.02, Mu: 1},
	}}
	res, err := Solve(l)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range res.Occupancy {
		sum += p
	}
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("occupancy sums to %v", sum)
	}
}

func TestPeakyBlocksMoreThanPoisson(t *testing.T) {
	// Same mean offered load, increasing peakedness: blocking rises.
	// Mean load M = alpha/(mu - beta); hold M = 4 on C = 10.
	mkLink := func(beta float64) Link {
		alpha := 4 * (1 - beta)
		return Link{C: 10, Classes: []Class{{A: 1, Alpha: alpha, Beta: beta, Mu: 1}}}
	}
	prev := -1.0
	for _, beta := range []float64{0, 0.2, 0.4, 0.6} {
		res, err := Solve(mkLink(beta))
		if err != nil {
			t.Fatal(err)
		}
		if res.Blocking[0] <= prev {
			t.Errorf("beta=%v: blocking %v not increasing in peakedness", beta, res.Blocking[0])
		}
		prev = res.Blocking[0]
	}
}

// TestCrossbarBlocksMoreThanLink quantifies the 2-D effect: at equal
// aggregate load and equal "capacity", the crossbar's requirement of
// idle ports on both coordinates produces more blocking than a 1-D
// link (each accepted route consumes an input AND an output, and
// contention exists on both).
func TestCrossbarBlocksMoreThanLink(t *testing.T) {
	l := Link{C: 8, Classes: []Class{{A: 1, Alpha: 2, Mu: 1}}}
	linkRes, err := Solve(l)
	if err != nil {
		t.Fatal(err)
	}
	xbarRes, err := core.Solve(l.CrossbarEquivalent())
	if err != nil {
		t.Fatal(err)
	}
	if xbarRes.Blocking[0] <= linkRes.Blocking[0] {
		t.Errorf("crossbar blocking %v should exceed link blocking %v",
			xbarRes.Blocking[0], linkRes.Blocking[0])
	}
	// The mapping offers the same total intensity, so each system
	// carries offered x (1 - its own blocking): for the crossbar,
	// E = rho_total (1 - B) exactly (Poisson, a = 1).
	if got, want := xbarRes.Concurrency[0], 2*(1-xbarRes.Blocking[0]); math.Abs(got-want) > 1e-9 {
		t.Errorf("crossbar carries %v, want offered x (1-B) = %v: load mapping is off", got, want)
	}
	// And the crossbar's specific-route blocking is approximately
	// endpoint contention: 2 x port utilization minus the overlap.
	util := xbarRes.Concurrency[0] / 8
	approx := 1 - (1-util)*(1-util)
	if math.Abs(xbarRes.Blocking[0]-approx) > 0.15*approx {
		t.Errorf("crossbar blocking %v far from endpoint-contention estimate %v",
			xbarRes.Blocking[0], approx)
	}
}

func TestValidation(t *testing.T) {
	bad := []Link{
		{C: 0, Classes: []Class{{A: 1, Alpha: 1, Mu: 1}}},
		{C: 4},
		{C: 4, Classes: []Class{{A: 0, Alpha: 1, Mu: 1}}},
		{C: 4, Classes: []Class{{A: 1, Alpha: 0, Mu: 1}}},
		{C: 4, Classes: []Class{{A: 1, Alpha: 1, Mu: 0}}},
		{C: 4, Classes: []Class{{A: 1, Alpha: 1, Beta: 2, Mu: 1}}},
	}
	for i, l := range bad {
		if _, err := Solve(l); err == nil {
			t.Errorf("case %d: invalid link accepted", i)
		}
	}
}

func TestErlangBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ErlangB(-1, 1) did not panic")
		}
	}()
	ErlangB(-1, 1)
}

// TestDelbrouckMatchesConvolution: the cited recursion [11] and the
// convolution evaluator agree on occupancy and blocking for mixed
// BPP multirate links.
func TestDelbrouckMatchesConvolution(t *testing.T) {
	l := Link{C: 20, Classes: []Class{
		{A: 1, Alpha: 3, Mu: 1},
		{A: 2, Alpha: 1, Beta: 0.4, Mu: 1},
		{A: 3, Alpha: 0.5, Beta: -0.01, Mu: 0.8},
	}}
	occ, blocking, err := Delbrouck(l)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(l)
	if err != nil {
		t.Fatal(err)
	}
	for s := range occ {
		if !almostEqual(occ[s], want.Occupancy[s], 1e-9) {
			t.Errorf("occupancy[%d]: delbrouck %v convolution %v", s, occ[s], want.Occupancy[s])
		}
	}
	for r := range l.Classes {
		if !almostEqual(blocking[r], want.Blocking[r], 1e-9) {
			t.Errorf("blocking[%d]: delbrouck %v convolution %v", r, blocking[r], want.Blocking[r])
		}
	}
}

// TestDelbrouckReducesToKaufmanRoberts for all-Poisson classes.
func TestDelbrouckReducesToKaufmanRoberts(t *testing.T) {
	l := Link{C: 15, Classes: []Class{
		{A: 1, Alpha: 4, Mu: 1},
		{A: 3, Alpha: 0.6, Mu: 1},
	}}
	occ, blocking, err := Delbrouck(l)
	if err != nil {
		t.Fatal(err)
	}
	krOcc, krB, err := KaufmanRoberts(15, []int{1, 3}, []float64{4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for s := range occ {
		if !almostEqual(occ[s], krOcc[s], 1e-12) {
			t.Errorf("occupancy[%d]: delbrouck %v KR %v", s, occ[s], krOcc[s])
		}
	}
	for r := range blocking {
		if !almostEqual(blocking[r], krB[r], 1e-12) {
			t.Errorf("blocking[%d]: delbrouck %v KR %v", r, blocking[r], krB[r])
		}
	}
}

func TestDelbrouckValidation(t *testing.T) {
	if _, _, err := Delbrouck(Link{C: 0}); err == nil {
		t.Error("invalid link accepted")
	}
}
