// Package dist implements the arrival-traffic statistics used by the
// model: the Bernoulli–Poisson–Pascal (BPP) family of Delbrouck [11],
// which the paper uses as a unified approximation of smooth, regular and
// peaky traffic.
//
// A BPP source is a state-dependent Markov arrival process with rate
//
//	lambda(k) = alpha + beta*k
//
// where k is the number of connections currently held by the source.
// Offered to an infinite server group with per-connection service rate
// mu, the number of busy servers is distributed:
//
//	Binomial ("Bernoulli" in the teletraffic sense)  for beta < 0,
//	Poisson                                          for beta = 0,
//	Pascal (negative binomial)                       for beta > 0.
//
// The peakedness Z = V/M of the busy-server distribution classifies the
// traffic: smooth (Z < 1), regular (Z = 1), peaky (Z > 1). With b =
// beta/mu and rho = alpha/mu the moments are M = rho/(1-b), V =
// rho/(1-b)^2, Z = 1/(1-b); the paper states these with mu normalized
// to 1.
package dist

import (
	"fmt"
	"math"

	"xbar/internal/combin"
	"xbar/internal/floats"
)

// Traffic classifies a BPP source by its peakedness.
type Traffic int

const (
	// Smooth traffic has Z < 1 (Bernoulli/Binomial, beta < 0).
	Smooth Traffic = iota
	// Regular traffic has Z = 1 (Poisson, beta = 0).
	Regular
	// Peaky traffic has Z > 1 (Pascal, beta > 0).
	Peaky
)

func (t Traffic) String() string {
	switch t {
	case Smooth:
		return "smooth"
	case Regular:
		return "regular"
	case Peaky:
		return "peaky"
	default:
		return fmt.Sprintf("Traffic(%d)", int(t))
	}
}

// BPP describes one Bernoulli–Poisson–Pascal source.
type BPP struct {
	Alpha float64 // state-independent arrival intensity, > 0
	Beta  float64 // state-dependent arrival slope
	Mu    float64 // per-connection service rate, > 0
}

// Rate returns the arrival rate lambda(k) = Alpha + Beta*k when k
// connections are held. It is never negative for a valid Bernoulli
// parameterization within the population bound.
func (b BPP) Rate(k int) float64 { return b.Alpha + b.Beta*float64(k) }

// Rho returns the offered load alpha/mu. Mu must be positive
// (Validate enforces it), so the ratio is finite.
func (b BPP) Rho() float64 { return b.Alpha / b.Mu }

// B returns the normalized slope beta/mu. Mu must be positive
// (Validate enforces it), so the ratio is finite.
func (b BPP) B() float64 { return b.Beta / b.Mu }

// Mean returns the mean M = rho/(1-b) of the busy-server count on an
// infinite server group (paper Section 2 with mu = 1). The slope must
// satisfy b < 1 (Validate enforces it), so the denominator is
// positive.
func (b BPP) Mean() float64 { return b.Rho() / (1 - b.B()) }

// Variance returns V = rho/(1-b)^2 of the infinite-server busy count.
// The slope must satisfy b < 1 (Validate enforces it), so the
// denominator is positive.
func (b BPP) Variance() float64 {
	d := 1 - b.B()
	return b.Rho() / (d * d)
}

// Peakedness returns the Z-factor Z = V/M = 1/(1-b). The slope must
// satisfy b < 1 (Validate enforces the Pascal convergence bound), so
// the denominator is positive.
func (b BPP) Peakedness() float64 { return 1 / (1 - b.B()) }

// Traffic classifies the source as Smooth, Regular, or Peaky.
func (b BPP) Traffic() Traffic {
	switch {
	case b.Beta < 0:
		return Smooth
	case b.Beta > 0:
		return Peaky
	default:
		return Regular
	}
}

// Population returns the Bernoulli source population S = -alpha/beta.
// It is only meaningful for Smooth traffic and panics otherwise.
func (b BPP) Population() float64 {
	if b.Beta >= 0 {
		//lint:allow libpanic documented domain precondition; internal callers guard on Beta < 0
		panic("dist: Population is defined only for smooth (beta < 0) sources")
	}
	return -b.Alpha / b.Beta
}

// Validate checks the parameter constraints from Section 2 of the paper
// for a switch whose larger dimension is maxN:
//
//   - alpha > 0 and mu > 0 always;
//   - Pascal requires 0 < beta/mu < 1 (the generating-function geometric
//     series must converge);
//   - Bernoulli requires -alpha/beta to be a (near-)integer population
//     at least maxN, so that lambda(k) >= 0 for every reachable k.
func (b BPP) Validate(maxN int) error {
	if b.Alpha <= 0 {
		return fmt.Errorf("dist: alpha = %v, must be > 0", b.Alpha)
	}
	if b.Mu <= 0 {
		return fmt.Errorf("dist: mu = %v, must be > 0", b.Mu)
	}
	switch {
	case b.Beta > 0:
		if b.B() >= 1 {
			return fmt.Errorf("dist: Pascal slope beta/mu = %v, must be < 1", b.B())
		}
	case b.Beta < 0:
		s := b.Population()
		if s < float64(maxN) {
			return fmt.Errorf("dist: Bernoulli population %v < max(N1,N2) = %d; lambda(k) would go negative", s, maxN)
		}
		if r := math.Abs(s - math.Round(s)); r > 1e-6*math.Max(1, s) {
			return fmt.Errorf("dist: Bernoulli population -alpha/beta = %v is not an integer", s)
		}
	}
	return nil
}

// FitMeanPeakedness returns the BPP source with per-connection service
// rate mu whose infinite-server busy count has the given mean M > 0 and
// peakedness Z > 0: beta/mu = 1 - 1/Z and alpha/mu = M/Z. This is the
// standard moment-matching step when approximating measured traffic by
// a BPP stream.
func FitMeanPeakedness(m, z, mu float64) (BPP, error) {
	if m <= 0 || z <= 0 || mu <= 0 {
		return BPP{}, fmt.Errorf("dist: FitMeanPeakedness(%v, %v, %v): arguments must be positive", m, z, mu)
	}
	return BPP{
		Alpha: m / z * mu,
		Beta:  (1 - 1/z) * mu,
		Mu:    mu,
	}, nil
}

// InfiniteServerPMF returns the probability of k busy servers when the
// source is offered to an infinite server group, i.e. the defining
// Binomial/Poisson/Pascal distribution of the BPP family. The
// parameters must satisfy Validate, which keeps every branch of the
// closed form inside its domain (b < 1 for Pascal, integer population
// for Bernoulli).
func (b BPP) InfiniteServerPMF(k int) float64 {
	if k < 0 {
		return 0
	}
	switch b.Traffic() {
	case Regular:
		return PoissonPMF(b.Rho(), k)
	case Peaky:
		// Negative binomial with r = alpha/beta successes parameter and
		// p = beta/mu.
		return PascalPMF(b.Alpha/b.Beta, b.B(), k)
	default:
		// Binomial over population S with p = -b/(1-b) solved from the
		// birth-death balance: pi(k) ~ C(S,k) (-b)^k / (1-...) — the
		// closed form is Binomial(S, p) with p = -b/(1-b).
		s := int(math.Round(b.Population()))
		bb := b.B()
		p := -bb / (1 - bb)
		return BinomialPMF(s, p, k)
	}
}

// PoissonPMF returns e^-m m^k / k! computed in log space for stability
// at large k. The mean m must be non-negative; the m = 0 limit takes
// the exact degenerate branch.
func PoissonPMF(m float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if floats.Zero(m) {
		// The m -> 0 limit concentrates all mass at k = 0; taking it
		// explicitly also keeps math.Log(m) out of the formula below.
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(-m + float64(k)*math.Log(m) - combin.LogFactorial(k))
}

// BinomialPMF returns C(n,k) p^k (1-p)^(n-k). The success
// probability p must lie in [0, 1]; the boundary values take the
// exact degenerate branches, keeping the log-space form inside its
// domain.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := combin.LogFactorial(n) - combin.LogFactorial(k) - combin.LogFactorial(n-k)
	return math.Exp(lg + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// PascalPMF returns the negative-binomial probability
// C(r-1+k, k) p^k (1-p)^r for real r > 0 and 0 < p < 1 — the number of
// busy servers for a peaky BPP source with r = alpha/beta, p = beta/mu.
func PascalPMF(r, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return combin.GeneralizedBinom(r, k) * math.Pow(p, float64(k)) * math.Pow(1-p, r)
}
