package dist_test

import (
	"fmt"

	"xbar/internal/dist"
)

// Moment-matching measured traffic onto the BPP family: give the mean
// and the peakedness, get the alpha/beta parameterization the crossbar
// model consumes.
func ExampleFitMeanPeakedness() {
	src, err := dist.FitMeanPeakedness(2.0, 1.5, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha=%.4g beta=%.4g traffic=%s\n", src.Alpha, src.Beta, src.Traffic())
	fmt.Printf("mean=%.4g Z=%.4g\n", src.Mean(), src.Peakedness())
	// Output:
	// alpha=1.333 beta=0.3333 traffic=peaky
	// mean=2 Z=1.5
}
