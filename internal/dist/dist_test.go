package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*s || diff <= tol
}

func TestTrafficString(t *testing.T) {
	if Smooth.String() != "smooth" || Regular.String() != "regular" || Peaky.String() != "peaky" {
		t.Error("Traffic String values wrong")
	}
	if Traffic(99).String() != "Traffic(99)" {
		t.Error("unknown Traffic String wrong")
	}
}

func TestClassification(t *testing.T) {
	if (BPP{Alpha: 1, Beta: -0.01, Mu: 1}).Traffic() != Smooth {
		t.Error("beta<0 should be Smooth")
	}
	if (BPP{Alpha: 1, Beta: 0, Mu: 1}).Traffic() != Regular {
		t.Error("beta=0 should be Regular")
	}
	if (BPP{Alpha: 1, Beta: 0.3, Mu: 1}).Traffic() != Peaky {
		t.Error("beta>0 should be Peaky")
	}
}

func TestMomentFormulas(t *testing.T) {
	// Paper Section 2 (with mu = 1): M = alpha/(1-beta),
	// V = alpha/(1-beta)^2, Z = 1/(1-beta).
	b := BPP{Alpha: 0.6, Beta: 0.25, Mu: 1}
	if got := b.Mean(); !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("Mean = %v, want 0.8", got)
	}
	if got := b.Variance(); !almostEqual(got, 0.6/(0.75*0.75), 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := b.Peakedness(); !almostEqual(got, 4.0/3, 1e-12) {
		t.Errorf("Peakedness = %v, want 4/3", got)
	}
}

func TestPeakednessClassifiesTraffic(t *testing.T) {
	smooth := BPP{Alpha: 1, Beta: -0.5, Mu: 1}
	if z := smooth.Peakedness(); z >= 1 {
		t.Errorf("smooth Z = %v, want < 1", z)
	}
	peaky := BPP{Alpha: 1, Beta: 0.5, Mu: 1}
	if z := peaky.Peakedness(); z <= 1 {
		t.Errorf("peaky Z = %v, want > 1", z)
	}
	if z := (BPP{Alpha: 1, Mu: 1}).Peakedness(); z != 1 {
		t.Errorf("Poisson Z = %v, want 1", z)
	}
}

func TestFitMeanPeakednessRoundTrip(t *testing.T) {
	f := func(mRaw, zRaw, muRaw uint16) bool {
		m := 0.01 + float64(mRaw%1000)/100
		z := 0.05 + float64(zRaw%300)/100
		mu := 0.1 + float64(muRaw%100)/10
		b, err := FitMeanPeakedness(m, z, mu)
		if err != nil {
			return false
		}
		return almostEqual(b.Mean(), m, 1e-9) && almostEqual(b.Peakedness(), z, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitMeanPeakednessRejectsBadArgs(t *testing.T) {
	for _, c := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 1}} {
		if _, err := FitMeanPeakedness(c[0], c[1], c[2]); err == nil {
			t.Errorf("FitMeanPeakedness(%v) accepted invalid arguments", c)
		}
	}
}

func TestValidate(t *testing.T) {
	// Paper Figure 1 parameters: alpha~ = .0024, beta~ = -4e-6, so
	// alpha/beta = -600, an integer population of 600 >= 128.
	smooth := BPP{Alpha: 0.0024, Beta: -4e-6, Mu: 1}
	if err := smooth.Validate(128); err != nil {
		t.Errorf("paper's Figure 1 parameters rejected: %v", err)
	}
	if got := smooth.Population(); got != 600 {
		t.Errorf("Population = %v, want 600", got)
	}
	// Population smaller than the switch: lambda(k) would go negative.
	if err := (BPP{Alpha: 0.0024, Beta: -4e-5, Mu: 1}).Validate(128); err == nil {
		t.Error("population 60 < 128 accepted")
	}
	// Non-integer population.
	if err := (BPP{Alpha: 0.0024, Beta: -3.7e-6, Mu: 1}).Validate(128); err == nil {
		t.Error("non-integer population accepted")
	}
	// Pascal with beta/mu >= 1 diverges.
	if err := (BPP{Alpha: 1, Beta: 1.5, Mu: 1}).Validate(16); err == nil {
		t.Error("beta/mu >= 1 accepted")
	}
	if err := (BPP{Alpha: 1, Beta: 0.5, Mu: 1}).Validate(16); err != nil {
		t.Errorf("valid Pascal rejected: %v", err)
	}
	if err := (BPP{Alpha: 0, Beta: 0, Mu: 1}).Validate(16); err == nil {
		t.Error("alpha = 0 accepted")
	}
	if err := (BPP{Alpha: 1, Beta: 0, Mu: 0}).Validate(16); err == nil {
		t.Error("mu = 0 accepted")
	}
}

func TestPopulationPanicsForNonSmooth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Population() on Poisson source did not panic")
		}
	}()
	_ = BPP{Alpha: 1, Beta: 0, Mu: 1}.Population()
}

func TestRate(t *testing.T) {
	b := BPP{Alpha: 2, Beta: 0.5, Mu: 1}
	if got := b.Rate(0); got != 2 {
		t.Errorf("Rate(0) = %v", got)
	}
	if got := b.Rate(4); got != 4 {
		t.Errorf("Rate(4) = %v", got)
	}
}

func pmfSumAndMoments(pmf func(int) float64, n int) (sum, mean, variance float64) {
	for k := 0; k <= n; k++ {
		p := pmf(k)
		sum += p
		mean += float64(k) * p
	}
	for k := 0; k <= n; k++ {
		d := float64(k) - mean
		variance += d * d * pmf(k)
	}
	return sum, mean, variance
}

func TestPoissonPMF(t *testing.T) {
	m := 3.5
	sum, mean, v := pmfSumAndMoments(func(k int) float64 { return PoissonPMF(m, k) }, 200)
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("Poisson pmf sums to %v", sum)
	}
	if !almostEqual(mean, m, 1e-9) || !almostEqual(v, m, 1e-9) {
		t.Errorf("Poisson mean/var = %v/%v, want %v/%v", mean, v, m, m)
	}
	if PoissonPMF(m, -1) != 0 {
		t.Error("PoissonPMF(-1) != 0")
	}
	if PoissonPMF(0, 0) != 1 || PoissonPMF(0, 3) != 0 {
		t.Error("PoissonPMF with m=0 wrong")
	}
}

func TestPoissonPMFLargeK(t *testing.T) {
	// Stability check at large k: the naive m^k/k! form overflows.
	if p := PoissonPMF(500, 500); p <= 0 || p > 1 {
		t.Errorf("PoissonPMF(500, 500) = %v", p)
	}
}

func TestBinomialPMF(t *testing.T) {
	n, p := 20, 0.3
	sum, mean, v := pmfSumAndMoments(func(k int) float64 { return BinomialPMF(n, p, k) }, n)
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("Binomial pmf sums to %v", sum)
	}
	if !almostEqual(mean, float64(n)*p, 1e-9) {
		t.Errorf("Binomial mean = %v, want %v", mean, float64(n)*p)
	}
	if !almostEqual(v, float64(n)*p*(1-p), 1e-9) {
		t.Errorf("Binomial var = %v, want %v", v, float64(n)*p*(1-p))
	}
	if BinomialPMF(n, p, -1) != 0 || BinomialPMF(n, p, n+1) != 0 {
		t.Error("Binomial out-of-support not 0")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 1, 5) != 1 {
		t.Error("Binomial degenerate p wrong")
	}
}

func TestPascalPMF(t *testing.T) {
	r, p := 2.5, 0.4
	sum, mean, v := pmfSumAndMoments(func(k int) float64 { return PascalPMF(r, p, k) }, 500)
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("Pascal pmf sums to %v", sum)
	}
	wantMean := r * p / (1 - p)
	wantVar := r * p / ((1 - p) * (1 - p))
	if !almostEqual(mean, wantMean, 1e-8) {
		t.Errorf("Pascal mean = %v, want %v", mean, wantMean)
	}
	if !almostEqual(v, wantVar, 1e-7) {
		t.Errorf("Pascal var = %v, want %v", v, wantVar)
	}
	if PascalPMF(r, p, -1) != 0 {
		t.Error("Pascal negative k not 0")
	}
	if PascalPMF(r, 0, 0) != 1 {
		t.Error("Pascal p=0 k=0 should be 1")
	}
}

// TestInfiniteServerPMFMatchesMoments checks that for each traffic type
// the closed-form busy-server distribution reproduces the BPP moment
// formulas, tying the three classical distributions to the unified
// parameterization (paper Section 2).
func TestInfiniteServerPMFMatchesMoments(t *testing.T) {
	cases := []BPP{
		{Alpha: 0.8, Beta: 0, Mu: 1},        // Poisson
		{Alpha: 2, Beta: 0.4, Mu: 1},        // Pascal
		{Alpha: 3, Beta: -0.05, Mu: 1},      // Binomial, S = 60
		{Alpha: 1.5, Beta: 0.3, Mu: 2},      // Pascal with mu != 1
		{Alpha: 0.9, Beta: -0.009, Mu: 3},   // Binomial with mu != 1, S = 100
		{Alpha: 0.0024, Beta: -4e-6, Mu: 1}, // paper Figure 1 smooth source
	}
	for _, b := range cases {
		sum, mean, v := pmfSumAndMoments(b.InfiniteServerPMF, 3000)
		if !almostEqual(sum, 1, 1e-8) {
			t.Errorf("%+v: pmf sums to %v", b, sum)
		}
		if !almostEqual(mean, b.Mean(), 1e-6) {
			t.Errorf("%+v: pmf mean %v, want %v", b, mean, b.Mean())
		}
		if !almostEqual(v, b.Variance(), 1e-5) {
			t.Errorf("%+v: pmf var %v, want %v", b, v, b.Variance())
		}
	}
}

// TestBPPUnifiesDistributions: as beta -> 0 both the Binomial and the
// Pascal busy-server distributions converge pointwise to the Poisson —
// the degeneracy the paper's introduction cites.
func TestBPPUnifiesDistributions(t *testing.T) {
	m := 1.7
	for k := 0; k <= 10; k++ {
		want := PoissonPMF(m, k)
		peaky := BPP{Alpha: m * (1 - 1e-6), Beta: 1e-6, Mu: 1}
		if got := peaky.InfiniteServerPMF(k); !almostEqual(got, want, 1e-3) {
			t.Errorf("Pascal(beta->0) pmf(%d) = %v, want ~%v", k, got, want)
		}
		pop := 1e6
		smooth := BPP{Alpha: m, Beta: -m / pop, Mu: 1}
		if got := smooth.InfiniteServerPMF(k); !almostEqual(got, want, 1e-3) {
			t.Errorf("Binomial(beta->0) pmf(%d) = %v, want ~%v", k, got, want)
		}
	}
}

// TestInfiniteServerPMFDetailedBalance verifies the pmf against the
// birth-death balance pi(k+1)/pi(k) = lambda(k)/((k+1) mu) that defines
// the process, independent of the closed forms.
func TestInfiniteServerPMFDetailedBalance(t *testing.T) {
	cases := []BPP{
		{Alpha: 0.8, Beta: 0, Mu: 1},
		{Alpha: 2, Beta: 0.4, Mu: 1.5},
		{Alpha: 3, Beta: -0.1, Mu: 2}, // S = 30
	}
	for _, b := range cases {
		for k := 0; k < 20; k++ {
			pk, pk1 := b.InfiniteServerPMF(k), b.InfiniteServerPMF(k+1)
			if pk == 0 {
				continue
			}
			got := pk1 / pk
			want := b.Rate(k) / (float64(k+1) * b.Mu)
			if !almostEqual(got, want, 1e-8) {
				t.Errorf("%+v k=%d: pi ratio %v, want %v", b, k, got, want)
			}
		}
	}
}
