package server

import (
	"net/http"
	"testing"

	"xbar/internal/core"
)

// asymSpec is a single-rate Poisson point at moderate utilization
// (u ~ 0.4), where the expansion's bound is comfortably inside the
// default tolerance by n ~ 2048.
func asymSpec(n int) SwitchSpec {
	return SwitchSpec{
		N1: n, N2: n,
		Classes: []ClassSpec{{Name: "bulk", A: 1, Alpha: 1.12, Mu: 1}},
	}
}

// TestDispatchBlocking covers the /v1/blocking dispatch contract: the
// asymptotic tier answers beyond the exact limit, the 422 cases, and
// the legacy path staying byte-compatible.
func TestDispatchBlocking(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{MaxDim: 64})

	// Asymptotic-only size under auto: 200 from the asymptotic tier,
	// with the bound in every class row.
	var resp BlockingResponse
	code := postJSON(t, ts, "/v1/blocking", struct {
		SwitchSpec
		Dispatch string `json:"dispatch"`
	}{asymSpec(4096), "auto"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("auto at 4096: status %d", code)
	}
	if resp.Tier != core.TierAsymptotic || resp.Method != "asymptotic" {
		t.Errorf("tier %q method %q, want asymptotic", resp.Tier, resp.Method)
	}
	if b := resp.Classes[0].ErrorBound; !(b > 0 && b <= core.DefaultTolerance) {
		t.Errorf("error bound %v outside (0, %v]", b, core.DefaultTolerance)
	}
	if !(resp.Classes[0].Blocking > 0 && resp.Classes[0].Blocking < 1) {
		t.Errorf("blocking %v implausible", resp.Classes[0].Blocking)
	}

	// The same size with dispatch=exact is the documented 422.
	var apiErr struct {
		Error string `json:"error"`
	}
	code = postJSON(t, ts, "/v1/blocking", struct {
		SwitchSpec
		Dispatch string `json:"dispatch"`
	}{asymSpec(4096), "exact"}, &apiErr)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("exact at 4096: status %d, want 422 (%s)", code, apiErr.Error)
	}

	// Auto with a tolerance the bound cannot meet at an exact-capable
	// size falls back to the exact tier.
	var exactResp BlockingResponse
	code = postJSON(t, ts, "/v1/blocking", struct {
		SwitchSpec
		Dispatch  string  `json:"dispatch"`
		Tolerance float64 `json:"tolerance"`
	}{asymSpec(64), "auto", 1e-9}, &exactResp)
	if code != http.StatusOK || exactResp.Tier != core.TierExact {
		t.Errorf("tight tolerance at 64: status %d tier %q, want 200 exact", code, exactResp.Tier)
	}
	if exactResp.Classes[0].ErrorBound != 0 { //lint:allow floatcmp omitted JSON field decodes as exact zero
		t.Errorf("exact answer carries error bound %v", exactResp.Classes[0].ErrorBound)
	}

	// Auto at an asymptotic-only size with an unmeetable tolerance:
	// 422, not a silent loose answer.
	code = postJSON(t, ts, "/v1/blocking", struct {
		SwitchSpec
		Dispatch  string  `json:"dispatch"`
		Tolerance float64 `json:"tolerance"`
	}{asymSpec(4096), "auto", 1e-9}, &apiErr)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("unmeetable tolerance at 4096: status %d, want 422", code)
	}

	// Forced asymptotic ignores the tolerance and answers anyway.
	code = postJSON(t, ts, "/v1/blocking", struct {
		SwitchSpec
		Dispatch  string  `json:"dispatch"`
		Tolerance float64 `json:"tolerance"`
	}{asymSpec(4096), "asymptotic", 1e-9}, &resp)
	if code != http.StatusOK || resp.Tier != core.TierAsymptotic {
		t.Errorf("forced asymptotic: status %d tier %q", code, resp.Tier)
	}

	// Legacy contract: no dispatch field, oversize stays a 400 and an
	// in-range answer carries no tier.
	code = postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: asymSpec(4096)}, &apiErr)
	if code != http.StatusBadRequest {
		t.Errorf("no dispatch at 4096: status %d, want 400", code)
	}
	var legacyResp BlockingResponse
	code = postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: asymSpec(32)}, &legacyResp)
	if code != http.StatusOK || legacyResp.Tier != "" {
		t.Errorf("legacy request: status %d tier %q, want 200 with no tier", code, legacyResp.Tier)
	}

	// Tolerance without a policy is rejected.
	code = postJSON(t, ts, "/v1/blocking", struct {
		SwitchSpec
		Tolerance float64 `json:"tolerance"`
	}{asymSpec(32), 0.1}, &apiErr)
	if code != http.StatusBadRequest {
		t.Errorf("tolerance without dispatch: status %d, want 400", code)
	}
}

// TestDispatchSweep pins the per-point tier split: small points exact
// off one (small) lattice, large points asymptotic, in one request.
func TestDispatchSweep(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{MaxDim: 64})
	var resp SweepResponse
	code := postJSON(t, ts, "/v1/sweep", struct {
		SwitchSpec
		Dispatch string       `json:"dispatch"`
		Points   []SweepPoint `json:"points"`
	}{asymSpec(4096), "auto", []SweepPoint{{N1: 32, N2: 32}, {N1: 4096, N2: 4096}}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Results[0].Tier != core.TierExact || resp.Results[1].Tier != core.TierAsymptotic {
		t.Errorf("tiers %q/%q, want exact/asymptotic", resp.Results[0].Tier, resp.Results[1].Tier)
	}
	if resp.Results[0].ErrorBound != nil {
		t.Errorf("exact point carries bounds %v", resp.Results[0].ErrorBound)
	}
	if len(resp.Results[1].ErrorBound) != 1 || !(resp.Results[1].ErrorBound[0] > 0) {
		t.Errorf("asymptotic point bounds %v", resp.Results[1].ErrorBound)
	}
	// Blocking should increase from the 32-port sub-switch to the
	// 4096-port one at fixed per-route load (more competing routes).
	if !(resp.Results[1].Blocking[0] > resp.Results[0].Blocking[0]) {
		t.Errorf("blocking did not grow with size: %v vs %v", resp.Results[0].Blocking, resp.Results[1].Blocking)
	}
}

// TestDispatchGrid pins the grid planner's dispatch split and the
// response accounting.
func TestDispatchGrid(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{MaxDim: 64})
	var resp GridResponse
	code := postJSON(t, ts, "/v1/grid", struct {
		SwitchSpec
		Dispatch string      `json:"dispatch"`
		Points   []GridPoint `json:"points"`
	}{asymSpec(32), "auto", []GridPoint{
		{},                   // base 32x32: exact
		{N1: 4096, N2: 4096}, // asymptotic
		{N1: 48, N2: 48},     // exact
		{N1: 8192, N2: 8192}, // asymptotic
	}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Asymptotic != 2 {
		t.Errorf("asymptotic count %d, want 2", resp.Asymptotic)
	}
	wantTier := []string{core.TierExact, core.TierAsymptotic, core.TierExact, core.TierAsymptotic}
	for i, r := range resp.Results {
		if r.Tier != wantTier[i] {
			t.Errorf("point %d: tier %q, want %q", i, r.Tier, wantTier[i])
		}
	}
}

// TestDispatchRevenueAdmission covers the asymptotic revenue and
// admission paths at a size no lattice could serve.
func TestDispatchRevenueAdmission(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{MaxDim: 64})
	spec := asymSpec(4096)
	var rev RevenueResponse
	code := postJSON(t, ts, "/v1/revenue", struct {
		SwitchSpec
		Dispatch string    `json:"dispatch"`
		Weights  []float64 `json:"weights"`
	}{spec, "auto", []float64{1}}, &rev)
	if code != http.StatusOK {
		t.Fatalf("revenue: status %d", code)
	}
	if rev.Tier != core.TierAsymptotic || !(rev.W > 0) {
		t.Errorf("revenue tier %q W %v", rev.Tier, rev.W)
	}
	if c := rev.Classes[0]; !(c.ShadowCost >= 0) || !(c.ErrorBound > 0) {
		t.Errorf("class revenue %+v implausible", c)
	}

	var adm AdmissionResponse
	code = postJSON(t, ts, "/v1/admission", struct {
		SwitchSpec
		Dispatch string    `json:"dispatch"`
		Class    int       `json:"class"`
		Weights  []float64 `json:"weights"`
	}{spec, "auto", 0, []float64{1}}, &adm)
	if code != http.StatusOK {
		t.Fatalf("admission: status %d", code)
	}
	if adm.Tier != core.TierAsymptotic || adm.ShadowCost == nil {
		t.Errorf("admission tier %q shadow %v", adm.Tier, adm.ShadowCost)
	}
}
