package server

import (
	"container/list"
	"context"
	"fmt"
	"strconv"
	"strings"

	"xbar/internal/core"
)

// Algorithm names accepted by the API (with the "algorithm1" /
// "algorithm2" long forms normalized in the handlers).
const (
	alg1 = "alg1"
	alg2 = "alg2"
)

// solverEntry is one cached operating point: a filled sweep solver
// for either Algorithm 1 or Algorithm 2. Exactly one of sweep and mva
// is non-nil.
//
// The sweep layers memoize their reads and the revenue analysis keeps
// re-solve scratch, neither of which is safe for concurrent use, so
// every read of an entry happens under mu. refs and doomed belong to
// the owning cache and are guarded by the cache lock, not mu.
type solverEntry struct {
	mu    chan struct{} // 1-slot semaphore: lockable with a context
	alg   string
	sweep *core.SweepSolver
	mva   *core.MVASweepSolver

	refs   int  // requests currently holding the entry (cache lock)
	doomed bool // evicted while referenced; recycle on last release
}

// lock acquires the entry's read lock, giving up when ctx expires —
// a request queued behind a long revenue-gradient read on the same
// operating point times out instead of hanging past its deadline.
func (e *solverEntry) lock(ctx context.Context) error {
	select {
	case e.mu <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *solverEntry) unlock() { <-e.mu }

// switchModel returns the canonical switch the lattice was filled for.
func (e *solverEntry) switchModel() core.Switch {
	if e.sweep != nil {
		return e.sweep.Switch()
	}
	return e.mva.Switch()
}

// resultAt reads the sub-switch measures off the retained lattice.
// Callers hold the entry lock.
func (e *solverEntry) resultAt(n1, n2 int) *core.Result {
	if e.sweep != nil {
		return e.sweep.ResultAt(n1, n2)
	}
	return e.mva.ResultAt(n1, n2)
}

// result reads the full-size measures. Callers hold the entry lock.
func (e *solverEntry) result() *core.Result {
	if e.sweep != nil {
		return e.sweep.Result()
	}
	return e.mva.Result()
}

// flight is one in-progress lattice fill that concurrent identical
// requests attach to instead of filling their own.
type flight struct {
	done chan struct{} // closed once e and err are final
	e    *solverEntry
	err  error

	// waiters and completed are guarded by the cache lock. waiters
	// counts the requests that will take a reference when the fill
	// lands; a waiter that abandons (context expiry) before completion
	// decrements it, one that abandons after releases its granted ref.
	waiters   int
	completed bool
}

// cacheItem is the LRU bookkeeping for one entry.
type cacheItem struct {
	key string
	e   *solverEntry
}

// solverCache is the LRU of filled solvers with single-flight
// deduplication and Reuse recycling. All maps and lists are guarded
// by mu; lattice fills run outside it.
type solverCache struct {
	mu      chan struct{} // 1-slot semaphore used as a plain mutex
	max     int
	ll      *list.List               // front = most recently used
	items   map[string]*list.Element // key -> element of ll
	flights map[string]*flight

	// free pools recycle the retained lattices of evicted entries:
	// the next miss of the same algorithm refills in place
	// (SweepSolver.Reuse) instead of allocating a fresh grid.
	freeAlg1 []*core.SweepSolver
	freeAlg2 []*core.MVASweepSolver

	fill    core.Options
	metrics *Metrics
}

// maxFreeSolvers bounds each recycling pool: beyond this, evicted
// lattices are dropped to the GC rather than pinned forever.
const maxFreeSolvers = 4

func newSolverCache(maxEntries int, fill core.Options, m *Metrics) *solverCache {
	c := &solverCache{
		mu:      make(chan struct{}, 1),
		max:     maxEntries,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
		fill:    fill,
		metrics: m,
	}
	return c
}

func (c *solverCache) lock()   { c.mu <- struct{}{} }
func (c *solverCache) unlock() { <-c.mu }

// cacheKey canonicalizes one operating point. Class names are
// deliberately excluded — they do not enter the numerics — and so is
// the fill schedule: results are bit-identical across worker counts
// and tile sizes (core's TestParallelFillBitIdentical), so a result
// computed under any schedule serves every schedule.
func cacheKey(alg string, sw core.Switch) string {
	var b strings.Builder
	b.Grow(32 + 80*len(sw.Classes))
	b.WriteString(alg)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(sw.N1))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(sw.N2))
	for _, cl := range sw.Classes {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(cl.A))
		b.WriteByte(':')
		// 'x' (hexadecimal) formatting is exact: two keys collide only
		// for bit-identical parameters.
		b.WriteString(strconv.FormatFloat(cl.Alpha, 'x', -1, 64))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(cl.Beta, 'x', -1, 64))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(cl.Mu, 'x', -1, 64))
	}
	return b.String()
}

// get returns the entry for (alg, sw), filling the lattice on a miss.
// Concurrent identical requests share one fill. cached reports
// whether the entry came from the cache (or a shared in-flight fill)
// rather than a fill this call ran. The caller must release the
// entry with release once done reading it.
func (c *solverCache) get(ctx context.Context, alg string, sw core.Switch) (e *solverEntry, cached bool, err error) {
	key := cacheKey(alg, sw)
	c.lock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.ll.MoveToFront(el)
		it.e.refs++
		c.unlock()
		c.metrics.cacheHits.Add(1)
		return it.e, true, nil
	}
	if f, ok := c.flights[key]; ok {
		f.waiters++
		c.unlock()
		c.metrics.cacheShared.Add(1)
		select {
		case <-f.done:
			// The close happens after e/err are final; our reference
			// was granted at completion (refs covered every registered
			// waiter), so on success the entry cannot have been
			// recycled out from under us.
			return f.e, true, f.err
		case <-ctx.Done():
			c.lock()
			if f.completed {
				if f.err == nil {
					c.releaseLocked(f.e)
				}
			} else {
				f.waiters--
			}
			c.unlock()
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.unlock()
	c.metrics.cacheMisses.Add(1)

	e, err = c.build(alg, sw)

	c.lock()
	delete(c.flights, key)
	f.e, f.err = e, err
	f.completed = true
	if err == nil {
		e.refs = 1 + f.waiters // this call's ref plus every waiter's
		el := c.ll.PushFront(&cacheItem{key: key, e: e})
		c.items[key] = el
		c.evictLocked()
	}
	c.unlock()
	close(f.done)
	return e, false, err
}

// release returns a reference taken by get. The last release of an
// entry that was evicted while referenced recycles its lattice — the
// caller must not read the entry (or Results served off it) after
// releasing.
//
//lint:pooled
func (c *solverCache) release(e *solverEntry) {
	c.lock()
	c.releaseLocked(e)
	c.unlock()
}

//lint:pooled
func (c *solverCache) releaseLocked(e *solverEntry) {
	e.refs--
	if e.refs == 0 && e.doomed {
		e.doomed = false
		c.recycleLocked(e)
	}
}

// evictLocked trims the LRU to capacity. Entries still referenced by
// in-flight requests are marked doomed and recycled on last release;
// recycling a lattice that a request is still reading would let the
// next miss refill it mid-read.
func (c *solverCache) evictLocked() {
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		it := oldest.Value.(*cacheItem)
		delete(c.items, it.key)
		c.metrics.cacheEvictions.Add(1)
		if it.e.refs > 0 {
			it.e.doomed = true
		} else {
			c.recycleLocked(it.e)
		}
	}
}

// recycleLocked returns an evicted entry's solver to its free pool.
//
//lint:pooled
func (c *solverCache) recycleLocked(e *solverEntry) {
	switch {
	case e.sweep != nil && len(c.freeAlg1) < maxFreeSolvers:
		c.freeAlg1 = append(c.freeAlg1, e.sweep)
	case e.mva != nil && len(c.freeAlg2) < maxFreeSolvers:
		c.freeAlg2 = append(c.freeAlg2, e.mva)
	}
}

// build fills a lattice for the operating point, recycling a pooled
// solver when one is available. Runs outside the cache lock — this is
// the expensive part single-flight protects.
func (c *solverCache) build(alg string, sw core.Switch) (*solverEntry, error) {
	switch alg {
	case alg1:
		c.lock()
		var s *core.SweepSolver
		if n := len(c.freeAlg1); n > 0 {
			s, c.freeAlg1 = c.freeAlg1[n-1], c.freeAlg1[:n-1]
			c.metrics.solversRecycled.Add(1)
		} else {
			s = &core.SweepSolver{}
		}
		c.unlock()
		if err := s.Reuse(sw, c.fill); err != nil {
			// Reuse validates before touching the lattice, so the
			// solver is still coherent; pool it again.
			c.lock()
			if len(c.freeAlg1) < maxFreeSolvers {
				c.freeAlg1 = append(c.freeAlg1, s)
			}
			c.unlock()
			return nil, err
		}
		return &solverEntry{mu: make(chan struct{}, 1), alg: alg, sweep: s}, nil
	case alg2:
		c.lock()
		var s *core.MVASweepSolver
		if n := len(c.freeAlg2); n > 0 {
			s, c.freeAlg2 = c.freeAlg2[n-1], c.freeAlg2[:n-1]
			c.metrics.solversRecycled.Add(1)
		} else {
			s = &core.MVASweepSolver{}
		}
		c.unlock()
		if err := s.Reuse(sw, c.fill); err != nil {
			c.lock()
			if len(c.freeAlg2) < maxFreeSolvers {
				c.freeAlg2 = append(c.freeAlg2, s)
			}
			c.unlock()
			return nil, err
		}
		return &solverEntry{mu: make(chan struct{}, 1), alg: alg, mva: s}, nil
	}
	return nil, fmt.Errorf("server: unknown algorithm %q", alg)
}

// len reports the number of cached entries (not counting in-flight
// fills).
func (c *solverCache) len() int {
	c.lock()
	defer c.unlock()
	return c.ll.Len()
}
