package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"xbar/internal/scenario"
)

// scenarioDoc builds the canonical valid test spec: the slotted
// crossbar at 8x8, load 0.5, analytic only.
func scenarioDoc() map[string]any {
	return map[string]any{
		"discipline": "slotted",
		"topology":   map[string]any{"n1": 8, "n2": 8},
		"params":     map[string]any{"load": 0.5},
	}
}

type scenarioErrBody struct {
	Error  string `json:"error"`
	Fields []struct {
		Field string `json:"field"`
		Msg   string `json:"error"`
	} `json:"fields"`
}

func TestScenarioEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var resp ScenarioResponse
	if code := postJSON(t, ts, "/v1/scenario", scenarioDoc(), &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Discipline != "slotted" || resp.Cached {
		t.Errorf("first response %+v, want uncached slotted", resp)
	}
	names := map[string]bool{}
	for _, m := range resp.Measures {
		names[m.Name] = true
	}
	if !names["throughput"] || !names["acceptance"] {
		t.Errorf("measures %+v, want throughput and acceptance", resp.Measures)
	}

	// The repeat is a cache hit and bit-identical.
	var again ScenarioResponse
	if code := postJSON(t, ts, "/v1/scenario", scenarioDoc(), &again); code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	if !again.Cached {
		t.Errorf("repeat not served from cache")
	}
	for i := range resp.Measures {
		if again.Measures[i] != resp.Measures[i] {
			t.Errorf("measure %d drifted: %+v vs %+v", i, resp.Measures[i], again.Measures[i])
		}
	}

	snap := s.Metrics().Snapshot()
	if snap.ScenarioCache.Misses != 1 || snap.ScenarioCache.Hits != 1 {
		t.Errorf("scenario cache counters %+v, want 1 miss + 1 hit", snap.ScenarioCache)
	}
	if s.scCache.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", s.scCache.len())
	}
	if ep, ok := snap.Endpoints["/v1/scenario"]; !ok || ep.Requests != 2 {
		t.Errorf("endpoint metrics %+v, want 2 requests", ep)
	}
}

// TestScenarioMeasureFilter pins that the filter selects and orders
// measures, shares the cache entry with the unfiltered request, and
// reports unknown names as indexed 400 field errors.
func TestScenarioMeasureFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := scenarioDoc()
	doc["measures"] = []string{"acceptance", "throughput"}
	var resp ScenarioResponse
	if code := postJSON(t, ts, "/v1/scenario", doc, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Measures) != 2 || resp.Measures[0].Name != "acceptance" || resp.Measures[1].Name != "throughput" {
		t.Errorf("filtered measures %+v", resp.Measures)
	}

	// A different filter of the same scenario is a cache hit: the key
	// excludes the measure selection.
	doc["measures"] = []string{"throughput"}
	var narrow ScenarioResponse
	if code := postJSON(t, ts, "/v1/scenario", doc, &narrow); code != http.StatusOK {
		t.Fatalf("narrow filter status %d", code)
	}
	if !narrow.Cached || len(narrow.Measures) != 1 {
		t.Errorf("narrow filter response %+v, want cached single measure", narrow)
	}

	doc["measures"] = []string{"throughput", "nope"}
	var eb scenarioErrBody
	if code := postJSON(t, ts, "/v1/scenario", doc, &eb); code != http.StatusBadRequest {
		t.Fatalf("unknown measure status %d", code)
	}
	if len(eb.Fields) != 1 || eb.Fields[0].Field != "measures[1]" {
		t.Errorf("unknown measure located at %+v, want measures[1]", eb.Fields)
	}
}

// TestScenarioErrorContract pins the documented status mapping:
// malformed specs are 400 with indexed field errors, oversized ones
// 413, unknown disciplines 422.
func TestScenarioErrorContract(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512, MaxDim: 64})

	t.Run("unknown discipline 422", func(t *testing.T) {
		doc := scenarioDoc()
		doc["discipline"] = "quantum"
		var eb scenarioErrBody
		if code := postJSON(t, ts, "/v1/scenario", doc, &eb); code != http.StatusUnprocessableEntity {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(eb.Error, "slotted") {
			t.Errorf("error %q should list the known disciplines", eb.Error)
		}
	})

	t.Run("oversized topology 413", func(t *testing.T) {
		doc := scenarioDoc()
		doc["topology"] = map[string]any{"n1": 128, "n2": 128}
		var eb scenarioErrBody
		if code := postJSON(t, ts, "/v1/scenario", doc, &eb); code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d", code)
		}
	})

	t.Run("malformed spec 400 with fields", func(t *testing.T) {
		doc := scenarioDoc()
		doc["topology"] = map[string]any{"n1": 8}
		doc["params"] = map[string]any{"load": 1.5, "lambda": 2}
		var eb scenarioErrBody
		if code := postJSON(t, ts, "/v1/scenario", doc, &eb); code != http.StatusBadRequest {
			t.Fatalf("status %d", code)
		}
		want := map[string]bool{"topology.n2": false, "params.load": false, "params.lambda": false}
		for _, f := range eb.Fields {
			if _, ok := want[f.Field]; ok {
				want[f.Field] = true
			}
			if f.Msg == "" {
				t.Errorf("field %q has an empty diagnostic", f.Field)
			}
		}
		for field, seen := range want {
			if !seen {
				t.Errorf("missing field error for %q in %+v", field, eb.Fields)
			}
		}
	})

	t.Run("invalid JSON 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", strings.NewReader(`{"discipline":`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})

	t.Run("trailing data 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", strings.NewReader(`{"discipline": "slotted"} extra`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})

	t.Run("oversized body 413", func(t *testing.T) {
		body := `{"discipline": "slotted", "topology": {"n1": 8, "n2": 8}, "params": {"load": 0.5}` +
			strings.Repeat(" ", 600) + `}`
		resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})
}

// TestScenarioSimulation runs one event-driven discipline end to end
// through the endpoint: the overflow model requires a simulation block
// and returns CI-carrying measures.
func TestScenarioSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("event simulation in -short")
	}
	_, ts := newTestServer(t, Config{})
	doc := map[string]any{
		"discipline": "overflow",
		"topology":   map[string]any{"n1": 6},
		"params":     map[string]any{"lambda": 20, "mu": 1, "secondary_n": 4},
		"sim":        map[string]any{"seed": 7, "warmup": 20, "horizon": 200},
	}
	var resp ScenarioResponse
	if code := postJSON(t, ts, "/v1/scenario", doc, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	found := false
	for _, m := range resp.Measures {
		if m.Name == "sim_primary_blocking" {
			found = true
			if m.HalfWidth <= 0 {
				t.Errorf("sim_primary_blocking carries no confidence half-width: %+v", m)
			}
		}
	}
	if !found {
		t.Errorf("no sim_primary_blocking in %+v", resp.Measures)
	}
}

func TestScenarioConfigValidate(t *testing.T) {
	if _, err := New(Config{ScenarioCacheSize: -1}); err == nil {
		t.Error("negative ScenarioCacheSize accepted")
	}
}

// TestScenarioCacheUnit drives scenarioCache directly through the
// branches the endpoint tests cannot reach deterministically: LRU
// eviction, single-flight sharing (success and error), the
// error-not-cached rule, and a waiter abandoning a flight.
func TestScenarioCacheUnit(t *testing.T) {
	t.Parallel()
	mkRes := func(name string) *scenario.Result {
		return &scenario.Result{Discipline: name}
	}

	t.Run("eviction", func(t *testing.T) {
		m := newMetrics()
		c := newScenarioCache(2, m)
		ctx := context.Background()
		for _, k := range []string{"a", "b", "c"} {
			if _, cached, err := c.get(ctx, k, func() (*scenario.Result, error) { return mkRes(k), nil }); err != nil || cached {
				t.Fatalf("get(%q) = cached %v, err %v", k, cached, err)
			}
		}
		if n := c.len(); n != 2 {
			t.Errorf("len = %d after eviction, want 2", n)
		}
		if got := m.scenarioEvictions.Load(); got != 1 {
			t.Errorf("evictions = %d, want 1", got)
		}
		// "a" was the LRU victim; "b" and "c" must still hit.
		if _, cached, _ := c.get(ctx, "b", nil); !cached {
			t.Error(`"b" evicted, want retained`)
		}
		if _, cached, err := c.get(ctx, "a", func() (*scenario.Result, error) { return mkRes("a"), nil }); cached || err != nil {
			t.Errorf(`"a" retained past eviction: cached %v, err %v`, cached, err)
		}
	})

	t.Run("single flight", func(t *testing.T) {
		m := newMetrics()
		c := newScenarioCache(4, m)
		ctx := context.Background()
		entered := make(chan struct{})
		release := make(chan struct{})
		res := mkRes("shared")
		go func() {
			c.get(ctx, "k", func() (*scenario.Result, error) {
				close(entered)
				<-release
				return res, nil
			})
		}()
		<-entered
		type out struct {
			res    *scenario.Result
			cached bool
			err    error
		}
		got := make(chan out, 1)
		go func() {
			r, cached, err := c.get(ctx, "k", func() (*scenario.Result, error) {
				t.Error("second fill ran; want shared flight")
				return nil, nil
			})
			got <- out{r, cached, err}
		}()
		// The waiter must be attached to the flight before we release it.
		for m.scenarioShared.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		close(release)
		o := <-got
		if o.err != nil || !o.cached || o.res != res {
			t.Errorf("shared waiter got (%v, cached %v, err %v), want the flight's result", o.res, o.cached, o.err)
		}
		if hits, misses := m.scenarioHits.Load(), m.scenarioMisses.Load(); misses != 1 || hits != 0 {
			t.Errorf("hits %d misses %d, want 0 and 1", hits, misses)
		}
	})

	t.Run("errors shared but not cached", func(t *testing.T) {
		m := newMetrics()
		c := newScenarioCache(4, m)
		ctx := context.Background()
		boom := errors.New("unevaluable")
		if _, _, err := c.get(ctx, "k", func() (*scenario.Result, error) { return nil, boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
		if n := c.len(); n != 0 {
			t.Fatalf("error cached: len = %d", n)
		}
		// The next identical request evaluates afresh.
		if _, cached, err := c.get(ctx, "k", func() (*scenario.Result, error) { return mkRes("k"), nil }); cached || err != nil {
			t.Errorf("retry after error: cached %v, err %v", cached, err)
		}
		if got := m.scenarioMisses.Load(); got != 2 {
			t.Errorf("misses = %d, want 2", got)
		}
	})

	t.Run("waiter context canceled", func(t *testing.T) {
		m := newMetrics()
		c := newScenarioCache(4, m)
		entered := make(chan struct{})
		release := make(chan struct{})
		go func() {
			c.get(context.Background(), "k", func() (*scenario.Result, error) {
				close(entered)
				<-release
				return mkRes("k"), nil
			})
		}()
		<-entered
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, cached, err := c.get(ctx, "k", nil)
		if !errors.Is(err, context.Canceled) || cached {
			t.Errorf("canceled waiter got cached %v, err %v, want context.Canceled", cached, err)
		}
		close(release)
	})
}
