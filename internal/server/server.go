package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"xbar/internal/cluster"
	"xbar/internal/grid"
	"xbar/internal/scenario"
)

// Server is the xbard HTTP daemon: the API mux, the solver cache, the
// solve semaphore, and (optionally) a debug mux with net/http/pprof.
// Build one with New, then either Run it against a context (the
// daemon path: listens, serves, drains on cancel) or serve
// s.Handler() from a test harness.
type Server struct {
	cfg      Config
	metrics  *Metrics
	cache    *solverCache
	scenario *scenario.Engine
	scCache  *scenarioCache
	cluster  *cluster.Cluster // nil when cfg.Peers is empty
	sem      chan struct{}
	now      func() time.Time

	// ready flips once ring membership is initialized (end of New);
	// draining flips when shutdown begins. GET /readyz serves 200 only
	// while ready && !draining, so peers and load balancers stop
	// routing to a node before its listener goes away.
	ready    atomic.Bool
	draining atomic.Bool

	mux      *http.ServeMux
	debugMux *http.ServeMux

	httpSrv  *http.Server
	debugSrv *http.Server
	ln       net.Listener
	debugLn  net.Listener
}

// endpointNames are the instrumented endpoints, as they appear in the
// metrics document.
var endpointNames = []string{
	"/v1/blocking", "/v1/revenue", "/v1/admission", "/v1/sweep", "/v1/grid", "/v1/scenario", "/v1/cluster",
	"/healthz", "/readyz", "/metrics",
}

// New builds a Server from cfg (zero fields take their documented
// defaults).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := newMetrics(endpointNames...)
	s := &Server{
		cfg:     cfg,
		metrics: m,
		cache:   newSolverCache(cfg.CacheSize, cfg.fillOptions(), m),
		// The scenario engine runs memo-less: the server-side result
		// cache (LRU + single-flight) is the memo, and caching twice
		// would pin every evicted result forever.
		scenario: scenario.New(scenario.Options{
			NoMemo: true,
			Limits: cfg.scenarioLimits(),
			Grid:   grid.Options{Workers: cfg.Workers, Tile: cfg.Tile},
		}),
		scCache: newScenarioCache(cfg.ScenarioCacheSize, m),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		now:     time.Now, //lint:allow detrand wall-clock latency metrics; the analytical engine itself stays clock-free
	}
	if len(cfg.Peers) > 0 {
		cl, err := cluster.New(cfg.clusterConfig())
		if err != nil {
			return nil, err
		}
		s.cluster = cl
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/blocking", s.instrument("/v1/blocking", s.handleBlocking))
	s.mux.Handle("POST /v1/revenue", s.instrument("/v1/revenue", s.handleRevenue))
	s.mux.Handle("POST /v1/admission", s.instrument("/v1/admission", s.handleAdmission))
	s.mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.Handle("POST /v1/grid", s.instrument("/v1/grid", s.handleGrid))
	s.mux.Handle("POST /v1/scenario", s.instrument("/v1/scenario", s.handleScenario))
	s.mux.Handle("GET /v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))

	s.debugMux = http.NewServeMux()
	s.debugMux.HandleFunc("/debug/pprof/", pprof.Index)
	s.debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.debugMux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	// Ring membership (when any) is initialized above; the node is ready
	// to take traffic as soon as a listener exists.
	s.ready.Store(true)
	return s, nil
}

// Handler returns the API mux — the httptest entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// DebugHandler returns the pprof/metrics debug mux.
func (s *Server) DebugHandler() http.Handler { return s.debugMux }

// Metrics exposes the counter set (tests and embedding callers).
func (s *Server) Metrics() *Metrics { return s.metrics }

// statusWriter records the response status for metrics and guards the
// panic-recovery path against writing a second header.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// handlerFunc is an endpoint handler returning its failure as an
// error; instrument turns *apiError into the client-facing JSON error
// and anything else (including a panic) into a 500.
type handlerFunc func(http.ResponseWriter, *http.Request) error

// instrument wraps an endpoint with the per-request machinery:
// in-flight gauge, latency histogram, request timeout, error
// rendering and panic recovery.
func (s *Server) instrument(name string, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		s.metrics.inFlight.Add(1)
		if s.cluster != nil {
			// Which node actually served — cluster tooling reads this to
			// find a key's owner. Absent in single-node mode so responses
			// stay bit-identical to the pre-cluster daemon.
			w.Header().Set(cluster.HeaderNode, s.cluster.NodeID())
		}
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.cfg.logf("panic serving %s: %v", name, p)
				if !sw.wrote {
					s.writeError(sw, http.StatusInternalServerError, "internal error")
				}
				sw.code = http.StatusInternalServerError
			}
			s.metrics.inFlight.Add(-1)
			s.metrics.observe(name, s.now().Sub(start), sw.code >= 400)
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if err := h(sw, r.WithContext(ctx)); err != nil {
			var api *apiError
			if errors.As(err, &api) {
				s.writeError(sw, api.code, api.msg)
				return
			}
			s.cfg.logf("error serving %s: %v", name, err)
			s.writeError(sw, http.StatusInternalServerError, "internal error")
		}
	})
}

// writeJSON renders one response document. A failed write usually
// means the client hung up; it is counted, not propagated.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.metrics.writeFailures.Add(1)
	}
}

// writeError renders the {"error": ...} document.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, map[string]string{"error": msg})
}

// acquire claims a solver slot, giving up when ctx expires.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// UseListener hands the server a pre-bound API listener; Start then
// skips binding cfg.Addr. Cluster tests need this: peer URLs must be
// known (so ports bound) before the servers are constructed.
func (s *Server) UseListener(ln net.Listener) { s.ln = ln }

// Start binds the listeners (API, and debug when configured) without
// serving yet, so callers learn the bound addresses — and tests can
// listen on port 0 — before traffic arrives.
func (s *Server) Start() error {
	ln := s.ln
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
		}
	}
	s.ln = ln
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	if s.cfg.DebugAddr != "" {
		dln, err := net.Listen("tcp", s.cfg.DebugAddr)
		if err != nil {
			closeErr := ln.Close()
			return errors.Join(fmt.Errorf("server: listen debug %s: %w", s.cfg.DebugAddr, err), closeErr)
		}
		s.debugLn = dln
		// No ReadHeaderTimeout here: pprof profile/trace captures are
		// long-polling by design.
		s.debugSrv = &http.Server{Handler: s.debugMux}
	}
	return nil
}

// Addr returns the bound API address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// DebugAddr returns the bound debug address after Start ("" when the
// debug mux is disabled).
func (s *Server) DebugAddr() string {
	if s.debugLn == nil {
		return ""
	}
	return s.debugLn.Addr().String()
}

// Serve blocks serving both listeners until Shutdown (returning nil)
// or a listener failure (returning its error). Start must have
// succeeded.
func (s *Server) Serve() error {
	errc := make(chan error, 2)
	go func() { errc <- s.httpSrv.Serve(s.ln) }()
	n := 1
	if s.debugSrv != nil {
		n = 2
		go func() { errc <- s.debugSrv.Serve(s.debugLn) }()
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && first == nil {
			first = err
		}
	}
	return first
}

// Shutdown drains both servers gracefully: no new connections,
// in-flight requests run to completion within ctx. /readyz flips to
// 503 first, so ready-checking peers and balancers stop routing here
// while the drain runs.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var errs []error
	if s.httpSrv != nil {
		errs = append(errs, s.httpSrv.Shutdown(ctx))
	}
	if s.debugSrv != nil {
		errs = append(errs, s.debugSrv.Shutdown(ctx))
	}
	s.Close()
	return errors.Join(errs...)
}

// Close releases background resources (the cluster replication
// worker). Shutdown calls it; handler-only callers (tests serving
// s.Handler() directly) should call it themselves when done. Safe to
// call more than once and without a cluster.
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// Run is the daemon loop: Start (unless already started), serve until
// ctx is cancelled, then drain within the configured DrainTimeout.
// Returns nil after a clean drain.
func (s *Server) Run(ctx context.Context) error {
	if s.ln == nil {
		if err := s.Start(); err != nil {
			return err
		}
	}
	s.cfg.logf("xbard: listening on %s", s.Addr())
	if a := s.DebugAddr(); a != "" {
		s.cfg.logf("xbard: debug (pprof, metrics) on %s", a)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	s.cfg.logf("xbard: draining (timeout %v)", s.cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	s.cfg.logf("xbard: drained cleanly")
	return nil
}
